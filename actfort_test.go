package actfort_test

import (
	"context"
	"strings"
	"testing"

	"github.com/actfort/actfort"
)

// The public API quick-start path, exactly as README documents it.
func TestPublicAPIQuickstart(t *testing.T) {
	cat, err := actfort.DefaultCatalog()
	if err != nil {
		t.Fatal(err)
	}
	if cat.Len() != 201 {
		t.Fatalf("services = %d", cat.Len())
	}
	engine, err := actfort.New(cat, actfort.BaselineAttacker())
	if err != nil {
		t.Fatal(err)
	}
	m, err := engine.Measure()
	if err != nil {
		t.Fatal(err)
	}
	if m.Web.Paths+m.Mobile.Paths != 405 {
		t.Errorf("total paths = %d", m.Web.Paths+m.Mobile.Paths)
	}

	plan, err := engine.AttackPlan(actfort.Account("paypal", actfort.Web), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.String(), "paypal/web") {
		t.Errorf("plan = %s", plan)
	}

	g, err := engine.Graph(actfort.Web)
	if err != nil {
		t.Fatal(err)
	}
	st := actfort.PathLayers(g)
	if st.Direct != 139 {
		t.Errorf("direct = %d", st.Direct)
	}
}

func TestSyntheticCatalogExported(t *testing.T) {
	cat, err := actfort.SyntheticCatalog(25, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Len() < 25 {
		t.Errorf("synthetic = %d services", cat.Len())
	}
	if _, err := actfort.New(cat, actfort.BaselineAttacker()); err != nil {
		t.Fatal(err)
	}
}

func TestVictimsExported(t *testing.T) {
	cat, err := actfort.DefaultCatalog()
	if err != nil {
		t.Fatal(err)
	}
	engine, err := actfort.New(cat, actfort.BaselineAttacker())
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Victims(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.VictimCount() == 0 {
		t.Error("no victims in the baseline ecosystem")
	}
	if actfort.Version == "" {
		t.Error("version empty")
	}
}

func TestCampaignFacade(t *testing.T) {
	pop, err := actfort.NewPopulation(actfort.PopulationConfig{Seed: 9, Size: 400, ShardSize: 200})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := actfort.RunCampaign(context.Background(), actfort.CampaignConfig{
		Population: pop,
		KeyBits:    10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Subscribers != 400 || sum.VictimsCompromised == 0 {
		t.Fatalf("campaign summary = %+v", sum)
	}
}
