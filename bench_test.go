// Benchmark harness: one benchmark per paper table/figure (the
// experiment IDs match DESIGN.md §4 and EXPERIMENTS.md). Run with
//
//	go test -bench=. -benchmem .
package actfort_test

import (
	"context"
	"fmt"
	"io"
	"testing"
	"time"

	"github.com/actfort/actfort/internal/a51"
	"github.com/actfort/actfort/internal/attack"
	"github.com/actfort/actfort/internal/authproc"
	"github.com/actfort/actfort/internal/campaign"
	"github.com/actfort/actfort/internal/collect"
	"github.com/actfort/actfort/internal/countermeasure"
	"github.com/actfort/actfort/internal/dataset"
	"github.com/actfort/actfort/internal/ecosys"
	"github.com/actfort/actfort/internal/identity"
	"github.com/actfort/actfort/internal/mask"
	"github.com/actfort/actfort/internal/mitm"
	"github.com/actfort/actfort/internal/population"
	"github.com/actfort/actfort/internal/smsotp"
	"github.com/actfort/actfort/internal/sniffer"
	"github.com/actfort/actfort/internal/strategy"
	"github.com/actfort/actfort/internal/tdg"
	"github.com/actfort/actfort/internal/telecom"
)

// E1 / Fig 3 — credential-factor usage measurement over the full
// catalog, both platforms.
func BenchmarkE1Fig3AuthMeasurement(b *testing.B) {
	cat := dataset.MustDefault()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = authproc.Measure(cat, ecosys.PlatformWeb)
		_ = authproc.Measure(cat, ecosys.PlatformMobile)
	}
}

// E2 — path-class shares (general/info/unique), part of Fig 3's text.
func BenchmarkE2PathClassShares(b *testing.B) {
	cat := dataset.MustDefault()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := authproc.Measure(cat, ecosys.PlatformWeb)
		_ = st.PctPaths(st.ClassCounts[ecosys.ClassGeneral])
	}
}

// E3 / Table I — post-login information exposure.
func BenchmarkE3Table1InfoExposure(b *testing.B) {
	cat := dataset.MustDefault()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = collect.Measure(cat, ecosys.PlatformWeb)
		_ = collect.Measure(cat, ecosys.PlatformMobile)
	}
}

// E4 — dependency-depth distribution (the §IV.B.1 percentages):
// TDG build + overlapping path-layer analysis per platform.
func BenchmarkE4DependencyLayers(b *testing.B) {
	cat := dataset.MustDefault()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, platform := range ecosys.AllPlatforms() {
			g, err := tdg.Build(tdg.NodesFromCatalog(cat, platform), ecosys.BaselineAttacker())
			if err != nil {
				b.Fatal(err)
			}
			_ = strategy.PathLayers(g)
		}
	}
}

// E5 / Fig 4 — the curated 44-account connection graph + DOT export.
func BenchmarkE5Fig4Graph(b *testing.B) {
	cat := dataset.MustDefault()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := dataset.Fig4Graph(cat, ecosys.BaselineAttacker())
		if err != nil {
			b.Fatal(err)
		}
		if err := g.DOT(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// E6 / Fig 5+6 — passive sniffing: one OTP over A5/1 GSM, key
// recovery included. Sub-benchmarks sweep the receiver count against a
// four-channel cell (coverage ablation).
func BenchmarkE6PassiveSniff(b *testing.B) {
	for _, receivers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("receivers=%d", receivers), func(b *testing.B) {
			net := telecom.NewNetwork(telecom.Config{
				KeySpace: a51.KeySpace{Base: 0xC118000000000000, Bits: 10},
				Seed:     7,
			})
			cell, err := net.AddCell(telecom.Cell{ID: "c", ARFCNs: []int{512, 513, 514, 515}, Cipher: telecom.CipherA51})
			if err != nil {
				b.Fatal(err)
			}
			sub, _ := net.Register("i", "+8613800000001")
			term, _ := net.NewTerminal(sub, telecom.RATGSM)
			if err := term.Attach(cell); err != nil {
				b.Fatal(err)
			}
			rig := sniffer.New(net, sniffer.Config{})
			defer rig.Stop()
			if err := rig.Tune(cell.ARFCNs[:receivers]...); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := net.SendSMS("Google", sub.MSISDN, "G-845512 is your code"); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := rig.Stats()
			b.ReportMetric(float64(st.MessagesDecoded)/float64(b.N)*100, "coverage%")
		})
	}
}

// E7 / Fig 7+10 — the complete active MitM takeover sequence, with
// and without the pre-attack A5/1 crack probe (the probe adds one
// passive key recovery to the otherwise crack-free active path).
func BenchmarkE7ActiveMitM(b *testing.B) {
	for _, probe := range []struct {
		name string
		cfg  mitm.Config
	}{
		{"probe=off", mitm.Config{}},
		{"probe=bitsliced", mitm.Config{Cracker: a51.Bitsliced{}}},
	} {
		b.Run(probe.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				net := telecom.NewNetwork(telecom.Config{KeySpace: a51.KeySpace{Bits: 8}, Seed: int64(i)})
				cell, _ := net.AddCell(telecom.Cell{ID: "lbs", ARFCNs: []int{512}, Cipher: telecom.CipherA51, LTE: true})
				vs, _ := net.Register("46000111", "+8613912345678")
				victim, _ := net.NewTerminal(vs, telecom.RATLTE)
				if err := victim.Attach(cell); err != nil {
					b.Fatal(err)
				}
				as, _ := net.Register("46000222", "+8613800000222")
				attacker, _ := net.NewTerminal(as, telecom.RATGSM)
				if err := attacker.Attach(cell); err != nil {
					b.Fatal(err)
				}
				atk, _ := mitm.New(net, victim, cell, attacker, probe.cfg)
				b.StartTimer()
				if _, err := atk.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E8–E10 / §V.B — the three case studies, end to end against live
// HTTP services (plan, sniff, take over, pay).
func BenchmarkE8toE10CaseStudies(b *testing.B) {
	for _, tc := range []struct {
		name string
		num  int
	}{
		{"CaseI-direct", 1},
		{"CaseII-paypal-via-gmail", 2},
		{"CaseIII-alipay-via-ctrip", 3},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s, err := attack.NewScenario(attack.ScenarioConfig{Seed: int64(i + 1), KeyBits: 10})
				if err != nil {
					b.Fatal(err)
				}
				ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
				b.StartTimer()
				if _, err := s.RunCase(ctx, tc.num); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				cancel()
				s.Close()
				b.StartTimer()
			}
		})
	}
}

// E11 / Fig 11+12 — TDG generation over the full catalog.
func BenchmarkE11TDGGeneration(b *testing.B) {
	cat := dataset.MustDefault()
	nodes := tdg.NodesFromCatalog(cat)
	ap := ecosys.BaselineAttacker()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tdg.Build(nodes, ap); err != nil {
			b.Fatal(err)
		}
	}
}

// E12 — the masking combining attack on inconsistently masked IDs.
func BenchmarkE12MaskCombining(b *testing.B) {
	persona := identity.NewGenerator(1).Persona(0)
	views := []string{
		mask.Apply(persona.CitizenID, ecosys.MaskSpec{Masked: true, VisiblePrefix: 6}),
		mask.Apply(persona.CitizenID, ecosys.MaskSpec{Masked: true, VisibleSuffix: 12}),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := mask.Complete(views...); !ok {
			b.Fatal("combining failed")
		}
	}
}

// E13 / Fig 8 — fortify the ecosystem and re-measure (plus the raw
// push-protocol round trip as a sub-benchmark).
func BenchmarkE13Fortification(b *testing.B) {
	cat := dataset.MustDefault()
	b.Run("evaluate", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := countermeasure.Evaluate(cat); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("push-roundtrip", func(b *testing.B) {
		server := countermeasure.NewAuthServer()
		dev, err := server.Register("+8613800000001")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			reqID, err := server.LoginRequest("svc", "+8613800000001")
			if err != nil {
				b.Fatal(err)
			}
			if err := dev.Authorize(server, reqID); err != nil {
				b.Fatal(err)
			}
			sig, err := server.Signal(reqID)
			if err != nil {
				b.Fatal(err)
			}
			if !server.VerifySignal("svc", "+8613800000001", sig) {
				b.Fatal("signal rejected")
			}
		}
	})
}

// E14 / Fig 9 — the SMS OTP round trip over the telecom substrate.
func BenchmarkE14SMSOTPRoundTrip(b *testing.B) {
	net := telecom.NewNetwork(telecom.Config{KeySpace: a51.KeySpace{Bits: 8}, Seed: 1})
	cell, _ := net.AddCell(telecom.Cell{ID: "c", ARFCNs: []int{512}, Cipher: telecom.CipherA51})
	sub, _ := net.Register("i", "+8613800000001")
	term, _ := net.NewTerminal(sub, telecom.RATGSM)
	if err := term.Attach(cell); err != nil {
		b.Fatal(err)
	}
	otp := smsotp.New(smsotp.WithSeed(1), smsotp.WithRateLimit(1<<30, time.Minute))
	sender := &smsotp.TelecomSender{Net: net, Originator: "Svc", DisplayName: "Svc"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := otp.Issue("svc", sub.MSISDN, sender); err != nil {
			b.Fatal(err)
		}
		msg, ok := term.LastSMS()
		if !ok {
			b.Fatal("no delivery")
		}
		var code string
		for j := 0; j+6 <= len(msg.Text); j++ {
			if allDigits(msg.Text[j : j+6]) {
				code = msg.Text[j : j+6]
				break
			}
		}
		if err := otp.Verify("svc", sub.MSISDN, code); err != nil {
			b.Fatal(err)
		}
	}
}

func allDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// E15 — scaling ablations: TDG build, forward closure and backward
// search as the ecosystem grows.
func BenchmarkE15Scaling(b *testing.B) {
	for _, n := range []int{50, 200, 800} {
		cat, err := dataset.Synthetic(n, 5)
		if err != nil {
			b.Fatal(err)
		}
		nodes := tdg.NodesFromCatalog(cat)
		ap := ecosys.BaselineAttacker()
		b.Run(fmt.Sprintf("tdg-build/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tdg.Build(nodes, ap); err != nil {
					b.Fatal(err)
				}
			}
		})
		g, err := tdg.Build(nodes, ap)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("closure/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := strategy.ForwardClosure(g, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("path-layers/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = strategy.PathLayers(g)
			}
		})
		target := g.Nodes()[len(g.Nodes())-1]
		b.Run(fmt.Sprintf("backward/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, _ = strategy.FindPlan(g, target, 0)
			}
		})
	}
}

// E16 — population-scale campaign throughput: chain-reaction attacks
// over a sharded synthetic subscriber base with a bounded worker pool
// and one shared A5/1 cracker. The backend comparison at the smallest
// size shows the amortized TMTO table beating per-victim exhaustive
// search; the size sweep records victims/sec at population scale.
// The 1M size runs only with -benchtime long enough (or -bench
// explicitly); it processes a million subscribers per iteration.
func BenchmarkCampaignThroughput(b *testing.B) {
	run := func(b *testing.B, size int, backend string, scalarRadio, scalarReplay, materialized bool) {
		pop, err := population.New(population.Config{
			Seed: 42, Size: size, MaterializedPersonas: materialized,
		})
		if err != nil {
			b.Fatal(err)
		}
		// Engine construction (TDG compilation, one-off table build)
		// is excluded: the real attack downloads the tables once.
		eng, err := campaign.New(campaign.Config{
			Population: pop, Backend: backend, KeyBits: 12,
			ScalarRadio: scalarRadio, ScalarReplay: scalarReplay,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sum, err := eng.Run(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			if sum.VictimsCompromised == 0 {
				b.Fatal("campaign compromised nobody")
			}
		}
		b.ReportMetric(float64(size)*float64(b.N)/b.Elapsed().Seconds(), "victims/s")
	}
	// Shared-table vs per-victim exhaustive search, same population.
	for _, backend := range []string{"table", "exhaustive"} {
		b.Run(fmt.Sprintf("subscribers=10000/backend=%s", backend), func(b *testing.B) {
			run(b, 10_000, backend, false, false, false)
		})
	}
	// Radio-path ablation: the per-session scalar A5/1 encoder the
	// 64-lane bitsliced batch path replaced (byte-identical output).
	b.Run("subscribers=10000/backend=table/radio=scalar", func(b *testing.B) {
		run(b, 10_000, "table", true, false, false)
	})
	// Replay-path ablation: the per-session scalar chain replay the
	// 64-lane batched table lookup (a51.RecoverBatch) replaced
	// (byte-identical Summary).
	b.Run("subscribers=10000/backend=table/replay=scalar", func(b *testing.B) {
		run(b, 10_000, "table", false, true, false)
	})
	// Persona-path ablation: eagerly materialized personas and leak
	// records — the allocation profile the lazy seed+index derivation
	// replaced (byte-identical Summary).
	b.Run("subscribers=10000/backend=table/personas=materialized", func(b *testing.B) {
		run(b, 10_000, "table", false, false, true)
	})
	// Scale sweep on the shared-table backend.
	for _, size := range []int{100_000, 1_000_000} {
		b.Run(fmt.Sprintf("subscribers=%d/backend=table", size), func(b *testing.B) {
			run(b, size, "table", false, false, false)
		})
	}
}

// E17 — fortification sweep throughput: the paper's defense
// evaluation (baseline vs fortified catalog vs A5/3 radio upgrade vs a
// budget-constrained attacker) over ONE shared population, ONE shared
// TMTO table and a pooled rig set, in a single process. The metric is
// scenario-victims/s: total (subscribers × scenarios) evaluated per
// second — the number that has to hold up when a sweep re-runs
// millions of subscribers per policy candidate. The parallel dimension
// overlaps scenarios under the same Workers-bounded shard budget; on a
// multi-core host parallel=4 beats parallel=1 whenever a single
// scenario's shard count cannot saturate the budget (results are
// byte-identical either way, so this is pure wall-clock).
func BenchmarkScenarioSweep(b *testing.B) {
	scenarios := append(campaign.DefaultSweep(),
		campaign.Scenario{Name: "budget", Budget: campaign.AttackerBudget{Receivers: 4, CellChannels: 16}})
	for _, size := range []int{10_000, 100_000} {
		for _, par := range []int{1, 4} {
			b.Run(fmt.Sprintf("subscribers=%d/scenarios=%d/parallel=%d", size, len(scenarios), par), func(b *testing.B) {
				pop, err := population.New(population.Config{Seed: 42, Size: size})
				if err != nil {
					b.Fatal(err)
				}
				eng, err := campaign.New(campaign.Config{Population: pop, KeyBits: 12, SweepParallel: par})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sw, err := eng.RunSweep(context.Background(), scenarios)
					if err != nil {
						b.Fatal(err)
					}
					base, fort := sw.Results[0].Summary, sw.Results[1].Summary
					if fort.AccountsCompromised >= base.AccountsCompromised {
						b.Fatal("fortified catalog did not reduce takeover mass")
					}
				}
				b.StopTimer()
				total := float64(size*len(scenarios)) * float64(b.N)
				b.ReportMetric(total/b.Elapsed().Seconds(), "scenario-victims/s")
				// Per-iteration rig constructions: the pool rebuilds only
				// when the radio environment changes, so this stays near
				// workers × distinct radio signatures, not shards × scenarios.
				b.ReportMetric(float64(eng.RigsBuilt())/float64(b.N), "rigs-built/op")
			})
		}
	}
}

// Ablation: couple-size 2 vs 3 in TDG construction (DESIGN.md §5).
func BenchmarkAblationCoupleSize(b *testing.B) {
	cat := dataset.MustDefault()
	nodes := tdg.NodesFromCatalog(cat)
	ap := ecosys.BaselineAttacker()
	for _, k := range []int{2, 3} {
		b.Run(fmt.Sprintf("maxCouple=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tdg.Build(nodes, ap, tdg.WithMaxCoupleSize(k)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation: A5/1 crack cost vs key-space size × search backend (the
// rainbow-table stand-in, DESIGN.md §5). "seed" is the original
// exhaustive search (full 228-bit burst generated per candidate);
// "table" measures the amortized post-build lookup cost, with the
// one-off precomputation excluded from the timer exactly as the real
// attack excludes the Kraken table download.
func BenchmarkAblationCrackKeyspace(b *testing.B) {
	const frame = 7
	for _, bits := range []int{8, 12, 16} {
		space := a51.KeySpace{Base: 0xC118000000000000, Bits: bits}
		n, ok := space.Size()
		if !ok {
			b.Fatal("key space too large")
		}
		kc := space.Key(n - 1) // worst case for sweeping backends
		down, _ := a51.New(kc, frame).KeystreamBurst()
		table, err := a51.BuildTable(space, a51.TableConfig{Frames: []uint32{frame}})
		if err != nil {
			b.Fatal(err)
		}
		for _, backend := range []struct {
			name string
			cr   a51.Cracker
		}{
			{"seed", a51.Exhaustive{Workers: 1, FullBurst: true}},
			{"exhaustive", a51.Exhaustive{Workers: 1}},
			{"parallel", a51.Exhaustive{}},
			{"bitsliced", a51.Bitsliced{}},
			{"table", table},
		} {
			b.Run(fmt.Sprintf("bits=%d/backend=%s", bits, backend.name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := backend.cr.Recover(context.Background(), down[:8], frame, space); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
