package actfort

import (
	"context"

	"github.com/actfort/actfort/internal/campaign"
	"github.com/actfort/actfort/internal/population"
)

// Population-scale campaign surface: generate a seeded synthetic
// subscriber base and run the chain-reaction attack across it,
// measuring how far one sniffed SMS OTP propagates through the
// ecosystem at operator scale. See cmd/campaign for the CLI.

type (
	// PopulationConfig parameterizes the subscriber generator.
	PopulationConfig = population.Config
	// Population is a deterministic sharded subscriber base.
	Population = population.Population
	// CampaignConfig parameterizes a campaign engine.
	CampaignConfig = campaign.Config
	// CampaignEngine runs chain-reaction attacks over a population.
	CampaignEngine = campaign.Engine
	// CampaignSummary aggregates a campaign run's metrics.
	CampaignSummary = campaign.Summary
	// CampaignScenario declares one campaign run: countermeasure
	// policy, radio environment, attacker budget and victim segment.
	CampaignScenario = campaign.Scenario
	// SweepSummary is the comparative output of a scenario sweep.
	SweepSummary = campaign.SweepSummary
)

// NewPopulation builds a subscriber generator. Subscriber i is a pure
// function of (seed, i); shards materialize on demand.
func NewPopulation(cfg PopulationConfig) (*Population, error) {
	return population.New(cfg)
}

// NewCampaign compiles a campaign engine: the TDG-derived attack plan
// and the shared A5/1 cracker backend (a lookup-tuned TMTO table by
// default).
func NewCampaign(cfg CampaignConfig) (*CampaignEngine, error) {
	return campaign.New(cfg)
}

// RunCampaign is the one-call form: generate, attack, aggregate.
func RunCampaign(ctx context.Context, cfg CampaignConfig) (*CampaignSummary, error) {
	eng, err := campaign.New(cfg)
	if err != nil {
		return nil, err
	}
	return eng.Run(ctx)
}

// RunSweep is the one-call fortification evaluator: every scenario
// runs against the same population, cracker table and rig pool, and
// the comparative summary shows the per-scenario takeover-mass deltas.
// A nil scenario list runs campaign.DefaultSweep (baseline, fortified,
// A5/3 mix).
func RunSweep(ctx context.Context, cfg CampaignConfig, scenarios []CampaignScenario) (*SweepSummary, error) {
	eng, err := campaign.New(cfg)
	if err != nil {
		return nil, err
	}
	return eng.RunSweep(ctx, scenarios)
}
