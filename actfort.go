// Package actfort is the public API of the ActFort library: a Go
// reproduction of "SMS Goes Nuclear: Fortifying SMS-Based MFA in
// Online Account Ecosystem" (DSN 2021).
//
// ActFort models an Online Account Ecosystem — services with
// authentication paths (conjunctions of credential factors) and
// post-login personal-information exposure — and analyzes how the
// insecurity of SMS-delivered one-time codes propagates: a
// Transformation Dependency Graph links what one account leaks to what
// another account demands, a strategy engine computes which accounts
// an SMS-intercepting attacker ultimately controls (forward closure)
// and how to reach a specific hardened target (backward chain search),
// and a countermeasure suite re-evaluates the ecosystem after
// fortification.
//
// Quick start:
//
//	cat, err := actfort.DefaultCatalog() // the calibrated 201-service ecosystem
//	engine, err := actfort.New(cat, actfort.BaselineAttacker())
//	m, err := engine.Measure()           // Fig 3 / Table I / layer stats
//	plan, err := engine.AttackPlan(actfort.Account("alipay", actfort.Mobile), 0)
//
// The heavy machinery lives in internal packages (telecom and A5/1
// simulation, passive sniffer, active MitM, live HTTP services, attack
// executor); this package re-exports the analysis surface a downstream
// user needs. The cmd/ binaries and examples/ directory demonstrate
// the full stack.
package actfort

import (
	"github.com/actfort/actfort/internal/core"
	"github.com/actfort/actfort/internal/dataset"
	"github.com/actfort/actfort/internal/ecosys"
	"github.com/actfort/actfort/internal/strategy"
	"github.com/actfort/actfort/internal/tdg"
)

// Version identifies the library release.
const Version = "1.0.0"

// Re-exported model types.
type (
	// Catalog is an immutable collection of service specifications.
	Catalog = ecosys.Catalog
	// ServiceSpec describes one online service.
	ServiceSpec = ecosys.ServiceSpec
	// Presence is one platform incarnation of a service.
	Presence = ecosys.Presence
	// AuthPath is a conjunction of credential factors.
	AuthPath = ecosys.AuthPath
	// FactorKind enumerates credential factor types.
	FactorKind = ecosys.FactorKind
	// InfoField enumerates personal-information fields.
	InfoField = ecosys.InfoField
	// AccountID names one service presence (a graph node).
	AccountID = ecosys.AccountID
	// AttackerProfile describes the assumed attacker (AP).
	AttackerProfile = ecosys.AttackerProfile
	// PlatformKind distinguishes web from mobile presences.
	PlatformKind = ecosys.Platform

	// Engine is the ActFort analysis pipeline.
	Engine = core.ActFort
	// Measurement aggregates every §IV statistic.
	Measurement = core.Measurement
	// Graph is the Transformation Dependency Graph.
	Graph = tdg.Graph
	// Plan is an ordered Chain Reaction Attack.
	Plan = strategy.Plan
	// ForwardResult is the outcome of a forward closure.
	ForwardResult = strategy.ForwardResult
	// DepthStats holds the §IV.B.1 dependency-depth percentages.
	DepthStats = strategy.DepthStats
)

// Platforms.
const (
	// Web is the browser client.
	Web = ecosys.PlatformWeb
	// Mobile is the mobile application.
	Mobile = ecosys.PlatformMobile
)

// New builds an analysis engine over a validated catalog.
func New(cat *Catalog, ap AttackerProfile) (*Engine, error) {
	return core.New(cat, ap)
}

// DefaultCatalog returns the calibrated 201-service ecosystem whose
// marginal statistics match the paper's measurement (see DESIGN.md).
func DefaultCatalog() (*Catalog, error) {
	return dataset.Default()
}

// SyntheticCatalog generates an n-service ecosystem with the
// calibrated proportions, for scaling studies.
func SyntheticCatalog(n int, seed int64) (*Catalog, error) {
	return dataset.Synthetic(n, seed)
}

// BaselineAttacker is the paper's threat model: the victim's cellphone
// number plus SMS-code interception.
func BaselineAttacker() AttackerProfile {
	return ecosys.BaselineAttacker()
}

// Account constructs an AccountID.
func Account(service string, platform PlatformKind) AccountID {
	return AccountID{Service: service, Platform: platform}
}

// PathLayers computes the overlapping dependency-depth statistics over
// a graph (the §IV.B.1 percentages).
func PathLayers(g *Graph) DepthStats {
	return strategy.PathLayers(g)
}
