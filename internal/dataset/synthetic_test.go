package dataset

import (
	"testing"

	"github.com/actfort/actfort/internal/authproc"
	"github.com/actfort/actfort/internal/ecosys"
	"github.com/actfort/actfort/internal/strategy"
	"github.com/actfort/actfort/internal/tdg"
)

func TestSyntheticValidAndScales(t *testing.T) {
	for _, n := range []int{10, 100, 500} {
		cat, err := Synthetic(n, 7)
		if err != nil {
			t.Fatal(err)
		}
		if cat.Len() != n+3 { // + the anchor mail providers
			t.Errorf("Synthetic(%d) = %d services", n, cat.Len())
		}
		if errs := authproc.ValidateCatalog(cat); len(errs) != 0 {
			t.Fatalf("Synthetic(%d) invalid: %v", n, errs[0])
		}
	}
	if _, err := Synthetic(0, 1); err == nil {
		t.Error("Synthetic(0) accepted")
	}
}

func TestSyntheticShapeHolds(t *testing.T) {
	cat, err := Synthetic(400, 11)
	if err != nil {
		t.Fatal(err)
	}
	g, err := tdg.Build(tdg.NodesFromCatalog(cat, ecosys.PlatformWeb), ecosys.BaselineAttacker())
	if err != nil {
		t.Fatal(err)
	}
	st := strategy.PathLayers(g)
	directPct := st.Pct(st.Direct)
	if directPct < 60 || directPct > 90 {
		t.Errorf("synthetic direct = %.1f%%, expected near the calibrated ~74%%", directPct)
	}
	if st.Uncompromisable == 0 {
		t.Error("synthetic catalog has no secure accounts")
	}
}

func TestSyntheticDeterministicPerSeed(t *testing.T) {
	a, err := Synthetic(50, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthetic(50, 3)
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := a.Services(), b.Services()
	for i := range sa {
		if sa[i].Name != sb[i].Name || len(sa[i].Presences[0].Paths) != len(sb[i].Presences[0].Paths) {
			t.Fatalf("seeded synthetic differs at %d", i)
		}
	}
	c, err := Synthetic(50, 4)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range sa {
		if len(sa[i].Presences[0].Exposes) != len(c.Services()[i].Presences[0].Exposes) {
			same = false
			break
		}
	}
	if same {
		t.Log("seeds 3 and 4 produced identical exposure counts (possible but unlikely)")
	}
}
