package dataset

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/actfort/actfort/internal/ecosys"
	"github.com/actfort/actfort/internal/tdg"
)

// buildSeed fixes the generator: the calibrated catalog is a data
// artifact, not a random sample — changing this constant changes the
// recorded experiment outputs.
const buildSeed = 20210419

// Catalog sizes (the paper's measurement frame).
const (
	// NumServices is the paper's 201 measured services.
	NumServices = 201
	// NumWeb is the web-presence count (Table I denominator).
	NumWeb = 187
	// NumMobile is the mobile-presence count (Table I denominator).
	NumMobile = 56
	// NumPaths is the paper's 405 total authentication paths.
	NumPaths = 405
)

// Default builds the calibrated 201-service catalog. The result is
// deterministic; failures indicate an internal quota inconsistency and
// are returned as errors rather than silently skewing the measurement.
func Default() (*ecosys.Catalog, error) {
	plans := flagshipPlans()

	// Tally flagship consumption against the quota tables.
	webTmplLeft := cloneQuota(webTemplateQuota)
	mobTmplLeft := cloneQuota(mobileTemplateQuota)
	webExtraLeft := cloneQuota(webExtraQuota)
	mobExtraLeft := cloneQuota(mobileExtraQuota)
	for _, p := range plans {
		if p.web != nil {
			if err := consume(webTmplLeft, p.web.tmpl, p.name+"/web template"); err != nil {
				return nil, err
			}
			for _, x := range p.web.extras {
				if err := consume(webExtraLeft, x, p.name+"/web extra"); err != nil {
					return nil, err
				}
			}
		}
		if p.mobile != nil {
			if err := consume(mobTmplLeft, p.mobile.tmpl, p.name+"/mobile template"); err != nil {
				return nil, err
			}
			for _, x := range p.mobile.extras {
				if err := consume(mobExtraLeft, x, p.name+"/mobile extra"); err != nil {
					return nil, err
				}
			}
		}
	}

	// Expand remaining template quotas into filler slot lists.
	rng := rand.New(rand.NewSource(buildSeed))
	webSlots := expandSlots(webTmplLeft, rng)
	mobSlots := expandSlots(mobTmplLeft, rng)

	flagshipWeb, flagshipMobile := 0, 0
	for _, p := range plans {
		if p.web != nil {
			flagshipWeb++
		}
		if p.mobile != nil {
			flagshipMobile++
		}
	}
	fillerServices := NumServices - len(plans)
	needWeb := NumWeb - flagshipWeb
	needMobile := NumMobile - flagshipMobile
	if len(webSlots) != needWeb || len(mobSlots) != needMobile {
		return nil, fmt.Errorf("dataset: slot mismatch: web %d/%d mobile %d/%d",
			len(webSlots), needWeb, len(mobSlots), needMobile)
	}
	both := needWeb + needMobile - fillerServices
	if both < 0 || both > needMobile || both > needWeb {
		return nil, fmt.Errorf("dataset: impossible platform split (both=%d)", both)
	}

	// Materialize filler plans: the first `both` fillers get both
	// platforms, then web-only, then mobile-only.
	webIdx, mobIdx := 0, 0
	for i := 0; i < fillerServices; i++ {
		sp := servicePlan{
			name:   fmt.Sprintf("svc-%03d", i+1),
			domain: fillerDomains[i%len(fillerDomains)],
		}
		takeWeb := i < both || (webIdx < len(webSlots) && i >= both && i < both+(needWeb-both))
		takeMobile := i < both || i >= both+(needWeb-both)
		if takeWeb {
			sp.web = &presencePlan{
				tmpl:          webSlots[webIdx],
				emailProvider: emailProvidersWeb[webIdx%len(emailProvidersWeb)],
			}
			if sp.web.tmpl == tMidLNK {
				sp.web.boundTo = []string{ssoProviders[webIdx%len(ssoProviders)]}
			}
			webIdx++
		}
		if takeMobile {
			sp.mobile = &presencePlan{
				tmpl:          mobSlots[mobIdx],
				emailProvider: emailProvidersMobile[mobIdx%len(emailProvidersMobile)],
			}
			mobIdx++
		}
		plans = append(plans, sp)
	}
	if webIdx != len(webSlots) || mobIdx != len(mobSlots) {
		return nil, fmt.Errorf("dataset: unassigned slots: web %d/%d mobile %d/%d",
			webIdx, len(webSlots), mobIdx, len(mobSlots))
	}

	// Attach remaining extras to filler direct-template presences
	// (flagship path sets stay exactly as written), cycling so every
	// extra lands somewhere deterministic.
	fillers := plans[len(flagshipPlans()):]
	if err := attachExtras(fillers, webExtraLeft, ecosys.PlatformWeb, rng); err != nil {
		return nil, err
	}
	if err := attachExtras(fillers, mobExtraLeft, ecosys.PlatformMobile, rng); err != nil {
		return nil, err
	}

	// Materialize specs.
	specs := make([]*ecosys.ServiceSpec, 0, len(plans))
	for _, p := range plans {
		spec := &ecosys.ServiceSpec{Name: p.name, Domain: p.domain}
		if p.web != nil {
			spec.Presences = append(spec.Presences, materialize(ecosys.PlatformWeb, p.web))
		}
		if p.mobile != nil {
			spec.Presences = append(spec.Presences, materialize(ecosys.PlatformMobile, p.mobile))
		}
		specs = append(specs, spec)
	}

	// Top exposures up to the exact per-field quotas.
	if err := assignExposures(specs, ecosys.PlatformWeb, webExposureQuota); err != nil {
		return nil, err
	}
	if err := assignExposures(specs, ecosys.PlatformMobile, mobileExposureQuota); err != nil {
		return nil, err
	}

	return ecosys.NewCatalog(specs)
}

// MustDefault is Default panicking on error, for use in binaries and
// benchmarks where the calibrated catalog is a precondition.
func MustDefault() *ecosys.Catalog {
	cat, err := Default()
	if err != nil {
		panic(err)
	}
	return cat
}

func cloneQuota[K comparable](m map[K]int) map[K]int {
	out := make(map[K]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func consume[K comparable](left map[K]int, k K, what string) error {
	if left[k] <= 0 {
		return fmt.Errorf("dataset: quota exhausted for %s (kind %v)", what, k)
	}
	left[k]--
	return nil
}

// expandSlots flattens a remaining-quota map into a shuffled slot
// list. Kinds are expanded in sorted order first so the shuffle is the
// only source of permutation.
func expandSlots(left map[templateKind]int, rng *rand.Rand) []templateKind {
	kinds := make([]int, 0, len(left))
	for k := range left {
		kinds = append(kinds, int(k))
	}
	sort.Ints(kinds)
	var slots []templateKind
	for _, k := range kinds {
		for i := 0; i < left[templateKind(k)]; i++ {
			slots = append(slots, templateKind(k))
		}
	}
	rng.Shuffle(len(slots), func(i, j int) { slots[i], slots[j] = slots[j], slots[i] })
	return slots
}

// attachExtras distributes leftover extra paths over filler presences,
// preferring direct templates (extras model additional reset
// combinations on otherwise ordinary accounts).
func attachExtras(plans []servicePlan, left map[extraKind]int, platform ecosys.Platform, rng *rand.Rand) error {
	var hosts []*presencePlan
	for i := range plans {
		pp := plans[i].presence(platform)
		if pp == nil {
			continue
		}
		if templateTier(pp.tmpl) == tierDirect && len(pp.extras) == 0 {
			hosts = append(hosts, pp)
		}
	}
	if len(hosts) == 0 {
		return fmt.Errorf("dataset: no extra hosts on %v", platform)
	}
	rng.Shuffle(len(hosts), func(i, j int) { hosts[i], hosts[j] = hosts[j], hosts[i] })

	kinds := make([]int, 0, len(left))
	for k := range left {
		kinds = append(kinds, int(k))
	}
	sort.Ints(kinds)
	h := 0
	for _, k := range kinds {
		for i := 0; i < left[extraKind(k)]; i++ {
			hosts[h%len(hosts)].extras = append(hosts[h%len(hosts)].extras, extraKind(k))
			h++
		}
	}
	return nil
}

func (p *servicePlan) presence(platform ecosys.Platform) *presencePlan {
	if platform == ecosys.PlatformWeb {
		return p.web
	}
	return p.mobile
}

// materialize turns a plan into a concrete Presence.
func materialize(platform ecosys.Platform, pp *presencePlan) ecosys.Presence {
	paths := append([]ecosys.AuthPath(nil), pp.tmpl.paths()...)
	for i, x := range pp.extras {
		paths = append(paths, x.path(i))
	}
	return ecosys.Presence{
		Platform:      platform,
		SignupMethods: pp.tmpl.signupMethods(),
		Paths:         paths,
		Exposes:       append([]ecosys.Exposure(nil), pp.expose...),
		BoundTo:       append([]string(nil), pp.boundTo...),
		EmailProvider: pp.emailProvider,
	}
}

// assignExposures tops presences up to exact per-field quotas.
// Identity fields are assigned to fringe accounts first (so middle
// accounts are reachable); bankcards to middle accounts first (so
// depth-3 chains exist).
func assignExposures(specs []*ecosys.ServiceSpec, platform ecosys.Platform, quota map[ecosys.InfoField]int) error {
	type cand struct {
		pr *ecosys.Presence
		t  tier
	}
	var cands []cand
	for _, spec := range specs {
		for i := range spec.Presences {
			pr := &spec.Presences[i]
			if pr.Platform != platform {
				continue
			}
			cands = append(cands, cand{pr: pr, t: tierForPresence(pr)})
		}
	}

	ordered := func(field ecosys.InfoField) []cand {
		var tiers [][]cand
		byTier := func(t tier) []cand {
			var out []cand
			for _, c := range cands {
				if c.t == t {
					out = append(out, c)
				}
			}
			return out
		}
		if field == ecosys.InfoBankcard {
			tiers = [][]cand{byTier(tierMid2), byTier(tierMid3), byTier(tierSecure), byTier(tierDirect)}
		} else {
			tiers = [][]cand{byTier(tierDirect), byTier(tierMid2), byTier(tierMid3), byTier(tierSecure)}
		}
		var out []cand
		for ti, t := range tiers {
			if len(t) == 0 {
				continue
			}
			// Field- and tier-dependent rotation spreads assignments.
			off := (int(field)*7 + ti*13) % len(t)
			out = append(out, t[off:]...)
			out = append(out, t[:off]...)
		}
		return out
	}

	for _, field := range ecosys.AllInfoFields() {
		want, ok := quota[field]
		if !ok {
			continue
		}
		have := 0
		for _, c := range cands {
			if _, exposed := c.pr.Exposure(field); exposed {
				have++
			}
		}
		if have > want {
			return fmt.Errorf("dataset: flagship floors for %v on %v exceed quota: %d > %d",
				field, platform, have, want)
		}
		maskIdx := 1 // flagships used style 0; fillers rotate onward
		for _, c := range ordered(field) {
			if have == want {
				break
			}
			if _, exposed := c.pr.Exposure(field); exposed {
				continue
			}
			c.pr.Exposes = append(c.pr.Exposes, ecosys.Exposure{Field: field, Mask: maskFor(field, maskIdx)})
			maskIdx++
			have++
		}
		if have != want {
			return fmt.Errorf("dataset: cannot reach quota for %v on %v: %d < %d",
				field, platform, have, want)
		}
	}
	return nil
}

// tierForPresence recovers the assignment tier from a materialized
// presence by inspecting its paths (used because exposure assignment
// runs after materialization).
func tierForPresence(pr *ecosys.Presence) tier {
	if pr.HasSMSOnlyPath() {
		return tierDirect
	}
	needsBN, needsKYC, unphishableOnly := false, false, true
	for _, p := range pr.TakeoverPaths() {
		phishable := true
		for _, f := range p.Factors {
			if f.Unphishable() {
				phishable = false
			}
		}
		if phishable {
			unphishableOnly = false
		}
		if p.Requires(ecosys.FactorBankcard) {
			needsBN = true
			if p.Requires(ecosys.FactorCitizenID) {
				needsKYC = true
			}
		}
	}
	switch {
	case needsBN || needsKYC:
		return tierMid3
	case unphishableOnly:
		return tierSecure
	default:
		return tierMid2
	}
}

// Fig4Accounts returns the curated 44-account subset rendered in the
// paper's connection graph: every flagship web presence plus the first
// 13 flagship mobile presences (sorted by name).
func Fig4Accounts() []ecosys.AccountID {
	var web, mobile []ecosys.AccountID
	for _, p := range flagshipPlans() {
		if p.web != nil {
			web = append(web, ecosys.AccountID{Service: p.name, Platform: ecosys.PlatformWeb})
		}
		if p.mobile != nil {
			mobile = append(mobile, ecosys.AccountID{Service: p.name, Platform: ecosys.PlatformMobile})
		}
	}
	sort.Slice(web, func(i, j int) bool { return web[i].Service < web[j].Service })
	sort.Slice(mobile, func(i, j int) bool { return mobile[i].Service < mobile[j].Service })
	out := append([]ecosys.AccountID(nil), web...)
	out = append(out, mobile[:44-len(web)]...)
	return out
}

// Fig4Graph builds the TDG over the curated 44 accounts.
func Fig4Graph(cat *ecosys.Catalog, ap ecosys.AttackerProfile) (*tdg.Graph, error) {
	want := make(map[ecosys.AccountID]bool)
	for _, id := range Fig4Accounts() {
		want[id] = true
	}
	var nodes []tdg.Node
	for _, n := range tdg.NodesFromCatalog(cat) {
		if want[n.ID] {
			nodes = append(nodes, n)
		}
	}
	if len(nodes) != len(want) {
		return nil, fmt.Errorf("dataset: Fig4 subset found %d of %d accounts", len(nodes), len(want))
	}
	return tdg.Build(nodes, ap)
}

// Flagships lists the hand-written service names, sorted.
func Flagships() []string {
	plans := flagshipPlans()
	out := make([]string, 0, len(plans))
	for _, p := range plans {
		out = append(out, p.name)
	}
	sort.Strings(out)
	return out
}
