package dataset

import (
	"fmt"
	"math/rand"

	"github.com/actfort/actfort/internal/ecosys"
)

// Synthetic generates a catalog of n services whose template and
// exposure mix follows the calibrated proportions, for scaling
// experiments (E15). Unlike Default, counts are proportional rather
// than exact, and the output depends on the seed.
func Synthetic(n int, seed int64) (*ecosys.Catalog, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dataset: synthetic size %d <= 0", n)
	}
	rng := rand.New(rand.NewSource(seed))

	// Template mix mirroring the web quota proportions.
	type weighted struct {
		tmpl   templateKind
		weight int
	}
	mix := []weighted{
		{tDirectSigninSMS, 55}, {tDirectResetSMS, 75}, {tDirectBoth, 9},
		{tMidCID, 6}, {tMidName, 4}, {tMidEMC, 5}, {tMidLNK, 3},
		{tMidBN, 12}, {tCouple, 8}, {tSecureBIO, 5}, {tSecureU2F, 5},
	}
	total := 0
	for _, m := range mix {
		total += m.weight
	}
	pick := func() templateKind {
		r := rng.Intn(total)
		for _, m := range mix {
			if r < m.weight {
				return m.tmpl
			}
			r -= m.weight
		}
		return tDirectResetSMS
	}

	// Exposure probabilities from the web quotas.
	exposeProb := map[ecosys.InfoField]float64{}
	for f, q := range webExposureQuota {
		exposeProb[f] = float64(q) / float64(NumWeb)
	}

	// A few fixed email providers anchor EMC and SSO references.
	providers := []string{"syn-mail-0", "syn-mail-1", "syn-mail-2"}
	specs := make([]*ecosys.ServiceSpec, 0, n+len(providers))
	for i, p := range providers {
		specs = append(specs, &ecosys.ServiceSpec{
			Name:   p,
			Domain: ecosys.DomainEmail,
			Presences: []ecosys.Presence{{
				Platform:      ecosys.PlatformWeb,
				SignupMethods: tDirectResetSMS.signupMethods(),
				Paths:         tDirectResetSMS.paths(),
				Exposes: []ecosys.Exposure{
					{Field: ecosys.InfoEmailAddress},
					{Field: ecosys.InfoAcquaintance},
				},
			}},
		})
		_ = i
	}

	for i := 0; i < n; i++ {
		tmpl := pick()
		pr := ecosys.Presence{
			Platform:      ecosys.PlatformWeb,
			SignupMethods: tmpl.signupMethods(),
			Paths:         append([]ecosys.AuthPath(nil), tmpl.paths()...),
			EmailProvider: providers[i%len(providers)],
		}
		if tmpl == tMidLNK {
			pr.BoundTo = []string{providers[i%len(providers)]}
		}
		tier := templateTier(tmpl)
		for _, f := range ecosys.AllInfoFields() { // fixed order: keeps the rng stream deterministic
			prob, tracked := exposeProb[f]
			if !tracked {
				continue
			}
			// Keep the depth-3 construction: bankcards never land on
			// fringe accounts.
			if f == ecosys.InfoBankcard && tier == tierDirect {
				continue
			}
			if rng.Float64() < prob {
				pr.Exposes = append(pr.Exposes, ecosys.Exposure{Field: f, Mask: maskFor(f, rng.Intn(8))})
			}
		}
		specs = append(specs, &ecosys.ServiceSpec{
			Name:      fmt.Sprintf("syn-%05d", i),
			Domain:    fillerDomains[i%len(fillerDomains)],
			Presences: []ecosys.Presence{pr},
		})
	}
	return ecosys.NewCatalog(specs)
}
