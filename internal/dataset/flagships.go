package dataset

import "github.com/actfort/actfort/internal/ecosys"

// flagshipPlans are the hand-written services reproducing the paper's
// named measurements and case studies. Exposure lists here are floors
// that count toward the platform quotas; the generator tops the
// catalog up to the exact Table I numbers with filler services.
//
// Notable reproductions:
//   - gmail / netease-163 / outlook / aliyun-mail reset with SMS codes
//     alone (§IV.B.1 "all of these accounts could be verified with
//     only SMS Code").
//   - paypal requires SMS + email code; its mailbox lives on gmail
//     (Case II).
//   - alipay: web wants bankcard + customer-service option, mobile
//     wants citizen ID + SMS and has a face-scan option and a payment
//     reset (Case III + the asymmetry insight).
//   - ctrip / china-railway / xiaozhu expose (parts of) citizen IDs
//     (§IV.B.1).
//   - gome masks different citizen-ID halves on web vs mobile —
//     combining recovers the whole number (insight 4, E12).
//   - jd / linkedin expose device type and acquaintance info.
//   - baidu-pan / dropbox are cloud stores exposing photo backups.
//   - bank-secure / icloud / wechat carry unphishable-only paths (the
//     "most robust nodes").
func flagshipPlans() []servicePlan {
	expose := func(fields ...ecosys.InfoField) []ecosys.Exposure {
		out := make([]ecosys.Exposure, 0, len(fields))
		for _, f := range fields {
			out = append(out, ecosys.Exposure{Field: f, Mask: maskFor(f, 0)})
		}
		return out
	}
	exposeMasked := func(f ecosys.InfoField, m ecosys.MaskSpec) ecosys.Exposure {
		return ecosys.Exposure{Field: f, Mask: m}
	}

	return []servicePlan{
		// --- email providers: the ecosystem's gateway nodes ---
		{
			name: "gmail", domain: ecosys.DomainEmail,
			web: &presencePlan{tmpl: tDirectBoth,
				expose: expose(ecosys.InfoEmailAddress, ecosys.InfoAcquaintance, ecosys.InfoChatHistory)},
			mobile: &presencePlan{tmpl: mDirect,
				expose: expose(ecosys.InfoEmailAddress, ecosys.InfoDeviceType)},
		},
		{
			name: "outlook", domain: ecosys.DomainEmail,
			web: &presencePlan{tmpl: tDirectBoth,
				expose: expose(ecosys.InfoEmailAddress, ecosys.InfoChatHistory)},
		},
		{
			name: "netease-163", domain: ecosys.DomainEmail,
			web: &presencePlan{tmpl: tDirectBoth,
				expose: expose(ecosys.InfoEmailAddress, ecosys.InfoAcquaintance)},
			mobile: &presencePlan{tmpl: mDirect,
				expose: expose(ecosys.InfoEmailAddress)},
		},
		{
			name: "aliyun-mail", domain: ecosys.DomainEmail,
			web: &presencePlan{tmpl: tDirectBoth, expose: expose(ecosys.InfoEmailAddress)},
		},

		// --- fintech ---
		{
			name: "paypal", domain: ecosys.DomainFintech,
			web: &presencePlan{tmpl: tMidEMC, emailProvider: "gmail",
				expose: expose(ecosys.InfoRealName, ecosys.InfoEmailAddress)},
			mobile: &presencePlan{tmpl: mMidEMC, emailProvider: "gmail",
				expose: expose(ecosys.InfoRealName, ecosys.InfoEmailAddress)},
		},
		{
			name: "alipay", domain: ecosys.DomainFintech,
			web: &presencePlan{tmpl: tMidBN, extras: []extraKind{xOtherAS},
				expose: []ecosys.Exposure{
					{Field: ecosys.InfoRealName},
					exposeMasked(ecosys.InfoBankcard, bankcardMasks[0]),
				}},
			mobile: &presencePlan{tmpl: mMidCID, extras: []extraKind{xPay, xUniqueBIO},
				expose: []ecosys.Exposure{
					{Field: ecosys.InfoRealName},
					{Field: ecosys.InfoCellphone},
					exposeMasked(ecosys.InfoBankcard, bankcardMasks[1]),
				}},
		},
		{
			name: "baidu-wallet", domain: ecosys.DomainFintech,
			mobile: &presencePlan{tmpl: mDirect, // Case I: SMS one-time token logs straight in
				expose: expose(ecosys.InfoRealName, ecosys.InfoCellphone, ecosys.InfoOrderHistory)},
		},
		{
			name: "wechat-pay", domain: ecosys.DomainFintech,
			mobile: &presencePlan{tmpl: mMidBN,
				expose: []ecosys.Exposure{{Field: ecosys.InfoRealName}}},
		},
		{
			name: "unionpay", domain: ecosys.DomainFintech,
			web:    &presencePlan{tmpl: tCouple, expose: expose(ecosys.InfoRealName)},
			mobile: &presencePlan{tmpl: mCouple, expose: expose(ecosys.InfoRealName)},
		},
		{
			name: "bank-secure", domain: ecosys.DomainFintech,
			web: &presencePlan{tmpl: tSecureU2F, expose: expose(ecosys.InfoRealName)},
		},

		// --- travel: the citizen-ID leaks of §IV.B.1 ---
		{
			name: "ctrip", domain: ecosys.DomainTravel,
			web: &presencePlan{tmpl: tDirectSigninSMS,
				expose: []ecosys.Exposure{
					{Field: ecosys.InfoCitizenID}, // "gave the whole or vital part of citizen ID"
					{Field: ecosys.InfoRealName},
					{Field: ecosys.InfoCellphone},
					{Field: ecosys.InfoAddress},
				}},
			mobile: &presencePlan{tmpl: mDirect,
				expose: []ecosys.Exposure{
					{Field: ecosys.InfoCitizenID},
					{Field: ecosys.InfoRealName},
					{Field: ecosys.InfoOrderHistory},
				}},
		},
		{
			name: "china-railway", domain: ecosys.DomainTravel,
			web: &presencePlan{tmpl: tDirectSigninSMS, extras: []extraKind{xInfoCID},
				expose: []ecosys.Exposure{
					exposeMasked(ecosys.InfoCitizenID, citizenIDMasks[2]),
					{Field: ecosys.InfoRealName},
					{Field: ecosys.InfoStudentID},
					{Field: ecosys.InfoAcquaintance},
				}},
			mobile: &presencePlan{tmpl: mDirect,
				expose: []ecosys.Exposure{
					exposeMasked(ecosys.InfoCitizenID, citizenIDMasks[2]),
					{Field: ecosys.InfoRealName},
				}},
		},
		{
			name: "xiaozhu", domain: ecosys.DomainTravel,
			web: &presencePlan{tmpl: tDirectSigninSMS,
				expose: []ecosys.Exposure{{Field: ecosys.InfoCitizenID}, {Field: ecosys.InfoAddress}}},
		},
		{
			name: "expedia", domain: ecosys.DomainTravel,
			web: &presencePlan{tmpl: tMidLNK, boundTo: []string{"gmail"},
				expose: expose(ecosys.InfoOrderHistory, ecosys.InfoAddress)},
		},

		// --- e-commerce ---
		{
			name: "jd", domain: ecosys.DomainECommerce,
			web: &presencePlan{tmpl: tDirectSigninSMS, extras: []extraKind{xUniqueBIO},
				expose: expose(ecosys.InfoDeviceType, ecosys.InfoAcquaintance, ecosys.InfoAddress, ecosys.InfoOrderHistory)},
			mobile: &presencePlan{tmpl: mDirect,
				expose: expose(ecosys.InfoDeviceType, ecosys.InfoAcquaintance, ecosys.InfoOrderHistory)},
		},
		{
			name: "taobao", domain: ecosys.DomainECommerce,
			web:    &presencePlan{tmpl: tDirectBoth, extras: []extraKind{xUniqueBIO}, expose: expose(ecosys.InfoAddress, ecosys.InfoOrderHistory)},
			mobile: &presencePlan{tmpl: mDirect, extras: []extraKind{xUniqueBIO}, expose: expose(ecosys.InfoAddress, ecosys.InfoOrderHistory)},
		},
		{
			name: "gome", domain: ecosys.DomainECommerce,
			// The web/mobile masking asymmetry: web shows the first 6
			// digits, mobile shows the last 12 — combined, all 18.
			web: &presencePlan{tmpl: tDirectResetSMS,
				expose: []ecosys.Exposure{exposeMasked(ecosys.InfoCitizenID, citizenIDMasks[0])}},
			mobile: &presencePlan{tmpl: mDirect,
				expose: []ecosys.Exposure{exposeMasked(ecosys.InfoCitizenID, citizenIDMasks[4])}},
		},
		{
			name:   "pinduoduo",
			domain: ecosys.DomainECommerce,
			mobile: &presencePlan{tmpl: mDirect, expose: expose(ecosys.InfoAddress, ecosys.InfoOrderHistory)},
		},

		// --- social ---
		{
			name: "facebook", domain: ecosys.DomainSocial,
			web: &presencePlan{tmpl: tDirectBoth, extras: []extraKind{xGeneralEMC}, emailProvider: "gmail",
				expose: expose(ecosys.InfoRealName, ecosys.InfoAcquaintance, ecosys.InfoEmailAddress)},
		},
		{
			name: "google", domain: ecosys.DomainSocial,
			web: &presencePlan{tmpl: tDirectResetSMS, // Case II: phone number resets the account
				expose: expose(ecosys.InfoEmailAddress, ecosys.InfoDeviceType, ecosys.InfoAcquaintance)},
			mobile: &presencePlan{tmpl: mDirect,
				expose: expose(ecosys.InfoEmailAddress, ecosys.InfoDeviceType)},
		},
		{
			name: "linkedin", domain: ecosys.DomainSocial,
			web: &presencePlan{tmpl: tDirectResetSMS,
				expose: expose(ecosys.InfoRealName, ecosys.InfoAcquaintance, ecosys.InfoEmailAddress)},
		},
		{
			name: "weibo", domain: ecosys.DomainSocial,
			web:    &presencePlan{tmpl: tDirectSigninSMS, expose: expose(ecosys.InfoUserID, ecosys.InfoAcquaintance)},
			mobile: &presencePlan{tmpl: mDirect, expose: expose(ecosys.InfoUserID, ecosys.InfoAcquaintance)},
		},
		{
			name: "qq", domain: ecosys.DomainSocial,
			web:    &presencePlan{tmpl: tDirectBoth, expose: expose(ecosys.InfoUserID, ecosys.InfoAcquaintance, ecosys.InfoChatHistory)},
			mobile: &presencePlan{tmpl: mDirect, expose: expose(ecosys.InfoUserID, ecosys.InfoChatHistory)},
		},
		{
			name: "wechat", domain: ecosys.DomainSocial,
			// The hardened messenger: device binding + biometrics.
			mobile: &presencePlan{tmpl: mSecure, expose: expose(ecosys.InfoUserID, ecosys.InfoChatHistory)},
		},

		// --- cloud storage: photo backups leak ID scans ---
		{
			name: "baidu-pan", domain: ecosys.DomainCloud,
			web: &presencePlan{tmpl: tDirectResetSMS, extras: []extraKind{xGeneralEMC}, emailProvider: "netease-163",
				expose: expose(ecosys.InfoPhotos, ecosys.InfoCellphone)},
			mobile: &presencePlan{tmpl: mDirect,
				expose: expose(ecosys.InfoPhotos)},
		},
		{
			name: "dropbox", domain: ecosys.DomainCloud,
			web: &presencePlan{tmpl: tMidEMC, emailProvider: "gmail",
				expose: expose(ecosys.InfoPhotos, ecosys.InfoEmailAddress)},
		},
		{
			name: "icloud", domain: ecosys.DomainCloud,
			web: &presencePlan{tmpl: tSecureBIO, expose: expose(ecosys.InfoDeviceType)},
		},

		// --- streaming / gaming / news / education / health ---
		{
			name: "youku", domain: ecosys.DomainStreaming,
			web:    &presencePlan{tmpl: tDirectSigninSMS, expose: expose(ecosys.InfoUserID)},
			mobile: &presencePlan{tmpl: mDirect, expose: expose(ecosys.InfoUserID)},
		},
		{
			name: "bilibili", domain: ecosys.DomainStreaming,
			web:    &presencePlan{tmpl: tDirectResetSMS, expose: expose(ecosys.InfoUserID)},
			mobile: &presencePlan{tmpl: mDirect, expose: expose(ecosys.InfoUserID)},
		},
		{
			name: "steam", domain: ecosys.DomainGaming,
			web: &presencePlan{tmpl: tMidEMC, emailProvider: "outlook",
				expose: expose(ecosys.InfoUserID, ecosys.InfoEmailAddress)},
		},
		{
			name: "netease-games", domain: ecosys.DomainGaming,
			web:    &presencePlan{tmpl: tDirectResetSMS, expose: expose(ecosys.InfoUserID)},
			mobile: &presencePlan{tmpl: mDirect, expose: expose(ecosys.InfoUserID)},
		},
		{
			name: "toutiao", domain: ecosys.DomainNews,
			mobile: &presencePlan{tmpl: mDirect, expose: expose(ecosys.InfoDeviceType)},
		},
		{
			name: "sina-news", domain: ecosys.DomainNews,
			web: &presencePlan{tmpl: tDirectSigninSMS, expose: expose(ecosys.InfoUserID)},
		},
		{
			name: "coursera", domain: ecosys.DomainEducation,
			web: &presencePlan{tmpl: tDirectResetSMS, expose: expose(ecosys.InfoRealName, ecosys.InfoEmailAddress)},
		},
		{
			name: "xuetang", domain: ecosys.DomainEducation,
			web: &presencePlan{tmpl: tDirectSigninSMS, expose: expose(ecosys.InfoStudentID, ecosys.InfoRealName)},
		},
		{
			name: "haodf", domain: ecosys.DomainHealth,
			web: &presencePlan{tmpl: tDirectResetSMS, expose: expose(ecosys.InfoRealName, ecosys.InfoCellphone)},
		},

		// --- lifestyle (mobile-first) ---
		{
			name:   "meituan",
			domain: ecosys.DomainLifestyle,
			mobile: &presencePlan{tmpl: mDirect, expose: expose(ecosys.InfoAddress, ecosys.InfoOrderHistory)},
		},
		{
			name:   "didi",
			domain: ecosys.DomainLifestyle,
			mobile: &presencePlan{tmpl: mDirect, expose: expose(ecosys.InfoAddress, ecosys.InfoCellphone)},
		},
		{
			name:   "eleme",
			domain: ecosys.DomainLifestyle,
			mobile: &presencePlan{tmpl: mMidCID, expose: expose(ecosys.InfoAddress)},
		},
	}
}
