package dataset

import (
	"math"
	"testing"

	"github.com/actfort/actfort/internal/authproc"
	"github.com/actfort/actfort/internal/collect"
	"github.com/actfort/actfort/internal/ecosys"
	"github.com/actfort/actfort/internal/strategy"
	"github.com/actfort/actfort/internal/tdg"
)

func defaultCatalog(t *testing.T) *ecosys.Catalog {
	t.Helper()
	cat, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestCatalogFrameCounts(t *testing.T) {
	cat := defaultCatalog(t)
	if cat.Len() != NumServices {
		t.Errorf("services = %d want %d", cat.Len(), NumServices)
	}
	if got := cat.CountPlatform(ecosys.PlatformWeb); got != NumWeb {
		t.Errorf("web presences = %d want %d", got, NumWeb)
	}
	if got := cat.CountPlatform(ecosys.PlatformMobile); got != NumMobile {
		t.Errorf("mobile presences = %d want %d", got, NumMobile)
	}
	if got := cat.TotalPaths(); got != NumPaths {
		t.Errorf("total paths = %d want %d", got, NumPaths)
	}
}

func TestCatalogIsValid(t *testing.T) {
	cat := defaultCatalog(t)
	if errs := authproc.ValidateCatalog(cat); len(errs) != 0 {
		for _, e := range errs[:min(len(errs), 10)] {
			t.Error(e)
		}
		t.Fatalf("%d validation errors", len(errs))
	}
}

func TestCatalogDeterministic(t *testing.T) {
	a := defaultCatalog(t)
	b := defaultCatalog(t)
	sa, sb := a.Services(), b.Services()
	if len(sa) != len(sb) {
		t.Fatal("different lengths")
	}
	for i := range sa {
		if sa[i].Name != sb[i].Name || len(sa[i].Presences) != len(sb[i].Presences) {
			t.Fatalf("service %d differs: %s vs %s", i, sa[i].Name, sb[i].Name)
		}
		for j := range sa[i].Presences {
			pa, pb := sa[i].Presences[j], sb[i].Presences[j]
			if len(pa.Paths) != len(pb.Paths) || len(pa.Exposes) != len(pb.Exposes) {
				t.Fatalf("%s presence %d differs", sa[i].Name, j)
			}
		}
	}
}

// Table I: the exact exposure counts recovered from the paper's
// percentages.
func TestTable1ExposureCountsExact(t *testing.T) {
	cat := defaultCatalog(t)
	web := collect.Measure(cat, ecosys.PlatformWeb)
	mob := collect.Measure(cat, ecosys.PlatformMobile)

	wantWeb := map[ecosys.InfoField]int{
		ecosys.InfoRealName: 92, ecosys.InfoCitizenID: 22, ecosys.InfoCellphone: 101,
		ecosys.InfoEmailAddress: 111, ecosys.InfoAddress: 96, ecosys.InfoUserID: 86,
		ecosys.InfoBindingAccount: 84, ecosys.InfoAcquaintance: 60, ecosys.InfoDeviceType: 28,
	}
	wantMob := map[ecosys.InfoField]int{
		ecosys.InfoRealName: 42, ecosys.InfoCitizenID: 23, ecosys.InfoCellphone: 49,
		ecosys.InfoEmailAddress: 36, ecosys.InfoAddress: 36, ecosys.InfoUserID: 34,
		ecosys.InfoBindingAccount: 32, ecosys.InfoAcquaintance: 37, ecosys.InfoDeviceType: 20,
	}
	for f, want := range wantWeb {
		if got := web.FieldCounts[f]; got != want {
			t.Errorf("web %v = %d want %d", f, got, want)
		}
	}
	for f, want := range wantMob {
		if got := mob.FieldCounts[f]; got != want {
			t.Errorf("mobile %v = %d want %d", f, got, want)
		}
	}

	// Spot-check the printed percentages.
	checks := []struct {
		got, want float64
	}{
		{web.Pct(ecosys.InfoCellphone), 54.01},
		{web.Pct(ecosys.InfoCitizenID), 11.76},
		{mob.Pct(ecosys.InfoCellphone), 87.50},
		{mob.Pct(ecosys.InfoRealName), 75.00},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > 0.01 {
			t.Errorf("percentage %.2f want %.2f", c.got, c.want)
		}
	}
}

func TestPathCountsPerPlatform(t *testing.T) {
	cat := defaultCatalog(t)
	web := authproc.Measure(cat, ecosys.PlatformWeb)
	mob := authproc.Measure(cat, ecosys.PlatformMobile)
	if web.Paths != 208 {
		t.Errorf("web paths = %d want 208", web.Paths)
	}
	if mob.Paths != 197 {
		t.Errorf("mobile paths = %d want 197", mob.Paths)
	}
	// SMS involvement: the paper's "over 80%" (measured on accounts).
	if pct := web.PctAccounts(web.UsesSMSAnywhere); pct < 80 {
		t.Errorf("web SMS usage = %.1f%%, want >= 80%%", pct)
	}
	if pct := mob.PctAccounts(mob.UsesSMSAnywhere); pct < 80 {
		t.Errorf("mobile SMS usage = %.1f%%, want >= 80%%", pct)
	}
	// Sign-in SMS-only must sit clearly below reset SMS-only.
	if web.SMSOnlySignIn >= web.SMSOnlyReset {
		t.Errorf("web sign-in SMS-only (%d) not below reset (%d)", web.SMSOnlySignIn, web.SMSOnlyReset)
	}
}

// Dependency shape (§IV.B.1): exact direct counts by construction,
// band checks for the deeper layers.
func TestDependencyLayers(t *testing.T) {
	cat := defaultCatalog(t)

	webGraph, err := tdg.Build(tdg.NodesFromCatalog(cat, ecosys.PlatformWeb), ecosys.BaselineAttacker())
	if err != nil {
		t.Fatal(err)
	}
	webStats := strategy.PathLayers(webGraph)
	if webStats.Direct != 139 { // 74.33% vs paper 74.13%
		t.Errorf("web direct = %d want 139", webStats.Direct)
	}
	if pct := webStats.Pct(webStats.OneMiddle); pct < 7 || pct < 9.83-4 || pct > 9.83+4 {
		t.Errorf("web one-middle = %.2f%%, want 9.83%%±4", pct)
	}
	if webStats.TwoLayerFull == 0 {
		t.Error("web has no two-layer full-capacity accounts")
	}
	if webStats.TwoLayerCouple == 0 {
		t.Error("web has no two-layer couple accounts")
	}
	if pct := webStats.Pct(webStats.Uncompromisable); pct < 2 || pct > 8 {
		t.Errorf("web uncompromisable = %.2f%%, want 4.44%%±“a few”", pct)
	}

	mobGraph, err := tdg.Build(tdg.NodesFromCatalog(cat, ecosys.PlatformMobile), ecosys.BaselineAttacker())
	if err != nil {
		t.Fatal(err)
	}
	mobStats := strategy.PathLayers(mobGraph)
	if mobStats.Direct != 42 { // 75.00% vs paper 75.56%
		t.Errorf("mobile direct = %d want 42", mobStats.Direct)
	}
	if mobStats.Uncompromisable != 1 { // 1.79% vs paper 2.22%
		t.Errorf("mobile uncompromisable = %d want 1", mobStats.Uncompromisable)
	}
	if mobStats.OneMiddle == 0 || mobStats.TwoLayerFull == 0 || mobStats.TwoLayerCouple == 0 {
		t.Errorf("mobile depth tail missing: %+v", mobStats)
	}
}

// The headline: essentially the whole ecosystem falls to phone + SMS.
func TestClosureCoversEcosystem(t *testing.T) {
	cat := defaultCatalog(t)
	g, err := tdg.Build(tdg.NodesFromCatalog(cat), ecosys.BaselineAttacker())
	if err != nil {
		t.Fatal(err)
	}
	res, err := strategy.ForwardClosure(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	total := g.Len()
	fallen := res.VictimCount()
	if pct := 100 * float64(fallen) / float64(total); pct < 90 {
		t.Errorf("combined closure compromises %.1f%%, expected >90%%", pct)
	}
	// Survivors must all be unphishable-only accounts.
	for _, id := range res.Survivors {
		node, _ := g.Node(id)
		for _, p := range node.Paths {
			if p.Purpose != ecosys.PurposeSignIn && p.Purpose != ecosys.PurposeReset {
				continue
			}
			hasUnphish := false
			hasCSorPW := false
			for _, f := range p.Factors {
				if f.Unphishable() {
					hasUnphish = true
				}
				if f == ecosys.FactorCustomerService || f == ecosys.FactorPassword {
					hasCSorPW = true
				}
			}
			if !hasUnphish && !hasCSorPW {
				t.Errorf("survivor %s has a phishable path %s", id, p)
			}
		}
	}
}

func TestFlagshipNarrativeProperties(t *testing.T) {
	cat := defaultCatalog(t)

	// Email providers reset with SMS codes alone.
	for _, name := range []string{"gmail", "outlook", "netease-163", "aliyun-mail"} {
		svc, ok := cat.ByName(name)
		if !ok {
			t.Fatalf("flagship %s missing", name)
		}
		pr, _ := svc.Presence(ecosys.PlatformWeb)
		if !pr.HasSMSOnlyPath() {
			t.Errorf("%s/web should be SMS-resettable", name)
		}
	}

	// Ctrip exposes the citizen ID and logs in with SMS alone (the
	// Case III pivot).
	ctrip, _ := cat.ByName("ctrip")
	pr, _ := ctrip.Presence(ecosys.PlatformWeb)
	if _, ok := pr.Exposure(ecosys.InfoCitizenID); !ok {
		t.Error("ctrip/web must expose citizen ID")
	}
	if !pr.HasSMSOnlyPath() {
		t.Error("ctrip/web must be SMS-only loggable")
	}

	// Alipay mobile demands citizen ID + SMS and has a payment reset.
	alipay, _ := cat.ByName("alipay")
	am, _ := alipay.Presence(ecosys.PlatformMobile)
	foundCID, foundPay := false, false
	for _, p := range am.Paths {
		if p.Purpose == ecosys.PurposeReset && p.Requires(ecosys.FactorCitizenID) && p.Requires(ecosys.FactorSMSCode) {
			foundCID = true
		}
		if p.Purpose == ecosys.PurposePaymentReset {
			foundPay = true
		}
	}
	if !foundCID || !foundPay {
		t.Errorf("alipay/mobile paths incomplete: cid=%v pay=%v", foundCID, foundPay)
	}

	// Gome's masks are asymmetric and jointly cover all 18 digits.
	gome, _ := cat.ByName("gome")
	gw, _ := gome.Presence(ecosys.PlatformWeb)
	gm, _ := gome.Presence(ecosys.PlatformMobile)
	ew, _ := gw.Exposure(ecosys.InfoCitizenID)
	em, _ := gm.Exposure(ecosys.InfoCitizenID)
	if ew.Mask == em.Mask {
		t.Error("gome web/mobile masks should differ")
	}
	covered := ew.Mask.VisiblePrefix + ew.Mask.VisibleSuffix + em.Mask.VisiblePrefix + em.Mask.VisibleSuffix
	if covered < 18 {
		t.Errorf("gome masks jointly reveal %d < 18 positions", covered)
	}

	// PayPal's mailbox is on gmail (Case II chain).
	paypal, _ := cat.ByName("paypal")
	pw, _ := paypal.Presence(ecosys.PlatformWeb)
	if pw.EmailProvider != "gmail" {
		t.Errorf("paypal email provider = %q", pw.EmailProvider)
	}
}

func TestFig4Subset(t *testing.T) {
	cat := defaultCatalog(t)
	ids := Fig4Accounts()
	if len(ids) != 44 {
		t.Fatalf("Fig4Accounts = %d want 44", len(ids))
	}
	seen := make(map[ecosys.AccountID]bool)
	for _, id := range ids {
		if seen[id] {
			t.Errorf("duplicate %s", id)
		}
		seen[id] = true
		if _, ok := cat.PresenceOf(id); !ok {
			t.Errorf("account %s not in catalog", id)
		}
	}
	g, err := Fig4Graph(cat, ecosys.BaselineAttacker())
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 44 {
		t.Fatalf("Fig4 graph = %d nodes", g.Len())
	}
	fringe := len(g.FringeNodes())
	internal := len(g.InternalNodes())
	// Paper's Fig 4 shape: fringe (red) dominates.
	if fringe <= internal {
		t.Errorf("fringe=%d internal=%d; expected fringe majority", fringe, internal)
	}
	if len(g.StrongEdges()) == 0 {
		t.Error("Fig4 graph has no strong edges")
	}
}

func TestBankcardNeverOnFringeWeb(t *testing.T) {
	// The depth-3 construction requires bankcards only on non-fringe
	// accounts.
	cat := defaultCatalog(t)
	for _, svc := range cat.Services() {
		for i := range svc.Presences {
			pr := &svc.Presences[i]
			if _, ok := pr.Exposure(ecosys.InfoBankcard); !ok {
				continue
			}
			if pr.HasSMSOnlyPath() {
				t.Errorf("%s/%v exposes bankcard on a fringe account", svc.Name, pr.Platform)
			}
			// And bankcards are always masked (the paper: none expose
			// the whole number).
			e, _ := pr.Exposure(ecosys.InfoBankcard)
			if !e.Mask.Masked {
				t.Errorf("%s/%v exposes an unmasked bankcard", svc.Name, pr.Platform)
			}
		}
	}
}

func TestFlagshipsListed(t *testing.T) {
	names := Flagships()
	if len(names) != 39 {
		t.Errorf("flagships = %d want 39", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("flagships not sorted: %v", names)
		}
	}
}

func BenchmarkDefaultCatalog(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Default(); err != nil {
			b.Fatal(err)
		}
	}
}
