// Package dataset builds the calibrated synthetic service catalog that
// stands in for the paper's 201 hand-probed Alexa services (see
// DESIGN.md's substitution table). The catalog is deterministic and
// quota-driven: 201 services, 187 web presences and 56 mobile
// presences whose marginal statistics are constructed to match the
// published measurement — Table I exposure counts exactly, 405
// authentication paths (208 web / 197 mobile) exactly, and the
// dependency-depth shape (≈74% / ≈75% directly compromisable, a
// middle-layer tail, a few percent unreachable) by construction.
//
// Hand-written "flagship" services reproduce the paper's named cases
// (Gmail, Ctrip, Alipay, PayPal, China Railway, Gome, ...); the rest
// are generated fillers drawing from the same template pools.
package dataset

import "github.com/actfort/actfort/internal/ecosys"

// templateKind is the authentication-path profile of one presence.
type templateKind int

const (
	// Direct templates: compromisable with phone + SMS alone.

	// tDirectSigninSMS is passwordless SMS login (Ctrip-style).
	tDirectSigninSMS templateKind = iota + 1
	// tDirectResetSMS is password login with SMS-only reset
	// (Gmail-style).
	tDirectResetSMS
	// tDirectBoth is password login plus SMS-only reset recorded as a
	// two-path account.
	tDirectBoth

	// Depth-2 middle templates: need one harvested factor.

	// tMidCID resets with SMS + citizen ID (Alipay-mobile-style).
	tMidCID
	// tMidName resets with SMS + real name.
	tMidName
	// tMidEMC resets with SMS + email code (PayPal-style).
	tMidEMC
	// tMidLNK signs in through a bound SSO account (Expedia-style).
	tMidLNK

	// Depth-3 middle templates: need a factor only middle accounts
	// expose (bankcard numbers are assigned to non-fringe accounts).

	// tMidBN resets with SMS + bankcard (Alipay-web-style).
	tMidBN
	// tCouple resets with real name + citizen ID + bankcard, which no
	// single account exposes: a couple-node target.
	tCouple

	// Secure templates: unphishable-only, uncompromisable.

	// tSecureBIO is biometric-only.
	tSecureBIO
	// tSecureU2F is hardware-key-only.
	tSecureU2F

	// Mobile composite templates (apps record more paths).

	// mDirect is password login + SMS login + SMS reset.
	mDirect
	// mMidCID is password login + SMS+CID reset.
	mMidCID
	// mMidName is password login + SMS+name reset.
	mMidName
	// mMidEMC is password login + SMS+email-code reset.
	mMidEMC
	// mMidBN is password login + SMS+bankcard reset.
	mMidBN
	// mCouple is password login + name+CID+bankcard reset.
	mCouple
	// mSecure is hardware-key login + biometric reset.
	mSecure
)

// extraKind is an additional path layered on top of a template.
type extraKind int

const (
	// xInfoCID adds an SMS + citizen-ID reset combination.
	xInfoCID extraKind = iota + 1
	// xGeneralEMC adds an SMS + email-code reset combination.
	xGeneralEMC
	// xUniqueBIO adds a biometric sign-in.
	xUniqueBIO
	// xOtherAS adds a customer-service-assisted reset (Alipay web).
	xOtherAS
	// xPay adds an SMS + citizen-ID payment-code reset (Alipay mobile,
	// Case III).
	xPay
)

// tier orders presences for exposure assignment: identity information
// lands on fringe accounts first (that is what makes middle accounts
// reachable), while bankcard numbers land on middle accounts first
// (that is what creates depth-3 chains).
type tier int

const (
	tierDirect tier = iota + 1
	tierMid2
	tierMid3
	tierSecure
)

func templateTier(t templateKind) tier {
	switch t {
	case tDirectSigninSMS, tDirectResetSMS, tDirectBoth, mDirect:
		return tierDirect
	case tMidCID, tMidName, tMidEMC, tMidLNK, mMidCID, mMidName, mMidEMC:
		return tierMid2
	case tMidBN, tCouple, mMidBN, mCouple:
		return tierMid3
	case tSecureBIO, tSecureU2F, mSecure:
		return tierSecure
	}
	return 0
}

// paths materializes a template's authentication paths.
func (t templateKind) paths() []ecosys.AuthPath {
	pw := ecosys.FactorPassword
	sc := ecosys.FactorSMSCode
	pn := ecosys.FactorCellphone
	switch t {
	case tDirectSigninSMS:
		return []ecosys.AuthPath{
			{ID: "signin-sms", Purpose: ecosys.PurposeSignIn, Factors: []ecosys.FactorKind{pn, sc}},
		}
	case tDirectResetSMS:
		return []ecosys.AuthPath{
			{ID: "reset-sms", Purpose: ecosys.PurposeReset, Factors: []ecosys.FactorKind{pn, sc}},
		}
	case tDirectBoth:
		return []ecosys.AuthPath{
			{ID: "signin-pw", Purpose: ecosys.PurposeSignIn, Factors: []ecosys.FactorKind{pw}},
			{ID: "reset-sms", Purpose: ecosys.PurposeReset, Factors: []ecosys.FactorKind{pn, sc}},
		}
	case tMidCID:
		return []ecosys.AuthPath{
			{ID: "reset-cid", Purpose: ecosys.PurposeReset, Factors: []ecosys.FactorKind{sc, ecosys.FactorCitizenID}},
		}
	case tMidName:
		return []ecosys.AuthPath{
			{ID: "reset-name", Purpose: ecosys.PurposeReset, Factors: []ecosys.FactorKind{sc, ecosys.FactorRealName}},
		}
	case tMidEMC:
		return []ecosys.AuthPath{
			{ID: "reset-emc", Purpose: ecosys.PurposeReset, Factors: []ecosys.FactorKind{sc, ecosys.FactorEmailCode}},
		}
	case tMidLNK:
		return []ecosys.AuthPath{
			{ID: "signin-linked", Purpose: ecosys.PurposeSignIn, Factors: []ecosys.FactorKind{ecosys.FactorLinkedAccount}},
		}
	case tMidBN:
		return []ecosys.AuthPath{
			{ID: "reset-bn", Purpose: ecosys.PurposeReset, Factors: []ecosys.FactorKind{sc, ecosys.FactorBankcard}},
		}
	case tCouple:
		return []ecosys.AuthPath{
			{ID: "reset-kyc", Purpose: ecosys.PurposeReset, Factors: []ecosys.FactorKind{ecosys.FactorRealName, ecosys.FactorCitizenID, ecosys.FactorBankcard}},
		}
	case tSecureBIO:
		return []ecosys.AuthPath{
			{ID: "signin-bio", Purpose: ecosys.PurposeSignIn, Factors: []ecosys.FactorKind{ecosys.FactorBiometric}},
		}
	case tSecureU2F:
		return []ecosys.AuthPath{
			{ID: "signin-u2f", Purpose: ecosys.PurposeSignIn, Factors: []ecosys.FactorKind{ecosys.FactorU2F}},
		}
	case mDirect:
		return []ecosys.AuthPath{
			{ID: "signin-pw", Purpose: ecosys.PurposeSignIn, Factors: []ecosys.FactorKind{pw}},
			{ID: "signin-sms", Purpose: ecosys.PurposeSignIn, Factors: []ecosys.FactorKind{pn, sc}},
			{ID: "reset-sms", Purpose: ecosys.PurposeReset, Factors: []ecosys.FactorKind{pn, sc}},
		}
	case mMidCID:
		return []ecosys.AuthPath{
			{ID: "signin-pw", Purpose: ecosys.PurposeSignIn, Factors: []ecosys.FactorKind{pw}},
			{ID: "reset-cid", Purpose: ecosys.PurposeReset, Factors: []ecosys.FactorKind{sc, ecosys.FactorCitizenID}},
		}
	case mMidName:
		return []ecosys.AuthPath{
			{ID: "signin-pw", Purpose: ecosys.PurposeSignIn, Factors: []ecosys.FactorKind{pw}},
			{ID: "reset-name", Purpose: ecosys.PurposeReset, Factors: []ecosys.FactorKind{sc, ecosys.FactorRealName}},
		}
	case mMidEMC:
		return []ecosys.AuthPath{
			{ID: "signin-pw", Purpose: ecosys.PurposeSignIn, Factors: []ecosys.FactorKind{pw}},
			{ID: "reset-emc", Purpose: ecosys.PurposeReset, Factors: []ecosys.FactorKind{sc, ecosys.FactorEmailCode}},
		}
	case mMidBN:
		return []ecosys.AuthPath{
			{ID: "signin-pw", Purpose: ecosys.PurposeSignIn, Factors: []ecosys.FactorKind{pw}},
			{ID: "reset-bn", Purpose: ecosys.PurposeReset, Factors: []ecosys.FactorKind{sc, ecosys.FactorBankcard}},
		}
	case mCouple:
		return []ecosys.AuthPath{
			{ID: "signin-pw", Purpose: ecosys.PurposeSignIn, Factors: []ecosys.FactorKind{pw}},
			{ID: "reset-kyc", Purpose: ecosys.PurposeReset, Factors: []ecosys.FactorKind{ecosys.FactorRealName, ecosys.FactorCitizenID, ecosys.FactorBankcard}},
		}
	case mSecure:
		return []ecosys.AuthPath{
			{ID: "signin-u2f", Purpose: ecosys.PurposeSignIn, Factors: []ecosys.FactorKind{ecosys.FactorU2F}},
			{ID: "reset-bio", Purpose: ecosys.PurposeReset, Factors: []ecosys.FactorKind{ecosys.FactorBiometric}},
		}
	}
	return nil
}

// signupMethods per template flavor (cosmetic but recorded, as the
// Authentication Process module records registration requirements).
func (t templateKind) signupMethods() []ecosys.SignupMethod {
	switch t {
	case tDirectSigninSMS, mDirect:
		return []ecosys.SignupMethod{ecosys.SignupPhone}
	case tMidLNK:
		return []ecosys.SignupMethod{ecosys.SignupLinked}
	case tMidEMC, mMidEMC:
		return []ecosys.SignupMethod{ecosys.SignupEmail, ecosys.SignupPhone}
	default:
		return []ecosys.SignupMethod{ecosys.SignupUsername, ecosys.SignupPhone}
	}
}

// path materializes an extra path (idx keeps IDs unique per presence).
func (x extraKind) path(idx int) ecosys.AuthPath {
	sc := ecosys.FactorSMSCode
	suffix := string(rune('a' + idx%26))
	switch x {
	case xInfoCID:
		return ecosys.AuthPath{ID: "extra-cid-" + suffix, Purpose: ecosys.PurposeReset,
			Factors: []ecosys.FactorKind{sc, ecosys.FactorCitizenID}}
	case xGeneralEMC:
		return ecosys.AuthPath{ID: "extra-emc-" + suffix, Purpose: ecosys.PurposeReset,
			Factors: []ecosys.FactorKind{sc, ecosys.FactorEmailCode}}
	case xUniqueBIO:
		return ecosys.AuthPath{ID: "extra-bio-" + suffix, Purpose: ecosys.PurposeSignIn,
			Factors: []ecosys.FactorKind{ecosys.FactorBiometric}}
	case xOtherAS:
		return ecosys.AuthPath{ID: "extra-cs-" + suffix, Purpose: ecosys.PurposeReset,
			Factors: []ecosys.FactorKind{ecosys.FactorCustomerService, sc}}
	case xPay:
		return ecosys.AuthPath{ID: "extra-pay-" + suffix, Purpose: ecosys.PurposePaymentReset,
			Factors: []ecosys.FactorKind{sc, ecosys.FactorCitizenID}}
	}
	return ecosys.AuthPath{}
}

// presencePlan describes one platform incarnation before
// materialization.
type presencePlan struct {
	tmpl   templateKind
	extras []extraKind
	// expose is the flagship exposure floor (quota assignment adds to
	// it, never removes).
	expose        []ecosys.Exposure
	emailProvider string
	boundTo       []string
}

// servicePlan is one service before materialization.
type servicePlan struct {
	name   string
	domain ecosys.Domain
	web    *presencePlan
	mobile *presencePlan
}

// Platform quota tables (see the derivation in DESIGN.md §4 and
// EXPERIMENTS.md): counts of presences per template.
var webTemplateQuota = map[templateKind]int{
	tDirectSigninSMS: 55,
	tDirectResetSMS:  75,
	tDirectBoth:      9,
	tMidCID:          6,
	tMidName:         4,
	tMidEMC:          5,
	tMidLNK:          3,
	tMidBN:           12,
	tCouple:          8,
	tSecureBIO:       5,
	tSecureU2F:       5,
}

var mobileTemplateQuota = map[templateKind]int{
	mDirect:  42,
	mMidCID:  4,
	mMidName: 2,
	mMidEMC:  3,
	mMidBN:   2,
	mCouple:  2,
	mSecure:  1,
}

// Extra-path quotas per platform (the +12 web / +43 mobile paths that
// bring totals to 208 and 197).
var webExtraQuota = map[extraKind]int{
	xInfoCID:    1,
	xGeneralEMC: 2,
	xOtherAS:    2,
	xUniqueBIO:  7,
}

var mobileExtraQuota = map[extraKind]int{
	xInfoCID:    5,
	xGeneralEMC: 2,
	xUniqueBIO:  24,
	xOtherAS:    11,
	xPay:        1,
}

// exposureQuota fixes, per platform, exactly how many presences expose
// each field. Web and mobile counts for the Table I rows are the exact
// integer numerators recovered from the paper's printed percentages
// (n=187 web, n=56 mobile). The remaining fields (bankcard, photos,
// student ID, histories) are not in Table I; their quotas are chosen
// consistent with the paper's prose (bankcards always masked and rarer
// than other fields; cloud photos on storage services).
var webExposureQuota = map[ecosys.InfoField]int{
	ecosys.InfoRealName:       92,  // 49.20%
	ecosys.InfoCitizenID:      22,  // 11.76%
	ecosys.InfoCellphone:      101, // 54.01%
	ecosys.InfoEmailAddress:   111, // 59.36%
	ecosys.InfoAddress:        96,  // 51.34%
	ecosys.InfoUserID:         86,  // 45.99%
	ecosys.InfoBindingAccount: 84,  // 44.92%
	ecosys.InfoAcquaintance:   60,  // 32.09%
	ecosys.InfoDeviceType:     28,  // 14.97%
	ecosys.InfoBankcard:       30,
	ecosys.InfoPhotos:         12,
	ecosys.InfoStudentID:      6,
	ecosys.InfoOrderHistory:   40,
	ecosys.InfoChatHistory:    20,
}

var mobileExposureQuota = map[ecosys.InfoField]int{
	ecosys.InfoRealName:       42, // 75.00%
	ecosys.InfoCitizenID:      23, // 41.07%
	ecosys.InfoCellphone:      49, // 87.50%
	ecosys.InfoEmailAddress:   36, // 64.29%
	ecosys.InfoAddress:        36, // 64.29%
	ecosys.InfoUserID:         34, // 60.71%
	ecosys.InfoBindingAccount: 32, // 57.14%
	ecosys.InfoAcquaintance:   37, // 66.07%
	ecosys.InfoDeviceType:     20, // 35.71%
	ecosys.InfoBankcard:       14,
	ecosys.InfoPhotos:         6,
	ecosys.InfoStudentID:      3,
	ecosys.InfoOrderHistory:   20,
	ecosys.InfoChatHistory:    10,
}

// maskWindows are the deliberately inconsistent per-service masking
// styles (§IV.B.2 insight 4); index rotation spreads them over
// services so the combining attack has material to merge.
var citizenIDMasks = []ecosys.MaskSpec{
	{Masked: true, VisiblePrefix: 6},
	{Masked: true, VisibleSuffix: 6},
	{Masked: true, VisiblePrefix: 10, VisibleSuffix: 4},
	{Masked: true, VisiblePrefix: 3, VisibleSuffix: 4},
	{Masked: true, VisibleSuffix: 12},
}

var bankcardMasks = []ecosys.MaskSpec{
	{Masked: true, VisibleSuffix: 4},
	{Masked: true, VisiblePrefix: 6},
	{Masked: true, VisiblePrefix: 8, VisibleSuffix: 4},
	{Masked: true, VisibleSuffix: 12},
}

// maskFor picks the mask style for the i-th assignment of a field.
func maskFor(f ecosys.InfoField, i int) ecosys.MaskSpec {
	switch f {
	case ecosys.InfoCitizenID:
		return citizenIDMasks[i%len(citizenIDMasks)]
	case ecosys.InfoBankcard:
		return bankcardMasks[i%len(bankcardMasks)]
	}
	return ecosys.Unmasked
}

// fillerDomains cycles category labels over generated services.
var fillerDomains = []ecosys.Domain{
	ecosys.DomainNews, ecosys.DomainECommerce, ecosys.DomainSocial,
	ecosys.DomainStreaming, ecosys.DomainLifestyle, ecosys.DomainGaming,
	ecosys.DomainEducation, ecosys.DomainHealth, ecosys.DomainTravel,
	ecosys.DomainCloud, ecosys.DomainFintech,
}

// emailProvidersWeb/Mobile are the mailbox hosts rotated over EMC
// accounts. The mobile list only names providers with mobile
// presences, so mobile-only dependency graphs stay closed.
var emailProvidersWeb = []string{"gmail", "netease-163", "outlook", "aliyun-mail"}
var emailProvidersMobile = []string{"gmail", "netease-163"}

// ssoProviders are the bind targets for linked-account sign-ins.
var ssoProviders = []string{"google", "facebook", "qq"}
