// Package phishing implements the paper's remote attack variant (§II,
// §VII.B): instead of intercepting SMS codes over the air — which
// binds the attacker to within hundreds of meters of the victim — a
// phishing page relays the authentication flow in real time
// (PRMitM-style, the Gelernter et al. attack the paper builds on).
//
// The attacker's page poses as the target service's login. The victim
// enters their phone number; the attacker triggers the REAL service's
// reset, which texts the victim a genuine code; the page then asks the
// victim to "confirm" that code, and the attacker replays it within
// its validity window.
//
// The trade-offs the paper calls out are modeled: phishing removes the
// distance constraint (no sniffer needed), but it requires the
// victim's response ("less stealthy and requires victims' response"),
// so success is probabilistic in the victim's vigilance, whereas radio
// interception succeeds unconditionally and silently.
package phishing

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"github.com/actfort/actfort/internal/attack"
	"github.com/actfort/actfort/internal/gsmcodec"
	"github.com/actfort/actfort/internal/telecom"
)

// Victim models the human at the far end of a phishing flow: their
// handset (where real codes arrive) and their vigilance.
type Victim struct {
	// Terminal is the victim's real phone.
	Terminal *telecom.Terminal
	// Vigilance in [0,1]: the probability the victim refuses to type
	// the code into an unfamiliar page. 0 always falls for it.
	Vigilance float64
}

// Page is one deployed phishing page for one impersonated service.
type Page struct {
	// Service is the impersonated brand ("Google").
	Service string
	// LureURL is where victims are directed (cosmetic).
	LureURL string

	mu      sync.Mutex
	rng     *rand.Rand
	visits  int
	codes   []string
	refused int
}

// NewPage deploys a phishing page. The seed drives victim-response
// randomness so experiments are reproducible.
func NewPage(service string, seed int64) *Page {
	return &Page{
		Service: service,
		LureURL: "https://" + service + "-secure-login.example/verify",
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// Errors.
var (
	// ErrVictimRefused reports that the victim did not enter the code
	// (vigilance won) — the phishing run is burned for this victim.
	ErrVictimRefused = errors.New("phishing: victim refused to enter the code")
	// ErrNoCode reports that no fresh code reached the victim's phone.
	ErrNoCode = errors.New("phishing: no code arrived on the victim's handset")
)

// Stats summarizes a page's campaign.
type Stats struct {
	Visits  int
	Relayed int
	Refused int
}

// RelayCode executes one PRMitM round: the victim has just been lured
// onto the page (trigger the real reset before calling this); the page
// waits for the genuine code to arrive on the victim's handset and —
// if the victim cooperates — relays it to the attacker.
//
// sentAfter anchors freshness: only messages beyond that inbox index
// count, so stale codes are never replayed.
func (p *Page) RelayCode(ctx context.Context, v Victim, sentAfter int) (string, error) {
	p.mu.Lock()
	p.visits++
	cooperates := p.rng.Float64() >= v.Vigilance
	p.mu.Unlock()

	// The genuine service SMS lands on the victim's real phone.
	inbox := v.Terminal.Inbox()
	if len(inbox) <= sentAfter {
		return "", ErrNoCode
	}
	var code string
	for _, msg := range inbox[sentAfter:] {
		if c, ok := extractCode(msg); ok {
			code = c
		}
	}
	if code == "" {
		return "", ErrNoCode
	}

	if !cooperates {
		p.mu.Lock()
		p.refused++
		p.mu.Unlock()
		return "", fmt.Errorf("%w (vigilance %.2f)", ErrVictimRefused, v.Vigilance)
	}
	p.mu.Lock()
	p.codes = append(p.codes, code)
	p.mu.Unlock()
	return code, nil
}

// Stats returns campaign counters.
func (p *Page) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{Visits: p.visits, Relayed: len(p.codes), Refused: p.refused}
}

// Codes returns every relayed code, oldest first.
func (p *Page) Codes() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.codes...)
}

// extractCode pulls a 4–8 digit OTP from an SMS.
func extractCode(msg gsmcodec.Deliver) (string, bool) {
	text := msg.Text
	run := 0
	start := -1
	best := ""
	for i := 0; i <= len(text); i++ {
		if i < len(text) && text[i] >= '0' && text[i] <= '9' {
			if run == 0 {
				start = i
			}
			run++
			continue
		}
		if run >= 4 && run <= 8 && best == "" {
			best = text[start : start+run]
		}
		run = 0
	}
	return best, best != ""
}

// Interceptor adapts a phishing campaign to the attack executor's
// Interceptor interface: where the sniffer listens to the air, this
// lures the victim once per needed code. It works at any distance but
// fails whenever the victim's vigilance wins.
type Interceptor struct {
	Page   *Page
	Victim Victim

	mu     sync.Mutex
	cursor int
}

var _ attack.Interceptor = (*Interceptor)(nil)

// InterceptCode implements the attack.Interceptor contract.
func (pi *Interceptor) InterceptCode(ctx context.Context, originator string) (string, error) {
	pi.mu.Lock()
	cursor := pi.cursor
	pi.mu.Unlock()

	code, err := pi.Page.RelayCode(ctx, pi.Victim, cursor)
	pi.mu.Lock()
	pi.cursor = len(pi.Victim.Terminal.Inbox())
	pi.mu.Unlock()
	if err != nil {
		return "", err
	}
	return code, nil
}
