package phishing

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/actfort/actfort/internal/a51"
	"github.com/actfort/actfort/internal/attack"
	"github.com/actfort/actfort/internal/ecosys"
	"github.com/actfort/actfort/internal/telecom"
)

func victimWorld(t *testing.T) (*telecom.Network, *telecom.Subscriber, *telecom.Terminal) {
	t.Helper()
	n := telecom.NewNetwork(telecom.Config{KeySpace: a51.KeySpace{Bits: 8}, Seed: 1})
	cell, err := n.AddCell(telecom.Cell{ID: "c", ARFCNs: []int{512}, Cipher: telecom.CipherA51})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := n.Register("imsi", "+8613800000001")
	if err != nil {
		t.Fatal(err)
	}
	term, err := n.NewTerminal(sub, telecom.RATGSM)
	if err != nil {
		t.Fatal(err)
	}
	if err := term.Attach(cell); err != nil {
		t.Fatal(err)
	}
	return n, sub, term
}

func TestRelayFromGullibleVictim(t *testing.T) {
	n, sub, term := victimWorld(t)
	page := NewPage("google", 1)
	if !strings.Contains(page.LureURL, "google") {
		t.Errorf("lure URL = %q", page.LureURL)
	}

	before := len(term.Inbox())
	if _, err := n.SendSMS("Google", sub.MSISDN, "G-845512 is your Google verification code."); err != nil {
		t.Fatal(err)
	}
	code, err := page.RelayCode(context.Background(), Victim{Terminal: term, Vigilance: 0}, before)
	if err != nil {
		t.Fatal(err)
	}
	if code != "845512" {
		t.Errorf("relayed code = %q", code)
	}
	st := page.Stats()
	if st.Visits != 1 || st.Relayed != 1 || st.Refused != 0 {
		t.Errorf("stats = %+v", st)
	}
	if got := page.Codes(); len(got) != 1 || got[0] != "845512" {
		t.Errorf("codes = %v", got)
	}
}

func TestVigilantVictimRefuses(t *testing.T) {
	n, sub, term := victimWorld(t)
	page := NewPage("google", 1)
	before := len(term.Inbox())
	if _, err := n.SendSMS("Google", sub.MSISDN, "code 111222"); err != nil {
		t.Fatal(err)
	}
	_, err := page.RelayCode(context.Background(), Victim{Terminal: term, Vigilance: 1}, before)
	if !errors.Is(err, ErrVictimRefused) {
		t.Fatalf("err = %v want ErrVictimRefused", err)
	}
	if st := page.Stats(); st.Refused != 1 || st.Relayed != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestStaleCodesNeverReplayed(t *testing.T) {
	n, sub, term := victimWorld(t)
	page := NewPage("google", 1)
	if _, err := n.SendSMS("Google", sub.MSISDN, "old code 999999"); err != nil {
		t.Fatal(err)
	}
	// The freshness anchor sits after the old message.
	anchor := len(term.Inbox())
	_, err := page.RelayCode(context.Background(), Victim{Terminal: term}, anchor)
	if !errors.Is(err, ErrNoCode) {
		t.Fatalf("err = %v want ErrNoCode", err)
	}
	// A plain chat message is not a code either.
	if _, err := n.SendSMS("Mom", sub.MSISDN, "see you at dinner"); err != nil {
		t.Fatal(err)
	}
	_, err = page.RelayCode(context.Background(), Victim{Terminal: term}, anchor)
	if !errors.Is(err, ErrNoCode) {
		t.Fatalf("non-code message relayed: %v", err)
	}
}

func TestVigilanceRateObserved(t *testing.T) {
	n, sub, term := victimWorld(t)
	page := NewPage("google", 7)
	v := Victim{Terminal: term, Vigilance: 0.5}
	relayed := 0
	for i := 0; i < 60; i++ {
		before := len(term.Inbox())
		if _, err := n.SendSMS("Google", sub.MSISDN, "code 123456"); err != nil {
			t.Fatal(err)
		}
		if _, err := page.RelayCode(context.Background(), v, before); err == nil {
			relayed++
		}
	}
	if relayed < 15 || relayed > 45 {
		t.Errorf("relayed %d/60 at vigilance 0.5; implausible", relayed)
	}
}

// The distance-free chain attack: the same executor that normally uses
// the sniffer runs on phishing relays instead — Case I without radio
// proximity (the §VII.B extension).
func TestPhishingDrivenChainAttack(t *testing.T) {
	s, err := attack.NewScenario(attack.ScenarioConfig{Seed: 42, KeyBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Sniffer.Stop() // the attacker is far away: no radio

	page := NewPage("baidu", 3)
	exec := &attack.Executor{
		Platform: s.Platform,
		Intercept: &Interceptor{
			Page:   page,
			Victim: Victim{Terminal: s.VictimTerminal, Vigilance: 0}, // fell for the lure
		},
		Know: attack.NewKnowledge(s.Victim.Persona.Phone),
	}
	plan, err := s.PlanFor(ecosys.AccountID{Service: "baidu-wallet", Platform: ecosys.PlatformMobile})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	res, err := exec.Execute(ctx, plan)
	if err != nil {
		t.Fatalf("%v (transcript %v)", err, res.Transcript())
	}
	if res.FinalToken == "" {
		t.Fatal("no session")
	}
	if st := page.Stats(); st.Relayed == 0 {
		t.Error("no codes were phished")
	}

	// The vigilant victim breaks the same attack.
	vigilant := &attack.Executor{
		Platform: s.Platform,
		Intercept: &Interceptor{
			Page:   NewPage("baidu", 4),
			Victim: Victim{Terminal: s.VictimTerminal, Vigilance: 1},
		},
		Know: attack.NewKnowledge(s.Victim.Persona.Phone),
	}
	if _, err := vigilant.Execute(ctx, plan); !errors.Is(err, ErrVictimRefused) {
		t.Fatalf("vigilant victim err = %v want ErrVictimRefused", err)
	}
}
