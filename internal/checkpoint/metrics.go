package checkpoint

import "github.com/actfort/actfort/internal/obs"

// Durability telemetry on the process-wide obs registry. The journal
// is owned by one goroutine and appends happen per shard, so these add
// nothing measurable to the write path — but they make the fsync cost
// of durable campaigns visible live (the dominant per-shard overhead
// on spinning or network disks).
var (
	metJournalBytes = obs.Default.NewCounter("checkpoint_journal_bytes_total",
		"Bytes of framed shard records appended to the run journal.")
	metJournalFsync = obs.Default.NewHistogram("checkpoint_journal_fsync_seconds",
		"fsync latency of each journal append (one observation per appended shard).",
		obs.LatencyBuckets)
	metSnapshotBytes = obs.Default.NewCounter("checkpoint_snapshot_bytes_total",
		"Bytes written to snapshot files (temp write, before rename).")
	metSnapshotSecs = obs.Default.NewHistogram("checkpoint_snapshot_seconds",
		"Wall time of each snapshot fold: temp write, fsync, rename, journal truncate.",
		obs.LatencyBuckets)
)
