// Package checkpoint is the durability layer under long campaigns: an
// append-only, CRC32C-framed run journal plus periodic snapshots, laid
// out in one directory per run, so a multi-hour population sweep that
// dies — kill -9, OOM, power loss — resumes from its last journaled
// shard instead of starting over.
//
// The contract, in write order:
//
//   - MANIFEST.json pins the run's inputs (population seed and
//     fingerprint version, scenario hash, cracker-table identity,
//     shard count and owned shard range). Opening a directory whose
//     manifest disagrees with the caller's is refused loudly, field by
//     field: resuming half a run against different inputs would
//     corrupt the result silently, which is worse than losing it.
//   - journal.log is append-only: one CRC32C-framed record per
//     completed unit of work (a shard index plus an opaque payload —
//     the campaign's serialized partial Summary). Each append is
//     fsynced; a torn tail (the kill-9 signature) is detected by frame
//     length/CRC on resume and truncated away, losing at most the one
//     record that never finished writing — and that shard simply
//     reruns, because shard results are pure functions of the seed.
//   - snapshot.bin periodically folds the journal into one merged
//     payload plus a done-shard bitmap, written to a temp file and
//     atomically renamed, after which the journal is truncated. Resume
//     cost is therefore O(snapshot + records since last snapshot), not
//     O(run). A crash between rename and truncate leaves journal
//     records the bitmap already covers; resume skips them.
//
// Every write path is instrumented with faultinject points that leave
// exactly the on-disk state a crash at that instant would, so the
// recovery invariants are enforced by tests rather than asserted in
// comments.
//
// A Journal is owned by one goroutine (the campaign aggregator); the
// package adds no locking of its own.
package checkpoint

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"

	"github.com/actfort/actfort/internal/faultinject"
)

// FormatVersion versions the directory layout and frame formats.
const FormatVersion = 1

// DefaultSnapshotEvery is the journal-records-between-snapshots
// default: frequent enough that resume replay stays cheap, rare
// enough that snapshot writes don't dominate shard throughput.
const DefaultSnapshotEvery = 64

// The files of a checkpoint directory.
const (
	manifestFile = "MANIFEST.json"
	journalFile  = "journal.log"
	snapshotFile = "snapshot.bin"
	snapshotTemp = "snapshot.tmp"
	// ResultFile is the final merged payload a completed run writes
	// (atomically); -merge mode combines these across shard ranges.
	ResultFile = "summary.json"
)

// Manifest identifies every input a resumed run must agree on. Two
// manifests that differ in any field describe different runs; Open
// refuses to graft one onto the other's journal.
type Manifest struct {
	// FormatVersion pins the on-disk layout.
	FormatVersion int `json:"formatVersion"`
	// PopulationSeed, PopulationSize, ShardSize, LeakFraction and
	// EnrollmentScale are the population generator's inputs;
	// FingerprintVersion is the generator's draw-pipeline generation
	// (population.FingerprintVersion). Together they pin the world
	// being attacked without materializing it.
	PopulationSeed     int64   `json:"populationSeed"`
	PopulationSize     int     `json:"populationSize"`
	ShardSize          int     `json:"shardSize"`
	LeakFraction       float64 `json:"leakFraction"`
	EnrollmentScale    float64 `json:"enrollmentScale"`
	FingerprintVersion int     `json:"fingerprintVersion"`
	// ScenarioHash digests the normalized scenario (policy, radio
	// environment, budget, segment, platform).
	ScenarioHash string `json:"scenarioHash"`
	// TableIdentity names the cracker backend and, for TMTO tables,
	// the table geometry (key space, chain length, frame set digest).
	TableIdentity string `json:"tableIdentity"`
	// NumShards is the population's total shard count; ShardLo/ShardHi
	// bound the contiguous range [ShardLo, ShardHi) this journal owns.
	// Multi-process runs give each process a disjoint range; -merge
	// validates the ranges tile [0, NumShards).
	NumShards int `json:"numShards"`
	ShardLo   int `json:"shardLo"`
	ShardHi   int `json:"shardHi"`
}

// Diff lists human-readable field differences against other (empty =
// identical). The loud half of the resume refusal.
func (m Manifest) Diff(other Manifest) []string {
	var d []string
	add := func(field string, a, b any) {
		if a != b {
			d = append(d, fmt.Sprintf("%s: journal has %v, caller has %v", field, a, b))
		}
	}
	add("formatVersion", m.FormatVersion, other.FormatVersion)
	add("populationSeed", m.PopulationSeed, other.PopulationSeed)
	add("populationSize", m.PopulationSize, other.PopulationSize)
	add("shardSize", m.ShardSize, other.ShardSize)
	add("leakFraction", m.LeakFraction, other.LeakFraction)
	add("enrollmentScale", m.EnrollmentScale, other.EnrollmentScale)
	add("fingerprintVersion", m.FingerprintVersion, other.FingerprintVersion)
	add("scenarioHash", m.ScenarioHash, other.ScenarioHash)
	add("tableIdentity", m.TableIdentity, other.TableIdentity)
	add("numShards", m.NumShards, other.NumShards)
	add("shardLo", m.ShardLo, other.ShardLo)
	add("shardHi", m.ShardHi, other.ShardHi)
	return d
}

// DiffRun is Diff ignoring the owned shard range — the compatibility
// check between partial results of one multi-process run.
func (m Manifest) DiffRun(other Manifest) []string {
	a, b := m, other
	a.ShardLo, a.ShardHi = 0, 0
	b.ShardLo, b.ShardHi = 0, 0
	return a.Diff(b)
}

// ErrManifestMismatch reports a resume attempt whose inputs changed.
var ErrManifestMismatch = errors.New("checkpoint: run inputs changed since the journal was written")

// ErrSnapshotCorrupt reports an unreadable snapshot file. Unlike a
// torn journal tail (an expected crash artifact, silently truncated),
// a damaged snapshot means lost state: the journal it superseded was
// truncated, so the run cannot be trusted to resume.
var ErrSnapshotCorrupt = errors.New("checkpoint: snapshot corrupt")

// Record is one journaled unit of completed work.
type Record struct {
	// Shard is the completed shard's index.
	Shard int
	// Payload is the caller's serialized per-shard result.
	Payload []byte
}

// State is what Open recovers from a prior run's directory.
type State struct {
	// Done marks journaled shards (length NumShards); DoneCount is its
	// population count.
	Done      []bool
	DoneCount int
	// Snapshot is the last snapshot's merged payload (nil when the run
	// never snapshotted).
	Snapshot []byte
	// Records holds the journal records appended after the snapshot,
	// in append order, deduplicated against the snapshot bitmap.
	Records []Record
	// TruncatedBytes counts torn-tail bytes dropped from the journal —
	// nonzero exactly when the previous process died mid-append.
	TruncatedBytes int64
}

// Options tunes Open.
type Options struct {
	// SnapshotEvery is the number of appends between automatic
	// snapshot eligibility (0 = DefaultSnapshotEvery; the caller still
	// drives Snapshot itself, via Due).
	SnapshotEvery int
	// Fault optionally injects crashes at the instrumented write
	// points (nil = none).
	Fault *faultinject.Injector
}

// Journal is an open checkpoint directory: appends go to the run
// journal, periodic Snapshot calls fold them away. Owned by a single
// goroutine.
type Journal struct {
	dir       string
	manifest  Manifest
	f         *os.File
	fault     *faultinject.Injector
	every     int
	sinceSnap int
	done      []bool
	doneCount int
}

// crcTable is the Castagnoli polynomial every frame is checked with
// (hardware-accelerated on every platform Go targets).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// journalMagic opens every journal frame.
const journalMagic = uint32(0x314A4B43) // "CKJ1"

// snapshotMagic opens the snapshot file.
var snapshotMagic = [8]byte{'A', 'C', 'T', 'F', 'S', 'N', 'P', '1'}

// Open creates or resumes the checkpoint directory at dir for the run
// m describes. On first open it writes the manifest; on reopen it
// refuses (ErrManifestMismatch, with a field-by-field diff) unless the
// manifests agree exactly. The returned State carries everything the
// prior process journaled; a torn journal tail is truncated away and
// an orphaned snapshot temp file removed.
func Open(dir string, m Manifest, opts Options) (*Journal, *State, error) {
	if m.FormatVersion == 0 {
		m.FormatVersion = FormatVersion
	}
	if m.NumShards <= 0 || m.ShardLo < 0 || m.ShardHi > m.NumShards || m.ShardLo >= m.ShardHi {
		return nil, nil, fmt.Errorf("checkpoint: manifest shard range [%d, %d) invalid for %d shards",
			m.ShardLo, m.ShardHi, m.NumShards)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("checkpoint: %w", err)
	}
	mPath := filepath.Join(dir, manifestFile)
	if prev, err := os.ReadFile(mPath); err == nil {
		var pm Manifest
		if err := json.Unmarshal(prev, &pm); err != nil {
			return nil, nil, fmt.Errorf("checkpoint: unreadable manifest %s: %w", mPath, err)
		}
		if diff := pm.Diff(m); len(diff) > 0 {
			return nil, nil, fmt.Errorf("%w (%s):\n  %s — delete the checkpoint directory to start over",
				ErrManifestMismatch, dir, joinLines(diff))
		}
	} else if os.IsNotExist(err) {
		b, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			return nil, nil, fmt.Errorf("checkpoint: encode manifest: %w", err)
		}
		if err := atomicWrite(dir, manifestFile, append(b, '\n')); err != nil {
			return nil, nil, err
		}
	} else {
		return nil, nil, fmt.Errorf("checkpoint: %w", err)
	}
	// An orphaned snapshot temp is the signature of a crash mid-
	// snapshot-write; the committed snapshot (if any) is authoritative.
	_ = os.Remove(filepath.Join(dir, snapshotTemp))

	st := &State{Done: make([]bool, m.NumShards)}
	if err := loadSnapshot(filepath.Join(dir, snapshotFile), m.NumShards, st); err != nil {
		return nil, nil, err
	}
	if err := recoverJournal(filepath.Join(dir, journalFile), m, st); err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, journalFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint: open journal: %w", err)
	}
	every := opts.SnapshotEvery
	if every <= 0 {
		every = DefaultSnapshotEvery
	}
	j := &Journal{
		dir:       dir,
		manifest:  m,
		f:         f,
		fault:     opts.Fault,
		every:     every,
		sinceSnap: len(st.Records),
		done:      append([]bool(nil), st.Done...),
		doneCount: st.DoneCount,
	}
	return j, st, nil
}

// Manifest returns the run manifest the journal was opened with.
func (j *Journal) Manifest() Manifest { return j.manifest }

// DoneCount reports how many shards are journaled (snapshot + log).
func (j *Journal) DoneCount() int { return j.doneCount }

// Append journals one completed shard: frame, fsync, mark done. An
// injected crash tears the frame mid-write — the kill-9 signature the
// resume path must survive — and returns faultinject.ErrCrash, which
// the caller must treat as process death.
func (j *Journal) Append(shard int, payload []byte) error {
	if shard < 0 || shard >= j.manifest.NumShards {
		return fmt.Errorf("checkpoint: append shard %d outside [0, %d)", shard, j.manifest.NumShards)
	}
	frame := appendFrame(nil, shard, payload)
	if err := j.fault.At(faultinject.PointJournalAppend); err != nil {
		// Die mid-write: half the frame reaches the disk, exactly what
		// a crash between write and fsync can leave.
		_, _ = j.f.Write(frame[:len(frame)/2])
		_ = j.f.Sync()
		return err
	}
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("checkpoint: journal append: %w", err)
	}
	syncStart := time.Now()
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("checkpoint: journal sync: %w", err)
	}
	metJournalFsync.ObserveSince(syncStart)
	metJournalBytes.Add(int64(len(frame)))
	if !j.done[shard] {
		j.done[shard] = true
		j.doneCount++
	}
	j.sinceSnap++
	return nil
}

// Due reports whether enough records accumulated since the last
// snapshot that the caller should fold them into one.
func (j *Journal) Due() bool { return j.sinceSnap >= j.every }

// Snapshot atomically replaces the snapshot file with payload (the
// caller's merged state) plus the done-shard bitmap, then truncates
// the now-redundant journal. Crash-safe at every step: temp write,
// rename and truncate are separately instrumented, and resume handles
// each intermediate state.
func (j *Journal) Snapshot(payload []byte) error {
	snapStart := time.Now()
	body := make([]byte, 0, 16+len(j.done)/8+len(payload))
	body = binary.LittleEndian.AppendUint32(body, uint32(j.manifest.NumShards))
	bitmap := make([]byte, (j.manifest.NumShards+7)/8)
	for i, d := range j.done {
		if d {
			bitmap[i>>3] |= 1 << (uint(i) & 7)
		}
	}
	body = append(body, bitmap...)
	body = binary.LittleEndian.AppendUint32(body, uint32(len(payload)))
	body = append(body, payload...)
	full := make([]byte, 0, 8+len(body)+4)
	full = append(full, snapshotMagic[:]...)
	full = append(full, body...)
	full = binary.LittleEndian.AppendUint32(full, crc32.Checksum(body, crcTable))

	tmp := filepath.Join(j.dir, snapshotTemp)
	if err := j.fault.At(faultinject.PointSnapshotWrite); err != nil {
		// Die mid-temp-write: a torn temp file, never renamed.
		_ = os.WriteFile(tmp, full[:len(full)/2], 0o644)
		return err
	}
	if err := writeFileSync(tmp, full); err != nil {
		return fmt.Errorf("checkpoint: snapshot write: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(j.dir, snapshotFile)); err != nil {
		return fmt.Errorf("checkpoint: snapshot rename: %w", err)
	}
	syncDir(j.dir)
	if err := j.fault.At(faultinject.PointSnapshotRename); err != nil {
		// Die between rename and truncate: the journal still holds
		// records the snapshot bitmap already covers.
		return err
	}
	if err := j.f.Truncate(0); err != nil {
		return fmt.Errorf("checkpoint: journal truncate: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("checkpoint: journal sync: %w", err)
	}
	j.sinceSnap = 0
	if err := j.fault.At(faultinject.PointJournalTruncate); err != nil {
		return err
	}
	metSnapshotBytes.Add(int64(len(full)))
	metSnapshotSecs.ObserveSince(snapStart)
	return nil
}

// WriteResult atomically writes the run's final payload (ResultFile).
func (j *Journal) WriteResult(payload []byte) error {
	return atomicWrite(j.dir, ResultFile, payload)
}

// Close releases the journal file handle.
func (j *Journal) Close() error {
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// appendFrame encodes one journal frame onto buf:
// magic | shard | len(payload) | payload | CRC32C(shard..payload).
func appendFrame(buf []byte, shard int, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, journalMagic)
	start := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(shard))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf[start:], crcTable))
}

// recoverJournal scans the journal, appending post-snapshot records to
// st and truncating any torn tail in place.
func recoverJournal(path string, m Manifest, st *State) error {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("checkpoint: read journal: %w", err)
	}
	off := 0
	good := 0
	for {
		rec, next, ok := nextFrame(data, off, m.NumShards)
		if !ok {
			break
		}
		off = next
		good = next
		if st.Done[rec.Shard] {
			continue // bitmap already covers it (crash between snapshot rename and truncate)
		}
		st.Done[rec.Shard] = true
		st.DoneCount++
		st.Records = append(st.Records, rec)
	}
	if good < len(data) {
		st.TruncatedBytes = int64(len(data) - good)
		if err := os.Truncate(path, int64(good)); err != nil {
			return fmt.Errorf("checkpoint: truncate torn journal tail: %w", err)
		}
	}
	return nil
}

// nextFrame decodes the frame at off; ok is false at a clean end, a
// torn tail, or any corruption (all three stop the scan).
func nextFrame(data []byte, off, numShards int) (Record, int, bool) {
	const header = 12 // magic + shard + len
	if len(data)-off < header {
		return Record{}, 0, false
	}
	if binary.LittleEndian.Uint32(data[off:]) != journalMagic {
		return Record{}, 0, false
	}
	shard := binary.LittleEndian.Uint32(data[off+4:])
	plen := binary.LittleEndian.Uint32(data[off+8:])
	if int(shard) >= numShards || plen > uint32(len(data)) {
		return Record{}, 0, false
	}
	end := off + header + int(plen) + 4
	if end > len(data) {
		return Record{}, 0, false
	}
	sum := binary.LittleEndian.Uint32(data[end-4:])
	if crc32.Checksum(data[off+4:end-4], crcTable) != sum {
		return Record{}, 0, false
	}
	payload := append([]byte(nil), data[off+header:end-4]...)
	return Record{Shard: int(shard), Payload: payload}, end, true
}

// loadSnapshot reads the committed snapshot into st (absent = no-op).
func loadSnapshot(path string, numShards int, st *State) error {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("checkpoint: read snapshot: %w", err)
	}
	if len(data) < 8+4+4 || [8]byte(data[:8]) != snapshotMagic {
		return fmt.Errorf("%w: %s: bad header", ErrSnapshotCorrupt, path)
	}
	body := data[8 : len(data)-4]
	sum := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, crcTable) != sum {
		return fmt.Errorf("%w: %s: CRC mismatch", ErrSnapshotCorrupt, path)
	}
	n := int(binary.LittleEndian.Uint32(body))
	if n != numShards {
		return fmt.Errorf("%w: %s: bitmap covers %d shards, run has %d", ErrSnapshotCorrupt, path, n, numShards)
	}
	bm := (n + 7) / 8
	if len(body) < 4+bm+4 {
		return fmt.Errorf("%w: %s: truncated bitmap", ErrSnapshotCorrupt, path)
	}
	bitmap := body[4 : 4+bm]
	plen := int(binary.LittleEndian.Uint32(body[4+bm:]))
	payload := body[4+bm+4:]
	if len(payload) != plen {
		return fmt.Errorf("%w: %s: payload length %d, want %d", ErrSnapshotCorrupt, path, len(payload), plen)
	}
	for i := 0; i < n; i++ {
		if bitmap[i>>3]>>(uint(i)&7)&1 == 1 {
			st.Done[i] = true
			st.DoneCount++
		}
	}
	st.Snapshot = append([]byte(nil), payload...)
	return nil
}

// atomicWrite writes name under dir via temp + fsync + rename.
func atomicWrite(dir, name string, data []byte) error {
	tmp := filepath.Join(dir, name+".tmp")
	if err := writeFileSync(tmp, data); err != nil {
		return fmt.Errorf("checkpoint: write %s: %w", name, err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return fmt.Errorf("checkpoint: commit %s: %w", name, err)
	}
	syncDir(dir)
	return nil
}

// writeFileSync is os.WriteFile plus fsync before close.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so renames survive power loss;
// best-effort because not every platform allows it.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// joinLines renders a diff list for the mismatch error.
func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n  "
		}
		out += l
	}
	return out
}

// ReadManifest loads the manifest of an existing checkpoint directory
// (merge mode rebuilds the population from it).
func ReadManifest(dir string) (Manifest, error) {
	b, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return Manifest{}, fmt.Errorf("checkpoint: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return Manifest{}, fmt.Errorf("checkpoint: decode manifest: %w", err)
	}
	return m, nil
}

// ReadResult loads a completed run's final payload from dir.
func ReadResult(dir string) ([]byte, error) {
	b, err := os.ReadFile(filepath.Join(dir, ResultFile))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w (did the run complete?)", err)
	}
	return b, nil
}
