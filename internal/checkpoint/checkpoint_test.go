package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/actfort/actfort/internal/faultinject"
)

func testManifest() Manifest {
	return Manifest{
		FormatVersion:      FormatVersion,
		PopulationSeed:     42,
		PopulationSize:     4096,
		ShardSize:          256,
		LeakFraction:       0.35,
		EnrollmentScale:    1,
		FingerprintVersion: 2,
		ScenarioHash:       "abc123",
		TableIdentity:      "table/bits=12",
		NumShards:          16,
		ShardLo:            0,
		ShardHi:            16,
	}
}

func payload(shard int) []byte {
	return []byte(fmt.Sprintf(`{"shard":%d,"victims":%d}`, shard, shard*7))
}

// openFresh opens dir and fails the test on error.
func openFresh(t *testing.T, dir string, m Manifest, opts Options) (*Journal, *State) {
	t.Helper()
	j, st, err := Open(dir, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	return j, st
}

func TestJournalAppendAndResume(t *testing.T) {
	dir := t.TempDir()
	j, st := openFresh(t, dir, testManifest(), Options{})
	if st.DoneCount != 0 || st.Snapshot != nil {
		t.Fatalf("fresh state: %+v", st)
	}
	for _, s := range []int{3, 0, 7} {
		if err := j.Append(s, payload(s)); err != nil {
			t.Fatal(err)
		}
	}
	if j.DoneCount() != 3 {
		t.Fatalf("DoneCount = %d", j.DoneCount())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, st2 := openFresh(t, dir, testManifest(), Options{})
	defer j2.Close()
	if st2.DoneCount != 3 || !st2.Done[3] || !st2.Done[0] || !st2.Done[7] {
		t.Fatalf("resumed state: %+v", st2)
	}
	if len(st2.Records) != 3 || st2.Records[0].Shard != 3 || !bytes.Equal(st2.Records[2].Payload, payload(7)) {
		t.Fatalf("records: %+v", st2.Records)
	}
	if st2.TruncatedBytes != 0 {
		t.Fatalf("clean journal reported %d torn bytes", st2.TruncatedBytes)
	}
}

// TestTornTailTruncated pins the kill-9 signature: a frame cut at
// every possible byte offset must resume to exactly the records before
// it, with the tail truncated from the file.
func TestTornTailTruncated(t *testing.T) {
	// Build a reference journal with 2 complete frames + measure them.
	ref := t.TempDir()
	j, _ := openFresh(t, ref, testManifest(), Options{})
	if err := j.Append(1, payload(1)); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(2, payload(2)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	full, err := os.ReadFile(filepath.Join(ref, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	frame1 := len(appendFrame(nil, 1, payload(1)))

	for cut := frame1 + 1; cut < len(full); cut++ {
		dir := t.TempDir()
		j0, _ := openFresh(t, dir, testManifest(), Options{})
		j0.Close()
		if err := os.WriteFile(filepath.Join(dir, journalFile), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j1, st := openFresh(t, dir, testManifest(), Options{})
		j1.Close()
		if len(st.Records) != 1 || st.Records[0].Shard != 1 {
			t.Fatalf("cut %d: records %+v", cut, st.Records)
		}
		if st.TruncatedBytes != int64(cut-frame1) {
			t.Fatalf("cut %d: truncated %d want %d", cut, st.TruncatedBytes, cut-frame1)
		}
		if fi, _ := os.Stat(filepath.Join(dir, journalFile)); fi.Size() != int64(frame1) {
			t.Fatalf("cut %d: torn tail left on disk (%d bytes)", cut, fi.Size())
		}
	}
}

// TestCorruptFrameStopsScan pins bit-flip handling: a corrupted byte
// anywhere in a frame fails its CRC and drops it plus everything after.
func TestCorruptFrameStopsScan(t *testing.T) {
	dir := t.TempDir()
	j, _ := openFresh(t, dir, testManifest(), Options{})
	for s := 0; s < 3; s++ {
		if err := j.Append(s, payload(s)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	path := filepath.Join(dir, journalFile)
	data, _ := os.ReadFile(path)
	frame0 := len(appendFrame(nil, 0, payload(0)))
	data[frame0+8] ^= 0x40 // flip a bit inside frame 1
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, st := openFresh(t, dir, testManifest(), Options{})
	j2.Close()
	if len(st.Records) != 1 || st.Records[0].Shard != 0 {
		t.Fatalf("records after corruption: %+v", st.Records)
	}
}

func TestManifestMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	j, _ := openFresh(t, dir, testManifest(), Options{})
	j.Close()

	cases := map[string]func(*Manifest){
		"seed":     func(m *Manifest) { m.PopulationSeed = 43 },
		"size":     func(m *Manifest) { m.PopulationSize = 8192 },
		"scenario": func(m *Manifest) { m.ScenarioHash = "zzz" },
		"table":    func(m *Manifest) { m.TableIdentity = "bitsliced" },
		"fpv":      func(m *Manifest) { m.FingerprintVersion = 3 },
		"range":    func(m *Manifest) { m.ShardLo, m.ShardHi = 8, 16 },
	}
	for name, mutate := range cases {
		m := testManifest()
		mutate(&m)
		if _, _, err := Open(dir, m, Options{}); !errors.Is(err, ErrManifestMismatch) {
			t.Errorf("%s: changed manifest accepted (err = %v)", name, err)
		}
	}
	// The identical manifest still opens.
	j2, _ := openFresh(t, dir, testManifest(), Options{})
	j2.Close()
}

func TestSnapshotFoldsJournal(t *testing.T) {
	dir := t.TempDir()
	j, _ := openFresh(t, dir, testManifest(), Options{SnapshotEvery: 2})
	if err := j.Append(4, payload(4)); err != nil {
		t.Fatal(err)
	}
	if j.Due() {
		t.Fatal("Due after 1 of 2 appends")
	}
	if err := j.Append(5, payload(5)); err != nil {
		t.Fatal(err)
	}
	if !j.Due() {
		t.Fatal("not Due after 2 appends")
	}
	merged := []byte(`{"merged":true}`)
	if err := j.Snapshot(merged); err != nil {
		t.Fatal(err)
	}
	if fi, _ := os.Stat(filepath.Join(dir, journalFile)); fi.Size() != 0 {
		t.Fatalf("journal not truncated after snapshot: %d bytes", fi.Size())
	}
	if err := j.Append(6, payload(6)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, st := openFresh(t, dir, testManifest(), Options{})
	j2.Close()
	if !bytes.Equal(st.Snapshot, merged) {
		t.Fatalf("snapshot payload = %q", st.Snapshot)
	}
	if st.DoneCount != 3 || !st.Done[4] || !st.Done[5] || !st.Done[6] {
		t.Fatalf("state: %+v", st)
	}
	if len(st.Records) != 1 || st.Records[0].Shard != 6 {
		t.Fatalf("post-snapshot records: %+v", st.Records)
	}
}

// TestCrashMatrix drives every instrumented crash point and verifies
// the directory resumes to exactly the pre-crash journaled set.
func TestCrashMatrix(t *testing.T) {
	for _, point := range faultinject.Points() {
		t.Run(string(point), func(t *testing.T) {
			dir := t.TempDir()
			inj, err := faultinject.New(faultinject.Config{Crash: map[faultinject.Point]int{point: 1}})
			if err != nil {
				t.Fatal(err)
			}
			j, _ := openFresh(t, dir, testManifest(), Options{SnapshotEvery: 2, Fault: inj})
			crashed := false
			var wantDone []int
			for s := 0; s < 6 && !crashed; s++ {
				if err := j.Append(s, payload(s)); err != nil {
					if !errors.Is(err, faultinject.ErrCrash) {
						t.Fatal(err)
					}
					crashed = true
					break
				}
				wantDone = append(wantDone, s)
				if j.Due() {
					if err := j.Snapshot([]byte(fmt.Sprintf(`{"upTo":%d}`, s))); err != nil {
						if !errors.Is(err, faultinject.ErrCrash) {
							t.Fatal(err)
						}
						crashed = true
					}
				}
			}
			j.Close()
			if !crashed {
				t.Fatalf("crash point %s never fired", point)
			}

			j2, st := openFresh(t, dir, testManifest(), Options{})
			j2.Close()
			if st.DoneCount != len(wantDone) {
				t.Fatalf("resumed DoneCount = %d want %d (done %v)", st.DoneCount, len(wantDone), st.Done)
			}
			for _, s := range wantDone {
				if !st.Done[s] {
					t.Errorf("shard %d lost across crash", s)
				}
			}
			// The directory must be fully usable after recovery.
			if err := j2Reopen(dir, len(wantDone)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// j2Reopen appends one more record post-recovery and verifies it
// round-trips — the "recovered directory keeps working" check.
func j2Reopen(dir string, doneCount int) error {
	j, st, err := Open(dir, testManifest(), Options{})
	if err != nil {
		return err
	}
	if st.DoneCount != doneCount {
		return fmt.Errorf("reopen DoneCount = %d want %d", st.DoneCount, doneCount)
	}
	if err := j.Append(15, payload(15)); err != nil {
		return err
	}
	if err := j.Close(); err != nil {
		return err
	}
	_, st2, err := Open(dir, testManifest(), Options{})
	if err != nil {
		return err
	}
	if !st2.Done[15] {
		return fmt.Errorf("post-recovery append lost")
	}
	return nil
}

func TestCorruptSnapshotRefusedLoudly(t *testing.T) {
	dir := t.TempDir()
	j, _ := openFresh(t, dir, testManifest(), Options{SnapshotEvery: 1})
	if err := j.Append(0, payload(0)); err != nil {
		t.Fatal(err)
	}
	if err := j.Snapshot([]byte("state")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	path := filepath.Join(dir, snapshotFile)
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, testManifest(), Options{}); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("corrupt snapshot opened: %v", err)
	}
}

func TestResultRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, _ := openFresh(t, dir, testManifest(), Options{})
	defer j.Close()
	if _, err := ReadResult(dir); err == nil {
		t.Fatal("missing result read succeeded")
	}
	if err := j.WriteResult([]byte(`{"final":1}`)); err != nil {
		t.Fatal(err)
	}
	b, err := ReadResult(dir)
	if err != nil || !bytes.Equal(b, []byte(`{"final":1}`)) {
		t.Fatalf("ReadResult = %q, %v", b, err)
	}
	m, err := ReadManifest(dir)
	if err != nil || m != testManifest() {
		t.Fatalf("ReadManifest = %+v, %v", m, err)
	}
}

func TestOpenValidatesRange(t *testing.T) {
	m := testManifest()
	m.ShardLo, m.ShardHi = 8, 4
	if _, _, err := Open(t.TempDir(), m, Options{}); err == nil {
		t.Error("inverted range accepted")
	}
	m = testManifest()
	m.NumShards = 0
	if _, _, err := Open(t.TempDir(), m, Options{}); err == nil {
		t.Error("zero shards accepted")
	}
}

func TestAppendValidatesShard(t *testing.T) {
	j, _ := openFresh(t, t.TempDir(), testManifest(), Options{})
	defer j.Close()
	if err := j.Append(16, nil); err == nil {
		t.Error("out-of-range shard accepted")
	}
	if err := j.Append(-1, nil); err == nil {
		t.Error("negative shard accepted")
	}
}
