package smsotp

import (
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/actfort/actfort/internal/a51"
	"github.com/actfort/actfort/internal/telecom"
)

// capture is a Sender that records the last delivered code.
type capture struct {
	dest, service, code string
	fail                error
	sends               int
}

func (c *capture) SendCode(destination, serviceName, code string) error {
	c.sends++
	if c.fail != nil {
		return c.fail
	}
	c.dest, c.service, c.code = destination, serviceName, code
	return nil
}

func TestIssueAndVerify(t *testing.T) {
	s := New(WithSeed(42))
	snd := &capture{}
	if err := s.Issue("gmail", "+8613800000001", snd); err != nil {
		t.Fatal(err)
	}
	if len(snd.code) != 6 {
		t.Fatalf("code %q not 6 digits", snd.code)
	}
	if !s.Outstanding("gmail", "+8613800000001") {
		t.Error("code not outstanding after issue")
	}
	if err := s.Verify("gmail", "+8613800000001", snd.code); err != nil {
		t.Fatal(err)
	}
	// Consumed: second verify fails.
	if err := s.Verify("gmail", "+8613800000001", snd.code); !errors.Is(err, ErrNoCode) {
		t.Errorf("replay err = %v want ErrNoCode", err)
	}
}

func TestVerifyWrongCodeAndAttemptLimit(t *testing.T) {
	s := New(WithSeed(1), WithMaxAttempts(3))
	snd := &capture{}
	if err := s.Issue("svc", "d", snd); err != nil {
		t.Fatal(err)
	}
	if err := s.Verify("svc", "d", "000000"); !errors.Is(err, ErrWrongCode) && snd.code != "000000" {
		t.Errorf("first wrong attempt err = %v", err)
	}
	if err := s.Verify("svc", "d", "111111"); !errors.Is(err, ErrWrongCode) && snd.code != "111111" {
		t.Errorf("second wrong attempt err = %v", err)
	}
	// Third failure exhausts the limit.
	if err := s.Verify("svc", "d", "222222"); !errors.Is(err, ErrTooManyAttempts) {
		t.Errorf("third wrong attempt err = %v want ErrTooManyAttempts", err)
	}
	// Even the right code is dead now.
	if err := s.Verify("svc", "d", snd.code); !errors.Is(err, ErrNoCode) {
		t.Errorf("post-exhaustion err = %v want ErrNoCode", err)
	}
}

func TestCorrectCodeWithinAttemptLimit(t *testing.T) {
	s := New(WithSeed(1), WithMaxAttempts(3))
	snd := &capture{}
	if err := s.Issue("svc", "d", snd); err != nil {
		t.Fatal(err)
	}
	if err := s.Verify("svc", "d", "badbad"); !errors.Is(err, ErrWrongCode) {
		t.Fatal(err)
	}
	if err := s.Verify("svc", "d", snd.code); err != nil {
		t.Errorf("correct code after one failure rejected: %v", err)
	}
}

func TestExpiry(t *testing.T) {
	now := time.Date(2021, 4, 19, 12, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	s := New(WithSeed(1), WithTTL(time.Minute), WithClock(clock))
	snd := &capture{}
	if err := s.Issue("svc", "d", snd); err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Minute)
	if s.Outstanding("svc", "d") {
		t.Error("expired code still outstanding")
	}
	if err := s.Verify("svc", "d", snd.code); !errors.Is(err, ErrExpired) {
		t.Errorf("err = %v want ErrExpired", err)
	}
}

func TestReissueReplacesCode(t *testing.T) {
	s := New(WithSeed(7))
	snd := &capture{}
	if err := s.Issue("svc", "d", snd); err != nil {
		t.Fatal(err)
	}
	first := snd.code
	if err := s.Issue("svc", "d", snd); err != nil {
		t.Fatal(err)
	}
	if snd.code == first {
		t.Fatal("reissue produced identical code (seeded RNG should advance)")
	}
	if err := s.Verify("svc", "d", first); errors.Is(err, nil) {
		t.Error("stale code accepted after reissue")
	}
	// Need a fresh issue since the failed verify consumed an attempt.
	if err := s.Issue("svc", "d", snd); err != nil {
		t.Fatal(err)
	}
	if err := s.Verify("svc", "d", snd.code); err != nil {
		t.Errorf("fresh code rejected: %v", err)
	}
}

func TestRateLimit(t *testing.T) {
	now := time.Date(2021, 4, 19, 12, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	s := New(WithSeed(1), WithRateLimit(2, time.Minute), WithClock(clock))
	snd := &capture{}
	for i := 0; i < 2; i++ {
		if err := s.Issue("svc", "d", snd); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Issue("svc", "d", snd); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("third issue err = %v want ErrRateLimited", err)
	}
	// Other destinations are unaffected.
	if err := s.Issue("svc", "other", snd); err != nil {
		t.Errorf("unrelated destination rate-limited: %v", err)
	}
	// The window slides.
	now = now.Add(2 * time.Minute)
	if err := s.Issue("svc", "d", snd); err != nil {
		t.Errorf("issue after window err = %v", err)
	}
}

func TestDeliveryFailureInvalidatesCode(t *testing.T) {
	s := New(WithSeed(1))
	snd := &capture{fail: errors.New("radio down")}
	err := s.Issue("svc", "d", snd)
	if err == nil || !strings.Contains(err.Error(), "radio down") {
		t.Fatalf("err = %v", err)
	}
	if s.Outstanding("svc", "d") {
		t.Error("undelivered code left outstanding")
	}
	if err := s.Issue("svc", "d", nil); err == nil {
		t.Error("nil sender accepted")
	}
}

func TestServiceScoping(t *testing.T) {
	s := New(WithSeed(3))
	a, b := &capture{}, &capture{}
	if err := s.Issue("gmail", "d", a); err != nil {
		t.Fatal(err)
	}
	if err := s.Issue("paypal", "d", b); err != nil {
		t.Fatal(err)
	}
	// Gmail's code must not verify for PayPal.
	if a.code != b.code {
		if err := s.Verify("paypal", "d", a.code); errors.Is(err, nil) {
			t.Error("cross-service code accepted")
		}
	}
	if err := s.Verify("gmail", "d", a.code); err != nil {
		t.Errorf("gmail verify: %v", err)
	}
}

func TestCodeLength(t *testing.T) {
	s := New(WithSeed(1), WithCodeLength(8))
	snd := &capture{}
	if err := s.Issue("svc", "d", snd); err != nil {
		t.Fatal(err)
	}
	if len(snd.code) != 8 {
		t.Errorf("code length = %d want 8", len(snd.code))
	}
	for _, c := range snd.code {
		if c < '0' || c > '9' {
			t.Errorf("non-digit %q in code", c)
		}
	}
}

// The paper's core loop: a service issues a code over GSM SMS, and the
// code that lands in the victim's inbox verifies.
func TestTelecomSenderEndToEnd(t *testing.T) {
	n := telecom.NewNetwork(telecom.Config{KeySpace: a51.KeySpace{Bits: 8}, Seed: 1})
	cell, _ := n.AddCell(telecom.Cell{ID: "c", ARFCNs: []int{512}, Cipher: telecom.CipherA51})
	sub, _ := n.Register("imsi-1", "+8613800000001")
	term, _ := n.NewTerminal(sub, telecom.RATGSM)
	if err := term.Attach(cell); err != nil {
		t.Fatal(err)
	}
	s := New(WithSeed(9))
	sender := &TelecomSender{Net: n, Originator: "Google"}
	if err := s.Issue("Google", sub.MSISDN, sender); err != nil {
		t.Fatal(err)
	}
	msg, ok := term.LastSMS()
	if !ok {
		t.Fatal("no SMS delivered")
	}
	if msg.Originator != "Google" || !strings.Contains(msg.Text, "verification code") {
		t.Errorf("SMS = %+v", msg)
	}
	// Extract the 6-digit code from the text like an attacker would.
	var code string
	for i := 0; i+6 <= len(msg.Text); i++ {
		if allDigits(msg.Text[i : i+6]) {
			code = msg.Text[i : i+6]
			break
		}
	}
	if code == "" {
		t.Fatalf("no code found in %q", msg.Text)
	}
	if err := s.Verify("Google", sub.MSISDN, code); err != nil {
		t.Errorf("intercepted code rejected: %v", err)
	}
}

func allDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

func TestTelecomSenderErrors(t *testing.T) {
	var s TelecomSender
	if err := s.SendCode("d", "svc", "123"); err == nil {
		t.Error("nil network accepted")
	}
	n := telecom.NewNetwork(telecom.Config{KeySpace: a51.KeySpace{Bits: 8}})
	s2 := TelecomSender{Net: n}
	if err := s2.SendCode("+860000", "svc", "123"); err == nil {
		t.Error("unknown destination accepted")
	}
}

func TestFuncSender(t *testing.T) {
	var got string
	f := FuncSender(func(_, _, code string) error { got = code; return nil })
	s := New(WithSeed(2))
	if err := s.Issue("svc", "d", f); err != nil {
		t.Fatal(err)
	}
	if got == "" {
		t.Error("FuncSender not invoked")
	}
}

func BenchmarkIssueVerify(b *testing.B) {
	s := New(WithSeed(1), WithRateLimit(1<<30, time.Minute))
	var code string
	f := FuncSender(func(_, _, c string) error { code = c; return nil })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := s.Issue("svc", "d", f); err != nil {
			b.Fatal(err)
		}
		if err := s.Verify("svc", "d", code); err != nil {
			b.Fatal(err)
		}
	}
}
