// Package smsotp implements the one-time-code service behind every
// simulated online service's "SMS Code" (SC) and "email code" (EMC)
// factors (the paper's Fig 9 flow): code issuance with TTL, attempt
// limits and per-destination rate limiting, plus pluggable delivery
// transports — GSM SMS through the telecom substrate (interceptable),
// email, or the hardened built-in push channel of §VII.A.2.
package smsotp

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/actfort/actfort/internal/telecom"
)

// Verification errors.
var (
	ErrNoCode          = errors.New("smsotp: no outstanding code for destination")
	ErrExpired         = errors.New("smsotp: code expired")
	ErrWrongCode       = errors.New("smsotp: wrong code")
	ErrTooManyAttempts = errors.New("smsotp: attempt limit exceeded")
	ErrRateLimited     = errors.New("smsotp: issuance rate limit exceeded")
)

// Sender delivers an issued code to a destination. Implementations:
// TelecomSender (GSM SMS), email.CodeSender, builtinauth.PushSender.
type Sender interface {
	SendCode(destination, serviceName, code string) error
}

// Option configures a Service.
type Option func(*Service)

// WithTTL sets code lifetime (default 5 minutes).
func WithTTL(ttl time.Duration) Option {
	return func(s *Service) { s.ttl = ttl }
}

// WithMaxAttempts sets the verification attempt limit per code
// (default 3).
func WithMaxAttempts(n int) Option {
	return func(s *Service) { s.maxAttempts = n }
}

// WithCodeLength sets the number of digits (default 6).
func WithCodeLength(n int) Option {
	return func(s *Service) { s.codeLen = n }
}

// WithSeed makes code generation deterministic for experiments.
func WithSeed(seed int64) Option {
	return func(s *Service) { s.rng = rand.New(rand.NewSource(seed)) }
}

// WithClock injects a time source (tests drive expiry manually).
func WithClock(now func() time.Time) Option {
	return func(s *Service) { s.now = now }
}

// WithRateLimit caps issues per destination within a sliding window
// (default 5 per minute).
func WithRateLimit(maxPerWindow int, window time.Duration) Option {
	return func(s *Service) {
		s.rateMax = maxPerWindow
		s.rateWindow = window
	}
}

// Service issues and verifies one-time codes. One Service instance
// typically backs one online service's SC/EMC factors.
type Service struct {
	mu          sync.Mutex
	rng         *rand.Rand
	now         func() time.Time
	ttl         time.Duration
	maxAttempts int
	codeLen     int
	rateMax     int
	rateWindow  time.Duration
	pending     map[pendKey]*issued
	issueLog    map[string][]time.Time // destination -> recent issue times
}

type pendKey struct {
	service     string
	destination string
}

type issued struct {
	code     string
	expires  time.Time
	attempts int
}

// New builds a Service.
func New(opts ...Option) *Service {
	s := &Service{
		rng:         rand.New(rand.NewSource(1)),
		now:         time.Now,
		ttl:         5 * time.Minute,
		maxAttempts: 3,
		codeLen:     6,
		rateMax:     5,
		rateWindow:  time.Minute,
		pending:     make(map[pendKey]*issued),
		issueLog:    make(map[string][]time.Time),
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Issue generates a fresh code for (service, destination), records it,
// and hands it to send for delivery. Re-issuing replaces any previous
// outstanding code. The code itself is returned only through the
// transport — callers verify, they do not see codes.
func (s *Service) Issue(service, destination string, send Sender) error {
	if send == nil {
		return errors.New("smsotp: nil sender")
	}
	s.mu.Lock()
	now := s.now()
	// Sliding-window rate limit per destination.
	recent := s.issueLog[destination][:0]
	for _, ts := range s.issueLog[destination] {
		if now.Sub(ts) < s.rateWindow {
			recent = append(recent, ts)
		}
	}
	if len(recent) >= s.rateMax {
		s.issueLog[destination] = recent
		s.mu.Unlock()
		return fmt.Errorf("%w: %d issues in %v", ErrRateLimited, len(recent), s.rateWindow)
	}
	s.issueLog[destination] = append(recent, now)

	code := s.genCodeLocked()
	s.pending[pendKey{service, destination}] = &issued{
		code:    code,
		expires: now.Add(s.ttl),
	}
	s.mu.Unlock()

	if err := send.SendCode(destination, service, code); err != nil {
		// Delivery failed: invalidate so a lucky guess cannot win.
		s.mu.Lock()
		delete(s.pending, pendKey{service, destination})
		s.mu.Unlock()
		return fmt.Errorf("smsotp: delivery: %w", err)
	}
	return nil
}

// genCodeLocked requires s.mu held.
func (s *Service) genCodeLocked() string {
	digits := make([]byte, s.codeLen)
	for i := range digits {
		digits[i] = byte('0' + s.rng.Intn(10))
	}
	return string(digits)
}

// Verify checks a submitted code. Success consumes the code; failures
// count against the attempt limit; expiry and exhaustion invalidate.
func (s *Service) Verify(service, destination, code string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := pendKey{service, destination}
	iss, ok := s.pending[k]
	if !ok {
		return ErrNoCode
	}
	if s.now().After(iss.expires) {
		delete(s.pending, k)
		return ErrExpired
	}
	if iss.attempts >= s.maxAttempts {
		delete(s.pending, k)
		return ErrTooManyAttempts
	}
	iss.attempts++
	if iss.code != code {
		if iss.attempts >= s.maxAttempts {
			delete(s.pending, k)
			return ErrTooManyAttempts
		}
		return ErrWrongCode
	}
	delete(s.pending, k)
	return nil
}

// Outstanding reports whether a code is pending for the pair (for
// tests and monitoring; it does not reveal the code).
func (s *Service) Outstanding(service, destination string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	iss, ok := s.pending[pendKey{service, destination}]
	return ok && !s.now().After(iss.expires)
}

// TelecomSender delivers codes as GSM/LTE SMS through the simulated
// network — the interceptable channel the whole paper is about.
type TelecomSender struct {
	Net *telecom.Network
	// Originator is the SMS sender ID, e.g. "Google".
	Originator string
	// DisplayName replaces the service name in the message text; use
	// it when the smsotp scope string is not GSM-alphabet-safe.
	DisplayName string
	// Template must contain two %s verbs: service name and code.
	// Empty means the default template.
	Template string
}

var _ Sender = (*TelecomSender)(nil)

// DefaultTemplate mirrors real OTP SMS phrasing (cf. Fig 5).
const DefaultTemplate = "%s verification code: %s. Do not share it with anyone."

// SendCode implements Sender.
func (t *TelecomSender) SendCode(destination, serviceName, code string) error {
	if t.Net == nil {
		return errors.New("smsotp: TelecomSender without network")
	}
	tmpl := t.Template
	if tmpl == "" {
		tmpl = DefaultTemplate
	}
	name := t.DisplayName
	if name == "" {
		name = serviceName
	}
	origin := t.Originator
	if origin == "" {
		origin = name
	}
	_, err := t.Net.SendSMS(origin, destination, fmt.Sprintf(tmpl, name, code))
	return err
}

// FuncSender adapts a function to Sender (test hooks, push channels).
type FuncSender func(destination, serviceName, code string) error

// SendCode implements Sender.
func (f FuncSender) SendCode(destination, serviceName, code string) error {
	return f(destination, serviceName, code)
}
