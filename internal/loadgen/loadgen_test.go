package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

// TestSchedule pins the deterministic weighted expansion the report's
// reproducibility rests on.
func TestSchedule(t *testing.T) {
	got := schedule([]Target{{Weight: 2}, {Weight: 0}, {Weight: 3}})
	want := []int{0, 0, 1, 2, 2, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("schedule = %v, want %v", got, want)
	}
}

// TestRunReport drives the harness against a stub server and checks
// the report's accounting: per-target request split follows the
// weights, codes bucket correctly, 5xx feeds the error rate, and
// quantiles land in the latency neighborhood the stub imposes.
func TestRunReport(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/ok":
			time.Sleep(2 * time.Millisecond)
			w.WriteHeader(http.StatusOK)
		case "/shed":
			w.WriteHeader(http.StatusTooManyRequests)
		case "/boom":
			w.WriteHeader(http.StatusInternalServerError)
		}
		hits.Add(1)
	}))
	defer ts.Close()

	rep, err := Run(context.Background(), Config{
		BaseURL: ts.URL,
		Targets: []Target{
			{Name: "ok", Path: "/ok", Weight: 2},
			{Name: "shed", Path: "/shed", Weight: 1},
			{Name: "boom", Path: "/boom", Weight: 1},
		},
		Requests:    40,
		Concurrency: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := hits.Load(); got != 40 {
		t.Fatalf("server saw %d requests, want 40", got)
	}
	if rep.Codes["200"] != 20 || rep.Codes["429"] != 10 || rep.Codes["500"] != 10 {
		t.Fatalf("codes = %v, want 20/10/10 across 200/429/500", rep.Codes)
	}
	if rep.Errors != 0 {
		t.Fatalf("transport errors = %d", rep.Errors)
	}
	// 10 of 40 were 5xx; 429s are shed load, not failures.
	if rep.ErrorRate != 0.25 {
		t.Fatalf("errorRate = %v, want 0.25", rep.ErrorRate)
	}
	if rep.PerTarget["ok"].Requests != 20 || rep.PerTarget["ok"].OK != 20 {
		t.Fatalf("ok target stats = %+v", rep.PerTarget["ok"])
	}
	if rep.PerTarget["shed"].OK != 0 || rep.PerTarget["boom"].OK != 0 {
		t.Fatalf("non-2xx targets recorded OK hits: %+v", rep.PerTarget)
	}
	// Quantiles cover 2xx only; the stub sleeps 2ms, so p50 must be at
	// least the sleep and well under a second.
	if rep.P50Ms < 2 || rep.P50Ms > 1000 {
		t.Fatalf("p50Ms = %v, want within [2, 1000)", rep.P50Ms)
	}
	if rep.P99Ms < rep.P50Ms {
		t.Fatalf("p99 %v below p50 %v", rep.P99Ms, rep.P50Ms)
	}
	if rep.ThroughputRPS <= 0 || rep.DurationMs <= 0 {
		t.Fatalf("throughput/duration not recorded: %+v", rep)
	}
}

// TestRunCancel checks a canceled context stops the batch early and
// reports the cancellation.
func TestRunCancel(t *testing.T) {
	block := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	defer ts.Close()
	defer close(block)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	rep, err := Run(ctx, Config{
		BaseURL:     ts.URL,
		Targets:     []Target{{Name: "hang", Path: "/", Weight: 1}},
		Requests:    1000,
		Concurrency: 2,
	})
	if err == nil {
		t.Fatal("canceled run reported no error")
	}
	if rep == nil || rep.Codes["200"] != 0 {
		t.Fatalf("report = %+v", rep)
	}
}
