// Package loadgen is the Go-native load harness for the campaignd
// query service: a fixed-size batch of HTTP requests drawn from a
// deterministic weighted target mix, driven by a bounded worker pool,
// with latencies folded through the same obs histogram machinery the
// server exports — so the p50/p90/p99 in a load report and the
// quantiles on the service's own /metrics come from one bucket ladder
// and stay comparable. The docs/BENCHMARKS.md service-latency tables
// and the CI load-smoke gate both consume its JSON Report.
package loadgen

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/actfort/actfort/internal/obs"
)

// LatencyBuckets is the report's histogram ladder: 100µs growing by
// 1.25× over 60 buckets to ~66s. The server's own
// campaignd_request_seconds keeps the conventional coarse doubling
// ladder (it lives on a Prometheus scrape, where series count
// matters); the report ladder is finer because a benchmark table
// quoting p99 from a bucket twice as wide as the value would be
// mostly quoting the ladder.
var LatencyBuckets = obs.ExpBuckets(100e-6, 1.25, 60)

// Target is one entry in the request mix.
type Target struct {
	// Name labels the target in the per-target report breakdown.
	Name string
	// Path is the request path ("/v1/scenario", "/v1/sweep").
	Path string
	// Body is the JSON request body POSTed on every hit.
	Body []byte
	// Weight is the target's relative frequency in the mix (<= 0 is
	// normalized to 1).
	Weight int
}

// Config parameterizes one load run.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Targets is the weighted request mix (required, non-empty).
	Targets []Target
	// Requests is the total request count across all targets (0 = 100).
	Requests int
	// Concurrency is the worker-pool width (0 = 4).
	Concurrency int
	// Client overrides the HTTP client (nil = a dedicated client with
	// no global timeout — per-request deadlines belong to the server
	// under test, and a client-side cap would censor exactly the tail
	// the report exists to measure).
	Client *http.Client
}

// TargetStats is one target's slice of the report.
type TargetStats struct {
	Requests int     `json:"requests"`
	OK       int     `json:"ok"` // 2xx responses
	P50Ms    float64 `json:"p50Ms"`
	P99Ms    float64 `json:"p99Ms"`
}

// Report is the load run's result — the JSON the BENCHMARKS tables and
// the CI jq gates read. Quantiles cover successful (2xx) requests
// only: a 429 shed in microseconds is admission control working, and
// folding it into the latency distribution would flatter the tail.
type Report struct {
	// Requests is the number attempted; Errors counts transport-level
	// failures (no HTTP response at all).
	Requests int `json:"requests"`
	Errors   int `json:"errors"`
	// Codes histograms the HTTP status codes received, keyed by the
	// decimal code string ("200", "429", ...).
	Codes map[string]int `json:"codes"`
	// ErrorRate is the fraction of attempts that failed: transport
	// errors plus any 5xx response.
	ErrorRate float64 `json:"errorRate"`
	// Duration is the whole run's wall clock; ThroughputRPS the
	// attempted-request rate over it.
	DurationMs    float64 `json:"durationMs"`
	ThroughputRPS float64 `json:"throughputRPS"`
	// Latency quantiles over 2xx responses, in milliseconds.
	P50Ms float64 `json:"p50Ms"`
	P90Ms float64 `json:"p90Ms"`
	P99Ms float64 `json:"p99Ms"`
	MaxMs float64 `json:"maxMs"`
	// PerTarget breaks the run down by mix entry.
	PerTarget map[string]*TargetStats `json:"perTarget"`
}

// schedule expands the weighted mix into a repeating target-index
// pattern, so the request sequence is a pure function of (Targets,
// Requests) — two runs of the same config issue the same requests in
// the same interleaving (modulo worker scheduling), and a report diff
// measures the server, not the generator's dice.
func schedule(targets []Target) []int {
	var pat []int
	for i, t := range targets {
		w := t.Weight
		if w <= 0 {
			w = 1
		}
		for k := 0; k < w; k++ {
			pat = append(pat, i)
		}
	}
	return pat
}

// Run executes the batch and returns the report. Workers pull request
// indices from a shared counter until Requests are issued or ctx dies;
// a canceled run reports what it measured with an error alongside.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("loadgen: no targets")
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 100
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 4
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	pat := schedule(cfg.Targets)

	// One local histogram per target plus codes/errors under a mutex:
	// the request path itself stays lock-free (obs.Histogram is CAS),
	// only the cheap counters share the lock.
	hists := make([]*obs.Histogram, len(cfg.Targets))
	for i := range hists {
		hists[i] = obs.NewLocalHistogram(LatencyBuckets)
	}
	var (
		mu       sync.Mutex
		codes    = make(map[string]int)
		byTarget = make([]TargetStats, len(cfg.Targets))
		errorsN  int
		maxSec   = make([]float64, len(cfg.Targets))
	)
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := int(next.Add(1)) - 1
				if n >= cfg.Requests || ctx.Err() != nil {
					return
				}
				ti := pat[n%len(pat)]
				tgt := &cfg.Targets[ti]
				req, err := http.NewRequestWithContext(ctx, http.MethodPost,
					cfg.BaseURL+tgt.Path, bytes.NewReader(tgt.Body))
				if err != nil {
					mu.Lock()
					errorsN++
					byTarget[ti].Requests++
					mu.Unlock()
					continue
				}
				req.Header.Set("Content-Type", "application/json")
				t0 := time.Now()
				resp, err := client.Do(req)
				el := time.Since(t0).Seconds()
				mu.Lock()
				byTarget[ti].Requests++
				if err != nil {
					errorsN++
					mu.Unlock()
					continue
				}
				codes[fmt.Sprintf("%d", resp.StatusCode)]++
				ok := resp.StatusCode >= 200 && resp.StatusCode < 300
				if ok {
					byTarget[ti].OK++
					if el > maxSec[ti] {
						maxSec[ti] = el
					}
				}
				mu.Unlock()
				if ok {
					hists[ti].Observe(el)
				}
				// Drain so the connection is reusable; the body content is
				// the server's business, not the harness's.
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	dur := time.Since(start)

	maxAll := 0.0
	for _, m := range maxSec {
		if m > maxAll {
			maxAll = m
		}
	}
	rep := &Report{
		Requests:      cfg.Requests,
		Errors:        errorsN,
		Codes:         codes,
		DurationMs:    float64(dur.Microseconds()) / 1e3,
		ThroughputRPS: float64(cfg.Requests) / dur.Seconds(),
		MaxMs:         maxAll * 1e3,
		PerTarget:     make(map[string]*TargetStats, len(cfg.Targets)),
	}
	failed := errorsN
	for code, n := range codes {
		if len(code) > 0 && code[0] == '5' {
			failed += n
		}
	}
	rep.ErrorRate = float64(failed) / float64(cfg.Requests)

	// Per-target quantiles straight off each histogram; the overall
	// quantiles come from a bucket-wise merged snapshot — every target
	// shares LatencyBuckets, so bucket i sums across targets. Each
	// estimate is clamped to the exact observed maximum: bucket
	// interpolation can otherwise quote a quantile above a max no
	// request ever reached.
	merged := obs.HistSnapshot{Bounds: LatencyBuckets,
		Counts: make([]int64, len(LatencyBuckets)+1)}
	for i, h := range hists {
		snap := h.Snapshot()
		st := byTarget[i]
		st.P50Ms = quantileMs(snap, 0.5, maxSec[i])
		st.P99Ms = quantileMs(snap, 0.99, maxSec[i])
		rep.PerTarget[cfg.Targets[i].Name] = &st
		for b, c := range snap.Counts {
			merged.Counts[b] += c
		}
		merged.Count += snap.Count
		merged.Sum += snap.Sum
	}
	rep.P50Ms = quantileMs(merged, 0.5, maxAll)
	rep.P90Ms = quantileMs(merged, 0.9, maxAll)
	rep.P99Ms = quantileMs(merged, 0.99, maxAll)

	if ctx.Err() != nil {
		return rep, fmt.Errorf("loadgen: run canceled after %d requests: %w", int(next.Load()), ctx.Err())
	}
	return rep, nil
}

// quantileMs renders a snapshot quantile in milliseconds, clamped to
// the exact observed maximum maxSec and mapping the empty-histogram
// NaN to 0 so the report always marshals to valid JSON (encoding/json
// rejects NaN).
func quantileMs(s obs.HistSnapshot, q, maxSec float64) float64 {
	v := s.Quantile(q)
	if math.IsNaN(v) {
		return 0
	}
	if maxSec > 0 && v > maxSec {
		v = maxSec
	}
	return v * 1e3
}
