package attack

import (
	"context"
	"errors"
	"fmt"

	"github.com/actfort/actfort/internal/a51"
	"github.com/actfort/actfort/internal/dataset"
	"github.com/actfort/actfort/internal/ecosys"
	"github.com/actfort/actfort/internal/email"
	"github.com/actfort/actfort/internal/identity"
	"github.com/actfort/actfort/internal/services"
	"github.com/actfort/actfort/internal/sniffer"
	"github.com/actfort/actfort/internal/socialdb"
	"github.com/actfort/actfort/internal/strategy"
	"github.com/actfort/actfort/internal/tdg"
	"github.com/actfort/actfort/internal/telecom"
)

// ScenarioConfig tunes the end-to-end environment.
type ScenarioConfig struct {
	// Seed drives the victim persona and network randomness.
	Seed int64
	// KeyBits is the A5/1 session-key space (default 12: cracks in
	// milliseconds, still a real key recovery).
	KeyBits int
	// CrackBackend selects the A5/1 key-recovery backend for the
	// passive rig: "exhaustive", "parallel", "bitsliced" (the default
	// when empty) or "table". "table" precomputes an a51.Table over
	// the network's key space and wraps the network's cipher frame
	// counter into the table's window, so every session resolves with
	// an amortized table lookup.
	CrackBackend string
	// Launch lists service names to bring up live; empty launches the
	// case-study set (gmail, paypal, alipay, baidu-wallet, ctrip).
	Launch []string
}

// CaseStudyServices is the §V.B footprint.
var CaseStudyServices = []string{"gmail", "paypal", "alipay", "baidu-wallet", "ctrip"}

// Scenario is a fully wired end-to-end world: calibrated catalog, GSM
// network with an attached victim, live services, a leaked-records DB
// holding the victim's phone number, and a tuned passive sniffer.
type Scenario struct {
	Catalog        *ecosys.Catalog
	Net            *telecom.Network
	Cell           *telecom.Cell
	Mail           *email.Server
	Platform       *services.Platform
	Victim         services.User
	VictimTerminal *telecom.Terminal
	Sniffer        *sniffer.Sniffer
	LeakDB         *socialdb.DB
	// Cracker is the key-recovery backend the passive rig uses.
	// Callers wiring up an active MitM attack against this scenario
	// should pass it as mitm.Config.Cracker to enable the A5/1 probe.
	Cracker a51.Cracker
}

// NewScenario builds and starts the world.
func NewScenario(cfg ScenarioConfig) (*Scenario, error) {
	if cfg.KeyBits <= 0 {
		cfg.KeyBits = 12
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	launch := cfg.Launch
	if len(launch) == 0 {
		launch = CaseStudyServices
	}

	cat, err := dataset.Default()
	if err != nil {
		return nil, err
	}
	netCfg := telecom.Config{
		KeySpace: a51.KeySpace{Base: 0xC118000000000000, Bits: cfg.KeyBits},
		Seed:     cfg.Seed,
	}
	net := telecom.NewNetwork(netCfg)
	var cracker a51.Cracker
	if cfg.CrackBackend == "table" {
		// Precompute the table over the paging frame classes of the
		// 51×26 COUNT schedule, so every known-plaintext burst the
		// network emits resolves by lookup.
		cracker, err = a51.BuildTable(net.KeySpace(), a51.TableConfig{Frames: telecom.PagingFrames()})
	} else {
		cracker, err = a51.NewCracker(cfg.CrackBackend, net.KeySpace(), 0)
	}
	if err != nil {
		return nil, err
	}
	cell, err := net.AddCell(telecom.Cell{ID: "cell-centro", ARFCNs: []int{512, 513, 514}, Cipher: telecom.CipherA51})
	if err != nil {
		return nil, err
	}

	persona := identity.NewGenerator(cfg.Seed).Persona(0)
	sub, err := net.Register("460001112223334", persona.Phone)
	if err != nil {
		return nil, err
	}
	term, err := net.NewTerminal(sub, telecom.RATGSM)
	if err != nil {
		return nil, err
	}
	if err := term.Attach(cell); err != nil {
		return nil, err
	}

	mail := email.NewServer()
	platform, err := services.NewPlatform(services.Config{Catalog: cat, Net: net, Mail: mail})
	if err != nil {
		return nil, err
	}
	if _, err := platform.LaunchAll(launch...); err != nil {
		platform.Close()
		return nil, err
	}
	victim := services.User{
		Persona:      persona,
		Password:     "correct-horse-battery",
		DeviceSecret: "genuine-device-secret",
	}
	if err := platform.Provision(victim); err != nil {
		platform.Close()
		return nil, err
	}

	// The attacker's out-of-band inputs: the phone number from a
	// leaked database (targeted mode, §V.A.1).
	leak := socialdb.New()
	leak.Add(socialdb.Record{
		Phone: persona.Phone, RealName: persona.RealName, Source: "2016-breach",
	})

	// Passive rig covering the victim cell's channels.
	sn := sniffer.New(net, sniffer.Config{Cracker: cracker})
	if err := sn.Tune(cell.ARFCNs...); err != nil {
		platform.Close()
		return nil, err
	}

	return &Scenario{
		Catalog:        cat,
		Net:            net,
		Cell:           cell,
		Mail:           mail,
		Platform:       platform,
		Victim:         victim,
		VictimTerminal: term,
		Sniffer:        sn,
		LeakDB:         leak,
		Cracker:        cracker,
	}, nil
}

// Close tears the world down.
func (s *Scenario) Close() {
	s.Sniffer.Stop()
	s.Platform.Close()
}

// LaunchedGraph builds the TDG restricted to launched services, so
// generated plans route only through live instances.
func (s *Scenario) LaunchedGraph() (*tdg.Graph, error) {
	var nodes []tdg.Node
	for _, n := range tdg.NodesFromCatalog(s.Catalog) {
		if _, ok := s.Platform.Instance(n.ID); ok {
			nodes = append(nodes, n)
		}
	}
	return tdg.Build(nodes, ecosys.BaselineAttacker())
}

// PlanFor computes a minimal chain to target over launched services.
func (s *Scenario) PlanFor(target ecosys.AccountID) (*strategy.Plan, error) {
	g, err := s.LaunchedGraph()
	if err != nil {
		return nil, err
	}
	return strategy.FindPlan(g, target, 0)
}

// PlanVia selects, among ActFort's candidate plans for target, one
// that pivots through the named middle service — how the paper's
// authors picked Ctrip for Case III from the strategy output.
func (s *Scenario) PlanVia(target ecosys.AccountID, via string) (*strategy.Plan, error) {
	g, err := s.LaunchedGraph()
	if err != nil {
		return nil, err
	}
	plans, err := strategy.FindPlans(g, target, 0, 8)
	if err != nil {
		return nil, err
	}
	for _, p := range plans {
		for _, step := range p.Steps {
			if step.Account.Service == via && step.Account != target {
				return p, nil
			}
		}
	}
	// Deterministic fallback: splice the pivot in from the graph's
	// strong edges.
	for _, e := range g.StrongEdges() {
		if e.To != target || e.From.Service != via {
			continue
		}
		sub, err := strategy.FindPlan(g, e.From, 0)
		if err != nil {
			continue
		}
		steps := append([]strategy.PlanStep(nil), sub.Steps...)
		steps = append(steps, strategy.PlanStep{
			Account: target, PathID: e.PathID, Parents: []ecosys.AccountID{e.From},
		})
		return &strategy.Plan{Target: target, Steps: steps}, nil
	}
	return nil, fmt.Errorf("attack: no plan for %s via %s", target, via)
}

// HarvestByPhishingWiFi models the random-attack entry point (§V.A.1):
// a fake access point at a crowded venue observes nearby victims'
// phone numbers. It returns the harvester after the scenario's victim
// "connects".
func (s *Scenario) HarvestByPhishingWiFi(ssid string) *socialdb.PhishingWiFi {
	wifi := socialdb.NewPhishingWiFi(ssid)
	wifi.Observe(s.Victim.Persona.Phone)
	return wifi
}

// NewRandomExecutor wires an executor for the random-attack mode: the
// dossier holds ONLY a phone number harvested off phishing WiFi — no
// leaked records, no victim identity.
func (s *Scenario) NewRandomExecutor(wifi *socialdb.PhishingWiFi) (*Executor, error) {
	harvested := wifi.Harvested()
	if len(harvested) == 0 {
		return nil, errors.New("attack: phishing WiFi harvested nothing")
	}
	return &Executor{
		Platform:  s.Platform,
		Intercept: &SnifferInterceptor{Sniffer: s.Sniffer},
		Know:      NewKnowledge(harvested[0]),
	}, nil
}

// NewExecutor wires an executor with passive-sniffer interception and
// a dossier seeded from the leaked-records database.
func (s *Scenario) NewExecutor() (*Executor, error) {
	rec, err := s.LeakDB.Lookup(s.Victim.Persona.Phone)
	if err != nil {
		return nil, fmt.Errorf("attack: victim not in leak DB: %w", err)
	}
	know := NewKnowledge(rec.Phone)
	if rec.RealName != "" {
		know.Ingest(ecosys.InfoRealName, rec.RealName)
	}
	return &Executor{
		Platform:  s.Platform,
		Intercept: &SnifferInterceptor{Sniffer: s.Sniffer},
		Know:      know,
	}, nil
}

// CaseReport is the outcome of one §V.B case study.
type CaseReport struct {
	Name    string
	Plan    string
	Lines   []string
	Receipt string
}

// ErrUnknownCase reports a case number outside I–III.
var ErrUnknownCase = errors.New("attack: unknown case study")

// RunCase executes one of the paper's three case studies end to end.
func (s *Scenario) RunCase(ctx context.Context, number int) (*CaseReport, error) {
	switch number {
	case 1:
		return s.caseI(ctx)
	case 2:
		return s.caseII(ctx)
	case 3:
		return s.caseIII(ctx)
	}
	return nil, fmt.Errorf("%w: %d", ErrUnknownCase, number)
}

// caseI — "We used SMS code as a one-time token to directly log into
// Baidu Wallet ... eligible to use QR code to make a payment."
func (s *Scenario) caseI(ctx context.Context) (*CaseReport, error) {
	target := ecosys.AccountID{Service: "baidu-wallet", Platform: ecosys.PlatformMobile}
	return s.runPlanAndPay(ctx, "Case I: direct wallet takeover", target)
}

// caseII — PayPal wants SMS + email code; Gmail resets with the phone
// number alone, and the mailbox then yields PayPal's code.
func (s *Scenario) caseII(ctx context.Context) (*CaseReport, error) {
	target := ecosys.AccountID{Service: "paypal", Platform: ecosys.PlatformWeb}
	return s.runPlanAndPay(ctx, "Case II: PayPal via Gmail", target)
}

// caseIII — Alipay mobile wants citizen ID + SMS; Ctrip's profile page
// hands over the citizen ID after an SMS-only login. The payment code
// falls to the same combination afterwards.
func (s *Scenario) caseIII(ctx context.Context) (*CaseReport, error) {
	target := ecosys.AccountID{Service: "alipay", Platform: ecosys.PlatformMobile}
	plan, err := s.PlanVia(target, "ctrip")
	if err != nil {
		return nil, err
	}
	rep, exec, err := s.execPlanAndPay(ctx, "Case III: Alipay via Ctrip", target, plan)
	if err != nil {
		return rep, err
	}

	// Reset the payment code too (the paper resets both). The dossier
	// already holds the citizen ID harvested from Ctrip.
	presence, _ := s.Catalog.PresenceOf(target)
	var payPath ecosys.AuthPath
	for _, p := range presence.Paths {
		if p.Purpose == ecosys.PurposePaymentReset {
			payPath = p
			break
		}
	}
	if payPath.ID == "" {
		return rep, errors.New("attack: alipay has no payment-reset path")
	}
	stepRes, _, err := exec.executeStep(ctx, strategy.PlanStep{Account: target, PathID: payPath.ID})
	if err != nil {
		return rep, fmt.Errorf("attack: payment-code reset: %w", err)
	}
	rep.Lines = append(rep.Lines, "payment code reset via "+stepRes.PathID)
	return rep, nil
}

// runPlanAndPay generates the plan, executes it and demonstrates a
// payment on the fintech target.
func (s *Scenario) runPlanAndPay(ctx context.Context, name string, target ecosys.AccountID) (*CaseReport, error) {
	plan, err := s.PlanFor(target)
	if err != nil {
		return nil, err
	}
	rep, _, err := s.execPlanAndPay(ctx, name, target, plan)
	return rep, err
}

// execPlanAndPay executes a prepared plan and demonstrates a payment,
// returning the executor so callers can continue with its dossier.
func (s *Scenario) execPlanAndPay(ctx context.Context, name string, target ecosys.AccountID, plan *strategy.Plan) (*CaseReport, *Executor, error) {
	exec, err := s.NewExecutor()
	if err != nil {
		return nil, nil, err
	}
	res, err := exec.Execute(ctx, plan)
	rep := &CaseReport{Name: name, Plan: plan.String()}
	if res != nil {
		rep.Lines = res.Transcript()
	}
	if err != nil {
		return rep, exec, err
	}
	receipt, err := exec.Pay(ctx, target, res.FinalToken)
	if err != nil {
		return rep, exec, err
	}
	rep.Receipt = receipt
	rep.Lines = append(rep.Lines, "payment executed: "+receipt)
	return rep, exec, nil
}
