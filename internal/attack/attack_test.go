package attack

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/actfort/actfort/internal/ecosys"
	"github.com/actfort/actfort/internal/mitm"
	"github.com/actfort/actfort/internal/socialdb"
	"github.com/actfort/actfort/internal/strategy"
	"github.com/actfort/actfort/internal/telecom"
)

func newScenario(t *testing.T) *Scenario {
	t.Helper()
	s, err := NewScenario(ScenarioConfig{Seed: 42, KeyBits: 10})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func ctxFor(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestCaseIDirectWalletTakeover(t *testing.T) {
	s := newScenario(t)
	rep, err := s.RunCase(ctxFor(t), 1)
	if err != nil {
		t.Fatalf("%v (lines: %v)", err, rep)
	}
	if rep.Plan != "baidu-wallet/mobile" {
		t.Errorf("plan = %q want direct", rep.Plan)
	}
	if rep.Receipt == "" || !strings.Contains(rep.Receipt, "baidu-wallet") {
		t.Errorf("receipt = %q", rep.Receipt)
	}
	// Passive sniffing is observable: the victim got the code too.
	if len(s.VictimTerminal.Inbox()) == 0 {
		t.Error("victim inbox empty; passive interception should be observable")
	}
}

func TestCaseIIPayPalViaGmail(t *testing.T) {
	s := newScenario(t)
	rep, err := s.RunCase(ctxFor(t), 2)
	if err != nil {
		t.Fatalf("%v (lines: %v)", err, rep)
	}
	if !strings.Contains(rep.Plan, "gmail") || !strings.Contains(rep.Plan, "paypal") {
		t.Errorf("plan = %q; want gmail -> paypal", rep.Plan)
	}
	if !strings.Contains(rep.Receipt, "paypal") {
		t.Errorf("receipt = %q", rep.Receipt)
	}
	joined := strings.Join(rep.Lines, "\n")
	if !strings.Contains(joined, "gmail") {
		t.Errorf("transcript missing the gmail pivot:\n%s", joined)
	}
}

func TestCaseIIIAlipayViaCtrip(t *testing.T) {
	s := newScenario(t)
	rep, err := s.RunCase(ctxFor(t), 3)
	if err != nil {
		t.Fatalf("%v (lines: %v)", err, rep)
	}
	if !strings.Contains(rep.Plan, "ctrip") || !strings.Contains(rep.Plan, "alipay") {
		t.Errorf("plan = %q; want ctrip -> alipay", rep.Plan)
	}
	joined := strings.Join(rep.Lines, "\n")
	if !strings.Contains(joined, "payment code reset") {
		t.Errorf("payment code was not reset:\n%s", joined)
	}
	if !strings.Contains(rep.Receipt, "alipay") {
		t.Errorf("receipt = %q", rep.Receipt)
	}
}

func TestUnknownCase(t *testing.T) {
	s := newScenario(t)
	if _, err := s.RunCase(ctxFor(t), 9); !errors.Is(err, ErrUnknownCase) {
		t.Errorf("err = %v", err)
	}
}

func TestExecutorFailsWithoutRequiredKnowledge(t *testing.T) {
	s := newScenario(t)
	// An executor whose dossier lacks the citizen ID and that cannot
	// pivot (no plan executed) must fail cleanly on alipay.
	exec, err := s.NewExecutor()
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = exec.executeStep(ctxFor(t), planStepFor("alipay", ecosys.PlatformMobile, "reset-cid"))
	if !errors.Is(err, ErrMissingFactor) {
		t.Errorf("err = %v want ErrMissingFactor", err)
	}
}

func TestExecutorFailsOnUnlaunchedService(t *testing.T) {
	s := newScenario(t)
	exec, err := s.NewExecutor()
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = exec.executeStep(ctxFor(t), planStepFor("linkedin", ecosys.PlatformWeb, "reset-sms"))
	if !errors.Is(err, ErrNotLaunched) {
		t.Errorf("err = %v want ErrNotLaunched", err)
	}
}

// The MitM variant of Case I: covert interception through the fake
// victim terminal; the victim's handset stays silent.
func TestCaseIOverMitM(t *testing.T) {
	s := newScenario(t)
	ctx := ctxFor(t)

	// Attacker's own phone to receive the reveal call.
	attSub, err := s.Net.Register("460009990000099", "+8613800000099")
	if err != nil {
		t.Fatal(err)
	}
	attTerm, err := s.Net.NewTerminal(attSub, telecom.RATGSM)
	if err != nil {
		t.Fatal(err)
	}
	if err := attTerm.Attach(s.Cell); err != nil {
		t.Fatal(err)
	}

	// The scenario's cracker doubles as the MitM's pre-attack probe.
	atk, err := mitm.New(s.Net, s.VictimTerminal, s.Cell, attTerm, mitm.Config{Cracker: s.Cracker})
	if err != nil {
		t.Fatal(err)
	}
	mres, err := atk.Run()
	if err != nil {
		t.Fatal(err)
	}
	if mres.VictimMSISDN != s.Victim.Persona.Phone {
		t.Fatalf("MitM revealed %s want %s", mres.VictimMSISDN, s.Victim.Persona.Phone)
	}
	if mres.ProbeKc == 0 {
		t.Error("A5/1 probe recovered no key despite a configured cracker")
	}

	inboxBefore := len(s.VictimTerminal.Inbox())
	exec := &Executor{
		Platform:  s.Platform,
		Intercept: &MitMInterceptor{FVT: mres.FVT},
		Know:      NewKnowledge(mres.VictimMSISDN),
	}
	plan, err := s.PlanFor(ecosys.AccountID{Service: "baidu-wallet", Platform: ecosys.PlatformMobile})
	if err != nil {
		t.Fatal(err)
	}
	res, err := exec.Execute(ctx, plan)
	if err != nil {
		t.Fatalf("%v (transcript: %v)", err, res.Transcript())
	}
	if res.FinalToken == "" {
		t.Fatal("no session on target")
	}
	// Covert: the victim received nothing during the attack.
	if got := len(s.VictimTerminal.Inbox()); got != inboxBefore {
		t.Errorf("victim inbox grew by %d; MitM should be silent", got-inboxBefore)
	}
}

// Random-attack mode (§II): no prior knowledge beyond a phone number
// harvested off phishing WiFi. The attacker still chains into a
// Fintech account, picking up the identity information along the way.
func TestRandomAttackFromPhishingWiFi(t *testing.T) {
	s := newScenario(t)
	ctx := ctxFor(t)

	wifi := s.HarvestByPhishingWiFi("Free_Airport_WiFi")
	exec, err := s.NewRandomExecutor(wifi)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: the dossier starts with nothing but the number.
	if _, ok := exec.Know.Value(ecosys.InfoRealName); ok {
		t.Fatal("random attacker should not know the victim's name upfront")
	}

	plan, err := s.PlanVia(ecosys.AccountID{Service: "alipay", Platform: ecosys.PlatformMobile}, "ctrip")
	if err != nil {
		t.Fatal(err)
	}
	res, err := exec.Execute(ctx, plan)
	if err != nil {
		t.Fatalf("%v (transcript: %v)", err, res.Transcript())
	}
	if res.FinalToken == "" {
		t.Fatal("no session on the fintech target")
	}
	// The chain itself supplied the identity data.
	if _, ok := exec.Know.Value(ecosys.InfoCitizenID); !ok {
		t.Error("citizen ID not harvested during the chain")
	}

	empty := socialdb.NewPhishingWiFi("quiet")
	if _, err := s.NewRandomExecutor(empty); err == nil {
		t.Error("empty harvest accepted")
	}
}

// Knowledge unit behavior.
func TestKnowledgeCombinesMaskedViews(t *testing.T) {
	k := NewKnowledge("+8613800000001")
	secret := "330106198811230417"
	k.Ingest(ecosys.InfoCitizenID, secret[:6]+strings.Repeat("*", 12))
	if _, ok := k.Value(ecosys.InfoCitizenID); ok {
		t.Fatal("one view should not complete the value")
	}
	k.Ingest(ecosys.InfoCitizenID, strings.Repeat("*", 6)+secret[6:])
	v, ok := k.Value(ecosys.InfoCitizenID)
	if !ok || v != secret {
		t.Fatalf("combined value = %q, %v", v, ok)
	}
	if got := len(k.Views(ecosys.InfoCitizenID)); got != 2 {
		t.Errorf("views = %d", got)
	}
}

func TestKnowledgeFactorValues(t *testing.T) {
	k := NewKnowledge("+8613800000001")
	if v, ok := k.FactorValue(ecosys.FactorCellphone); !ok || v != "+8613800000001" {
		t.Errorf("cellphone = %q, %v", v, ok)
	}
	if _, ok := k.FactorValue(ecosys.FactorCitizenID); ok {
		t.Error("unknown citizen ID resolved")
	}
	k.Ingest(ecosys.InfoAcquaintance, "Wang Wei, Li Na")
	if v, ok := k.FactorValue(ecosys.FactorAcquaintance); !ok || v != "Wang Wei" {
		t.Errorf("acquaintance = %q, %v", v, ok)
	}
	if _, ok := k.FactorValue(ecosys.FactorPassword); ok {
		t.Error("password should never be sourceable")
	}
	k.Ingest(ecosys.InfoUserID, "")
	if _, ok := k.Value(ecosys.InfoUserID); ok {
		t.Error("empty ingest stored")
	}
}

func planStepFor(service string, platform ecosys.Platform, pathID string) strategy.PlanStep {
	return strategy.PlanStep{
		Account: ecosys.AccountID{Service: service, Platform: platform},
		PathID:  pathID,
	}
}

// TestCaseIWithTableBackend reruns the direct takeover with the
// Kraken-style TMTO backend: the scenario precomputes an a51.Table,
// wraps the network's cipher frames into its window, and every code
// interception resolves by table lookup.
func TestCaseIWithTableBackend(t *testing.T) {
	s, err := NewScenario(ScenarioConfig{Seed: 42, KeyBits: 8, CrackBackend: "table"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	if s.Cracker.Name() != "table" {
		t.Fatalf("cracker = %s want table", s.Cracker.Name())
	}
	rep, err := s.RunCase(ctxFor(t), 1)
	if err != nil {
		t.Fatalf("%v (lines: %v)", err, rep)
	}
	if rep.Receipt == "" {
		t.Error("no payment receipt")
	}
	if st := s.Sniffer.Stats(); st.CracksAttempted == 0 || st.CracksSucceeded != st.CracksAttempted {
		t.Errorf("crack stats = %+v", st)
	}
}

// TestScenarioRejectsUnknownBackend keeps the config surface honest.
func TestScenarioRejectsUnknownBackend(t *testing.T) {
	if _, err := NewScenario(ScenarioConfig{KeyBits: 8, CrackBackend: "quantum"}); err == nil {
		t.Fatal("unknown backend accepted")
	}
}
