// Package attack orchestrates the Chain Reaction Attack of §V against
// the live service platform: it takes an ActFort attack plan, executes
// each compromise step over HTTP — intercepting SMS codes off the
// simulated air interface, reading captured mailboxes for email codes,
// replaying harvested personal information, combining inconsistently
// masked values — and accumulates the victim dossier that unlocks the
// next step.
package attack

import (
	"regexp"
	"strings"
	"sync"

	"github.com/actfort/actfort/internal/ecosys"
	"github.com/actfort/actfort/internal/mask"
)

// idScanRe pulls a citizen ID out of a rendered photo backup entry
// ("citizen_id_scan.jpg[330106...]").
var idScanRe = regexp.MustCompile(`\[([0-9]{17}[0-9X])\]`)

// Knowledge is the attacker's accumulating dossier on one victim: the
// Initial Attack Database (IAD) of §III.E, realized with concrete
// values instead of field names.
type Knowledge struct {
	mu sync.Mutex
	// phone is the victim's cellphone number (the attack precondition,
	// from a leaked database or phishing WiFi).
	phone string
	// values holds fully known field values.
	values map[ecosys.InfoField]string
	// views holds masked observations awaiting combination.
	views map[ecosys.InfoField][]string
	// sessions maps service name -> live session token.
	sessions map[string]string
}

// NewKnowledge starts a dossier from the victim's phone number.
func NewKnowledge(phone string) *Knowledge {
	return &Knowledge{
		phone:    phone,
		values:   make(map[ecosys.InfoField]string),
		views:    make(map[ecosys.InfoField][]string),
		sessions: make(map[string]string),
	}
}

// Phone returns the victim's number.
func (k *Knowledge) Phone() string { return k.phone }

// Ingest records one displayed profile value. Masked values (contain
// the mask character) are stored as views and combined with earlier
// views of the same field; a combination that reveals every position
// is promoted to a full value — the §IV.B.2 combining attack.
func (k *Knowledge) Ingest(field ecosys.InfoField, displayed string) {
	if displayed == "" {
		return
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	if field == ecosys.InfoPhotos {
		// Cloud photo backups may contain a readable ID scan.
		if m := idScanRe.FindStringSubmatch(displayed); m != nil {
			if _, known := k.values[ecosys.InfoCitizenID]; !known {
				k.values[ecosys.InfoCitizenID] = m[1]
			}
		}
	}
	if !strings.ContainsRune(displayed, mask.MaskChar) {
		k.values[field] = displayed
		return
	}
	k.views[field] = append(k.views[field], displayed)
	if _, known := k.values[field]; known {
		return
	}
	if full, ok := mask.Complete(k.views[field]...); ok {
		k.values[field] = full
	}
}

// Value returns the fully known value for a field.
func (k *Knowledge) Value(field ecosys.InfoField) (string, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	v, ok := k.values[field]
	return v, ok
}

// Views returns the masked observations of a field (diagnostics).
func (k *Knowledge) Views(field ecosys.InfoField) []string {
	k.mu.Lock()
	defer k.mu.Unlock()
	return append([]string(nil), k.views[field]...)
}

// SetSession records control of a service.
func (k *Knowledge) SetSession(service, token string) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.sessions[service] = token
}

// Session returns the token controlling a service.
func (k *Knowledge) Session(service string) (string, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	t, ok := k.sessions[service]
	return t, ok
}

// Controlled lists controlled services.
func (k *Knowledge) Controlled() []string {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]string, 0, len(k.sessions))
	for s := range k.sessions {
		out = append(out, s)
	}
	return out
}

// factorField maps credential factors to the dossier field supplying
// them (the inverse of ecosys.InfoField.Factor for value lookup).
var factorField = map[ecosys.FactorKind]ecosys.InfoField{
	ecosys.FactorRealName:     ecosys.InfoRealName,
	ecosys.FactorCitizenID:    ecosys.InfoCitizenID,
	ecosys.FactorBankcard:     ecosys.InfoBankcard,
	ecosys.FactorAddress:      ecosys.InfoAddress,
	ecosys.FactorUserID:       ecosys.InfoUserID,
	ecosys.FactorStudentID:    ecosys.InfoStudentID,
	ecosys.FactorDeviceType:   ecosys.InfoDeviceType,
	ecosys.FactorEmailAddress: ecosys.InfoEmailAddress,
}

// FactorValue resolves a credential factor to a concrete submission
// value from the dossier. Acquaintance factors answer with the first
// known acquaintance name.
func (k *Knowledge) FactorValue(f ecosys.FactorKind) (string, bool) {
	switch f {
	case ecosys.FactorCellphone:
		return k.phone, k.phone != ""
	case ecosys.FactorAcquaintance:
		v, ok := k.Value(ecosys.InfoAcquaintance)
		if !ok {
			return "", false
		}
		// Profile pages join names with ", "; any one of them passes.
		if i := strings.Index(v, ", "); i > 0 {
			return v[:i], true
		}
		return v, true
	}
	if field, ok := factorField[f]; ok {
		return k.Value(field)
	}
	return "", false
}
