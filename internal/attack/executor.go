package attack

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"github.com/actfort/actfort/internal/ecosys"
	"github.com/actfort/actfort/internal/email"
	"github.com/actfort/actfort/internal/services"
	"github.com/actfort/actfort/internal/strategy"
)

// StepResult records one executed compromise.
type StepResult struct {
	Account ecosys.AccountID
	PathID  string
	// Harvested lists the profile fields ingested after takeover.
	Harvested []string
	// Notes carries per-step commentary ("combined 2 masked views").
	Notes []string
}

// Result is a completed chain reaction attack.
type Result struct {
	Target ecosys.AccountID
	Steps  []StepResult
	// FinalToken is the session controlling the target.
	FinalToken string
}

// Transcript renders the attack, one line per step.
func (r *Result) Transcript() []string {
	out := make([]string, 0, len(r.Steps))
	for i, s := range r.Steps {
		line := fmt.Sprintf("step %d: compromised %s via %s", i+1, s.Account, s.PathID)
		if len(s.Harvested) > 0 {
			line += " (harvested " + strings.Join(s.Harvested, ", ") + ")"
		}
		out = append(out, line)
	}
	return out
}

// Executor drives plans against live services.
type Executor struct {
	// Platform hosts the target services; every plan account must be
	// launched.
	Platform *services.Platform
	// Intercept supplies SMS codes (sniffer or MitM).
	Intercept Interceptor
	// Know is the victim dossier; it grows as steps complete.
	Know *Knowledge
	// Client defaults to http.DefaultClient.
	Client *http.Client
}

// Common errors.
var (
	ErrNotLaunched   = errors.New("attack: plan account not launched on the platform")
	ErrMissingFactor = errors.New("attack: cannot source a required factor")
)

func (e *Executor) client() *http.Client {
	if e.Client != nil {
		return e.Client
	}
	return http.DefaultClient
}

// Execute runs every step of the plan in order. On failure it returns
// the partial result alongside the error for diagnosis.
func (e *Executor) Execute(ctx context.Context, plan *strategy.Plan) (*Result, error) {
	res := &Result{Target: plan.Target}
	for _, step := range plan.Steps {
		sr, token, err := e.executeStep(ctx, step)
		if err != nil {
			return res, fmt.Errorf("attack: step %s: %w", step.Account, err)
		}
		res.Steps = append(res.Steps, sr)
		res.FinalToken = token
	}
	return res, nil
}

// executeStep compromises one account: source every factor of the
// step's path, authenticate, then harvest the profile.
func (e *Executor) executeStep(ctx context.Context, step strategy.PlanStep) (StepResult, string, error) {
	sr := StepResult{Account: step.Account, PathID: step.PathID}
	inst, ok := e.Platform.Instance(step.Account)
	if !ok {
		return sr, "", fmt.Errorf("%w: %s", ErrNotLaunched, step.Account)
	}
	presence, ok := e.Platform.Catalog().PresenceOf(step.Account)
	if !ok {
		return sr, "", fmt.Errorf("attack: presence lookup failed for %s", step.Account)
	}
	path, ok := pathByID(presence, step.PathID)
	if !ok {
		return sr, "", fmt.Errorf("attack: path %q not on %s", step.PathID, step.Account)
	}

	// 1. Trigger OTP delivery when the path carries code factors.
	needsCodes := false
	for _, f := range path.Factors {
		if f == ecosys.FactorSMSCode || f == ecosys.FactorEmailCode || f == ecosys.FactorEmailLink {
			needsCodes = true
		}
	}
	if needsCodes {
		var rc services.RequestCodeResp
		status, err := e.postJSON(ctx, inst.URL()+"/request-code", services.RequestCodeReq{
			Phone: e.Know.Phone(), Path: path.ID,
		}, &rc)
		if err != nil {
			return sr, "", err
		}
		if status != http.StatusOK {
			return sr, "", fmt.Errorf("attack: request-code returned %d", status)
		}
	}

	// 2. Source each factor.
	factors := make(map[string]string, len(path.Factors))
	for _, f := range path.Factors {
		val, note, err := e.sourceFactor(ctx, f, step.Account.Service, presence)
		if err != nil {
			return sr, "", err
		}
		if note != "" {
			sr.Notes = append(sr.Notes, note)
		}
		factors[f.String()] = val
	}

	// 3. Authenticate.
	var auth services.AuthResp
	status, err := e.postJSON(ctx, inst.URL()+"/authenticate", services.AuthReq{
		Phone: e.Know.Phone(), Path: path.ID, Factors: factors,
	}, &auth)
	if err != nil {
		return sr, "", err
	}
	if status != http.StatusOK || auth.Token == "" {
		return sr, "", fmt.Errorf("attack: authenticate on %s via %s returned %d", step.Account, path.ID, status)
	}
	e.Know.SetSession(step.Account.Service, auth.Token)

	// 4. Harvest the profile into the dossier.
	var prof services.ProfileResp
	status, err = e.getJSON(ctx, inst.URL()+"/profile", auth.Token, &prof)
	if err != nil {
		return sr, "", err
	}
	if status == http.StatusOK {
		for name, displayed := range prof.Fields {
			if field, ok := parseField(name); ok {
				e.Know.Ingest(field, displayed)
				sr.Harvested = append(sr.Harvested, name)
			}
		}
	}
	return sr, auth.Token, nil
}

// sourceFactor produces a concrete value for one factor.
func (e *Executor) sourceFactor(ctx context.Context, f ecosys.FactorKind, service string, presence *ecosys.Presence) (value, note string, err error) {
	switch f {
	case ecosys.FactorSMSCode:
		code, err := e.Intercept.InterceptCode(ctx, services.OriginatorFor(service))
		if err != nil {
			return "", "", err
		}
		return code, "intercepted SMS code " + code, nil
	case ecosys.FactorEmailCode, ecosys.FactorEmailLink:
		code, err := e.readEmailCode(ctx, service, presence)
		if err != nil {
			return "", "", err
		}
		return code, "read email code from compromised mailbox", nil
	case ecosys.FactorLinkedAccount:
		for _, b := range presence.BoundTo {
			if token, ok := e.Know.Session(b); ok {
				return token, "reused " + b + " session for SSO", nil
			}
		}
		return "", "", fmt.Errorf("%w: no session on any bound account %v", ErrMissingFactor, presence.BoundTo)
	default:
		if v, ok := e.Know.FactorValue(f); ok {
			if len(e.Know.Views(fieldOf(f))) > 1 {
				return v, "value for " + f.String() + " recovered by combining masked views", nil
			}
			return v, "", nil
		}
		return "", "", fmt.Errorf("%w: %s", ErrMissingFactor, f)
	}
}

// readEmailCode reads the newest OTP mail for this presence's service
// out of the victim's mailbox, through a previously compromised email
// account.
func (e *Executor) readEmailCode(ctx context.Context, service string, presence *ecosys.Presence) (string, error) {
	provider := presence.EmailProvider
	if provider == "" {
		return "", fmt.Errorf("%w: target has no email provider on record", ErrMissingFactor)
	}
	token, ok := e.Know.Session(provider)
	if !ok {
		return "", fmt.Errorf("%w: mailbox host %s not compromised", ErrMissingFactor, provider)
	}
	inst, ok := e.Platform.Instance(ecosys.AccountID{Service: provider, Platform: ecosys.PlatformWeb})
	if !ok {
		inst, ok = e.Platform.Instance(ecosys.AccountID{Service: provider, Platform: ecosys.PlatformMobile})
	}
	if !ok {
		return "", fmt.Errorf("%w: mailbox host %s not launched", ErrNotLaunched, provider)
	}
	var box services.MailboxResp
	status, err := e.getJSON(ctx, inst.URL()+"/mailbox", token, &box)
	if err != nil {
		return "", err
	}
	if status != http.StatusOK {
		return "", fmt.Errorf("attack: mailbox read returned %d", status)
	}
	want := services.OriginatorFor(service)
	for i := len(box.Messages) - 1; i >= 0; i-- {
		m := box.Messages[i]
		if !strings.Contains(m.Subject, want) {
			continue
		}
		if code, ok := email.ExtractCode(m.Body); ok {
			return code, nil
		}
	}
	return "", fmt.Errorf("%w: no %s code mail in mailbox", ErrMissingFactor, want)
}

// --- plumbing ---

func (e *Executor) postJSON(ctx context.Context, url string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := e.client().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil {
		_ = json.NewDecoder(resp.Body).Decode(out)
	}
	return resp.StatusCode, nil
}

func (e *Executor) getJSON(ctx context.Context, url, token string, out any) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := e.client().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil {
		_ = json.NewDecoder(resp.Body).Decode(out)
	}
	return resp.StatusCode, nil
}

// Pay demonstrates control of a fintech target by making a payment.
func (e *Executor) Pay(ctx context.Context, target ecosys.AccountID, token string) (string, error) {
	inst, ok := e.Platform.Instance(target)
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrNotLaunched, target)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, inst.URL()+"/pay", bytes.NewReader([]byte("{}")))
	if err != nil {
		return "", err
	}
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := e.client().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("attack: pay returned %d", resp.StatusCode)
	}
	var pay services.PayResp
	if err := json.NewDecoder(resp.Body).Decode(&pay); err != nil {
		return "", err
	}
	return pay.Receipt, nil
}

// --- helpers bridging ecosys metadata ---

func pathByID(pr *ecosys.Presence, id string) (ecosys.AuthPath, bool) {
	for _, p := range pr.Paths {
		if p.ID == id {
			return p, true
		}
	}
	return ecosys.AuthPath{}, false
}

// fieldOf is the inverse factor->field map for note generation.
func fieldOf(f ecosys.FactorKind) ecosys.InfoField {
	if field, ok := factorField[f]; ok {
		return field
	}
	return 0
}

func parseField(name string) (ecosys.InfoField, bool) {
	for _, f := range ecosys.AllInfoFields() {
		if f.String() == name {
			return f, true
		}
	}
	return 0, false
}
