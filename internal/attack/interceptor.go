package attack

import (
	"context"
	"fmt"
	"time"

	"github.com/actfort/actfort/internal/email"
	"github.com/actfort/actfort/internal/sniffer"
	"github.com/actfort/actfort/internal/telecom"
)

// Interceptor obtains SMS one-time codes out of band — the attack's
// primary capability. Two implementations mirror the paper's §V.A.2:
// passive GSM sniffing and the active MitM's fake victim terminal.
type Interceptor interface {
	// InterceptCode blocks until an SMS from originator that carries
	// an OTP arrives, and returns the extracted digits. Each call
	// consumes one message: successive resets return successive codes.
	InterceptCode(ctx context.Context, originator string) (string, error)
}

// SnifferInterceptor extracts codes from a passive sniffer's capture
// stream (Fig 6). The victim also receives each code — passive
// interception is observable.
type SnifferInterceptor struct {
	Sniffer *sniffer.Sniffer
	cursor  int
}

var _ Interceptor = (*SnifferInterceptor)(nil)

// InterceptCode implements Interceptor.
func (s *SnifferInterceptor) InterceptCode(ctx context.Context, originator string) (string, error) {
	for {
		caps := s.Sniffer.Captures()
		for ; s.cursor < len(caps); s.cursor++ {
			c := caps[s.cursor]
			if c.Originator != originator {
				continue
			}
			if code, ok := email.ExtractCode(c.Text); ok {
				s.cursor++
				return code, nil
			}
		}
		select {
		case <-ctx.Done():
			return "", fmt.Errorf("attack: sniffing for %q: %w", originator, ctx.Err())
		case <-time.After(time.Millisecond):
		}
	}
}

// MitMInterceptor extracts codes from the fake victim terminal's inbox
// after an active takeover (Fig 7/10). The victim receives nothing —
// covert interception.
type MitMInterceptor struct {
	FVT    *telecom.Terminal
	cursor int
}

var _ Interceptor = (*MitMInterceptor)(nil)

// InterceptCode implements Interceptor.
func (m *MitMInterceptor) InterceptCode(ctx context.Context, originator string) (string, error) {
	for {
		inbox := m.FVT.Inbox()
		for ; m.cursor < len(inbox); m.cursor++ {
			msg := inbox[m.cursor]
			if msg.Originator != originator {
				continue
			}
			if code, ok := email.ExtractCode(msg.Text); ok {
				m.cursor++
				return code, nil
			}
		}
		select {
		case <-ctx.Done():
			return "", fmt.Errorf("attack: MitM waiting for %q: %w", originator, ctx.Err())
		case <-time.After(time.Millisecond):
		}
	}
}
