package socialdb

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestDBAddLookup(t *testing.T) {
	d := New()
	if _, err := d.Lookup("+8613800000001"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing lookup err = %v", err)
	}
	d.Add(Record{Phone: "+8613800000001", RealName: "Wang Wei", Source: "2016-breach"})
	r, err := d.Lookup("+8613800000001")
	if err != nil || r.RealName != "Wang Wei" {
		t.Fatalf("Lookup = %+v, %v", r, err)
	}
	// Last write wins.
	d.Add(Record{Phone: "+8613800000001", RealName: "Wang Wei", Address: "1 Zheda Road", Source: "2018-breach"})
	r, _ = d.Lookup("+8613800000001")
	if r.Source != "2018-breach" || r.Address == "" {
		t.Errorf("merge semantics wrong: %+v", r)
	}
	if d.Len() != 1 {
		t.Errorf("Len = %d", d.Len())
	}
}

func TestPhishingWiFi(t *testing.T) {
	w := NewPhishingWiFi("Free_Airport_WiFi")
	if !w.Observe("+8613800000001") {
		t.Error("first observation should be new")
	}
	if w.Observe("+8613800000001") {
		t.Error("duplicate observation reported as new")
	}
	w.Observe("+8613800000002")
	got := w.Harvested()
	if len(got) != 2 || got[0] != "+8613800000001" || got[1] != "+8613800000002" {
		t.Errorf("Harvested = %v", got)
	}
	if w.SSID != "Free_Airport_WiFi" {
		t.Errorf("SSID = %q", w.SSID)
	}
}

func TestConcurrentAccess(t *testing.T) {
	d := New()
	w := NewPhishingWiFi("x")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				phone := string(rune('a'+i)) + "-phone"
				d.Add(Record{Phone: phone})
				_, _ = d.Lookup(phone)
				w.Observe(phone)
			}
		}(i)
	}
	wg.Wait()
	if d.Len() != 8 || len(w.Harvested()) != 8 {
		t.Errorf("Len=%d harvested=%d want 8/8", d.Len(), len(w.Harvested()))
	}
}

// TestShardedConcurrentLookups hammers the sharded store the way
// campaign workers do: writers merging dumps while readers resolve
// dossiers, across every bucket. Run under -race this pins the
// sharded-RWMutex design.
func TestShardedConcurrentLookups(t *testing.T) {
	d := New()
	const writers, readers, perWorker = 4, 8, 2000
	phone := func(w, i int) string {
		return fmt.Sprintf("+86138%02d%06d", w, i)
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				d.Add(Record{Phone: phone(w, i), RealName: "r", Source: "breach"})
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Misses and hits both exercise the read path.
				_, _ = d.Lookup(phone(r%writers, i))
			}
		}(r)
	}
	wg.Wait()
	if got, want := d.Len(), writers*perWorker; got != want {
		t.Fatalf("Len = %d want %d", got, want)
	}
	for w := 0; w < writers; w++ {
		if _, err := d.Lookup(phone(w, perWorker-1)); err != nil {
			t.Fatalf("missing record for writer %d: %v", w, err)
		}
	}
}

// TestMerge checks dump merging keeps last-write-wins semantics.
func TestMerge(t *testing.T) {
	a, b := New(), New()
	a.Add(Record{Phone: "+8613800000001", Source: "old"})
	b.Add(Record{Phone: "+8613800000001", Source: "new"})
	b.Add(Record{Phone: "+8613800000002", Source: "new"})
	a.Merge(b)
	if a.Len() != 2 {
		t.Fatalf("Len = %d", a.Len())
	}
	if r, _ := a.Lookup("+8613800000001"); r.Source != "new" {
		t.Fatalf("merge lost last write: %+v", r)
	}
}
