package socialdb

import (
	"errors"
	"sync"
	"testing"
)

func TestDBAddLookup(t *testing.T) {
	d := New()
	if _, err := d.Lookup("+8613800000001"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing lookup err = %v", err)
	}
	d.Add(Record{Phone: "+8613800000001", RealName: "Wang Wei", Source: "2016-breach"})
	r, err := d.Lookup("+8613800000001")
	if err != nil || r.RealName != "Wang Wei" {
		t.Fatalf("Lookup = %+v, %v", r, err)
	}
	// Last write wins.
	d.Add(Record{Phone: "+8613800000001", RealName: "Wang Wei", Address: "1 Zheda Road", Source: "2018-breach"})
	r, _ = d.Lookup("+8613800000001")
	if r.Source != "2018-breach" || r.Address == "" {
		t.Errorf("merge semantics wrong: %+v", r)
	}
	if d.Len() != 1 {
		t.Errorf("Len = %d", d.Len())
	}
}

func TestPhishingWiFi(t *testing.T) {
	w := NewPhishingWiFi("Free_Airport_WiFi")
	if !w.Observe("+8613800000001") {
		t.Error("first observation should be new")
	}
	if w.Observe("+8613800000001") {
		t.Error("duplicate observation reported as new")
	}
	w.Observe("+8613800000002")
	got := w.Harvested()
	if len(got) != 2 || got[0] != "+8613800000001" || got[1] != "+8613800000002" {
		t.Errorf("Harvested = %v", got)
	}
	if w.SSID != "Free_Airport_WiFi" {
		t.Errorf("SSID = %q", w.SSID)
	}
}

func TestConcurrentAccess(t *testing.T) {
	d := New()
	w := NewPhishingWiFi("x")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				phone := string(rune('a'+i)) + "-phone"
				d.Add(Record{Phone: phone})
				_, _ = d.Lookup(phone)
				w.Observe(phone)
			}
		}(i)
	}
	wg.Wait()
	if d.Len() != 8 || len(w.Harvested()) != 8 {
		t.Errorf("Len=%d harvested=%d want 8/8", d.Len(), len(w.Harvested()))
	}
}
