// Package socialdb models the attacker's out-of-band information
// sources from §V.A.1: leaked personal-information databases used for
// targeted attacks ("the attacker could utilize the existing illegal
// databases of leaked personal information") and the phishing-WiFi
// harvester used for random attacks at airports and railway stations.
//
// All data here is synthetic (see internal/identity); the package
// exists to give the attack orchestrator the same two entry points the
// paper assumes: a victim phone number, and optionally a name/address.
//
// The store is sharded: population-scale campaigns (internal/campaign)
// hammer one DB with millions of concurrent lookups from a worker
// pool, so records are spread over NumShards independently locked
// buckets and reads take only a bucket's RLock.
package socialdb

import (
	"errors"
	"sync"

	"github.com/actfort/actfort/internal/intern"
)

// Record is one leaked entry keyed by phone number.
type Record struct {
	Phone     string
	RealName  string
	Address   string
	CitizenID string
	// Source labels provenance ("2016-breach", "phishing-wifi", ...).
	Source string
}

// ErrNotFound reports a phone with no leaked record.
var ErrNotFound = errors.New("socialdb: no record for phone")

// NumShards is the bucket count. A power of two keeps the shard index
// a mask; 64 buckets outnumber any realistic worker-pool size, so
// concurrent campaign lookups almost never contend on one lock.
const NumShards = 64

// DB is an in-memory leaked-records store. Safe for concurrent use.
type DB struct {
	shards [NumShards]dbShard
}

// dbShard is one lock domain of the store.
type dbShard struct {
	mu      sync.RWMutex
	byPhone map[string]Record
}

// shardOf hashes a phone number to its bucket (FNV-1a).
func shardOf(phone string) int {
	h := uint32(2166136261)
	for i := 0; i < len(phone); i++ {
		h = (h ^ uint32(phone[i])) * 16777619
	}
	return int(h & (NumShards - 1))
}

// New builds an empty DB.
func New() *DB {
	d := &DB{}
	for i := range d.shards {
		d.shards[i].byPhone = make(map[string]Record)
	}
	return d
}

// Add inserts or replaces a record (last write wins, as merged dumps
// behave). The source label is interned: every record of a provenance
// tier aliases one canonical string, however many dumps it arrives in.
func (d *DB) Add(r Record) {
	r.Source = intern.String(r.Source)
	s := &d.shards[shardOf(r.Phone)]
	s.mu.Lock()
	s.byPhone[r.Phone] = r
	s.mu.Unlock()
}

// AddAll bulk-inserts records, grouping lock acquisitions: each bucket
// is locked once per distinct bucket hit instead of once per record.
// The campaign's lazy harvest ingests whole shards of reconstructed
// leak records through this.
func (d *DB) AddAll(recs []Record) {
	for i := 0; i < len(recs); {
		b := shardOf(recs[i].Phone)
		s := &d.shards[b]
		s.mu.Lock()
		for ; i < len(recs) && shardOf(recs[i].Phone) == b; i++ {
			r := recs[i]
			r.Source = intern.String(r.Source)
			s.byPhone[r.Phone] = r
		}
		s.mu.Unlock()
	}
}

// Lookup fetches the record for a phone number.
func (d *DB) Lookup(phone string) (Record, error) {
	s := &d.shards[shardOf(phone)]
	s.mu.RLock()
	r, ok := s.byPhone[phone]
	s.mu.RUnlock()
	if !ok {
		return Record{}, ErrNotFound
	}
	return r, nil
}

// LookupBytes is Lookup keyed by raw phone bytes, for callers probing
// with reusable scratch buffers: the []byte→string conversion stays
// inside the map index expression, which Go compiles without a copy,
// so the hit and miss paths both allocate nothing.
func (d *DB) LookupBytes(phone []byte) (Record, error) {
	h := uint32(2166136261)
	for i := 0; i < len(phone); i++ {
		h = (h ^ uint32(phone[i])) * 16777619
	}
	s := &d.shards[h&(NumShards-1)]
	s.mu.RLock()
	r, ok := s.byPhone[string(phone)]
	s.mu.RUnlock()
	if !ok {
		return Record{}, ErrNotFound
	}
	return r, nil
}

// Len reports the number of records.
func (d *DB) Len() int {
	n := 0
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.RLock()
		n += len(s.byPhone)
		s.mu.RUnlock()
	}
	return n
}

// mergeStage pools the per-bucket staging slice Merge copies records
// through, so repeated shard merges recycle one buffer instead of
// allocating per bucket.
var mergeStage = sync.Pool{New: func() any { s := make([]Record, 0, 256); return &s }}

// Merge copies every record of src into d (last write wins). Campaign
// ingestion merges per-shard dumps into one global store with it.
func (d *DB) Merge(src *DB) {
	stage := mergeStage.Get().(*[]Record)
	for i := range src.shards {
		s := &src.shards[i]
		s.mu.RLock()
		recs := (*stage)[:0]
		for _, r := range s.byPhone {
			recs = append(recs, r)
		}
		s.mu.RUnlock()
		*stage = recs
		for _, r := range recs {
			d.Add(r)
		}
	}
	clear(*stage)
	mergeStage.Put(stage)
}

// PhishingWiFi is the random-attack harvester: a fake access point at
// a crowded venue collecting the phone numbers of nearby victims.
type PhishingWiFi struct {
	// SSID is the bait network name.
	SSID string

	mu       sync.Mutex
	captured []string
	seen     map[string]bool
}

// NewPhishingWiFi deploys a fake AP.
func NewPhishingWiFi(ssid string) *PhishingWiFi {
	return &PhishingWiFi{SSID: ssid, seen: make(map[string]bool)}
}

// Observe records a victim's phone number (dedup by number); it
// returns true when the number is new.
func (w *PhishingWiFi) Observe(phone string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.seen[phone] {
		return false
	}
	w.seen[phone] = true
	w.captured = append(w.captured, phone)
	return true
}

// Harvested returns captured numbers in observation order.
func (w *PhishingWiFi) Harvested() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]string(nil), w.captured...)
}
