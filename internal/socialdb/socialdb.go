// Package socialdb models the attacker's out-of-band information
// sources from §V.A.1: leaked personal-information databases used for
// targeted attacks ("the attacker could utilize the existing illegal
// databases of leaked personal information") and the phishing-WiFi
// harvester used for random attacks at airports and railway stations.
//
// All data here is synthetic (see internal/identity); the package
// exists to give the attack orchestrator the same two entry points the
// paper assumes: a victim phone number, and optionally a name/address.
package socialdb

import (
	"errors"
	"sync"
)

// Record is one leaked entry keyed by phone number.
type Record struct {
	Phone     string
	RealName  string
	Address   string
	CitizenID string
	// Source labels provenance ("2016-breach", "phishing-wifi", ...).
	Source string
}

// ErrNotFound reports a phone with no leaked record.
var ErrNotFound = errors.New("socialdb: no record for phone")

// DB is an in-memory leaked-records store. Safe for concurrent use.
type DB struct {
	mu      sync.Mutex
	byPhone map[string]Record
}

// New builds an empty DB.
func New() *DB {
	return &DB{byPhone: make(map[string]Record)}
}

// Add inserts or replaces a record (last write wins, as merged dumps
// behave).
func (d *DB) Add(r Record) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.byPhone[r.Phone] = r
}

// Lookup fetches the record for a phone number.
func (d *DB) Lookup(phone string) (Record, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	r, ok := d.byPhone[phone]
	if !ok {
		return Record{}, ErrNotFound
	}
	return r, nil
}

// Len reports the number of records.
func (d *DB) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.byPhone)
}

// PhishingWiFi is the random-attack harvester: a fake access point at
// a crowded venue collecting the phone numbers of nearby victims.
type PhishingWiFi struct {
	// SSID is the bait network name.
	SSID string

	mu       sync.Mutex
	captured []string
	seen     map[string]bool
}

// NewPhishingWiFi deploys a fake AP.
func NewPhishingWiFi(ssid string) *PhishingWiFi {
	return &PhishingWiFi{SSID: ssid, seen: make(map[string]bool)}
}

// Observe records a victim's phone number (dedup by number); it
// returns true when the number is new.
func (w *PhishingWiFi) Observe(phone string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.seen[phone] {
		return false
	}
	w.seen[phone] = true
	w.captured = append(w.captured, phone)
	return true
}

// Harvested returns captured numbers in observation order.
func (w *PhishingWiFi) Harvested() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]string(nil), w.captured...)
}
