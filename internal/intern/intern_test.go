package intern

import (
	"strconv"
	"sync"
	"testing"
)

// TestInternCanonical pins the core contract: equal content resolves
// to one canonical string instance, whichever entry point saw it.
func TestInternCanonical(t *testing.T) {
	a := String("alipay")
	b := String("ali" + "pay"[:3])
	if a != b {
		t.Fatalf("String returned different content: %q vs %q", a, b)
	}
	c := Bytes([]byte("alipay"))
	// Pointer identity, not just equality: the interner must hand back
	// the same instance (unsafe-free check via string headers would be
	// overkill — map semantics guarantee it if the table is shared, and
	// the Len probe below pins single insertion).
	if c != a {
		t.Fatalf("Bytes disagrees with String: %q vs %q", c, a)
	}
	if String("") != "" || Bytes(nil) != "" {
		t.Fatal("empty string must be its own canonical form")
	}
}

// TestInternConcurrent hammers the table from many goroutines over a
// shared vocabulary, through both entry points at once — run under
// `go test -race` (CI's race job does) this pins the locking protocol.
func TestInternConcurrent(t *testing.T) {
	const workers = 16
	const vocab = 200
	const rounds = 500
	before := Len()
	var wg sync.WaitGroup
	results := make([][]string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := make([]string, vocab)
			buf := make([]byte, 0, 32)
			for r := 0; r < rounds; r++ {
				for i := 0; i < vocab; i++ {
					var s string
					if (w+r)%2 == 0 {
						s = String("svc-" + strconv.Itoa(i))
					} else {
						buf = append(buf[:0], "svc-"...)
						buf = strconv.AppendInt(buf, int64(i), 10)
						s = Bytes(buf)
					}
					if out[i] == "" {
						out[i] = s
					} else if out[i] != s {
						t.Errorf("worker %d: word %d changed canonical form", w, i)
						return
					}
				}
			}
			results[w] = out
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range results[0] {
			if results[w][i] != results[0][i] {
				t.Fatalf("workers %d and 0 disagree on word %d", w, i)
			}
		}
	}
	if grew := Len() - before; grew > vocab {
		t.Fatalf("table grew by %d for a %d-word vocabulary", grew, vocab)
	}
}
