// Package intern is the process-wide string interner behind the lazy
// persona pipeline: every small vocabulary the campaign stack keys on
// — persona full names, ecosystem service names, leak-record source
// labels — resolves to ONE canonical string per distinct content, so
// a billion-subscriber population retains at most a vocabulary's worth
// of string storage instead of one copy per subscriber, and map
// lookups keyed on interned strings hit the pointer-equality fast path
// of Go's string comparison before ever touching bytes.
//
// The table only grows (interned vocabularies are small and stable by
// contract — names, services, source labels — never per-subscriber
// uniques like phone numbers), and it is safe for concurrent use: the
// campaign worker pool interns from every worker at once, which the
// race-enabled hammer test pins.
package intern

import "sync"

// numShards spreads the table over independently locked buckets, like
// socialdb: a power of two keeps the bucket index a mask, and 64
// buckets outnumber any realistic worker pool, so concurrent interning
// almost never contends on one lock.
const numShards = 64

// shard is one lock domain of the table.
type shard struct {
	mu sync.RWMutex
	m  map[string]string
}

var shards [numShards]shard

func init() {
	for i := range shards {
		shards[i].m = make(map[string]string)
	}
}

// bucketBytes hashes content to its bucket (FNV-1a, the same function
// for both key forms so String and Bytes agree on placement).
func bucketBytes(b []byte) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(b); i++ {
		h = (h ^ uint32(b[i])) * 16777619
	}
	return &shards[h&(numShards-1)]
}

// bucketString is bucketBytes for a string key.
func bucketString(s string) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return &shards[h&(numShards-1)]
}

// String returns the canonical instance of s, inserting s itself on
// first sight. The empty string is its own canonical form.
func String(s string) string {
	if s == "" {
		return ""
	}
	sh := bucketString(s)
	sh.mu.RLock()
	v, ok := sh.m[s]
	sh.mu.RUnlock()
	if ok {
		return v
	}
	sh.mu.Lock()
	v, ok = sh.m[s]
	if !ok {
		sh.m[s] = s
		v = s
	}
	sh.mu.Unlock()
	return v
}

// Bytes returns the canonical string for the content of b, allocating
// only on first sight: the hit path keeps the []byte→string conversion
// inside the map index expression, which Go compiles without a copy.
// Callers assembling keys in reusable scratch buffers (the campaign's
// per-worker slabs) intern through this to stay allocation-free at
// steady state.
func Bytes(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	sh := bucketBytes(b)
	sh.mu.RLock()
	v, ok := sh.m[string(b)]
	sh.mu.RUnlock()
	if ok {
		return v
	}
	s := string(b)
	sh.mu.Lock()
	v, ok = sh.m[s]
	if !ok {
		sh.m[s] = s
		v = s
	}
	sh.mu.Unlock()
	return v
}

// Len reports how many distinct strings are interned (diagnostics and
// the vocabulary-boundedness tests).
func Len() int {
	n := 0
	for i := range shards {
		sh := &shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}
