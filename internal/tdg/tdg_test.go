package tdg

import (
	"strings"
	"testing"

	"github.com/actfort/actfort/internal/ecosys"
)

// fixtureNodes builds a miniature paper-shaped ecosystem:
//
//	gmail/web    — reset with PN+SC (fringe); hosts everyone's email
//	ctrip/web    — sign-in with PN+SC (fringe); exposes citizen ID
//	paypal/web   — reset with SC+EMC (needs gmail)
//	alipay/mob   — reset with SC+CID (needs ctrip)
//	bank/web     — reset with Name+CID+BN (needs a couple)
//	jd/web       — exposes real name (half parent for bank)
//	shop/web     — exposes bankcard (half parent for bank); fringe
//	fortress/web — sign-in with U2F only (unattackable)
//	expedia/web  — sign-in via linked gmail account
func fixtureNodes() []Node {
	id := func(s string, p ecosys.Platform) ecosys.AccountID {
		return ecosys.AccountID{Service: s, Platform: p}
	}
	web := ecosys.PlatformWeb
	mob := ecosys.PlatformMobile
	return []Node{
		{
			ID:     id("gmail", web),
			Domain: ecosys.DomainEmail,
			Paths: []ecosys.AuthPath{
				{ID: "signin-1", Purpose: ecosys.PurposeSignIn, Factors: []ecosys.FactorKind{ecosys.FactorPassword}},
				{ID: "reset-1", Purpose: ecosys.PurposeReset, Factors: []ecosys.FactorKind{ecosys.FactorCellphone, ecosys.FactorSMSCode}},
			},
			Exposes: ecosys.NewInfoSet(ecosys.InfoEmailAddress, ecosys.InfoAcquaintance, ecosys.InfoChatHistory),
		},
		{
			ID:     id("ctrip", web),
			Domain: ecosys.DomainTravel,
			Paths: []ecosys.AuthPath{
				{ID: "signin-1", Purpose: ecosys.PurposeSignIn, Factors: []ecosys.FactorKind{ecosys.FactorCellphone, ecosys.FactorSMSCode}},
			},
			Exposes: ecosys.NewInfoSet(ecosys.InfoCitizenID, ecosys.InfoRealName, ecosys.InfoCellphone),
		},
		{
			ID:     id("paypal", web),
			Domain: ecosys.DomainFintech,
			Paths: []ecosys.AuthPath{
				{ID: "reset-1", Purpose: ecosys.PurposeReset, Factors: []ecosys.FactorKind{ecosys.FactorSMSCode, ecosys.FactorEmailCode}},
			},
			Exposes:       ecosys.NewInfoSet(ecosys.InfoRealName, ecosys.InfoEmailAddress),
			EmailProvider: "gmail",
		},
		{
			ID:     id("alipay", mob),
			Domain: ecosys.DomainFintech,
			Paths: []ecosys.AuthPath{
				{ID: "reset-1", Purpose: ecosys.PurposeReset, Factors: []ecosys.FactorKind{ecosys.FactorSMSCode, ecosys.FactorCitizenID}},
				{ID: "pay-1", Purpose: ecosys.PurposePaymentReset, Factors: []ecosys.FactorKind{ecosys.FactorSMSCode, ecosys.FactorCitizenID}},
			},
			Exposes: ecosys.NewInfoSet(ecosys.InfoRealName, ecosys.InfoCellphone, ecosys.InfoBankcard),
		},
		{
			ID:     id("bank", web),
			Domain: ecosys.DomainFintech,
			Paths: []ecosys.AuthPath{
				{ID: "reset-1", Purpose: ecosys.PurposeReset, Factors: []ecosys.FactorKind{ecosys.FactorRealName, ecosys.FactorCitizenID, ecosys.FactorBankcard}},
			},
			Exposes: ecosys.NewInfoSet(ecosys.InfoBankcard),
		},
		{
			ID:      id("jd", web),
			Domain:  ecosys.DomainECommerce,
			Paths:   []ecosys.AuthPath{{ID: "signin-1", Purpose: ecosys.PurposeSignIn, Factors: []ecosys.FactorKind{ecosys.FactorSMSCode}}},
			Exposes: ecosys.NewInfoSet(ecosys.InfoRealName, ecosys.InfoDeviceType, ecosys.InfoAcquaintance),
		},
		{
			ID:      id("shop", web),
			Domain:  ecosys.DomainECommerce,
			Paths:   []ecosys.AuthPath{{ID: "signin-1", Purpose: ecosys.PurposeSignIn, Factors: []ecosys.FactorKind{ecosys.FactorCellphone, ecosys.FactorSMSCode}}},
			Exposes: ecosys.NewInfoSet(ecosys.InfoBankcard, ecosys.InfoAddress),
		},
		{
			ID:      id("fortress", web),
			Domain:  ecosys.DomainFintech,
			Paths:   []ecosys.AuthPath{{ID: "signin-1", Purpose: ecosys.PurposeSignIn, Factors: []ecosys.FactorKind{ecosys.FactorU2F}}},
			Exposes: ecosys.NewInfoSet(ecosys.InfoRealName),
		},
		{
			ID:      id("expedia", web),
			Domain:  ecosys.DomainTravel,
			Paths:   []ecosys.AuthPath{{ID: "signin-1", Purpose: ecosys.PurposeSignIn, Factors: []ecosys.FactorKind{ecosys.FactorLinkedAccount}}},
			Exposes: ecosys.NewInfoSet(ecosys.InfoOrderHistory),
			BoundTo: []string{"gmail"},
		},
	}
}

func buildFixture(t *testing.T, opts ...Option) *Graph {
	t.Helper()
	g, err := Build(fixtureNodes(), ecosys.BaselineAttacker(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func aid(s string, p ecosys.Platform) ecosys.AccountID {
	return ecosys.AccountID{Service: s, Platform: p}
}

func TestFringeClassification(t *testing.T) {
	g := buildFixture(t)
	wantFringe := map[string]bool{
		"gmail/web": true, "ctrip/web": true, "jd/web": true, "shop/web": true,
		"paypal/web": false, "alipay/mobile": false, "bank/web": false,
		"fortress/web": false, "expedia/web": false,
	}
	for _, id := range g.Nodes() {
		if got := g.IsFringe(id); got != wantFringe[id.String()] {
			t.Errorf("IsFringe(%s) = %v want %v", id, got, wantFringe[id.String()])
		}
	}
	if got := len(g.FringeNodes()) + len(g.InternalNodes()); got != g.Len() {
		t.Errorf("fringe+internal = %d want %d", got, g.Len())
	}
}

func TestStrongEdges(t *testing.T) {
	g := buildFixture(t)

	// ctrip exposes citizen ID -> full-capacity parent of alipay.
	parents := g.StrongParents(aid("alipay", ecosys.PlatformMobile))
	if len(parents) != 1 || parents[0] != aid("ctrip", ecosys.PlatformWeb) {
		t.Errorf("alipay strong parents = %v", parents)
	}

	// gmail hosts paypal's mailbox -> full-capacity parent of paypal.
	parents = g.StrongParents(aid("paypal", ecosys.PlatformWeb))
	if len(parents) != 1 || parents[0] != aid("gmail", ecosys.PlatformWeb) {
		t.Errorf("paypal strong parents = %v", parents)
	}

	// expedia is bound to gmail -> gmail is its full-capacity parent.
	parents = g.StrongParents(aid("expedia", ecosys.PlatformWeb))
	if len(parents) != 1 || parents[0] != aid("gmail", ecosys.PlatformWeb) {
		t.Errorf("expedia strong parents = %v", parents)
	}

	// fortress (U2F) must have no parents at all.
	if got := g.StrongParents(aid("fortress", ecosys.PlatformWeb)); len(got) != 0 {
		t.Errorf("fortress strong parents = %v", got)
	}
	for _, e := range g.WeakEdges() {
		if e.To == aid("fortress", ecosys.PlatformWeb) {
			t.Errorf("weak edge into U2F-only node: %+v", e)
		}
	}
}

func TestCoupleNodes(t *testing.T) {
	g := buildFixture(t)
	bank := aid("bank", ecosys.PlatformWeb)

	// bank needs Name+CID+BN. ctrip gives Name+CID, shop/alipay give
	// BN: couples {ctrip, shop} and {ctrip, alipay}.
	couples := g.Couples(bank)
	if len(couples) == 0 {
		t.Fatal("no couples found for bank")
	}
	foundCtripShop := false
	for _, c := range couples {
		if c.Target != bank {
			t.Errorf("couple target = %v", c.Target)
		}
		members := make(map[string]bool, len(c.Members))
		for _, m := range c.Members {
			members[m.Service] = true
		}
		if members["ctrip"] && members["shop"] {
			foundCtripShop = true
		}
		// Minimality: a couple must never contain a node contributing
		// nothing (jd alone gives Name which ctrip already covers, so
		// {ctrip, jd, X} would be non-minimal).
		if members["ctrip"] && members["jd"] {
			t.Errorf("non-minimal couple: %v", c.Members)
		}
	}
	if !foundCtripShop {
		t.Errorf("expected couple {ctrip, shop}; got %+v", couples)
	}

	// No strong parent for bank: nobody alone covers all three.
	if got := g.StrongParents(bank); len(got) != 0 {
		t.Errorf("bank strong parents = %v", got)
	}

	// Weak edges exist for couple members.
	weakInto := map[string]bool{}
	for _, e := range g.WeakEdges() {
		if e.To == bank {
			weakInto[e.From.Service] = true
		}
	}
	if !weakInto["ctrip"] || !weakInto["shop"] {
		t.Errorf("weak edges into bank = %v", weakInto)
	}
}

func TestPaymentResetExcludedByDefault(t *testing.T) {
	g := buildFixture(t)
	// alipay's pay-1 path duplicates reset-1's factors, so edge sets
	// must not double-count: exactly one strong edge ctrip->alipay.
	count := 0
	for _, e := range g.StrongEdges() {
		if e.To == aid("alipay", ecosys.PlatformMobile) {
			count++
		}
	}
	if count != 1 {
		t.Errorf("strong edges into alipay = %d want 1", count)
	}

	gAll, err := Build(fixtureNodes(), ecosys.BaselineAttacker(), WithAllPaths())
	if err != nil {
		t.Fatal(err)
	}
	countAll := 0
	for _, e := range gAll.StrongEdges() {
		if e.To == aid("alipay", ecosys.PlatformMobile) {
			countAll++
		}
	}
	if countAll != 2 {
		t.Errorf("with all paths, strong edges into alipay = %d want 2", countAll)
	}
}

func TestRicherAttackerProfileShrinksRequirements(t *testing.T) {
	ap := ecosys.BaselineAttacker()
	ap.KnownInfo.Add(ecosys.InfoCitizenID) // targeted attacker with leaked DB
	g, err := Build(fixtureNodes(), ap)
	if err != nil {
		t.Fatal(err)
	}
	// With CID known a priori, alipay becomes fringe.
	if !g.IsFringe(aid("alipay", ecosys.PlatformMobile)) {
		t.Error("alipay should be fringe for an attacker holding citizen ID")
	}
}

func TestBuildValidation(t *testing.T) {
	nodes := fixtureNodes()
	dup := append(nodes, nodes[0])
	if _, err := Build(dup, ecosys.BaselineAttacker()); err == nil {
		t.Error("duplicate node accepted")
	}
	if _, err := Build(nodes, ecosys.BaselineAttacker(), WithMaxCoupleSize(1)); err == nil {
		t.Error("couple size 1 accepted")
	}
}

func TestTripleCouples(t *testing.T) {
	// A target needing three factors spread over three providers.
	web := ecosys.PlatformWeb
	nodes := []Node{
		{ID: aid("t", web), Paths: []ecosys.AuthPath{{ID: "r", Purpose: ecosys.PurposeReset,
			Factors: []ecosys.FactorKind{ecosys.FactorRealName, ecosys.FactorCitizenID, ecosys.FactorBankcard}}}},
		{ID: aid("a", web), Exposes: ecosys.NewInfoSet(ecosys.InfoRealName)},
		{ID: aid("b", web), Exposes: ecosys.NewInfoSet(ecosys.InfoCitizenID)},
		{ID: aid("c", web), Exposes: ecosys.NewInfoSet(ecosys.InfoBankcard)},
	}
	g2, err := Build(nodes, ecosys.BaselineAttacker(), WithMaxCoupleSize(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := g2.Couples(aid("t", web)); len(got) != 0 {
		t.Errorf("pair-only enumeration found %d couples, want 0", len(got))
	}
	g3, err := Build(nodes, ecosys.BaselineAttacker(), WithMaxCoupleSize(3))
	if err != nil {
		t.Fatal(err)
	}
	got := g3.Couples(aid("t", web))
	if len(got) != 1 || len(got[0].Members) != 3 {
		t.Fatalf("triple enumeration = %+v", got)
	}
}

func TestCoupleCapRespected(t *testing.T) {
	web := ecosys.PlatformWeb
	nodes := []Node{{
		ID: aid("t", web),
		Paths: []ecosys.AuthPath{{ID: "r", Purpose: ecosys.PurposeReset,
			Factors: []ecosys.FactorKind{ecosys.FactorRealName, ecosys.FactorBankcard}}},
	}}
	// 8 name providers x 8 card providers = 64 potential pairs.
	for i := 0; i < 8; i++ {
		nodes = append(nodes,
			Node{ID: aid("n"+string(rune('a'+i)), web), Exposes: ecosys.NewInfoSet(ecosys.InfoRealName)},
			Node{ID: aid("c"+string(rune('a'+i)), web), Exposes: ecosys.NewInfoSet(ecosys.InfoBankcard)},
		)
	}
	g, err := Build(nodes, ecosys.BaselineAttacker(), WithMaxCouplesPerPath(5))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(g.Couples(aid("t", web))); got > 5 {
		t.Errorf("couples = %d exceeds cap 5", got)
	}
}

func TestNodesFromCatalog(t *testing.T) {
	specs := []*ecosys.ServiceSpec{
		{Name: "a", Domain: ecosys.DomainEmail, Presences: []ecosys.Presence{
			{Platform: ecosys.PlatformWeb, Exposes: []ecosys.Exposure{{Field: ecosys.InfoRealName}}},
			{Platform: ecosys.PlatformMobile},
		}},
		{Name: "b", Domain: ecosys.DomainSocial, Presences: []ecosys.Presence{
			{Platform: ecosys.PlatformMobile, EmailProvider: "a", BoundTo: []string{"a"}},
		}},
	}
	cat := ecosys.MustCatalog(specs)
	all := NodesFromCatalog(cat)
	if len(all) != 3 {
		t.Fatalf("all nodes = %d want 3", len(all))
	}
	webOnly := NodesFromCatalog(cat, ecosys.PlatformWeb)
	if len(webOnly) != 1 || webOnly[0].ID.Service != "a" {
		t.Fatalf("web nodes = %+v", webOnly)
	}
	mob := NodesFromCatalog(cat, ecosys.PlatformMobile)
	if len(mob) != 2 {
		t.Fatalf("mobile nodes = %d want 2", len(mob))
	}
	for _, n := range mob {
		if n.ID.Service == "b" {
			if n.EmailProvider != "a" || len(n.BoundTo) != 1 {
				t.Errorf("catalog fields not copied: %+v", n)
			}
		}
	}
}

func TestDOTOutput(t *testing.T) {
	g := buildFixture(t)
	var sb strings.Builder
	if err := g.DOT(&sb); err != nil {
		t.Fatal(err)
	}
	dot := sb.String()
	for _, want := range []string{
		"digraph tdg", `"gmail/web" [fillcolor=salmon]`,
		`"paypal/web" [fillcolor=lightblue]`,
		`"gmail/web" -> "paypal/web"`, "style=dashed",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
}

func TestDescribeNode(t *testing.T) {
	g := buildFixture(t)
	desc, err := g.DescribeNode(aid("alipay", ecosys.PlatformMobile))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"credential factor file", "SC + CID", "personal information file", "bankcard-number"} {
		if !strings.Contains(desc, want) {
			t.Errorf("DescribeNode missing %q in:\n%s", want, desc)
		}
	}
	if _, err := g.DescribeNode(aid("nope", ecosys.PlatformWeb)); err == nil {
		t.Error("unknown node described")
	}
}

func TestProfileIsCopied(t *testing.T) {
	g := buildFixture(t)
	p := g.Profile()
	p.Capabilities.Add(ecosys.FactorU2F)
	if g.Profile().Capabilities.Has(ecosys.FactorU2F) {
		t.Error("Profile() leaked internal state")
	}
}

func BenchmarkBuildFixture(b *testing.B) {
	nodes := fixtureNodes()
	ap := ecosys.BaselineAttacker()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Build(nodes, ap); err != nil {
			b.Fatal(err)
		}
	}
}
