// Package tdg implements the Transformation Dependency Graph of
// §III.D: nodes are online accounts carrying a credential-factor
// attribute (CFA — their authentication paths) and a personal-
// information attribute (PIA — what they expose after login); a
// directed edge records that one account's exposed information
// supplies credential factors of another. Edges are classified as in
// the paper: a *full capacity parent* alone (plus the attacker
// profile) satisfies a complete authentication path of its child
// (strong-directivity edge); *half capacity parents* contribute only
// part of a path; *couple nodes* are minimal groups of half-capacity
// parents that jointly complete one (weak-directivity edges, recorded
// in the Couple File).
package tdg

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/actfort/actfort/internal/ecosys"
)

// Node is one account in the graph.
type Node struct {
	ID ecosys.AccountID
	// Domain is the service category (used for reporting).
	Domain ecosys.Domain
	// Paths is the CFA: every authentication path of the account.
	Paths []ecosys.AuthPath
	// Exposes is the PIA: fields visible after login.
	Exposes ecosys.InfoSet
	// BoundTo names services whose authenticated session unlocks this
	// account without further credentials (SSO binding).
	BoundTo []string
	// EmailProvider names the service hosting the account's mailbox;
	// controlling it supplies this account's EMC/EML factors.
	EmailProvider string
}

// EdgeKind classifies directivity per Definitions 1–3.
type EdgeKind int

const (
	// EdgeStrong is a strong-directivity edge: the parent alone
	// completes a path of the child.
	EdgeStrong EdgeKind = iota + 1
	// EdgeWeak is a weak-directivity edge: the parent is a member of
	// a couple group that jointly completes a path.
	EdgeWeak
)

// String names the kind.
func (k EdgeKind) String() string {
	switch k {
	case EdgeStrong:
		return "strong"
	case EdgeWeak:
		return "weak"
	}
	return "edge(?)"
}

// Edge is a directed dependency: From's exposed information feeds a
// path of To.
type Edge struct {
	From ecosys.AccountID
	To   ecosys.AccountID
	Kind EdgeKind
	// PathID names the To-side path the edge helps satisfy.
	PathID string
	// Provides lists the factors From contributes to that path.
	Provides []ecosys.FactorKind
}

// CoupleGroup is one Couple File (CouF) entry: the minimal member set
// jointly provides every extra factor of Target's path PathID.
type CoupleGroup struct {
	Members []ecosys.AccountID
	Target  ecosys.AccountID
	PathID  string
}

// Option configures Build.
type Option func(*buildOptions)

type buildOptions struct {
	maxCoupleSize     int
	maxCouplesPerPath int
	takeoverPathsOnly bool
}

// WithMaxCoupleSize bounds couple enumeration (default 2, the paper's
// "u, w" pairs; 3 explores triples).
func WithMaxCoupleSize(k int) Option {
	return func(o *buildOptions) { o.maxCoupleSize = k }
}

// WithMaxCouplesPerPath caps recorded couples per (target, path) to
// keep dense graphs tractable (default 64).
func WithMaxCouplesPerPath(n int) Option {
	return func(o *buildOptions) { o.maxCouplesPerPath = n }
}

// WithAllPaths includes payment-reset paths in edge construction
// (default: only takeover paths — sign-in and password reset).
func WithAllPaths() Option {
	return func(o *buildOptions) { o.takeoverPathsOnly = false }
}

// Graph is an immutable built TDG.
type Graph struct {
	nodes   map[ecosys.AccountID]*Node
	order   []ecosys.AccountID
	ap      ecosys.AttackerProfile
	strong  []Edge
	weak    []Edge
	couples []CoupleGroup

	strongParents map[ecosys.AccountID][]ecosys.AccountID
	fringe        map[ecosys.AccountID]bool
}

// maskableFieldLens gives the canonical value lengths used for the
// combining-coverage analysis (18-digit citizen IDs, 16-digit PANs).
var maskableFieldLens = map[ecosys.InfoField]int{
	ecosys.InfoCitizenID: 18,
	ecosys.InfoBankcard:  16,
}

// NodesFromCatalog extracts graph nodes for the given platforms (both
// when none specified).
//
// Masked sensitive fields are treated with combining-attack semantics
// (§IV.B.2): a masked exposure supplies its credential factor only if
// the catalog's mask windows for that field jointly reveal every
// position — the condition under which an attacker who visits enough
// services reconstructs the full value. Under a unified masking
// standard the union collapses to a single window and masked exposures
// stop feeding the graph; unmasked exposures always count.
func NodesFromCatalog(cat *ecosys.Catalog, platforms ...ecosys.Platform) []Node {
	if len(platforms) == 0 {
		platforms = ecosys.AllPlatforms()
	}
	want := make(map[ecosys.Platform]bool, len(platforms))
	for _, p := range platforms {
		want[p] = true
	}
	combinable := combinableFields(cat)
	var out []Node
	for _, svc := range cat.Services() {
		for i := range svc.Presences {
			pr := &svc.Presences[i]
			if !want[pr.Platform] {
				continue
			}
			exposes := pr.ExposedFields()
			for field, length := range maskableFieldLens {
				e, ok := pr.Exposure(field)
				if !ok {
					continue
				}
				if !e.Mask.Masked || maskRevealed(length, e.Mask) >= length {
					continue // fully visible on this service
				}
				if !combinable[field] {
					delete(exposes, field)
				}
			}
			out = append(out, Node{
				ID:            ecosys.AccountID{Service: svc.Name, Platform: pr.Platform},
				Domain:        svc.Domain,
				Paths:         append([]ecosys.AuthPath(nil), pr.Paths...),
				Exposes:       exposes,
				BoundTo:       append([]string(nil), pr.BoundTo...),
				EmailProvider: pr.EmailProvider,
			})
		}
	}
	return out
}

// combinableFields reports, for each maskable field, whether the
// catalog's exposures jointly reveal the whole value (an unmasked
// exposure anywhere, or window union covering every position). The
// whole catalog is consulted regardless of the platform filter: the
// combining attacker visits any service they can compromise.
func combinableFields(cat *ecosys.Catalog) map[ecosys.InfoField]bool {
	out := make(map[ecosys.InfoField]bool, len(maskableFieldLens))
	for field, length := range maskableFieldLens {
		maxPre, maxSuf := 0, 0
		full := false
		for _, svc := range cat.Services() {
			for i := range svc.Presences {
				e, ok := svc.Presences[i].Exposure(field)
				if !ok {
					continue
				}
				if !e.Mask.Masked || maskRevealed(length, e.Mask) >= length {
					full = true
					break
				}
				if e.Mask.VisiblePrefix > maxPre {
					maxPre = e.Mask.VisiblePrefix
				}
				if e.Mask.VisibleSuffix > maxSuf {
					maxSuf = e.Mask.VisibleSuffix
				}
			}
			if full {
				break
			}
		}
		out[field] = full || maxPre+maxSuf >= length
	}
	return out
}

// maskRevealed mirrors mask.Revealed without importing the package
// (tdg sits below mask in the dependency order used by tests).
func maskRevealed(n int, spec ecosys.MaskSpec) int {
	if !spec.Masked {
		return n
	}
	pre, suf := spec.VisiblePrefix, spec.VisibleSuffix
	if pre < 0 {
		pre = 0
	}
	if suf < 0 {
		suf = 0
	}
	if pre+suf >= n {
		return n
	}
	return pre + suf
}

// Build constructs the graph for the given nodes under attacker
// profile ap.
func Build(nodes []Node, ap ecosys.AttackerProfile, opts ...Option) (*Graph, error) {
	o := buildOptions{maxCoupleSize: 2, maxCouplesPerPath: 64, takeoverPathsOnly: true}
	for _, opt := range opts {
		opt(&o)
	}
	if o.maxCoupleSize < 2 {
		return nil, fmt.Errorf("tdg: max couple size %d < 2", o.maxCoupleSize)
	}

	g := &Graph{
		nodes:         make(map[ecosys.AccountID]*Node, len(nodes)),
		ap:            ap.Clone(),
		strongParents: make(map[ecosys.AccountID][]ecosys.AccountID),
		fringe:        make(map[ecosys.AccountID]bool),
	}
	for i := range nodes {
		n := nodes[i] // copy
		if _, dup := g.nodes[n.ID]; dup {
			return nil, fmt.Errorf("tdg: duplicate node %s", n.ID)
		}
		g.nodes[n.ID] = &n
		g.order = append(g.order, n.ID)
	}

	apFactors := g.ap.Factors()

	// Per-provider factor sets, computed once.
	providerFactors := make(map[ecosys.AccountID]ecosys.FactorSet, len(nodes))
	for id, n := range g.nodes {
		providerFactors[id] = n.Exposes.Factors()
	}

	for _, targetID := range g.order {
		target := g.nodes[targetID]
		paths := target.Paths
		if o.takeoverPathsOnly {
			paths = takeoverPaths(paths)
		}
		strongSeen := make(map[ecosys.AccountID]bool)
		for _, path := range paths {
			required := missingFactors(path, apFactors)
			if len(required) == 0 {
				// Satisfiable by the attacker profile alone: a fringe
				// path. No parents needed.
				g.fringe[targetID] = true
				continue
			}
			if hasUnphishable(required) {
				// No amount of harvested information supplies
				// biometrics or U2F; the path grows no edges.
				continue
			}

			// Classify every other node against this path.
			type halfParent struct {
				id       ecosys.AccountID
				provides []ecosys.FactorKind
			}
			var halves []halfParent
			for _, fromID := range g.order {
				if fromID == targetID {
					continue
				}
				provides := contribution(providerFactors[fromID], fromID, target, required)
				if len(provides) == 0 {
					continue
				}
				if len(provides) == len(required) {
					g.strong = append(g.strong, Edge{
						From: fromID, To: targetID, Kind: EdgeStrong,
						PathID: path.ID, Provides: provides,
					})
					if !strongSeen[fromID] {
						strongSeen[fromID] = true
						g.strongParents[targetID] = append(g.strongParents[targetID], fromID)
					}
					continue
				}
				halves = append(halves, halfParent{id: fromID, provides: provides})
			}

			// Couple enumeration: minimal half-parent groups covering
			// the path, up to the configured size.
			couples := enumerateCouples(halves, required, o.maxCoupleSize, o.maxCouplesPerPath,
				func(h halfParent) []ecosys.FactorKind { return h.provides },
			)
			weakSeen := make(map[ecosys.AccountID]bool)
			for _, grp := range couples {
				members := make([]ecosys.AccountID, 0, len(grp))
				for _, h := range grp {
					members = append(members, h.id)
					if !weakSeen[h.id] {
						weakSeen[h.id] = true
						g.weak = append(g.weak, Edge{
							From: h.id, To: targetID, Kind: EdgeWeak,
							PathID: path.ID, Provides: h.provides,
						})
					}
				}
				g.couples = append(g.couples, CoupleGroup{
					Members: members, Target: targetID, PathID: path.ID,
				})
			}
		}
	}
	return g, nil
}

// takeoverPaths filters to paths granting account control.
func takeoverPaths(paths []ecosys.AuthPath) []ecosys.AuthPath {
	var out []ecosys.AuthPath
	for _, p := range paths {
		if p.Purpose == ecosys.PurposeSignIn || p.Purpose == ecosys.PurposeReset {
			out = append(out, p)
		}
	}
	return out
}

// missingFactors returns path factors not supplied by the attacker
// profile, in declaration order.
func missingFactors(path ecosys.AuthPath, ap ecosys.FactorSet) []ecosys.FactorKind {
	var out []ecosys.FactorKind
	seen := make(map[ecosys.FactorKind]bool)
	for _, f := range path.Factors {
		if ap.Has(f) || seen[f] {
			continue
		}
		seen[f] = true
		out = append(out, f)
	}
	return out
}

func hasUnphishable(factors []ecosys.FactorKind) bool {
	for _, f := range factors {
		if f.Unphishable() {
			return true
		}
	}
	return false
}

// contribution computes which of the required factors `from` can
// supply to `target`: exposure-derived factors, linked-account control
// when the target is bound to the provider, and email codes/links when
// the provider hosts the target's mailbox.
func contribution(fromFactors ecosys.FactorSet, fromID ecosys.AccountID, target *Node, required []ecosys.FactorKind) []ecosys.FactorKind {
	var out []ecosys.FactorKind
	for _, f := range required {
		switch f {
		case ecosys.FactorLinkedAccount:
			if boundTo(target, fromID.Service) {
				out = append(out, f)
			}
		case ecosys.FactorEmailCode, ecosys.FactorEmailLink:
			if target.EmailProvider != "" && target.EmailProvider == fromID.Service {
				out = append(out, f)
			}
		default:
			if fromFactors.Has(f) {
				out = append(out, f)
			}
		}
	}
	return out
}

func boundTo(target *Node, service string) bool {
	for _, b := range target.BoundTo {
		if b == service {
			return true
		}
	}
	return false
}

// enumerateCouples finds minimal groups of halves (size 2..maxSize)
// whose contributions jointly cover required. Groups are minimal: no
// member's removal leaves coverage intact.
func enumerateCouples[H any](halves []H, required []ecosys.FactorKind, maxSize, maxGroups int, provides func(H) []ecosys.FactorKind) [][]H {
	if len(halves) < 2 || len(required) == 0 {
		return nil
	}
	reqIdx := make(map[ecosys.FactorKind]int, len(required))
	for i, f := range required {
		reqIdx[f] = i
	}
	full := uint64(1)<<uint(len(required)) - 1
	masks := make([]uint64, len(halves))
	for i, h := range halves {
		for _, f := range provides(h) {
			if idx, ok := reqIdx[f]; ok {
				masks[i] |= 1 << uint(idx)
			}
		}
	}

	var out [][]H
	var pick func(start int, chosen []int, acc uint64)
	pick = func(start int, chosen []int, acc uint64) {
		if len(out) >= maxGroups {
			return
		}
		if acc == full && len(chosen) >= 2 {
			// Minimality: every member must be necessary.
			for _, c := range chosen {
				rest := uint64(0)
				for _, d := range chosen {
					if d != c {
						rest |= masks[d]
					}
				}
				if rest == full {
					return
				}
			}
			grp := make([]H, 0, len(chosen))
			for _, c := range chosen {
				grp = append(grp, halves[c])
			}
			out = append(out, grp)
			return
		}
		if len(chosen) >= maxSize {
			return
		}
		for i := start; i < len(halves); i++ {
			if masks[i]&^acc == 0 {
				continue // contributes nothing new
			}
			pick(i+1, append(chosen, i), acc|masks[i])
		}
	}
	pick(0, nil, 0)
	return out
}

// --- queries ---

// Len returns the node count.
func (g *Graph) Len() int { return len(g.order) }

// Suppliers returns every node whose compromise supplies factor f for
// target, in insertion order. It applies the same rules as edge
// construction: exposure-derived factors, SSO bindings and email
// hosting.
func (g *Graph) Suppliers(target ecosys.AccountID, f ecosys.FactorKind) []ecosys.AccountID {
	tnode, ok := g.nodes[target]
	if !ok {
		return nil
	}
	var out []ecosys.AccountID
	for _, fromID := range g.order {
		if fromID == target {
			continue
		}
		provides := contribution(g.nodes[fromID].Exposes.Factors(), fromID, tnode, []ecosys.FactorKind{f})
		if len(provides) > 0 {
			out = append(out, fromID)
		}
	}
	return out
}

// HasStrongFor reports whether some single full-capacity parent covers
// target's path pathID.
func (g *Graph) HasStrongFor(target ecosys.AccountID, pathID string) bool {
	for _, e := range g.strong {
		if e.To == target && e.PathID == pathID {
			return true
		}
	}
	return false
}

// Nodes returns node IDs in insertion order (a fresh slice).
func (g *Graph) Nodes() []ecosys.AccountID {
	return append([]ecosys.AccountID(nil), g.order...)
}

// Node fetches a node.
func (g *Graph) Node(id ecosys.AccountID) (*Node, bool) {
	n, ok := g.nodes[id]
	return n, ok
}

// Profile returns a copy of the attacker profile the graph was built
// under.
func (g *Graph) Profile() ecosys.AttackerProfile { return g.ap.Clone() }

// IsFringe reports whether the account has a path satisfiable by the
// attacker profile alone (the red nodes of Fig 4).
func (g *Graph) IsFringe(id ecosys.AccountID) bool { return g.fringe[id] }

// FringeNodes returns all fringe accounts in insertion order.
func (g *Graph) FringeNodes() []ecosys.AccountID {
	var out []ecosys.AccountID
	for _, id := range g.order {
		if g.fringe[id] {
			out = append(out, id)
		}
	}
	return out
}

// InternalNodes returns non-fringe accounts (the blue nodes of Fig 4).
func (g *Graph) InternalNodes() []ecosys.AccountID {
	var out []ecosys.AccountID
	for _, id := range g.order {
		if !g.fringe[id] {
			out = append(out, id)
		}
	}
	return out
}

// StrongParents returns the full-capacity parents of a node (unique,
// discovery order).
func (g *Graph) StrongParents(id ecosys.AccountID) []ecosys.AccountID {
	return append([]ecosys.AccountID(nil), g.strongParents[id]...)
}

// StrongEdges returns all strong-directivity edges.
func (g *Graph) StrongEdges() []Edge { return append([]Edge(nil), g.strong...) }

// WeakEdges returns all weak-directivity edges.
func (g *Graph) WeakEdges() []Edge { return append([]Edge(nil), g.weak...) }

// Couples returns the couple groups targeting id (all groups when id
// is the zero AccountID).
func (g *Graph) Couples(id ecosys.AccountID) []CoupleGroup {
	var out []CoupleGroup
	for _, c := range g.couples {
		if (id == ecosys.AccountID{}) || c.Target == id {
			out = append(out, c)
		}
	}
	return out
}

// --- rendering ---

// DOT writes the Fig 4-style connection graph: fringe nodes red,
// internal nodes blue, strong edges solid, weak edges dashed.
func (g *Graph) DOT(w io.Writer) error {
	var b strings.Builder
	b.WriteString("digraph tdg {\n  rankdir=LR;\n  node [style=filled, fontname=\"Helvetica\"];\n")
	for _, id := range g.order {
		color := "lightblue"
		if g.fringe[id] {
			color = "salmon"
		}
		fmt.Fprintf(&b, "  %q [fillcolor=%s];\n", id.String(), color)
	}
	for _, e := range g.strong {
		fmt.Fprintf(&b, "  %q -> %q [color=black];\n", e.From.String(), e.To.String())
	}
	for _, e := range g.weak {
		fmt.Fprintf(&b, "  %q -> %q [style=dashed, color=gray];\n", e.From.String(), e.To.String())
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// DescribeNode renders the Fig 12 single-node structure: the
// credential-factor file (per path) and the personal-information file.
func (g *Graph) DescribeNode(id ecosys.AccountID) (string, error) {
	n, ok := g.nodes[id]
	if !ok {
		return "", fmt.Errorf("tdg: unknown node %s", id)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", id)
	b.WriteString("  credential factor file:\n")
	for _, p := range n.Paths {
		shorts := make([]string, 0, len(p.Factors))
		for _, f := range p.Factors {
			shorts = append(shorts, f.Short())
		}
		fmt.Fprintf(&b, "    %s [%s]: %s\n", p.ID, p.Purpose, strings.Join(shorts, " + "))
	}
	b.WriteString("  personal information file:\n")
	fields := n.Exposes.Sorted()
	names := make([]string, 0, len(fields))
	for _, f := range fields {
		names = append(names, f.String())
	}
	sort.Strings(names)
	fmt.Fprintf(&b, "    %s\n", strings.Join(names, ", "))
	if len(n.BoundTo) > 0 {
		fmt.Fprintf(&b, "  bound to: %s\n", strings.Join(n.BoundTo, ", "))
	}
	return b.String(), nil
}
