package tdg

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/actfort/actfort/internal/ecosys"
)

// randomNodes builds a random node set for invariant checking.
func randomNodes(seed int64, size int) []Node {
	r := rand.New(rand.NewSource(seed))
	if size < 2 {
		size = 2
	}
	factorPool := []ecosys.FactorKind{
		ecosys.FactorSMSCode, ecosys.FactorCellphone, ecosys.FactorPassword,
		ecosys.FactorRealName, ecosys.FactorCitizenID, ecosys.FactorBankcard,
		ecosys.FactorAddress, ecosys.FactorUserID, ecosys.FactorBiometric,
	}
	fieldPool := []ecosys.InfoField{
		ecosys.InfoRealName, ecosys.InfoCitizenID, ecosys.InfoBankcard,
		ecosys.InfoAddress, ecosys.InfoUserID, ecosys.InfoEmailAddress,
	}
	nodes := make([]Node, 0, size)
	for i := 0; i < size; i++ {
		n := Node{
			ID:      ecosys.AccountID{Service: fmt.Sprintf("q%03d", i), Platform: ecosys.PlatformWeb},
			Exposes: make(ecosys.InfoSet),
		}
		for p := 0; p < 1+r.Intn(2); p++ {
			nf := 1 + r.Intn(3)
			factors := make([]ecosys.FactorKind, 0, nf)
			for f := 0; f < nf; f++ {
				factors = append(factors, factorPool[r.Intn(len(factorPool))])
			}
			n.Paths = append(n.Paths, ecosys.AuthPath{
				ID: fmt.Sprintf("p%d", p), Purpose: ecosys.PurposeReset, Factors: factors,
			})
		}
		for e := 0; e < r.Intn(4); e++ {
			n.Exposes.Add(fieldPool[r.Intn(len(fieldPool))])
		}
		nodes = append(nodes, n)
	}
	return nodes
}

// Property: every strong edge's source really covers every non-AP
// factor of the referenced path (edge soundness).
func TestPropertyStrongEdgesSound(t *testing.T) {
	ap := ecosys.BaselineAttacker()
	apFactors := ap.Factors()
	f := func(seed int64, sz uint8) bool {
		nodes := randomNodes(seed, int(sz%20)+2)
		g, err := Build(nodes, ap)
		if err != nil {
			return false
		}
		for _, e := range g.StrongEdges() {
			from, _ := g.Node(e.From)
			to, _ := g.Node(e.To)
			var path *ecosys.AuthPath
			for i := range to.Paths {
				if to.Paths[i].ID == e.PathID {
					path = &to.Paths[i]
					break
				}
			}
			if path == nil {
				return false
			}
			supplied := from.Exposes.Factors()
			for _, fk := range path.Factors {
				if apFactors.Has(fk) {
					continue
				}
				if !supplied.Has(fk) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: couples are minimal (no member removable) and jointly
// sufficient for their path.
func TestPropertyCouplesMinimalAndSufficient(t *testing.T) {
	ap := ecosys.BaselineAttacker()
	apFactors := ap.Factors()
	f := func(seed int64, sz uint8) bool {
		nodes := randomNodes(seed, int(sz%20)+2)
		g, err := Build(nodes, ap, WithMaxCoupleSize(3))
		if err != nil {
			return false
		}
		for _, c := range g.Couples(ecosys.AccountID{}) {
			to, _ := g.Node(c.Target)
			var path *ecosys.AuthPath
			for i := range to.Paths {
				if to.Paths[i].ID == c.PathID {
					path = &to.Paths[i]
					break
				}
			}
			if path == nil || len(c.Members) < 2 {
				return false
			}
			required := make([]ecosys.FactorKind, 0, len(path.Factors))
			for _, fk := range path.Factors {
				if !apFactors.Has(fk) {
					required = append(required, fk)
				}
			}
			covers := func(members []ecosys.AccountID) bool {
				have := make(ecosys.FactorSet)
				for _, m := range members {
					n, _ := g.Node(m)
					for fk := range n.Exposes.Factors() {
						have[fk] = true
					}
				}
				for _, fk := range required {
					if !have.Has(fk) {
						return false
					}
				}
				return true
			}
			if !covers(c.Members) {
				return false // not sufficient
			}
			for skip := range c.Members {
				reduced := make([]ecosys.AccountID, 0, len(c.Members)-1)
				for j, m := range c.Members {
					if j != skip {
						reduced = append(reduced, m)
					}
				}
				if covers(reduced) {
					return false // not minimal
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: adding exposure to a node never removes edges and never
// turns a fringe node internal (monotonicity of the graph in PIA).
func TestPropertyEdgesMonotoneInExposure(t *testing.T) {
	ap := ecosys.BaselineAttacker()
	f := func(seed int64, sz uint8) bool {
		nodes := randomNodes(seed, int(sz%16)+2)
		g1, err := Build(nodes, ap)
		if err != nil {
			return false
		}
		// Enrich every node's exposure.
		enriched := make([]Node, len(nodes))
		copy(enriched, nodes)
		for i := range enriched {
			enriched[i].Exposes = enriched[i].Exposes.Clone()
			enriched[i].Exposes.Add(ecosys.InfoCitizenID)
		}
		g2, err := Build(enriched, ap)
		if err != nil {
			return false
		}
		// Every strong edge of g1 must survive in g2.
		type key struct{ from, to, path string }
		have := make(map[key]bool)
		for _, e := range g2.StrongEdges() {
			have[key{e.From.String(), e.To.String(), e.PathID}] = true
		}
		for _, e := range g1.StrongEdges() {
			if !have[key{e.From.String(), e.To.String(), e.PathID}] {
				return false
			}
		}
		// Fringe membership is exposure-independent.
		for _, id := range g1.Nodes() {
			if g1.IsFringe(id) != g2.IsFringe(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: Suppliers() agrees with edge construction — every strong
// edge's source appears as a supplier of each factor it provides.
func TestPropertySuppliersConsistent(t *testing.T) {
	ap := ecosys.BaselineAttacker()
	f := func(seed int64, sz uint8) bool {
		nodes := randomNodes(seed, int(sz%16)+2)
		g, err := Build(nodes, ap)
		if err != nil {
			return false
		}
		for _, e := range g.StrongEdges() {
			for _, fk := range e.Provides {
				found := false
				for _, s := range g.Suppliers(e.To, fk) {
					if s == e.From {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
