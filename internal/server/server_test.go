package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/actfort/actfort/internal/campaign"
	"github.com/actfort/actfort/internal/obs"
	"github.com/actfort/actfort/internal/population"
	"github.com/actfort/actfort/internal/ratelimit"
	"github.com/actfort/actfort/internal/report"
)

// newEngine builds a resident engine over a fixed-seed population, the
// same Seed 7 the campaign package's own tests pin results against.
func newEngine(t *testing.T, size, shard int, mut func(*campaign.Config)) *campaign.Engine {
	t.Helper()
	pop, err := population.New(population.Config{Seed: 7, Size: size, ShardSize: shard})
	if err != nil {
		t.Fatal(err)
	}
	cfg := campaign.Config{Population: pop, KeyBits: 10, Workers: 4}
	if mut != nil {
		mut(&cfg)
	}
	eng, err := campaign.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// startServer mounts s on a fresh mux inside an httptest listener.
func startServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	s.Register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// postErr sends body to path and returns status and response bytes —
// the goroutine-safe form the concurrency test uses (no t.Fatal off
// the test goroutine).
func postErr(ts *httptest.Server, path, body string) (int, []byte, error) {
	resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, nil, fmt.Errorf("POST %s: %w", path, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return 0, nil, fmt.Errorf("read response: %w", err)
	}
	return resp.StatusCode, buf.Bytes(), nil
}

// post is postErr with failures fatal on the test goroutine.
func post(t *testing.T, ts *httptest.Server, path, body string) (int, []byte) {
	t.Helper()
	status, raw, err := postErr(ts, path, body)
	if err != nil {
		t.Fatal(err)
	}
	return status, raw
}

// zeroSummary zeroes the wall-clock Summary fields, mirroring the
// campaign package's zeroClock, so responses compare byte for byte.
func zeroSummary(sum *campaign.Summary) {
	sum.Duration = 0
	sum.VictimsPerSec = 0
	sum.ActiveDuration = 0
	sum.ResumeVictimsPerSec = 0
	sum.PhaseTimings = nil
}

// zeroSweep additionally strips per-scenario durations and the
// rig-build delta — the one sweep field that is legitimately
// nondeterministic when sweeps share a warm engine concurrently.
func zeroSweep(sw *campaign.SweepSummary) {
	sw.Duration = 0
	sw.RigsBuilt = 0
	for i := range sw.Results {
		sw.Results[i].Duration = 0
		if sw.Results[i].Summary != nil {
			zeroSummary(sw.Results[i].Summary)
		}
	}
}

// mustJSON renders v with the same encoder the server responds with.
func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := report.JSON(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestServerEndToEndRace is the service-layer determinism pin: an
// in-process campaignd over a 10k-subscriber resident engine, hammered
// with mixed /v1/scenario and /v1/sweep queries from many goroutines
// (run under -race in CI), answers every request byte-identically to a
// direct Engine call — the HTTP layer adds concurrency, not results.
func TestServerEndToEndRace(t *testing.T) {
	eng := newEngine(t, 10000, 512, func(c *campaign.Config) { c.SweepParallel = 2 })
	scenario := campaign.Scenario{Name: "baseline"}
	fortified := campaign.Scenario{Name: "fortified", Policy: "fortify-all"}
	sweep := []campaign.Scenario{scenario, fortified}

	// Expected bytes from direct engine calls on the same resident
	// engine the server holds.
	wantScenario := make(map[string][]byte)
	for _, sc := range []campaign.Scenario{scenario, fortified} {
		sum, err := eng.RunScenario(context.Background(), sc)
		if err != nil {
			t.Fatal(err)
		}
		zeroSummary(sum)
		wantScenario[sc.Name] = mustJSON(t, sum)
	}
	sw, err := eng.RunSweep(context.Background(), sweep)
	if err != nil {
		t.Fatal(err)
	}
	zeroSweep(sw)
	wantSweep := mustJSON(t, sw)

	s := New(Config{Engine: eng, Registry: obs.NewRegistry()})
	ts := startServer(t, s)
	scenarioBody, _ := json.Marshal(scenario)
	fortifiedBody, _ := json.Marshal(fortified)
	sweepBody, _ := json.Marshal(sweep)

	const goroutines, iters = 8, 3
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*iters)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (g + i) % 3 {
				case 0, 1:
					body, want := scenarioBody, wantScenario["baseline"]
					if (g+i)%3 == 1 {
						body, want = fortifiedBody, wantScenario["fortified"]
					}
					status, raw, err := postErr(ts, "/v1/scenario", string(body))
					if err != nil {
						errs <- err
						continue
					}
					if status != http.StatusOK {
						errs <- fmt.Errorf("scenario status %d: %s", status, raw)
						continue
					}
					var sum campaign.Summary
					if err := json.Unmarshal(raw, &sum); err != nil {
						errs <- fmt.Errorf("decode summary: %v", err)
						continue
					}
					zeroSummary(&sum)
					got, err := report.JSON(&sum)
					if err != nil {
						errs <- err
					} else if !bytes.Equal(got, want) {
						errs <- fmt.Errorf("goroutine %d iter %d: scenario response diverged from direct engine call", g, i)
					}
				case 2:
					status, raw, err := postErr(ts, "/v1/sweep", string(sweepBody))
					if err != nil {
						errs <- err
						continue
					}
					if status != http.StatusOK {
						errs <- fmt.Errorf("sweep status %d: %s", status, raw)
						continue
					}
					var got campaign.SweepSummary
					if err := json.Unmarshal(raw, &got); err != nil {
						errs <- fmt.Errorf("decode sweep: %v", err)
						continue
					}
					zeroSweep(&got)
					b, err := report.JSON(&got)
					if err != nil {
						errs <- err
					} else if !bytes.Equal(b, wantSweep) {
						errs <- fmt.Errorf("goroutine %d iter %d: sweep response diverged from direct engine call", g, i)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestServerRejectsMalformed pins the structured-400 surface: every
// way a request can be malformed — bad JSON, unknown fields, trailing
// garbage, out-of-range probabilities, empty or duplicate-name sweeps
// — is a 400 with a JSON error envelope, never an engine run.
func TestServerRejectsMalformed(t *testing.T) {
	eng := newEngine(t, 1024, 256, nil)
	s := New(Config{Engine: eng, Registry: obs.NewRegistry()})
	ts := startServer(t, s)

	cases := []struct {
		name, path, body string
		want             int
	}{
		{"bad json", "/v1/scenario", `{"name":`, http.StatusBadRequest},
		{"unknown field", "/v1/scenario", `{"name":"x","coverage":0.5}`, http.StatusBadRequest},
		{"trailing garbage", "/v1/scenario", `{"name":"x"} extra`, http.StatusBadRequest},
		{"probability above one", "/v1/scenario", `{"name":"x","radio":{"reauthSkip":5}}`, http.StatusBadRequest},
		{"bad platform", "/v1/scenario", `{"name":"x","platform":"fax"}`, http.StatusBadRequest},
		{"empty sweep", "/v1/sweep", `[]`, http.StatusBadRequest},
		{"duplicate names", "/v1/sweep", `[{"name":"a"},{"name":"a"}]`, http.StatusBadRequest},
		{"sweep not array", "/v1/sweep", `{"name":"a"}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, raw := post(t, ts, tc.path, tc.body)
			if status != tc.want {
				t.Fatalf("status = %d, want %d (%s)", status, tc.want, raw)
			}
			var eb errorBody
			if err := json.Unmarshal(raw, &eb); err != nil || eb.Status != tc.want || eb.Error == "" {
				t.Fatalf("error envelope %q not structured", raw)
			}
		})
	}

	// Wrong method is a 405, not a decode error.
	resp, err := ts.Client().Get(ts.URL + "/v1/scenario")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/scenario = %d, want 405", resp.StatusCode)
	}
}

// TestServerLifecycle walks the readiness state machine: healthz is
// live from the first listen, readyz and the query endpoints refuse
// (503) until SetEngine delivers the warm engine, and StartDrain flips
// both back to refusing while healthz stays 200.
func TestServerLifecycle(t *testing.T) {
	s := New(Config{Registry: obs.NewRegistry()}) // no engine yet
	ts := startServer(t, s)

	get := func(path string) int {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/v1/healthz"); got != http.StatusOK {
		t.Fatalf("healthz before engine = %d", got)
	}
	if got := get("/v1/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz before engine = %d, want 503", got)
	}
	if status, _ := post(t, ts, "/v1/scenario", `{"name":"x"}`); status != http.StatusServiceUnavailable {
		t.Fatalf("scenario before engine = %d, want 503", status)
	}

	s.SetEngine(newEngine(t, 1024, 256, nil))
	if !s.Ready() {
		t.Fatal("Ready() false after SetEngine")
	}
	if got := get("/v1/readyz"); got != http.StatusOK {
		t.Fatalf("readyz after engine = %d", got)
	}
	if status, _ := post(t, ts, "/v1/scenario", `{"name":"x"}`); status != http.StatusOK {
		t.Fatalf("scenario after engine = %d", status)
	}

	s.StartDrain()
	if s.Ready() {
		t.Fatal("Ready() true while draining")
	}
	if got := get("/v1/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz draining = %d, want 503", got)
	}
	if status, _ := post(t, ts, "/v1/scenario", `{"name":"x"}`); status != http.StatusServiceUnavailable {
		t.Fatalf("scenario draining = %d, want 503", status)
	}
	if got := get("/v1/healthz"); got != http.StatusOK {
		t.Fatalf("healthz draining = %d", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if !s.Drain(ctx) {
		t.Fatal("Drain did not complete with no requests in flight")
	}
}

// TestServerRateLimit pins 429 admission control: with a near-zero
// refill rate, exactly the burst is admitted and the rest are shed
// before any engine work, counted by campaignd_ratelimited_total.
func TestServerRateLimit(t *testing.T) {
	reg := obs.NewRegistry()
	eng := newEngine(t, 1024, 256, nil)
	s := New(Config{Engine: eng, Registry: reg, Limiter: ratelimit.New(1e-9, 2)})
	ts := startServer(t, s)

	codes := map[int]int{}
	for i := 0; i < 5; i++ {
		status, _ := post(t, ts, "/v1/scenario", `{"name":"x"}`)
		codes[status]++
	}
	if codes[http.StatusOK] != 2 || codes[http.StatusTooManyRequests] != 3 {
		t.Fatalf("codes = %v, want 2x200 + 3x429", codes)
	}
	if v, ok := reg.Value("campaignd_ratelimited_total"); !ok || v != 3 {
		t.Fatalf("campaignd_ratelimited_total = %v (ok=%v), want 3", v, ok)
	}
	if v, ok := reg.Value("campaignd_responses_total",
		obs.L("endpoint", "scenario"), obs.L("code", "429")); !ok || v != 3 {
		t.Fatalf("responses{scenario,429} = %v (ok=%v), want 3", v, ok)
	}
}

// TestServerRequestTimeout pins the 504 path: a request whose deadline
// expires mid-run cancels the run context and reports gateway timeout.
func TestServerRequestTimeout(t *testing.T) {
	eng := newEngine(t, 1024, 256, nil)
	s := New(Config{Engine: eng, Registry: obs.NewRegistry(), RequestTimeout: time.Nanosecond})
	ts := startServer(t, s)
	status, raw := post(t, ts, "/v1/scenario", `{"name":"x"}`)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s), want 504", status, raw)
	}
}

// TestServerQueueFullAnswers503 pins the bounded in-flight semaphore:
// when every slot is taken and the deadline expires while queued, the
// request is shed 503 without touching the engine.
func TestServerQueueFullAnswers503(t *testing.T) {
	eng := newEngine(t, 1024, 256, nil)
	s := New(Config{Engine: eng, Registry: obs.NewRegistry(),
		MaxInFlight: 1, RequestTimeout: 500 * time.Millisecond})
	ts := startServer(t, s)
	s.sem <- struct{}{} // occupy the only slot
	status, _ := post(t, ts, "/v1/scenario", `{"name":"x"}`)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 queued-out", status)
	}
	<-s.sem
	if status, _ := post(t, ts, "/v1/scenario", `{"name":"x"}`); status != http.StatusOK {
		t.Fatalf("status after slot freed = %d, want 200", status)
	}
}

// TestServerClientCancelReleasesAndRecovers is the server-path
// extension of the campaign goroutine-leak regression: a client
// disconnecting mid-run cancels the run context, winds every engine
// goroutine down, releases the (only) in-flight slot and the engine
// then serves the same query byte-identically.
func TestServerClientCancelReleasesAndRecovers(t *testing.T) {
	// cancelCurrent is armed by the test with the in-flight request's
	// cancel func; the engine's progress callback fires it after the
	// first merged shard, mid-run by construction.
	var cancelCurrent atomic.Value // of context.CancelFunc
	eng := newEngine(t, 4096, 128, func(c *campaign.Config) {
		c.Progress = func(done, total int) {
			if done > 0 {
				if cf, ok := cancelCurrent.Load().(context.CancelFunc); ok && cf != nil {
					cf()
				}
			}
		}
	})
	want, err := eng.RunScenario(context.Background(), campaign.Scenario{Name: "steady"})
	if err != nil {
		t.Fatal(err)
	}
	zeroSummary(want)
	wantBytes := mustJSON(t, want)

	s := New(Config{Engine: eng, Registry: obs.NewRegistry(), MaxInFlight: 1})
	ts := startServer(t, s)
	ts.Client().CloseIdleConnections()
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	cancelCurrent.Store(cancel)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/scenario", strings.NewReader(`{"name":"steady"}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := ts.Client().Do(req); err == nil {
		// The transport may deliver the 499 instead of erroring.
		resp.Body.Close()
	}
	cancelCurrent.Store(context.CancelFunc(nil))
	cancel()

	// Engine goroutines wind down asynchronously; poll like the
	// campaign-package regression does.
	ts.Client().CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after cancelled request",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The single in-flight slot must be free again and the engine
	// undamaged: the same query answers byte-identically.
	status, raw := post(t, ts, "/v1/scenario", `{"name":"steady"}`)
	if status != http.StatusOK {
		t.Fatalf("post-cancel status = %d (%s)", status, raw)
	}
	var sum campaign.Summary
	if err := json.Unmarshal(raw, &sum); err != nil {
		t.Fatal(err)
	}
	zeroSummary(&sum)
	if got := mustJSON(t, &sum); !bytes.Equal(got, wantBytes) {
		t.Fatal("post-cancel response diverged from pre-cancel direct run")
	}
}

// TestServerTraceAndMetrics pins request-scoped observability: the
// request ID names anonymous scenarios (so the engine's run_start
// trace row is attributable to its query), request_start/request_done
// bracket the run in the shard-lifecycle trace, and the per-endpoint
// counters and latency histogram record the request.
func TestServerTraceAndMetrics(t *testing.T) {
	path := t.TempDir() + "/trace.jsonl"
	tw, err := obs.OpenTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	eng := newEngine(t, 1024, 256, func(c *campaign.Config) { c.Trace = tw })
	s := New(Config{Engine: eng, Registry: reg, Trace: tw})
	ts := startServer(t, s)

	status, raw := post(t, ts, "/v1/scenario", `{}`) // anonymous scenario
	if status != http.StatusOK {
		t.Fatalf("status = %d (%s)", status, raw)
	}
	var sum campaign.Summary
	if err := json.Unmarshal(raw, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Scenario != "req-1" {
		t.Fatalf("anonymous scenario named %q, want request ID req-1", sum.Scenario)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	trace, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"event":"request_start","shard":-1,"detail":"req-1 /v1/scenario req-1"`,
		`"event":"request_done","shard":-1,"detail":"req-1 /v1/scenario scenario=req-1 status=200"`,
		`"event":"run_start","shard":-1,"detail":"req-1"`,
	} {
		if !strings.Contains(string(trace), want) {
			t.Errorf("trace missing %s\ntrace:\n%s", want, trace)
		}
	}

	if v, ok := reg.Value("campaignd_requests_total", obs.L("endpoint", "scenario")); !ok || v != 1 {
		t.Fatalf("requests_total{scenario} = %v (ok=%v), want 1", v, ok)
	}
	if v, ok := reg.Value("campaignd_responses_total",
		obs.L("endpoint", "scenario"), obs.L("code", "200")); !ok || v != 1 {
		t.Fatalf("responses{scenario,200} = %v (ok=%v), want 1", v, ok)
	}
	if v, ok := reg.Value("campaignd_inflight_requests"); !ok || v != 0 {
		t.Fatalf("inflight after completion = %v (ok=%v), want 0", v, ok)
	}
}
