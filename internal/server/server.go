// Package server is the campaign query service's HTTP layer: it puts
// the resident campaign.Engine (one population, one TMTO table, one
// rig pool — built once, amortized forever) behind a small JSON API so
// the paper's fortification question — "what does takeover mass look
// like under policy X for segment Y" — becomes an online query instead
// of a batch job.
//
// Endpoints (all registered by Register, usually onto the obs
// diagnostics mux so /metrics and /debug/pprof ride the same
// listener):
//
//	POST /v1/scenario  one campaign.Scenario in, its Summary out
//	POST /v1/sweep     a scenario list in (the scenario-file format),
//	                   the comparative SweepSummary out
//	GET  /v1/healthz   process liveness (200 as soon as we listen)
//	GET  /v1/readyz    readiness: 200 only once the engine — the
//	                   population and cracker-table warm-up — is
//	                   resident and the server is not draining
//
// The service layer adds zero nondeterminism: a query's response body
// is byte-identical (modulo wall-clock fields) to a direct
// Engine.RunScenario/RunSweep call, which the race-focused end-to-end
// test pins. What it does add is the production skin: structured 400s
// from the campaign normalization rules, token-bucket admission (429),
// a bounded in-flight query semaphore sized off the engine's worker
// budget, per-request timeouts and client-disconnect cancellation
// threaded into the run, graceful drain, per-endpoint latency
// histograms and request IDs in the shard-lifecycle trace.
package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/actfort/actfort/internal/campaign"
	"github.com/actfort/actfort/internal/obs"
	"github.com/actfort/actfort/internal/ratelimit"
)

// MaxRequestBytes bounds a request body: scenario definitions are a
// few hundred bytes, so anything near the cap is garbage, not a query.
const MaxRequestBytes = 1 << 20

// StatusClientClosedRequest is the nginx-convention status recorded
// when the client disconnected before its run finished. Nothing reads
// the response, but the metric and trace rows need an honest code that
// is neither the server's fault (5xx) nor a success.
const StatusClientClosedRequest = 499

// RequestLatencyBuckets is the per-endpoint latency ladder: 100µs
// doubling to ~13s, wide enough that a population-scale sweep query
// still lands in a finite bucket.
var RequestLatencyBuckets = obs.ExpBuckets(100e-6, 2, 18)

// Config parameterizes a Server.
type Config struct {
	// Engine is the resident campaign engine. It may be nil at New —
	// the server answers healthz immediately and readyz 503 until
	// SetEngine delivers the warmed engine, so a listener can accept
	// probes while the population and TMTO table build.
	Engine *campaign.Engine
	// Registry receives the per-endpoint metrics (nil = obs.Default).
	Registry *obs.Registry
	// Limiter is the token-bucket admission gate for query endpoints;
	// a rejected request is answered 429 before any engine work. Nil =
	// unlimited.
	Limiter *ratelimit.Limiter
	// MaxInFlight bounds concurrently running queries; requests beyond
	// it queue until a slot frees or their context dies. Size it off
	// the engine's Workers budget — more in-flight runs than shard
	// workers only adds memory, not throughput (0 = GOMAXPROCS).
	MaxInFlight int
	// RequestTimeout bounds each query end to end — queue wait plus
	// run. Expiry cancels the run's context and answers 504 (0 = no
	// timeout).
	RequestTimeout time.Duration
	// Trace, when non-nil, receives request_start/request_done events
	// carrying the request ID alongside the engine's shard-lifecycle
	// stream, so a run in the trace is attributable to the query that
	// asked for it.
	Trace *obs.TraceWriter
}

// Server is the HTTP service over one resident engine. Build with New,
// mount with Register, flip readiness with SetEngine, shed new work
// with StartDrain. All methods are safe for concurrent use.
type Server struct {
	cfg    Config
	reg    *obs.Registry
	engine atomic.Pointer[campaign.Engine]

	sem      chan struct{}
	draining atomic.Bool
	reqID    atomic.Uint64
	inflight sync.WaitGroup

	metInflight    *obs.Gauge
	metRatelimited *obs.Counter
	endpoints      map[string]*endpointMetrics
}

// New builds the server (without listening — the caller owns the mux
// and listener so /v1 can share the obs diagnostics mux).
func New(cfg Config) *Server {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.Default
	}
	s := &Server{
		cfg: cfg,
		reg: reg,
		sem: make(chan struct{}, cfg.MaxInFlight),
		metInflight: reg.NewGauge("campaignd_inflight_requests",
			"Requests currently inside a handler, including queries queued for an in-flight slot."),
		metRatelimited: reg.NewCounter("campaignd_ratelimited_total",
			"Query requests rejected 429 by the token-bucket admission gate."),
		endpoints: make(map[string]*endpointMetrics),
	}
	for _, ep := range []string{"scenario", "sweep", "healthz", "readyz"} {
		s.endpoints[ep] = newEndpointMetrics(reg, ep)
	}
	if cfg.Engine != nil {
		s.engine.Store(cfg.Engine)
	}
	return s
}

// SetEngine installs the resident engine and flips readiness. Called
// once startup warm-up (population + cracker table construction)
// completes; queries arriving earlier are answered 503.
func (s *Server) SetEngine(e *campaign.Engine) { s.engine.Store(e) }

// Ready reports whether the server would answer readyz 200: engine
// resident and not draining.
func (s *Server) Ready() bool { return s.engine.Load() != nil && !s.draining.Load() }

// StartDrain marks the server draining: readyz answers 503 so load
// balancers stop routing here, and new query requests are refused,
// while queries already admitted run to completion. The caller then
// shuts the HTTP server down gracefully (which waits for those
// in-flight handlers) — the SIGTERM sequence cmd/campaignd follows.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Drain blocks until every in-flight handler has returned or ctx
// expires, reporting whether the drain completed.
func (s *Server) Drain(ctx context.Context) bool {
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-ctx.Done():
		return false
	}
}

// Register mounts the /v1 endpoints on mux — typically the obs
// diagnostics mux, so queries, /metrics and /debug/pprof share one
// listener.
func (s *Server) Register(mux *http.ServeMux) {
	mux.HandleFunc("/v1/scenario", s.instrument("scenario", s.handleScenario))
	mux.HandleFunc("/v1/sweep", s.instrument("sweep", s.handleSweep))
	mux.HandleFunc("/v1/healthz", s.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("/v1/readyz", s.instrument("readyz", s.handleReadyz))
}

// handleHealthz is process liveness: 200 as long as we can serve at
// all, draining or not.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is load-balancer readiness: 200 only with a resident
// engine and no drain in progress.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.draining.Load():
		writeError(w, http.StatusServiceUnavailable, "draining")
	case s.engine.Load() == nil:
		writeError(w, http.StatusServiceUnavailable, "engine warming up (population/table build in progress)")
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ready")
	}
}

// handleScenario runs one scenario: decode → validate (400) → admit
// (429/503) → run under the request context → Summary JSON.
func (s *Server) handleScenario(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST a campaign.Scenario JSON object")
		return
	}
	sc, err := DecodeScenario(http.MaxBytesReader(w, r.Body, MaxRequestBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	id := s.nextID()
	if sc.Name == "" {
		// The request ID becomes the scenario name, so the engine's
		// run_start trace event — and the response — identify the query.
		sc.Name = id
	}
	if _, err := sc.Normalized(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	eng, status, msg := s.admit(w, id, "/v1/scenario", sc.Name)
	if eng == nil {
		writeError(w, status, msg)
		return
	}
	ctx, cancel, release := s.begin(r)
	defer cancel()
	if !s.acquire(ctx, w, id, "/v1/scenario") {
		return
	}
	defer release()
	sum, err := eng.RunScenario(ctx, sc)
	if err != nil {
		s.runError(w, r, id, "/v1/scenario", err)
		return
	}
	s.trace("request_done", id, fmt.Sprintf("/v1/scenario scenario=%s status=200", sc.Name))
	writeJSON(w, sum)
}

// handleSweep runs a comparative scenario list (the scenario-file wire
// format) and returns the SweepSummary. The engine's configured
// SweepParallel governs how many of the list overlap.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST a JSON array of campaign.Scenario objects")
		return
	}
	list, err := DecodeSweep(http.MaxBytesReader(w, r.Body, MaxRequestBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	id := s.nextID()
	for i := range list {
		if list[i].Name == "" {
			list[i].Name = fmt.Sprintf("%s-%d", id, i)
		}
	}
	if _, err := campaign.NormalizeSweep(list); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	eng, status, msg := s.admit(w, id, "/v1/sweep", fmt.Sprintf("%d scenarios", len(list)))
	if eng == nil {
		writeError(w, status, msg)
		return
	}
	ctx, cancel, release := s.begin(r)
	defer cancel()
	if !s.acquire(ctx, w, id, "/v1/sweep") {
		return
	}
	defer release()
	sw, err := eng.RunSweep(ctx, list)
	if err != nil {
		s.runError(w, r, id, "/v1/sweep", err)
		return
	}
	s.trace("request_done", id, fmt.Sprintf("/v1/sweep scenarios=%d status=200", len(list)))
	writeJSON(w, sw)
}

// admit runs the pre-run gates shared by both query endpoints:
// draining and engine residency (503), then the token bucket (429).
// A nil engine return means the request was refused with (status,
// msg). Admission emits the request_start trace event so refused
// requests never reach the trace as phantom runs.
func (s *Server) admit(w http.ResponseWriter, id, endpoint, detail string) (*campaign.Engine, int, string) {
	if s.draining.Load() {
		return nil, http.StatusServiceUnavailable, "draining"
	}
	eng := s.engine.Load()
	if eng == nil {
		return nil, http.StatusServiceUnavailable, "engine warming up"
	}
	if !s.cfg.Limiter.Allow() {
		s.metRatelimited.Inc()
		return nil, http.StatusTooManyRequests, "rate limit exceeded"
	}
	s.trace("request_start", id, fmt.Sprintf("%s %s", endpoint, detail))
	return eng, 0, ""
}

// begin derives the run context (request context plus the configured
// timeout) and returns the semaphore release func acquire pairs with.
func (s *Server) begin(r *http.Request) (context.Context, context.CancelFunc, func()) {
	ctx := r.Context()
	cancel := context.CancelFunc(func() {})
	if s.cfg.RequestTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
	}
	return ctx, cancel, func() { <-s.sem }
}

// acquire takes one in-flight slot, queueing until the request context
// dies — in which case the request is answered 503 (queued out) or 499
// (client gone) and acquire reports false with nothing to release. A
// free slot is taken even when the context is already dead: the run
// context decides that race downstream (→ 504/499), not the queue.
func (s *Server) acquire(ctx context.Context, w http.ResponseWriter, id, endpoint string) bool {
	select {
	case s.sem <- struct{}{}:
		return true
	default:
	}
	select {
	case s.sem <- struct{}{}:
		return true
	case <-ctx.Done():
		status := http.StatusServiceUnavailable
		if errors.Is(ctx.Err(), context.Canceled) {
			status = StatusClientClosedRequest
		}
		s.trace("request_done", id, fmt.Sprintf("%s status=%d queued-out", endpoint, status))
		writeError(w, status, "server at capacity: queued past the request deadline")
		return false
	}
}

// runError maps a RunScenario/RunSweep failure to a status. Validation
// ran before admission, so an error here is either the context dying —
// the client's disconnect (499) or the server's deadline (504) — or a
// genuine engine failure (500).
func (s *Server) runError(w http.ResponseWriter, r *http.Request, id, endpoint string, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The run's context only cancels when the request context does;
		// distinguish "client went away" from anything else.
		status = StatusClientClosedRequest
		if r.Context().Err() == nil {
			status = http.StatusInternalServerError
		}
	}
	s.trace("request_done", id, fmt.Sprintf("%s status=%d err=%s", endpoint, status, err))
	writeError(w, status, err.Error())
}

// nextID mints the per-process request ID carried by trace events and
// anonymous scenario names.
func (s *Server) nextID() string {
	return fmt.Sprintf("req-%d", s.reqID.Add(1))
}

// trace emits one request-lifecycle event next to the engine's shard
// events (nil-safe like every TraceWriter call).
func (s *Server) trace(event, id, detail string) {
	s.cfg.Trace.Emit(obs.TraceEvent{Event: event, Shard: -1, Detail: id + " " + detail})
}

// endpointMetrics is one endpoint's observability handles, resolved at
// New so the request path never does registry lookups for the common
// response codes.
type endpointMetrics struct {
	name     string
	reg      *obs.Registry
	requests *obs.Counter
	latency  *obs.Histogram
	codes    map[int]*obs.Counter
}

// newEndpointMetrics resolves the endpoint's series, pre-building the
// counters for every status the handlers emit.
func newEndpointMetrics(reg *obs.Registry, name string) *endpointMetrics {
	m := &endpointMetrics{
		name: name,
		reg:  reg,
		requests: reg.NewCounter("campaignd_requests_total",
			"Requests received per endpoint, before any gate.", obs.L("endpoint", name)),
		latency: reg.NewHistogram("campaignd_request_seconds",
			"End-to-end request latency per endpoint, including queue wait and the scenario run.",
			RequestLatencyBuckets, obs.L("endpoint", name)),
		codes: make(map[int]*obs.Counter),
	}
	for _, c := range []int{200, 400, 404, 405, 408, 413, 429,
		StatusClientClosedRequest, 500, 503, 504} {
		m.codes[c] = m.codeCounter(c)
	}
	return m
}

// codeCounter resolves the responses counter for one status code.
func (m *endpointMetrics) codeCounter(c int) *obs.Counter {
	return m.reg.NewCounter("campaignd_responses_total",
		"Responses per endpoint and status code.",
		obs.L("endpoint", m.name), obs.L("code", strconv.Itoa(c)))
}

// code returns the counter for c, falling back to a registry lookup
// for codes outside the pre-resolved set (rare — net/http internals).
func (m *endpointMetrics) code(c int) *obs.Counter {
	if ctr, ok := m.codes[c]; ok {
		return ctr
	}
	return m.codeCounter(c)
}

// statusWriter captures the response status for metrics and traces.
type statusWriter struct {
	http.ResponseWriter
	status int
}

// WriteHeader records the status before delegating.
func (sw *statusWriter) WriteHeader(status int) {
	sw.status = status
	sw.ResponseWriter.WriteHeader(status)
}

// instrument wraps a handler with the per-endpoint request counter,
// in-flight gauge, drain accounting, latency histogram and response
// code counter.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	m := s.endpoints[endpoint]
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		m.requests.Inc()
		s.metInflight.Add(1)
		s.inflight.Add(1)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		s.inflight.Done()
		s.metInflight.Add(-1)
		m.latency.ObserveSince(start)
		m.code(sw.status).Inc()
	}
}
