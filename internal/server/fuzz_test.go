package server

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"github.com/actfort/actfort/internal/campaign"
)

// scenarioSeeds is the fuzz corpus: the scenario-file examples from
// cmd/campaign/README.md plus the edge shapes the decoder must rule
// on (unknown fields, trailing bytes, out-of-range probabilities).
var scenarioSeeds = []string{
	`{}`,
	`{"name": "baseline"}`,
	`{"name": "fortified", "policy": "fortify-all"}`,
	`{"name": "half-fleet", "budget": {"receivers": 8, "cellChannels": 16}, "segment": {"domain": "fintech", "leakTier": "leaked"}}`,
	`{"name": "noisy", "radio": {"a50Fraction": 0.4, "a53Fraction": -1, "reauthSkip": 0.9, "otpSessions": 5}, "platform": "web"}`,
	`{"name": "bad", "radio": {"reauthSkip": 5}}`,
	`{"name": "x"} trailing`,
	`{"nope": 1}`,
	`[{"name": "not-an-object"}]`,
	`null`,
	`{"name": "\u0000"}`,
}

// FuzzScenarioJSON fuzzes the /v1/scenario request decoder: it must
// never panic, and any input it accepts must round-trip — marshal then
// re-decode to the identical Scenario — and survive validation without
// panicking. A decoder that accepts what it cannot re-read would make
// the service's 400 surface unstable.
func FuzzScenarioJSON(f *testing.F) {
	for _, s := range scenarioSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := DecodeScenario(bytes.NewReader(data))
		if err != nil {
			return // rejected is fine; panicking is not
		}
		b, err := json.Marshal(sc)
		if err != nil {
			t.Fatalf("accepted scenario does not marshal: %v", err)
		}
		sc2, err := DecodeScenario(bytes.NewReader(b))
		if err != nil {
			t.Fatalf("accepted scenario does not re-decode: %v\n%s", err, b)
		}
		if !reflect.DeepEqual(sc, sc2) {
			t.Fatalf("round-trip changed the scenario:\n%#v\n%#v", sc, sc2)
		}
		// Validation decides accept/reject; either way, no panic. (No
		// re-normalize assertion: normalization is deliberately not
		// idempotent — the zero-value convention means a normalized "none"
		// can re-normalize into the paper default — which is exactly why
		// the server validates a copy and hands the engine the original.)
		sc.Normalized()
	})
}

// FuzzSweepRequest fuzzes the /v1/sweep request decoder with the same
// contract over scenario lists, plus the sweep-level validation
// (duplicate names, empty list).
func FuzzSweepRequest(f *testing.F) {
	f.Add([]byte(`[{"name": "baseline"}, {"name": "fortified", "policy": "fortify-all"}, {"name": "half-fleet", "budget": {"receivers": 8, "cellChannels": 16}, "segment": {"domain": "fintech", "leakTier": "leaked"}}]`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`[{}]`))
	f.Add([]byte(`[{"name":"a"},{"name":"a"}]`))
	f.Add([]byte(`[{"name":"a"}] , [{"name":"b"}]`))
	for _, s := range scenarioSeeds {
		f.Add([]byte("[" + s + "]"))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		list, err := DecodeSweep(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(list) == 0 {
			t.Fatal("decoder accepted an empty sweep")
		}
		b, err := json.Marshal(list)
		if err != nil {
			t.Fatalf("accepted sweep does not marshal: %v", err)
		}
		list2, err := DecodeSweep(bytes.NewReader(b))
		if err != nil {
			t.Fatalf("accepted sweep does not re-decode: %v\n%s", err, b)
		}
		if !reflect.DeepEqual(list, list2) {
			t.Fatalf("round-trip changed the sweep:\n%#v\n%#v", list, list2)
		}
		campaign.NormalizeSweep(list) // must not panic
	})
}
