package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"github.com/actfort/actfort/internal/campaign"
	"github.com/actfort/actfort/internal/report"
)

// DecodeScenario reads one campaign.Scenario JSON object — the
// /v1/scenario wire format. Unknown fields and trailing data are
// rejected, matching the strictness of the scenario-file loader, so a
// typoed knob fails loudly instead of silently running the default.
// Exported (with DecodeSweep) as the fuzzing surface for the request
// decoders.
func DecodeScenario(r io.Reader) (campaign.Scenario, error) {
	var sc campaign.Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return campaign.Scenario{}, fmt.Errorf("server: decode scenario: %w", err)
	}
	if err := expectEOF(dec); err != nil {
		return campaign.Scenario{}, err
	}
	return sc, nil
}

// DecodeSweep reads a JSON array of scenarios — the /v1/sweep wire
// format, identical to the scenario files cmd/campaign -scenarios
// loads, so a file that works offline works against the service
// unchanged. The list must be non-empty: an explicit request for
// nothing is a client bug, unlike the engine's nil-means-DefaultSweep
// convenience.
func DecodeSweep(r io.Reader) ([]campaign.Scenario, error) {
	var list []campaign.Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&list); err != nil {
		return nil, fmt.Errorf("server: decode sweep: %w", err)
	}
	if len(list) == 0 {
		return nil, fmt.Errorf("server: sweep request holds no scenarios")
	}
	if err := expectEOF(dec); err != nil {
		return nil, err
	}
	return list, nil
}

// expectEOF rejects bytes after the decoded value — "{}garbage" is a
// malformed request, not a scenario plus noise.
func expectEOF(dec *json.Decoder) error {
	if _, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("server: trailing data after JSON value")
	}
	return nil
}

// errorBody is the structured error envelope every non-2xx response
// carries.
type errorBody struct {
	Status int    `json:"status"`
	Error  string `json:"error"`
}

// writeError answers with the structured JSON error envelope.
func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorBody{Status: status, Error: msg})
}

// writeJSON answers 200 with v rendered by the same report.WriteJSON
// the offline CLI uses, so a service response diffs byte-for-byte
// against batch output (modulo wall-clock fields).
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	report.WriteJSON(w, v)
}
