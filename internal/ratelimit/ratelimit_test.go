package ratelimit

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock drives the limiter deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestLimiter(rate float64, burst int) (*Limiter, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := New(rate, burst)
	l.now = clk.now
	l.last = clk.now()
	return l, clk
}

func TestBurstThenReject(t *testing.T) {
	l, _ := newTestLimiter(1, 3)
	for i := 0; i < 3; i++ {
		if !l.Allow() {
			t.Fatalf("request %d rejected inside burst", i)
		}
	}
	if l.Allow() {
		t.Fatal("request beyond burst admitted with no refill")
	}
}

func TestRefillRate(t *testing.T) {
	l, clk := newTestLimiter(2, 4) // 2 tokens/s
	for i := 0; i < 4; i++ {
		l.Allow()
	}
	if l.Allow() {
		t.Fatal("bucket should be empty")
	}
	clk.advance(500 * time.Millisecond) // refills exactly 1 token
	if !l.Allow() {
		t.Fatal("refilled token not admitted")
	}
	if l.Allow() {
		t.Fatal("second request admitted off a single refilled token")
	}
	// A long idle period caps at the burst, not the elapsed total.
	clk.advance(time.Hour)
	if got := l.Tokens(); got != 4 {
		t.Fatalf("Tokens after long idle = %v, want burst cap 4", got)
	}
	admitted := 0
	for i := 0; i < 10; i++ {
		if l.Allow() {
			admitted++
		}
	}
	if admitted != 4 {
		t.Fatalf("admitted %d after refill, want burst 4", admitted)
	}
}

// TestNilUnlimited pins the nil-limiter convention the server relies
// on: no limiter configured means every request is admitted.
func TestNilUnlimited(t *testing.T) {
	var l *Limiter
	for i := 0; i < 100; i++ {
		if !l.Allow() {
			t.Fatal("nil limiter rejected a request")
		}
	}
	if New(0, 10) != nil || New(5, 0) != nil {
		t.Fatal("zero rate or burst should build the nil (unlimited) limiter")
	}
}

// TestConcurrentAllow checks the bucket never over-admits under
// concurrent callers (run under -race in CI).
func TestConcurrentAllow(t *testing.T) {
	l, _ := newTestLimiter(1, 64)
	var admitted atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if l.Allow() {
					admitted.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if got := admitted.Load(); got != 64 {
		t.Fatalf("admitted %d of 800 with frozen clock, want exactly the burst 64", got)
	}
}
