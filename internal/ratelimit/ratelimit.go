// Package ratelimit is a dependency-free token-bucket rate limiter
// for the campaign query service: a bucket of Burst tokens refilled
// continuously at Rate tokens per second. A request takes one token or
// is rejected immediately — the server turns a rejection into HTTP 429
// so overload is shed at admission instead of queueing until the
// engine drowns. Allow never blocks and never allocates; the only cost
// is one mutex and a clock read, far below the cost of the scenario
// run it gates.
package ratelimit

import (
	"sync"
	"time"
)

// Limiter is a token bucket. A nil *Limiter is a valid unlimited
// limiter (every Allow succeeds), so callers thread an optional limit
// without branching. Build with New; the zero value is not usable.
type Limiter struct {
	mu     sync.Mutex
	rate   float64 // tokens added per second
	burst  float64 // bucket capacity
	tokens float64 // current fill
	last   time.Time
	now    func() time.Time // injectable clock for tests
}

// New builds a limiter admitting rate requests per second with bursts
// of up to burst. A rate <= 0 or burst <= 0 returns nil — the
// unlimited limiter — so flag plumbing can pass "0 = off" straight
// through.
func New(rate float64, burst int) *Limiter {
	if rate <= 0 || burst <= 0 {
		return nil
	}
	l := &Limiter{rate: rate, burst: float64(burst), now: time.Now}
	l.tokens = l.burst
	l.last = l.now()
	return l
}

// Allow takes one token if the bucket has one, reporting whether the
// request is admitted. Nil-safe: a nil limiter admits everything.
func (l *Limiter) Allow() bool {
	if l == nil {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	// Refill for the elapsed interval, capped at the bucket size. A
	// non-monotonic clock step just skips the refill for one call.
	if el := now.Sub(l.last).Seconds(); el > 0 {
		l.tokens += el * l.rate
		if l.tokens > l.burst {
			l.tokens = l.burst
		}
	}
	l.last = now
	if l.tokens < 1 {
		return false
	}
	l.tokens--
	return true
}

// Tokens reports the current bucket fill (refilled to now) — a
// diagnostics read for gauges and tests, not an admission check.
func (l *Limiter) Tokens() float64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	if el := now.Sub(l.last).Seconds(); el > 0 {
		l.tokens += el * l.rate
		if l.tokens > l.burst {
			l.tokens = l.burst
		}
		l.last = now
	}
	return l.tokens
}
