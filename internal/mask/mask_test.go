package mask

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/actfort/actfort/internal/ecosys"
)

func spec(pre, suf int) ecosys.MaskSpec {
	return ecosys.MaskSpec{Masked: true, VisiblePrefix: pre, VisibleSuffix: suf}
}

func TestApply(t *testing.T) {
	cases := []struct {
		value string
		spec  ecosys.MaskSpec
		want  string
	}{
		{"123456789012345678", ecosys.Unmasked, "123456789012345678"},
		{"123456789012345678", spec(6, 4), "123456********5678"},
		{"123456789012345678", spec(0, 4), "**************5678"},
		{"1234", spec(2, 2), "1234"},  // nothing left to hide
		{"1234", spec(3, 3), "1234"},  // overlap
		{"1234", spec(-1, 1), "***4"}, // negative clamped
		{"", spec(1, 1), ""},
	}
	for _, c := range cases {
		if got := Apply(c.value, c.spec); got != c.want {
			t.Errorf("Apply(%q,%+v) = %q want %q", c.value, c.spec, got, c.want)
		}
	}
}

func TestRevealedMatchesApply(t *testing.T) {
	f := func(seed int64, pre, suf uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		digits := make([]byte, n)
		for i := range digits {
			digits[i] = byte('0' + r.Intn(10))
		}
		s := spec(int(pre%12), int(suf%12))
		masked := Apply(string(digits), s)
		visible := 0
		for i := 0; i < len(masked); i++ {
			if masked[i] != MaskChar {
				visible++
			}
		}
		return visible == Revealed(n, s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCombineRecovery(t *testing.T) {
	secret := "330106198811230417"
	// Three services with inconsistent masks whose windows jointly
	// cover all 18 positions (the §IV.B.2 combining scenario).
	v1 := Apply(secret, spec(6, 0))
	v2 := Apply(secret, spec(0, 6))
	v3 := Apply(secret, spec(12, 0))

	merged, known, err := Combine(v1, v2, v3)
	if err != nil {
		t.Fatal(err)
	}
	if merged != secret {
		t.Fatalf("Combine = %q want %q", merged, secret)
	}
	if known != len(secret) {
		t.Fatalf("known = %d want %d", known, len(secret))
	}
	if !FullyRecovered(merged) {
		t.Error("FullyRecovered = false for complete merge")
	}
}

func TestCombinePartial(t *testing.T) {
	secret := "6212345678901234"
	v1 := Apply(secret, spec(0, 4))
	v2 := Apply(secret, spec(4, 0))
	merged, known, err := Combine(v1, v2)
	if err != nil {
		t.Fatal(err)
	}
	if known != 8 {
		t.Fatalf("known = %d want 8", known)
	}
	if FullyRecovered(merged) {
		t.Error("partial merge reported as fully recovered")
	}
	if got, ok := Complete(v1, v2); ok {
		t.Errorf("Complete on partial views reported success: %q", got)
	}
}

func TestCombineConflict(t *testing.T) {
	_, _, err := Combine("12**", "13**")
	if err != ErrConflict {
		t.Fatalf("err = %v want ErrConflict", err)
	}
}

func TestCombineLengthMismatch(t *testing.T) {
	_, _, err := Combine("12**", "12***")
	if err != ErrLengthMismatch {
		t.Fatalf("err = %v want ErrLengthMismatch", err)
	}
}

func TestCombineEmpty(t *testing.T) {
	if _, _, err := Combine(); err == nil {
		t.Fatal("Combine() with no views must error")
	}
}

// Property: combining views produced by masking the same secret never
// conflicts and recovers exactly the union of the visible windows.
func TestCombineUnionProperty(t *testing.T) {
	f := func(seed int64, p1, s1, p2, s2 uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 8 + r.Intn(12)
		digits := make([]byte, n)
		for i := range digits {
			digits[i] = byte('0' + r.Intn(10))
		}
		secret := string(digits)
		sp1 := spec(int(p1%10), int(s1%10))
		sp2 := spec(int(p2%10), int(s2%10))
		merged, known, err := Combine(Apply(secret, sp1), Apply(secret, sp2))
		if err != nil {
			return false
		}
		// Every revealed char must match the secret.
		for i := 0; i < n; i++ {
			if merged[i] != MaskChar && merged[i] != secret[i] {
				return false
			}
		}
		// Known is at least the max of the two windows.
		r1, r2 := Revealed(n, sp1), Revealed(n, sp2)
		maxR := r1
		if r2 > maxR {
			maxR = r2
		}
		return known >= maxR
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The countermeasure property: under a unified standard, any number of
// views reveals no more than one view does.
func TestUnifiedStandardBlocksCombining(t *testing.T) {
	std := DefaultUnifiedStandard()
	secret := "330106198811230417"
	views := []string{
		Apply(secret, std.CitizenID),
		Apply(secret, std.CitizenID),
		Apply(secret, std.CitizenID),
	}
	merged, known, err := Combine(views...)
	if err != nil {
		t.Fatal(err)
	}
	if known != Revealed(len(secret), std.CitizenID) {
		t.Fatalf("unified masking leaked extra positions: known=%d want %d",
			known, Revealed(len(secret), std.CitizenID))
	}
	if FullyRecovered(merged) {
		t.Fatal("unified masking must not allow full recovery")
	}
}

func TestUnifiedStandardSpecFor(t *testing.T) {
	std := DefaultUnifiedStandard()
	if _, ok := std.SpecFor(ecosys.InfoCitizenID); !ok {
		t.Error("standard must govern citizen IDs")
	}
	if _, ok := std.SpecFor(ecosys.InfoBankcard); !ok {
		t.Error("standard must govern bankcards")
	}
	if std.Governs(ecosys.InfoRealName) {
		t.Error("standard must not govern real names")
	}
	if !strings.Contains(Apply("6212345678901234", std.Bankcard), "1234") {
		t.Error("bankcard standard should show last four digits")
	}
}

func BenchmarkApply(b *testing.B) {
	s := spec(6, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Apply("330106198811230417", s)
	}
}

func BenchmarkCombine(b *testing.B) {
	secret := "330106198811230417"
	v1 := Apply(secret, spec(6, 0))
	v2 := Apply(secret, spec(0, 6))
	v3 := Apply(secret, spec(10, 4))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _, _ = Combine(v1, v2, v3)
	}
}
