// Package mask implements sensitive-string masking as displayed on
// profile pages, and the cross-service combining attack the paper
// demonstrates against inconsistently masked citizen IDs and bankcard
// numbers (§IV.B.2, insight 4: "There is no unified rule for sensitive
// information protection").
//
// Each service shows a different window of the same underlying value;
// an attacker who compromises several services merges the windows and
// can often reconstruct the full value. The proposed countermeasure —
// a unified masking standard — makes every service reveal the same
// window, so merging adds nothing.
package mask

import (
	"errors"
	"strings"

	"github.com/actfort/actfort/internal/ecosys"
)

// MaskChar is the character substituted for hidden positions.
const MaskChar = '*'

// Apply renders value under spec. Unmasked specs return the value
// verbatim. If the visible prefix and suffix overlap (value shorter
// than their sum), the whole value is shown: there is nothing left to
// hide.
func Apply(value string, spec ecosys.MaskSpec) string {
	if !spec.Masked {
		return value
	}
	n := len(value)
	pre, suf := spec.VisiblePrefix, spec.VisibleSuffix
	if pre < 0 {
		pre = 0
	}
	if suf < 0 {
		suf = 0
	}
	if pre+suf >= n {
		return value
	}
	var b strings.Builder
	b.Grow(n)
	b.WriteString(value[:pre])
	for i := pre; i < n-suf; i++ {
		b.WriteByte(MaskChar)
	}
	b.WriteString(value[n-suf:])
	return b.String()
}

// Revealed returns the number of visible characters Apply would leave
// for a value of length n.
func Revealed(n int, spec ecosys.MaskSpec) int {
	if !spec.Masked {
		return n
	}
	pre, suf := spec.VisiblePrefix, spec.VisibleSuffix
	if pre < 0 {
		pre = 0
	}
	if suf < 0 {
		suf = 0
	}
	if pre+suf >= n {
		return n
	}
	return pre + suf
}

// ErrConflict reports that two masked views disagree on a visible
// position — they cannot belong to the same underlying value.
var ErrConflict = errors.New("mask: views conflict on a visible position")

// ErrLengthMismatch reports views of different lengths.
var ErrLengthMismatch = errors.New("mask: views have different lengths")

// Combine merges multiple masked views of the same value (the
// combining attack). It returns the merged view, with MaskChar in
// positions no view revealed, plus the count of recovered positions.
//
// Views must have equal length; conflicting visible characters return
// ErrConflict (the attacker mixed up victims).
func Combine(views ...string) (merged string, known int, err error) {
	if len(views) == 0 {
		return "", 0, errors.New("mask: no views to combine")
	}
	n := len(views[0])
	out := make([]byte, n)
	for i := range out {
		out[i] = MaskChar
	}
	for _, v := range views {
		if len(v) != n {
			return "", 0, ErrLengthMismatch
		}
		for i := 0; i < n; i++ {
			c := v[i]
			if c == MaskChar {
				continue
			}
			if out[i] != MaskChar && out[i] != c {
				return "", 0, ErrConflict
			}
			out[i] = c
		}
	}
	for _, c := range out {
		if c != MaskChar {
			known++
		}
	}
	return string(out), known, nil
}

// FullyRecovered reports whether a merged view has no hidden positions
// left.
func FullyRecovered(merged string) bool {
	return !strings.ContainsRune(merged, MaskChar)
}

// Complete returns the recovered value and true when the combined
// views reveal every position; otherwise it returns the partial merge
// and false.
func Complete(views ...string) (string, bool) {
	merged, _, err := Combine(views...)
	if err != nil {
		return "", false
	}
	return merged, FullyRecovered(merged)
}

// UnifiedStandard is the paper's proposed countermeasure: one fixed
// mask window for each sensitive field, applied uniformly by every
// service. Combining any number of standard-masked views of the same
// value reveals exactly the standard window and nothing more.
type UnifiedStandard struct {
	// CitizenID is the mandated mask for citizen IDs.
	CitizenID ecosys.MaskSpec
	// Bankcard is the mandated mask for bankcard numbers.
	Bankcard ecosys.MaskSpec
}

// DefaultUnifiedStandard mirrors common regulatory practice: citizen
// IDs show only the first character and last one; bankcards show the
// last four digits.
func DefaultUnifiedStandard() UnifiedStandard {
	return UnifiedStandard{
		CitizenID: ecosys.MaskSpec{Masked: true, VisiblePrefix: 1, VisibleSuffix: 1},
		Bankcard:  ecosys.MaskSpec{Masked: true, VisibleSuffix: 4},
	}
}

// SpecFor returns the mandated mask for field f, and ok=false when the
// standard does not govern that field.
func (u UnifiedStandard) SpecFor(f ecosys.InfoField) (ecosys.MaskSpec, bool) {
	switch f {
	case ecosys.InfoCitizenID:
		return u.CitizenID, true
	case ecosys.InfoBankcard:
		return u.Bankcard, true
	}
	return ecosys.MaskSpec{}, false
}

// Governs reports whether the standard mandates a mask for field f.
func (u UnifiedStandard) Governs(f ecosys.InfoField) bool {
	_, ok := u.SpecFor(f)
	return ok
}
