package ecosys

// InfoField enumerates the personal-information fields an account may
// expose on its post-login user interface (the rows of the paper's
// Table I, plus the historical-record artifacts used in §IV.B.1).
type InfoField int

const (
	// InfoRealName is the user's legal name.
	InfoRealName InfoField = iota + 1
	// InfoCitizenID is the citizen/SSN number (possibly masked).
	InfoCitizenID
	// InfoCellphone is the bound phone number (possibly masked).
	InfoCellphone
	// InfoEmailAddress is the bound email address.
	InfoEmailAddress
	// InfoAddress is the street/delivery address.
	InfoAddress
	// InfoUserID is the platform username.
	InfoUserID
	// InfoBindingAccount names linked third-party accounts (SSO).
	InfoBindingAccount
	// InfoAcquaintance exposes friend/family names.
	InfoAcquaintance
	// InfoDeviceType exposes the login device model.
	InfoDeviceType
	// InfoBankcard is the bound bankcard number (always masked in
	// practice; masks differ per service, which the combining attack
	// of §IV.B.2 exploits).
	InfoBankcard
	// InfoStudentID is a student number (education services).
	InfoStudentID
	// InfoPhotos represents cloud-stored photo backups, which the
	// paper notes often include citizen-ID scans.
	InfoPhotos
	// InfoOrderHistory is shopping/booking history.
	InfoOrderHistory
	// InfoChatHistory is message history.
	InfoChatHistory

	infoFieldCount = int(InfoChatHistory)
)

var infoNames = map[InfoField]string{
	InfoRealName:       "real-name",
	InfoCitizenID:      "citizen-id",
	InfoCellphone:      "cellphone-number",
	InfoEmailAddress:   "email-address",
	InfoAddress:        "address",
	InfoUserID:         "user-id",
	InfoBindingAccount: "binding-account",
	InfoAcquaintance:   "acquaintance-info",
	InfoDeviceType:     "device-type",
	InfoBankcard:       "bankcard-number",
	InfoStudentID:      "student-id",
	InfoPhotos:         "photos",
	InfoOrderHistory:   "order-history",
	InfoChatHistory:    "chat-history",
}

// String returns the lowercase field name.
func (f InfoField) String() string {
	if s, ok := infoNames[f]; ok {
		return s
	}
	return "info(?)"
}

// Valid reports whether f is a defined info field.
func (f InfoField) Valid() bool {
	return f >= InfoRealName && int(f) <= infoFieldCount
}

// AllInfoFields returns every defined field in declaration order.
func AllInfoFields() []InfoField {
	out := make([]InfoField, 0, infoFieldCount)
	for f := InfoRealName; int(f) <= infoFieldCount; f++ {
		out = append(out, f)
	}
	return out
}

// InfoCategory is the paper's five-way classification of personal
// information (§III.C).
type InfoCategory int

const (
	// CategoryIdentity covers legal identity data.
	CategoryIdentity InfoCategory = iota + 1
	// CategoryAccount covers account coordinates and bindings.
	CategoryAccount
	// CategoryRelationship covers social-relationship data.
	CategoryRelationship
	// CategoryProperty covers financial property data.
	CategoryProperty
	// CategoryHistorical covers activity records.
	CategoryHistorical
)

// String returns the category name.
func (c InfoCategory) String() string {
	switch c {
	case CategoryIdentity:
		return "identity"
	case CategoryAccount:
		return "account"
	case CategoryRelationship:
		return "relationship"
	case CategoryProperty:
		return "property"
	case CategoryHistorical:
		return "historical"
	}
	return "category(?)"
}

// Category classifies the field per §III.C.
func (f InfoField) Category() InfoCategory {
	switch f {
	case InfoRealName, InfoCitizenID, InfoAddress, InfoStudentID:
		return CategoryIdentity
	case InfoCellphone, InfoEmailAddress, InfoUserID, InfoBindingAccount, InfoDeviceType:
		return CategoryAccount
	case InfoAcquaintance:
		return CategoryRelationship
	case InfoBankcard:
		return CategoryProperty
	case InfoPhotos, InfoOrderHistory, InfoChatHistory:
		return CategoryHistorical
	}
	return 0
}

// Factor returns the credential factor an attacker can supply after
// learning this field — the reciprocal transformation at the heart of
// the Chain Reaction Attack. ok is false for fields with no direct
// credential use: order/chat history, and binding-account lists
// (knowing which accounts are linked is reconnaissance — control of a
// linked account is modeled separately via Presence.BoundTo).
func (f InfoField) Factor() (k FactorKind, ok bool) {
	switch f {
	case InfoRealName:
		return FactorRealName, true
	case InfoCitizenID:
		return FactorCitizenID, true
	case InfoCellphone:
		return FactorCellphone, true
	case InfoEmailAddress:
		return FactorEmailAddress, true
	case InfoAddress:
		return FactorAddress, true
	case InfoUserID:
		return FactorUserID, true
	case InfoAcquaintance:
		return FactorAcquaintance, true
	case InfoDeviceType:
		return FactorDeviceType, true
	case InfoBankcard:
		return FactorBankcard, true
	case InfoStudentID:
		return FactorStudentID, true
	case InfoPhotos:
		// Cloud photo backups frequently contain citizen-ID scans
		// (§IV.B.1); we model the optimistic attacker outcome.
		return FactorCitizenID, true
	}
	return 0, false
}

// InfoSet is a set of personal-information fields.
type InfoSet map[InfoField]bool

// NewInfoSet builds a set from the given fields.
func NewInfoSet(fields ...InfoField) InfoSet {
	s := make(InfoSet, len(fields))
	for _, f := range fields {
		s[f] = true
	}
	return s
}

// Has reports membership.
func (s InfoSet) Has(f InfoField) bool { return s[f] }

// Clone returns an independent copy.
func (s InfoSet) Clone() InfoSet {
	out := make(InfoSet, len(s))
	for f, v := range s {
		if v {
			out[f] = true
		}
	}
	return out
}

// Add inserts f and returns s for chaining.
func (s InfoSet) Add(f InfoField) InfoSet {
	s[f] = true
	return s
}

// Union merges other into a new set.
func (s InfoSet) Union(other InfoSet) InfoSet {
	out := s.Clone()
	for f, v := range other {
		if v {
			out[f] = true
		}
	}
	return out
}

// Len returns the number of members.
func (s InfoSet) Len() int {
	n := 0
	for _, v := range s {
		if v {
			n++
		}
	}
	return n
}

// Sorted returns members in declaration order.
func (s InfoSet) Sorted() []InfoField {
	out := make([]InfoField, 0, len(s))
	for _, f := range AllInfoFields() {
		if s[f] {
			out = append(out, f)
		}
	}
	return out
}

// Factors converts the set of known information into the set of
// credential factors it can supply.
func (s InfoSet) Factors() FactorSet {
	out := make(FactorSet)
	for f, v := range s {
		if !v {
			continue
		}
		if k, ok := f.Factor(); ok {
			out[k] = true
		}
	}
	return out
}
