package ecosys

import (
	"testing"
	"testing/quick"
)

func TestFactorKindStrings(t *testing.T) {
	for _, k := range AllFactorKinds() {
		if !k.Valid() {
			t.Errorf("AllFactorKinds returned invalid kind %d", k)
		}
		if k.String() == "factor(?)" {
			t.Errorf("factor %d has no name", k)
		}
		if k.Short() == "?" {
			t.Errorf("factor %d has no short code", k)
		}
	}
	if FactorKind(0).Valid() {
		t.Error("zero FactorKind must be invalid")
	}
	if FactorKind(999).String() != "factor(?)" {
		t.Error("unknown factor should stringify to factor(?)")
	}
}

func TestInfoFieldStringsAndCategories(t *testing.T) {
	for _, f := range AllInfoFields() {
		if !f.Valid() {
			t.Errorf("AllInfoFields returned invalid field %d", f)
		}
		if f.String() == "info(?)" {
			t.Errorf("field %d has no name", f)
		}
		if f.Category() == 0 {
			t.Errorf("field %v has no category", f)
		}
	}
	if InfoField(0).Valid() {
		t.Error("zero InfoField must be invalid")
	}
}

func TestInfoFactorTransformation(t *testing.T) {
	cases := []struct {
		field InfoField
		want  FactorKind
	}{
		{InfoRealName, FactorRealName},
		{InfoCitizenID, FactorCitizenID},
		{InfoCellphone, FactorCellphone},
		{InfoEmailAddress, FactorEmailAddress},
		{InfoBankcard, FactorBankcard},
		{InfoPhotos, FactorCitizenID}, // cloud backups leak ID scans
	}
	for _, c := range cases {
		got, ok := c.field.Factor()
		if !ok || got != c.want {
			t.Errorf("%v.Factor() = %v,%v want %v,true", c.field, got, ok, c.want)
		}
	}
	if _, ok := InfoOrderHistory.Factor(); ok {
		t.Error("order history should not yield a credential factor")
	}
	if _, ok := InfoChatHistory.Factor(); ok {
		t.Error("chat history should not yield a credential factor")
	}
	if _, ok := InfoBindingAccount.Factor(); ok {
		t.Error("binding-account list is recon, not a credential factor")
	}
}

func TestFactorSetOperations(t *testing.T) {
	s := NewFactorSet(FactorSMSCode, FactorCellphone)
	if !s.Has(FactorSMSCode) || s.Has(FactorPassword) {
		t.Fatal("membership wrong after NewFactorSet")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d want 2", s.Len())
	}
	clone := s.Clone()
	clone.Add(FactorPassword)
	if s.Has(FactorPassword) {
		t.Error("Clone is not independent of the original")
	}
	u := s.Union(NewFactorSet(FactorEmailCode))
	if !u.Has(FactorEmailCode) || !u.Has(FactorSMSCode) {
		t.Error("Union missing members")
	}
	if s.Has(FactorEmailCode) {
		t.Error("Union mutated receiver")
	}
	if !u.Contains(s) {
		t.Error("superset must Contain subset")
	}
	if s.Contains(u) {
		t.Error("subset must not Contain superset")
	}
	order := u.Sorted()
	for i := 1; i < len(order); i++ {
		if order[i-1] >= order[i] {
			t.Errorf("Sorted out of order: %v", order)
		}
	}
}

func TestInfoSetFactors(t *testing.T) {
	s := NewInfoSet(InfoRealName, InfoOrderHistory, InfoCellphone)
	f := s.Factors()
	if !f.Has(FactorRealName) || !f.Has(FactorCellphone) {
		t.Errorf("Factors() missing transformations: %v", f.Sorted())
	}
	if f.Len() != 2 {
		t.Errorf("Factors() = %v, want exactly 2 factors", f.Sorted())
	}
}

func TestAuthPathClass(t *testing.T) {
	cases := []struct {
		path AuthPath
		want PathClass
	}{
		{AuthPath{Factors: []FactorKind{FactorCellphone, FactorSMSCode}}, ClassGeneral},
		{AuthPath{Factors: []FactorKind{FactorPassword}}, ClassGeneral},
		{AuthPath{Factors: []FactorKind{FactorSMSCode, FactorCitizenID}}, ClassInfo},
		{AuthPath{Factors: []FactorKind{FactorRealName, FactorBankcard}}, ClassInfo},
		{AuthPath{Factors: []FactorKind{FactorBiometric}}, ClassUnique},
		{AuthPath{Factors: []FactorKind{FactorCitizenID, FactorU2F}}, ClassUnique},
	}
	for _, c := range cases {
		if got := c.path.Class(); got != c.want {
			t.Errorf("%v.Class() = %v want %v", c.path, got, c.want)
		}
	}
}

func TestAuthPathSMSOnly(t *testing.T) {
	yes := []AuthPath{
		{Factors: []FactorKind{FactorSMSCode}},
		{Factors: []FactorKind{FactorCellphone, FactorSMSCode}},
	}
	no := []AuthPath{
		{Factors: nil},
		{Factors: []FactorKind{FactorCellphone}}, // phone alone is not auth
		{Factors: []FactorKind{FactorSMSCode, FactorCitizenID}},
		{Factors: []FactorKind{FactorPassword}},
	}
	for _, p := range yes {
		if !p.SMSOnly() {
			t.Errorf("%v should be SMS-only", p)
		}
	}
	for _, p := range no {
		if p.SMSOnly() {
			t.Errorf("%v should not be SMS-only", p)
		}
	}
}

func TestPresenceQueries(t *testing.T) {
	pr := Presence{
		Platform: PlatformWeb,
		Paths: []AuthPath{
			{ID: "login-1", Purpose: PurposeSignIn, Factors: []FactorKind{FactorPassword}},
			{ID: "reset-1", Purpose: PurposeReset, Factors: []FactorKind{FactorCellphone, FactorSMSCode}},
			{ID: "pay-1", Purpose: PurposePaymentReset, Factors: []FactorKind{FactorBankcard}},
		},
		Exposes: []Exposure{
			{Field: InfoRealName},
			{Field: InfoBankcard, Mask: MaskSpec{Masked: true, VisibleSuffix: 4}},
		},
	}
	if got := len(pr.PathsFor(PurposeReset)); got != 1 {
		t.Errorf("PathsFor(reset) = %d paths, want 1", got)
	}
	if got := len(pr.TakeoverPaths()); got != 2 {
		t.Errorf("TakeoverPaths = %d, want 2 (payment reset excluded)", got)
	}
	if !pr.HasSMSOnlyPath() {
		t.Error("presence with PN+SC reset must have SMS-only path")
	}
	fields := pr.ExposedFields()
	if !fields.Has(InfoRealName) || !fields.Has(InfoBankcard) {
		t.Error("ExposedFields missing entries")
	}
	e, ok := pr.Exposure(InfoBankcard)
	if !ok || !e.Mask.Masked || e.Mask.VisibleSuffix != 4 {
		t.Errorf("Exposure(bankcard) = %+v, %v", e, ok)
	}
	if _, ok := pr.Exposure(InfoCitizenID); ok {
		t.Error("Exposure should miss for unexposed field")
	}
}

func TestCatalogConstruction(t *testing.T) {
	specs := []*ServiceSpec{
		{Name: "a", Domain: DomainEmail, Presences: []Presence{{Platform: PlatformWeb}}},
		{Name: "b", Domain: DomainFintech, Presences: []Presence{
			{Platform: PlatformWeb}, {Platform: PlatformMobile},
		}},
	}
	c, err := NewCatalog(specs)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	if c.CountPlatform(PlatformWeb) != 2 || c.CountPlatform(PlatformMobile) != 1 {
		t.Errorf("platform counts wrong: web=%d mobile=%d",
			c.CountPlatform(PlatformWeb), c.CountPlatform(PlatformMobile))
	}
	if got := len(c.Accounts()); got != 3 {
		t.Errorf("Accounts = %d, want 3", got)
	}
	if _, ok := c.ByName("a"); !ok {
		t.Error("ByName(a) missed")
	}
	if _, ok := c.PresenceOf(AccountID{Service: "b", Platform: PlatformMobile}); !ok {
		t.Error("PresenceOf(b/mobile) missed")
	}
	if _, ok := c.PresenceOf(AccountID{Service: "zzz", Platform: PlatformWeb}); ok {
		t.Error("PresenceOf unknown service should miss")
	}
}

func TestCatalogRejectsDuplicatesAndNil(t *testing.T) {
	if _, err := NewCatalog([]*ServiceSpec{{Name: "x"}, {Name: "x"}}); err == nil {
		t.Error("duplicate names accepted")
	}
	if _, err := NewCatalog([]*ServiceSpec{nil}); err == nil {
		t.Error("nil spec accepted")
	}
	if _, err := NewCatalog([]*ServiceSpec{{Name: ""}}); err == nil {
		t.Error("empty name accepted")
	}
}

func TestAttackerProfile(t *testing.T) {
	ap := BaselineAttacker()
	smsPath := AuthPath{Purpose: PurposeReset, Factors: []FactorKind{FactorCellphone, FactorSMSCode}}
	idPath := AuthPath{Purpose: PurposeReset, Factors: []FactorKind{FactorSMSCode, FactorCitizenID}}
	if !ap.CanSatisfy(smsPath) {
		t.Error("baseline attacker must satisfy PN+SC")
	}
	if ap.CanSatisfy(idPath) {
		t.Error("baseline attacker must not satisfy SC+CID")
	}
	ap.KnownInfo.Add(InfoCitizenID)
	if !ap.CanSatisfy(idPath) {
		t.Error("attacker with citizen ID must satisfy SC+CID")
	}
	clone := ap.Clone()
	clone.KnownInfo.Add(InfoBankcard)
	if ap.KnownInfo.Has(InfoBankcard) {
		t.Error("Clone is not independent")
	}
}

// Property: Union is commutative and monotone wrt Contains.
func TestFactorSetUnionProperties(t *testing.T) {
	mk := func(bits uint32) FactorSet {
		s := make(FactorSet)
		for _, k := range AllFactorKinds() {
			if bits&(1<<uint(int(k)%31)) != 0 {
				s[k] = true
			}
		}
		return s
	}
	f := func(a, b uint32) bool {
		sa, sb := mk(a), mk(b)
		u1, u2 := sa.Union(sb), sb.Union(sa)
		if u1.Len() != u2.Len() || !u1.Contains(u2) || !u2.Contains(u1) {
			return false
		}
		return u1.Contains(sa) && u1.Contains(sb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringers(t *testing.T) {
	if PlatformWeb.String() != "web" || PlatformMobile.String() != "mobile" {
		t.Error("Platform strings wrong")
	}
	if Platform(9).String() != "platform(?)" {
		t.Error("unknown platform string")
	}
	for _, d := range AllDomains() {
		if d.String() == "domain(?)" {
			t.Errorf("domain %d unnamed", d)
		}
	}
	id := AccountID{Service: "gmail", Platform: PlatformWeb}
	if id.String() != "gmail/web" {
		t.Errorf("AccountID.String = %q", id.String())
	}
	p := AuthPath{Purpose: PurposeReset, Factors: []FactorKind{FactorCellphone, FactorSMSCode}}
	if p.String() != "password-reset{PN+SC}" {
		t.Errorf("AuthPath.String = %q", p.String())
	}
	for _, pp := range []PathPurpose{PurposeSignIn, PurposeReset, PurposePaymentReset} {
		if pp.String() == "purpose(?)" {
			t.Errorf("purpose %d unnamed", pp)
		}
	}
	for _, pc := range []PathClass{ClassGeneral, ClassInfo, ClassUnique} {
		if pc.String() == "class(?)" {
			t.Errorf("class %d unnamed", pc)
		}
	}
	for _, sm := range []SignupMethod{SignupUsername, SignupEmail, SignupPhone, SignupLinked} {
		if sm.String() == "signup(?)" {
			t.Errorf("signup method %d unnamed", sm)
		}
	}
	for _, cat := range []InfoCategory{CategoryIdentity, CategoryAccount, CategoryRelationship, CategoryProperty, CategoryHistorical} {
		if cat.String() == "category(?)" {
			t.Errorf("category %d unnamed", cat)
		}
	}
}
