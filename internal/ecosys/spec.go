package ecosys

import (
	"fmt"
	"sort"

	"github.com/actfort/actfort/internal/intern"
)

// Platform distinguishes a service's web client from its mobile app.
// The paper measures both separately because their authentication
// policies are frequently asymmetric (§IV.B.2, insight 2).
type Platform int

const (
	// PlatformWeb is the browser client.
	PlatformWeb Platform = iota + 1
	// PlatformMobile is the mobile application.
	PlatformMobile
)

// String returns "web" or "mobile".
func (p Platform) String() string {
	switch p {
	case PlatformWeb:
		return "web"
	case PlatformMobile:
		return "mobile"
	}
	return "platform(?)"
}

// AllPlatforms lists both platforms in a stable order.
func AllPlatforms() []Platform { return []Platform{PlatformWeb, PlatformMobile} }

// Domain is the service category used to split the measurement
// (§IV.A: "Fintech, Email, Social Network, etc.").
type Domain int

const (
	// DomainFintech covers payment and banking services.
	DomainFintech Domain = iota + 1
	// DomainEmail covers mail providers.
	DomainEmail
	// DomainSocial covers social networks and messaging.
	DomainSocial
	// DomainECommerce covers shopping and retail.
	DomainECommerce
	// DomainTravel covers travel agencies, rail and lodging.
	DomainTravel
	// DomainCloud covers cloud storage.
	DomainCloud
	// DomainNews covers news and portals.
	DomainNews
	// DomainEducation covers education platforms.
	DomainEducation
	// DomainGaming covers game platforms.
	DomainGaming
	// DomainHealth covers health services.
	DomainHealth
	// DomainStreaming covers video/music streaming.
	DomainStreaming
	// DomainLifestyle covers food delivery, ride hailing and other
	// local life services.
	DomainLifestyle

	domainCount = int(DomainLifestyle)
)

var domainNames = map[Domain]string{
	DomainFintech:   "fintech",
	DomainEmail:     "email",
	DomainSocial:    "social",
	DomainECommerce: "e-commerce",
	DomainTravel:    "travel",
	DomainCloud:     "cloud",
	DomainNews:      "news",
	DomainEducation: "education",
	DomainGaming:    "gaming",
	DomainHealth:    "health",
	DomainStreaming: "streaming",
	DomainLifestyle: "lifestyle",
}

// String returns the lowercase domain name.
func (d Domain) String() string {
	if s, ok := domainNames[d]; ok {
		return s
	}
	return "domain(?)"
}

// AllDomains returns every domain in declaration order.
func AllDomains() []Domain {
	out := make([]Domain, 0, domainCount)
	for d := DomainFintech; int(d) <= domainCount; d++ {
		out = append(out, d)
	}
	return out
}

// SignupMethod is how an account can be created (§III.B).
type SignupMethod int

const (
	// SignupUsername registers with a chosen username + password.
	SignupUsername SignupMethod = iota + 1
	// SignupEmail registers with an email address.
	SignupEmail
	// SignupPhone registers with a cellphone number.
	SignupPhone
	// SignupLinked registers through a third-party account (SSO).
	SignupLinked
)

// String names the signup method.
func (m SignupMethod) String() string {
	switch m {
	case SignupUsername:
		return "username"
	case SignupEmail:
		return "email"
	case SignupPhone:
		return "phone"
	case SignupLinked:
		return "linked"
	}
	return "signup(?)"
}

// PathPurpose is what a successful authentication path grants.
type PathPurpose int

const (
	// PurposeSignIn is an ordinary login.
	PurposeSignIn PathPurpose = iota + 1
	// PurposeReset is a password reset, which yields login.
	PurposeReset
	// PurposePaymentReset resets the payment PIN (Fintech; the Alipay
	// case study resets both the login and the payment code).
	PurposePaymentReset
)

// String names the purpose.
func (p PathPurpose) String() string {
	switch p {
	case PurposeSignIn:
		return "sign-in"
	case PurposeReset:
		return "password-reset"
	case PurposePaymentReset:
		return "payment-reset"
	}
	return "purpose(?)"
}

// PathClass is the paper's three-way taxonomy of authentication paths
// (§IV.B.1): general paths use basic factors, info paths demand
// identity information, unique paths demand unphishable factors.
type PathClass int

const (
	// ClassGeneral uses only basic factors (password, codes, phone,
	// email).
	ClassGeneral PathClass = iota + 1
	// ClassInfo requires identity information such as real name or
	// citizen ID.
	ClassInfo
	// ClassUnique requires biometrics, U2F or other unphishable
	// factors.
	ClassUnique
)

// String names the class.
func (c PathClass) String() string {
	switch c {
	case ClassGeneral:
		return "general"
	case ClassInfo:
		return "info"
	case ClassUnique:
		return "unique"
	}
	return "class(?)"
}

// AuthPath is one authentication path: a conjunction of credential
// factors that, supplied together, achieves Purpose.
type AuthPath struct {
	// ID is unique within a presence, e.g. "reset-1".
	ID string
	// Purpose is what success grants.
	Purpose PathPurpose
	// Factors are ALL required (conjunction). Alternatives are
	// modeled as separate paths.
	Factors []FactorKind
}

// FactorSet returns the required factors as a set.
func (p AuthPath) FactorSet() FactorSet { return NewFactorSet(p.Factors...) }

// Requires reports whether the path demands factor k.
func (p AuthPath) Requires(k FactorKind) bool {
	for _, f := range p.Factors {
		if f == k {
			return true
		}
	}
	return false
}

// Class classifies the path per §IV.B.1: unique dominates info,
// which dominates general.
func (p AuthPath) Class() PathClass {
	class := ClassGeneral
	for _, f := range p.Factors {
		if f.Unphishable() {
			return ClassUnique
		}
		if f.IdentityLike() {
			class = ClassInfo
		}
	}
	return class
}

// SMSOnly reports whether the path is satisfiable with nothing beyond
// the base attacker profile: the victim's cellphone number and an
// intercepted SMS code. These are the paper's red "fringe" nodes.
func (p AuthPath) SMSOnly() bool {
	if len(p.Factors) == 0 {
		return false
	}
	hasSMS := false
	for _, f := range p.Factors {
		switch f {
		case FactorSMSCode:
			hasSMS = true
		case FactorCellphone:
			// free with the attacker profile
		default:
			return false
		}
	}
	return hasSMS
}

// String renders like "password-reset{PN+SC}".
func (p AuthPath) String() string {
	s := p.Purpose.String() + "{"
	for i, f := range p.Factors {
		if i > 0 {
			s += "+"
		}
		s += f.Short()
	}
	return s + "}"
}

// MaskSpec describes which characters of a digit-string field remain
// visible on the profile page. The zero value means unmasked.
// Different services masking different positions is exactly the
// inconsistency the combining attack of §IV.B.2 exploits.
type MaskSpec struct {
	// VisiblePrefix is the count of leading characters shown.
	VisiblePrefix int
	// VisibleSuffix is the count of trailing characters shown.
	VisibleSuffix int
	// Masked indicates the field is masked at all; when false the
	// whole value is shown regardless of the prefix/suffix counts.
	Masked bool
}

// Unmasked is the zero MaskSpec, shown in full.
var Unmasked = MaskSpec{}

// Exposure records that a presence displays Field on its post-login
// user interface, under Mask.
type Exposure struct {
	Field InfoField
	Mask  MaskSpec
}

// Presence is one platform's incarnation of a service: its signup
// methods, authentication paths, post-login exposure and SSO bindings.
type Presence struct {
	Platform      Platform
	SignupMethods []SignupMethod
	Paths         []AuthPath
	Exposes       []Exposure
	// BoundTo names services whose authenticated session unlocks this
	// presence without further authentication (the Gmail→Expedia
	// example of §III.D).
	BoundTo []string
	// EmailProvider names the service hosting the account's registered
	// mailbox. Controlling that service satisfies this presence's
	// email-code and email-link factors — the paper's "Emails are the
	// gateway" insight. Empty means no email binding.
	EmailProvider string
}

// ExposedFields returns the set of exposed fields regardless of mask.
func (pr *Presence) ExposedFields() InfoSet {
	s := make(InfoSet, len(pr.Exposes))
	for _, e := range pr.Exposes {
		s[e.Field] = true
	}
	return s
}

// Exposure returns the exposure record for field f.
func (pr *Presence) Exposure(f InfoField) (Exposure, bool) {
	for _, e := range pr.Exposes {
		if e.Field == f {
			return e, true
		}
	}
	return Exposure{}, false
}

// PathsFor returns the paths with the given purpose.
func (pr *Presence) PathsFor(purpose PathPurpose) []AuthPath {
	var out []AuthPath
	for _, p := range pr.Paths {
		if p.Purpose == purpose {
			out = append(out, p)
		}
	}
	return out
}

// TakeoverPaths returns the paths that yield account control: sign-in
// and password reset both do (a reset is followed by a login the
// attacker controls); payment reset alone does not.
func (pr *Presence) TakeoverPaths() []AuthPath {
	var out []AuthPath
	for _, p := range pr.Paths {
		if p.Purpose == PurposeSignIn || p.Purpose == PurposeReset {
			out = append(out, p)
		}
	}
	return out
}

// HasSMSOnlyPath reports whether any takeover path is SMS-only.
func (pr *Presence) HasSMSOnlyPath() bool {
	for _, p := range pr.TakeoverPaths() {
		if p.SMSOnly() {
			return true
		}
	}
	return false
}

// ServiceSpec is the static description of one online service, as the
// paper's Authentication Process module would record it after probing
// the real site.
type ServiceSpec struct {
	// Name is unique within a catalog, e.g. "gmail" or "svc-042".
	Name string
	// Domain is the service category.
	Domain Domain
	// Presences holds the web and/or mobile incarnations.
	Presences []Presence
}

// Presence returns the presence for platform p.
func (s *ServiceSpec) Presence(p Platform) (*Presence, bool) {
	for i := range s.Presences {
		if s.Presences[i].Platform == p {
			return &s.Presences[i], true
		}
	}
	return nil, false
}

// HasPlatform reports whether the service exists on platform p.
func (s *ServiceSpec) HasPlatform(p Platform) bool {
	_, ok := s.Presence(p)
	return ok
}

// AccountID identifies one node of the ecosystem: a service presence.
type AccountID struct {
	Service  string
	Platform Platform
}

// String renders like "gmail/web".
func (a AccountID) String() string {
	return a.Service + "/" + a.Platform.String()
}

// Catalog is an immutable collection of service specs with name
// lookup. Build with NewCatalog.
type Catalog struct {
	services []*ServiceSpec
	byName   map[string]*ServiceSpec
}

// NewCatalog copies specs into a catalog. Duplicate names are an
// error: the ecosystem graph keys nodes by service name. Names are
// interned on the way in — every catalog built from the same
// vocabulary (countermeasure rebuilds, sweep clones) keys its maps on
// the same canonical string instances, so lookups compare pointers
// before bytes and clones add no name storage.
func NewCatalog(specs []*ServiceSpec) (*Catalog, error) {
	c := &Catalog{
		services: make([]*ServiceSpec, 0, len(specs)),
		byName:   make(map[string]*ServiceSpec, len(specs)),
	}
	for _, s := range specs {
		if s == nil {
			return nil, fmt.Errorf("ecosys: nil service spec")
		}
		if s.Name == "" {
			return nil, fmt.Errorf("ecosys: service with empty name")
		}
		s.Name = intern.String(s.Name)
		if _, dup := c.byName[s.Name]; dup {
			return nil, fmt.Errorf("ecosys: duplicate service name %q", s.Name)
		}
		c.byName[s.Name] = s
		c.services = append(c.services, s)
	}
	return c, nil
}

// CloneSpecs deep-copies every service specification of the catalog,
// preserving order. Countermeasure policies patch the copies and
// rebuild a catalog, so before/after comparisons never share state.
func (c *Catalog) CloneSpecs() []*ServiceSpec {
	out := make([]*ServiceSpec, 0, len(c.services))
	for _, svc := range c.services {
		cp := &ServiceSpec{Name: svc.Name, Domain: svc.Domain}
		for _, pr := range svc.Presences {
			npr := Presence{
				Platform:      pr.Platform,
				SignupMethods: append([]SignupMethod(nil), pr.SignupMethods...),
				Exposes:       append([]Exposure(nil), pr.Exposes...),
				BoundTo:       append([]string(nil), pr.BoundTo...),
				EmailProvider: pr.EmailProvider,
			}
			for _, p := range pr.Paths {
				npr.Paths = append(npr.Paths, AuthPath{
					ID: p.ID, Purpose: p.Purpose,
					Factors: append([]FactorKind(nil), p.Factors...),
				})
			}
			cp.Presences = append(cp.Presences, npr)
		}
		out = append(out, cp)
	}
	return out
}

// Clone deep-copies the whole catalog. Service order — and hence every
// index-keyed structure derived from it (population enrollment bitsets,
// campaign plan tables) — is preserved, so a patched clone stays
// comparable position-by-position with its original.
func (c *Catalog) Clone() *Catalog {
	clone, err := NewCatalog(c.CloneSpecs())
	if err != nil {
		// The specs came from a valid catalog; rebuild cannot fail.
		panic(err)
	}
	return clone
}

// MustCatalog is NewCatalog that panics on error; for use with
// compile-time-constant datasets.
func MustCatalog(specs []*ServiceSpec) *Catalog {
	c, err := NewCatalog(specs)
	if err != nil {
		panic(err)
	}
	return c
}

// Services returns the specs in insertion order. Callers must not
// mutate the returned slice.
func (c *Catalog) Services() []*ServiceSpec { return c.services }

// ByName looks a service up by name.
func (c *Catalog) ByName(name string) (*ServiceSpec, bool) {
	s, ok := c.byName[name]
	return s, ok
}

// Len returns the number of services.
func (c *Catalog) Len() int { return len(c.services) }

// Accounts enumerates every presence as an AccountID, web before
// mobile, services in insertion order.
func (c *Catalog) Accounts() []AccountID {
	var out []AccountID
	for _, s := range c.services {
		for _, pr := range s.Presences {
			out = append(out, AccountID{Service: s.Name, Platform: pr.Platform})
		}
	}
	return out
}

// PresenceOf resolves an AccountID to its presence.
func (c *Catalog) PresenceOf(id AccountID) (*Presence, bool) {
	s, ok := c.byName[id.Service]
	if !ok {
		return nil, false
	}
	return s.Presence(id.Platform)
}

// CountPlatform returns how many services exist on platform p.
func (c *Catalog) CountPlatform(p Platform) int {
	n := 0
	for _, s := range c.services {
		if s.HasPlatform(p) {
			n++
		}
	}
	return n
}

// TotalPaths counts authentication paths across all presences.
func (c *Catalog) TotalPaths() int {
	n := 0
	for _, s := range c.services {
		for _, pr := range s.Presences {
			n += len(pr.Paths)
		}
	}
	return n
}

// DomainServices returns service names per domain, sorted.
func (c *Catalog) DomainServices(d Domain) []string {
	var out []string
	for _, s := range c.services {
		if s.Domain == d {
			out = append(out, s.Name)
		}
	}
	sort.Strings(out)
	return out
}

// AttackerProfile (AP in the paper's notation) describes the assumed
// attacker: inherent capabilities expressed as credential factors the
// attacker can always supply, plus victim information already known
// (e.g. from a leaked database).
type AttackerProfile struct {
	// Capabilities are factors the attacker can produce on demand.
	// The paper's baseline is {PN, SC}: the victim's phone number and
	// SMS-code interception.
	Capabilities FactorSet
	// KnownInfo is victim information known a priori (targeted attack
	// mode may include home address, etc.).
	KnownInfo InfoSet
}

// BaselineAttacker returns the paper's baseline profile: cellphone
// number plus SMS-code interception.
func BaselineAttacker() AttackerProfile {
	return AttackerProfile{
		Capabilities: NewFactorSet(FactorCellphone, FactorSMSCode),
		KnownInfo:    make(InfoSet),
	}
}

// Clone deep-copies the profile.
func (a AttackerProfile) Clone() AttackerProfile {
	return AttackerProfile{
		Capabilities: a.Capabilities.Clone(),
		KnownInfo:    a.KnownInfo.Clone(),
	}
}

// Factors returns every factor the profile can currently supply:
// inherent capabilities plus factors derived from known information.
func (a AttackerProfile) Factors() FactorSet {
	return a.Capabilities.Union(a.KnownInfo.Factors())
}

// CanSatisfy reports whether the profile alone satisfies path p.
func (a AttackerProfile) CanSatisfy(p AuthPath) bool {
	return a.Factors().Contains(p.FactorSet())
}
