// Package ecosys defines the data model of the Online Account
// Ecosystem: credential factors, personal-information fields,
// authentication paths, service specifications and the attacker
// profile. Every other package — the ActFort analysis pipeline, the
// telecom substrate, the live service platform and the attack
// orchestrator — speaks these types.
//
// The model follows the paper's Table II notation: a service account
// exposes a personal-information attribute set (PIA) after login and
// accepts one or more authentication paths, each a conjunction of
// credential factors (CFA). The reciprocal transformation between
// exposed information and credential factors is captured by
// InfoField.Factor.
package ecosys

// FactorKind enumerates credential factor types. Short codes in the
// comments follow the paper's Fig 11 legend.
type FactorKind int

const (
	// FactorPassword is the account's knowledge secret.
	FactorPassword FactorKind = iota + 1
	// FactorSMSCode (SC) is a one-time code delivered over SMS.
	FactorSMSCode
	// FactorEmailCode (EMC) is a one-time code delivered by email.
	FactorEmailCode
	// FactorEmailLink is a password-reset link delivered by email;
	// operationally equivalent to an email code for attack purposes.
	FactorEmailLink
	// FactorCellphone (PN) is knowledge of the account's phone number.
	FactorCellphone
	// FactorEmailAddress (EM) is knowledge of the account's email.
	FactorEmailAddress
	// FactorRealName (Name) is the user's legal name.
	FactorRealName
	// FactorCitizenID (CID) is the user's citizen/SSN number.
	FactorCitizenID
	// FactorBankcard (BN) is a bound bankcard number.
	FactorBankcard
	// FactorAddress (ADDR) is the user's street address.
	FactorAddress
	// FactorUserID (UID) is the platform username.
	FactorUserID
	// FactorAcquaintance (AQN) is social authentication: naming
	// friends or family members.
	FactorAcquaintance
	// FactorDeviceType (DT) is a device-recognition challenge.
	FactorDeviceType
	// FactorStudentID (SID) is a student-number challenge.
	FactorStudentID
	// FactorSecurityQuestion is a preset knowledge question.
	FactorSecurityQuestion
	// FactorBiometric is fingerprint or facial recognition.
	FactorBiometric
	// FactorU2F is a hardware security key.
	FactorU2F
	// FactorCustomerService (AS) is a human-assisted reset channel.
	FactorCustomerService
	// FactorLinkedAccount is SSO: a live session on a bound account.
	FactorLinkedAccount
	// FactorBuiltinPush is the paper's proposed countermeasure: an
	// OS-level encrypted authentication push (Fig 8). It never
	// traverses the GSM SMS plane.
	FactorBuiltinPush

	factorKindCount = int(FactorBuiltinPush)
)

var factorNames = map[FactorKind]string{
	FactorPassword:         "password",
	FactorSMSCode:          "sms-code",
	FactorEmailCode:        "email-code",
	FactorEmailLink:        "email-link",
	FactorCellphone:        "cellphone-number",
	FactorEmailAddress:     "email-address",
	FactorRealName:         "real-name",
	FactorCitizenID:        "citizen-id",
	FactorBankcard:         "bankcard-number",
	FactorAddress:          "address",
	FactorUserID:           "user-id",
	FactorAcquaintance:     "acquaintance",
	FactorDeviceType:       "device-type",
	FactorStudentID:        "student-id",
	FactorSecurityQuestion: "security-question",
	FactorBiometric:        "biometric",
	FactorU2F:              "u2f-key",
	FactorCustomerService:  "customer-service",
	FactorLinkedAccount:    "linked-account",
	FactorBuiltinPush:      "builtin-push",
}

var factorShort = map[FactorKind]string{
	FactorPassword:         "PW",
	FactorSMSCode:          "SC",
	FactorEmailCode:        "EMC",
	FactorEmailLink:        "EML",
	FactorCellphone:        "PN",
	FactorEmailAddress:     "EM",
	FactorRealName:         "Name",
	FactorCitizenID:        "CID",
	FactorBankcard:         "BN",
	FactorAddress:          "ADDR",
	FactorUserID:           "UID",
	FactorAcquaintance:     "AQN",
	FactorDeviceType:       "DT",
	FactorStudentID:        "SID",
	FactorSecurityQuestion: "SQ",
	FactorBiometric:        "BIO",
	FactorU2F:              "U2F",
	FactorCustomerService:  "AS",
	FactorLinkedAccount:    "LNK",
	FactorBuiltinPush:      "PUSH",
}

// String returns the long lowercase name, e.g. "sms-code".
func (k FactorKind) String() string {
	if s, ok := factorNames[k]; ok {
		return s
	}
	return "factor(?)"
}

// Short returns the paper's Fig 11 legend code, e.g. "SC".
func (k FactorKind) Short() string {
	if s, ok := factorShort[k]; ok {
		return s
	}
	return "?"
}

// Valid reports whether k is a defined factor kind.
func (k FactorKind) Valid() bool {
	return k >= FactorPassword && int(k) <= factorKindCount
}

// ParseFactor resolves a long factor name (the String form, e.g.
// "sms-code") back to its kind. Used by the wire protocol of the live
// service platform.
func ParseFactor(name string) (FactorKind, bool) {
	for k, n := range factorNames {
		if n == name {
			return k, true
		}
	}
	return 0, false
}

// AllFactorKinds returns every defined factor kind in declaration
// order. The returned slice is fresh and safe to mutate.
func AllFactorKinds() []FactorKind {
	out := make([]FactorKind, 0, factorKindCount)
	for k := FactorPassword; int(k) <= factorKindCount; k++ {
		out = append(out, k)
	}
	return out
}

// Unphishable reports whether the factor cannot be supplied by an
// attacker who has only intercepted communications and harvested
// personal information: biometrics, hardware keys and the encrypted
// built-in push (the paper's "most secure authentication" insight).
func (k FactorKind) Unphishable() bool {
	switch k {
	case FactorBiometric, FactorU2F, FactorBuiltinPush:
		return true
	}
	return false
}

// IdentityLike reports whether the factor is personal identity
// information (the paper's "info path" ingredients) rather than a
// possession or secret.
func (k FactorKind) IdentityLike() bool {
	switch k {
	case FactorRealName, FactorCitizenID, FactorBankcard, FactorAddress,
		FactorAcquaintance, FactorStudentID, FactorDeviceType:
		return true
	}
	return false
}

// FactorSet is an immutable-by-convention set of credential factors.
// The zero value is the empty set.
type FactorSet map[FactorKind]bool

// NewFactorSet builds a set from the given kinds.
func NewFactorSet(kinds ...FactorKind) FactorSet {
	s := make(FactorSet, len(kinds))
	for _, k := range kinds {
		s[k] = true
	}
	return s
}

// Has reports membership.
func (s FactorSet) Has(k FactorKind) bool { return s[k] }

// Contains reports whether every factor in other is in s.
func (s FactorSet) Contains(other FactorSet) bool {
	for k, v := range other {
		if v && !s[k] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy (copy-at-boundary).
func (s FactorSet) Clone() FactorSet {
	out := make(FactorSet, len(s))
	for k, v := range s {
		if v {
			out[k] = true
		}
	}
	return out
}

// Add inserts k and returns s for chaining.
func (s FactorSet) Add(k FactorKind) FactorSet {
	s[k] = true
	return s
}

// Union merges other into a new set.
func (s FactorSet) Union(other FactorSet) FactorSet {
	out := s.Clone()
	for k, v := range other {
		if v {
			out[k] = true
		}
	}
	return out
}

// Len returns the number of members.
func (s FactorSet) Len() int {
	n := 0
	for _, v := range s {
		if v {
			n++
		}
	}
	return n
}

// Sorted returns members in declaration order for stable output.
func (s FactorSet) Sorted() []FactorKind {
	out := make([]FactorKind, 0, len(s))
	for _, k := range AllFactorKinds() {
		if s[k] {
			out = append(out, k)
		}
	}
	return out
}
