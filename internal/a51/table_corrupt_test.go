package a51

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"strings"
	"testing"
)

// savedTable builds a small real table and returns its serialized form.
func savedTable(t *testing.T) (*Table, []byte) {
	t.Helper()
	space := KeySpace{Base: 0xC118000000000000, Bits: 8}
	table, err := BuildTable(space, TableConfig{Frames: FrameRange(2)})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := table.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return table, buf.Bytes()
}

func TestTableSaveLoadByteStable(t *testing.T) {
	table, raw := savedTable(t)
	got, err := LoadTable(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got.Identity() != table.Identity() {
		t.Fatalf("identity drifted: %s != %s", got.Identity(), table.Identity())
	}
	// Save is deterministic (sorted maps), so a byte-equal re-save is a
	// deep-equality check over every chain and overflow entry.
	var again bytes.Buffer
	if err := got.Save(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), raw) {
		t.Fatal("reloaded table re-saves differently")
	}
}

// TestLoadTableTruncationMatrix cuts the file at every byte offset:
// each prefix must fail cleanly, never panic or return a table.
func TestLoadTableTruncationMatrix(t *testing.T) {
	_, raw := savedTable(t)
	for cut := 0; cut < len(raw); cut++ {
		if _, err := LoadTable(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at byte %d/%d accepted", cut, len(raw))
		}
	}
}

// TestLoadTableBitFlipMatrix flips single bits across the file: the
// magic check, length prefix validation or CRC32C must catch each one.
func TestLoadTableBitFlipMatrix(t *testing.T) {
	_, raw := savedTable(t)
	for off := 0; off < len(raw); off += 3 {
		mut := bytes.Clone(raw)
		mut[off] ^= 1 << (off % 8)
		if _, err := LoadTable(bytes.NewReader(mut)); err == nil {
			t.Fatalf("bit flip at byte %d accepted", off)
		}
	}
}

func TestLoadTableRejectsV1(t *testing.T) {
	_, raw := savedTable(t)
	mut := bytes.Clone(raw)
	copy(mut, tableMagicV1[:])
	_, err := LoadTable(bytes.NewReader(mut))
	if err == nil || !strings.Contains(err.Error(), "v1") {
		t.Fatalf("v1 magic: %v", err)
	}
}

func TestLoadTableRejectsWrongMagic(t *testing.T) {
	if _, err := LoadTable(bytes.NewReader([]byte("NOTATMTOFILE"))); err == nil {
		t.Fatal("junk magic accepted")
	}
}

func TestLoadTableRejectsImplausibleLength(t *testing.T) {
	_, raw := savedTable(t)
	mut := bytes.Clone(raw)
	binary.LittleEndian.PutUint64(mut[8:], maxTableBody+1)
	_, err := LoadTable(bytes.NewReader(mut))
	if !errors.Is(err, ErrTableCorrupt) {
		t.Fatalf("oversized length: %v", err)
	}
}

// seal wraps a body in the v2 framing with a correct CRC, so structural
// tests exercise the field validators rather than the checksum.
func seal(body []byte) []byte {
	out := make([]byte, 0, len(body)+20)
	out = append(out, tableMagic[:]...)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(body)))
	out = append(out, body...)
	return binary.LittleEndian.AppendUint32(out, crc32.Checksum(body, tableCRC))
}

// tinyBody hand-assembles a minimal valid body (bits=8, chainLen=16,
// one frame, one chain, one overflow entry) that mutators below bend
// out of shape one field at a time.
type tinyBody struct {
	base            uint64
	bits            uint32
	chainLen        uint64
	frames          []uint32
	end             uint64
	nchains         uint32
	start           uint64
	length          uint32
	fp              uint64
	nkeys           uint32
	key             uint64
	trailing        []byte
	skipOverflowKey bool
}

func validTiny() tinyBody {
	return tinyBody{
		base: 0xC118000000000000, bits: 8, chainLen: 16,
		frames: []uint32{0},
		end:    1, nchains: 1, start: 2, length: 3,
		fp: 5, nkeys: 1, key: 7,
	}
}

func (b tinyBody) bytes() []byte {
	var buf bytes.Buffer
	u64 := func(v uint64) { binary.Write(&buf, binary.LittleEndian, v) }
	u32 := func(v uint32) { binary.Write(&buf, binary.LittleEndian, v) }
	u64(b.base)
	u32(b.bits)
	u64(b.chainLen)
	u32(uint32(len(b.frames)))
	for _, f := range b.frames {
		u32(f)
		u32(1) // nends
		u64(b.end)
		u32(b.nchains)
		u64(b.start)
		u32(b.length)
		u32(1) // nfps
		u64(b.fp)
		u32(b.nkeys)
		if !b.skipOverflowKey {
			u64(b.key)
		}
	}
	buf.Write(b.trailing)
	return buf.Bytes()
}

func TestLoadTableFieldValidationMatrix(t *testing.T) {
	if _, err := LoadTable(bytes.NewReader(seal(validTiny().bytes()))); err != nil {
		t.Fatalf("baseline tiny body rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*tinyBody)
		want string
	}{
		{"bits zero", func(b *tinyBody) { b.bits = 0 }, "geometry"},
		{"bits too wide", func(b *tinyBody) { b.bits = 30 }, "geometry"},
		{"chainLen not power of two", func(b *tinyBody) { b.chainLen = 12 }, "geometry"},
		{"chainLen zero", func(b *tinyBody) { b.chainLen = 0 }, "geometry"},
		{"endpoint outside space", func(b *tinyBody) { b.end = 256 }, "endpoint"},
		{"chain start outside space", func(b *tinyBody) { b.start = 1 << 20 }, "bounds"},
		{"chain length zero", func(b *tinyBody) { b.length = 0 }, "bounds"},
		{"chain length beyond walk", func(b *tinyBody) { b.length = 1 << 30 }, "bounds"},
		{"fingerprint too wide", func(b *tinyBody) { b.fp = 1 << 40 }, "fingerprint"},
		{"overflow key outside space", func(b *tinyBody) { b.key = 300 }, "outside"},
		{"duplicate frame", func(b *tinyBody) { b.frames = []uint32{0, 0} }, "twice"},
		{"chain count exceeds body", func(b *tinyBody) { b.nchains = 1 << 30 }, "exceeds remaining"},
		{"key count exceeds body", func(b *tinyBody) { b.nkeys = 1 << 30 }, "exceeds remaining"},
		{"trailing garbage", func(b *tinyBody) { b.trailing = []byte{0xEE} }, "trailing"},
		{"body truncated mid-record", func(b *tinyBody) { b.skipOverflowKey = true }, "exceeds remaining"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := validTiny()
			tc.mut(&b)
			_, err := LoadTable(bytes.NewReader(seal(b.bytes())))
			if !errors.Is(err, ErrTableCorrupt) {
				t.Fatalf("err = %v, want ErrTableCorrupt", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestTableIdentityDistinguishesGeometry(t *testing.T) {
	space := KeySpace{Base: 0xC118000000000000, Bits: 8}
	a, err := BuildTable(space, TableConfig{Frames: FrameRange(2)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildTable(space, TableConfig{Frames: FrameRange(3)})
	if err != nil {
		t.Fatal(err)
	}
	if a.Identity() == b.Identity() {
		t.Fatal("tables with different frame coverage share an identity")
	}
	if a.Identity() != a.Identity() {
		t.Fatal("identity not stable")
	}
}
