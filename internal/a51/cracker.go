package a51

import (
	"context"
	"fmt"
)

// Cracker recovers an A5/1 session key from an observed keystream
// prefix. It is the pluggable search backend behind the sniffer, the
// MitM rig and the attack scenarios: all of them speak this interface
// and stay agnostic of whether recovery is brute force, bitsliced or
// table-driven.
//
// Implementations must be safe for concurrent use; the sniffer cracks
// sessions from multiple receiver callbacks.
type Cracker interface {
	// Name identifies the backend in stats and CLI output.
	Name() string
	// Recover searches space for the key whose downlink keystream for
	// frame starts with keystream (at least minSampleBytes bytes). It
	// returns ErrKeyNotFound when no key in the space matches,
	// ErrBadKeystream for short samples, and ctx.Err() on cancellation.
	Recover(ctx context.Context, keystream []byte, frame uint32, space KeySpace) (uint64, error)
}

// Exhaustive is the brute-force backend: it enumerates the key space
// candidate by candidate. Workers > 1 (or 0, meaning GOMAXPROCS) fans
// the sweep out over goroutines with an atomic first-match handshake;
// Workers == 1 searches serially.
type Exhaustive struct {
	// Workers is the search parallelism: 0 means GOMAXPROCS, 1 serial.
	Workers int
	// FullBurst switches to the pre-optimization reference matcher
	// that generates the complete 228-bit downlink+uplink burst per
	// candidate instead of early-exiting on the first mismatched bit.
	// It exists so ablations can reproduce the seed cost; leave it
	// false everywhere else.
	FullBurst bool
}

var _ Cracker = Exhaustive{}

// Name implements Cracker.
func (e Exhaustive) Name() string {
	if e.FullBurst {
		return "exhaustive-fullburst"
	}
	if e.Workers == 1 {
		return "exhaustive"
	}
	return "exhaustive-parallel"
}

// Recover implements Cracker.
func (e Exhaustive) Recover(ctx context.Context, keystream []byte, frame uint32, space KeySpace) (uint64, error) {
	if !e.FullBurst && e.Workers != 1 {
		return RecoverKeyParallel(ctx, keystream, frame, space, e.Workers)
	}
	// Serial paths (Workers == 1, and the FullBurst reference, which
	// is serial by definition): run inline, polling ctx periodically
	// so the Cracker cancellation contract holds without goroutines.
	if len(keystream) < minSampleBytes {
		return 0, ErrBadKeystream
	}
	n, ok := space.Size()
	if !ok {
		return 0, ErrSpaceTooLarge
	}
	match := matches
	if e.FullBurst {
		match = matchesFullBurst
	}
	for i := uint64(0); i < n; i++ {
		if i%1024 == 0 {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
		}
		key := space.Key(i)
		if match(key, frame, keystream) {
			return key, nil
		}
	}
	return 0, ErrKeyNotFound
}

// NewCracker builds a backend by name — the switch the CLI flags and
// scenario configs share:
//
//	"exhaustive"          serial brute force
//	"parallel"            brute force over all cores
//	"bitsliced" (or "")   64-lane bitsliced search, the default
//	"table"               TMTO table built for space over the paging
//	                      frame classes (PagingFrames)
//
// workers bounds the parallelism of the backend (and of the table
// build); 0 means GOMAXPROCS.
func NewCracker(name string, space KeySpace, workers int) (Cracker, error) {
	switch name {
	case "exhaustive":
		return Exhaustive{Workers: 1}, nil
	case "parallel":
		return Exhaustive{Workers: workers}, nil
	case "bitsliced", "":
		return Bitsliced{Workers: workers}, nil
	case "table":
		return BuildTable(space, TableConfig{Workers: workers})
	}
	return nil, fmt.Errorf("a51: unknown cracker backend %q", name)
}
