package a51

import (
	"bytes"
	"context"
	"encoding/hex"
	"testing"
	"testing/quick"
)

// Published reference test vector (Briceno, Goldberg, Wagner 1999):
// Kc = 0x1223456789ABCDEF, frame 0x134.
const (
	katKey   = uint64(0x1223456789ABCDEF)
	katFrame = uint32(0x134)
	katDown  = "534eaa582fe8151ab6e1855a728c00"
	katUp    = "24fd35a35d5fb6526d32f906df1ac0"
)

func TestKnownAnswerVector(t *testing.T) {
	down, up := New(katKey, katFrame).KeystreamBurst()
	if got := hex.EncodeToString(down[:]); got != katDown {
		t.Errorf("downlink keystream = %s want %s", got, katDown)
	}
	if got := hex.EncodeToString(up[:]); got != katUp {
		t.Errorf("uplink keystream = %s want %s", got, katUp)
	}
}

func TestBurstTrailingBitsZero(t *testing.T) {
	down, up := New(katKey, katFrame).KeystreamBurst()
	if down[BurstBytes-1]&0x3F != 0 || up[BurstBytes-1]&0x3F != 0 {
		t.Error("trailing 6 bits of 114-bit burst must be zero")
	}
}

func TestEncryptBurstInvolution(t *testing.T) {
	payload := []byte("Your verification code is 845512")
	ct := EncryptBurst(katKey, 99, payload)
	if bytes.Equal(ct, payload) {
		t.Fatal("ciphertext equals plaintext")
	}
	pt := EncryptBurst(katKey, 99, ct)
	if !bytes.Equal(pt, payload) {
		t.Fatalf("decrypt(encrypt(x)) = %q want %q", pt, payload)
	}
}

func TestFrameNumberSeparatesKeystream(t *testing.T) {
	d1, _ := New(katKey, 1).KeystreamBurst()
	d2, _ := New(katKey, 2).KeystreamBurst()
	if d1 == d2 {
		t.Error("different frames produced identical keystream")
	}
}

func TestKeySeparatesKeystream(t *testing.T) {
	d1, _ := New(1, katFrame).KeystreamBurst()
	d2, _ := New(2, katFrame).KeystreamBurst()
	if d1 == d2 {
		t.Error("different keys produced identical keystream")
	}
}

func TestXORKeyStreamRoundTrip(t *testing.T) {
	f := func(key uint64, frame uint32, msg []byte) bool {
		frame &= 0x3FFFFF
		ct := make([]byte, len(msg))
		New(key, frame).XORKeyStream(ct, msg)
		pt := make([]byte, len(ct))
		New(key, frame).XORKeyStream(pt, ct)
		return bytes.Equal(pt, msg)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXORKeyStreamShortDstPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("short dst did not panic")
		}
	}()
	New(1, 1).XORKeyStream(make([]byte, 1), make([]byte, 2))
}

func TestKeySpace(t *testing.T) {
	s := KeySpace{Base: 0xABCD000000000000, Bits: 8}
	if n, ok := s.Size(); !ok || n != 256 {
		t.Fatalf("Size = %d, %v want 256, true", n, ok)
	}
	if !s.Contains(s.Key(17)) {
		t.Error("space does not contain its own key")
	}
	if s.Contains(0x1111000000000000) {
		t.Error("space contains foreign key")
	}
	if s.Key(300) != s.Key(300%256) {
		t.Error("Key should wrap indexes into the space")
	}
	full := KeySpace{Bits: 64}
	if _, ok := full.Size(); ok {
		t.Error("64-bit space must report not-ok (unbounded)")
	}
	if !full.Contains(0xDEADBEEF) {
		t.Error("full space must contain everything")
	}
}

func TestRecoverKey(t *testing.T) {
	space := KeySpace{Base: 0x5A5A000000000000, Bits: 10}
	kc := space.Key(777)
	frame := uint32(0x2B)
	down, _ := New(kc, frame).KeystreamBurst()

	got, err := RecoverKey(down[:8], frame, space)
	if err != nil {
		t.Fatal(err)
	}
	if got != kc {
		t.Fatalf("RecoverKey = %#x want %#x", got, kc)
	}
}

func TestRecoverKeyWrongFrame(t *testing.T) {
	space := KeySpace{Bits: 8}
	down, _ := New(space.Key(3), 10).KeystreamBurst()
	if _, err := RecoverKey(down[:8], 11, space); err != ErrKeyNotFound {
		t.Fatalf("err = %v want ErrKeyNotFound", err)
	}
}

func TestRecoverKeyShortSample(t *testing.T) {
	if _, err := RecoverKey([]byte{1, 2}, 0, KeySpace{Bits: 4}); err != ErrBadKeystream {
		t.Fatalf("err = %v want ErrBadKeystream", err)
	}
}

func TestRecoverKeyFullSpaceRejected(t *testing.T) {
	if _, err := RecoverKey(make([]byte, 8), 0, KeySpace{Bits: 64}); err == nil {
		t.Fatal("full 64-bit space must be rejected for exhaustive search")
	}
}

func TestRecoverKeyParallel(t *testing.T) {
	space := KeySpace{Base: 0x77AA000000000000, Bits: 14}
	kc := space.Key(12345)
	frame := uint32(0x134)
	down, _ := New(kc, frame).KeystreamBurst()

	got, err := RecoverKeyParallel(context.Background(), down[:8], frame, space, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != kc {
		t.Fatalf("RecoverKeyParallel = %#x want %#x", got, kc)
	}
}

func TestRecoverKeyParallelCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A keystream no key generates, so only cancellation can end it.
	bogus := []byte{0xFF, 0xEE, 0xDD, 0xCC, 0xBB, 0xAA, 0x99, 0x88}
	_, err := RecoverKeyParallel(ctx, bogus, 0, KeySpace{Bits: 20}, 2)
	if err != context.Canceled {
		t.Fatalf("err = %v want context.Canceled", err)
	}
}

func TestRecoverKeyParallelNotFound(t *testing.T) {
	space := KeySpace{Bits: 6}
	outside := uint64(1) << 20 // key outside the 6-bit space
	down, _ := New(outside, 5).KeystreamBurst()
	_, err := RecoverKeyParallel(context.Background(), down[:8], 5, space, 3)
	if err != ErrKeyNotFound {
		t.Fatalf("err = %v want ErrKeyNotFound", err)
	}
}

func TestDeriveKeystream(t *testing.T) {
	plain := []byte("PAGING REQ 1") // fits in one 114-bit burst
	down, _ := New(katKey, 7).KeystreamBurst()
	ct := make([]byte, len(plain))
	for i := range plain {
		ct[i] = plain[i] ^ down[i]
	}
	ks, err := DeriveKeystream(ct, plain)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ks, down[:len(plain)]) {
		t.Error("derived keystream differs from true keystream")
	}
	if _, err := DeriveKeystream([]byte{1}, []byte{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
}

// End-to-end property: capture → derive keystream → recover key →
// decrypt a later frame of the same session.
func TestKnownPlaintextAttackEndToEnd(t *testing.T) {
	space := KeySpace{Base: 0x1122000000000000, Bits: 12}
	kc := space.Key(3000)

	// Frame 40 carries a predictable system message.
	sysMsg := []byte("SYSTEM INFORMATION TYPE 3 MSG")
	ct1 := EncryptBurst(kc, 40, sysMsg)
	ks, err := DeriveKeystream(ct1, sysMsg)
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := RecoverKey(ks, 40, space)
	if err != nil {
		t.Fatal(err)
	}
	if recovered != kc {
		t.Fatalf("recovered %#x want %#x", recovered, kc)
	}

	// Frame 41 carries the secret SMS; decrypt with recovered key.
	secret := []byte("Google code: 942117")
	ct2 := EncryptBurst(kc, 41, secret)
	if got := EncryptBurst(recovered, 41, ct2); !bytes.Equal(got, secret) {
		t.Fatalf("decrypted %q want %q", got, secret)
	}
}

func BenchmarkKeystreamBurst(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = New(katKey, uint32(i)&0x3FFFFF).KeystreamBurst()
	}
}

func BenchmarkRecoverKey12Bit(b *testing.B) {
	space := KeySpace{Base: 0x9900000000000000, Bits: 12}
	kc := space.Key(4095) // worst case: last key tried
	down, _ := New(kc, 8).KeystreamBurst()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RecoverKey(down[:8], 8, space); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecoverKeyParallel16Bit(b *testing.B) {
	space := KeySpace{Base: 0x9900000000000000, Bits: 16}
	kc := space.Key(65535)
	down, _ := New(kc, 8).KeystreamBurst()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RecoverKeyParallel(context.Background(), down[:8], 8, space, 0); err != nil {
			b.Fatal(err)
		}
	}
}
