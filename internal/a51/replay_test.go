package a51

import (
	"context"
	"errors"
	"math/rand"
	"testing"
)

// replayTable builds a lookup table for the test's space and frames.
func replayTable(t *testing.T, space KeySpace, frames []uint32, chainLen int) *Table {
	t.Helper()
	table, err := BuildTable(space, TableConfig{Frames: frames, ChainLen: chainLen})
	if err != nil {
		t.Fatal(err)
	}
	return table
}

// TestRecoverBatchMatchesScalar is the replayBatch ≡ scalar-replay
// property test: across chain lengths (from every-index-distinguished
// through merge-collision-heavy long chains in tiny spaces), batch
// sizes exercising sub-64 remainder lanes and multi-block gathers,
// covered and uncovered frames, full-burst and fingerprint-width
// samples and unrecoverable keystreams, RecoverBatch must return
// exactly what Recover returns, sample for sample.
func TestRecoverBatchMatchesScalar(t *testing.T) {
	for _, tc := range []struct {
		name     string
		bits     int
		chainLen int
		batch    int
	}{
		{"dp-everywhere/sub-cutoff", 8, 1, 3},
		{"merge-heavy", 8, 16, 40},
		{"campaign-shape/one-block", 10, 2, 64},
		{"remainder-lane", 10, 4, 65},
		{"multi-block", 12, 2, 200},
		{"sub-cutoff", 12, 8, 7},
	} {
		t.Run(tc.name, func(t *testing.T) {
			space := KeySpace{Base: 0xC118000000000000, Bits: tc.bits}
			frames := FrameRange(8)
			table := replayTable(t, space, frames, tc.chainLen)
			n, _ := space.Size()
			rng := rand.New(rand.NewSource(int64(tc.bits*1000 + tc.chainLen)))

			samples := make([]Sample, tc.batch)
			for i := range samples {
				frame := frames[rng.Intn(len(frames))]
				switch i % 5 {
				case 0, 1, 2: // recoverable: a real key's keystream
					key := space.Key(rng.Uint64() % n)
					down, _ := New(key, frame).KeystreamBurst()
					width := 8
					if i%2 == 0 {
						width = 5 // fingerprint-width: matches ⟺ fp equality
					}
					samples[i] = Sample{Keystream: down[:width], Frame: frame}
				case 3: // junk keystream: almost surely no key matches
					junk := make([]byte, 8)
					rng.Read(junk)
					samples[i] = Sample{Keystream: junk, Frame: frame}
				case 4: // uncovered frame: the bitsliced-sweep fallback
					key := space.Key(rng.Uint64() % n)
					down, _ := New(key, 1000).KeystreamBurst()
					samples[i] = Sample{Keystream: down[:8], Frame: 1000}
				}
			}
			// One unusably short sample rides along.
			if len(samples) > 2 {
				samples[2] = Sample{Keystream: []byte{1, 2}, Frame: frames[0]}
			}

			keys, errs := table.RecoverBatch(context.Background(), samples, space)
			for i, s := range samples {
				wantKey, wantErr := table.Recover(context.Background(), s.Keystream, s.Frame, space)
				if (errs[i] == nil) != (wantErr == nil) ||
					(wantErr != nil && !errors.Is(errs[i], wantErr)) {
					t.Fatalf("sample %d: err = %v, scalar err = %v", i, errs[i], wantErr)
				}
				if wantErr == nil && keys[i] != wantKey {
					t.Fatalf("sample %d: key = %#x, scalar key = %#x", i, keys[i], wantKey)
				}
			}
		})
	}
}

// TestRecoverBatchSpaceMismatch pins the whole-batch space check.
func TestRecoverBatchSpaceMismatch(t *testing.T) {
	space := KeySpace{Base: 0xC118000000000000, Bits: 8}
	table := replayTable(t, space, FrameRange(2), 2)
	down, _ := New(space.Key(3), 0).KeystreamBurst()
	_, errs := table.RecoverBatch(context.Background(),
		[]Sample{{Keystream: down[:8], Frame: 0}}, KeySpace{Base: 0, Bits: 8})
	if !errors.Is(errs[0], ErrTableSpaceMismatch) {
		t.Fatalf("err = %v, want ErrTableSpaceMismatch", errs[0])
	}
}

// TestRecoverBatchCancellation: a canceled context must surface on
// every unresolved sample instead of spinning the rounds.
func TestRecoverBatchCancellation(t *testing.T) {
	space := KeySpace{Base: 0xC118000000000000, Bits: 10}
	table := replayTable(t, space, FrameRange(2), 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	down, _ := New(space.Key(77), 1).KeystreamBurst()
	_, errs := table.RecoverBatch(ctx, []Sample{{Keystream: down[:8], Frame: 1}}, space)
	if !errors.Is(errs[0], context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", errs[0])
	}
}

// TestRecoverAllScalarFallback: a backend without RecoverBatch goes
// through the per-sample loop with identical results.
func TestRecoverAllScalarFallback(t *testing.T) {
	space := KeySpace{Base: 0xC118000000000000, Bits: 8}
	cr := Bitsliced{Workers: 1}
	key := space.Key(200)
	down, _ := New(key, 5).KeystreamBurst()
	junk := []byte{0xFF, 0xEE, 0xDD, 0xCC, 0xBB, 0xAA, 0x99, 0x88}
	keys, errs := RecoverAll(context.Background(), cr,
		[]Sample{{Keystream: down[:8], Frame: 5}, {Keystream: junk, Frame: 5}}, space)
	if errs[0] != nil || keys[0] != key {
		t.Fatalf("sample 0: key=%#x err=%v", keys[0], errs[0])
	}
	if !errors.Is(errs[1], ErrKeyNotFound) {
		t.Fatalf("sample 1: err=%v want ErrKeyNotFound", errs[1])
	}
}

// TestRecoverAllUsesBatchBackend: a table goes through RecoverBatch
// (the results must match per-sample Recover either way; this pins the
// dispatch).
func TestRecoverAllUsesBatchBackend(t *testing.T) {
	space := KeySpace{Base: 0xC118000000000000, Bits: 8}
	table := replayTable(t, space, FrameRange(4), 2)
	var _ BatchCracker = table // compile-time: Table is a BatchCracker
	keys := make([]uint64, 70)
	samples := make([]Sample, 70)
	for i := range samples {
		keys[i] = space.Key(uint64(i * 3 % 256))
		frame := uint32(i % 4)
		down, _ := New(keys[i], frame).KeystreamBurst()
		samples[i] = Sample{Keystream: down[:8], Frame: frame}
	}
	got, errs := RecoverAll(context.Background(), table, samples, space)
	for i := range samples {
		if errs[i] != nil || got[i] != keys[i] {
			t.Fatalf("sample %d: key=%#x err=%v want %#x", i, got[i], errs[i], keys[i])
		}
	}
}

// TestFPBatchMatchesScalarFingerprint pins the lane-sliced fingerprint
// against the scalar one across per-lane frames — the primitive the
// whole batched replay rests on.
func TestFPBatchMatchesScalarFingerprint(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, lanes := range []int{1, 7, 63, 64} {
		keys := make([]uint64, lanes)
		frames := make([]uint32, lanes)
		out := make([]uint64, lanes)
		for i := range keys {
			keys[i] = rng.Uint64()
			frames[i] = rng.Uint32() & 0x3FFFFF
		}
		fpBatch(keys, frames, out)
		for i := range keys {
			if want := scalarFingerprint(keys[i], frames[i]); out[i] != want {
				t.Fatalf("lanes=%d lane %d: fp=%#x want %#x", lanes, i, out[i], want)
			}
		}
	}
}
