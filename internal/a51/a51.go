// Package a51 implements the A5/1 stream cipher that encrypts GSM
// traffic, plus the known-plaintext session-key recovery the paper's
// sniffing step depends on ("If the SMS transmission is encrypted with
// A5/1 ... existing hacking method can be used to obtain the session
// key", §V.A.2).
//
// The cipher is implemented bit-exactly: three linear feedback shift
// registers (19/22/23 bits) with majority-rule irregular clocking,
// validated against the published reference test vector of Briceno,
// Goldberg and Wagner (1999).
//
// The real-world attack uses precomputed rainbow tables over the full
// 64-bit key space (the srlabs "Kraken" tables cited by the paper).
// This package reproduces that time–memory trade-off at reduced scale
// behind the pluggable Cracker interface, with three backends:
//
//   - Exhaustive: the brute-force enumerator (serial or parallel) with
//     an early-exit bit-by-bit matcher.
//   - Bitsliced: packs 64 candidate keys into the bit positions of
//     uint64 words — one word per register bit — and clocks all 64
//     ciphers with the same handful of boolean operations, the classic
//     software speedup the real crackers use.
//   - Table: a precomputed lookup structure (BuildTable) mapping
//     keystream-prefix fingerprints back to candidate keys through
//     distinguished-point chains, the faithful Kraken analogue: one
//     expensive precomputation per key space, then amortized O(chain)
//     work per recovered message instead of a full keyspace sweep.
//
// The simulated network draws session keys from a configurable
// KeySpace subspace (and, for table-driven recovery, wraps frame
// counters into a small window) so the trade-off fits in test-sized
// memory; the attack structure (capture burst → derive keystream from
// known plaintext → invert to Kc → decrypt the rest of the session)
// is identical to the real deployment; only the scale differs.
//
// Batch ≡ scalar invariant: the two 64-lane batch engines — the
// encryptor (EncryptBurstsBatch: 64 independent (Kc, COUNT) bursts
// per boolean-clock pass) and the table chain-replay engine
// (Table.RecoverBatch: the distinguished-point walks and chain
// replays of many lookups gathered into shared lane-sliced passes) —
// are bit-for-bit equivalent to their scalar twins, EncryptBurst and
// Table.Recover. Only the cipher arithmetic is batched; match order,
// shared-tail skipping and error cases are the scalar path's, so
// callers may switch freely (and equivalence tests pin it).
package a51

import (
	"crypto/cipher"
	"math/bits"
)

// Register geometry from the reference implementation.
const (
	r1Mask = 0x07FFFF // 19 bits
	r2Mask = 0x3FFFFF // 22 bits
	r3Mask = 0x7FFFFF // 23 bits

	r1Mid = 0x000100 // clocking tap: bit 8
	r2Mid = 0x000400 // clocking tap: bit 10
	r3Mid = 0x000400 // clocking tap: bit 10

	r1Taps = 0x072000 // feedback: bits 18,17,16,13
	r2Taps = 0x300000 // feedback: bits 21,20
	r3Taps = 0x700080 // feedback: bits 22,21,20,7

	r1Out = 0x040000 // output: bit 18
	r2Out = 0x200000 // output: bit 21
	r3Out = 0x400000 // output: bit 22
)

// BurstBits is the keystream length per direction per GSM frame.
const BurstBits = 114

// BurstBytes is BurstBits rounded up to whole bytes (the final six
// bits of the 15th byte are zero).
const BurstBytes = (BurstBits + 7) / 8

// Cipher is an initialized A5/1 keystream generator for one (Kc,
// frame) pair. It implements crypto/cipher.Stream for byte-oriented
// use; GSM-faithful 114-bit bursts come from KeystreamBurst.
type Cipher struct {
	r1, r2, r3 uint32
}

var _ cipher.Stream = (*Cipher)(nil)

// parity returns the XOR of all bits of x. OnesCount32 compiles to a
// single POPCNT on amd64 — the clock function is the hottest spot of
// every scalar cipher path (burst synthesis, table builds, lookups),
// so the population-scale campaign leans on this being one
// instruction rather than a shift cascade.
func parity(x uint32) uint32 {
	return uint32(bits.OnesCount32(x) & 1)
}

// clockOne advances one register: shift left, feedback into bit 0.
func clockOne(reg, mask, taps uint32) uint32 {
	return ((reg << 1) & mask) | parity(reg&taps)
}

// clockAll advances all three registers (used only during key/frame
// setup, where clocking is regular).
func (c *Cipher) clockAll() {
	c.r1 = clockOne(c.r1, r1Mask, r1Taps)
	c.r2 = clockOne(c.r2, r2Mask, r2Taps)
	c.r3 = clockOne(c.r3, r3Mask, r3Taps)
}

// clock advances registers by the majority rule: each register steps
// only if its clocking tap agrees with the majority of the three taps.
// The step decision is computed as a mask-select instead of branches:
// the taps are effectively random bits, so branching here mispredicts
// about half the time, and this is the single hottest function of every
// scalar cipher path (table replays, live sniffing, burst decryption).
func (c *Cipher) clock() {
	b1 := (c.r1 >> 8) & 1  // r1Mid
	b2 := (c.r2 >> 10) & 1 // r2Mid
	b3 := (c.r3 >> 10) & 1 // r3Mid
	maj := b1&b2 | b1&b3 | b2&b3
	m1 := -(b1 ^ maj ^ 1) // all-ones when the register steps
	m2 := -(b2 ^ maj ^ 1)
	m3 := -(b3 ^ maj ^ 1)
	c.r1 = (c.r1 &^ m1) | (clockOne(c.r1, r1Mask, r1Taps) & m1)
	c.r2 = (c.r2 &^ m2) | (clockOne(c.r2, r2Mask, r2Taps) & m2)
	c.r3 = (c.r3 &^ m3) | (clockOne(c.r3, r3Mask, r3Taps) & m3)
}

// outBit returns the current output bit: XOR of the three registers'
// top bits (r1Out/r2Out/r3Out are single-bit masks, so plain shifts
// beat three POPCNTs).
func (c *Cipher) outBit() uint32 {
	return ((c.r1 >> 18) ^ (c.r2 >> 21) ^ (c.r3 >> 22)) & 1
}

// New initializes A5/1 for session key kc and the 22-bit frame number.
// Key bits are loaded LSB-first within each byte, bytes most
// significant first, matching the reference implementation's byte
// array {0x12, 0x23, ...} for kc = 0x1223456789ABCDEF.
func New(kc uint64, frame uint32) *Cipher {
	c := &Cipher{}
	c.init(kc, frame)
	return c
}

// init loads kc and frame into a zeroed cipher state. Hot search loops
// call it on a stack-allocated Cipher to avoid New's heap allocation.
func (c *Cipher) init(kc uint64, frame uint32) {
	c.r1, c.r2, c.r3 = 0, 0, 0
	for i := 0; i < 64; i++ {
		c.clockAll()
		keyByte := byte(kc >> (56 - 8*uint(i/8)))
		bit := uint32(keyByte>>(uint(i)&7)) & 1
		c.r1 ^= bit
		c.r2 ^= bit
		c.r3 ^= bit
	}
	for i := 0; i < 22; i++ {
		c.clockAll()
		bit := (frame >> uint(i)) & 1
		c.r1 ^= bit
		c.r2 ^= bit
		c.r3 ^= bit
	}
	for i := 0; i < 100; i++ {
		c.clock()
	}
}

// KeystreamBurst produces the two 114-bit keystream blocks for this
// frame: downlink (network→mobile) then uplink. Bits are packed MSB
// first; the trailing six bits of each 15-byte block are zero.
// A fresh Cipher must be used per frame, as in GSM.
func (c *Cipher) KeystreamBurst() (downlink, uplink [BurstBytes]byte) {
	for i := 0; i < BurstBits; i++ {
		c.clock()
		downlink[i/8] |= byte(c.outBit()) << (7 - uint(i)&7)
	}
	for i := 0; i < BurstBits; i++ {
		c.clock()
		uplink[i/8] |= byte(c.outBit()) << (7 - uint(i)&7)
	}
	return downlink, uplink
}

// XORKeyStream XORs src with keystream into dst, implementing
// cipher.Stream. dst and src must overlap entirely or not at all;
// len(dst) must be >= len(src).
func (c *Cipher) XORKeyStream(dst, src []byte) {
	if len(dst) < len(src) {
		panic("a51: output smaller than input")
	}
	for i, b := range src {
		var ks byte
		for j := 0; j < 8; j++ {
			c.clock()
			ks |= byte(c.outBit()) << (7 - uint(j))
		}
		dst[i] = b ^ ks
	}
}

// EncryptBurst is a convenience that encrypts (or decrypts — the
// operation is an involution) payload with a fresh cipher for (kc,
// frame) using the downlink keystream, matching how the simulated BTS
// protects each SMS burst.
func EncryptBurst(kc uint64, frame uint32, payload []byte) []byte {
	down, _ := New(kc, frame).KeystreamBurst()
	out := make([]byte, len(payload))
	for i := range payload {
		out[i] = payload[i] ^ down[i%BurstBytes]
	}
	return out
}
