package a51

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// allBackends builds one of each Cracker over space for table-covered
// frames [0, frames).
func allBackends(t *testing.T, space KeySpace, frames int) []Cracker {
	t.Helper()
	table, err := BuildTable(space, TableConfig{Frames: FrameRange(frames)})
	if err != nil {
		t.Fatal(err)
	}
	return []Cracker{
		Exhaustive{Workers: 1},
		Exhaustive{Workers: 1, FullBurst: true},
		Exhaustive{},
		Bitsliced{},
		Bitsliced{Workers: 1},
		table,
	}
}

func TestCrackerBackendsAgree(t *testing.T) {
	space := KeySpace{Base: 0x5A5A000000000000, Bits: 10}
	for _, frame := range []uint32{0, 7, 33} {
		for _, idx := range []uint64{0, 1, 511, 1023} {
			kc := space.Key(idx)
			down, _ := New(kc, frame).KeystreamBurst()
			for _, cr := range allBackends(t, space, 40) {
				got, err := cr.Recover(context.Background(), down[:8], frame, space)
				if err != nil {
					t.Fatalf("%s: frame=%d idx=%d: %v", cr.Name(), frame, idx, err)
				}
				if got != kc {
					t.Fatalf("%s: frame=%d idx=%d: got %#x want %#x", cr.Name(), frame, idx, got, kc)
				}
			}
		}
	}
}

func TestCrackerBackendsNotFound(t *testing.T) {
	space := KeySpace{Bits: 8}
	outside := uint64(1) << 20
	down, _ := New(outside, 5).KeystreamBurst()
	for _, cr := range allBackends(t, space, 8) {
		if _, err := cr.Recover(context.Background(), down[:8], 5, space); !errors.Is(err, ErrKeyNotFound) {
			t.Fatalf("%s: err = %v want ErrKeyNotFound", cr.Name(), err)
		}
	}
}

func TestCrackerBackendsShortSample(t *testing.T) {
	for _, cr := range allBackends(t, KeySpace{Bits: 6}, 2) {
		if _, err := cr.Recover(context.Background(), []byte{1, 2}, 0, KeySpace{Bits: 6}); !errors.Is(err, ErrBadKeystream) {
			t.Fatalf("%s: err = %v want ErrBadKeystream", cr.Name(), err)
		}
	}
}

func TestBitslicedCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	bogus := []byte{0xFF, 0xEE, 0xDD, 0xCC, 0xBB, 0xAA, 0x99, 0x88}
	_, err := Bitsliced{Workers: 2}.Recover(ctx, bogus, 0, KeySpace{Bits: 20})
	if err != context.Canceled {
		t.Fatalf("err = %v want context.Canceled", err)
	}
}

func TestBitslicedFullSpaceRejected(t *testing.T) {
	if _, err := (Bitsliced{}).Recover(context.Background(), make([]byte, 8), 0, KeySpace{Bits: 64}); !errors.Is(err, ErrSpaceTooLarge) {
		t.Fatalf("err = %v want ErrSpaceTooLarge", err)
	}
}

// TestBitslicedKeystreamEquivalence is the property test: the
// bitsliced engine must generate bit-identical keystream to the scalar
// cipher for random (key, frame) pairs across all 64 lanes.
func TestBitslicedKeystreamEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		rng.Seed(seed)
		frame := rng.Uint32() & 0x3FFFFF
		keys := make([]uint64, bsLanes)
		for i := range keys {
			keys[i] = rng.Uint64()
		}
		sliced := bsKeystream(keys, frame, BurstBits)
		for l, kc := range keys {
			down, _ := New(kc, frame).KeystreamBurst()
			if !bytes.Equal(sliced[l], down[:]) {
				t.Logf("lane %d: key %#x frame %#x: bitsliced %x != scalar %x", l, kc, frame, sliced[l], down)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestBitslicedPartialBatch exercises lanes-shorter-than-64 batches
// and the reference KAT vector through the bitsliced path.
func TestBitslicedPartialBatch(t *testing.T) {
	keys := []uint64{katKey, katKey + 1, 3}
	sliced := bsKeystream(keys, katFrame, BurstBits)
	for l, kc := range keys {
		down, _ := New(kc, katFrame).KeystreamBurst()
		if !bytes.Equal(sliced[l], down[:]) {
			t.Fatalf("lane %d diverges from scalar", l)
		}
	}
}

func TestEncryptBurstWraparound(t *testing.T) {
	// A payload longer than one burst's keystream reuses the downlink
	// block cyclically: byte i is XORed with keystream byte i mod
	// BurstBytes.
	payload := bytes.Repeat([]byte("ABCDEFGHIJ"), 5) // 50 bytes > BurstBytes
	ct := EncryptBurst(katKey, 12, payload)
	if len(ct) != len(payload) {
		t.Fatalf("ciphertext length %d want %d", len(ct), len(payload))
	}
	down, _ := New(katKey, 12).KeystreamBurst()
	for i := range payload {
		if want := payload[i] ^ down[i%BurstBytes]; ct[i] != want {
			t.Fatalf("byte %d: got %#x want %#x (keystream must wrap at %d bytes)", i, ct[i], want, BurstBytes)
		}
	}
	if got := EncryptBurst(katKey, 12, ct); !bytes.Equal(got, payload) {
		t.Fatal("EncryptBurst is not an involution on wrapped payloads")
	}
}

func TestTableRecoverAcrossFrames(t *testing.T) {
	space := KeySpace{Base: 0x1122000000000000, Bits: 12}
	table, err := BuildTable(space, TableConfig{Frames: FrameRange(DefaultTableFrames)})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 25; trial++ {
		kc := space.Key(rng.Uint64())
		frame := uint32(rng.Intn(DefaultTableFrames))
		down, _ := New(kc, frame).KeystreamBurst()
		got, err := table.Recover(context.Background(), down[:8], frame, space)
		if err != nil {
			t.Fatalf("trial %d frame %d: %v", trial, frame, err)
		}
		if got != kc {
			t.Fatalf("trial %d: got %#x want %#x", trial, got, kc)
		}
	}
}

func TestTableUncoveredFrameFallsBack(t *testing.T) {
	space := KeySpace{Bits: 8}
	table, err := BuildTable(space, TableConfig{Frames: FrameRange(4)})
	if err != nil {
		t.Fatal(err)
	}
	kc := space.Key(200)
	frame := uint32(999) // far outside the window
	down, _ := New(kc, frame).KeystreamBurst()
	got, err := table.Recover(context.Background(), down[:8], frame, space)
	if err != nil {
		t.Fatal(err)
	}
	if got != kc {
		t.Fatalf("fallback got %#x want %#x", got, kc)
	}
}

func TestTableSpaceMismatch(t *testing.T) {
	table, err := BuildTable(KeySpace{Bits: 6}, TableConfig{Frames: FrameRange(1)})
	if err != nil {
		t.Fatal(err)
	}
	_, err = table.Recover(context.Background(), make([]byte, 8), 0, KeySpace{Bits: 7})
	if !errors.Is(err, ErrTableSpaceMismatch) {
		t.Fatalf("err = %v want ErrTableSpaceMismatch", err)
	}
}

func TestTableSaveLoadRoundTrip(t *testing.T) {
	space := KeySpace{Base: 0xC118000000000000, Bits: 10}
	table, err := BuildTable(space, TableConfig{Frames: FrameRange(8), ChainLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := table.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Space() != space {
		t.Fatalf("loaded space %+v want %+v", loaded.Space(), space)
	}
	if len(loaded.Frames()) != 8 {
		t.Fatalf("loaded %d frames want 8", len(loaded.Frames()))
	}
	kc := space.Key(777)
	frame := uint32(5)
	down, _ := New(kc, frame).KeystreamBurst()
	got, err := loaded.Recover(context.Background(), down[:8], frame, space)
	if err != nil {
		t.Fatal(err)
	}
	if got != kc {
		t.Fatalf("loaded table got %#x want %#x", got, kc)
	}
}

func TestLoadTableRejectsGarbage(t *testing.T) {
	if _, err := LoadTable(bytes.NewReader([]byte("not a table at all"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestNewCrackerFactory(t *testing.T) {
	space := KeySpace{Bits: 8}
	for name, want := range map[string]string{
		"":           "bitsliced",
		"bitsliced":  "bitsliced",
		"exhaustive": "exhaustive",
		"parallel":   "exhaustive-parallel",
		"table":      "table",
	} {
		cr, err := NewCracker(name, space, 0)
		if err != nil {
			t.Fatalf("NewCracker(%q): %v", name, err)
		}
		if cr.Name() != want {
			t.Fatalf("NewCracker(%q).Name() = %q want %q", name, cr.Name(), want)
		}
	}
	if _, err := NewCracker("quantum", space, 0); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

// The backend-comparison benchmark lives at the repo root as
// BenchmarkAblationCrackKeyspace (bench_test.go), which CI runs; only
// the bitsliced primitive gets a package-local microbenchmark here.
func BenchmarkBitslicedBatch(b *testing.B) {
	space := KeySpace{Base: 0x9900000000000000, Bits: 16}
	down, _ := New(space.Key(65535), 8).KeystreamBurst()
	var keys [bsLanes]uint64
	for i := range keys {
		keys[i] = space.Key(uint64(i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, hit := bsMatch(keys[:], 8, down[:8]); hit {
			b.Fatal("unexpected match")
		}
	}
}
