package a51

// This file is the bitsliced *encryptor* — the synthesis-side twin of
// the bitsliced search backend in bitslice.go. Cracking packs 64
// candidate keys against one frame; radio synthesis has the opposite
// shape: 64 independent (Kc, COUNT) pairs, one burst each. The
// population-scale campaign engine encrypts every victim's OTP sessions
// through here, so one pass of the shared boolean clock replaces 64
// scalar cipher setups (and skips the 114 uplink clocks the scalar
// EncryptBurst pays for and throws away).

// BatchLanes is the number of (Kc, COUNT) pairs one bitsliced encryptor
// pass carries: one cipher per bit position of a uint64.
const BatchLanes = bsLanes

// loadPairs initializes the lanes for up to 64 independent (key, frame)
// pairs, mirroring Cipher.init bit for bit. It is the per-lane-frame
// counterpart of load: the search path broadcasts one frame across all
// lanes, the encryptor gives every lane its own COUNT value.
func (s *bsState) loadPairs(keys []uint64, frames []uint32) {
	s.loadKeys(keys)
	for i := 0; i < 22; i++ {
		s.clockAll()
		var plane uint64
		for l, fn := range frames {
			plane |= uint64(fn>>uint(i)&1) << uint(l)
		}
		s.r1[0] ^= plane
		s.r2[0] ^= plane
		s.r3[0] ^= plane
	}
	for i := 0; i < 100; i++ {
		s.clock()
	}
}

// transpose64 transposes a 64×64 bit matrix in place (Hacker's Delight
// §7-3): element (r, c) is bit (63-c) of a[r]. The encryptor uses it to
// turn 64 output planes (one word per clock, one lane per bit) into 64
// per-lane keystream words (one word per lane, one clock per bit).
func transpose64(a *[64]uint64) {
	m := uint64(0x00000000FFFFFFFF)
	for j := uint(32); j != 0; j >>= 1 {
		for k := uint(0); k < 64; k = (k + j + 1) &^ j {
			t := (a[k] ^ (a[k+j] >> j)) & m
			a[k] ^= t
			a[k+j] ^= t << j
		}
		m ^= m << (j >> 1)
	}
}

// downlinkBatch generates the 114-bit downlink keystream burst for up
// to 64 (key, frame) pairs in one bitsliced pass, writing lane l's
// burst into out[l] with the same MSB-first packing KeystreamBurst
// uses. Lanes beyond len(keys) are left untouched.
func downlinkBatch(keys []uint64, frames []uint32, out *[bsLanes][BurstBytes]byte) {
	var s bsState
	s.loadPairs(keys, frames)
	// Collect the output planes — plane i holds every lane's keystream
	// bit i — then transpose 64 planes at a time back into per-lane
	// words. BurstBits = 114 spans two transpose blocks; the unused tail
	// planes of the second block stay zero, so the trailing six bits of
	// byte 14 are zero exactly as the scalar packing leaves them.
	var planes [2][64]uint64
	for i := 0; i < BurstBits; i++ {
		s.clock()
		planes[i>>6][i&63] = s.out()
	}
	for half := 0; half < 2; half++ {
		transpose64(&planes[half])
		for l := range keys {
			// After the transpose, bit (63-i) of word (63-l) is lane l's
			// keystream bit i of this block: the word reads MSB-first, so
			// its bytes are the burst bytes in order.
			w := planes[half][63-l]
			for j := 0; j < 8 && half*8+j < BurstBytes; j++ {
				out[l][half*8+j] = byte(w >> (56 - 8*uint(j)))
			}
		}
	}
}

// EncryptBurstsBatch XORs each payloads[i] in place with the downlink
// keystream of (kcs[i], frames[i]) — the batch counterpart of
// EncryptBurst (an involution, so it decrypts too). Bursts are
// processed BatchLanes at a time, so any batch size is accepted;
// payloads longer than BurstBytes wrap the keystream exactly as
// EncryptBurst does. The three slices must have equal length.
func EncryptBurstsBatch(kcs []uint64, frames []uint32, payloads [][]byte) {
	if len(frames) != len(kcs) || len(payloads) != len(kcs) {
		panic("a51: EncryptBurstsBatch slice lengths differ")
	}
	var ks [bsLanes][BurstBytes]byte
	for base := 0; base < len(kcs); base += bsLanes {
		end := base + bsLanes
		if end > len(kcs) {
			end = len(kcs)
		}
		downlinkBatch(kcs[base:end], frames[base:end], &ks)
		for l, p := range payloads[base:end] {
			for i := range p {
				p[i] ^= ks[l][i%BurstBytes]
			}
		}
	}
}
