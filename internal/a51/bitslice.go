package a51

import "context"

// bsLanes is the number of candidate keys one bitsliced state carries:
// one key per bit position of a uint64.
const bsLanes = 64

// bsState is a bitsliced A5/1 state: each register bit becomes one
// uint64 word whose 64 bit positions are 64 independent cipher lanes.
// A single boolean operation on a word therefore advances all 64
// candidate ciphers at once — the classic 30–60× per-candidate speedup
// real-world A5/1 crackers rely on.
type bsState struct {
	r1 [19]uint64
	r2 [22]uint64
	r3 [23]uint64
}

// clockAll advances all three registers in every lane (regular
// clocking, used only during key/frame setup).
func (s *bsState) clockAll() {
	fb1 := s.r1[18] ^ s.r1[17] ^ s.r1[16] ^ s.r1[13]
	fb2 := s.r2[21] ^ s.r2[20]
	fb3 := s.r3[22] ^ s.r3[21] ^ s.r3[20] ^ s.r3[7]
	copy(s.r1[1:], s.r1[:18])
	copy(s.r2[1:], s.r2[:21])
	copy(s.r3[1:], s.r3[:22])
	s.r1[0] = fb1
	s.r2[0] = fb2
	s.r3[0] = fb3
}

// clock advances the registers by the majority rule independently in
// every lane: m1/m2/m3 are per-lane masks of which registers step, and
// each bit plane conditionally shifts under its mask.
func (s *bsState) clock() {
	b1, b2, b3 := s.r1[8], s.r2[10], s.r3[10]
	maj := b1&b2 | b1&b3 | b2&b3
	m1 := ^(b1 ^ maj)
	m2 := ^(b2 ^ maj)
	m3 := ^(b3 ^ maj)
	fb1 := s.r1[18] ^ s.r1[17] ^ s.r1[16] ^ s.r1[13]
	fb2 := s.r2[21] ^ s.r2[20]
	fb3 := s.r3[22] ^ s.r3[21] ^ s.r3[20] ^ s.r3[7]
	for j := 18; j > 0; j-- {
		s.r1[j] = m1&s.r1[j-1] | ^m1&s.r1[j]
	}
	s.r1[0] = m1&fb1 | ^m1&s.r1[0]
	for j := 21; j > 0; j-- {
		s.r2[j] = m2&s.r2[j-1] | ^m2&s.r2[j]
	}
	s.r2[0] = m2&fb2 | ^m2&s.r2[0]
	for j := 22; j > 0; j-- {
		s.r3[j] = m3&s.r3[j-1] | ^m3&s.r3[j]
	}
	s.r3[0] = m3&fb3 | ^m3&s.r3[0]
}

// out returns the per-lane output bit plane: XOR of the three
// registers' top bits.
func (s *bsState) out() uint64 {
	return s.r1[18] ^ s.r2[21] ^ s.r3[22]
}

// revBitsInBytes reverses the bit order within each byte of x (bytes
// stay in place): three mask-shift rounds instead of eight table
// lookups.
func revBitsInBytes(x uint64) uint64 {
	const m1 = 0x5555555555555555
	const m2 = 0x3333333333333333
	const m4 = 0x0F0F0F0F0F0F0F0F
	x = (x&m1)<<1 | (x>>1)&m1
	x = (x&m2)<<2 | (x>>2)&m2
	x = (x&m4)<<4 | (x>>4)&m4
	return x
}

// loadKeys zeroes the state and runs the 64 regular clocks mixing in
// per-lane key bits — the first stage of Cipher.init mirrored bit for
// bit, shared by the search path (load), the encryptor (loadPairs) and
// the replay engine so the key schedule lives in exactly one place.
//
// The per-clock key-bit planes are one 64×64 bit transpose of the key
// words: clock i mixes in key bit (56 - 8*(i/8) + i&7) of every lane,
// which is bit (63-i) after reversing the bit order within each byte.
// Building the planes with transpose64 replaces the former 64×64
// scalar bit gather — the second-hottest spot of every batch pass.
func (s *bsState) loadKeys(keys []uint64) {
	*s = bsState{}
	var planes [64]uint64
	for l, kc := range keys {
		planes[63-l] = revBitsInBytes(kc)
	}
	transpose64(&planes)
	for i := 0; i < 64; i++ {
		s.clockAll()
		s.r1[0] ^= planes[i]
		s.r2[0] ^= planes[i]
		s.r3[0] ^= planes[i]
	}
}

// load initializes the lanes for up to 64 candidate keys and one frame
// number, mirroring Cipher.init bit for bit: 64 regular clocks mixing
// in per-lane key bits, 22 regular clocks mixing in the (broadcast)
// frame bits, then 100 irregular clocks.
func (s *bsState) load(keys []uint64, frame uint32) {
	s.loadKeys(keys)
	for i := 0; i < 22; i++ {
		s.clockAll()
		plane := -uint64(frame >> uint(i) & 1) // 0 or all-ones: same bit in every lane
		s.r1[0] ^= plane
		s.r2[0] ^= plane
		s.r3[0] ^= plane
	}
	for i := 0; i < 100; i++ {
		s.clock()
	}
}

// bsKeystream generates nbits of downlink keystream for up to 64 keys
// at once, returning one MSB-first packed byte slice per key — the
// bitsliced counterpart of KeystreamBurst, used by the table build and
// the scalar-equivalence property test.
func bsKeystream(keys []uint64, frame uint32, nbits int) [][]byte {
	var s bsState
	s.load(keys, frame)
	out := make([][]byte, len(keys))
	for l := range out {
		out[l] = make([]byte, (nbits+7)/8)
	}
	for i := 0; i < nbits; i++ {
		s.clock()
		plane := s.out()
		for l := range out {
			out[l][i/8] |= byte(plane>>uint(l)&1) << (7 - uint(i)&7)
		}
	}
	return out
}

// bsMatch scans up to 64 candidate keys against a keystream prefix in
// one bitsliced pass. Lanes die on their first mismatched bit (the
// alive mask clears), and the whole batch exits as soon as every lane
// is dead — typically within ~log2(64)+ε output clocks. Survivors are
// re-verified with the scalar matcher before being returned.
func bsMatch(keys []uint64, frame uint32, keystream []byte) (uint64, bool) {
	var s bsState
	s.load(keys, frame)
	alive := ^uint64(0)
	if len(keys) < bsLanes {
		alive = uint64(1)<<uint(len(keys)) - 1
	}
	nbits := len(keystream) * 8
	if nbits > BurstBits {
		nbits = BurstBits
	}
	for i := 0; i < nbits; i++ {
		s.clock()
		want := -uint64(keystream[i/8] >> (7 - uint(i)&7) & 1)
		alive &= ^(s.out() ^ want)
		if alive == 0 {
			return 0, false
		}
	}
	for l := 0; l < len(keys); l++ {
		if alive&(1<<uint(l)) != 0 && matches(keys[l], frame, keystream) {
			return keys[l], true
		}
	}
	return 0, false
}

// Bitsliced is the 64-lane search backend: it packs 64 candidate keys
// into uint64 bit planes and clocks all of them with one sequence of
// boolean operations, batching the key space 64 candidates at a time.
type Bitsliced struct {
	// Workers is the number of concurrent batch scanners: 0 means
	// GOMAXPROCS, 1 serial.
	Workers int
}

var _ Cracker = Bitsliced{}

// Name implements Cracker.
func (b Bitsliced) Name() string { return "bitsliced" }

// Recover implements Cracker.
func (b Bitsliced) Recover(ctx context.Context, keystream []byte, frame uint32, space KeySpace) (uint64, error) {
	if len(keystream) < minSampleBytes {
		return 0, ErrBadKeystream
	}
	n, ok := space.Size()
	if !ok {
		return 0, ErrSpaceTooLarge
	}
	batches := (n + bsLanes - 1) / bsLanes
	return searchStrided(ctx, batches, b.Workers, func(bi uint64) (uint64, bool) {
		var buf [bsLanes]uint64
		base := bi * bsLanes
		count := uint64(bsLanes)
		if base+count > n {
			count = n - base
		}
		keys := buf[:count]
		for j := range keys {
			keys[j] = space.Key(base + uint64(j))
		}
		return bsMatch(keys, frame, keystream)
	})
}
