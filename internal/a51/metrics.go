package a51

import "github.com/actfort/actfort/internal/obs"

// TMTO lookup telemetry, registered on the process-wide obs registry.
// Handles are package-level so the hot paths (Table.Recover and the
// batched replay engine) pay only atomic adds — one per lookup or per
// batch, never per chain position. Campaign-scale context for the
// numbers: lookups arrive deduplicated by the sniffer's Kc caches, so
// these count distinct crack attempts, not sessions.
var (
	metLookups = obs.Default.NewCounter("a51_tmto_lookups_total",
		"A5/1 key recoveries attempted against the TMTO table (scalar and batched).")
	metReplays = obs.Default.NewCounter("a51_chain_replays_total",
		"Stored chains replayed while resolving lookups (merge basins make this >1 per lookup).")
	metWalkSteps = obs.Default.NewHistogram("a51_dp_walk_steps",
		"Distinguished-point walk length per lookup, in fingerprint steps.",
		obs.ExpBuckets(1, 2, 10))
	metFallbacks = obs.Default.NewCounter("a51_exhaustive_fallbacks_total",
		"Lookups on frames outside the table window, resolved by the bitsliced exhaustive sweep.")
)
