package a51

// This file is the bitsliced chain-replay engine — the lookup-side
// counterpart of the bitsliced encryptor in encrypt.go. A table lookup
// spends almost all of its time recomputing keystream fingerprints:
// first walking from the observed fingerprint to the next distinguished
// point, then replaying every stored chain that ends there, one cipher
// setup per chain position. Recover does that walk with the scalar
// clock, one keystream at a time; RecoverBatch gathers the candidate
// positions of MANY lookups (all the sessions of a sniffer FeedBatch
// call, plus every chain of each lookup's window) and runs them through
// the existing lane-sliced clock 64 at a time, falling back to the
// scalar clock only for sub-64 remainders below scalarReplayCutoff.
//
// Equivalence contract: for every sample, RecoverBatch returns exactly
// what Recover returns. Only fingerprint computation is batched; the
// match tests, the shared-tail visited set and the chain visit order
// run in the same order as the scalar path, so even pathological
// fingerprint collisions resolve identically.

import (
	"context"
	"fmt"
	"sync"

	"github.com/actfort/actfort/internal/slab"
)

// Sample is one key-recovery request: the keystream derived from a
// known-plaintext burst and the COUNT frame value it was ciphered
// under. It is the unit batched recovery (BatchCracker) works in.
type Sample struct {
	Keystream []byte
	Frame     uint32
}

// BatchCracker is the optional batched extension of Cracker: backends
// that can amortize recovery work across samples — the table backend
// bitslices its chain replays across every sample of a call — implement
// it, and batch-oriented callers (sniffer.FeedBatch) use RecoverAll to
// pick it up. Results must be identical, sample for sample, to calling
// Recover once per sample.
type BatchCracker interface {
	Cracker
	RecoverBatch(ctx context.Context, samples []Sample, space KeySpace) (keys []uint64, errs []error)
}

// RecoverAll resolves every sample through cr: one RecoverBatch call
// when the backend implements BatchCracker, a per-sample Recover loop
// otherwise. keys[i] is meaningful only when errs[i] is nil.
func RecoverAll(ctx context.Context, cr Cracker, samples []Sample, space KeySpace) (keys []uint64, errs []error) {
	if bc, ok := cr.(BatchCracker); ok {
		return bc.RecoverBatch(ctx, samples, space)
	}
	keys = make([]uint64, len(samples))
	errs = make([]error, len(samples))
	for i, s := range samples {
		keys[i], errs[i] = cr.Recover(ctx, s.Keystream, s.Frame, space)
	}
	return keys, errs
}

// scalarReplayCutoff is the lane count below which a gather round uses
// the scalar fingerprint instead of a bitsliced pass. One 64-lane pass
// costs roughly eight scalar cipher setups of boolean work, so the
// thin tail of a batch (the last few walkers, a lone lookup's final
// chains) is cheaper one key at a time.
const scalarReplayCutoff = 8

// fpBatch computes the tableFPBits-bit keystream fingerprints of up to
// 64 (key, frame) pairs in one pass of the lane-sliced clock: the
// replay-side use of the loadPairs + transpose machinery the encryptor
// introduced. Each lane may carry its own frame, which is what lets a
// FeedBatch-sized batch mix sessions scheduled on different paging
// blocks. out[l] receives lane l's fingerprint, packed like fp40.
func fpBatch(keys []uint64, frames []uint32, out []uint64) {
	var s bsState
	s.loadPairs(keys, frames)
	var planes [64]uint64
	for i := 0; i < tableFPBits; i++ {
		s.clock()
		planes[i] = s.out()
	}
	transpose64(&planes)
	for l := range keys {
		// After the transpose, word (63-l) holds lane l's keystream
		// MSB-first; the fingerprint is its top tableFPBits bits.
		out[l] = planes[63-l] >> (64 - tableFPBits)
	}
}

// lookup phases of the batched state machine.
const (
	phaseWalk   = iota // stepping toward the next distinguished point
	phaseReplay        // consuming chain fingerprints in scalar order
	phaseDone          // key recovered, exhausted, or errored
)

// lookupState tracks one sample through the batched walk + replay.
type lookupState struct {
	sample int // index into the samples slice
	ft     *frameTable
	frame  uint32
	fp     uint64
	phase  int

	// Walk state: the current chain position and how many
	// distinguished-point checks have run (scalar Recover gives up
	// after maxWalk+1 of them).
	y      uint64
	checks int

	// Replay state: the stored chains at the reached endpoint, the
	// index of this lookup's first cursor, and the scalar-order
	// consumer position (chain index, position within it, current key
	// index, shared-tail visited set). The visited set is the scratch
	// stamp array (gen != 0) for small spaces, a map otherwise; both
	// implement exactly the scalar path's set-membership semantics.
	chains     []chainRef
	cursorBase int
	chainIdx   int
	posIdx     int
	p          uint64
	gen        uint32
	visited    map[uint64]struct{}
}

// replayCursor precomputes the fingerprints of one stored chain, in
// chain order, ahead of the lookup's scalar-order consumer. Cursors
// are what the gather rounds feed through fpBatch.
type replayCursor struct {
	lookup    int    // index into the lookups slice
	pos       uint64 // next key index to fingerprint
	remaining uint32 // chain positions left to compute; 0 = dead
	fps       []uint64
}

// replayScratch is the reusable memory of one RecoverBatch call,
// recycled through a sync.Pool so campaign-scale lookup streams do not
// pay an allocation storm per shard.
type replayScratch struct {
	lookups    []lookupState
	cursors    []replayCursor
	laneKeys   []uint64
	laneFrames []uint32
	laneFPs    []uint64
	laneOwner  []int32 // >= 0: walker (lookup index); < 0: cursor index ^owner
	fpSlab     slab.Slab[uint64]
	// stamp is the shared-tail visited set for spaces up to
	// stampMaxKeys: stamp[pos] == a lookup's generation means pos was
	// replayed for that lookup. Generations make clearing free — the
	// array persists across calls and only wraps (with one clear) every
	// 2^32 lookups. Larger spaces fall back to a per-lookup map.
	stamp   []uint32
	lastGen uint32
}

// stampMaxKeys bounds the visited stamp array at 4 MiB; the 24-bit
// table build ceiling would want 64 MiB, which is not worth pinning in
// a pooled scratch.
const stampMaxKeys = 1 << 20

// nextGen hands out a fresh, never-in-the-array generation.
func (rs *replayScratch) nextGen() uint32 {
	rs.lastGen++
	if rs.lastGen == 0 { // wrapped: retire every stale stamp
		clear(rs.stamp)
		rs.lastGen = 1
	}
	return rs.lastGen
}

var replayScratchPool = sync.Pool{New: func() any { return new(replayScratch) }}

// fpBuf carves an empty fixed-capacity fingerprint buffer of capacity
// n from the scratch slab arena; carves stay valid as the arena grows
// (see internal/slab), so cursors created early in a batch never alias
// later ones.
func (rs *replayScratch) fpBuf(n int) []uint64 {
	return rs.fpSlab.GrabEmpty(n)
}

func (rs *replayScratch) reset() {
	// Drop the chain/map/buffer references before truncating, so the
	// pooled scratch retains capacity, not table internals.
	clear(rs.lookups)
	clear(rs.cursors)
	rs.lookups = rs.lookups[:0]
	rs.cursors = rs.cursors[:0]
	rs.fpSlab.Reset()
}

// RecoverBatch implements BatchCracker: it resolves every sample with
// the same overflow check, distinguished-point walk and chain replay as
// Recover, but gathers the fingerprint computations of all samples —
// walk steps and chain positions alike — into 64-lane bitsliced passes.
// Samples on frames outside the precomputed window go through the
// bitsliced-sweep fallback exactly as in Recover.
func (t *Table) RecoverBatch(ctx context.Context, samples []Sample, space KeySpace) (keys []uint64, errs []error) {
	keys = make([]uint64, len(samples))
	errs = make([]error, len(samples))
	if space != t.space {
		// Mirror Recover's check order per sample: an unusably short
		// keystream reports ErrBadKeystream even on a mismatched space.
		err := fmt.Errorf("%w: built for base=%#x bits=%d, asked for base=%#x bits=%d",
			ErrTableSpaceMismatch, t.space.Base, t.space.Bits, space.Base, space.Bits)
		for i := range errs {
			if len(samples[i].Keystream) < minSampleBytes {
				errs[i] = ErrBadKeystream
			} else {
				errs[i] = err
			}
		}
		return keys, errs
	}
	n, _ := space.Size()

	rs := replayScratchPool.Get().(*replayScratch)
	defer func() {
		rs.reset()
		replayScratchPool.Put(rs)
	}()

	// Classify: resolve overflow hits immediately, queue covered-frame
	// samples into the batched state machine, defer uncovered frames to
	// the sweep fallback.
	var fallback []int
	for si := range samples {
		s := &samples[si]
		if len(s.Keystream) < minSampleBytes {
			errs[si] = ErrBadKeystream
			continue
		}
		metLookups.Inc()
		ft := t.frames[s.Frame]
		if ft == nil {
			fallback = append(fallback, si)
			continue
		}
		fp := fp40(s.Keystream)
		resolved := false
		for _, x := range ft.overflow[fp] {
			if key := space.Key(x); matches(key, s.Frame, s.Keystream) {
				keys[si] = key
				resolved = true
				break
			}
		}
		if resolved {
			continue
		}
		rs.lookups = append(rs.lookups, lookupState{
			sample: si, ft: ft, frame: s.Frame, fp: fp,
			phase: phaseWalk, y: fp & (n - 1),
		})
	}

	t.runReplayRounds(ctx, rs, samples, space, n, keys, errs)

	metFallbacks.Add(int64(len(fallback)))
	for _, si := range fallback {
		keys[si], errs[si] = t.fallback.Recover(ctx, samples[si].Keystream, samples[si].Frame, space)
	}
	return keys, errs
}

// runReplayRounds drives the batched state machine to completion: each
// round transitions walkers that reached a distinguished point into
// replay, gathers one fingerprint per active walker and cursor, runs
// the gathered lanes through fpBatch (scalar below the cutoff), applies
// the results, and pumps each lookup's scalar-order consumer.
func (t *Table) runReplayRounds(ctx context.Context, rs *replayScratch, samples []Sample, space KeySpace, n uint64, keys []uint64, errs []error) {
	dpMask := t.chainLen - 1
	for {
		if err := ctx.Err(); err != nil {
			for li := range rs.lookups {
				if rs.lookups[li].phase != phaseDone {
					errs[rs.lookups[li].sample] = err
				}
			}
			return
		}

		// Transition phase: distinguished-point checks, replay setup.
		for li := range rs.lookups {
			lk := &rs.lookups[li]
			if lk.phase != phaseWalk {
				continue
			}
			if lk.y&dpMask == 0 {
				metWalkSteps.Observe(float64(lk.checks))
				metReplays.Add(int64(len(lk.ft.chains[lk.y])))
				lk.phase = phaseReplay
				lk.chains = lk.ft.chains[lk.y]
				lk.cursorBase = len(rs.cursors)
				lk.gen, lk.visited = 0, nil
				if len(lk.chains) > 1 {
					// Same laziness as the scalar path: a lone chain has
					// no shared tails to skip, so the visited set is only
					// built when merges are possible.
					if n <= stampMaxKeys {
						if uint64(len(rs.stamp)) < n {
							rs.stamp = make([]uint32, n)
						}
						lk.gen = rs.nextGen()
					} else {
						lk.visited = make(map[uint64]struct{}, t.maxWalk)
					}
				}
				for _, ch := range lk.chains {
					rs.cursors = append(rs.cursors, replayCursor{
						lookup:    li,
						pos:       ch.start,
						remaining: ch.length,
						fps:       rs.fpBuf(int(ch.length)),
					})
				}
				// Zero-chain endpoints resolve right here, as the scalar
				// walk does when it breaks out of an empty replay loop.
				t.pumpLookup(lk, rs, samples, space, n, keys, errs)
			} else if lk.checks++; lk.checks > t.maxWalk {
				errs[lk.sample] = ErrKeyNotFound
				lk.phase = phaseDone
			}
		}

		// Gather phase: one lane per walker still walking, one per live
		// cursor.
		rs.laneKeys = rs.laneKeys[:0]
		rs.laneFrames = rs.laneFrames[:0]
		rs.laneOwner = rs.laneOwner[:0]
		for li := range rs.lookups {
			lk := &rs.lookups[li]
			if lk.phase == phaseWalk {
				rs.laneKeys = append(rs.laneKeys, space.Key(lk.y))
				rs.laneFrames = append(rs.laneFrames, lk.frame)
				rs.laneOwner = append(rs.laneOwner, int32(li))
			}
		}
		for ci := range rs.cursors {
			cur := &rs.cursors[ci]
			if cur.remaining == 0 {
				continue
			}
			rs.laneKeys = append(rs.laneKeys, space.Key(cur.pos))
			rs.laneFrames = append(rs.laneFrames, rs.lookups[cur.lookup].frame)
			rs.laneOwner = append(rs.laneOwner, int32(^ci))
		}
		if len(rs.laneKeys) == 0 {
			return
		}

		// Fingerprint phase: full 64-lane blocks through the bitsliced
		// clock; a sub-cutoff remainder runs the scalar clock instead.
		if cap(rs.laneFPs) < len(rs.laneKeys) {
			rs.laneFPs = make([]uint64, len(rs.laneKeys))
		}
		rs.laneFPs = rs.laneFPs[:len(rs.laneKeys)]
		for base := 0; base < len(rs.laneKeys); base += bsLanes {
			end := base + bsLanes
			if end > len(rs.laneKeys) {
				end = len(rs.laneKeys)
			}
			if end-base < scalarReplayCutoff {
				for l := base; l < end; l++ {
					rs.laneFPs[l] = scalarFingerprint(rs.laneKeys[l], rs.laneFrames[l])
				}
				continue
			}
			fpBatch(rs.laneKeys[base:end], rs.laneFrames[base:end], rs.laneFPs[base:end])
		}

		// Apply phase: walkers step, cursors record and step; then each
		// replaying lookup's consumer pumps once, as far as the round's
		// new fingerprints allow.
		for l, owner := range rs.laneOwner {
			fp := rs.laneFPs[l]
			if owner >= 0 {
				lk := &rs.lookups[owner]
				if lk.phase == phaseWalk { // may have errored this round
					lk.y = fp & (n - 1)
				}
				continue
			}
			cur := &rs.cursors[^owner]
			cur.fps = append(cur.fps, fp)
			cur.pos = fp & (n - 1)
			cur.remaining--
		}
		for li := range rs.lookups {
			if rs.lookups[li].phase == phaseReplay {
				t.pumpLookup(&rs.lookups[li], rs, samples, space, n, keys, errs)
			}
		}
	}
}

// pumpLookup advances one lookup's consumer: the exact scalar replay
// loop of Recover — chains in stored order, positions in chain order,
// shared tails skipped through the visited set, candidates verified
// with the scalar matcher — except that fingerprints are read from the
// cursors' precomputed buffers instead of the scalar clock. It stops
// when it runs out of computed fingerprints; the final pump resolves
// the sample (match, or ErrKeyNotFound after the last chain).
func (t *Table) pumpLookup(lk *lookupState, rs *replayScratch, samples []Sample, space KeySpace, n uint64, keys []uint64, errs []error) {
	if lk.phase != phaseReplay {
		return
	}
	for lk.chainIdx < len(lk.chains) {
		ch := lk.chains[lk.chainIdx]
		cur := &rs.cursors[lk.cursorBase+lk.chainIdx]
		if lk.posIdx == 0 {
			lk.p = ch.start
		}
		for lk.posIdx < int(ch.length) {
			var seen bool
			if lk.gen != 0 {
				seen = rs.stamp[lk.p] == lk.gen
			} else if lk.visited != nil {
				_, seen = lk.visited[lk.p]
			}
			if seen {
				break // shared tail: already replayed
			}
			if lk.posIdx >= len(cur.fps) {
				return // cursor has not computed this far yet
			}
			if lk.gen != 0 {
				rs.stamp[lk.p] = lk.gen
			} else if lk.visited != nil {
				lk.visited[lk.p] = struct{}{}
			}
			pfp := cur.fps[lk.posIdx]
			if pfp == lk.fp {
				if key := space.Key(lk.p); matches(key, lk.frame, samples[lk.sample].Keystream) {
					keys[lk.sample] = key
					lk.phase = phaseDone
					for c := 0; c < len(lk.chains); c++ {
						rs.cursors[lk.cursorBase+c].remaining = 0
					}
					return
				}
			}
			lk.p = pfp & (n - 1)
			lk.posIdx++
		}
		// Chain fully consumed (exhausted or shared tail): its cursor
		// has nothing left to contribute.
		cur.remaining = 0
		lk.chainIdx++
		lk.posIdx = 0
	}
	errs[lk.sample] = ErrKeyNotFound
	lk.phase = phaseDone
}

// scalarFingerprint is the one-key fingerprint the sub-cutoff remainder
// lanes use — identical to Table.fingerprint but standalone so the
// replay engine does not need a table receiver per lane.
func scalarFingerprint(key uint64, frame uint32) uint64 {
	var c Cipher
	c.init(key, frame)
	var fp uint64
	for i := 0; i < tableFPBits; i++ {
		c.clock()
		fp = fp<<1 | uint64(c.outBit())
	}
	return fp
}
