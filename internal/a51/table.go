package a51

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"runtime"
	"sort"
	"sync"
)

// DefaultTableFrames is the contiguous frame window FrameRange-based
// callers (tests, ablations) conventionally use: one GSM
// 51-multiframe. Tables built with no explicit frame set default to
// PagingFrames() instead — the COUNT frame classes the network can
// actually put a known-plaintext paging burst on — the reduced-scale
// analogue of the Kraken tables covering the full cipher state space.
const DefaultTableFrames = 51

// tableFPBits is the keystream-prefix fingerprint width. 40 bits
// matches minSampleBytes, so every sample a Cracker is required to
// accept can be fingerprinted.
const tableFPBits = 40

// defaultChainLen is the default mean distinguished-point chain
// length. Longer chains store fewer (start, length) pairs but deepen
// the merge basins a lookup must replay; 8 keeps worst-case replays
// small while still shrinking the table severalfold versus a direct
// fingerprint→key index. (A total-coverage table cannot reach the
// full ~chainLen× reduction of classic Hellman tables, which buy it
// by abandoning a fraction of the space.)
const defaultChainLen = 8

// FrameRange returns the frames [0, n) — the window helper shared by
// table builders and the CLI.
func FrameRange(n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = uint32(i)
	}
	return out
}

// TableConfig parameterizes BuildTable.
type TableConfig struct {
	// Frames lists the frame numbers to precompute; nil means
	// PagingFrames(), the COUNT classes paging bursts land on.
	Frames []uint32
	// ChainLen is the target mean distinguished-point chain length
	// (rounded to a power of two, clamped to the space); 0 means
	// defaultChainLen. Longer chains trade lookup time for memory.
	ChainLen int
	// Workers is the build parallelism across frames; 0 means
	// GOMAXPROCS.
	Workers int
}

// chainRef locates one stored chain: it starts at key index start and
// covers length key indices before terminating at its distinguished
// endpoint.
type chainRef struct {
	start  uint64
	length uint32
}

// frameTable is the per-frame slice of the trade-off.
type frameTable struct {
	// chains indexes stored chains by their distinguished endpoint.
	chains map[uint64][]chainRef
	// overflow holds keys on distinguished-point-free cycles, indexed
	// directly by fingerprint so coverage stays total.
	overflow map[uint64][]uint64
}

// Table is the precomputed time–memory trade-off: built once per
// KeySpace, it answers per-message key recovery in O(chain length)
// cipher setups instead of an O(2^Bits) sweep. Chains follow the
// classic distinguished-point construction: the successor of key index
// x is reduce(fingerprint(x)), chains end at indices whose low bits
// are zero, and only (start, length) pairs are stored. Every key in
// the space is on a stored chain or in the overflow index, so lookups
// for covered frames are exact, not probabilistic. Frames outside the
// precomputed window fall back to a bitsliced sweep.
//
// Table is immutable after build and safe for concurrent use.
type Table struct {
	space    KeySpace
	chainLen uint64
	maxWalk  int
	frames   map[uint32]*frameTable
	fallback Bitsliced
}

var _ Cracker = (*Table)(nil)

// ErrTableSpaceMismatch reports a Recover call whose space differs
// from the one the table was built for.
var ErrTableSpaceMismatch = errors.New("a51: table built for a different key space")

// BuildTable precomputes the trade-off for space over cfg.Frames. The
// build costs one fingerprint per (key, frame) pair — the same work an
// exhaustive search pays per message, paid once up front — and uses
// the bitsliced engine 64 keys at a time.
func BuildTable(space KeySpace, cfg TableConfig) (*Table, error) {
	n, ok := space.Size()
	if !ok {
		return nil, ErrSpaceTooLarge
	}
	// The build holds per-worker O(2^Bits) scratch (fingerprints,
	// coverage, in-degrees ≈ 10 bytes/key); 24 bits ≈ 160 MB/worker is
	// the practical ceiling for the in-memory design.
	if space.Bits > 24 {
		return nil, fmt.Errorf("a51: table build supports key spaces up to 24 bits, got %d", space.Bits)
	}
	frames := cfg.Frames
	if len(frames) == 0 {
		frames = PagingFrames()
	}
	chainLen := uint64(cfg.ChainLen)
	if chainLen == 0 {
		chainLen = defaultChainLen
	}
	// Round down to a power of two and keep at least ~8 chains.
	for chainLen&(chainLen-1) != 0 {
		chainLen &= chainLen - 1
	}
	for chainLen > 1 && chainLen > n/8 {
		chainLen >>= 1
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(frames) {
		workers = len(frames)
	}

	t := &Table{
		space:    space,
		chainLen: chainLen,
		// Stored chains are capped at 4×chainLen: paths that run
		// longer without meeting a distinguished point (P ≈ e^-4) go
		// to the overflow index instead, which bounds both replay cost
		// and the walk below.
		maxWalk: int(4 * chainLen),
		frames:  make(map[uint32]*frameTable, len(frames)),
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	frameCh := make(chan uint32)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fps := make([]uint64, n)
			for frame := range frameCh {
				ft := buildFrame(space, frame, fps, chainLen, t.maxWalk)
				mu.Lock()
				t.frames[frame] = ft
				mu.Unlock()
			}
		}()
	}
	for _, f := range frames {
		frameCh <- f
	}
	close(frameCh)
	wg.Wait()
	return t, nil
}

// buildFrame computes one frame's chains. fps is a caller-owned
// scratch buffer of len n, filled with every key's fingerprint via the
// bitsliced engine; chain construction is then pure array walking.
func buildFrame(space KeySpace, frame uint32, fps []uint64, chainLen uint64, maxWalk int) *frameTable {
	n := uint64(len(fps))
	var keys [bsLanes]uint64
	for base := uint64(0); base < n; base += bsLanes {
		count := uint64(bsLanes)
		if base+count > n {
			count = n - base
		}
		batch := keys[:count]
		for j := range batch {
			batch[j] = space.Key(base + uint64(j))
		}
		for l, ks := range bsKeystream(batch, frame, tableFPBits) {
			fps[base+uint64(l)] = fp40(ks)
		}
	}

	ft := &frameTable{
		chains:   make(map[uint64][]chainRef),
		overflow: make(map[uint64][]uint64),
	}
	dpMask := chainLen - 1
	covered := make([]bool, n)
	path := make([]uint64, 0, maxWalk)
	sweep := func(x uint64) {
		if covered[x] {
			return
		}
		path = path[:0]
		cur := x
		stored := false
		for len(path) < maxWalk {
			path = append(path, cur)
			next := fps[cur] & (n - 1)
			if next&dpMask == 0 {
				ft.chains[next] = append(ft.chains[next], chainRef{start: x, length: uint32(len(path))})
				stored = true
				break
			}
			cur = next
		}
		if stored {
			for _, p := range path {
				covered[p] = true
			}
		} else {
			// Distinguished-point-free stretch (a cycle dodging every
			// DP): index its members directly so coverage stays total.
			for _, p := range path {
				if !covered[p] {
					ft.overflow[fps[p]] = append(ft.overflow[fps[p]], p)
					covered[p] = true
				}
			}
		}
	}
	// Source-first sweep: chains started at indices no other index
	// maps to are maximal, so they cover the most keys per stored
	// (start, length) pair; the second pass mops up cycle members.
	indeg := make([]uint8, n)
	for x := uint64(0); x < n; x++ {
		next := fps[x] & (n - 1)
		if indeg[next] < 255 {
			indeg[next]++
		}
	}
	for x := uint64(0); x < n; x++ {
		if indeg[x] == 0 {
			sweep(x)
		}
	}
	for x := uint64(0); x < n; x++ {
		sweep(x)
	}
	return ft
}

// fp40 extracts the 40-bit fingerprint from an MSB-first packed
// keystream sample.
func fp40(ks []byte) uint64 {
	return uint64(ks[0])<<32 | uint64(ks[1])<<24 | uint64(ks[2])<<16 |
		uint64(ks[3])<<8 | uint64(ks[4])
}

// fingerprint recomputes key index x's 40-bit keystream fingerprint
// at lookup time; reducing it modulo the space size yields the chain
// successor.
func (t *Table) fingerprint(x uint64, frame uint32) uint64 {
	var c Cipher
	c.init(t.space.Key(x), frame)
	var fp uint64
	for i := 0; i < tableFPBits; i++ {
		c.clock()
		fp = fp<<1 | uint64(c.outBit())
	}
	return fp
}

// Name implements Cracker.
func (t *Table) Name() string { return "table" }

// Identity digests the table's full geometry — key space, chain
// length and covered frame set — into one string. Campaign checkpoints
// pin it in the run manifest: resuming a journal against a different
// table would change crack outcomes mid-run, so the manifest must
// refuse it loudly.
func (t *Table) Identity() string {
	h := fnv.New64a()
	var b [4]byte
	for _, f := range t.Frames() {
		binary.LittleEndian.PutUint32(b[:], f)
		_, _ = h.Write(b[:])
	}
	return fmt.Sprintf("table/base=%#x/bits=%d/chainlen=%d/frames=%d:%016x",
		t.space.Base, t.space.Bits, t.chainLen, len(t.frames), h.Sum64())
}

// Space returns the key space the table was built for.
func (t *Table) Space() KeySpace { return t.space }

// Frames returns the sorted frame numbers the table covers.
func (t *Table) Frames() []uint32 {
	out := make([]uint32, 0, len(t.frames))
	for f := range t.frames {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Recover implements Cracker: overflow hit, or walk from the observed
// fingerprint to the next distinguished point and replay the chains
// stored there. A miss after a complete walk proves no key in the
// space generates the sample (coverage is total), so it returns
// ErrKeyNotFound without any sweeping. Frames outside the precomputed
// window fall back to the bitsliced sweep.
func (t *Table) Recover(ctx context.Context, keystream []byte, frame uint32, space KeySpace) (uint64, error) {
	if len(keystream) < minSampleBytes {
		return 0, ErrBadKeystream
	}
	if space != t.space {
		return 0, fmt.Errorf("%w: built for base=%#x bits=%d, asked for base=%#x bits=%d",
			ErrTableSpaceMismatch, t.space.Base, t.space.Bits, space.Base, space.Bits)
	}
	metLookups.Inc()
	ft := t.frames[frame]
	if ft == nil {
		metFallbacks.Inc()
		return t.fallback.Recover(ctx, keystream, frame, space)
	}
	n, _ := space.Size()
	fp := fp40(keystream)

	for _, x := range ft.overflow[fp] {
		if key := space.Key(x); matches(key, frame, keystream) {
			return key, nil
		}
	}

	y := fp & (n - 1)
	dpMask := t.chainLen - 1
	for steps := 0; steps <= t.maxWalk; steps++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		if y&dpMask == 0 {
			metWalkSteps.Observe(float64(steps))
			metReplays.Add(int64(len(ft.chains[y])))
			// Replay every chain ending at this distinguished point,
			// comparing fingerprints (one cipher setup per position).
			// Chains started from different keys share their tails
			// after a merge, so visited positions are skipped: total
			// replay work is bounded by the number of distinct key
			// indices feeding this endpoint, not the sum of chain
			// lengths. A lone chain has no tails to share, so the
			// per-lookup visited set (a real allocation cost when a
			// campaign runs millions of lookups) is built lazily.
			var visited map[uint64]struct{}
			if len(ft.chains[y]) > 1 {
				visited = make(map[uint64]struct{}, t.maxWalk)
			}
			for _, ch := range ft.chains[y] {
				p := ch.start
				for j := uint32(0); j < ch.length; j++ {
					if _, seen := visited[p]; seen {
						break // shared tail: already replayed
					}
					if visited != nil {
						visited[p] = struct{}{}
					}
					pfp := t.fingerprint(p, frame)
					if pfp == fp {
						if key := space.Key(p); matches(key, frame, keystream) {
							return key, nil
						}
					}
					p = pfp & (n - 1)
				}
			}
			break
		}
		y = t.fingerprint(y, frame) & (n - 1)
	}
	return 0, ErrKeyNotFound
}

// --- serialization (the "ship the tables" step of the real attack) ---

// tableMagic versions the on-disk format: v2 seals the body behind a
// length prefix and a CRC32C, so a truncated download or a bit-flipped
// disk block fails loudly at load instead of replaying garbage chains.
var tableMagic = [8]byte{'A', '5', '1', 'T', 'M', 'T', 'O', '2'}

// tableMagicV1 is the unsealed pre-checksum format, recognized only to
// reject it with a clear message.
var tableMagicV1 = [8]byte{'A', '5', '1', 'T', 'M', 'T', 'O', '1'}

// maxTableBody caps the declared body length (a 24-bit space at the
// densest chain geometry stays far below it); anything larger is a
// corrupt header, not an allocation request.
const maxTableBody = 1 << 32

// ErrTableCorrupt reports a table file that failed structural
// validation: truncated, checksum mismatch, or fields outside the key
// space they claim to cover.
var ErrTableCorrupt = errors.New("a51: corrupt TMTO table file")

// tableCRC is the Castagnoli polynomial sealing the body.
var tableCRC = crc32.MakeTable(crc32.Castagnoli)

// Save writes the table in a flat binary format, so a precomputed
// trade-off can be distributed and reloaded (LoadTable) instead of
// rebuilt — the analogue of downloading the Kraken table set. Layout:
// magic, little-endian u64 body length, body, CRC32C(body).
func (t *Table) Save(w io.Writer) error {
	var body bytes.Buffer
	putU64 := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		body.Write(b[:])
	}
	putU32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		body.Write(b[:])
	}
	putU64(t.space.Base)
	putU32(uint32(t.space.Bits))
	putU64(t.chainLen)
	putU32(uint32(len(t.frames)))
	for _, frame := range t.Frames() {
		ft := t.frames[frame]
		putU32(frame)
		ends := make([]uint64, 0, len(ft.chains))
		for e := range ft.chains {
			ends = append(ends, e)
		}
		sort.Slice(ends, func(i, j int) bool { return ends[i] < ends[j] })
		putU32(uint32(len(ends)))
		for _, e := range ends {
			putU64(e)
			putU32(uint32(len(ft.chains[e])))
			for _, ch := range ft.chains[e] {
				putU64(ch.start)
				putU32(ch.length)
			}
		}
		fps := make([]uint64, 0, len(ft.overflow))
		for fp := range ft.overflow {
			fps = append(fps, fp)
		}
		sort.Slice(fps, func(i, j int) bool { return fps[i] < fps[j] })
		putU32(uint32(len(fps)))
		for _, fp := range fps {
			putU64(fp)
			putU32(uint32(len(ft.overflow[fp])))
			for _, x := range ft.overflow[fp] {
				putU64(x)
			}
		}
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(tableMagic[:]); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(body.Len()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := bw.Write(body.Bytes()); err != nil {
		return err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.Checksum(body.Bytes(), tableCRC))
	if _, err := bw.Write(sum[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// tableReader walks a validated table body with sticky, positioned
// errors.
type tableReader struct {
	data []byte
	off  int
	err  error
}

func (r *tableReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: at byte %d: %s", ErrTableCorrupt, r.off, fmt.Sprintf(format, args...))
	}
}

func (r *tableReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.data) {
		r.fail("truncated (need 8 bytes, %d left)", len(r.data)-r.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v
}

func (r *tableReader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.data) {
		r.fail("truncated (need 4 bytes, %d left)", len(r.data)-r.off)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v
}

// need pre-checks that count items of size bytes each fit in the
// remaining body, so a corrupt count fails with a clear message
// instead of a slow byte-by-byte EOF walk.
func (r *tableReader) need(count uint32, size int, what string) bool {
	if r.err != nil {
		return false
	}
	if int64(count)*int64(size) > int64(len(r.data)-r.off) {
		r.fail("%s count %d exceeds remaining %d bytes", what, count, len(r.data)-r.off)
		return false
	}
	return true
}

// LoadTable reads a table Save wrote, validating the length prefix,
// the body checksum and every structural field — chain starts,
// lengths, overflow keys and fingerprints must all lie inside the key
// space and walk bounds the header declares. Corruption of any kind
// returns an error wrapping ErrTableCorrupt; no partially built table
// ever escapes.
func LoadTable(r io.Reader) (*Table, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("a51: reading table header: %w", err)
	}
	if magic == tableMagicV1 {
		return nil, errors.New("a51: v1 TMTO table file (no integrity seal); rebuild and re-save the table")
	}
	if magic != tableMagic {
		return nil, errors.New("a51: not an A5/1 TMTO table file")
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: reading body length: %v", ErrTableCorrupt, err)
	}
	bodyLen := binary.LittleEndian.Uint64(hdr[:])
	if bodyLen > maxTableBody {
		return nil, fmt.Errorf("%w: implausible body length %d", ErrTableCorrupt, bodyLen)
	}
	body := make([]byte, bodyLen)
	if _, err := io.ReadFull(br, body); err != nil {
		return nil, fmt.Errorf("%w: body truncated: %v", ErrTableCorrupt, err)
	}
	var sum [4]byte
	if _, err := io.ReadFull(br, sum[:]); err != nil {
		return nil, fmt.Errorf("%w: checksum truncated: %v", ErrTableCorrupt, err)
	}
	if got := crc32.Checksum(body, tableCRC); got != binary.LittleEndian.Uint32(sum[:]) {
		return nil, fmt.Errorf("%w: CRC32C mismatch (file damaged in transit or at rest)", ErrTableCorrupt)
	}

	tr := &tableReader{data: body}
	t := &Table{frames: make(map[uint32]*frameTable)}
	t.space.Base = tr.u64()
	t.space.Bits = int(tr.u32())
	t.chainLen = tr.u64()
	t.maxWalk = int(4 * t.chainLen)
	if tr.err == nil && (t.space.Bits <= 0 || t.space.Bits > 24 ||
		t.chainLen == 0 || t.chainLen > 1<<20 || t.chainLen&(t.chainLen-1) != 0) {
		tr.fail("invalid geometry (bits=%d chainLen=%d)", t.space.Bits, t.chainLen)
	}
	var n uint64
	if tr.err == nil {
		n = uint64(1) << t.space.Bits
	}
	nframes := tr.u32()
	for i := uint32(0); i < nframes && tr.err == nil; i++ {
		frame := tr.u32()
		if _, dup := t.frames[frame]; dup {
			tr.fail("frame %d listed twice", frame)
			break
		}
		ft := &frameTable{
			chains:   make(map[uint64][]chainRef),
			overflow: make(map[uint64][]uint64),
		}
		nends := tr.u32()
		for j := uint32(0); j < nends && tr.err == nil; j++ {
			end := tr.u64()
			if tr.err == nil && end >= n {
				tr.fail("chain endpoint %#x outside %d-bit space", end, t.space.Bits)
				break
			}
			nchains := tr.u32()
			if !tr.need(nchains, 12, "chain") {
				break
			}
			refs := make([]chainRef, 0, nchains)
			for k := uint32(0); k < nchains && tr.err == nil; k++ {
				ref := chainRef{start: tr.u64(), length: tr.u32()}
				if tr.err != nil {
					break
				}
				if ref.start >= n || ref.length == 0 || int(ref.length) > t.maxWalk {
					tr.fail("chain (start=%#x len=%d) outside space/walk bounds", ref.start, ref.length)
					break
				}
				refs = append(refs, ref)
			}
			ft.chains[end] = refs
		}
		nfps := tr.u32()
		for j := uint32(0); j < nfps && tr.err == nil; j++ {
			fp := tr.u64()
			if tr.err == nil && fp >= 1<<tableFPBits {
				tr.fail("overflow fingerprint %#x wider than %d bits", fp, tableFPBits)
				break
			}
			nkeys := tr.u32()
			if !tr.need(nkeys, 8, "overflow key") {
				break
			}
			keys := make([]uint64, 0, nkeys)
			for k := uint32(0); k < nkeys && tr.err == nil; k++ {
				x := tr.u64()
				if tr.err == nil && x >= n {
					tr.fail("overflow key index %#x outside %d-bit space", x, t.space.Bits)
					break
				}
				keys = append(keys, x)
			}
			ft.overflow[fp] = keys
		}
		t.frames[frame] = ft
	}
	if tr.err == nil && tr.off != len(body) {
		tr.fail("%d trailing bytes after last frame", len(body)-tr.off)
	}
	if tr.err != nil {
		return nil, tr.err
	}
	return t, nil
}
