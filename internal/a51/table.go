package a51

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
)

// DefaultTableFrames is the contiguous frame window FrameRange-based
// callers (tests, ablations) conventionally use: one GSM
// 51-multiframe. Tables built with no explicit frame set default to
// PagingFrames() instead — the COUNT frame classes the network can
// actually put a known-plaintext paging burst on — the reduced-scale
// analogue of the Kraken tables covering the full cipher state space.
const DefaultTableFrames = 51

// tableFPBits is the keystream-prefix fingerprint width. 40 bits
// matches minSampleBytes, so every sample a Cracker is required to
// accept can be fingerprinted.
const tableFPBits = 40

// defaultChainLen is the default mean distinguished-point chain
// length. Longer chains store fewer (start, length) pairs but deepen
// the merge basins a lookup must replay; 8 keeps worst-case replays
// small while still shrinking the table severalfold versus a direct
// fingerprint→key index. (A total-coverage table cannot reach the
// full ~chainLen× reduction of classic Hellman tables, which buy it
// by abandoning a fraction of the space.)
const defaultChainLen = 8

// FrameRange returns the frames [0, n) — the window helper shared by
// table builders and the CLI.
func FrameRange(n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = uint32(i)
	}
	return out
}

// TableConfig parameterizes BuildTable.
type TableConfig struct {
	// Frames lists the frame numbers to precompute; nil means
	// PagingFrames(), the COUNT classes paging bursts land on.
	Frames []uint32
	// ChainLen is the target mean distinguished-point chain length
	// (rounded to a power of two, clamped to the space); 0 means
	// defaultChainLen. Longer chains trade lookup time for memory.
	ChainLen int
	// Workers is the build parallelism across frames; 0 means
	// GOMAXPROCS.
	Workers int
}

// chainRef locates one stored chain: it starts at key index start and
// covers length key indices before terminating at its distinguished
// endpoint.
type chainRef struct {
	start  uint64
	length uint32
}

// frameTable is the per-frame slice of the trade-off.
type frameTable struct {
	// chains indexes stored chains by their distinguished endpoint.
	chains map[uint64][]chainRef
	// overflow holds keys on distinguished-point-free cycles, indexed
	// directly by fingerprint so coverage stays total.
	overflow map[uint64][]uint64
}

// Table is the precomputed time–memory trade-off: built once per
// KeySpace, it answers per-message key recovery in O(chain length)
// cipher setups instead of an O(2^Bits) sweep. Chains follow the
// classic distinguished-point construction: the successor of key index
// x is reduce(fingerprint(x)), chains end at indices whose low bits
// are zero, and only (start, length) pairs are stored. Every key in
// the space is on a stored chain or in the overflow index, so lookups
// for covered frames are exact, not probabilistic. Frames outside the
// precomputed window fall back to a bitsliced sweep.
//
// Table is immutable after build and safe for concurrent use.
type Table struct {
	space    KeySpace
	chainLen uint64
	maxWalk  int
	frames   map[uint32]*frameTable
	fallback Bitsliced
}

var _ Cracker = (*Table)(nil)

// ErrTableSpaceMismatch reports a Recover call whose space differs
// from the one the table was built for.
var ErrTableSpaceMismatch = errors.New("a51: table built for a different key space")

// BuildTable precomputes the trade-off for space over cfg.Frames. The
// build costs one fingerprint per (key, frame) pair — the same work an
// exhaustive search pays per message, paid once up front — and uses
// the bitsliced engine 64 keys at a time.
func BuildTable(space KeySpace, cfg TableConfig) (*Table, error) {
	n, ok := space.Size()
	if !ok {
		return nil, ErrSpaceTooLarge
	}
	// The build holds per-worker O(2^Bits) scratch (fingerprints,
	// coverage, in-degrees ≈ 10 bytes/key); 24 bits ≈ 160 MB/worker is
	// the practical ceiling for the in-memory design.
	if space.Bits > 24 {
		return nil, fmt.Errorf("a51: table build supports key spaces up to 24 bits, got %d", space.Bits)
	}
	frames := cfg.Frames
	if len(frames) == 0 {
		frames = PagingFrames()
	}
	chainLen := uint64(cfg.ChainLen)
	if chainLen == 0 {
		chainLen = defaultChainLen
	}
	// Round down to a power of two and keep at least ~8 chains.
	for chainLen&(chainLen-1) != 0 {
		chainLen &= chainLen - 1
	}
	for chainLen > 1 && chainLen > n/8 {
		chainLen >>= 1
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(frames) {
		workers = len(frames)
	}

	t := &Table{
		space:    space,
		chainLen: chainLen,
		// Stored chains are capped at 4×chainLen: paths that run
		// longer without meeting a distinguished point (P ≈ e^-4) go
		// to the overflow index instead, which bounds both replay cost
		// and the walk below.
		maxWalk: int(4 * chainLen),
		frames:  make(map[uint32]*frameTable, len(frames)),
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	frameCh := make(chan uint32)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fps := make([]uint64, n)
			for frame := range frameCh {
				ft := buildFrame(space, frame, fps, chainLen, t.maxWalk)
				mu.Lock()
				t.frames[frame] = ft
				mu.Unlock()
			}
		}()
	}
	for _, f := range frames {
		frameCh <- f
	}
	close(frameCh)
	wg.Wait()
	return t, nil
}

// buildFrame computes one frame's chains. fps is a caller-owned
// scratch buffer of len n, filled with every key's fingerprint via the
// bitsliced engine; chain construction is then pure array walking.
func buildFrame(space KeySpace, frame uint32, fps []uint64, chainLen uint64, maxWalk int) *frameTable {
	n := uint64(len(fps))
	var keys [bsLanes]uint64
	for base := uint64(0); base < n; base += bsLanes {
		count := uint64(bsLanes)
		if base+count > n {
			count = n - base
		}
		batch := keys[:count]
		for j := range batch {
			batch[j] = space.Key(base + uint64(j))
		}
		for l, ks := range bsKeystream(batch, frame, tableFPBits) {
			fps[base+uint64(l)] = fp40(ks)
		}
	}

	ft := &frameTable{
		chains:   make(map[uint64][]chainRef),
		overflow: make(map[uint64][]uint64),
	}
	dpMask := chainLen - 1
	covered := make([]bool, n)
	path := make([]uint64, 0, maxWalk)
	sweep := func(x uint64) {
		if covered[x] {
			return
		}
		path = path[:0]
		cur := x
		stored := false
		for len(path) < maxWalk {
			path = append(path, cur)
			next := fps[cur] & (n - 1)
			if next&dpMask == 0 {
				ft.chains[next] = append(ft.chains[next], chainRef{start: x, length: uint32(len(path))})
				stored = true
				break
			}
			cur = next
		}
		if stored {
			for _, p := range path {
				covered[p] = true
			}
		} else {
			// Distinguished-point-free stretch (a cycle dodging every
			// DP): index its members directly so coverage stays total.
			for _, p := range path {
				if !covered[p] {
					ft.overflow[fps[p]] = append(ft.overflow[fps[p]], p)
					covered[p] = true
				}
			}
		}
	}
	// Source-first sweep: chains started at indices no other index
	// maps to are maximal, so they cover the most keys per stored
	// (start, length) pair; the second pass mops up cycle members.
	indeg := make([]uint8, n)
	for x := uint64(0); x < n; x++ {
		next := fps[x] & (n - 1)
		if indeg[next] < 255 {
			indeg[next]++
		}
	}
	for x := uint64(0); x < n; x++ {
		if indeg[x] == 0 {
			sweep(x)
		}
	}
	for x := uint64(0); x < n; x++ {
		sweep(x)
	}
	return ft
}

// fp40 extracts the 40-bit fingerprint from an MSB-first packed
// keystream sample.
func fp40(ks []byte) uint64 {
	return uint64(ks[0])<<32 | uint64(ks[1])<<24 | uint64(ks[2])<<16 |
		uint64(ks[3])<<8 | uint64(ks[4])
}

// fingerprint recomputes key index x's 40-bit keystream fingerprint
// at lookup time; reducing it modulo the space size yields the chain
// successor.
func (t *Table) fingerprint(x uint64, frame uint32) uint64 {
	var c Cipher
	c.init(t.space.Key(x), frame)
	var fp uint64
	for i := 0; i < tableFPBits; i++ {
		c.clock()
		fp = fp<<1 | uint64(c.outBit())
	}
	return fp
}

// Name implements Cracker.
func (t *Table) Name() string { return "table" }

// Space returns the key space the table was built for.
func (t *Table) Space() KeySpace { return t.space }

// Frames returns the sorted frame numbers the table covers.
func (t *Table) Frames() []uint32 {
	out := make([]uint32, 0, len(t.frames))
	for f := range t.frames {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Recover implements Cracker: overflow hit, or walk from the observed
// fingerprint to the next distinguished point and replay the chains
// stored there. A miss after a complete walk proves no key in the
// space generates the sample (coverage is total), so it returns
// ErrKeyNotFound without any sweeping. Frames outside the precomputed
// window fall back to the bitsliced sweep.
func (t *Table) Recover(ctx context.Context, keystream []byte, frame uint32, space KeySpace) (uint64, error) {
	if len(keystream) < minSampleBytes {
		return 0, ErrBadKeystream
	}
	if space != t.space {
		return 0, fmt.Errorf("%w: built for base=%#x bits=%d, asked for base=%#x bits=%d",
			ErrTableSpaceMismatch, t.space.Base, t.space.Bits, space.Base, space.Bits)
	}
	ft := t.frames[frame]
	if ft == nil {
		return t.fallback.Recover(ctx, keystream, frame, space)
	}
	n, _ := space.Size()
	fp := fp40(keystream)

	for _, x := range ft.overflow[fp] {
		if key := space.Key(x); matches(key, frame, keystream) {
			return key, nil
		}
	}

	y := fp & (n - 1)
	dpMask := t.chainLen - 1
	for steps := 0; steps <= t.maxWalk; steps++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		if y&dpMask == 0 {
			// Replay every chain ending at this distinguished point,
			// comparing fingerprints (one cipher setup per position).
			// Chains started from different keys share their tails
			// after a merge, so visited positions are skipped: total
			// replay work is bounded by the number of distinct key
			// indices feeding this endpoint, not the sum of chain
			// lengths. A lone chain has no tails to share, so the
			// per-lookup visited set (a real allocation cost when a
			// campaign runs millions of lookups) is built lazily.
			var visited map[uint64]struct{}
			if len(ft.chains[y]) > 1 {
				visited = make(map[uint64]struct{}, t.maxWalk)
			}
			for _, ch := range ft.chains[y] {
				p := ch.start
				for j := uint32(0); j < ch.length; j++ {
					if _, seen := visited[p]; seen {
						break // shared tail: already replayed
					}
					if visited != nil {
						visited[p] = struct{}{}
					}
					pfp := t.fingerprint(p, frame)
					if pfp == fp {
						if key := space.Key(p); matches(key, frame, keystream) {
							return key, nil
						}
					}
					p = pfp & (n - 1)
				}
			}
			break
		}
		y = t.fingerprint(y, frame) & (n - 1)
	}
	return 0, ErrKeyNotFound
}

// --- serialization (the "ship the tables" step of the real attack) ---

// tableMagic versions the on-disk format.
var tableMagic = [8]byte{'A', '5', '1', 'T', 'M', 'T', 'O', '1'}

// Save writes the table in a flat binary format, so a precomputed
// trade-off can be distributed and reloaded (LoadTable) instead of
// rebuilt — the analogue of downloading the Kraken table set.
func (t *Table) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(tableMagic[:]); err != nil {
		return err
	}
	putU64 := func(v uint64) { binary.Write(bw, binary.LittleEndian, v) }
	putU32 := func(v uint32) { binary.Write(bw, binary.LittleEndian, v) }
	putU64(t.space.Base)
	putU32(uint32(t.space.Bits))
	putU64(t.chainLen)
	putU32(uint32(len(t.frames)))
	for _, frame := range t.Frames() {
		ft := t.frames[frame]
		putU32(frame)
		ends := make([]uint64, 0, len(ft.chains))
		for e := range ft.chains {
			ends = append(ends, e)
		}
		sort.Slice(ends, func(i, j int) bool { return ends[i] < ends[j] })
		putU32(uint32(len(ends)))
		for _, e := range ends {
			putU64(e)
			putU32(uint32(len(ft.chains[e])))
			for _, ch := range ft.chains[e] {
				putU64(ch.start)
				putU32(ch.length)
			}
		}
		fps := make([]uint64, 0, len(ft.overflow))
		for fp := range ft.overflow {
			fps = append(fps, fp)
		}
		sort.Slice(fps, func(i, j int) bool { return fps[i] < fps[j] })
		putU32(uint32(len(fps)))
		for _, fp := range fps {
			putU64(fp)
			putU32(uint32(len(ft.overflow[fp])))
			for _, x := range ft.overflow[fp] {
				putU64(x)
			}
		}
	}
	return bw.Flush()
}

// LoadTable reads a table Save wrote.
func LoadTable(r io.Reader) (*Table, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("a51: reading table header: %w", err)
	}
	if magic != tableMagic {
		return nil, errors.New("a51: not an A5/1 TMTO table file")
	}
	var err error
	getU64 := func() (v uint64) {
		if err == nil {
			err = binary.Read(br, binary.LittleEndian, &v)
		}
		return v
	}
	getU32 := func() (v uint32) {
		if err == nil {
			err = binary.Read(br, binary.LittleEndian, &v)
		}
		return v
	}
	t := &Table{frames: make(map[uint32]*frameTable)}
	t.space.Base = getU64()
	t.space.Bits = int(getU32())
	t.chainLen = getU64()
	t.maxWalk = int(4 * t.chainLen)
	if t.space.Bits <= 0 || t.space.Bits > 24 ||
		t.chainLen == 0 || t.chainLen > 1<<20 || t.chainLen&(t.chainLen-1) != 0 {
		return nil, errors.New("a51: corrupt table header")
	}
	nframes := getU32()
	for i := uint32(0); i < nframes && err == nil; i++ {
		frame := getU32()
		ft := &frameTable{
			chains:   make(map[uint64][]chainRef),
			overflow: make(map[uint64][]uint64),
		}
		nends := getU32()
		for j := uint32(0); j < nends && err == nil; j++ {
			end := getU64()
			nchains := getU32()
			// Grow by appending rather than trusting the count for a
			// single allocation: a corrupt length field then fails on
			// EOF instead of attempting a multi-gigabyte make().
			var refs []chainRef
			for k := uint32(0); k < nchains && err == nil; k++ {
				refs = append(refs, chainRef{start: getU64(), length: getU32()})
			}
			ft.chains[end] = refs
		}
		nfps := getU32()
		for j := uint32(0); j < nfps && err == nil; j++ {
			fp := getU64()
			nkeys := getU32()
			var keys []uint64
			for k := uint32(0); k < nkeys && err == nil; k++ {
				keys = append(keys, getU64())
			}
			ft.overflow[fp] = keys
		}
		t.frames[frame] = ft
	}
	if err != nil {
		return nil, fmt.Errorf("a51: reading table: %w", err)
	}
	return t, nil
}
