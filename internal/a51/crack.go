package a51

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// KeySpace describes the subspace the simulated network draws session
// keys from: every key is Base with the low Bits bits free. Bits=64
// (with Base=0) is the full space the real rainbow-table attack
// covers; simulations use 12–24 bits so the search backends stand in
// for the time-memory trade-off (see the package comment for why this
// substitution preserves the attack structure).
type KeySpace struct {
	Base uint64
	Bits int
}

// Size returns the number of keys in the space and whether that count
// is representable. ok is false for Bits >= 64, where 2^64 overflows
// uint64: such a space is effectively unbounded and cannot be
// enumerated by any backend in this package.
func (s KeySpace) Size() (n uint64, ok bool) {
	if s.Bits >= 64 {
		return 0, false
	}
	return 1 << uint(s.Bits), true
}

// Contains reports whether key is a member of the space.
func (s KeySpace) Contains(key uint64) bool {
	if s.Bits >= 64 {
		return true
	}
	mask := uint64(1)<<uint(s.Bits) - 1
	return key&^mask == s.Base&^mask
}

// Key materializes the i-th key of the space.
func (s KeySpace) Key(i uint64) uint64 {
	mask := uint64(1)<<uint(s.Bits) - 1
	return (s.Base &^ mask) | (i & mask)
}

// ErrKeyNotFound reports that no key in the space reproduces the
// observed keystream (wrong frame number, wrong space, or corrupted
// capture).
var ErrKeyNotFound = errors.New("a51: no key in space matches keystream")

// ErrBadKeystream reports an unusably short keystream sample.
var ErrBadKeystream = errors.New("a51: keystream sample too short")

// ErrSpaceTooLarge reports a key space no enumeration backend can
// cover (Bits >= 64).
var ErrSpaceTooLarge = errors.New("a51: key space too large for exhaustive search")

// minSampleBytes is the minimum known-keystream prefix needed to make
// false positives negligible: 5 bytes = 40 bits, so a random wrong key
// survives with probability 2^-40 per candidate.
const minSampleBytes = 5

// RecoverKey searches space for the session key that generates the
// observed downlink keystream prefix for the given frame number.
// keystream is the XOR of captured ciphertext with known plaintext —
// exactly what a sniffer derives from predictable GSM system messages.
func RecoverKey(keystream []byte, frame uint32, space KeySpace) (uint64, error) {
	if len(keystream) < minSampleBytes {
		return 0, ErrBadKeystream
	}
	n, ok := space.Size()
	if !ok {
		return 0, ErrSpaceTooLarge
	}
	for i := uint64(0); i < n; i++ {
		key := space.Key(i)
		if matches(key, frame, keystream) {
			return key, nil
		}
	}
	return 0, ErrKeyNotFound
}

// searchResult is the shared first-match state of a parallel search:
// a CAS-guarded winner slot plus an atomic stop flag the hot loops
// poll instead of a context (one uncontended atomic load per
// candidate, no mutex, no channel select).
type searchResult struct {
	stop   atomic.Bool
	found  atomic.Bool
	winner atomic.Uint64
}

// claim records key as the winner if no other worker got there first,
// and stops the search either way.
func (r *searchResult) claim(key uint64) {
	if r.found.CompareAndSwap(false, true) {
		r.winner.Store(key)
	}
	r.stop.Store(true)
}

// watch mirrors ctx cancellation into the stop flag until done closes.
func (r *searchResult) watch(ctx context.Context, done <-chan struct{}) {
	select {
	case <-ctx.Done():
		r.stop.Store(true)
	case <-done:
	}
}

// searchStrided fans a first-match scan over units [0, n) across
// workers goroutines (0 = GOMAXPROCS) in a strided partition — worker
// w takes w, w+workers, ... Every unit scan polls the shared atomic
// stop flag, ctx cancellation is mirrored into that flag by a watcher,
// and the first hit wins the CAS. It is the one fan-out harness behind
// both the per-key exhaustive search and the per-batch bitsliced one.
func searchStrided(ctx context.Context, n uint64, workers int, scan func(i uint64) (uint64, bool)) (uint64, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if uint64(workers) > n {
		workers = int(n)
	}

	var (
		res  searchResult
		wg   sync.WaitGroup
		done = make(chan struct{})
	)
	go res.watch(ctx, done)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := uint64(w); i < n; i += uint64(workers) {
				if res.stop.Load() {
					return
				}
				if key, hit := scan(i); hit {
					res.claim(key)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(done)

	if res.found.Load() {
		return res.winner.Load(), nil
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return 0, ErrKeyNotFound
}

// RecoverKeyParallel is RecoverKey fanned out over workers goroutines
// (default: GOMAXPROCS when workers <= 0). The first match wins via an
// atomic compare-and-swap and stops the rest through an atomic flag;
// ctx aborts the search early with ctx.Err().
func RecoverKeyParallel(ctx context.Context, keystream []byte, frame uint32, space KeySpace, workers int) (uint64, error) {
	if len(keystream) < minSampleBytes {
		return 0, ErrBadKeystream
	}
	n, ok := space.Size()
	if !ok {
		return 0, ErrSpaceTooLarge
	}
	return searchStrided(ctx, n, workers, func(i uint64) (uint64, bool) {
		key := space.Key(i)
		return key, matches(key, frame, keystream)
	})
}

// matches reports whether key reproduces the keystream prefix. It
// compares bit by bit as the cipher clocks and bails at the first
// mismatch, so a wrong candidate costs the 186-clock setup plus on
// average two output clocks — not a full 228-bit burst generation.
func matches(key uint64, frame uint32, keystream []byte) bool {
	nbits := len(keystream) * 8
	if nbits > BurstBits {
		nbits = BurstBits
	}
	var c Cipher
	c.init(key, frame)
	for i := 0; i < nbits; i++ {
		c.clock()
		want := uint32(keystream[i/8]>>(7-uint(i)&7)) & 1
		if c.outBit() != want {
			return false
		}
	}
	return true
}

// matchesFullBurst is the pre-TMTO reference matcher: it generates the
// complete downlink+uplink burst for every candidate before comparing.
// It survives only as the Exhaustive{FullBurst: true} baseline so the
// backend-comparison ablation can measure the seed cost.
func matchesFullBurst(key uint64, frame uint32, keystream []byte) bool {
	down, _ := New(key, frame).KeystreamBurst()
	limit := len(keystream)
	if limit > BurstBytes {
		limit = BurstBytes
	}
	for i := 0; i < limit; i++ {
		if down[i] != keystream[i] {
			return false
		}
	}
	return true
}

// DeriveKeystream recovers keystream bytes from a ciphertext/plaintext
// pair — the known-plaintext step. The slices must be equal length.
func DeriveKeystream(ciphertext, plaintext []byte) ([]byte, error) {
	if len(ciphertext) != len(plaintext) {
		return nil, errors.New("a51: ciphertext/plaintext length mismatch")
	}
	out := make([]byte, len(ciphertext))
	for i := range ciphertext {
		out[i] = ciphertext[i] ^ plaintext[i]
	}
	return out, nil
}
