package a51

import (
	"context"
	"errors"
	"runtime"
	"sync"
)

// KeySpace describes the subspace the simulated network draws session
// keys from: every key is Base with the low Bits bits free. Bits=64
// (with Base=0) is the full space the real rainbow-table attack
// covers; simulations use 12–24 bits so exhaustive search stands in
// for the time-memory trade-off (see the package comment for why this
// substitution preserves the attack structure).
type KeySpace struct {
	Base uint64
	Bits int
}

// Size returns the number of keys in the space.
func (s KeySpace) Size() uint64 {
	if s.Bits >= 64 {
		return 0 // 2^64 overflows; treat as "effectively unbounded"
	}
	return 1 << uint(s.Bits)
}

// Contains reports whether key is a member of the space.
func (s KeySpace) Contains(key uint64) bool {
	if s.Bits >= 64 {
		return true
	}
	mask := uint64(1)<<uint(s.Bits) - 1
	return key&^mask == s.Base&^mask
}

// Key materializes the i-th key of the space.
func (s KeySpace) Key(i uint64) uint64 {
	mask := uint64(1)<<uint(s.Bits) - 1
	return (s.Base &^ mask) | (i & mask)
}

// ErrKeyNotFound reports that no key in the space reproduces the
// observed keystream (wrong frame number, wrong space, or corrupted
// capture).
var ErrKeyNotFound = errors.New("a51: no key in space matches keystream")

// ErrBadKeystream reports an unusably short keystream sample.
var ErrBadKeystream = errors.New("a51: keystream sample too short")

// minSampleBytes is the minimum known-keystream prefix needed to make
// false positives negligible: 5 bytes = 40 bits, so a random wrong key
// survives with probability 2^-40 per candidate.
const minSampleBytes = 5

// RecoverKey searches space for the session key that generates the
// observed downlink keystream prefix for the given frame number.
// keystream is the XOR of captured ciphertext with known plaintext —
// exactly what a sniffer derives from predictable GSM system messages.
func RecoverKey(keystream []byte, frame uint32, space KeySpace) (uint64, error) {
	if len(keystream) < minSampleBytes {
		return 0, ErrBadKeystream
	}
	n := space.Size()
	if n == 0 {
		return 0, errors.New("a51: key space too large for exhaustive search")
	}
	for i := uint64(0); i < n; i++ {
		key := space.Key(i)
		if matches(key, frame, keystream) {
			return key, nil
		}
	}
	return 0, ErrKeyNotFound
}

// RecoverKeyParallel is RecoverKey fanned out over workers goroutines
// (default: GOMAXPROCS when workers <= 0). The first match cancels the
// rest. ctx aborts the search early with ctx.Err().
func RecoverKeyParallel(ctx context.Context, keystream []byte, frame uint32, space KeySpace, workers int) (uint64, error) {
	if len(keystream) < minSampleBytes {
		return 0, ErrBadKeystream
	}
	n := space.Size()
	if n == 0 {
		return 0, errors.New("a51: key space too large for exhaustive search")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if uint64(workers) > n {
		workers = int(n)
	}

	searchCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		found uint64
		ok    bool
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Strided partition: worker w tries w, w+workers, ...
			for i := uint64(w); i < n; i += uint64(workers) {
				if i%1024 == 0 && searchCtx.Err() != nil {
					return
				}
				key := space.Key(i)
				if matches(key, frame, keystream) {
					mu.Lock()
					if !ok {
						found, ok = key, true
					}
					mu.Unlock()
					cancel()
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if ok {
		return found, nil
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return 0, ErrKeyNotFound
}

// matches reports whether key reproduces the keystream prefix.
func matches(key uint64, frame uint32, keystream []byte) bool {
	down, _ := New(key, frame).KeystreamBurst()
	limit := len(keystream)
	if limit > BurstBytes {
		limit = BurstBytes
	}
	for i := 0; i < limit; i++ {
		if down[i] != keystream[i] {
			return false
		}
	}
	return true
}

// DeriveKeystream recovers keystream bytes from a ciphertext/plaintext
// pair — the known-plaintext step. The slices must be equal length.
func DeriveKeystream(ciphertext, plaintext []byte) ([]byte, error) {
	if len(ciphertext) != len(plaintext) {
		return nil, errors.New("a51: ciphertext/plaintext length mismatch")
	}
	out := make([]byte, len(ciphertext))
	for i := range ciphertext {
		out[i] = ciphertext[i] ^ plaintext[i]
	}
	return out, nil
}
