package a51

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestEncryptBurstsBatchMatchesScalar is the batch≡scalar property for
// the encryptor: every lane of EncryptBurstsBatch must produce exactly
// the bytes EncryptBurst produces for the same (Kc, COUNT, payload),
// across ragged batch sizes (partial final blocks), per-lane frames and
// payloads long enough to wrap the 114-bit keystream.
func TestEncryptBurstsBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 63, 64, 65, 130} {
		kcs := make([]uint64, n)
		frames := make([]uint32, n)
		plain := make([][]byte, n)
		batch := make([][]byte, n)
		for i := range kcs {
			kcs[i] = rng.Uint64()
			frames[i] = rng.Uint32() & 0x3FFFFF         // 22-bit COUNT
			p := make([]byte, 1+rng.Intn(2*BurstBytes)) // past BurstBytes: wraparound lanes
			rng.Read(p)
			plain[i] = p
			batch[i] = append([]byte(nil), p...)
		}
		EncryptBurstsBatch(kcs, frames, batch)
		for i := range kcs {
			want := EncryptBurst(kcs[i], frames[i], plain[i])
			if !bytes.Equal(batch[i], want) {
				t.Fatalf("n=%d lane %d (kc=%#x frame=%#x len=%d):\nbatch  %x\nscalar %x",
					n, i, kcs[i], frames[i], len(plain[i]), batch[i], want)
			}
		}
		// The involution property: a second pass must restore plaintext.
		EncryptBurstsBatch(kcs, frames, batch)
		for i := range kcs {
			if !bytes.Equal(batch[i], plain[i]) {
				t.Fatalf("n=%d lane %d: double encryption did not restore plaintext", n, i)
			}
		}
	}
}

// TestEncryptBurstsBatchLengthMismatch pins the loud failure mode: the
// three parallel slices must agree on length.
func TestEncryptBurstsBatchLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched slice lengths did not panic")
		}
	}()
	EncryptBurstsBatch(make([]uint64, 2), make([]uint32, 1), make([][]byte, 2))
}

// BenchmarkEncryptBurstBatch compares the scalar per-burst encryptor
// with the 64-lane bitsliced batch on full 64-burst blocks — the
// radio-synthesis cost the campaign engine pays per covered victim.
func BenchmarkEncryptBurstBatch(b *testing.B) {
	const n = 64
	kcs := make([]uint64, n)
	frames := make([]uint32, n)
	payloads := make([][]byte, n)
	rng := rand.New(rand.NewSource(2))
	for i := range kcs {
		kcs[i] = rng.Uint64()
		frames[i] = rng.Uint32() & 0x3FFFFF
		payloads[i] = make([]byte, 14)
		rng.Read(payloads[i])
	}
	b.Run("scalar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := range kcs {
				_ = EncryptBurst(kcs[j], frames[j], payloads[j])
			}
		}
		b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "bursts/s")
	})
	b.Run("bitsliced", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			EncryptBurstsBatch(kcs, frames, payloads)
		}
		b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "bursts/s")
	})
}
