package a51

import "sort"

// GSM organizes the TDMA frame number into two interlocking multiframe
// cycles: the 26-multiframe carries traffic channels, the 51-multiframe
// carries the control channels (FCCH/SCH/BCCH/CCCH). A5 is keyed per
// burst with the 22-bit COUNT value derived from the frame number:
//
//	COUNT = T1 (11 bits) | T3 (6 bits: frame mod 51) | T2 (5 bits: frame mod 26)
//
// where T1 is the superframe counter. This schedule lives here, next
// to the cipher it keys, so table backends and the telecom substrate
// share one definition: the model pins T1 to zero — the reduced
// hyperframe, the same substitution KeySpace applies to the key space —
// making the cipher counter periodic with period lcm(51, 26) = 1326,
// coverable by a precomputed table.
const (
	// Multi26 is the traffic-channel multiframe length.
	Multi26 = 26
	// Multi51 is the control-channel multiframe length.
	Multi51 = 51
	// HyperPeriod is the reduced hyperframe: with T1 pinned to zero the
	// COUNT sequence repeats every lcm(51, 26) frames.
	HyperPeriod = Multi26 * Multi51
)

// Count22 maps an absolute downlink frame number to the 22-bit COUNT
// value A5/1 is keyed with, under the reduced (T1 = 0) hyperframe:
// T3 = fn mod 51 in bits 10..5, T2 = fn mod 26 in bits 4..0. Distinct
// frame numbers within one hyperframe map to distinct COUNT values
// (CRT: 51 and 26 are coprime).
func Count22(fn uint32) uint32 {
	fn %= HyperPeriod
	return (fn%Multi51)<<5 | fn%Multi26
}

// pagingT3 lists the CCCH block start positions of the standard
// non-combined 51-multiframe downlink layout (FCCH on 0/10/20/30/40,
// SCH one frame later, BCCH on 2–5, CCCH blocks everywhere else).
// Paging requests — the predictable system messages the known-plaintext
// attack footholds on — are only ever transmitted at these positions.
var pagingT3 = [...]uint32{6, 12, 16, 22, 26, 32, 36, 42, 46}

// IsPagingStart reports whether frame fn begins a CCCH paging block.
func IsPagingStart(fn uint32) bool {
	t3 := fn % Multi51
	for _, p := range pagingT3 {
		if t3 == p {
			return true
		}
	}
	return false
}

// NextPagingStart returns the first frame at or after fn whose
// 51-multiframe position is a CCCH paging block start. The network
// schedules every SMS session's paging burst on one, which is what
// makes the ciphered known plaintext land on predictable frame
// classes.
func NextPagingStart(fn uint32) uint32 {
	for !IsPagingStart(fn) {
		fn++
	}
	return fn
}

// PagingFrames enumerates, sorted, every COUNT value a paging burst
// can be ciphered under: the CCCH block positions of the 51-multiframe
// crossed with all 26-multiframe phases (9 × 26 = 234 frame classes).
// Table backends precompute exactly this set — far smaller than the
// 1326-frame hyperframe — and still resolve every paging burst the
// network emits by lookup.
func PagingFrames() []uint32 {
	seen := make(map[uint32]bool, len(pagingT3)*Multi26)
	out := make([]uint32, 0, len(pagingT3)*Multi26)
	for fn := uint32(0); fn < HyperPeriod; fn++ {
		if !IsPagingStart(fn) {
			continue
		}
		c := Count22(fn)
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
