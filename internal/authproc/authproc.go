// Package authproc implements ActFort's Authentication Process stage
// (§III.B): validating recorded service specifications, constructing
// the per-account authentication flow (the Fig 12 node structure),
// and measuring credential-factor usage across the ecosystem — the
// statistics behind Fig 3 and the path-class breakdown of §IV.B.1.
package authproc

import (
	"fmt"
	"strings"

	"github.com/actfort/actfort/internal/ecosys"
)

// Stats aggregates authentication-path measurements for one platform.
type Stats struct {
	Platform ecosys.Platform
	// Accounts is the number of service presences measured.
	Accounts int
	// Paths is the total number of authentication paths.
	Paths int
	// SMSOnlySignIn counts accounts with an SMS-only sign-in path.
	SMSOnlySignIn int
	// SMSOnlyReset counts accounts with an SMS-only reset path.
	SMSOnlyReset int
	// UsesSMSAnywhere counts accounts with any path involving SC.
	UsesSMSAnywhere int
	// ClassCounts tallies paths per class (general/info/unique).
	ClassCounts map[ecosys.PathClass]int
	// PurposeCounts tallies paths per purpose.
	PurposeCounts map[ecosys.PathPurpose]int
	// FactorUsage counts paths containing each factor.
	FactorUsage map[ecosys.FactorKind]int
}

// Measure computes Stats over one platform of a catalog.
func Measure(cat *ecosys.Catalog, platform ecosys.Platform) Stats {
	st := Stats{
		Platform:      platform,
		ClassCounts:   make(map[ecosys.PathClass]int),
		PurposeCounts: make(map[ecosys.PathPurpose]int),
		FactorUsage:   make(map[ecosys.FactorKind]int),
	}
	for _, svc := range cat.Services() {
		pr, ok := svc.Presence(platform)
		if !ok {
			continue
		}
		st.Accounts++
		smsAnywhere := false
		signinSMS, resetSMS := false, false
		for _, p := range pr.Paths {
			st.Paths++
			st.ClassCounts[p.Class()]++
			st.PurposeCounts[p.Purpose]++
			seen := make(map[ecosys.FactorKind]bool, len(p.Factors))
			for _, f := range p.Factors {
				if !seen[f] {
					seen[f] = true
					st.FactorUsage[f]++
				}
				if f == ecosys.FactorSMSCode {
					smsAnywhere = true
				}
			}
			if p.SMSOnly() {
				switch p.Purpose {
				case ecosys.PurposeSignIn:
					signinSMS = true
				case ecosys.PurposeReset:
					resetSMS = true
				}
			}
		}
		if smsAnywhere {
			st.UsesSMSAnywhere++
		}
		if signinSMS {
			st.SMSOnlySignIn++
		}
		if resetSMS {
			st.SMSOnlyReset++
		}
	}
	return st
}

// PctAccounts converts an account count to a percentage of accounts.
func (s Stats) PctAccounts(n int) float64 {
	if s.Accounts == 0 {
		return 0
	}
	return 100 * float64(n) / float64(s.Accounts)
}

// PctPaths converts a path count to a percentage of paths.
func (s Stats) PctPaths(n int) float64 {
	if s.Paths == 0 {
		return 0
	}
	return 100 * float64(n) / float64(s.Paths)
}

// ValidateCatalog checks specification hygiene: unique path IDs per
// presence, non-empty factor lists, valid factor kinds, and binding /
// email-provider references that resolve within the catalog. It
// returns every violation found.
func ValidateCatalog(cat *ecosys.Catalog) []error {
	var errs []error
	for _, svc := range cat.Services() {
		if len(svc.Presences) == 0 {
			errs = append(errs, fmt.Errorf("authproc: %s has no presences", svc.Name))
		}
		seenPlat := make(map[ecosys.Platform]bool)
		for i := range svc.Presences {
			pr := &svc.Presences[i]
			acct := ecosys.AccountID{Service: svc.Name, Platform: pr.Platform}
			if seenPlat[pr.Platform] {
				errs = append(errs, fmt.Errorf("authproc: %s has duplicate platform %v", svc.Name, pr.Platform))
			}
			seenPlat[pr.Platform] = true
			if len(pr.Paths) == 0 {
				errs = append(errs, fmt.Errorf("authproc: %s has no authentication paths", acct))
			}
			ids := make(map[string]bool, len(pr.Paths))
			for _, p := range pr.Paths {
				if p.ID == "" {
					errs = append(errs, fmt.Errorf("authproc: %s has a path with empty ID", acct))
				}
				if ids[p.ID] {
					errs = append(errs, fmt.Errorf("authproc: %s has duplicate path ID %q", acct, p.ID))
				}
				ids[p.ID] = true
				if len(p.Factors) == 0 {
					errs = append(errs, fmt.Errorf("authproc: %s path %q has no factors", acct, p.ID))
				}
				for _, f := range p.Factors {
					if !f.Valid() {
						errs = append(errs, fmt.Errorf("authproc: %s path %q has invalid factor %d", acct, p.ID, f))
					}
				}
			}
			for _, e := range pr.Exposes {
				if !e.Field.Valid() {
					errs = append(errs, fmt.Errorf("authproc: %s exposes invalid field %d", acct, e.Field))
				}
			}
			for _, b := range pr.BoundTo {
				if _, ok := cat.ByName(b); !ok {
					errs = append(errs, fmt.Errorf("authproc: %s bound to unknown service %q", acct, b))
				}
			}
			if pr.EmailProvider != "" {
				if _, ok := cat.ByName(pr.EmailProvider); !ok {
					errs = append(errs, fmt.Errorf("authproc: %s has unknown email provider %q", acct, pr.EmailProvider))
				}
			}
		}
	}
	return errs
}

// FlowTree renders the recursive authentication flow of one presence
// in the top-down style of §III.B / Fig 12: the account at the root,
// its paths one level down, and each path's factors as leaves,
// annotated with how an attacker could source them.
func FlowTree(name string, pr *ecosys.Presence) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s\n", name, pr.Platform)
	for _, p := range pr.Paths {
		fmt.Fprintf(&b, "├─ %s (%s, %s)\n", p.ID, p.Purpose, p.Class())
		for i, f := range p.Factors {
			branch := "│  ├─"
			if i == len(p.Factors)-1 {
				branch = "│  └─"
			}
			fmt.Fprintf(&b, "%s %s (%s)%s\n", branch, f, f.Short(), sourceHint(f, pr))
		}
	}
	return b.String()
}

// sourceHint annotates a factor with the attacker's sourcing route.
func sourceHint(f ecosys.FactorKind, pr *ecosys.Presence) string {
	switch {
	case f == ecosys.FactorSMSCode:
		return " <- interceptable over GSM"
	case f == ecosys.FactorCellphone:
		return " <- attacker profile"
	case (f == ecosys.FactorEmailCode || f == ecosys.FactorEmailLink) && pr.EmailProvider != "":
		return " <- via " + pr.EmailProvider
	case f == ecosys.FactorLinkedAccount && len(pr.BoundTo) > 0:
		return " <- via " + strings.Join(pr.BoundTo, "/")
	case f.Unphishable():
		return " <- unphishable"
	case f.IdentityLike():
		return " <- harvestable info"
	}
	return ""
}
