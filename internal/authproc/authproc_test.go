package authproc

import (
	"strings"
	"testing"

	"github.com/actfort/actfort/internal/ecosys"
)

func testCatalog(t *testing.T) *ecosys.Catalog {
	t.Helper()
	sc := ecosys.FactorSMSCode
	pn := ecosys.FactorCellphone
	specs := []*ecosys.ServiceSpec{
		{
			Name: "gmail", Domain: ecosys.DomainEmail,
			Presences: []ecosys.Presence{{
				Platform: ecosys.PlatformWeb,
				Paths: []ecosys.AuthPath{
					{ID: "signin-1", Purpose: ecosys.PurposeSignIn, Factors: []ecosys.FactorKind{ecosys.FactorPassword}},
					{ID: "reset-1", Purpose: ecosys.PurposeReset, Factors: []ecosys.FactorKind{pn, sc}},
				},
			}},
		},
		{
			Name: "alipay", Domain: ecosys.DomainFintech,
			Presences: []ecosys.Presence{
				{
					Platform: ecosys.PlatformWeb,
					Paths: []ecosys.AuthPath{
						{ID: "reset-1", Purpose: ecosys.PurposeReset, Factors: []ecosys.FactorKind{sc, ecosys.FactorBankcard}},
					},
				},
				{
					Platform: ecosys.PlatformMobile,
					Paths: []ecosys.AuthPath{
						{ID: "signin-1", Purpose: ecosys.PurposeSignIn, Factors: []ecosys.FactorKind{pn, sc}},
						{ID: "reset-2", Purpose: ecosys.PurposeReset, Factors: []ecosys.FactorKind{sc, ecosys.FactorCitizenID}},
						{ID: "unique-1", Purpose: ecosys.PurposeReset, Factors: []ecosys.FactorKind{ecosys.FactorBiometric}},
					},
				},
			},
		},
	}
	return ecosys.MustCatalog(specs)
}

func TestMeasureWeb(t *testing.T) {
	st := Measure(testCatalog(t), ecosys.PlatformWeb)
	if st.Accounts != 2 || st.Paths != 3 {
		t.Fatalf("accounts=%d paths=%d", st.Accounts, st.Paths)
	}
	if st.SMSOnlySignIn != 0 {
		t.Errorf("SMSOnlySignIn = %d want 0", st.SMSOnlySignIn)
	}
	if st.SMSOnlyReset != 1 { // gmail reset is PN+SC
		t.Errorf("SMSOnlyReset = %d want 1", st.SMSOnlyReset)
	}
	if st.UsesSMSAnywhere != 2 {
		t.Errorf("UsesSMSAnywhere = %d want 2", st.UsesSMSAnywhere)
	}
	if st.ClassCounts[ecosys.ClassGeneral] != 2 || st.ClassCounts[ecosys.ClassInfo] != 1 {
		t.Errorf("class counts = %v", st.ClassCounts)
	}
	if st.FactorUsage[ecosys.FactorSMSCode] != 2 {
		t.Errorf("SC usage = %d want 2", st.FactorUsage[ecosys.FactorSMSCode])
	}
	if got := st.PctAccounts(st.SMSOnlyReset); got != 50 {
		t.Errorf("PctAccounts = %.1f want 50", got)
	}
	if got := st.PctPaths(st.ClassCounts[ecosys.ClassGeneral]); got < 66 || got > 67 {
		t.Errorf("PctPaths = %.1f want ~66.7", got)
	}
}

func TestMeasureMobile(t *testing.T) {
	st := Measure(testCatalog(t), ecosys.PlatformMobile)
	if st.Accounts != 1 || st.Paths != 3 {
		t.Fatalf("accounts=%d paths=%d", st.Accounts, st.Paths)
	}
	if st.SMSOnlySignIn != 1 {
		t.Errorf("SMSOnlySignIn = %d want 1", st.SMSOnlySignIn)
	}
	if st.ClassCounts[ecosys.ClassUnique] != 1 {
		t.Errorf("unique paths = %d want 1", st.ClassCounts[ecosys.ClassUnique])
	}
}

func TestMeasureEmptyCatalog(t *testing.T) {
	cat := ecosys.MustCatalog(nil)
	st := Measure(cat, ecosys.PlatformWeb)
	if st.PctAccounts(1) != 0 || st.PctPaths(1) != 0 {
		t.Error("percentages of empty catalog should be 0")
	}
}

func TestValidateCatalogClean(t *testing.T) {
	if errs := ValidateCatalog(testCatalog(t)); len(errs) != 0 {
		t.Fatalf("clean catalog produced errors: %v", errs)
	}
}

func TestValidateCatalogViolations(t *testing.T) {
	specs := []*ecosys.ServiceSpec{
		{Name: "empty", Domain: ecosys.DomainNews},
		{
			Name: "bad", Domain: ecosys.DomainNews,
			Presences: []ecosys.Presence{
				{
					Platform: ecosys.PlatformWeb,
					Paths: []ecosys.AuthPath{
						{ID: "", Purpose: ecosys.PurposeSignIn, Factors: nil},
						{ID: "dup", Purpose: ecosys.PurposeReset, Factors: []ecosys.FactorKind{ecosys.FactorKind(99)}},
						{ID: "dup", Purpose: ecosys.PurposeReset, Factors: []ecosys.FactorKind{ecosys.FactorSMSCode}},
					},
					Exposes:       []ecosys.Exposure{{Field: ecosys.InfoField(99)}},
					BoundTo:       []string{"ghost"},
					EmailProvider: "phantom",
				},
				{Platform: ecosys.PlatformWeb, Paths: []ecosys.AuthPath{{ID: "x", Purpose: ecosys.PurposeSignIn, Factors: []ecosys.FactorKind{ecosys.FactorPassword}}}},
			},
		},
	}
	errs := ValidateCatalog(ecosys.MustCatalog(specs))
	wantSubstrings := []string{
		"no presences", "empty ID", "no factors", "duplicate path ID",
		"invalid factor", "invalid field", "unknown service", "unknown email provider",
		"duplicate platform",
	}
	joined := ""
	for _, e := range errs {
		joined += e.Error() + "\n"
	}
	for _, want := range wantSubstrings {
		if !strings.Contains(joined, want) {
			t.Errorf("validation missing %q in:\n%s", want, joined)
		}
	}
}

func TestFlowTree(t *testing.T) {
	cat := testCatalog(t)
	svc, _ := cat.ByName("alipay")
	pr, _ := svc.Presence(ecosys.PlatformMobile)
	tree := FlowTree("alipay", pr)
	for _, want := range []string{
		"alipay/mobile", "signin-1", "reset-2", "citizen-id",
		"interceptable over GSM", "harvestable info", "unphishable",
	} {
		if !strings.Contains(tree, want) {
			t.Errorf("FlowTree missing %q in:\n%s", want, tree)
		}
	}
}

func TestFlowTreeSourceHints(t *testing.T) {
	pr := &ecosys.Presence{
		Platform: ecosys.PlatformWeb,
		Paths: []ecosys.AuthPath{
			{ID: "r", Purpose: ecosys.PurposeReset, Factors: []ecosys.FactorKind{
				ecosys.FactorEmailCode, ecosys.FactorLinkedAccount, ecosys.FactorCellphone,
			}},
		},
		BoundTo:       []string{"google"},
		EmailProvider: "gmail",
	}
	tree := FlowTree("svc", pr)
	if !strings.Contains(tree, "via gmail") || !strings.Contains(tree, "via google") ||
		!strings.Contains(tree, "attacker profile") {
		t.Errorf("source hints missing:\n%s", tree)
	}
}

func BenchmarkMeasure(b *testing.B) {
	specs := make([]*ecosys.ServiceSpec, 0, 200)
	for i := 0; i < 200; i++ {
		specs = append(specs, &ecosys.ServiceSpec{
			Name: "svc-" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('0'+i%10)),
			Presences: []ecosys.Presence{{
				Platform: ecosys.PlatformWeb,
				Paths: []ecosys.AuthPath{
					{ID: "r", Purpose: ecosys.PurposeReset, Factors: []ecosys.FactorKind{ecosys.FactorCellphone, ecosys.FactorSMSCode}},
				},
			}},
		})
	}
	cat, err := ecosys.NewCatalog(specs)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Measure(cat, ecosys.PlatformWeb)
	}
}
