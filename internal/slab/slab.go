// Package slab provides the one arena primitive every pooled batch
// engine carves its reusable buffers from: grow-by-doubling blocks
// whose earlier carves stay valid when the block is replaced (the old
// block is simply retired to the garbage collector), so a batch can
// hand out stable sub-buffers while the arena grows underneath it.
// After a Reset the largest block is kept, so a steady-state batch of
// stable size allocates nothing.
package slab

import "unsafe"

// minBlock is the smallest backing block, in elements. Doubling from
// here reaches any realistic batch size within a few early grows.
const minBlock = 1 << 12

// Slab is the arena. The zero value is ready to use; it is not safe
// for concurrent use (callers pool whole Slabs, not carves).
type Slab[T any] struct {
	buf []T
}

// Grab carves a length-n, capacity-n buffer. The carve never aliases
// any other carve or later growth (full-slice-expression capped), and
// stays valid until Reset. Callers are expected to overwrite every
// element they read — carves are recycled memory, not zeroed.
func (s *Slab[T]) Grab(n int) []T {
	if len(s.buf)+n > cap(s.buf) {
		c := 2 * cap(s.buf)
		if c < minBlock {
			c = minBlock
		}
		if c < n {
			c = n
		}
		s.buf = make([]T, 0, c)
	}
	off := len(s.buf)
	s.buf = s.buf[:off+n]
	return s.buf[off : off+n : off+n]
}

// GrabEmpty carves a length-0, capacity-n buffer for append-style
// filling, with the same aliasing guarantees as Grab.
func (s *Slab[T]) GrabEmpty(n int) []T {
	return s.Grab(n)[:0]
}

// Reset empties the slab for reuse, keeping the largest block.
func (s *Slab[T]) Reset() { s.buf = s.buf[:0] }

// Len reports the elements carved from the current block since the
// last Reset (earlier, retired blocks are not counted) — the live
// arena footprint the memory gauges read.
func (s *Slab[T]) Len() int { return len(s.buf) }

// StringOf copies b into a carve of the byte arena and returns it as a
// string headed directly at the carve — no per-string allocation, only
// the arena's amortized block growth. The string obeys carve
// lifetime: valid until the arena's Reset, and, like any carve, it
// keeps its backing block alive if retained past a block replacement.
// Callers owning a Reset cycle (per-shard arenas) must not let such
// strings escape the cycle.
func StringOf(s *Slab[byte], b []byte) string {
	if len(b) == 0 {
		return ""
	}
	c := s.Grab(len(b))
	copy(c, b)
	return unsafe.String(&c[0], len(c))
}
