package campaign

import (
	"strings"
	"testing"
)

// TestNormalizeRejectsOutOfRangeProbabilities is the regression test
// for the silent out-of-range bug: "reauthSkip": 5 used to pass
// validation and pin every victim to one Kc forever. Every probability
// field must land in [0, 1] or fail loudly.
func TestNormalizeRejectsOutOfRangeProbabilities(t *testing.T) {
	for _, tc := range []struct {
		name  string
		radio RadioEnv
		want  string
	}{
		{"reauthSkip>1", RadioEnv{ReauthSkip: 5}, "reauthSkip"},
		{"reauthSkip barely >1", RadioEnv{ReauthSkip: 1.0001}, "reauthSkip"},
		{"a50Fraction>1", RadioEnv{A50Fraction: 1.5}, "a50Fraction"},
		{"a53Fraction>1", RadioEnv{A53Fraction: 2}, "a53Fraction"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Scenario{Radio: tc.radio}.normalize(0)
			if err == nil {
				t.Fatalf("radio %+v accepted", tc.radio)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not name the field %q", err, tc.want)
			}
		})
	}
}

// TestNormalizeProbabilityBoundaries pins the values that must keep
// working: exactly 1, the zero-value default and the negative "none"
// convention.
func TestNormalizeProbabilityBoundaries(t *testing.T) {
	sc, err := Scenario{Radio: RadioEnv{ReauthSkip: 1, A50Fraction: -1, A53Fraction: 1}}.normalize(0)
	if err != nil {
		t.Fatalf("boundary values rejected: %v", err)
	}
	if sc.Radio.ReauthSkip != 1 || sc.Radio.A50Fraction != 0 || sc.Radio.A53Fraction != 1 {
		t.Errorf("normalized radio = %+v", sc.Radio)
	}
	sc, err = Scenario{}.normalize(3)
	if err != nil {
		t.Fatalf("zero scenario rejected: %v", err)
	}
	if sc.Radio.ReauthSkip != 0.6 || sc.Radio.A50Fraction != 0.2 || sc.Radio.A53Fraction != 0 {
		t.Errorf("defaults = %+v", sc.Radio)
	}
	// The combined-fraction check still applies after per-field checks.
	if _, err := (Scenario{Radio: RadioEnv{A50Fraction: 0.7, A53Fraction: 0.7}}).normalize(0); err == nil {
		t.Error("A5/0 + A5/3 > 1 accepted")
	}
}

// TestDeltaRendering is the regression test for the comparative-table
// glitches: a zero baseline used to render a bare "+0" with no percent,
// and exact non-zero ties rendered the vacuous "+0 (+0.00%)".
func TestDeltaRendering(t *testing.T) {
	for _, tc := range []struct {
		base, val int64
		want      string
	}{
		{0, 0, "±0"},       // zero-baseline tie
		{1234, 1234, "±0"}, // non-zero exact tie
		{0, 7, "+7 (new)"}, // growth from nothing: no percent possible
		{0, 1500, "+1,500 (new)"},
		{100, 50, "-50 (-50.00%)"},
		{1000, 1234, "+234 (+23.40%)"},
	} {
		if got := delta(tc.base, tc.val); got != tc.want {
			t.Errorf("delta(%d, %d) = %q, want %q", tc.base, tc.val, got, tc.want)
		}
	}
}

// TestNormalizedExportedSurface pins the validation surface the query
// service leans on: Normalized applies the same defaults and rejections
// as the internal normalize, and NormalizeSweep enforces unique names
// and non-empty lists.
func TestNormalizedExportedSurface(t *testing.T) {
	norm, err := (Scenario{}).Normalized()
	if err != nil {
		t.Fatalf("zero scenario: %v", err)
	}
	if norm.Platform != "both" || norm.Radio.OTPSessions != 3 || norm.Radio.ReauthSkip != 0.6 {
		t.Fatalf("defaults not applied: %+v", norm)
	}
	if _, err := (Scenario{Radio: RadioEnv{ReauthSkip: 5}}).Normalized(); err == nil {
		t.Fatal("reauthSkip 5 accepted")
	}
	if _, err := (Scenario{Platform: "fax"}).Normalized(); err == nil {
		t.Fatal("platform fax accepted")
	}

	if _, err := NormalizeSweep(nil); err == nil {
		t.Fatal("empty sweep accepted")
	}
	if _, err := NormalizeSweep([]Scenario{{Name: "a"}, {Name: "a"}}); err == nil {
		t.Fatal("duplicate names accepted")
	}
	list, err := NormalizeSweep([]Scenario{{}, {Name: "x"}})
	if err != nil {
		t.Fatal(err)
	}
	if list[0].Name != "scenario-0" || list[1].Name != "x" {
		t.Fatalf("index naming wrong: %q, %q", list[0].Name, list[1].Name)
	}
}
