package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/actfort/actfort/internal/a51"
	"github.com/actfort/actfort/internal/checkpoint"
	"github.com/actfort/actfort/internal/faultinject"
	"github.com/actfort/actfort/internal/population"
)

// render canonicalizes a summary for equality checks: the wall-clock
// fields are zeroed, everything else must match byte for byte.
func render(t *testing.T, sum *Summary, services []string) string {
	t.Helper()
	zeroClock(sum)
	return sum.Render(services, 10)
}

// sharedCracker builds one table backend so the resume matrix doesn't
// pay a TMTO precomputation per engine.
func sharedCracker(t *testing.T, cfg Config) a51.Cracker {
	t.Helper()
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng.Cracker()
}

// TestCampaignResumeEquivalence is the core recovery invariant: a run
// killed at every instrumented crash point and then resumed yields a
// Summary byte-identical to an uninterrupted run, on both the batch
// and the scalar ablation paths.
func TestCampaignResumeEquivalence(t *testing.T) {
	pop := testPop(t, 2048, 128) // 16 shards
	base := Config{Population: pop, KeyBits: 10, Workers: 2}
	base.Cracker = sharedCracker(t, base)

	variants := []struct {
		name string
		mut  func(*Config)
	}{
		{"batch", func(*Config) {}},
		{"scalar-radio", func(c *Config) { c.ScalarRadio = true }},
		{"scalar-replay", func(c *Config) { c.ScalarReplay = true }},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			cfg := base
			v.mut(&cfg)
			want := render(t, runCampaign(t, cfg), pop.Services())

			for _, point := range faultinject.Points() {
				point := point
				t.Run(string(point), func(t *testing.T) {
					dir := t.TempDir()
					// Crash the first run mid-write, then resume over the
					// same directory without faults.
					crashed := cfg
					crashed.Checkpoint = &Checkpoint{Dir: dir, SnapshotEvery: 4}
					in, err := faultinject.New(faultinject.Config{Crash: map[faultinject.Point]int{point: 2}})
					if err != nil {
						t.Fatal(err)
					}
					crashed.Fault = in
					eng, err := New(crashed)
					if err != nil {
						t.Fatal(err)
					}
					if _, err := eng.Run(context.Background()); !errors.Is(err, faultinject.ErrCrash) {
						t.Fatalf("crashed run error = %v, want ErrCrash", err)
					}

					resumed := cfg
					resumed.Checkpoint = &Checkpoint{Dir: dir, SnapshotEvery: 4}
					sum, err := New(resumed)
					if err != nil {
						t.Fatal(err)
					}
					got, err := sum.Run(context.Background())
					if err != nil {
						t.Fatal(err)
					}
					if g := render(t, got, pop.Services()); g != want {
						t.Errorf("resumed summary diverged from uninterrupted run:\n--- got ---\n%s\n--- want ---\n%s", g, want)
					}
				})
			}
		})
	}
}

// TestCampaignResumeSkipsDoneShards pins the other half of resume: the
// second process must not redo journaled work.
func TestCampaignResumeSkipsDoneShards(t *testing.T) {
	pop := testPop(t, 2048, 128)
	cfg := Config{Population: pop, KeyBits: 10, Workers: 2}
	cfg.Cracker = sharedCracker(t, cfg)
	dir := t.TempDir()

	crashed := cfg
	crashed.Checkpoint = &Checkpoint{Dir: dir, SnapshotEvery: 100}
	in, err := faultinject.New(faultinject.Config{Crash: map[faultinject.Point]int{faultinject.PointJournalAppend: 9}})
	if err != nil {
		t.Fatal(err)
	}
	crashed.Fault = in
	eng, err := New(crashed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background()); !errors.Is(err, faultinject.ErrCrash) {
		t.Fatalf("err = %v", err)
	}

	resumed := cfg
	resumed.Checkpoint = &Checkpoint{Dir: dir}
	var maxDone atomic.Int64
	resumed.Progress = func(done, total int) {
		if int64(done) > maxDone.Load() {
			maxDone.Store(int64(done))
		}
	}
	eng2, err := New(resumed)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := eng2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Subscribers != 2048 {
		t.Fatalf("resumed total subscribers = %d", sum.Subscribers)
	}
	// 8 shards were journaled before the crash on the 9th append; the
	// resumed engine's first progress report must already include them.
	if maxDone.Load() != 2048 {
		t.Fatalf("progress peaked at %d", maxDone.Load())
	}
}

// TestCampaignManifestRefusal pins the loud-refusal contract at the
// engine level: resuming a journal against any changed input fails
// with ErrManifestMismatch instead of blending two runs.
func TestCampaignManifestRefusal(t *testing.T) {
	pop := testPop(t, 1024, 128)
	cfg := Config{Population: pop, KeyBits: 10, Workers: 2, Checkpoint: &Checkpoint{}}
	cfg.Cracker = sharedCracker(t, Config{Population: pop, KeyBits: 10})
	dir := t.TempDir()
	cfg.Checkpoint.Dir = dir
	if _, err := New(cfg); err != nil {
		t.Fatal(err)
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		mut  func(*Config) error
	}{
		{"population seed", func(c *Config) error {
			p2, err := population.New(population.Config{Seed: 9, Size: 1024, ShardSize: 128})
			c.Population = p2
			return err
		}},
		{"scenario", func(c *Config) error {
			c.Scenario = Scenario{Name: "cli", Policy: "fortify-all"}
			return nil
		}},
		{"shard range", func(c *Config) error {
			c.ShardLo, c.ShardHi = 0, 4
			return nil
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c2 := cfg
			if err := tc.mut(&c2); err != nil {
				t.Fatal(err)
			}
			eng2, err := New(c2)
			if err != nil {
				t.Fatal(err)
			}
			_, err = eng2.Run(context.Background())
			if !errors.Is(err, checkpoint.ErrManifestMismatch) {
				t.Fatalf("err = %v, want ErrManifestMismatch", err)
			}
		})
	}
}

// TestCampaignTwoRangeMergeEqualsSingle runs the population as two
// in-process "processes" owning disjoint shard ranges and checks the
// merged partials reproduce the single-process Summary exactly.
func TestCampaignTwoRangeMergeEqualsSingle(t *testing.T) {
	pop := testPop(t, 2048, 128)
	cfg := Config{Population: pop, KeyBits: 10, Workers: 2}
	cfg.Cracker = sharedCracker(t, cfg)
	single := runCampaign(t, cfg)

	root := t.TempDir()
	parts := make([]*Partial, 0, 2)
	for k := 0; k < 2; k++ {
		rc := cfg
		rc.ShardLo, rc.ShardHi = k*8, (k+1)*8
		rc.Checkpoint = &Checkpoint{Dir: fmt.Sprintf("%s/range-%d-of-2", root, k)}
		eng, err := New(rc)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		p, err := LoadPartial(rc.Checkpoint.Dir)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, p)
	}
	merged, err := MergePartials(parts)
	if err != nil {
		t.Fatal(err)
	}
	merged.Workers = single.Workers // 2 processes × 2 workers vs 2
	if g, w := render(t, merged, pop.Services()), render(t, single, pop.Services()); g != w {
		t.Errorf("merged summary diverged:\n--- merged ---\n%s\n--- single ---\n%s", g, w)
	}

	// Tiling violations refuse loudly.
	if _, err := MergePartials(parts[:1]); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("gap accepted: %v", err)
	}
	if _, err := MergePartials([]*Partial{parts[0], parts[0]}); err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Errorf("overlap accepted: %v", err)
	}
}

// TestCampaignQuarantineCoverage pins the degraded-report contract: a
// poisoned shard is quarantined after its attempt budget and the run
// completes with an explicit coverage fraction instead of aborting.
func TestCampaignQuarantineCoverage(t *testing.T) {
	pop := testPop(t, 2048, 128)
	cfg := Config{Population: pop, KeyBits: 10, Workers: 2, MaxShardAttempts: 2}
	cfg.Cracker = sharedCracker(t, cfg)
	in, err := faultinject.New(faultinject.Config{Poisoned: []int{3, 11}})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Fault = in
	sum := runCampaign(t, cfg)
	if sum.ShardsQuarantined != 2 {
		t.Fatalf("ShardsQuarantined = %d", sum.ShardsQuarantined)
	}
	if sum.SubscribersSkipped != 256 {
		t.Fatalf("SubscribersSkipped = %d", sum.SubscribersSkipped)
	}
	if sum.Subscribers != 2048-256 {
		t.Fatalf("Subscribers = %d", sum.Subscribers)
	}
	want := float64(2048-256) / 2048
	if sum.CoverageFraction != want {
		t.Fatalf("CoverageFraction = %g, want %g", sum.CoverageFraction, want)
	}
	if !strings.Contains(sum.Render(pop.Services(), 5), "shards quarantined") {
		t.Error("render omits the quarantine rows")
	}
}

// TestCampaignTransientRetrySucceeds pins bounded retry: transient
// failures that clear within the attempt budget leave the Summary
// identical to a fault-free run.
func TestCampaignTransientRetrySucceeds(t *testing.T) {
	pop := testPop(t, 1024, 128)
	cfg := Config{Population: pop, KeyBits: 10, Workers: 2}
	cfg.Cracker = sharedCracker(t, cfg)
	want := render(t, runCampaign(t, cfg), pop.Services())

	faulty := cfg
	// transientFailures is geometric with k < 32 possible, so give the
	// retry budget enough headroom that every shard clears.
	faulty.MaxShardAttempts = 40
	faulty.RetryBackoff = time.Microsecond
	faulty.RetryBackoffMax = 10 * time.Microsecond
	in, err := faultinject.New(faultinject.Config{Seed: 3, TransientRate: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	faulty.Fault = in
	sum := runCampaign(t, faulty)
	if sum.ShardsQuarantined != 0 {
		t.Fatalf("quarantined %d shards despite retry budget", sum.ShardsQuarantined)
	}
	if g := render(t, sum, pop.Services()); g != want {
		t.Error("retried run diverged from fault-free run")
	}
}

// TestCampaignCancelNoGoroutineLeak is the cancellation-audit
// regression test: cancelling mid-run must return promptly with no
// worker, feeder or aggregator goroutine left behind.
func TestCampaignCancelNoGoroutineLeak(t *testing.T) {
	pop := testPop(t, 4096, 128)
	cfg := Config{Population: pop, KeyBits: 10, Workers: 4}
	cfg.Cracker = sharedCracker(t, cfg)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	cfg.Progress = func(done, total int) {
		if done > 0 {
			cancel() // cancel mid-run, after at least one shard merged
		}
	}
	// Backoff retries must also honor cancellation.
	cfg.RetryBackoff = 50 * time.Millisecond
	cfg.RetryBackoffMax = time.Second
	cfg.MaxShardAttempts = 100
	in, err := faultinject.New(faultinject.Config{Seed: 5, TransientRate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Fault = in
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// Goroutines wind down asynchronously after Run returns; poll
	// briefly rather than flake.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before run, %d after cancellation", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSweepRecordsScenarioError pins satellite behavior: a scenario
// failing at runtime becomes an errored row, not a dead sweep.
func TestSweepRecordsScenarioError(t *testing.T) {
	pop := testPop(t, 1024, 256)
	eng, err := New(Config{Population: pop, KeyBits: 10, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	sw, err := eng.RunSweep(context.Background(), []Scenario{
		{Name: "good"},
		{Name: "bad", Policy: "no-such-policy"},
		{Name: "also-good", Policy: "fortify-all"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Results) != 3 {
		t.Fatalf("results = %d", len(sw.Results))
	}
	if sw.Results[0].Error != "" || sw.Results[0].Summary == nil {
		t.Fatalf("good scenario: %+v", sw.Results[0])
	}
	bad := sw.Results[1]
	if bad.Summary != nil || bad.Error == "" || !strings.Contains(bad.Error, "no-such-policy") {
		t.Fatalf("bad scenario: %+v", bad)
	}
	if sw.Results[2].Summary == nil {
		t.Fatal("sweep stopped at the failing scenario")
	}
	if sw.Baseline() != sw.Results[0].Summary {
		t.Fatal("baseline should be the first completed scenario")
	}
	text := sw.Render(pop.Services(), 5)
	if !strings.Contains(text, "ERROR: ") || !strings.Contains(text, "no-such-policy") {
		t.Errorf("render omits the errored row:\n%s", text)
	}
}
