package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/actfort/actfort/internal/faultinject"
	"github.com/actfort/actfort/internal/obs"
)

// TestCampaignSummaryUnchangedByInstrumentation pins the tentpole
// contract of the telemetry layer: tracing and live metrics must never
// change results. A fixed-seed run with a trace file and a progress
// callback wired in renders byte-identical (wall-clock fields zeroed)
// to a bare run.
func TestCampaignSummaryUnchangedByInstrumentation(t *testing.T) {
	pop := testPop(t, 2048, 256)
	base := Config{Population: pop, KeyBits: 10, Workers: 3}
	base.Cracker = sharedCracker(t, base)

	plain := render(t, runCampaign(t, base), pop.Services())

	traced := base
	tw, err := obs.OpenTraceFile(filepath.Join(t.TempDir(), "trace.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	traced.Trace = tw
	traced.Progress = func(done, total int) {}
	got := render(t, runCampaign(t, traced), pop.Services())
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if got != plain {
		t.Errorf("instrumented summary diverged:\n--- instrumented ---\n%s\n--- plain ---\n%s", got, plain)
	}
}

// TestCampaignPhaseTimings checks the per-run phase breakdown: a batch
// run must time every stage, in presentation order, with coherent
// count/total/quantile values.
func TestCampaignPhaseTimings(t *testing.T) {
	pop := testPop(t, 2048, 256) // 8 shards
	sum := runCampaign(t, Config{Population: pop, KeyBits: 10, Workers: 2})
	want := []string{"synth", "encrypt", "feed", "crack", "closure", "aggregate"}
	var got []string
	for _, p := range sum.PhaseTimings {
		got = append(got, p.Phase)
		if p.Count <= 0 {
			t.Errorf("phase %s: count %d", p.Phase, p.Count)
		}
		if p.Total < 0 || p.P50 < 0 || p.P90 < 0 || p.P99 < 0 {
			t.Errorf("phase %s: negative timing %+v", p.Phase, p)
		}
		if p.P50 > p.P99 {
			t.Errorf("phase %s: p50 %v > p99 %v", p.Phase, p.P50, p.P99)
		}
	}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("phases = %v, want %v", got, want)
	}
	// Per-shard phases observe once per shard.
	for _, p := range sum.PhaseTimings {
		if p.Phase == "synth" && p.Count != 8 {
			t.Errorf("synth count = %d, want one per shard", p.Count)
		}
	}
}

// TestCampaignTraceReconstructsFailures replays the trace of a
// fault-injected run and reconstructs the full retry→quarantine
// history of every poisoned shard: each retry is followed by a
// next-attempt start, every shard terminates in exactly one done or
// quarantine, and the poisoned shards quarantine while the rest
// complete.
func TestCampaignTraceReconstructsFailures(t *testing.T) {
	pop := testPop(t, 2048, 128) // 16 shards
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	tw, err := obs.OpenTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	in, err := faultinject.New(faultinject.Config{
		Seed:          3,
		TransientRate: 0.4,
		Poisoned:      []int{3, 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Population: pop, KeyBits: 10, Workers: 2,
		Fault: in, Trace: tw, MaxShardAttempts: 3,
	}
	cfg.Cracker = sharedCracker(t, Config{Population: pop, KeyBits: 10})
	sum := runCampaign(t, cfg)
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if sum.ShardsQuarantined != 2 {
		t.Fatalf("quarantined %d shards, want the 2 poisoned", sum.ShardsQuarantined)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	type ev struct {
		TS      float64 `json:"ts_ms"`
		Event   string  `json:"event"`
		Shard   int     `json:"shard"`
		Attempt int     `json:"attempt"`
	}
	history := map[int][]ev{}
	lastTS := -1.0
	var runStart, runDone int
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var e ev
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		if e.TS < lastTS {
			t.Fatalf("timestamps not monotonic at %q", line)
		}
		lastTS = e.TS
		switch e.Event {
		case "run_start":
			runStart++
		case "run_done":
			runDone++
		case "shard_start", "shard_retry", "shard_done", "shard_quarantine":
			history[e.Shard] = append(history[e.Shard], e)
		}
	}
	if runStart != 1 || runDone != 1 {
		t.Errorf("run_start=%d run_done=%d, want 1/1", runStart, runDone)
	}
	if len(history) != 16 {
		t.Fatalf("trace covers %d shards, want 16", len(history))
	}
	for shard, seq := range history {
		poisoned := shard == 3 || shard == 11
		for i, e := range seq {
			switch e.Event {
			case "shard_retry":
				if i+1 >= len(seq) || seq[i+1].Event != "shard_start" || seq[i+1].Attempt != e.Attempt+1 {
					t.Errorf("shard %d: retry at attempt %d not followed by next start: %+v", shard, e.Attempt, seq)
				}
			}
		}
		last := seq[len(seq)-1].Event
		if poisoned && last != "shard_quarantine" {
			t.Errorf("poisoned shard %d ended with %s: %+v", shard, last, seq)
		}
		if !poisoned && last != "shard_done" {
			t.Errorf("shard %d ended with %s: %+v", shard, last, seq)
		}
	}
}

// TestCampaignResumeThroughputAccounting pins the VictimsPerSec fix: a
// resumed run must report the cumulative rate (all subscribers over
// all active wall clock, carried through the snapshot) plus a separate
// post-resume rate, instead of dividing the full victim count by only
// the second process's clock.
func TestCampaignResumeThroughputAccounting(t *testing.T) {
	pop := testPop(t, 2048, 128)
	cfg := Config{Population: pop, KeyBits: 10, Workers: 2}
	cfg.Cracker = sharedCracker(t, cfg)
	dir := t.TempDir()

	crashed := cfg
	crashed.Checkpoint = &Checkpoint{Dir: dir, SnapshotEvery: 4}
	in, err := faultinject.New(faultinject.Config{Crash: map[faultinject.Point]int{faultinject.PointJournalAppend: 10}})
	if err != nil {
		t.Fatal(err)
	}
	crashed.Fault = in
	eng, err := New(crashed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background()); !errors.Is(err, faultinject.ErrCrash) {
		t.Fatalf("crashed run error = %v, want ErrCrash", err)
	}

	resumed := cfg
	resumed.Checkpoint = &Checkpoint{Dir: dir, SnapshotEvery: 4}
	eng2, err := New(resumed)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := eng2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.ActiveDuration < sum.Duration {
		t.Errorf("ActiveDuration %v < Duration %v: prior process's clock lost", sum.ActiveDuration, sum.Duration)
	}
	if sum.ActiveDuration == sum.Duration {
		t.Errorf("ActiveDuration == Duration %v: snapshot carried no prior active time", sum.Duration)
	}
	if sum.ResumeVictimsPerSec <= 0 {
		t.Errorf("ResumeVictimsPerSec = %v on a resumed run", sum.ResumeVictimsPerSec)
	}
	wantRate := float64(sum.Subscribers) / sum.ActiveDuration.Seconds()
	if diff := sum.VictimsPerSec - wantRate; diff > 1 || diff < -1 {
		t.Errorf("VictimsPerSec = %v, want cumulative %v", sum.VictimsPerSec, wantRate)
	}

	// A fresh, uninterrupted run reports no resume rate and equal
	// durations.
	fresh := runCampaign(t, cfg)
	if fresh.ResumeVictimsPerSec != 0 {
		t.Errorf("fresh run ResumeVictimsPerSec = %v", fresh.ResumeVictimsPerSec)
	}
	if fresh.ActiveDuration != fresh.Duration {
		t.Errorf("fresh run ActiveDuration %v != Duration %v", fresh.ActiveDuration, fresh.Duration)
	}
}

// TestCampaignConcurrentScrape scrapes the process-wide registry in
// Prometheus text form while a live campaign hammers every instrument
// family — the race-detector proof that exposition never tears or
// locks against the hot path (`go test -race` runs this in CI).
func TestCampaignConcurrentScrape(t *testing.T) {
	pop := testPop(t, 2048, 128)
	cfg := Config{Population: pop, KeyBits: 10, Workers: 2}
	cfg.Cracker = sharedCracker(t, cfg)
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				var b strings.Builder
				if err := obs.Default.WritePrometheus(&b); err != nil {
					t.Error(err)
					return
				}
				if !strings.Contains(b.String(), "campaign_shards_started_total") {
					t.Error("scrape missing campaign family")
					return
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}
	sum, err := eng.Run(context.Background())
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Subscribers != 2048 {
		t.Fatalf("Subscribers = %d", sum.Subscribers)
	}
	// The run gauges the -progress ticker reads must have landed on
	// their final values.
	if v, ok := obs.Default.Value("campaign_run_subscribers_done"); !ok || v != 2048 {
		t.Errorf("campaign_run_subscribers_done = %v, %v", v, ok)
	}
	if v, ok := obs.Default.Value("campaign_coverage_fraction"); !ok || v != 1 {
		t.Errorf("campaign_coverage_fraction = %v, %v", v, ok)
	}
}
