package campaign

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/actfort/actfort/internal/population"
)

func testPop(t *testing.T, size, shard int) *population.Population {
	t.Helper()
	pop, err := population.New(population.Config{Seed: 7, Size: size, ShardSize: shard})
	if err != nil {
		t.Fatal(err)
	}
	return pop
}

// zeroClock zeroes every wall-clock-dependent Summary field so fixed-
// seed runs compare byte for byte.
func zeroClock(sum *Summary) {
	sum.Duration = 0
	sum.VictimsPerSec = 0
	sum.ActiveDuration = 0
	sum.ResumeVictimsPerSec = 0
	sum.PhaseTimings = nil
}

func runCampaign(t *testing.T, cfg Config) *Summary {
	t.Helper()
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return sum
}

func TestCampaignEndToEnd(t *testing.T) {
	pop := testPop(t, 2000, 512)
	sum := runCampaign(t, Config{Population: pop, KeyBits: 10, Workers: 4})

	if sum.Subscribers != 2000 {
		t.Fatalf("Subscribers = %d", sum.Subscribers)
	}
	if sum.Covered != 2000 || sum.Intercepted != 2000 {
		t.Fatalf("full-coverage run: covered %d intercepted %d", sum.Covered, sum.Intercepted)
	}
	if sum.VictimsCompromised == 0 || sum.AccountsCompromised == 0 {
		t.Fatalf("no compromises: %+v", sum)
	}
	if sum.AccountsByDepth[1] == 0 {
		t.Error("no depth-1 (SMS-alone) takeovers — the fringe should dominate")
	}
	if sum.AccountsByDepth[2] == 0 {
		t.Error("no depth-2 chains — harvested info should unlock middle layers")
	}
	// Accounts-by-depth must total the account count.
	var depthTotal int64
	for _, c := range sum.AccountsByDepth {
		depthTotal += c
	}
	if depthTotal != sum.AccountsCompromised {
		t.Errorf("depth histogram sums to %d, accounts = %d", depthTotal, sum.AccountsCompromised)
	}
	// Victim histograms partition the intercepted set.
	var victimTotal int64
	for _, c := range sum.VictimsByMaxDepth {
		victimTotal += c
	}
	if victimTotal != sum.VictimsCompromised {
		t.Errorf("victim depth histogram sums to %d, compromised = %d", victimTotal, sum.VictimsCompromised)
	}
	var svcTotal int64
	for _, c := range sum.ServiceTakeovers {
		svcTotal += c
	}
	if svcTotal != sum.AccountsCompromised {
		t.Errorf("service takeovers sum to %d, accounts = %d", svcTotal, sum.AccountsCompromised)
	}
	// The shared cracker must have recovered keys, and the Kc-reuse
	// cache must have fired (ReauthSkip defaults to 0.6).
	if sum.Sniffer.CracksSucceeded == 0 || sum.Sniffer.CracksSucceeded != sum.Sniffer.CracksAttempted {
		t.Errorf("crack stats: %+v", sum.Sniffer)
	}
	if sum.Sniffer.KcReuseHits == 0 {
		t.Errorf("Kc-reuse cache never hit: %+v", sum.Sniffer)
	}
	if sum.LeakRecords == 0 || sum.DossierHits == 0 {
		t.Errorf("leak DB unused: records %d hits %d", sum.LeakRecords, sum.DossierHits)
	}
}

// TestCampaignDeterministic pins the campaign half of the determinism
// property: the same seed must reproduce the identical summary (all
// counters; only wall-clock fields are excluded).
func TestCampaignDeterministic(t *testing.T) {
	var services []string
	summaries := make([]*Summary, 2)
	for i := range summaries {
		pop := testPop(t, 1500, 256)
		services = pop.Services()
		sum := runCampaign(t, Config{Population: pop, KeyBits: 10, Workers: 3})
		zeroClock(sum)
		summaries[i] = sum
	}
	a, b := summaries[0], summaries[1]
	if a.Sniffer != b.Sniffer {
		t.Fatalf("sniffer stats differ:\n%+v\n%+v", a.Sniffer, b.Sniffer)
	}
	// Compare the rendered reports: they cover every counter table.
	if ra, rb := a.Render(services, 20), b.Render(services, 20); ra != rb {
		t.Fatalf("summaries differ:\n--- a ---\n%s\n--- b ---\n%s", ra, rb)
	}
}

// TestCampaignBatchMatchesScalarRadio pins the gather-then-encrypt
// restructure's contract: the 64-lane bitsliced batch encryptor must
// produce a byte-identical Summary to the per-session scalar path —
// same per-victim draws, same COUNT schedule, same crack and Kc-reuse
// counters — across radio environments exercising every cipher mode
// and partial coverage.
func TestCampaignBatchMatchesScalarRadio(t *testing.T) {
	scenarios := []Scenario{
		{}, // paper baseline: 20% A5/0, rest A5/1, reauth skip 0.6
		{Radio: RadioEnv{A50Fraction: 0.3, A53Fraction: 0.3, OTPSessions: 2}},
		{Radio: RadioEnv{A50Fraction: -1, ReauthSkip: -1},
			Budget: AttackerBudget{Receivers: 8, CellChannels: 16}},
	}
	for i, sc := range scenarios {
		var rendered [2]string
		var services []string
		for j, scalar := range []bool{false, true} {
			pop := testPop(t, 1500, 256)
			services = pop.Services()
			sum := runCampaign(t, Config{
				Population: pop, KeyBits: 10, Workers: 3,
				ScalarRadio: scalar, Scenario: sc,
			})
			zeroClock(sum)
			rendered[j] = sum.Render(services, 25)
		}
		if rendered[0] != rendered[1] {
			t.Errorf("scenario %d: batch and scalar summaries differ:\n--- batch ---\n%s\n--- scalar ---\n%s",
				i, rendered[0], rendered[1])
		}
	}
}

// TestCampaignBatchMatchesScalarReplay pins the batched chain-replay
// contract at campaign scale: resolving every fresh crack of a shard's
// trace through one 64-lane a51.RecoverBatch call (Config.ScalarReplay
// off) must produce a byte-identical Summary — same crack, cache-hit
// and Kc-reuse counters, same per-victim outcomes — as the per-session
// scalar chain replay, on a fixed seed.
func TestCampaignBatchMatchesScalarReplay(t *testing.T) {
	scenarios := []Scenario{
		{}, // paper baseline: 20% A5/0, rest A5/1, reauth skip 0.6
		{Radio: RadioEnv{A50Fraction: 0.3, A53Fraction: 0.3, OTPSessions: 2}},
		{Radio: RadioEnv{A50Fraction: -1, ReauthSkip: -1},
			Budget: AttackerBudget{Receivers: 8, CellChannels: 16}},
	}
	for i, sc := range scenarios {
		var rendered [2]string
		var services []string
		for j, scalar := range []bool{false, true} {
			pop := testPop(t, 1500, 256)
			services = pop.Services()
			sum := runCampaign(t, Config{
				Population: pop, KeyBits: 10, Workers: 3,
				ScalarReplay: scalar, Scenario: sc,
			})
			zeroClock(sum)
			rendered[j] = sum.Render(services, 25)
		}
		if rendered[0] != rendered[1] {
			t.Errorf("scenario %d: batch-replay and scalar-replay summaries differ:\n--- batch ---\n%s\n--- scalar ---\n%s",
				i, rendered[0], rendered[1])
		}
	}
}

// TestCampaignWorkerRace drives the worker pool hard with many small
// shards so `go test -race` exercises the shared cracker, the global
// sharded leak DB and the streaming aggregation concurrently.
func TestCampaignWorkerRace(t *testing.T) {
	pop := testPop(t, 3000, 128) // 24 shards
	sum := runCampaign(t, Config{Population: pop, KeyBits: 10, Workers: 8})
	if sum.Subscribers != 3000 {
		t.Fatalf("Subscribers = %d", sum.Subscribers)
	}
}

func TestCampaignCoverageAndCipherKnobs(t *testing.T) {
	pop := testPop(t, 1200, 256)
	sum := runCampaign(t, Config{
		Population: pop, KeyBits: 10, Workers: 2,
		Scenario: Scenario{
			Radio:  RadioEnv{A50Fraction: -1, ReauthSkip: -1, OTPSessions: 1},
			Budget: AttackerBudget{Receivers: 8, CellChannels: 16},
		},
	})
	if sum.Covered == 0 || sum.Covered == sum.Subscribers {
		t.Errorf("coverage 0.5 covered %d of %d", sum.Covered, sum.Subscribers)
	}
	frac := float64(sum.Covered) / float64(sum.Subscribers)
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("coverage fraction = %.2f want ~0.5", frac)
	}
	if sum.A50Sessions != 0 {
		t.Errorf("A50Fraction<0 still produced %d plaintext sessions", sum.A50Sessions)
	}
	if sum.Sniffer.KcReuseHits != 0 {
		t.Errorf("single-session victims cannot hit the reuse cache: %+v", sum.Sniffer)
	}
	if sum.Sessions != sum.Covered {
		t.Errorf("sessions %d != covered %d with OTPSessions=1", sum.Sessions, sum.Covered)
	}
}

func TestCampaignPlatformRestriction(t *testing.T) {
	pop := testPop(t, 800, 256)
	web := runCampaign(t, Config{Population: pop, KeyBits: 10, Scenario: Scenario{Platform: "web"}})
	both := runCampaign(t, Config{Population: pop, KeyBits: 10})
	if web.AccountsCompromised == 0 {
		t.Fatal("web-only campaign compromised nothing")
	}
	if web.AccountsCompromised >= both.AccountsCompromised {
		t.Errorf("web-only (%d) should take fewer accounts than both platforms (%d)",
			web.AccountsCompromised, both.AccountsCompromised)
	}
}

func TestCampaignContextCancel(t *testing.T) {
	pop := testPop(t, 5000, 64)
	eng, err := New(Config{Population: pop, KeyBits: 10, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Run(ctx); err != context.Canceled {
		t.Fatalf("Run on canceled ctx = %v", err)
	}
}

func TestCampaignValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil population accepted")
	}
	pop := testPop(t, 10, 10)
	if _, err := New(Config{Population: pop, Backend: "nope"}); err == nil {
		t.Error("unknown backend accepted")
	}
	for _, sc := range []Scenario{
		{Policy: "nope"},
		{Platform: "gopher"},
		{Radio: RadioEnv{A50Fraction: 0.7, A53Fraction: 0.7}},
		{Segment: VictimSegment{Domain: "astrology"}},
		{Segment: VictimSegment{LeakTier: "vip"}},
	} {
		if _, err := New(Config{Population: pop, Backend: "bitsliced", Scenario: sc}); err == nil {
			t.Errorf("invalid scenario %+v accepted", sc)
		}
	}
}

func TestSummaryRender(t *testing.T) {
	pop := testPop(t, 600, 200)
	sum := runCampaign(t, Config{Population: pop, KeyBits: 10})
	out := sum.Render(pop.Services(), 5)
	for _, want := range []string{
		"Campaign summary", "subscribers", "Account takeovers by chain depth",
		"Victims by deepest chain", "Top 5 services", "Personal information harvested",
		"Kc reuse cache",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if sum.Duration <= 0 || sum.Duration > time.Hour {
		t.Errorf("implausible duration %v", sum.Duration)
	}
}
