package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"github.com/actfort/actfort/internal/ecosys"
	"github.com/actfort/actfort/internal/telecom"
)

// Scenario is the declarative description of one campaign run: which
// countermeasure policy fortifies the catalog before the attack plan
// compiles, what radio environment the victims live in, how large the
// attacker's receiver fleet is, and which victim cohort is targeted.
// Scenarios are plain data — JSON scenario files load straight into
// them — and a sweep is just a list of them evaluated against one
// shared population and one shared cracker table.
type Scenario struct {
	// Name labels the scenario in reports ("scenario-N" when empty).
	Name string `json:"name"`
	// Policy names the countermeasure.Policy applied to the ecosystem
	// catalog before plan compilation ("" or "none" = the unfortified
	// baseline; see countermeasure.Policies for the registry).
	Policy string `json:"policy,omitempty"`
	// Platform restricts the attacked presences: "web", "mobile" or
	// "both" (the default).
	Platform string `json:"platform,omitempty"`
	// Radio is the victims' radio environment.
	Radio RadioEnv `json:"radio,omitempty"`
	// Budget is the attacker's receiver-fleet budget.
	Budget AttackerBudget `json:"budget,omitempty"`
	// Segment restricts the victim cohort.
	Segment VictimSegment `json:"segment,omitempty"`
}

// RadioEnv describes the cellular conditions a scenario's victims camp
// under.
//
// Probability fields follow one scenario-JSON convention: 0 (or the
// field absent) selects the paper's measured default, a negative value
// means "none", and anything above 1 is rejected by normalize — a JSON
// file saying "reauthSkip": 5 is a bug, not a clamp to certainty.
type RadioEnv struct {
	// A50Fraction is the share of victims on unencrypted (A5/0) cells.
	// 0 = the paper's default 0.2; negative = none (everyone ciphered);
	// must not exceed 1.
	A50Fraction float64 `json:"a50Fraction,omitempty"`
	// A53Fraction is the share of victims on cells upgraded to A5/3,
	// which the rig cannot crack. 0 = none (the measured networks had
	// not upgraded — here the default and "none" coincide); negative =
	// none, accepted for symmetry; must not exceed 1.
	A53Fraction float64 `json:"a53Fraction,omitempty"`
	// ReauthSkip is the probability a follow-up session reuses the
	// previous (RAND, Kc) instead of re-authenticating. 0 = the paper's
	// default 0.6; negative = none (operators always re-authenticate);
	// must not exceed 1.
	ReauthSkip float64 `json:"reauthSkip,omitempty"`
	// OTPSessions is how many OTP transmissions each victim's services
	// send during the observation window (0 = 3).
	OTPSessions int `json:"otpSessions,omitempty"`
}

// cellMix folds the fractions into the telecom draw helper.
func (r RadioEnv) cellMix() telecom.CellMix {
	return telecom.CellMix{A50: r.A50Fraction, A53: r.A53Fraction}
}

// sig is the rig-reuse key: scenarios with equal radio signatures run
// against identical receiver configurations, so per-shard sniffer rigs
// carry over between them without a rebuild.
func (r RadioEnv) sig() string {
	return fmt.Sprintf("a50=%g|a53=%g|reauth=%g|sessions=%d",
		r.A50Fraction, r.A53Fraction, r.ReauthSkip, r.OTPSessions)
}

// AttackerBudget sizes the interception fleet. The paper's rig was 16
// single-frequency receivers (Motorola C118s): each receiver camps on
// one ARFCN, so the probability a victim's serving channel is covered
// is Receivers/CellChannels — the physical model that replaces the
// earlier flat coverage knob.
type AttackerBudget struct {
	// Receivers is the fleet size (0 = 16, the paper's hardware).
	Receivers int `json:"receivers,omitempty"`
	// CellChannels is how many ARFCNs the victims' serving cells spread
	// across (0 = Receivers: the fleet covers every channel).
	CellChannels int `json:"cellChannels,omitempty"`
}

// Coverage is the resulting per-victim interception probability.
func (b AttackerBudget) Coverage() float64 {
	if b.CellChannels <= 0 {
		return 1
	}
	c := float64(b.Receivers) / float64(b.CellChannels)
	if c > 1 {
		c = 1
	}
	return c
}

// Leak-tier cohort names for VictimSegment.LeakTier.
const (
	// LeakTierLeaked targets subscribers present in any leak database.
	LeakTierLeaked = "leaked"
	// LeakTierClean targets subscribers absent from every leak DB.
	LeakTierClean = "clean"
	// LeakTierBreach targets full breach rows (name/address dumps).
	LeakTierBreach = "breach"
	// LeakTierWiFi targets phishing-WiFi harvests (phone number only).
	LeakTierWiFi = "wifi"
)

// VictimSegment restricts which subscribers a scenario attacks —
// per-domain and per-leak-tier cohorts, so sweeps can ask "how much
// does fortification help fintech users the attacker already has a
// dossier on?".
type VictimSegment struct {
	// Domain keeps only subscribers enrolled in at least one service of
	// this ecosys domain ("" = everyone), e.g. "fintech" or "email".
	Domain string `json:"domain,omitempty"`
	// LeakTier keeps only the named leak cohort ("" = everyone): one of
	// "leaked", "clean", "breach", "wifi".
	LeakTier string `json:"leakTier,omitempty"`
}

// normalize fills a scenario's defaults in place and validates every
// enumerated field, returning the effective scenario. idx names
// anonymous scenarios.
func (sc Scenario) normalize(idx int) (Scenario, error) {
	if sc.Name == "" {
		sc.Name = fmt.Sprintf("scenario-%d", idx)
	}
	switch strings.ToLower(sc.Platform) {
	case "", "both":
		sc.Platform = "both"
	case "web":
		sc.Platform = "web"
	case "mobile":
		sc.Platform = "mobile"
	default:
		return sc, fmt.Errorf("campaign: scenario %s: unknown platform %q (want web, mobile or both)", sc.Name, sc.Platform)
	}
	r := &sc.Radio
	if r.OTPSessions <= 0 {
		r.OTPSessions = 3
	}
	// Every probability field must land in [0, 1] after the zero-value
	// convention resolves (0 = paper default, negative = none). A value
	// above 1 is a misconfiguration, never a clamp: "reauthSkip": 5
	// would silently pin every victim to one Kc forever.
	if r.ReauthSkip > 1 {
		return sc, fmt.Errorf("campaign: scenario %s: reauthSkip %g out of range (probabilities live in [0, 1]; 0 = default 0.6, negative = always re-authenticate)",
			sc.Name, r.ReauthSkip)
	}
	if r.A50Fraction > 1 {
		return sc, fmt.Errorf("campaign: scenario %s: a50Fraction %g out of range (fractions live in [0, 1]; 0 = default 0.2, negative = none)",
			sc.Name, r.A50Fraction)
	}
	if r.A53Fraction > 1 {
		return sc, fmt.Errorf("campaign: scenario %s: a53Fraction %g out of range (fractions live in [0, 1]; 0 = none)",
			sc.Name, r.A53Fraction)
	}
	if r.ReauthSkip == 0 {
		r.ReauthSkip = 0.6
	} else if r.ReauthSkip < 0 {
		r.ReauthSkip = 0
	}
	if r.A50Fraction == 0 {
		r.A50Fraction = 0.2
	} else if r.A50Fraction < 0 {
		r.A50Fraction = 0
	}
	if r.A53Fraction < 0 {
		r.A53Fraction = 0
	}
	if r.A50Fraction+r.A53Fraction > 1 {
		return sc, fmt.Errorf("campaign: scenario %s: A5/0 (%g) + A5/3 (%g) fractions exceed 1",
			sc.Name, r.A50Fraction, r.A53Fraction)
	}
	b := &sc.Budget
	if b.Receivers == 0 {
		b.Receivers = 16
	}
	if b.Receivers < 0 {
		b.Receivers = 0
	}
	if b.CellChannels <= 0 {
		b.CellChannels = b.Receivers
		if b.CellChannels <= 0 {
			b.CellChannels = 1
		}
	}
	if sc.Segment.Domain != "" {
		if _, err := domainByName(sc.Segment.Domain); err != nil {
			return sc, fmt.Errorf("campaign: scenario %s: %w", sc.Name, err)
		}
	}
	switch sc.Segment.LeakTier {
	case "", LeakTierLeaked, LeakTierClean, LeakTierBreach, LeakTierWiFi:
	default:
		return sc, fmt.Errorf("campaign: scenario %s: unknown leak tier %q (want %s, %s, %s or %s)",
			sc.Name, sc.Segment.LeakTier, LeakTierLeaked, LeakTierClean, LeakTierBreach, LeakTierWiFi)
	}
	return sc, nil
}

// Normalized returns the scenario with every default filled and every
// enumerated field validated — exactly the normalization RunScenario
// applies before executing, exported so the query service can surface
// validation failures as structured 400s before a run is admitted.
//
// Normalization is deliberately NOT idempotent: the scenario-JSON
// zero-value convention (0 = paper default, negative = none) means a
// normalized RadioEnv whose ReauthSkip resolved to "none" (0) would
// resolve to the 0.6 default if normalized again. Callers therefore
// validate with Normalized but hand the ORIGINAL scenario to
// RunScenario/RunSweep, which normalize exactly once themselves.
func (sc Scenario) Normalized() (Scenario, error) {
	return sc.normalize(0)
}

// NormalizeSweep validates a sweep's scenario list the way RunSweep
// does — per-scenario normalization plus the unique-name check the
// comparative tables key on — and returns the normalized list. Like
// Normalized, the result is for inspection and error surfacing, not
// for feeding back into RunSweep (normalization is not idempotent; see
// Normalized). An empty list is an error here: the DefaultSweep
// substitution is RunSweep's own convenience, not part of validation.
func NormalizeSweep(scenarios []Scenario) ([]Scenario, error) {
	if len(scenarios) == 0 {
		return nil, fmt.Errorf("campaign: sweep holds no scenarios")
	}
	return normalizeSweepList(scenarios)
}

// normalizeSweepList is the shared validation loop behind RunSweep and
// NormalizeSweep: normalize each scenario under its index and reject
// duplicate names.
func normalizeSweepList(scenarios []Scenario) ([]Scenario, error) {
	seen := make(map[string]bool, len(scenarios))
	norm := make([]Scenario, len(scenarios))
	for i, sc := range scenarios {
		n, err := sc.normalize(i)
		if err != nil {
			return nil, err
		}
		if seen[n.Name] {
			return nil, fmt.Errorf("campaign: duplicate scenario name %q in sweep", n.Name)
		}
		seen[n.Name] = true
		norm[i] = n
	}
	return norm, nil
}

// platforms resolves the platform restriction (normalize ran first).
func (sc Scenario) platforms() []ecosys.Platform {
	switch sc.Platform {
	case "web":
		return []ecosys.Platform{ecosys.PlatformWeb}
	case "mobile":
		return []ecosys.Platform{ecosys.PlatformMobile}
	}
	return ecosys.AllPlatforms()
}

// domainByName resolves an ecosys domain from its lowercase name.
func domainByName(name string) (ecosys.Domain, error) {
	for _, d := range ecosys.AllDomains() {
		if d.String() == strings.ToLower(name) {
			return d, nil
		}
	}
	return 0, fmt.Errorf("unknown domain %q", name)
}

// LoadScenarios decodes a declarative scenario file: a JSON array of
// Scenario objects. Unknown fields are rejected so typos in sweep
// definitions fail loudly instead of silently running the default.
func LoadScenarios(r io.Reader) ([]Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var out []Scenario
	if err := dec.Decode(&out); err != nil {
		return nil, fmt.Errorf("campaign: decode scenario file: %w", err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("campaign: scenario file holds no scenarios")
	}
	return out, nil
}

// builtinScenarios is the named scenario shelf the CLI exposes.
var builtinScenarios = []Scenario{
	{Name: "baseline"},
	{Name: "fortified", Policy: "fortify-all"},
	{Name: "a53-mix", Radio: RadioEnv{A50Fraction: -1, A53Fraction: 0.6}},
	{Name: "harden-email", Policy: "harden-email"},
	{Name: "budget-4of16", Budget: AttackerBudget{Receivers: 4, CellChannels: 16}},
	{Name: "fintech-leaked", Segment: VictimSegment{Domain: "fintech", LeakTier: LeakTierLeaked}},
}

// BuiltinScenarios returns a copy of the named scenario shelf.
func BuiltinScenarios() []Scenario {
	return append([]Scenario(nil), builtinScenarios...)
}

// BuiltinScenario resolves one shelf entry by name.
func BuiltinScenario(name string) (Scenario, bool) {
	for _, sc := range builtinScenarios {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// DefaultSweep is the paper's core fortification experiment as a
// scenario list: the unfortified baseline, the fully fortified
// catalog, and the A5/3 radio upgrade, all over one shared population.
func DefaultSweep() []Scenario {
	out := make([]Scenario, 0, 3)
	for _, name := range []string{"baseline", "fortified", "a53-mix"} {
		sc, _ := BuiltinScenario(name)
		out = append(out, sc)
	}
	return out
}
