package campaign

import (
	"testing"

	"github.com/actfort/actfort/internal/population"
)

// TestCampaignLazyMatchesMaterialized pins the lazy-persona rework's
// contract: deriving subscriber attributes on demand from the draw
// streams (the default) must produce a byte-identical Summary to the
// eager MaterializedPersonas ablation — same leak DB, same dossier
// hits, same per-victim chain outcomes — across the batch pipeline and
// both scalar ablations, and across scenarios exercising leak-tier
// segmentation (the one knob that reads leak classes directly).
func TestCampaignLazyMatchesMaterialized(t *testing.T) {
	scenarios := []Scenario{
		{}, // paper baseline
		{Segment: VictimSegment{LeakTier: LeakTierBreach}},
		{Radio: RadioEnv{A50Fraction: 0.3, A53Fraction: 0.3, OTPSessions: 2},
			Segment: VictimSegment{LeakTier: LeakTierWiFi}},
		{Radio: RadioEnv{A50Fraction: -1, ReauthSkip: -1},
			Budget: AttackerBudget{Receivers: 8, CellChannels: 16}},
	}
	ablations := []struct {
		name         string
		scalarRadio  bool
		scalarReplay bool
	}{
		{"batch", false, false},
		{"scalar-radio", true, false},
		{"scalar-replay", false, true},
	}
	for _, ab := range ablations {
		t.Run(ab.name, func(t *testing.T) {
			for i, sc := range scenarios {
				var rendered [2]string
				var services []string
				for j, materialized := range []bool{false, true} {
					pop, err := population.New(population.Config{
						Seed: 7, Size: 1500, ShardSize: 256,
						MaterializedPersonas: materialized,
					})
					if err != nil {
						t.Fatal(err)
					}
					services = pop.Services()
					sum := runCampaign(t, Config{
						Population: pop, KeyBits: 10, Workers: 3,
						ScalarRadio: ab.scalarRadio, ScalarReplay: ab.scalarReplay,
						Scenario: sc,
					})
					zeroClock(sum)
					rendered[j] = sum.Render(services, 25)
				}
				if rendered[0] != rendered[1] {
					t.Errorf("scenario %d: lazy and materialized summaries differ:\n--- lazy ---\n%s\n--- materialized ---\n%s",
						i, rendered[0], rendered[1])
				}
			}
		})
	}
}
