package campaign

import (
	"sync"
	"time"

	"github.com/actfort/actfort/internal/obs"
)

// Engine telemetry on the process-wide obs registry: shard lifecycle
// counters, the rig-pool churn the ROADMAP called out, per-phase
// latency histograms split out of attackShard, and the run-progress
// gauges the -progress ticker and live scrapes read. Handles are
// package-level (one engine's shards dominate a process; concurrent
// engines aggregate, which is the honest process-wide view), and every
// hot-path touch is an atomic add or a per-shard Observe — a few per
// shard of thousands of subscribers, unmeasurable next to the shard
// itself.
var (
	metShardsStarted = obs.Default.NewCounter("campaign_shards_started_total",
		"Shard attack attempts started, counting retries of the same shard separately.")
	metShardsRetried = obs.Default.NewCounter("campaign_shards_retried_total",
		"Shard attempts that failed transiently and were retried with backoff.")
	metShardsQuarantined = obs.Default.NewCounter("campaign_shards_quarantined_total",
		"Shards abandoned after exhausting their attempt budget; their subscribers count as skipped.")
	metShardsJournaled = obs.Default.NewCounter("campaign_shards_journaled_total",
		"Shard results durably appended to the checkpoint journal.")
	metRigsBuilt = obs.Default.NewCounter("campaign_rigs_built_total",
		"Sniffer rigs constructed because the pool had no free rig for the radio environment.")
	metRigsReused = obs.Default.NewCounter("campaign_rigs_reused_total",
		"Shard attacks served by a pooled rig instead of a fresh build.")

	// Run-progress gauges, aggregated across every run in flight by
	// runProgress below. The cmd/campaign -progress ticker renders its
	// one-line status from exactly these series.
	metRunShardsDone = obs.Default.NewGauge("campaign_run_shards_done",
		"Shards completed (journaled or merged) across the currently running scenarios, including resumed ones.")
	metRunShardsTotal = obs.Default.NewGauge("campaign_run_shards_total",
		"Shards owned by the currently running scenarios (the engine's shard range, summed over overlapping runs).")
	metRunSubsDone = obs.Default.NewGauge("campaign_run_subscribers_done",
		"Subscribers processed or skipped so far across the currently running scenarios.")
	metRunSubsTotal = obs.Default.NewGauge("campaign_run_subscribers_total",
		"Population size of the currently running scenarios (summed over overlapping runs).")
	metVictimsPerSec = obs.Default.NewGauge("campaign_victims_per_sec",
		"Live throughput across running scenarios: subscribers processed by THIS process over its elapsed time.")
	metCoverage = obs.Default.NewGauge("campaign_coverage_fraction",
		"Live processed/(processed+skipped) fraction; below 1.0 means quarantined shards degraded coverage.")
	metPopBytesPerSub = obs.Default.NewGauge("campaign_population_bytes_per_subscriber",
		"Resident bytes per subscriber of the last generated shard (subscriber structs + enrollment arena): the lazy-persona footprint, ~16x smaller than materialized personas.")
)

// phaseNames are the attackShard stages the campaign_phase_seconds
// histogram labels — plus "aggregate", the aggregator's merge+journal
// work per shard. The crack stage lives in the sniffer
// (sniffer_crack_batch_seconds): key recovery happens inside feed.
var phaseNames = []string{"synth", "encrypt", "feed", "closure", "aggregate"}

// phaseOrder is the fixed presentation order of Summary.PhaseTimings:
// the attackShard stages in execution order, with the sniffer's crack
// stage (which runs inside feed) slotted after it.
var phaseOrder = []string{"synth", "encrypt", "feed", "crack", "closure", "aggregate"}

// phaseHists resolves one histogram handle per phase, in phaseNames
// order. These are the process-lifetime series /metrics scrapes; they
// stay live no matter how many runs overlap.
var phaseHists = func() map[string]*obs.Histogram {
	m := make(map[string]*obs.Histogram, len(phaseNames))
	for _, p := range phaseNames {
		m[p] = obs.Default.NewHistogram("campaign_phase_seconds",
			"Per-shard wall time of each attackShard phase (synth=gather, encrypt=batch cipher, feed=rig ingest incl. cracks, closure=chain reactions, aggregate=merge+journal).",
			obs.LatencyBuckets, obs.L("phase", p))
	}
	return m
}()

// phaseSet is one run's private phase histograms. Summary.PhaseTimings
// used to be computed by diffing snapshots of the process-lifetime
// histograms above, which silently mixes concurrent runs together; a
// phaseSet scopes the timings to the run that owns it. observe folds
// every sample into the global registry series too, so live scrapes
// see exactly what they always did.
type phaseSet struct {
	local map[string]*obs.Histogram
}

// newPhaseSet builds a fresh run-local histogram per phase, plus one
// for the sniffer's crack stage (fed via Sniffer.SetCrackObserver
// while this run has a rig checked out).
func newPhaseSet() *phaseSet {
	ps := &phaseSet{local: make(map[string]*obs.Histogram, len(phaseOrder))}
	for _, p := range phaseOrder {
		ps.local[p] = obs.NewLocalHistogram(obs.LatencyBuckets)
	}
	return ps
}

// observe records one phase sample into both the run-local histogram
// and the process-lifetime registry series.
func (ps *phaseSet) observe(phase string, start time.Time) {
	sec := time.Since(start).Seconds()
	ps.local[phase].Observe(sec)
	phaseHists[phase].Observe(sec)
}

// crack is the run-local histogram the rigs' batched-crack durations
// land in (the sniffer observes the global series itself).
func (ps *phaseSet) crack() *obs.Histogram { return ps.local["crack"] }

// timings builds the Summary's per-phase breakdown from the run-local
// histograms, in fixed presentation order, skipping phases that never
// ran.
func (ps *phaseSet) timings() []PhaseTiming {
	out := make([]PhaseTiming, 0, len(phaseOrder))
	for _, p := range phaseOrder {
		s := ps.local[p].Snapshot()
		if s.Count == 0 {
			continue
		}
		out = append(out, PhaseTiming{
			Phase: p,
			Count: s.Count,
			Total: time.Duration(s.Sum * float64(time.Second)),
			P50:   time.Duration(s.Quantile(0.50) * float64(time.Second)),
			P90:   time.Duration(s.Quantile(0.90) * float64(time.Second)),
			P99:   time.Duration(s.Quantile(0.99) * float64(time.Second)),
		})
	}
	return out
}

// runProgress aggregates the run-progress gauges across every run in
// flight in this process. Each run attaches its totals on start,
// reports per-merged-shard deltas, and detaches on exit; the published
// gauges are the sums over attached runs. When the last run detaches
// the gauges keep their final values (a scrape just after a campaign
// still sees what it did), and the next attach starting from idle
// resets the window.
type runProgress struct {
	mu     sync.Mutex
	active int
	start  time.Time // when active last left 0: the throughput window

	shardsDone, shardsTotal int64
	subsProc, subsSkip      int64 // processed/skipped, incl. resumed seeds
	subsTotal               int64
	window                  int64 // subscribers processed by THIS process this window
}

// prog is the process-wide aggregator behind the campaign_run_* gauges.
var prog runProgress

// attach registers a starting run: its shard range and population
// totals plus whatever a checkpoint resume already accounts for.
func (p *runProgress) attach(shardsTotal, subsTotal, doneShards, proc, skip int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.active == 0 {
		// A fresh window: drop the frozen final values of the last burst
		// of runs (the mutex itself must survive the reset).
		p.start = time.Now()
		p.shardsDone, p.shardsTotal = 0, 0
		p.subsProc, p.subsSkip, p.subsTotal = 0, 0, 0
		p.window = 0
	}
	p.active++
	p.shardsTotal += shardsTotal
	p.subsTotal += subsTotal
	p.shardsDone += doneShards
	p.subsProc += proc
	p.subsSkip += skip
	p.publish()
}

// merge folds one merged shard's contribution in.
func (p *runProgress) merge(proc, skip int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.shardsDone++
	p.subsProc += proc
	p.subsSkip += skip
	p.window += proc
	p.publish()
}

// detach removes a finished run's contributions — unless it was the
// last one, in which case the gauges freeze at their final values.
func (p *runProgress) detach(shardsTotal, subsTotal, doneShards, proc, skip, window int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.active--
	if p.active == 0 {
		return
	}
	p.shardsTotal -= shardsTotal
	p.subsTotal -= subsTotal
	p.shardsDone -= doneShards
	p.subsProc -= proc
	p.subsSkip -= skip
	p.window -= window
	p.publish()
}

// publish pushes the aggregate onto the gauges. Callers hold p.mu.
func (p *runProgress) publish() {
	metRunShardsDone.Set(float64(p.shardsDone))
	metRunShardsTotal.Set(float64(p.shardsTotal))
	metRunSubsDone.Set(float64(p.subsProc + p.subsSkip))
	metRunSubsTotal.Set(float64(p.subsTotal))
	if el := time.Since(p.start).Seconds(); el > 0 {
		metVictimsPerSec.Set(float64(p.window) / el)
	}
	if tot := p.subsProc + p.subsSkip; tot > 0 {
		metCoverage.Set(float64(p.subsProc) / float64(tot))
	}
}
