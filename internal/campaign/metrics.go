package campaign

import (
	"time"

	"github.com/actfort/actfort/internal/obs"
)

// Engine telemetry on the process-wide obs registry: shard lifecycle
// counters, the rig-pool churn the ROADMAP called out, per-phase
// latency histograms split out of attackShard, and the run-progress
// gauges the -progress ticker and live scrapes read. Handles are
// package-level (one engine's shards dominate a process; concurrent
// engines aggregate, which is the honest process-wide view), and every
// hot-path touch is an atomic add or a per-shard Observe — a few per
// shard of thousands of subscribers, unmeasurable next to the shard
// itself.
var (
	metShardsStarted = obs.Default.NewCounter("campaign_shards_started_total",
		"Shard attack attempts started, counting retries of the same shard separately.")
	metShardsRetried = obs.Default.NewCounter("campaign_shards_retried_total",
		"Shard attempts that failed transiently and were retried with backoff.")
	metShardsQuarantined = obs.Default.NewCounter("campaign_shards_quarantined_total",
		"Shards abandoned after exhausting their attempt budget; their subscribers count as skipped.")
	metShardsJournaled = obs.Default.NewCounter("campaign_shards_journaled_total",
		"Shard results durably appended to the checkpoint journal.")
	metRigsBuilt = obs.Default.NewCounter("campaign_rigs_built_total",
		"Sniffer rigs constructed because the pool was dry or the radio environment changed.")
	metRigsReused = obs.Default.NewCounter("campaign_rigs_reused_total",
		"Shard attacks served by a pooled rig instead of a fresh build.")

	// Run-progress gauges, reset by each attack() call and updated by
	// its aggregator as shards merge. The cmd/campaign -progress ticker
	// renders its one-line status from exactly these series.
	metRunShardsDone = obs.Default.NewGauge("campaign_run_shards_done",
		"Shards completed (journaled or merged) in the currently running scenario, including resumed ones.")
	metRunShardsTotal = obs.Default.NewGauge("campaign_run_shards_total",
		"Shards owned by the currently running scenario (the engine's shard range).")
	metRunSubsDone = obs.Default.NewGauge("campaign_run_subscribers_done",
		"Subscribers processed or skipped so far in the currently running scenario.")
	metRunSubsTotal = obs.Default.NewGauge("campaign_run_subscribers_total",
		"Population size of the currently running scenario.")
	metVictimsPerSec = obs.Default.NewGauge("campaign_victims_per_sec",
		"Live throughput of the running scenario: subscribers processed by THIS process over its elapsed time.")
	metCoverage = obs.Default.NewGauge("campaign_coverage_fraction",
		"Live processed/(processed+skipped) fraction; below 1.0 means quarantined shards degraded coverage.")
	metPopBytesPerSub = obs.Default.NewGauge("campaign_population_bytes_per_subscriber",
		"Resident bytes per subscriber of the last generated shard (subscriber structs + enrollment arena): the lazy-persona footprint, ~16x smaller than materialized personas.")
)

// phaseNames are the attackShard stages the campaign_phase_seconds
// histogram labels — plus "aggregate", the aggregator's merge+journal
// work per shard. The crack stage lives in the sniffer
// (sniffer_crack_batch_seconds): key recovery happens inside feed.
var phaseNames = []string{"synth", "encrypt", "feed", "closure", "aggregate"}

// phaseHists resolves one histogram handle per phase, in phaseNames
// order.
var phaseHists = func() map[string]*obs.Histogram {
	m := make(map[string]*obs.Histogram, len(phaseNames))
	for _, p := range phaseNames {
		m[p] = obs.Default.NewHistogram("campaign_phase_seconds",
			"Per-shard wall time of each attackShard phase (synth=gather, encrypt=batch cipher, feed=rig ingest incl. cracks, closure=chain reactions, aggregate=merge+journal).",
			obs.LatencyBuckets, obs.L("phase", p))
	}
	return m
}()

// crackHist is the sniffer's batched-crack histogram, resolved here so
// the per-run phase table can report the crack stage next to the
// campaign phases. Same registry, same family the sniffer observes
// into.
var crackHist = obs.Default.NewHistogram("sniffer_crack_batch_seconds",
	"Wall time of each batched RecoverAll call FeedBatch prefetches its fresh cracks through.",
	obs.LatencyBuckets)

// phaseSnapshot captures every phase histogram (and the crack
// histogram) at one instant; diffing two of them scopes the
// process-lifetime histograms to a single run.
type phaseSnapshot map[string]obs.HistSnapshot

// takePhaseSnapshot snapshots all phase histograms.
func takePhaseSnapshot() phaseSnapshot {
	s := make(phaseSnapshot, len(phaseNames)+1)
	for _, p := range phaseNames {
		s[p] = phaseHists[p].Snapshot()
	}
	s["crack"] = crackHist.Snapshot()
	return s
}

// phaseTimingsSince builds the Summary's per-phase breakdown from the
// histogram growth since base, in fixed presentation order.
func phaseTimingsSince(base phaseSnapshot) []PhaseTiming {
	now := takePhaseSnapshot()
	order := []string{"synth", "encrypt", "feed", "crack", "closure", "aggregate"}
	out := make([]PhaseTiming, 0, len(order))
	for _, p := range order {
		d := now[p].Sub(base[p])
		if d.Count == 0 {
			continue
		}
		out = append(out, PhaseTiming{
			Phase: p,
			Count: d.Count,
			Total: time.Duration(d.Sum * float64(time.Second)),
			P50:   time.Duration(d.Quantile(0.50) * float64(time.Second)),
			P90:   time.Duration(d.Quantile(0.90) * float64(time.Second)),
			P99:   time.Duration(d.Quantile(0.99) * float64(time.Second)),
		})
	}
	return out
}
