package campaign

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/actfort/actfort/internal/checkpoint"
	"github.com/actfort/actfort/internal/faultinject"
	"github.com/actfort/actfort/internal/report"
)

// ScenarioResult pairs a scenario with its summary — or, when the
// scenario failed at runtime, with the error that stopped it. A sweep
// records the error and keeps going: one misconfigured scenario must
// not cost the hours the others already ran.
type ScenarioResult struct {
	Scenario Scenario `json:"scenario"`
	Summary  *Summary `json:"summary,omitempty"`
	Error    string   `json:"error,omitempty"`
	// Duration is this scenario's own wall clock. Under a parallel
	// sweep the sweep's Duration stops being the scenarios' sum, so the
	// per-scenario cost lives here.
	Duration time.Duration `json:"duration,omitempty"`
}

// SweepSummary is the comparative output of RunSweep: one result per
// scenario over the same population, plus the shared-resource
// identifiers. The first scenario is the comparison baseline.
type SweepSummary struct {
	// Subscribers is the shared population size.
	Subscribers int64 `json:"subscribers"`
	// Backend names the one cracker every scenario shared; Workers the
	// pool width; RigsBuilt how many sniffer rigs were constructed in
	// total (rig reuse keeps it near the worker count).
	Backend   string `json:"backend"`
	Workers   int    `json:"workers"`
	RigsBuilt int64  `json:"rigsBuilt"`
	// Results holds one entry per scenario, in execution order.
	Results []ScenarioResult `json:"results"`
	// Duration is the whole sweep's wall clock.
	Duration time.Duration `json:"duration"`
}

// Baseline returns the first completed scenario's summary (nil when
// every scenario errored or the sweep is empty).
func (s *SweepSummary) Baseline() *Summary {
	for _, r := range s.Results {
		if r.Summary != nil {
			return r.Summary
		}
	}
	return nil
}

// RunSweep executes the scenarios against the engine's shared
// population, cracker table and rig pool, and returns the comparative
// summary. A nil or empty list runs DefaultSweep. Scenario names must
// be unique — the comparative tables key on them.
//
// Config.SweepParallel > 1 overlaps that many scenarios, all sharing
// the one Workers-bounded shard budget; Results stays in input order
// and every per-scenario Summary is byte-identical (modulo wall-clock
// fields) to a sequential sweep's, so parallelism only ever changes
// cost, never results. Environmental failures — a canceled context, an
// injected crash (treated as process death) or a checkpoint directory
// whose inputs changed — abort the whole sweep; any other error is
// scenario-local: it is recorded in that scenario's result row and the
// rest of the sweep keeps its results, exactly like the sequential
// semantics.
func (e *Engine) RunSweep(ctx context.Context, scenarios []Scenario) (*SweepSummary, error) {
	if len(scenarios) == 0 {
		scenarios = DefaultSweep()
	}
	norm, err := normalizeSweepList(scenarios)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	rigs0 := e.rigsBuilt.Load()
	sw := &SweepSummary{
		Subscribers: int64(e.cfg.Population.Size()),
		Backend:     e.cracker.Name(),
		Workers:     e.cfg.Workers,
		Results:     make([]ScenarioResult, len(norm)),
	}
	par := e.cfg.SweepParallel
	if par < 1 {
		par = 1
	}
	if par > len(norm) {
		par = len(norm)
	}
	// runCtx cancels the in-flight scenarios when one fails
	// environmentally; the launcher stops admitting new ones. sem (not
	// a fixed worker pool) keeps admission in input order, which with
	// par == 1 reproduces the sequential execution order exactly.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	sem := make(chan struct{}, par)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		abortIdx = len(norm)
		abortErr error
	)
	for i, sc := range norm {
		select {
		case sem <- struct{}{}:
		case <-runCtx.Done():
		}
		if runCtx.Err() != nil {
			break
		}
		wg.Add(1)
		go func(i int, sc Scenario) {
			defer wg.Done()
			defer func() { <-sem }()
			dir := ""
			if e.cfg.Checkpoint != nil {
				dir = filepath.Join(e.cfg.Checkpoint.Dir, sc.Name)
			}
			scStart := time.Now()
			sum, err := e.runScenario(runCtx, sc, dir)
			d := time.Since(scStart)
			mu.Lock()
			defer mu.Unlock()
			if err == nil {
				sw.Results[i] = ScenarioResult{Scenario: sc, Summary: sum, Duration: d}
				return
			}
			rootCause := ctx.Err() != nil || errors.Is(err, faultinject.ErrCrash) || errors.Is(err, checkpoint.ErrManifestMismatch)
			if rootCause || runCtx.Err() != nil {
				// Environmental: abort everything. The reported error is
				// the lowest-index root cause; scenarios that merely died
				// of the resulting runCtx cancellation are not causes.
				if rootCause && i < abortIdx {
					abortIdx, abortErr = i, fmt.Errorf("campaign: scenario %s: %w", sc.Name, err)
				}
				cancel()
				return
			}
			sw.Results[i] = ScenarioResult{Scenario: sc, Error: err.Error(), Duration: d}
		}(i, sc)
	}
	wg.Wait()
	if abortErr != nil {
		return nil, abortErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// The rig-build count is this sweep's delta, not the engine's
	// lifetime counter: a second sweep on a warm engine reports the
	// (near-zero) builds it actually caused.
	sw.RigsBuilt = e.rigsBuilt.Load() - rigs0
	sw.Duration = time.Since(start)
	return sw, nil
}

// delta renders a fortified count against its baseline as
// "-1,234 (-56.78%)". Exact ties render "±0" (no vacuous percent), and
// growth from a zero baseline renders "+N (new)" — a percentage against
// nothing is meaningless.
func delta(base, val int64) string {
	d := val - base
	if d == 0 {
		return "±0"
	}
	sign := "+"
	if d < 0 {
		sign = "" // comma keeps the minus
	}
	if base == 0 {
		return fmt.Sprintf("%s%s (new)", sign, comma(d))
	}
	return fmt.Sprintf("%s%s (%+.2f%%)", sign, comma(d), 100*float64(d)/float64(base))
}

// Render writes the comparative report: the sweep header, the
// per-scenario takeover-mass table with deltas against the baseline
// (the first scenario), and the per-service takeover deltas for the
// top baseline services — the fortification-evaluation view of the
// paper's second half.
func (s *SweepSummary) Render(services []string, top int) string {
	if len(s.Results) == 0 {
		return "sweep: no scenarios\n"
	}
	base := s.Baseline()
	out := &report.Table{
		Title:   "Fortification sweep — shared population, shared cracker table",
		Headers: []string{"metric", "value"},
	}
	out.AddRow("subscribers", comma(s.Subscribers))
	out.AddRow("scenarios", strconv.Itoa(len(s.Results)))
	out.AddRow("cracker backend", s.Backend)
	out.AddRow("workers", strconv.Itoa(s.Workers))
	out.AddRow("sniffer rigs built", strconv.FormatInt(s.RigsBuilt, 10))
	if s.Duration > 0 {
		out.AddRow("duration", s.Duration.Round(time.Millisecond).String())
	}
	text := out.String() + "\n"

	baseName := "-"
	if base != nil {
		baseName = base.Scenario
	}
	cmp := &report.Table{
		Title: fmt.Sprintf("Takeover mass by scenario (baseline: %q)", baseName),
		Headers: []string{"scenario", "policy", "targeted", "intercepted",
			"victims lost", "accounts lost", "Δ accounts vs baseline", "duration"},
	}
	for _, r := range s.Results {
		dur := r.Duration.Round(time.Millisecond).String()
		if r.Error != "" {
			cmp.AddRow(r.Scenario.Name, "-", "-", "-", "-", "-", "ERROR: "+r.Error, dur)
			continue
		}
		sum := r.Summary
		pol := sum.Policy
		if pol == "" {
			pol = "none"
		}
		d := "baseline"
		if sum != base {
			d = delta(base.AccountsCompromised, sum.AccountsCompromised)
		}
		cmp.AddRow(sum.Scenario, pol, comma(sum.Targeted), comma(sum.Intercepted),
			fmt.Sprintf("%s (%s)", comma(sum.VictimsCompromised), report.Pct(pct(sum.VictimsCompromised, sum.Subscribers))),
			comma(sum.AccountsCompromised), d, dur)
	}
	text += cmp.String() + "\n"
	if base != nil {
		text += s.serviceDeltas(services, top).String()
	}
	return text
}

// serviceDeltas ranks the baseline's top services by takeovers and
// shows every scenario's count next to them — the per-service view of
// what each fortification program actually protected.
func (s *SweepSummary) serviceDeltas(services []string, top int) *report.Table {
	if top <= 0 {
		top = 15
	}
	base := s.Baseline()
	type row struct {
		idx   int
		count int64
	}
	rows := make([]row, 0, len(base.ServiceTakeovers))
	for i, c := range base.ServiceTakeovers {
		if c > 0 {
			rows = append(rows, row{idx: i, count: c})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].count != rows[j].count {
			return rows[i].count > rows[j].count
		}
		return serviceName(services, rows[i].idx) < serviceName(services, rows[j].idx)
	})
	if len(rows) > top {
		rows = rows[:top]
	}
	headers := []string{"service"}
	for _, r := range s.Results {
		headers = append(headers, r.Scenario.Name)
	}
	t := &report.Table{
		Title:   fmt.Sprintf("Per-service takeovers — top %d baseline services across scenarios", len(rows)),
		Headers: headers,
	}
	for _, r := range rows {
		cells := []string{serviceName(services, r.idx)}
		for _, res := range s.Results {
			if res.Summary == nil {
				cells = append(cells, "-")
				continue
			}
			c := int64(0)
			if r.idx < len(res.Summary.ServiceTakeovers) {
				c = res.Summary.ServiceTakeovers[r.idx]
			}
			cell := comma(c)
			if res.Summary != base && r.count > 0 {
				cell += fmt.Sprintf(" (%+.1f%%)", 100*float64(c-r.count)/float64(r.count))
			}
			cells = append(cells, cell)
		}
		t.AddRow(cells...)
	}
	return t
}

// serviceName resolves a catalog index to its display name.
func serviceName(services []string, i int) string {
	if i < len(services) {
		return services[i]
	}
	return fmt.Sprintf("service-%d", i)
}
