package campaign

import (
	"context"
	"strings"
	"testing"
)

// sweepEngine builds a fresh engine over a fresh population for sweep
// tests.
func sweepEngine(t *testing.T, size, shard, workers int) *Engine {
	t.Helper()
	eng, err := New(Config{Population: testPop(t, size, shard), KeyBits: 10, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// normalizeClock zeroes every wall-clock-dependent field so rendered
// sweeps compare byte for byte.
func normalizeClock(sw *SweepSummary) {
	sw.Duration = 0
	sw.RigsBuilt = 0
	for i := range sw.Results {
		sw.Results[i].Duration = 0
		zeroClock(sw.Results[i].Summary)
	}
}

// TestSweepDeterministic pins the sweep half of the determinism
// property: the same seed and scenario list must reproduce a
// byte-identical comparative summary (wall-clock fields excluded).
func TestSweepDeterministic(t *testing.T) {
	renders := make([]string, 2)
	for i := range renders {
		eng := sweepEngine(t, 1500, 256, 3)
		sw, err := eng.RunSweep(context.Background(), DefaultSweep())
		if err != nil {
			t.Fatal(err)
		}
		normalizeClock(sw)
		renders[i] = sw.Render(eng.cfg.Population.Services(), 20)
	}
	if renders[0] != renders[1] {
		t.Fatalf("sweeps differ:\n--- a ---\n%s\n--- b ---\n%s", renders[0], renders[1])
	}
}

// TestSweepFortificationReducesTakeoverMass is the golden property of
// the paper's second half: a fortified catalog must STRICTLY reduce
// ecosystem-wide takeover mass against the same population, and the
// full program must beat the email-only hardening.
func TestSweepFortificationReducesTakeoverMass(t *testing.T) {
	eng := sweepEngine(t, 2000, 512, 4)
	sw, err := eng.RunSweep(context.Background(), []Scenario{
		{Name: "baseline"},
		{Name: "harden-email", Policy: "harden-email"},
		{Name: "fortified", Policy: "fortify-all"},
	})
	if err != nil {
		t.Fatal(err)
	}
	base := sw.Results[0].Summary
	email := sw.Results[1].Summary
	full := sw.Results[2].Summary
	if base.AccountsCompromised == 0 {
		t.Fatal("baseline compromised nothing; the comparison is vacuous")
	}
	if email.AccountsCompromised >= base.AccountsCompromised {
		t.Errorf("harden-email takeover mass %d !< baseline %d",
			email.AccountsCompromised, base.AccountsCompromised)
	}
	if full.AccountsCompromised >= email.AccountsCompromised {
		t.Errorf("fortify-all takeover mass %d !< harden-email %d",
			full.AccountsCompromised, email.AccountsCompromised)
	}
	// Interception is a radio property: policies must not change it.
	if base.Intercepted != email.Intercepted || base.Intercepted != full.Intercepted {
		t.Errorf("catalog policies changed interception: %d / %d / %d",
			base.Intercepted, email.Intercepted, full.Intercepted)
	}
}

// TestSweepA53MixShrinksInterception checks the radio-environment
// axis: upgrading cells to A5/3 must cut interception (and the rig
// must record the abandoned sessions) without touching the catalog.
func TestSweepA53MixShrinksInterception(t *testing.T) {
	eng := sweepEngine(t, 1500, 256, 3)
	sw, err := eng.RunSweep(context.Background(), []Scenario{
		{Name: "baseline"},
		{Name: "a53", Radio: RadioEnv{A50Fraction: -1, A53Fraction: 0.6}},
	})
	if err != nil {
		t.Fatal(err)
	}
	base, a53 := sw.Results[0].Summary, sw.Results[1].Summary
	if a53.Intercepted >= base.Intercepted {
		t.Errorf("A5/3 mix intercepted %d !< baseline %d", a53.Intercepted, base.Intercepted)
	}
	if a53.A53Sessions == 0 || a53.Sniffer.A53Abandoned == 0 {
		t.Errorf("A5/3 sessions unrecorded: sessions %d abandoned %d",
			a53.A53Sessions, a53.Sniffer.A53Abandoned)
	}
	if a53.AccountsCompromised >= base.AccountsCompromised {
		t.Errorf("A5/3 mix takeover mass %d !< baseline %d",
			a53.AccountsCompromised, base.AccountsCompromised)
	}
}

// TestSweepRigReuse pins the resource-sharing contract: scenarios with
// an unchanged radio environment must reuse pooled rigs, so total rig
// constructions stay bounded by the worker count instead of growing
// per scenario or per shard.
func TestSweepRigReuse(t *testing.T) {
	const workers = 4
	eng := sweepEngine(t, 2000, 128, workers) // 16 shards × 3 scenarios
	_, err := eng.RunSweep(context.Background(), []Scenario{
		{Name: "baseline"},
		{Name: "harden-email", Policy: "harden-email"},
		{Name: "fortified", Policy: "fortify-all"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if built := eng.RigsBuilt(); built > workers {
		t.Errorf("rigs built = %d, want <= %d (pool must reuse rigs across shards and scenarios)", built, workers)
	}
}

// TestSweepRaceSharedState drives a sweep with many small shards and a
// wide pool so `go test -race` exercises the rig pool, the plan cache,
// the shared cracker and the leak DB across scenario boundaries.
func TestSweepRaceSharedState(t *testing.T) {
	eng := sweepEngine(t, 3000, 128, 8)
	sw, err := eng.RunSweep(context.Background(), DefaultSweep())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sw.Results {
		if r.Summary.Subscribers != 3000 {
			t.Fatalf("scenario %s processed %d subscribers", r.Scenario.Name, r.Summary.Subscribers)
		}
	}
}

// TestSweepSegmentation checks the victim-cohort axis: domain and
// leak-tier segments must strictly shrink the targeted set, and the
// leaked/clean tiers must partition it.
func TestSweepSegmentation(t *testing.T) {
	eng := sweepEngine(t, 1500, 256, 3)
	sw, err := eng.RunSweep(context.Background(), []Scenario{
		{Name: "all"},
		{Name: "fintech", Segment: VictimSegment{Domain: "fintech"}},
		{Name: "leaked", Segment: VictimSegment{LeakTier: LeakTierLeaked}},
		{Name: "clean", Segment: VictimSegment{LeakTier: LeakTierClean}},
	})
	if err != nil {
		t.Fatal(err)
	}
	all := sw.Results[0].Summary
	fintech := sw.Results[1].Summary
	leaked := sw.Results[2].Summary
	clean := sw.Results[3].Summary
	if all.Targeted != all.Subscribers {
		t.Errorf("unsegmented run targeted %d of %d", all.Targeted, all.Subscribers)
	}
	if fintech.Targeted == 0 || fintech.Targeted >= all.Targeted {
		t.Errorf("fintech segment targeted %d of %d", fintech.Targeted, all.Targeted)
	}
	if leaked.Targeted == 0 || clean.Targeted == 0 || leaked.Targeted+clean.Targeted != all.Targeted {
		t.Errorf("leak tiers do not partition: leaked %d + clean %d != %d",
			leaked.Targeted, clean.Targeted, all.Targeted)
	}
	// Clean victims have no dossier by construction.
	if clean.DossierHits != 0 {
		t.Errorf("clean cohort had %d dossier hits", clean.DossierHits)
	}
}

// TestSweepDuplicateNamesRejected guards the comparative tables, which
// key on scenario names.
func TestSweepDuplicateNamesRejected(t *testing.T) {
	eng := sweepEngine(t, 200, 100, 2)
	_, err := eng.RunSweep(context.Background(), []Scenario{{Name: "x"}, {Name: "x"}})
	if err == nil || !strings.Contains(err.Error(), "duplicate scenario name") {
		t.Fatalf("err = %v", err)
	}
}

// TestLoadScenarios exercises the declarative scenario-file loader.
func TestLoadScenarios(t *testing.T) {
	src := `[
	  {"name": "baseline"},
	  {"name": "fortified", "policy": "fortify-all"},
	  {"name": "a53", "radio": {"a50Fraction": -1, "a53Fraction": 0.5},
	   "budget": {"receivers": 8, "cellChannels": 16},
	   "segment": {"domain": "fintech", "leakTier": "leaked"}}
	]`
	list, err := LoadScenarios(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 || list[2].Budget.Receivers != 8 || list[2].Segment.Domain != "fintech" {
		t.Fatalf("loaded %+v", list)
	}
	if _, err := LoadScenarios(strings.NewReader(`[{"name": "x", "typo": 1}]`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := LoadScenarios(strings.NewReader(`[]`)); err == nil {
		t.Fatal("empty scenario list accepted")
	}
}

// TestSweepRenderAndJSON smoke-checks the comparative renderer and the
// machine-readable export.
func TestSweepRenderAndJSON(t *testing.T) {
	eng := sweepEngine(t, 600, 200, 2)
	sw, err := eng.RunSweep(context.Background(), nil) // nil = DefaultSweep
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Results) != 3 {
		t.Fatalf("default sweep ran %d scenarios", len(sw.Results))
	}
	out := sw.Render(eng.cfg.Population.Services(), 5)
	for _, want := range []string{
		"Fortification sweep", "Takeover mass by scenario", "baseline",
		"fortified", "a53-mix", "Per-service takeovers", "Δ accounts vs baseline",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep report missing %q:\n%s", want, out)
		}
	}
}
