package campaign

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/actfort/actfort/internal/faultinject"
)

// phaseStructure flattens a summary's PhaseTimings to its
// wall-clock-independent shape — which phases ran and how often. The
// per-run histogram split must keep this identical whether scenarios
// run sequentially or overlap.
func phaseStructure(sum *Summary) string {
	var b strings.Builder
	for _, pt := range sum.PhaseTimings {
		fmt.Fprintf(&b, "%s:%d;", pt.Phase, pt.Count)
	}
	return b.String()
}

// mixedScenarios is a sweep list that alternates radio environments
// (three share the baseline signature, one retunes to an A5/3 mix), so
// it exercises the signature-keyed rig pool and plan-cache sharing.
func mixedScenarios() []Scenario {
	return []Scenario{
		{Name: "baseline"},
		{Name: "a53", Radio: RadioEnv{A50Fraction: -1, A53Fraction: 0.6}},
		{Name: "fortified", Policy: "fortify-all"},
		{Name: "budget", Budget: AttackerBudget{Receivers: 4, CellChannels: 16}},
	}
}

// TestConcurrentRunScenario is the tentpole contract: RunScenario on
// ONE engine must be safe to call from concurrent goroutines (run
// under -race in CI) and every concurrent call must produce the same
// summary — including the PhaseTimings structure — as a sequential run
// of the same scenario on a fresh engine.
func TestConcurrentRunScenario(t *testing.T) {
	pop := testPop(t, 2048, 128)
	cfg := Config{Population: pop, KeyBits: 10, Workers: 4}
	cfg.Cracker = sharedCracker(t, cfg)
	scenarios := mixedScenarios()

	want := make([]string, len(scenarios))
	for i, sc := range scenarios {
		eng, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sum, err := eng.RunScenario(context.Background(), sc)
		if err != nil {
			t.Fatal(err)
		}
		ps := phaseStructure(sum)
		zeroClock(sum)
		want[i] = ps + "\n" + sum.Render(pop.Services(), 10)
	}

	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, len(scenarios))
	errs := make([]error, len(scenarios))
	var wg sync.WaitGroup
	for i, sc := range scenarios {
		wg.Add(1)
		go func(i int, sc Scenario) {
			defer wg.Done()
			sum, err := eng.RunScenario(context.Background(), sc)
			if err != nil {
				errs[i] = err
				return
			}
			ps := phaseStructure(sum)
			zeroClock(sum)
			got[i] = ps + "\n" + sum.Render(pop.Services(), 10)
		}(i, sc)
	}
	wg.Wait()
	for i, sc := range scenarios {
		if errs[i] != nil {
			t.Fatalf("concurrent scenario %s: %v", sc.Name, errs[i])
		}
		if got[i] != want[i] {
			t.Errorf("scenario %s: concurrent summary differs from sequential:\n--- sequential ---\n%s\n--- concurrent ---\n%s",
				sc.Name, want[i], got[i])
		}
	}
}

// TestSweepParallelMatchesSequential pins RunSweep's parallel
// invariant: with SweepParallel > 1 the SweepSummary must be
// byte-identical (modulo wall-clock fields) to the sequential sweep —
// input-order results, same summaries, same PhaseTimings structure.
func TestSweepParallelMatchesSequential(t *testing.T) {
	pop := testPop(t, 2048, 128)
	base := Config{Population: pop, KeyBits: 10, Workers: 4}
	base.Cracker = sharedCracker(t, base)
	scenarios := mixedScenarios()

	runSweep := func(parallel int) (*SweepSummary, []string) {
		cfg := base
		cfg.SweepParallel = parallel
		eng, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sw, err := eng.RunSweep(context.Background(), scenarios)
		if err != nil {
			t.Fatal(err)
		}
		shapes := make([]string, len(sw.Results))
		for i, r := range sw.Results {
			shapes[i] = phaseStructure(r.Summary)
		}
		normalizeClock(sw)
		return sw, shapes
	}

	seq, seqShapes := runSweep(1)
	par, parShapes := runSweep(4)
	for i := range scenarios {
		if par.Results[i].Scenario.Name != scenarios[i].Name {
			t.Fatalf("parallel sweep result %d is %q, want input order %q",
				i, par.Results[i].Scenario.Name, scenarios[i].Name)
		}
		if seqShapes[i] != parShapes[i] {
			t.Errorf("scenario %s: PhaseTimings structure differs: sequential %q parallel %q",
				scenarios[i].Name, seqShapes[i], parShapes[i])
		}
	}
	seqRender := seq.Render(pop.Services(), 10)
	parRender := par.Render(pop.Services(), 10)
	if seqRender != parRender {
		t.Errorf("parallel sweep differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s",
			seqRender, parRender)
	}
}

// TestSweepMixedRadioEnvRigPool pins the signature-keyed rig pool: a
// sweep alternating radio environments must reuse each environment's
// rigs instead of dropping the pool at every switch, so constructions
// stay bounded by workers × distinct signatures however the scenarios
// interleave.
func TestSweepMixedRadioEnvRigPool(t *testing.T) {
	const workers = 4
	pop := testPop(t, 2048, 128)
	cfg := Config{Population: pop, KeyBits: 10, Workers: workers, SweepParallel: 2}
	cfg.Cracker = sharedCracker(t, cfg)
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two distinct signatures, each appearing twice, interleaved — the
	// access pattern the old single-signature pool thrashed on.
	sw, err := eng.RunSweep(context.Background(), []Scenario{
		{Name: "base-1"},
		{Name: "a53-1", Radio: RadioEnv{A50Fraction: -1, A53Fraction: 0.6}},
		{Name: "base-2", Policy: "harden-email"},
		{Name: "a53-2", Radio: RadioEnv{A50Fraction: -1, A53Fraction: 0.6}, Policy: "harden-email"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// With SweepParallel = 2 two scenarios share the worker budget, so
	// each signature's pool never exceeds the worker count.
	if built := eng.RigsBuilt(); built > 2*workers {
		t.Errorf("rigs built = %d, want <= %d (2 radio signatures x %d workers)", built, 2*workers, workers)
	}
	if sw.RigsBuilt != eng.RigsBuilt() {
		t.Errorf("first sweep RigsBuilt = %d, want the full delta %d", sw.RigsBuilt, eng.RigsBuilt())
	}
	// The satellite bugfix: a second sweep on the warm engine must
	// report ITS delta (zero — every rig is pooled), not the engine's
	// lifetime total.
	sw2, err := eng.RunSweep(context.Background(), []Scenario{
		{Name: "base-1"},
		{Name: "a53-1", Radio: RadioEnv{A50Fraction: -1, A53Fraction: 0.6}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sw2.RigsBuilt != 0 {
		t.Errorf("second sweep on warm engine reports RigsBuilt = %d, want 0 (delta, not lifetime)", sw2.RigsBuilt)
	}
}

// TestSweepParallelCheckpointResume kills a parallel checkpointed
// sweep with an injected crash mid-journal, then resumes it over the
// same directory tree: the resumed sweep must reproduce the clean
// sweep's results byte for byte (modulo wall-clock fields).
func TestSweepParallelCheckpointResume(t *testing.T) {
	pop := testPop(t, 2048, 128) // 16 shards per scenario
	base := Config{Population: pop, KeyBits: 10, Workers: 2, SweepParallel: 2}
	base.Cracker = sharedCracker(t, base)
	scenarios := []Scenario{
		{Name: "baseline"},
		{Name: "fortified", Policy: "fortify-all"},
		{Name: "a53", Radio: RadioEnv{A50Fraction: -1, A53Fraction: 0.6}},
	}

	clean, err := func() (*SweepSummary, error) {
		eng, err := New(base)
		if err != nil {
			return nil, err
		}
		return eng.RunSweep(context.Background(), scenarios)
	}()
	if err != nil {
		t.Fatal(err)
	}
	normalizeClock(clean)
	want := clean.Render(pop.Services(), 10)

	dir := t.TempDir()
	crashed := base
	crashed.Checkpoint = &Checkpoint{Dir: dir, SnapshotEvery: 4}
	// The 20th journal append across the overlapping scenarios crashes
	// the "process": roughly mid-sweep, with both in-flight scenarios
	// partially journaled.
	crashed.Fault, err = faultinject.New(faultinject.Config{
		Crash: map[faultinject.Point]int{faultinject.PointJournalAppend: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(crashed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunSweep(context.Background(), scenarios); !errors.Is(err, faultinject.ErrCrash) {
		t.Fatalf("crashing sweep returned %v, want ErrCrash", err)
	}

	resume := base
	resume.Checkpoint = &Checkpoint{Dir: dir, SnapshotEvery: 4}
	eng, err = New(resume)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := eng.RunSweep(context.Background(), scenarios)
	if err != nil {
		t.Fatal(err)
	}
	normalizeClock(sw)
	if got := sw.Render(pop.Services(), 10); got != want {
		t.Errorf("resumed parallel sweep differs from clean run:\n--- clean ---\n%s\n--- resumed ---\n%s", want, got)
	}
}

// TestScenarioProgress checks the scenario-aware progress hook: under
// a parallel sweep every scenario's callback carries its own name and
// reaches completion, while the legacy Progress callback keeps firing
// for compatibility.
func TestScenarioProgress(t *testing.T) {
	pop := testPop(t, 1024, 128)
	var (
		mu      sync.Mutex
		final   = map[string]int{}
		legacy  int
		totalOK = true
	)
	cfg := Config{
		Population: pop, KeyBits: 10, Workers: 2, SweepParallel: 3,
		Progress: func(done, total int) {
			mu.Lock()
			legacy++
			mu.Unlock()
		},
		ScenarioProgress: func(scenario string, done, total int) {
			mu.Lock()
			final[scenario] = done
			if total != pop.Size() {
				totalOK = false
			}
			mu.Unlock()
		},
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scenarios := []Scenario{
		{Name: "baseline"},
		{Name: "fortified", Policy: "fortify-all"},
		{Name: "a53", Radio: RadioEnv{A50Fraction: -1, A53Fraction: 0.6}},
	}
	sw, err := eng.RunSweep(context.Background(), scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if !totalOK {
		t.Errorf("ScenarioProgress saw a total != population size %d", pop.Size())
	}
	if legacy == 0 {
		t.Error("legacy Progress callback never fired")
	}
	for _, sc := range scenarios {
		if got := final[sc.Name]; got != pop.Size() {
			t.Errorf("scenario %s: last progress done = %d, want %d", sc.Name, got, pop.Size())
		}
	}
	for i, r := range sw.Results {
		if r.Summary == nil {
			t.Fatalf("result %d (%s) has no summary", i, r.Scenario.Name)
		}
		if r.Duration <= 0 {
			t.Errorf("scenario %s: Duration = %v, want > 0", r.Scenario.Name, r.Duration)
		}
	}
	if sw.Duration < time.Duration(0) {
		t.Errorf("sweep Duration = %v", sw.Duration)
	}
}
