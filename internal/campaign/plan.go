package campaign

import (
	"fmt"
	"math/bits"

	"github.com/actfort/actfort/internal/ecosys"
	"github.com/actfort/actfort/internal/slab"
	"github.com/actfort/actfort/internal/socialdb"
	"github.com/actfort/actfort/internal/tdg"
	"github.com/actfort/actfort/internal/telecom"
)

// attackPlan is the campaign's precompiled view of the ecosystem: the
// Transformation Dependency Graph flattened into dense integer-indexed
// tables so the chain-reaction closure for one victim costs a few
// array sweeps instead of a graph build. It is computed once per
// campaign and shared read-only by every worker.
type attackPlan struct {
	// accounts lists every presence in node order.
	accounts []ecosys.AccountID
	// svcIdx maps an account to its catalog service index (the same
	// order population.ServiceSet uses).
	svcIdx []int
	// svcAccounts inverts svcIdx: per service, its account indices.
	svcAccounts [][]int32
	// exposes is the per-account post-login information bitmask
	// (1 << InfoField).
	exposes []uint32
	// paths holds, per account, every takeover path that could ever
	// fall: baseline-satisfiable paths have no needs; paths demanding
	// unphishable factors are dropped at build time.
	paths [][]pathReq
	// baseline is the attacker-profile factor bitmask (PN + SC).
	baseline uint64
}

// pathReq is one compiled takeover path.
type pathReq struct {
	// needs lists the factors beyond the baseline profile, each with
	// the accounts able to supply it.
	needs []factorNeed
}

// factorNeed is one missing factor and its suppliers.
type factorNeed struct {
	bit       uint64
	suppliers []int32
}

// factorBit maps a factor kind to its mask bit.
func factorBit(f ecosys.FactorKind) uint64 { return 1 << uint(f) }

// factorMaskOf folds a factor set into a bitmask.
func factorMaskOf(s ecosys.FactorSet) uint64 {
	var m uint64
	for _, f := range s.Sorted() {
		m |= factorBit(f)
	}
	return m
}

// buildPlan compiles the catalog into the dense tables.
func buildPlan(cat *ecosys.Catalog, platforms []ecosys.Platform) (*attackPlan, error) {
	nodes := tdg.NodesFromCatalog(cat, platforms...)
	g, err := tdg.Build(nodes, ecosys.BaselineAttacker())
	if err != nil {
		return nil, err
	}

	svcIndex := make(map[string]int, cat.Len())
	for i, svc := range cat.Services() {
		svcIndex[svc.Name] = i
	}

	p := &attackPlan{
		accounts:    make([]ecosys.AccountID, 0, len(nodes)),
		svcIdx:      make([]int, 0, len(nodes)),
		svcAccounts: make([][]int32, cat.Len()),
		exposes:     make([]uint32, 0, len(nodes)),
		paths:       make([][]pathReq, len(nodes)),
		baseline:    factorMaskOf(ecosys.BaselineAttacker().Factors()),
	}
	acctIndex := make(map[ecosys.AccountID]int32, len(nodes))
	for i := range nodes {
		n := &nodes[i]
		si, ok := svcIndex[n.ID.Service]
		if !ok {
			return nil, fmt.Errorf("campaign: node %s not in catalog", n.ID)
		}
		acctIndex[n.ID] = int32(i)
		p.accounts = append(p.accounts, n.ID)
		p.svcIdx = append(p.svcIdx, si)
		p.svcAccounts[si] = append(p.svcAccounts[si], int32(i))
		var mask uint32
		for f := range n.Exposes {
			if n.Exposes[f] {
				mask |= 1 << uint(f)
			}
		}
		p.exposes = append(p.exposes, mask)
	}

	for i := range nodes {
		n := &nodes[i]
	pathLoop:
		for _, path := range n.Paths {
			if path.Purpose != ecosys.PurposeSignIn && path.Purpose != ecosys.PurposeReset {
				continue // only takeover paths propagate the chain
			}
			var req pathReq
			seen := uint64(0)
			for _, f := range path.Factors {
				bit := factorBit(f)
				if p.baseline&bit != 0 || seen&bit != 0 {
					continue
				}
				seen |= bit
				if f.Unphishable() {
					// Neither harvested information nor leak dossiers
					// supply biometrics/U2F: the path never falls.
					continue pathLoop
				}
				var sup []int32
				for _, from := range g.Suppliers(n.ID, f) {
					sup = append(sup, acctIndex[from])
				}
				req.needs = append(req.needs, factorNeed{bit: bit, suppliers: sup})
			}
			p.paths[i] = append(p.paths[i], req)
		}
	}
	return p, nil
}

// scratch is one worker's reusable state: the per-victim chain-closure
// tables, the per-shard radio session buffer the gather-then-encrypt
// path fills before the batch encryptor runs, the per-shard coverage
// and interception marks, and the pooled burst buffer the encoded
// trace lives in. All of it is recycled shard over shard (and, for the
// burst buffer, scenario over scenario), so a steady-state shard
// attack allocates nothing population-proportional.
type scratch struct {
	enrolled    []bool
	depth       []uint8
	active      []int32
	radio       []telecom.SMSSession
	covered     []bool
	intercepted []bool
	bursts      *telecom.BurstBuffer

	// Lazy-persona working set. phone is the attribute-derivation
	// scratch buffer (phones, IMSIs, leak-record fields); strs is the
	// shard-cycle string arena (per-shard IMSIs — reset at each shard's
	// start, after releaseRig has cleared the rig caches that saw the
	// previous shard's carves); durable is the grow-only arena behind
	// leak-record strings, never reset because the engine-lifetime leak
	// DB retains them; leakRecs is the pooled per-shard record buffer
	// the harvest phase rebuilds dump rows into.
	phone    []byte
	strs     slab.Slab[byte]
	durable  slab.Slab[byte]
	leakRecs []socialdb.Record
}

func newScratch(p *attackPlan) *scratch {
	return &scratch{
		enrolled: make([]bool, len(p.accounts)),
		depth:    make([]uint8, len(p.accounts)),
		active:   make([]int32, 0, 64),
		bursts:   telecom.AcquireBurstBuffer(),
	}
}

// release returns the scratch's pooled resources; the scratch must not
// be used afterwards.
func (s *scratch) release() {
	s.bursts.Release()
	s.bursts = nil
}

// boolScratch returns a zeroed length-n bool slice, reusing s's
// storage when it is large enough.
func boolScratch(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// maxUseful bounds chain depth: beyond it further layers are counted
// in the terminal bucket, and the fixpoint stops refining.
const maxUseful = MaxDepth

// chainDepths runs the per-victim chain-reaction closure: among the
// victim's enrolled accounts, an account's depth is 1 when a compiled
// path is satisfied by the attacker's factors (baseline + leak
// dossier, in `know`), else 1 + the max over the path's missing
// factors of the min depth of any enrolled supplier — the same
// fixpoint strategy.AccountDepths runs globally, restricted to this
// victim's footprint. On return scr.active lists the victim's
// enrolled accounts and scr.depth their depths (0 = never falls).
// The caller must call scr.reset() when done.
func (p *attackPlan) chainDepths(scr *scratch, enrolled []uint64, know uint64) {
	scr.active = scr.active[:0]
	for w, word := range enrolled {
		for word != 0 {
			j := w<<6 | bits.TrailingZeros64(word)
			word &= word - 1
			if j >= len(p.svcAccounts) {
				break
			}
			for _, a := range p.svcAccounts[j] {
				scr.enrolled[a] = true
				scr.active = append(scr.active, a)
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, a := range scr.active {
			cur := scr.depth[a]
			if cur == 1 {
				continue // already minimal
			}
			for _, path := range p.paths[a] {
				d := uint8(1)
				ok := true
				for _, need := range path.needs {
					if know&need.bit != 0 {
						continue
					}
					best := uint8(0)
					for _, s := range need.suppliers {
						if !scr.enrolled[s] {
							continue
						}
						if ds := scr.depth[s]; ds != 0 && (best == 0 || ds < best) {
							best = ds
							if best == 1 {
								break
							}
						}
					}
					if best == 0 {
						ok = false
						break
					}
					next := best + 1
					if next > maxUseful {
						next = maxUseful // clamp: deeper layers share a bucket
					}
					if next > d {
						d = next
					}
				}
				if ok && (cur == 0 || d < cur) {
					cur = d
				}
			}
			if cur != scr.depth[a] {
				scr.depth[a] = cur
				changed = true
			}
		}
	}
}

// reset clears the per-victim state touched by chainDepths.
func (s *scratch) reset() {
	for _, a := range s.active {
		s.enrolled[a] = false
		s.depth[a] = 0
	}
	s.active = s.active[:0]
}
