package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"github.com/actfort/actfort/internal/checkpoint"
	"github.com/actfort/actfort/internal/population"
)

// Checkpoint opts a run into the durability layer: every completed
// shard is journaled to Dir, periodic snapshots bound resume cost, and
// a rerun over the same directory — same population, scenario and
// cracker table, enforced by the manifest — continues where the dead
// process stopped. The resumed Summary is byte-identical to an
// uninterrupted run's (Duration/VictimsPerSec aside): shard results
// are pure functions of the seed and Summary.Merge is commutative
// integer addition, so completion order and process boundaries never
// show in the totals.
type Checkpoint struct {
	// Dir is the checkpoint directory (one scenario per directory; a
	// sweep gives each scenario a subdirectory named after it).
	Dir string
	// SnapshotEvery is the journaled-shard count between snapshot folds
	// (0 = checkpoint.DefaultSnapshotEvery).
	SnapshotEvery int
}

// scenarioHash digests the normalized scenario — policy, platform,
// radio environment, budget, segment — into the manifest key. Engine
// ablation knobs (ScalarRadio/ScalarReplay, worker count) are absent
// deliberately: the batch≡scalar invariant guarantees they cannot
// change results, so a run may resume under a different engine
// variant.
func scenarioHash(norm Scenario) (string, error) {
	b, err := json.Marshal(norm)
	if err != nil {
		return "", fmt.Errorf("campaign: hash scenario: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// identifier is the richer self-description a cracker backend may
// carry (a51.Table pins its full geometry and frame coverage).
type identifier interface{ Identity() string }

// crackerIdentity names the shared backend for the manifest: a
// mid-run backend swap would change crack outcomes, so resume refuses
// it.
func (e *Engine) crackerIdentity() string {
	if id, ok := e.cracker.(identifier); ok {
		return id.Identity()
	}
	return "backend/" + e.cracker.Name()
}

// manifest pins every input the run's results depend on.
func (e *Engine) manifest(norm Scenario) (checkpoint.Manifest, error) {
	h, err := scenarioHash(norm)
	if err != nil {
		return checkpoint.Manifest{}, err
	}
	pop := e.cfg.Population
	return checkpoint.Manifest{
		PopulationSeed:     pop.Seed(),
		PopulationSize:     pop.Size(),
		ShardSize:          pop.ShardSize(),
		LeakFraction:       pop.LeakFraction(),
		EnrollmentScale:    pop.EnrollmentScale(),
		FingerprintVersion: population.FingerprintVersion,
		ScenarioHash:       h,
		TableIdentity:      e.crackerIdentity(),
		NumShards:          pop.NumShards(),
		ShardLo:            e.cfg.ShardLo,
		ShardHi:            e.cfg.ShardHi,
	}, nil
}

// ckptRun is one scenario's open journal plus the state recovered from
// a previous process: the aggregator seed (snapshot + replayed journal
// records, already merged) and the done-shard bitmap the feeder skips.
// The timing fields feed the cumulative-throughput accounting: start
// anchors this process's contribution, activePrior carries the wall
// clock earlier processes banked in their snapshots (journal records
// appended after the last snapshot lose their tail of active time —
// the cost of not fsyncing a clock on every append), and subsPrior/
// resumed let the finalizer report a separate post-resume rate.
type ckptRun struct {
	j           *checkpoint.Journal
	seed        *Summary
	done        []bool
	start       time.Time
	activePrior time.Duration
	subsPrior   int64
	resumed     bool
}

// openCheckpoint opens (or resumes) the scenario's checkpoint
// directory and rebuilds the aggregator state the dead process had
// journaled.
func (e *Engine) openCheckpoint(dir string, norm Scenario) (*ckptRun, error) {
	m, err := e.manifest(norm)
	if err != nil {
		return nil, err
	}
	every := 0
	if e.cfg.Checkpoint != nil {
		every = e.cfg.Checkpoint.SnapshotEvery
	}
	j, st, err := checkpoint.Open(dir, m, checkpoint.Options{
		SnapshotEvery: every,
		Fault:         e.cfg.Fault,
	})
	if err != nil {
		return nil, err
	}
	seed := newSummary(len(e.cfg.Population.Services()))
	if st.Snapshot != nil {
		if err := json.Unmarshal(st.Snapshot, seed); err != nil {
			j.Close()
			return nil, fmt.Errorf("campaign: decode snapshot summary: %w", err)
		}
	}
	for _, rec := range st.Records {
		part := newSummary(len(e.cfg.Population.Services()))
		if err := json.Unmarshal(rec.Payload, part); err != nil {
			j.Close()
			return nil, fmt.Errorf("campaign: decode journaled shard %d: %w", rec.Shard, err)
		}
		seed.Merge(part)
	}
	return &ckptRun{
		j:           j,
		seed:        seed,
		done:        st.Done,
		start:       time.Now(),
		activePrior: seed.ActiveDuration,
		subsPrior:   seed.Subscribers,
		resumed:     st.Snapshot != nil || len(st.Records) > 0,
	}, nil
}

// Partial is one completed shard range of a multi-process run: the
// manifest naming its inputs and owned range, and its final summary.
type Partial struct {
	Dir      string
	Manifest checkpoint.Manifest
	Summary  *Summary
}

// LoadPartial reads a completed checkpoint directory's manifest and
// result for merging.
func LoadPartial(dir string) (*Partial, error) {
	m, err := checkpoint.ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	b, err := checkpoint.ReadResult(dir)
	if err != nil {
		return nil, err
	}
	var s Summary
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("campaign: decode result %s: %w", dir, err)
	}
	return &Partial{Dir: dir, Manifest: m, Summary: &s}, nil
}

// MergePartials combines the per-range summaries of one multi-process
// run into the whole-population Summary. It refuses partials whose
// run inputs disagree (manifest DiffRun) or whose shard ranges fail to
// tile [0, NumShards) exactly — a missing or overlapping range would
// silently under- or double-count. The merged totals are identical to
// a single-process run's; Workers sums across processes and the
// wall-clock fields are zeroed (concurrent processes have no single
// meaningful duration).
func MergePartials(parts []*Partial) (*Summary, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("campaign: merge: no partial results")
	}
	sorted := append([]*Partial(nil), parts...)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].Manifest.ShardLo < sorted[j].Manifest.ShardLo
	})
	ref := sorted[0].Manifest
	next := 0
	for _, p := range sorted {
		if diff := ref.DiffRun(p.Manifest); len(diff) > 0 {
			return nil, fmt.Errorf("campaign: merge: %s and %s are from different runs:\n  %s",
				sorted[0].Dir, p.Dir, diff[0])
		}
		if p.Manifest.ShardLo != next {
			if p.Manifest.ShardLo < next {
				return nil, fmt.Errorf("campaign: merge: shard ranges overlap at %d (%s)", p.Manifest.ShardLo, p.Dir)
			}
			return nil, fmt.Errorf("campaign: merge: shards [%d, %d) missing (no partial covers them)", next, p.Manifest.ShardLo)
		}
		next = p.Manifest.ShardHi
	}
	if next != ref.NumShards {
		return nil, fmt.Errorf("campaign: merge: shards [%d, %d) missing (no partial covers them)", next, ref.NumShards)
	}

	merged := &Summary{}
	b, err := json.Marshal(sorted[0].Summary)
	if err != nil {
		return nil, fmt.Errorf("campaign: merge: %w", err)
	}
	if err := json.Unmarshal(b, merged); err != nil {
		return nil, fmt.Errorf("campaign: merge: %w", err)
	}
	for _, p := range sorted[1:] {
		merged.Merge(p.Summary)
		merged.Workers += p.Summary.Workers
	}
	merged.recomputeCoverage()
	merged.Duration = 0
	merged.VictimsPerSec = 0
	merged.ActiveDuration = 0
	merged.ResumeVictimsPerSec = 0
	merged.PhaseTimings = nil
	return merged, nil
}
