// Package campaign is the population-scale attack engine: it runs the
// paper's chain-reaction attack not against one victim but across a
// synthetic subscriber population of millions (internal/population),
// quantifying how far one sniffed SMS OTP "goes nuclear" through the
// account ecosystem at operator scale — and, through declarative
// Scenarios and the sweep driver, how much fortification shrinks that
// mass.
//
// Architecture (the template every scaling subsystem follows):
//
//   - the population is sharded; a bounded worker pool streams shards,
//     so subscriber state (personas, enrollments, radio sessions) is
//     O(shard). The one population-proportional structure is the
//     attacker's merged leak database — the artifact the paper's
//     attacker actually accumulates — which grows with the leaked
//     fraction only (string headers over shard-owned bytes);
//   - every worker synthesizes each victim's OTP radio sessions with
//     the same burst encoder the live Network uses and feeds them to a
//     per-shard passive sniffer rig — batched sniffer sessions;
//   - all rigs share ONE A5/1 cracker backend, so a single precomputed
//     TMTO table is amortized across the entire population AND across
//     every scenario of a sweep; rigs themselves are pooled by
//     radio-environment signature and reused between shards and between
//     scenarios — including concurrent scenarios mixing environments;
//   - harvested leak records live in one sharded socialdb hit by every
//     worker concurrently;
//   - per-victim chain reactions are evaluated against a precompiled
//     Transformation Dependency Graph plan (integer tables, no
//     per-victim graph builds); each scenario compiles its own plan
//     from its policy-fortified catalog, cached by (policy, platform);
//   - metrics stream to a single aggregator as per-shard partial
//     summaries and render through internal/report.
//
// Batch ≡ scalar invariant: for a fixed seed the campaign Summary is
// byte-identical whichever engine variant runs — the 64-lane batch
// radio synthesis vs. per-session scalar encoding (Config.ScalarRadio)
// and the 64-lane batched TMTO chain replay vs. per-session scalar
// lookups (Config.ScalarReplay). The batch paths change cost, never
// results; fixed-seed Summary-equality tests enforce it.
package campaign

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/actfort/actfort/internal/a51"
	"github.com/actfort/actfort/internal/countermeasure"
	"github.com/actfort/actfort/internal/ecosys"
	"github.com/actfort/actfort/internal/faultinject"
	"github.com/actfort/actfort/internal/gsmcodec"
	"github.com/actfort/actfort/internal/obs"
	"github.com/actfort/actfort/internal/population"
	"github.com/actfort/actfort/internal/slab"
	"github.com/actfort/actfort/internal/sniffer"
	"github.com/actfort/actfort/internal/socialdb"
	"github.com/actfort/actfort/internal/telecom"
)

// Config parameterizes an Engine: the shared resources every scenario
// of a sweep reuses. Per-run knobs (countermeasure policy, radio
// environment, attacker budget, victim cohort) live in Scenario.
type Config struct {
	// Population is the subscriber base to attack (required).
	Population *population.Population
	// Workers bounds the shard worker pool (0 = GOMAXPROCS).
	Workers int
	// Backend selects the shared A5/1 cracker ("table" when empty; see
	// a51.NewCracker). Cracker overrides it when non-nil.
	Backend string
	Cracker a51.Cracker
	// KeyBits is the A5/1 session-key space (0 = 12, as the case-study
	// scenarios use).
	KeyBits int
	// ScalarRadio forces per-session scalar A5/1 encryption for campaign
	// radio synthesis instead of the 64-lane bitsliced batch encryptor —
	// the pre-batch path, kept for batch≡scalar equivalence tests and
	// ablation benchmarks.
	ScalarRadio bool
	// ScalarReplay forces the rigs to resolve session keys one at a
	// time through the backend's scalar chain replay (Cracker.Recover)
	// instead of gathering every crack of a shard's trace into one
	// 64-lane bitsliced a51.BatchCracker.RecoverBatch call — the
	// pre-batch lookup path, kept for batch≡scalar equivalence tests
	// and ablation benchmarks, like ScalarRadio.
	ScalarReplay bool
	// Scenario is the default scenario Run executes; the zero value is
	// the paper's baseline environment (no policy, measured radio mix,
	// full-coverage 16-receiver fleet, whole population).
	Scenario Scenario
	// Progress, when non-nil, receives (subscribersDone, total) after
	// every merged shard of the scenario currently running. Under a
	// parallel sweep the callbacks of overlapping scenarios interleave;
	// ScenarioProgress carries the scenario identity.
	Progress func(done, total int)
	// ScenarioProgress, when non-nil, receives (scenario, done, total)
	// after every merged shard — the scenario-aware form of Progress,
	// unambiguous when SweepParallel overlaps runs. Both callbacks fire
	// when both are set. Callbacks of concurrent scenarios may arrive
	// concurrently; the callee synchronizes.
	ScenarioProgress func(scenario string, done, total int)
	// SweepParallel bounds how many sweep scenarios RunSweep keeps in
	// flight at once (0 or 1 = sequential, the default). However many
	// scenarios overlap, their shard work shares the one Workers-bounded
	// budget, so parallelism overlaps a scenario's tail (aggregation,
	// stragglers) with the next scenario's start instead of
	// oversubscribing the machine.
	SweepParallel int

	// Checkpoint, when non-nil, makes runs durable: every completed
	// shard is journaled, periodic snapshots fold the journal away, and
	// a rerun over the same directory resumes from the last journaled
	// shard instead of starting over. Nil keeps runs in-memory only.
	Checkpoint *Checkpoint
	// ShardLo and ShardHi bound the contiguous shard range
	// [ShardLo, ShardHi) this engine owns — the multi-process split:
	// each process takes a disjoint range and its own checkpoint
	// directory, and MergePartials combines the results. Both zero =
	// the whole population.
	ShardLo, ShardHi int
	// MaxShardAttempts bounds how many times a failing shard is
	// attempted before quarantine (0 = 3). Only injected or I/O shard
	// failures retry; shard computation itself is deterministic.
	MaxShardAttempts int
	// RetryBackoff is the base delay before a shard retry, doubling per
	// attempt and capped at RetryBackoffMax (0 = no delay).
	RetryBackoff    time.Duration
	RetryBackoffMax time.Duration
	// Fault injects deterministic crashes and shard failures into the
	// run — the recovery-path test harness (nil = no faults).
	Fault *faultinject.Injector

	// Trace, when non-nil, receives the shard-lifecycle event stream:
	// shard_start/done/retry/quarantine per attempt, journal and
	// snapshot boundaries, run start/done. Events never affect results;
	// a nil Trace costs nothing (every TraceWriter method is nil-safe).
	Trace *obs.TraceWriter
}

// Engine is the resident core: the shared resources every scenario —
// sequential or concurrent — draws on. Everything here is either
// immutable after New (population, cracker table, key space) or
// guarded for concurrent use (plan cache, leak DB, rig pool, shard
// budget), so RunScenario is safe to call from multiple goroutines at
// once; all per-run state lives in the run type. Build with New,
// execute one scenario with Run/RunScenario or a comparative list with
// RunSweep.
type Engine struct {
	cfg     Config
	space   a51.KeySpace
	cracker a51.Cracker
	// leaks is the attacker's merged leak database, assembled during
	// the harvest phase and hit concurrently by every attack worker.
	// It persists across sweep scenarios: the records are population
	// facts, independent of any scenario knob. harvest gates each
	// shard's merge behind a sync.Once, so later scenarios skip the
	// redundant rewrite — and a concurrent scenario reaching the shard
	// first blocks until the insert completes instead of racing past a
	// half-set flag into lookups over missing records.
	leaks   *socialdb.DB
	harvest []sync.Once

	// plans caches compiled attack plans by (policy, platform): a sweep
	// comparing radio environments under one policy compiles once.
	planMu sync.Mutex
	plans  map[planKey]*attackPlan

	// The rig pool: free sniffer rigs reusable by any worker, keyed by
	// radio-environment signature (a rig is re-tuned state; only an
	// identical environment can reuse it). Keying — rather than the old
	// single last-signature pool — keeps rigs warm when concurrent or
	// alternating scenarios mix environments instead of thrashing the
	// whole pool on every switch. rigsBuilt counts constructions so
	// tests can pin reuse.
	rigMu     sync.Mutex
	rigFree   map[string][]*sniffer.Sniffer
	rigsBuilt atomic.Int64

	// shardSem is the engine-wide shard-worker budget: every worker of
	// every in-flight run acquires a slot per shard, so N overlapping
	// scenarios still run at most cfg.Workers shards at a time.
	shardSem chan struct{}
}

// planKey identifies one compiled plan.
type planKey struct {
	policy   string
	platform string
}

// New validates the shared resources and builds the cracker backend
// (including the one-off TMTO table precomputation for "table").
func New(cfg Config) (*Engine, error) {
	if cfg.Population == nil {
		return nil, fmt.Errorf("campaign: nil population")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.KeyBits <= 0 {
		cfg.KeyBits = 12
	}
	if cfg.MaxShardAttempts <= 0 {
		cfg.MaxShardAttempts = 3
	}
	num := cfg.Population.NumShards()
	if cfg.ShardLo == 0 && cfg.ShardHi == 0 {
		cfg.ShardHi = num
	}
	if cfg.ShardLo < 0 || cfg.ShardHi > num || cfg.ShardLo >= cfg.ShardHi {
		return nil, fmt.Errorf("campaign: shard range [%d, %d) invalid for %d shards",
			cfg.ShardLo, cfg.ShardHi, num)
	}
	e := &Engine{
		cfg:      cfg,
		space:    a51.KeySpace{Base: 0xC118000000000000, Bits: cfg.KeyBits},
		leaks:    socialdb.New(),
		harvest:  make([]sync.Once, cfg.Population.NumShards()),
		plans:    make(map[planKey]*attackPlan),
		rigFree:  make(map[string][]*sniffer.Sniffer),
		shardSem: make(chan struct{}, cfg.Workers),
	}
	var err error
	e.cracker = cfg.Cracker
	if e.cracker == nil {
		backend := cfg.Backend
		if backend == "" {
			backend = "table"
		}
		if backend == "table" {
			// The campaign's table is tuned for lookup throughput:
			// short chains cost a little more memory (still megabytes
			// at simulation key sizes) and cut the per-session replay
			// work several-fold — the right trade when one table is
			// amortized over millions of cracks. It covers exactly the
			// CCCH paging frame classes the 51×26 COUNT schedule can
			// put a known-plaintext burst on.
			e.cracker, err = a51.BuildTable(e.space, a51.TableConfig{
				Frames:   telecom.PagingFrames(),
				ChainLen: 2,
			})
		} else {
			e.cracker, err = a51.NewCracker(backend, e.space, 0)
		}
		if err != nil {
			return nil, err
		}
	}
	// Compile the default scenario's plan eagerly so a misconfigured
	// Config fails at New, like it always has.
	if _, err := e.planForScenario(cfg.Scenario); err != nil {
		return nil, err
	}
	return e, nil
}

// Cracker exposes the shared backend (benchmarks and the CLI report
// its name).
func (e *Engine) Cracker() a51.Cracker { return e.cracker }

// LeakDB exposes the merged leak database after Run.
func (e *Engine) LeakDB() *socialdb.DB { return e.leaks }

// RigsBuilt reports how many sniffer rigs the engine has constructed.
// Sweep tests pin rig reuse with it: scenarios sharing a radio
// environment must not grow it beyond the worker count.
func (e *Engine) RigsBuilt() int64 { return e.rigsBuilt.Load() }

// planForScenario normalizes sc and returns its cached or
// freshly compiled plan.
func (e *Engine) planForScenario(sc Scenario) (*attackPlan, error) {
	norm, err := sc.normalize(0)
	if err != nil {
		return nil, err
	}
	return e.plan(norm)
}

// plan returns the compiled plan for a normalized scenario, applying
// its countermeasure policy to the catalog first.
func (e *Engine) plan(sc Scenario) (*attackPlan, error) {
	key := planKey{policy: sc.Policy, platform: sc.Platform}
	if key.policy == "" {
		key.policy = "none"
	}
	e.planMu.Lock()
	defer e.planMu.Unlock()
	if p, ok := e.plans[key]; ok {
		return p, nil
	}
	pol, err := countermeasure.PolicyByName(sc.Policy)
	if err != nil {
		return nil, err
	}
	cat, err := pol.Apply(e.cfg.Population.Catalog())
	if err != nil {
		return nil, fmt.Errorf("campaign: apply policy %s: %w", pol.Name, err)
	}
	p, err := buildPlan(cat, sc.platforms())
	if err != nil {
		return nil, err
	}
	e.plans[key] = p
	return p, nil
}

// rig hands out a pooled sniffer rig for the given radio signature,
// building one when that environment's pool is dry (a new radio
// environment means re-tuned receivers, so rigs are only reusable
// under the signature that built them). Rigs only ever serve one
// worker at a time; crackObs, when non-nil, receives the rig's
// batched-crack durations for the duration of the checkout.
func (e *Engine) rig(net *telecom.Network, sig string, crackObs *obs.Histogram) *sniffer.Sniffer {
	e.rigMu.Lock()
	free := e.rigFree[sig]
	if n := len(free); n > 0 {
		r := free[n-1]
		e.rigFree[sig] = free[:n-1]
		e.rigMu.Unlock()
		metRigsReused.Inc()
		r.SetCrackObserver(crackObs)
		return r
	}
	e.rigMu.Unlock()
	e.rigsBuilt.Add(1)
	metRigsBuilt.Inc()
	r := sniffer.New(net, sniffer.Config{Cracker: e.cracker, ScalarReplay: e.cfg.ScalarReplay})
	r.SetCrackObserver(crackObs)
	return r
}

// releaseRig resets a rig, detaches the run-local crack observer, and
// returns it to its signature's pool for the next worker of any run
// sharing that radio environment.
func (e *Engine) releaseRig(r *sniffer.Sniffer, sig string) {
	r.Reset()
	r.SetCrackObserver(nil)
	e.rigMu.Lock()
	e.rigFree[sig] = append(e.rigFree[sig], r)
	e.rigMu.Unlock()
}

// Run executes the engine's default scenario.
func (e *Engine) Run(ctx context.Context) (*Summary, error) {
	return e.RunScenario(ctx, e.cfg.Scenario)
}

// RunScenario executes one scenario: harvest the leak databases, then
// attack every owned shard through the worker pool, streaming partial
// summaries into one aggregate. The returned Summary is deterministic
// for a fixed config apart from Duration/VictimsPerSec — including
// across kill-and-resume boundaries when a Checkpoint is configured.
// RunScenario is safe to call concurrently: each call builds its own
// run over the engine's shared core, and overlapping calls share the
// Workers-bounded shard budget.
func (e *Engine) RunScenario(ctx context.Context, sc Scenario) (*Summary, error) {
	dir := ""
	if e.cfg.Checkpoint != nil {
		dir = e.cfg.Checkpoint.Dir
	}
	return e.runScenario(ctx, sc, dir)
}

// run is the per-run half of the engine split: everything one
// executing scenario owns alone — the normalized scenario and its
// runtime view, the compiled plan (shared and read-only, cached on the
// engine), the checkpoint handle, the run-local phase histograms and
// the bound progress callback. The Engine holds only shared state;
// a run is built per RunScenario call and dies with it, which is what
// makes overlapping calls safe.
type run struct {
	e      *Engine
	norm   Scenario
	rt     *runtimeScenario
	plan   *attackPlan
	ck     *ckptRun
	phases *phaseSet
}

// runScenario is RunScenario with an explicit checkpoint directory, so
// a sweep can give each scenario its own subdirectory.
func (e *Engine) runScenario(ctx context.Context, sc Scenario, dir string) (*Summary, error) {
	start := time.Now()
	norm, err := sc.normalize(0)
	if err != nil {
		return nil, err
	}
	e.cfg.Trace.Emit(obs.TraceEvent{Event: "run_start", Shard: -1, Detail: norm.Name})
	r := &run{e: e, norm: norm, phases: newPhaseSet()}
	if r.plan, err = e.plan(norm); err != nil {
		return nil, err
	}
	if r.rt, err = e.newRuntime(norm); err != nil {
		return nil, err
	}
	if dir != "" {
		r.ck, err = e.openCheckpoint(dir, norm)
		if err != nil {
			return nil, err
		}
		defer r.ck.j.Close()
	}
	sum, err := r.attack(ctx)
	if err != nil {
		return nil, err
	}
	sum.Scenario = norm.Name
	sum.Policy = norm.Policy
	sum.Backend = e.cracker.Name()
	sum.Workers = e.cfg.Workers
	sum.recomputeCoverage()
	sum.Duration = time.Since(start)
	// Throughput is the cumulative rate: all subscribers ever processed
	// over all wall clock ever spent, across every process that worked
	// on this checkpoint directory. The pre-telemetry code divided the
	// full (resumed + new) victim count by this process's clock alone,
	// overstating resumed runs' rates by the resumed fraction.
	sum.ActiveDuration = sum.Duration
	sum.ResumeVictimsPerSec = 0
	if r.ck != nil {
		sum.ActiveDuration = r.ck.activePrior + sum.Duration
		if r.ck.resumed {
			if secs := sum.Duration.Seconds(); secs > 0 {
				sum.ResumeVictimsPerSec = float64(sum.Subscribers-r.ck.subsPrior) / secs
			}
		}
	}
	if secs := sum.ActiveDuration.Seconds(); secs > 0 {
		sum.VictimsPerSec = float64(sum.Subscribers) / secs
	}
	sum.PhaseTimings = r.phases.timings()
	if r.ck != nil {
		payload, err := json.Marshal(sum)
		if err != nil {
			return nil, fmt.Errorf("campaign: encode final summary: %w", err)
		}
		if err := r.ck.j.WriteResult(payload); err != nil {
			return nil, err
		}
	}
	e.cfg.Trace.Emit(obs.TraceEvent{Event: "run_done", Shard: -1, Subscribers: sum.Subscribers})
	e.cfg.Trace.Flush()
	return sum, nil
}

// runtimeScenario is a normalized scenario with its draw helpers
// precomputed: the cell mix, the budget arithmetic, and the victim
// segment compiled to a service bitset.
type runtimeScenario struct {
	sc         Scenario
	mix        telecom.CellMix
	receivers  uint64
	channels   uint64
	sessions   int
	reauthSkip float64
	sig        string
	// domainMask is nil for "everyone", else the catalog services of
	// the segment's domain as a bitset matching Subscriber.Enrolled.
	domainMask population.ServiceSet
}

// newRuntime compiles a normalized scenario's runtime view.
func (e *Engine) newRuntime(sc Scenario) (*runtimeScenario, error) {
	rt := &runtimeScenario{
		sc:         sc,
		mix:        sc.Radio.cellMix(),
		receivers:  uint64(sc.Budget.Receivers),
		channels:   uint64(sc.Budget.CellChannels),
		sessions:   sc.Radio.OTPSessions,
		reauthSkip: sc.Radio.ReauthSkip,
		sig:        sc.Radio.sig(),
	}
	if sc.Segment.Domain != "" {
		dom, err := domainByName(sc.Segment.Domain)
		if err != nil {
			return nil, err
		}
		cat := e.cfg.Population.Catalog()
		rt.domainMask = make(population.ServiceSet, (cat.Len()+63)/64)
		for i, svc := range cat.Services() {
			if svc.Domain == dom {
				rt.domainMask[i>>6] |= 1 << (uint(i) & 63)
			}
		}
	}
	return rt, nil
}

// targets reports whether the scenario's victim segment includes sub.
func (rt *runtimeScenario) targets(sub *population.Subscriber) bool {
	if rt.domainMask != nil {
		hit := false
		for w := range rt.domainMask {
			if w < len(sub.Enrolled) && sub.Enrolled[w]&rt.domainMask[w] != 0 {
				hit = true
				break
			}
		}
		if !hit {
			return false
		}
	}
	switch rt.sc.Segment.LeakTier {
	case LeakTierLeaked:
		return sub.Leaked
	case LeakTierClean:
		return !sub.Leaked
	case LeakTierBreach:
		return sub.Class == population.LeakBreach
	case LeakTierWiFi:
		return sub.Class == population.LeakWiFi
	}
	return true
}

// shardResult pairs a completed shard with its partial summary so the
// aggregator can journal it under the right index.
type shardResult struct {
	shard int
	part  *Summary
}

// attack streams every owned, not-yet-journaled shard through the
// run's worker pool and aggregates the partial summaries. Each worker
// acquires one slot of the engine-wide shard budget per shard, so
// concurrent runs collectively never exceed cfg.Workers shards in
// flight. With a checkpoint, the aggregator (the journal's single
// owner) appends each merged part and folds periodic snapshots; a
// journal failure — including an injected crash — cancels the run and
// drains the pool so no worker goroutine outlives the call.
func (r *run) attack(ctx context.Context) (*Summary, error) {
	e := r.e
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	pop := e.cfg.Population
	numServices := len(pop.Services())
	shards := make(chan int)
	parts := make(chan shardResult, e.cfg.Workers)

	var wg sync.WaitGroup
	for w := 0; w < e.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scr := newScratch(r.plan)
			defer scr.release()
			// A shell network per worker: the rig only needs the key
			// space; no cells, no subscribers, no global lock shared
			// with other workers.
			net := telecom.NewNetwork(telecom.Config{
				KeySpace: e.space,
				Seed:     pop.Seed(),
			})
			for i := range shards {
				select {
				case e.shardSem <- struct{}{}:
				case <-ctx.Done():
					return
				}
				part := r.runShard(ctx, i, net, scr)
				<-e.shardSem
				if part == nil {
					return // canceled mid-retry
				}
				select {
				case parts <- shardResult{shard: i, part: part}:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	var skip []bool
	if r.ck != nil {
		skip = r.ck.done
	}
	feedErr := make(chan error, 1)
	go func() {
		feedErr <- feedShards(ctx, shards, e.cfg.ShardLo, e.cfg.ShardHi, skip)
		wg.Wait()
		close(parts)
	}()

	sum := newSummary(numServices)
	seedShards := 0
	if r.ck != nil {
		sum = r.ck.seed
		for _, d := range r.ck.done {
			if d {
				seedShards++
			}
		}
	}
	subs0, skip0 := sum.Subscribers, sum.SubscribersSkipped
	shardsTotal := int64(e.cfg.ShardHi - e.cfg.ShardLo)
	subsTotal := int64(pop.Size())
	mergedShards := 0
	prog.attach(shardsTotal, subsTotal, int64(seedShards), subs0, skip0)
	defer func() {
		prog.detach(shardsTotal, subsTotal, int64(seedShards+mergedShards),
			sum.Subscribers, sum.SubscribersSkipped, sum.Subscribers-subs0)
	}()
	progress := func() {
		done := int(sum.Subscribers + sum.SubscribersSkipped)
		if e.cfg.Progress != nil {
			e.cfg.Progress(done, pop.Size())
		}
		if e.cfg.ScenarioProgress != nil {
			e.cfg.ScenarioProgress(r.norm.Name, done, pop.Size())
		}
	}
	if sum.Subscribers+sum.SubscribersSkipped > 0 {
		progress() // resumed shards count as done up front
	}
	var runErr error
	for res := range parts {
		if runErr != nil {
			continue // draining after failure so the pool can exit
		}
		aggStart := time.Now()
		sum.Merge(res.part)
		mergedShards++
		prog.merge(res.part.Subscribers, res.part.SubscribersSkipped)
		progress()
		if r.ck != nil {
			if err := r.journalShard(res.shard, res.part, sum); err != nil {
				runErr = err
				cancel()
			} else {
				metShardsJournaled.Inc()
			}
		}
		r.phases.observe("aggregate", aggStart)
	}
	ferr := <-feedErr
	if runErr != nil {
		return nil, runErr
	}
	if ferr != nil {
		return nil, ferr
	}
	return sum, nil
}

// journalShard appends one shard's partial summary and folds a
// snapshot of the merged state when one is due. An error — including
// an injected crash — means the run must stop writing immediately.
// Each snapshot carries the run's cumulative active duration so far,
// so a resuming process can keep accounting wall clock across the
// crash boundary instead of restarting the throughput denominator.
func (r *run) journalShard(shard int, part, sum *Summary) error {
	ck := r.ck
	payload, err := json.Marshal(part)
	if err != nil {
		return fmt.Errorf("campaign: encode shard %d summary: %w", shard, err)
	}
	if err := ck.j.Append(shard, payload); err != nil {
		return err
	}
	r.e.cfg.Trace.Emit(obs.TraceEvent{Event: "journal_append", Shard: shard, Subscribers: part.Subscribers})
	if !ck.j.Due() {
		return nil
	}
	sum.ActiveDuration = ck.activePrior + time.Since(ck.start)
	snap, err := json.Marshal(sum)
	if err != nil {
		return fmt.Errorf("campaign: encode snapshot: %w", err)
	}
	if err := ck.j.Snapshot(snap); err != nil {
		return err
	}
	r.e.cfg.Trace.Emit(obs.TraceEvent{Event: "snapshot", Shard: -1})
	r.e.cfg.Trace.Flush()
	return nil
}

// runShard attempts shard i against the fault injector's schedule:
// transient failures retry with bounded exponential backoff, while a
// poisoned shard or an exhausted attempt budget degrades to a
// quarantine summary — the shard's subscribers are counted as skipped
// and the run continues, reporting an explicit coverage fraction
// instead of aborting. A nil return means ctx was canceled mid-retry.
func (r *run) runShard(ctx context.Context, i int, net *telecom.Network, scr *scratch) *Summary {
	e := r.e
	pop := e.cfg.Population
	for attempt := 0; ; attempt++ {
		metShardsStarted.Inc()
		e.cfg.Trace.Emit(obs.TraceEvent{Event: "shard_start", Shard: i, Attempt: attempt})
		err := e.cfg.Fault.ShardAttempt(i, attempt)
		if err == nil {
			sh := pop.Shard(i)
			part := r.attackShard(sh, net, scr)
			sh.Release()
			e.cfg.Trace.Emit(obs.TraceEvent{Event: "shard_done", Shard: i, Attempt: attempt, Subscribers: part.Subscribers})
			return part
		}
		if faultinject.IsTransient(err) && attempt+1 < e.cfg.MaxShardAttempts {
			metShardsRetried.Inc()
			e.cfg.Trace.Emit(obs.TraceEvent{Event: "shard_retry", Shard: i, Attempt: attempt, Detail: err.Error()})
			if !sleepCtx(ctx, faultinject.Backoff(e.cfg.RetryBackoff, attempt, e.cfg.RetryBackoffMax)) {
				return nil
			}
			continue
		}
		metShardsQuarantined.Inc()
		e.cfg.Trace.Emit(obs.TraceEvent{Event: "shard_quarantine", Shard: i, Attempt: attempt, Detail: err.Error()})
		part := newSummary(len(pop.Services()))
		start, end := pop.ShardBounds(i)
		part.ShardsQuarantined = 1
		part.SubscribersSkipped = int64(end - start)
		return part
	}
}

// sleepCtx waits d (or not at all), reporting false when ctx was
// canceled first — the retry loop's cancellation point.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		select {
		case <-ctx.Done():
			return false
		default:
			return true
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// feedShards sends the not-yet-done shards of [lo, hi) on ch, honoring
// cancellation, and closes it.
func feedShards(ctx context.Context, ch chan<- int, lo, hi int, done []bool) error {
	defer close(ch)
	for i := lo; i < hi; i++ {
		if done != nil && done[i] {
			continue // journaled by a previous process; resume skips it
		}
		select {
		case ch <- i:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// otpTimestamp keeps synthesized TPDUs deterministic.
var otpTimestamp = time.Date(2021, 4, 19, 12, 0, 0, 0, time.UTC)

// baseARFCN is the first channel of the synthesized campaign cell;
// victims spread across [baseARFCN, baseARFCN+CellChannels).
const baseARFCN = 512

// attackShard runs one batch end to end, gather-then-encrypt: walk the
// shard once collecting every targeted victim's session descriptors
// (the per-victim draws and COUNT schedule are identical to the former
// encode-as-you-go path), encrypt the gathered A5/1 sessions in
// 64-lane bitsliced blocks, feed the bursts to a pooled sniffer rig
// backed by the shared cracker, then evaluate the chain reaction for
// each intercepted victim against the scenario's compiled plan.
func (r *run) attackShard(sh *population.Shard, net *telecom.Network, scr *scratch) *Summary {
	e, rt, plan := r.e, r.rt, r.plan
	pop := e.cfg.Population
	part := newSummary(len(pop.Services()))
	part.Subscribers = int64(len(sh.Subscribers))
	lazy := !pop.Materialized()
	if n := len(sh.Subscribers); n > 0 {
		metPopBytesPerSub.Set(float64(sh.MemBytes() / n))
	}

	// Harvest first: land this shard's leaked records in the global
	// attacker database (§V.A.1's "existing illegal databases"). A
	// victim's dossier lives in their own shard, so harvesting here
	// keeps lookups correct while every other worker's inserts and
	// lookups hit the same sharded store concurrently. The leak DB is a
	// population fact, not a scenario artifact, so each shard harvests
	// exactly once per engine and later sweep scenarios skip the
	// rewrite. On the lazy path the records don't exist yet: they are
	// rebuilt from the draw streams into the worker's pooled record
	// buffer, their strings carved from the worker's durable arena
	// (never reset — the global DB retains them for the engine's
	// lifetime), and bulk-inserted. The sync.Once gate (not a swapped
	// flag) makes a concurrent run's worker reaching this shard block
	// until the insert completes, so its closure-phase lookups never
	// see a half-harvested shard.
	e.harvest[sh.Index].Do(func() {
		if lazy {
			scr.leakRecs, scr.phone = pop.AppendLeakRecords(scr.leakRecs[:0], sh, &scr.durable, scr.phone)
			e.leaks.AddAll(scr.leakRecs)
		} else {
			e.leaks.Merge(sh.Leaks)
		}
	})
	// Per-shard leak accounting (persona phones are unique, so summing
	// shard counts equals the merged DB size): the count lands in the
	// journaled partial, which keeps resumed and multi-process runs
	// exact — a global e.leaks.Len() would miss skipped shards.
	part.LeakRecords = int64(sh.LeakCount)

	// Per-shard IMSI strings are carved from the shard-cycle arena:
	// they reach the sniffer rig's session caches, which releaseRig
	// resets before this worker's next shard reuses the arena.
	scr.strs.Reset()

	rig := e.rig(net, rt.sig, r.phases.crack())
	defer e.releaseRig(rig, rt.sig)
	synthStart := time.Now()
	seed := uint64(e.cfg.Population.Seed())
	sessions := rt.sessions
	scr.covered = boolScratch(scr.covered, len(sh.Subscribers))
	covered := scr.covered
	frame := uint32(0)

	// Gather phase: one shared OTP TPDU serves every synthesized
	// session, so the burst count driving the COUNT schedule is computed
	// once up front instead of marshaling per session. An unencodable
	// TPDU keeps the targeting/coverage counters and synthesizes nothing
	// — exactly what per-session encode failures used to do.
	deliver := gsmcodec.Deliver{
		Originator: "ActFort",
		Timestamp:  otpTimestamp,
		Text:       "Code 845512",
	}
	encodable := false
	perSession := uint32(0)
	if raw, err := deliver.Marshal(); err == nil {
		encodable = true
		perSession = uint32(telecom.SessionBurstCount(len(raw)))
	}
	batch := scr.radio[:0]
	for li := range sh.Subscribers {
		sub := &sh.Subscribers[li]
		if !rt.targets(sub) {
			continue // outside the scenario's victim segment
		}
		part.Targeted++
		idx := uint64(sub.Index)
		// The victim's serving channel: covered only when one of the
		// fleet's receivers camps on it.
		channel := population.Mix(seed, population.TagCoverage, idx) % rt.channels
		if channel >= rt.receivers {
			continue // victim's channel outside the rig's fleet
		}
		covered[li] = true
		part.Covered++
		if !encodable {
			continue
		}
		imsi := sub.IMSI
		if lazy {
			scr.phone = population.AppendIMSI(scr.phone[:0], sub.Index)
			imsi = slab.StringOf(&scr.strs, scr.phone)
		}
		mode := rt.mix.Mode(population.Unit(population.Mix(seed, population.TagCipher, idx)))
		epoch := uint64(0)
		var rnd [16]byte
		var kc uint64
		for s := 0; s < sessions; s++ {
			fresh := s == 0
			if s > 0 && population.Unit(population.Mix(seed, population.TagReauth, idx, uint64(s))) >= rt.reauthSkip {
				epoch++ // operator re-authenticated: fresh RAND, fresh Kc
				fresh = true
			}
			if fresh {
				// RAND and Kc only change with the auth epoch, so the
				// SHA-based derivations run once per epoch, not per
				// session (the values are identical either way).
				rnd = rand16(population.Mix(seed, population.TagRAND, idx, epoch))
				kc = telecom.SessionKey(pop.Seed(), imsi, rnd, e.space)
			}
			// Schedule the session's paging burst on the next CCCH
			// paging block, as the live network does, so the table
			// backend's frame classes cover it.
			start := telecom.NextPagingStart(frame)
			batch = append(batch, telecom.SMSSession{
				ARFCN:      baseARFCN + int(channel),
				CellID:     "campaign-cell",
				SessionID:  uint32(li*sessions + s),
				StartFrame: start,
				Cipher:     mode,
				Kc:         kc,
				IMSI:       imsi,
				RAND:       rnd,
				Deliver:    deliver,
			})
			frame = start + perSession
			part.Sessions++
			switch mode {
			case telecom.CipherA50:
				part.A50Sessions++
			case telecom.CipherA53:
				part.A53Sessions++
			}
		}
	}
	scr.radio = batch // keep the grown buffer for the next shard
	r.phases.observe("synth", synthStart)

	// Encrypt phase: the whole shard's A5/1 bursts run through the
	// 64-lane bitsliced encryptor, then the rig hears every burst in
	// session order (the order the per-session path fed them).
	encStart := time.Now()
	if e.cfg.ScalarRadio {
		// The scalar path interleaves encoding and rig feeding per
		// session, so the whole loop lands in "encrypt" and "feed"
		// stays empty — the documented ablation caveat.
		for i := range batch {
			bursts, err := telecom.EncodeSMSBursts(batch[i])
			if err != nil {
				continue
			}
			for _, b := range bursts {
				rig.Feed(b)
			}
		}
		r.phases.observe("encrypt", encStart)
	} else if len(batch) > 0 {
		// The flat trace lives in the worker's pooled burst buffer:
		// FeedBatch copies what it keeps and campaign traffic is
		// lossless (every session completes within the call), so the
		// buffer is free for reuse as soon as it returns.
		flat, err := telecom.EncodeSMSBurstsInto(batch, scr.bursts)
		if err != nil {
			// The shared TPDU marshaled above, so the batch cannot fail;
			// reaching here means the session counters above are already
			// wrong, and silently dropping the shard's traffic would
			// break the batch≡scalar Summary contract undetected.
			panic(fmt.Sprintf("campaign: batch encode of pre-validated sessions failed: %v", err))
		}
		r.phases.observe("encrypt", encStart)
		feedStart := time.Now()
		rig.FeedBatch(flat)
		r.phases.observe("feed", feedStart)
	}

	closureStart := time.Now()
	// Attribute decoded captures back to victims via session IDs.
	scr.intercepted = boolScratch(scr.intercepted, len(sh.Subscribers))
	intercepted := scr.intercepted
	for _, c := range rig.Captures() {
		intercepted[int(c.SessionID)/sessions] = true
	}
	part.Sniffer.Add(rig.Stats())

	// Chain-reaction phase: evaluate every intercepted victim.
	for li := range sh.Subscribers {
		if !covered[li] || !intercepted[li] {
			continue
		}
		sub := &sh.Subscribers[li]
		part.Intercepted++
		know := plan.baseline
		// The dossier probe derives the victim's phone into the worker's
		// scratch buffer and hits the sharded store via the raw-bytes
		// lookup — no key string is ever built on the closure path.
		var rec socialdb.Record
		var err error
		if lazy {
			scr.phone = sub.Ref.AppendPhone(scr.phone[:0])
			rec, err = e.leaks.LookupBytes(scr.phone)
		} else {
			rec, err = e.leaks.Lookup(sub.Persona.Phone)
		}
		if err == nil {
			part.DossierHits++
			know |= leakFactorMask(rec)
		}
		plan.chainDepths(scr, sub.Enrolled, know)
		accumulate(plan, scr, part)
		scr.reset()
	}
	r.phases.observe("closure", closureStart)
	return part
}

// accumulate folds one victim's chain-reaction outcome into the
// partial summary.
func accumulate(plan *attackPlan, scr *scratch, part *Summary) {
	taken := int64(0)
	maxDepth := 0
	var fields uint32
	for _, a := range scr.active {
		d := int(scr.depth[a])
		if d == 0 {
			continue
		}
		taken++
		if d > MaxDepth {
			d = MaxDepth
		}
		if d > maxDepth {
			maxDepth = d
		}
		part.AccountsByDepth[d]++
		part.ServiceTakeovers[plan.svcIdx[a]]++
		fields |= plan.exposes[a]
	}
	if taken == 0 {
		part.HarvestHist[0]++
		return
	}
	part.VictimsCompromised++
	part.AccountsCompromised += taken
	part.VictimsByMaxDepth[maxDepth]++
	n := bits.OnesCount32(fields)
	if n >= len(part.HarvestHist) {
		n = len(part.HarvestHist) - 1
	}
	part.HarvestHist[n]++
	for f := 1; f < len(part.FieldTotals); f++ {
		if fields>>uint(f)&1 == 1 {
			part.FieldTotals[f]++
		}
	}
}

// leakFactorMask maps a leak record's fields to credential factors.
func leakFactorMask(rec socialdb.Record) uint64 {
	var m uint64
	if rec.RealName != "" {
		m |= factorBit(ecosys.FactorRealName)
	}
	if rec.Address != "" {
		m |= factorBit(ecosys.FactorAddress)
	}
	if rec.CitizenID != "" {
		m |= factorBit(ecosys.FactorCitizenID)
	}
	return m
}

// rand16 expands one draw into a RAND challenge.
func rand16(h uint64) [16]byte {
	var out [16]byte
	binary.BigEndian.PutUint64(out[:8], h)
	binary.BigEndian.PutUint64(out[8:], population.Mix(h, 0x52414E44))
	return out
}
