// Package campaign is the population-scale attack engine: it runs the
// paper's chain-reaction attack not against one victim but across a
// synthetic subscriber population of millions (internal/population),
// quantifying how far one sniffed SMS OTP "goes nuclear" through the
// account ecosystem at operator scale.
//
// Architecture (the template every scaling subsystem follows):
//
//   - the population is sharded; a bounded worker pool streams shards,
//     so subscriber state (personas, enrollments, radio sessions) is
//     O(shard). The one population-proportional structure is the
//     attacker's merged leak database — the artifact the paper's
//     attacker actually accumulates — which grows with the leaked
//     fraction only (string headers over shard-owned bytes);
//   - every worker synthesizes each victim's OTP radio sessions with
//     the same burst encoder the live Network uses and feeds them to a
//     per-shard passive sniffer rig — batched sniffer sessions;
//   - all rigs share ONE A5/1 cracker backend, so a single precomputed
//     TMTO table is amortized across the entire population;
//   - harvested leak records live in one sharded socialdb hit by every
//     worker concurrently;
//   - per-victim chain reactions are evaluated against a precompiled
//     Transformation Dependency Graph plan (integer tables, no
//     per-victim graph builds);
//   - metrics stream to a single aggregator as per-shard partial
//     summaries and render through internal/report.
package campaign

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"time"

	"github.com/actfort/actfort/internal/a51"
	"github.com/actfort/actfort/internal/ecosys"
	"github.com/actfort/actfort/internal/gsmcodec"
	"github.com/actfort/actfort/internal/population"
	"github.com/actfort/actfort/internal/sniffer"
	"github.com/actfort/actfort/internal/socialdb"
	"github.com/actfort/actfort/internal/telecom"
)

// Config parameterizes an Engine.
type Config struct {
	// Population is the subscriber base to attack (required).
	Population *population.Population
	// Workers bounds the shard worker pool (0 = GOMAXPROCS).
	Workers int
	// Backend selects the shared A5/1 cracker ("table" when empty; see
	// a51.NewCracker). Cracker overrides it when non-nil.
	Backend string
	Cracker a51.Cracker
	// KeyBits is the A5/1 session-key space (0 = 12, as the case-study
	// scenarios use).
	KeyBits int
	// Platforms restricts the attacked presences (nil = both).
	Platforms []ecosys.Platform
	// OTPSessions is how many OTP transmissions the rig observes per
	// victim (0 = 3: the chain's first factors). Follow-up sessions
	// reuse the victim's cipher context with probability ReauthSkip.
	OTPSessions int
	// ReauthSkip is the probability a follow-up session runs under a
	// reused (RAND, Kc) — the operator skipped re-authentication
	// (0 = 0.6; negative = never skip).
	ReauthSkip float64
	// A50Fraction is the share of victims camped on unencrypted cells
	// (0 = 0.2; negative = everyone encrypted).
	A50Fraction float64
	// Coverage is the probability the rig overhears a given victim's
	// serving cell (0 = 1.0: the fleet covers every channel).
	Coverage float64
	// Progress, when non-nil, receives (subscribersDone, total) after
	// every merged shard.
	Progress func(done, total int)
}

// Engine is a configured campaign. Build with New, execute with Run.
type Engine struct {
	cfg     Config
	space   a51.KeySpace
	cracker a51.Cracker
	plan    *attackPlan
	// leaks is the attacker's merged leak database, assembled during
	// the harvest phase and hit concurrently by every attack worker.
	leaks *socialdb.DB
}

// New compiles the attack plan and builds the shared cracker backend
// (including the one-off TMTO table precomputation for "table").
func New(cfg Config) (*Engine, error) {
	if cfg.Population == nil {
		return nil, fmt.Errorf("campaign: nil population")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.KeyBits <= 0 {
		cfg.KeyBits = 12
	}
	if len(cfg.Platforms) == 0 {
		cfg.Platforms = ecosys.AllPlatforms()
	}
	if cfg.OTPSessions <= 0 {
		cfg.OTPSessions = 3
	}
	if cfg.ReauthSkip == 0 {
		cfg.ReauthSkip = 0.6
	} else if cfg.ReauthSkip < 0 {
		cfg.ReauthSkip = 0
	}
	if cfg.A50Fraction == 0 {
		cfg.A50Fraction = 0.2
	} else if cfg.A50Fraction < 0 {
		cfg.A50Fraction = 0
	}
	if cfg.Coverage == 0 {
		cfg.Coverage = 1.0
	} else if cfg.Coverage < 0 {
		cfg.Coverage = 0
	}
	e := &Engine{
		cfg:   cfg,
		space: a51.KeySpace{Base: 0xC118000000000000, Bits: cfg.KeyBits},
		leaks: socialdb.New(),
	}
	var err error
	e.cracker = cfg.Cracker
	if e.cracker == nil {
		backend := cfg.Backend
		if backend == "" {
			backend = "table"
		}
		if backend == "table" {
			// The campaign's table is tuned for lookup throughput:
			// short chains cost a little more memory (still megabytes
			// at simulation key sizes) and cut the per-session replay
			// work several-fold — the right trade when one table is
			// amortized over millions of cracks.
			e.cracker, err = a51.BuildTable(e.space, a51.TableConfig{ChainLen: 2})
		} else {
			e.cracker, err = a51.NewCracker(backend, e.space, 0)
		}
		if err != nil {
			return nil, err
		}
	}
	if e.plan, err = buildPlan(cfg.Population.Catalog(), cfg.Platforms); err != nil {
		return nil, err
	}
	return e, nil
}

// Cracker exposes the shared backend (benchmarks and the CLI report
// its name).
func (e *Engine) Cracker() a51.Cracker { return e.cracker }

// LeakDB exposes the merged leak database after Run.
func (e *Engine) LeakDB() *socialdb.DB { return e.leaks }

// Run executes the campaign: harvest the leak databases, then attack
// every shard through the worker pool, streaming partial summaries
// into one aggregate. The returned Summary is deterministic for a
// fixed config apart from Duration/VictimsPerSec.
func (e *Engine) Run(ctx context.Context) (*Summary, error) {
	start := time.Now()
	sum, err := e.attack(ctx)
	if err != nil {
		return nil, err
	}
	sum.LeakRecords = int64(e.leaks.Len())
	sum.Backend = e.cracker.Name()
	sum.Workers = e.cfg.Workers
	sum.Duration = time.Since(start)
	if secs := sum.Duration.Seconds(); secs > 0 {
		sum.VictimsPerSec = float64(sum.Subscribers) / secs
	}
	return sum, nil
}

// attack streams every shard through the worker pool and aggregates
// the partial summaries.
func (e *Engine) attack(ctx context.Context) (*Summary, error) {
	pop := e.cfg.Population
	numServices := len(pop.Services())
	shards := make(chan int)
	parts := make(chan *Summary, e.cfg.Workers)

	var wg sync.WaitGroup
	for w := 0; w < e.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scr := newScratch(e.plan)
			// A shell network per worker: the rig only needs the key
			// space; no cells, no subscribers, no global lock shared
			// with other workers.
			net := telecom.NewNetwork(telecom.Config{
				KeySpace:  e.space,
				FrameWrap: a51.DefaultTableFrames,
				Seed:      pop.Seed(),
			})
			for i := range shards {
				part := e.attackShard(pop.Shard(i), net, scr)
				select {
				case parts <- part:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	feedErr := make(chan error, 1)
	go func() {
		feedErr <- feedShards(ctx, shards, pop.NumShards())
		wg.Wait()
		close(parts)
	}()

	sum := newSummary(numServices)
	done := 0
	for part := range parts {
		done += int(part.Subscribers)
		sum.Merge(part)
		if e.cfg.Progress != nil {
			e.cfg.Progress(done, pop.Size())
		}
	}
	if err := <-feedErr; err != nil {
		return nil, err
	}
	return sum, nil
}

// feedShards sends [0, n) on ch, honoring cancellation, and closes it.
func feedShards(ctx context.Context, ch chan<- int, n int) error {
	defer close(ch)
	for i := 0; i < n; i++ {
		select {
		case ch <- i:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// otpTimestamp keeps synthesized TPDUs deterministic.
var otpTimestamp = time.Date(2021, 4, 19, 12, 0, 0, 0, time.UTC)

// attackShard runs one batch end to end: synthesize every victim's
// OTP radio sessions, feed them to a fresh sniffer rig backed by the
// shared cracker, then evaluate the chain reaction for each
// intercepted victim against the compiled plan.
func (e *Engine) attackShard(sh *population.Shard, net *telecom.Network, scr *scratch) *Summary {
	part := newSummary(len(e.cfg.Population.Services()))
	part.Subscribers = int64(len(sh.Subscribers))

	// Harvest first: merge this shard's leaked records into the global
	// attacker database (§V.A.1's "existing illegal databases"). A
	// victim's dossier lives in their own shard, so merging here keeps
	// lookups correct while every other worker's merges and lookups
	// hit the same sharded store concurrently.
	e.leaks.Merge(sh.Leaks)

	rig := sniffer.New(net, sniffer.Config{Cracker: e.cracker})
	seed := uint64(e.cfg.Population.Seed())
	sessions := e.cfg.OTPSessions
	covered := make([]bool, len(sh.Subscribers))
	frame := uint32(0)

	// Radio phase: batched sniffer sessions over the whole shard.
	for li := range sh.Subscribers {
		sub := &sh.Subscribers[li]
		idx := uint64(sub.Index)
		if population.Unit(population.Mix(seed, population.TagCoverage, idx)) >= e.cfg.Coverage {
			continue // victim's cell outside the rig's channel fleet
		}
		covered[li] = true
		part.Covered++
		a50 := population.Unit(population.Mix(seed, population.TagCipher, idx)) < e.cfg.A50Fraction
		epoch := uint64(0)
		for s := 0; s < sessions; s++ {
			if s > 0 && population.Unit(population.Mix(seed, population.TagReauth, idx, uint64(s))) >= e.cfg.ReauthSkip {
				epoch++ // operator re-authenticated: fresh RAND, fresh Kc
			}
			rnd := rand16(population.Mix(seed, population.TagRAND, idx, epoch))
			bursts, err := telecom.EncodeSMSBursts(telecom.SMSSession{
				ARFCN:      512,
				CellID:     "campaign-cell",
				SessionID:  uint32(li*sessions + s),
				StartFrame: frame,
				FrameWrap:  a51.DefaultTableFrames,
				Encrypted:  !a50,
				Kc:         telecom.SessionKey(e.cfg.Population.Seed(), sub.IMSI, rnd, e.space),
				IMSI:       sub.IMSI,
				RAND:       rnd,
				Deliver: gsmcodec.Deliver{
					Originator: "ActFort",
					Timestamp:  otpTimestamp,
					Text:       "Code 845512",
				},
			})
			if err != nil {
				continue // unencodable synthetic TPDU: count nothing
			}
			frame += uint32(len(bursts))
			for _, b := range bursts {
				rig.Feed(b)
			}
			part.Sessions++
			if a50 {
				part.A50Sessions++
			}
		}
	}

	// Attribute decoded captures back to victims via session IDs.
	intercepted := make([]bool, len(sh.Subscribers))
	for _, c := range rig.Captures() {
		intercepted[int(c.SessionID)/sessions] = true
	}
	part.Sniffer.Add(rig.Stats())

	// Chain-reaction phase: evaluate every intercepted victim.
	for li := range sh.Subscribers {
		if !covered[li] || !intercepted[li] {
			continue
		}
		sub := &sh.Subscribers[li]
		part.Intercepted++
		know := e.plan.baseline
		if rec, err := e.leaks.Lookup(sub.Persona.Phone); err == nil {
			part.DossierHits++
			know |= leakFactorMask(rec)
		}
		e.plan.chainDepths(scr, sub.Enrolled, know)
		e.accumulate(scr, part)
		scr.reset()
	}
	return part
}

// accumulate folds one victim's chain-reaction outcome into the
// partial summary.
func (e *Engine) accumulate(scr *scratch, part *Summary) {
	taken := int64(0)
	maxDepth := 0
	var fields uint32
	for _, a := range scr.active {
		d := int(scr.depth[a])
		if d == 0 {
			continue
		}
		taken++
		if d > MaxDepth {
			d = MaxDepth
		}
		if d > maxDepth {
			maxDepth = d
		}
		part.AccountsByDepth[d]++
		part.ServiceTakeovers[e.plan.svcIdx[a]]++
		fields |= e.plan.exposes[a]
	}
	if taken == 0 {
		part.HarvestHist[0]++
		return
	}
	part.VictimsCompromised++
	part.AccountsCompromised += taken
	part.VictimsByMaxDepth[maxDepth]++
	n := bits.OnesCount32(fields)
	if n >= len(part.HarvestHist) {
		n = len(part.HarvestHist) - 1
	}
	part.HarvestHist[n]++
	for f := 1; f < len(part.FieldTotals); f++ {
		if fields>>uint(f)&1 == 1 {
			part.FieldTotals[f]++
		}
	}
}

// leakFactorMask maps a leak record's fields to credential factors.
func leakFactorMask(rec socialdb.Record) uint64 {
	var m uint64
	if rec.RealName != "" {
		m |= factorBit(ecosys.FactorRealName)
	}
	if rec.Address != "" {
		m |= factorBit(ecosys.FactorAddress)
	}
	if rec.CitizenID != "" {
		m |= factorBit(ecosys.FactorCitizenID)
	}
	return m
}

// rand16 expands one draw into a RAND challenge.
func rand16(h uint64) [16]byte {
	var out [16]byte
	binary.BigEndian.PutUint64(out[:8], h)
	binary.BigEndian.PutUint64(out[8:], population.Mix(h, 0x52414E44))
	return out
}
