package campaign

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/actfort/actfort/internal/ecosys"
	"github.com/actfort/actfort/internal/report"
	"github.com/actfort/actfort/internal/sniffer"
)

// MaxDepth is the terminal compromise-depth bucket: chains of
// MaxDepth or more layers are counted together (the paper's analysis
// stops at two middle layers; anything deeper is exotic).
const MaxDepth = 6

// Summary aggregates a campaign run. Workers emit per-shard partial
// summaries which the aggregator merges as they stream in, so memory
// stays bounded regardless of population size. All counters are
// deterministic for a fixed config; Duration and VictimsPerSec are
// the only wall-clock-dependent fields.
type Summary struct {
	// Scenario and Policy name the scenario the summary describes and
	// the countermeasure policy it fortified the catalog with (empty
	// for the baseline).
	Scenario string
	Policy   string
	// Subscribers is the population size processed.
	Subscribers int64
	// Targeted counts subscribers inside the scenario's victim segment
	// (equal to Subscribers when no segment is set).
	Targeted int64
	// Covered counts targeted subscribers whose serving channel one of
	// the fleet's receivers camped on.
	Covered int64
	// Intercepted counts covered subscribers with at least one OTP
	// session decoded (cracked or plaintext).
	Intercepted int64
	// LeakRecords is the size of the attacker's merged leak database.
	LeakRecords int64
	// DossierHits counts intercepted victims with a leak-DB record.
	DossierHits int64
	// Sessions counts sniffed OTP transmissions; A50Sessions the
	// subset on unencrypted (A5/0) cells and A53Sessions the subset on
	// A5/3-upgraded cells the rig cannot crack.
	Sessions    int64
	A50Sessions int64
	A53Sessions int64

	// VictimsCompromised counts victims losing at least one account.
	VictimsCompromised int64
	// AccountsCompromised totals account takeovers across victims.
	AccountsCompromised int64
	// AccountsByDepth histograms takeovers by chain depth (index 1..
	// MaxDepth; the last bucket is ≥MaxDepth; index 0 unused).
	AccountsByDepth [MaxDepth + 1]int64
	// VictimsByMaxDepth histograms victims by their deepest chain.
	VictimsByMaxDepth [MaxDepth + 1]int64
	// ServiceTakeovers counts takeovers per catalog service, in the
	// population's service order.
	ServiceTakeovers []int64
	// FieldTotals counts victims whose harvested dossier gained each
	// information field (indexed by ecosys.InfoField).
	FieldTotals []int64
	// HarvestHist buckets victims by distinct information fields
	// harvested (index 0 = intercepted but nothing harvested).
	HarvestHist []int64

	// ShardsQuarantined counts shards abandoned after exhausting their
	// attempt budget (poisoned or persistently failing);
	// SubscribersSkipped totals the subscribers those shards covered.
	// CoverageFraction is processed/(processed+skipped) — 1.0 for a
	// complete run, explicitly less when the run degraded to a partial
	// report instead of aborting.
	ShardsQuarantined  int64
	SubscribersSkipped int64
	CoverageFraction   float64

	// Sniffer accumulates every per-shard rig's counters, including
	// the Kc-reuse cache hits and misses.
	Sniffer sniffer.Stats

	// Backend names the shared cracker; Workers the pool width.
	Backend string
	Workers int
	// Duration is this process's wall clock for the run; ActiveDuration
	// is the cumulative active wall clock across every process that
	// contributed (carried through checkpoint snapshots, so a
	// kill-and-resume run accumulates rather than resets). On an
	// uninterrupted run the two are equal.
	Duration       time.Duration
	ActiveDuration time.Duration
	// VictimsPerSec is Subscribers/ActiveDuration — the cumulative
	// throughput. (It used to divide the full victim count by only the
	// post-resume wall clock, overstating resumed runs several-fold.)
	// ResumeVictimsPerSec is the post-resume rate — subscribers
	// processed by this process over its own Duration — set only when
	// the run actually resumed prior state.
	VictimsPerSec       float64
	ResumeVictimsPerSec float64
	// PhaseTimings breaks the run's wall clock down by pipeline phase
	// (per-shard synth/encrypt/feed/closure, the sniffer's batched
	// cracks, the aggregator) — populated from the obs phase histograms
	// at the end of each run, wall-clock-dependent like Duration.
	PhaseTimings []PhaseTiming
}

// PhaseTiming is one row of the per-phase breakdown: how many times
// the phase ran, its total wall time across the run, and latency
// quantiles per execution (histogram-estimated).
type PhaseTiming struct {
	Phase         string
	Count         int64
	Total         time.Duration
	P50, P90, P99 time.Duration
}

// newSummary sizes the per-service and per-field tables.
func newSummary(numServices int) *Summary {
	return &Summary{
		ServiceTakeovers: make([]int64, numServices),
		FieldTotals:      make([]int64, len(ecosys.AllInfoFields())+1),
		HarvestHist:      make([]int64, len(ecosys.AllInfoFields())+1),
	}
}

// Merge accumulates a partial summary.
func (s *Summary) Merge(o *Summary) {
	s.Subscribers += o.Subscribers
	s.Targeted += o.Targeted
	s.Covered += o.Covered
	s.Intercepted += o.Intercepted
	s.LeakRecords += o.LeakRecords
	s.DossierHits += o.DossierHits
	s.Sessions += o.Sessions
	s.A50Sessions += o.A50Sessions
	s.A53Sessions += o.A53Sessions
	s.VictimsCompromised += o.VictimsCompromised
	s.AccountsCompromised += o.AccountsCompromised
	for i := range s.AccountsByDepth {
		s.AccountsByDepth[i] += o.AccountsByDepth[i]
		s.VictimsByMaxDepth[i] += o.VictimsByMaxDepth[i]
	}
	for i := range o.ServiceTakeovers {
		s.ServiceTakeovers[i] += o.ServiceTakeovers[i]
	}
	for i := range o.FieldTotals {
		s.FieldTotals[i] += o.FieldTotals[i]
	}
	for i := range o.HarvestHist {
		s.HarvestHist[i] += o.HarvestHist[i]
	}
	s.ShardsQuarantined += o.ShardsQuarantined
	s.SubscribersSkipped += o.SubscribersSkipped
	s.Sniffer.Add(o.Sniffer)
	s.recomputeCoverage()
}

// recomputeCoverage derives CoverageFraction from the processed and
// skipped counts — a pure function of them, so merge order and resume
// boundaries never change it.
func (s *Summary) recomputeCoverage() {
	total := s.Subscribers + s.SubscribersSkipped
	if total > 0 {
		s.CoverageFraction = float64(s.Subscribers) / float64(total)
	} else {
		s.CoverageFraction = 0
	}
}

// pct is a safe percentage.
func pct(n, total int64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}

// Render writes the campaign report: headline counters, the
// compromise-depth histograms, the top-N services by takeovers and
// the harvested-information distribution, using the same table and
// bar renderers the paper's figures go through.
func (s *Summary) Render(services []string, top int) string {
	var b strings.Builder

	title := "Campaign summary — chain-reaction attack across the subscriber population"
	if s.Scenario != "" {
		title = fmt.Sprintf("Campaign summary — scenario %q", s.Scenario)
	}
	h := &report.Table{
		Title:   title,
		Headers: []string{"metric", "value"},
	}
	if s.Policy != "" {
		h.AddRow("countermeasure policy", s.Policy)
	}
	h.AddRow("subscribers", comma(s.Subscribers))
	if s.ShardsQuarantined > 0 {
		h.AddRow("shards quarantined", comma(s.ShardsQuarantined))
		h.AddRow("subscribers skipped", comma(s.SubscribersSkipped))
		h.AddRow("population coverage", report.Pct(100*s.CoverageFraction))
	}
	if s.Targeted != s.Subscribers {
		h.AddRow("targeted segment", fmt.Sprintf("%s (%s)", comma(s.Targeted), report.Pct(pct(s.Targeted, s.Subscribers))))
	}
	h.AddRow("covered by rig", fmt.Sprintf("%s (%s)", comma(s.Covered), report.Pct(pct(s.Covered, s.Targeted))))
	h.AddRow("OTP intercepted", fmt.Sprintf("%s (%s)", comma(s.Intercepted), report.Pct(pct(s.Intercepted, s.Targeted))))
	h.AddRow("leak DB records", comma(s.LeakRecords))
	h.AddRow("victims with dossier", fmt.Sprintf("%s (%s)", comma(s.DossierHits), report.Pct(pct(s.DossierHits, s.Intercepted))))
	h.AddRow("victims compromised", fmt.Sprintf("%s (%s)", comma(s.VictimsCompromised), report.Pct(pct(s.VictimsCompromised, s.Subscribers))))
	h.AddRow("accounts taken over", comma(s.AccountsCompromised))
	h.AddRow("OTP sessions sniffed", fmt.Sprintf("%s (%s on A5/0, %s on A5/3)",
		comma(s.Sessions), report.Pct(pct(s.A50Sessions, s.Sessions)), report.Pct(pct(s.A53Sessions, s.Sessions))))
	h.AddRow("A5/1 cracks", fmt.Sprintf("%d attempted, %d succeeded, %d A5/3 sessions abandoned",
		s.Sniffer.CracksAttempted, s.Sniffer.CracksSucceeded, s.Sniffer.A53Abandoned))
	h.AddRow("Kc reuse cache", fmt.Sprintf("%d hits, %d misses", s.Sniffer.KcReuseHits, s.Sniffer.KcReuseMisses))
	h.AddRow("cracker backend", s.Backend)
	h.AddRow("workers", strconv.Itoa(s.Workers))
	if s.Duration > 0 {
		h.AddRow("duration", s.Duration.Round(time.Millisecond).String())
		if s.ActiveDuration > s.Duration {
			h.AddRow("active duration (all processes)", s.ActiveDuration.Round(time.Millisecond).String())
		}
		h.AddRow("throughput", fmt.Sprintf("%.0f victims/s", s.VictimsPerSec))
		if s.ResumeVictimsPerSec > 0 {
			h.AddRow("post-resume throughput", fmt.Sprintf("%.0f victims/s", s.ResumeVictimsPerSec))
		}
	}
	b.WriteString(h.String())
	b.WriteString("\n")
	if s.Duration > 0 && len(s.PhaseTimings) > 0 {
		b.WriteString(s.phaseTable().String())
		b.WriteString("\n")
	}

	depthRows := make([]report.HistRow, 0, MaxDepth)
	for d := 1; d <= MaxDepth; d++ {
		label := fmt.Sprintf("depth %d", d)
		if d == 1 {
			label = "depth 1 (SMS alone)"
		}
		if d == MaxDepth {
			label = fmt.Sprintf("depth >=%d", MaxDepth)
		}
		depthRows = append(depthRows, report.HistRow{Label: label, Count: s.AccountsByDepth[d]})
	}
	b.WriteString(report.Histogram("Account takeovers by chain depth", depthRows).String())
	b.WriteString("\n")

	victimRows := make([]report.HistRow, 0, MaxDepth)
	for d := 1; d <= MaxDepth; d++ {
		label := fmt.Sprintf("max depth %d", d)
		if d == MaxDepth {
			label = fmt.Sprintf("max depth >=%d", MaxDepth)
		}
		victimRows = append(victimRows, report.HistRow{Label: label, Count: s.VictimsByMaxDepth[d]})
	}
	b.WriteString(report.Histogram("Victims by deepest chain executed", victimRows).String())
	b.WriteString("\n")

	b.WriteString(s.topServices(services, top).String())
	b.WriteString("\n")
	b.WriteString(s.harvestTable().String())
	return b.String()
}

// phaseTable renders the per-phase timing breakdown.
func (s *Summary) phaseTable() *report.Table {
	t := &report.Table{
		Title:   "Per-phase timing (this process; crack runs inside feed)",
		Headers: []string{"phase", "count", "total", "p50", "p90", "p99"},
	}
	for _, p := range s.PhaseTimings {
		t.AddRow(p.Phase, comma(p.Count), p.Total.Round(time.Microsecond).String(),
			p.P50.Round(time.Microsecond).String(), p.P90.Round(time.Microsecond).String(),
			p.P99.Round(time.Microsecond).String())
	}
	return t
}

// topServices ranks services by takeover count.
func (s *Summary) topServices(services []string, top int) *report.Table {
	if top <= 0 {
		top = 15
	}
	type row struct {
		name  string
		count int64
	}
	rows := make([]row, 0, len(s.ServiceTakeovers))
	for i, c := range s.ServiceTakeovers {
		if c == 0 {
			continue
		}
		name := fmt.Sprintf("service-%d", i)
		if i < len(services) {
			name = services[i]
		}
		rows = append(rows, row{name: name, count: c})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].count != rows[j].count {
			return rows[i].count > rows[j].count
		}
		return rows[i].name < rows[j].name
	})
	if len(rows) > top {
		rows = rows[:top]
	}
	t := &report.Table{
		Title:   fmt.Sprintf("Top %d services by account takeovers", len(rows)),
		Headers: []string{"rank", "service", "takeovers", "per intercepted victim"},
	}
	for i, r := range rows {
		t.AddRow(strconv.Itoa(i+1), r.name, comma(r.count), report.Pct(pct(r.count, s.Intercepted)))
	}
	return t
}

// harvestTable renders the factors-harvested distribution.
func (s *Summary) harvestTable() *report.Table {
	t := &report.Table{
		Title:   "Personal information harvested from compromised accounts",
		Headers: []string{"field", "victims", "share of intercepted"},
	}
	for _, f := range ecosys.AllInfoFields() {
		c := s.FieldTotals[int(f)]
		if c == 0 {
			continue
		}
		t.AddRow(f.String(), comma(c), report.Pct(pct(c, s.Intercepted)))
	}
	return t
}

// comma renders 1234567 as "1,234,567".
func comma(n int64) string {
	s := strconv.FormatInt(n, 10)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var out []byte
	for i, c := range []byte(s) {
		if i > 0 && (len(s)-i)%3 == 0 {
			out = append(out, ',')
		}
		out = append(out, c)
	}
	if neg {
		return "-" + string(out)
	}
	return string(out)
}
