// Package sniffer implements the paper's passive GSM interception rig
// (Fig 6): a farm of single-frequency receivers (the 16 Motorola C118
// phones running OsmocomBB), burst reassembly, A5/1 session-key
// recovery via the known-plaintext paging burst, SMS-DELIVER decoding
// and Wireshark-style display filtering (Fig 5).
//
// Coverage is physical: a receiver hears only the ARFCN it is tuned
// to, so interception probability scales with how many of the cell's
// channels the attacker can cover — reproduced by experiment E6.
package sniffer

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/actfort/actfort/internal/a51"
	"github.com/actfort/actfort/internal/gsmcodec"
	"github.com/actfort/actfort/internal/telecom"
)

// Capture is one fully decoded SMS, the unit Fig 5 displays.
type Capture struct {
	ARFCN      int
	CellID     string
	SessionID  uint32
	Originator string
	Text       string
	Timestamp  time.Time
	// Encrypted records whether the session was A5/1-protected.
	Encrypted bool
	// Kc is the recovered session key (zero for plaintext traffic).
	Kc uint64
	// CrackTime is how long key recovery took (zero for plaintext).
	CrackTime time.Duration
}

// WiresharkLine renders the capture like the paper's Fig 5 screenshot.
func (c Capture) WiresharkLine() string {
	enc := "A5/0"
	if c.Encrypted {
		enc = "A5/1"
	}
	return fmt.Sprintf("%s  ARFCN %d  %s  GSM SMS (%s)  %q",
		c.Timestamp.Format("2006-01-02 15:04:05"), c.ARFCN, c.Originator, enc, c.Text)
}

// Stats summarizes a sniffing run.
type Stats struct {
	BurstsSeen       int
	SessionsComplete int
	MessagesDecoded  int
	CracksAttempted  int
	CracksSucceeded  int
	CrackCacheHits   int
	// KcReuseHits counts sessions decrypted straight from the
	// per-subscriber (IMSI, RAND) cache: the network skipped
	// re-authentication, reused a session key the rig had already
	// cracked, and handed the traffic over for free. KcReuseMisses
	// counts eligible sessions (identity context on the air) whose
	// auth context had not been cracked yet. Campaign metrics consume
	// both to quantify the Kc-reuse weakness at population scale.
	KcReuseHits   int
	KcReuseMisses int
	// A53Abandoned counts complete sessions the rig gave up on because
	// the ciphering mode announced A5/3: the cipher upgrade defeats
	// every A5/1 backend, so no search effort is spent. Fortification
	// sweeps read this as the radio-hardening win.
	A53Abandoned int
	FilteredOut  int
}

// Add accumulates other into s — the merge used when per-shard rigs
// report into one campaign-wide counter set.
func (s *Stats) Add(other Stats) {
	s.BurstsSeen += other.BurstsSeen
	s.SessionsComplete += other.SessionsComplete
	s.MessagesDecoded += other.MessagesDecoded
	s.CracksAttempted += other.CracksAttempted
	s.CracksSucceeded += other.CracksSucceeded
	s.CrackCacheHits += other.CrackCacheHits
	s.KcReuseHits += other.KcReuseHits
	s.KcReuseMisses += other.KcReuseMisses
	s.A53Abandoned += other.A53Abandoned
	s.FilteredOut += other.FilteredOut
}

// Config parameterizes a Sniffer.
type Config struct {
	// MaxReceivers caps simultaneously tuned ARFCNs; the paper's rig
	// had 16 C118 handsets. Zero means DefaultMaxReceivers.
	MaxReceivers int
	// CrackWorkers is the parallelism of key recovery (0 = all cores).
	CrackWorkers int
	// Cracker is the key-recovery backend. Nil selects the bitsliced
	// search (a51.Bitsliced) over CrackWorkers goroutines; a
	// precomputed a51.Table turns per-session recovery into an
	// amortized table lookup.
	Cracker a51.Cracker
	// Filter, when non-nil, restricts Captures to matching messages;
	// non-matching messages are still decoded and counted.
	Filter Filter
}

// DefaultMaxReceivers matches the paper's hardware.
const DefaultMaxReceivers = 16

// ErrTooManyReceivers reports a Tune beyond receiver capacity.
var ErrTooManyReceivers = errors.New("sniffer: not enough receivers for requested ARFCNs")

// Sniffer is the passive interception rig. Create with New, point
// receivers with Tune, then read Captures. Safe for concurrent use.
type Sniffer struct {
	net *telecom.Network
	cfg Config

	mu       sync.Mutex
	cancels  map[int]func()
	sessions map[uint32]*session
	captures []Capture
	stats    Stats
	// kcCache remembers recovered session keys by session ID, so
	// replayed bursts under an already-cracked key (recorded traces,
	// retransmissions) skip recovery entirely. Bounded at kcCacheMax
	// entries: live traffic never reuses session IDs, so only recent
	// sessions are worth remembering.
	kcCache map[uint32]uint64
	// subKc remembers recovered keys by authentication context, so a
	// network that skips re-authentication (telecom.Config.ReauthEvery)
	// hands over every follow-up session of a subscriber after one
	// crack. Keyed on (IMSI, RAND) — both visible on the air in real
	// GSM — and bounded like kcCache.
	subKc map[subKcKey]uint64
}

// subKcKey identifies one subscriber authentication context.
type subKcKey struct {
	imsi string
	rand [16]byte
}

// kcCacheMax bounds the replay key cache; on overflow an arbitrary
// entry is evicted (sessions are short-lived, so any stale entry is
// equally disposable).
const kcCacheMax = 4096

// session buffers bursts until a transmission is complete.
type session struct {
	bursts map[int]telecom.RadioBurst
	total  int
}

// payloadBursts returns the session's payload bursts (seq 1..total-1)
// in order; ok is false when one was lost — the shared framing walk of
// the scalar and batched processing paths.
func (sess *session) payloadBursts() ([]telecom.RadioBurst, bool) {
	out := make([]telecom.RadioBurst, 0, sess.total-1)
	for seq := 1; seq < sess.total; seq++ {
		b, ok := sess.bursts[seq]
		if !ok {
			return nil, false
		}
		out = append(out, b)
	}
	return out, true
}

// New builds a sniffer against a network.
func New(net *telecom.Network, cfg Config) *Sniffer {
	if cfg.MaxReceivers <= 0 {
		cfg.MaxReceivers = DefaultMaxReceivers
	}
	if cfg.Cracker == nil {
		cfg.Cracker = a51.Bitsliced{Workers: cfg.CrackWorkers}
	}
	return &Sniffer{
		net:      net,
		cfg:      cfg,
		cancels:  make(map[int]func()),
		sessions: make(map[uint32]*session),
		kcCache:  make(map[uint32]uint64),
		subKc:    make(map[subKcKey]uint64),
	}
}

// Tune points receivers at the given ARFCNs (idempotent per channel).
// It fails with ErrTooManyReceivers when the rig is out of handsets.
func (s *Sniffer) Tune(arfcns ...int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Count each ARFCN once, however many times the call repeats it —
	// Tune(5, 5) needs one receiver, not two.
	fresh := 0
	seen := make(map[int]bool, len(arfcns))
	for _, a := range arfcns {
		if _, ok := s.cancels[a]; !ok && !seen[a] {
			seen[a] = true
			fresh++
		}
	}
	if len(s.cancels)+fresh > s.cfg.MaxReceivers {
		return fmt.Errorf("%w: tuned %d, requested %d more, capacity %d",
			ErrTooManyReceivers, len(s.cancels), fresh, s.cfg.MaxReceivers)
	}
	for _, a := range arfcns {
		if _, ok := s.cancels[a]; ok {
			continue
		}
		cancel := s.net.Subscribe(a, s.Feed)
		s.cancels[a] = cancel
	}
	return nil
}

// Tuned returns the currently tuned ARFCNs, sorted.
func (s *Sniffer) Tuned() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, 0, len(s.cancels))
	for a := range s.cancels {
		out = append(out, a)
	}
	sort.Ints(out)
	return out
}

// Stop releases all receivers.
func (s *Sniffer) Stop() {
	s.mu.Lock()
	cancels := make([]func(), 0, len(s.cancels))
	for _, c := range s.cancels {
		cancels = append(cancels, c)
	}
	s.cancels = make(map[int]func())
	s.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

// Feed processes one burst. It is the Subscribe callback, and is also
// exported for replaying recorded traffic (failure-injection tests
// feed lossy traces directly).
func (s *Sniffer) Feed(b telecom.RadioBurst) {
	s.mu.Lock()
	sess, complete := s.ingestLocked(b)
	s.mu.Unlock()

	if complete {
		s.processSession(sess)
	}
}

// FeedBatch ingests a whole recorded trace at once — the campaign
// engine's path. Sessions complete exactly as they would under
// burst-by-burst Feed, but the A5/1 payload decryption of every
// completed session is gathered and run through the 64-lane bitsliced
// batch encryptor instead of one scalar cipher per burst. Captures,
// statistics and Kc-cache behavior are identical to feeding the same
// bursts through Feed in order.
func (s *Sniffer) FeedBatch(bursts []telecom.RadioBurst) {
	s.mu.Lock()
	var completed []*session
	for _, b := range bursts {
		if sess, complete := s.ingestLocked(b); complete {
			completed = append(completed, sess)
		}
	}
	s.mu.Unlock()

	// Resolve every completed session's key first (cache hits and table
	// lookups, as in the scalar path), queueing its encrypted payload
	// bursts as decryption lanes.
	type pending struct {
		sess      *session
		kc        uint64
		crackTime time.Duration
		payloads  [][]byte // per payload burst, decrypted in place below
	}
	var (
		pend   []pending
		kcs    []uint64
		frames []uint32
		datas  [][]byte
	)
	for _, sess := range completed {
		// Resolve first — Feed does, so crack statistics and cache
		// fills stay identical — then queue lanes only for sessions
		// with every payload burst present, so lossy traffic costs no
		// batched cipher work.
		kc, crackTime, ok := s.resolveSession(sess)
		if !ok {
			continue
		}
		pb, ok := sess.payloadBursts()
		if !ok {
			continue
		}
		p := pending{sess: sess, kc: kc, crackTime: crackTime, payloads: make([][]byte, 0, len(pb))}
		for _, b := range pb {
			payload := b.Payload
			if b.Encrypted {
				payload = append([]byte(nil), payload...)
				kcs = append(kcs, kc)
				frames = append(frames, b.Frame)
				datas = append(datas, payload)
			}
			p.payloads = append(p.payloads, payload)
		}
		pend = append(pend, p)
	}
	a51.EncryptBurstsBatch(kcs, frames, datas)
	for _, p := range pend {
		tpdu := make([]byte, 0, len(p.payloads)*16)
		for _, payload := range p.payloads {
			tpdu = append(tpdu, payload...)
		}
		s.record(p.sess, p.kc, p.crackTime, tpdu)
	}
}

// ingestLocked buffers one burst, returning the session and whether
// this burst completed it. Requires s.mu held.
func (s *Sniffer) ingestLocked(b telecom.RadioBurst) (*session, bool) {
	s.stats.BurstsSeen++
	sess, ok := s.sessions[b.SessionID]
	if !ok {
		sess = &session{bursts: make(map[int]telecom.RadioBurst), total: b.Total}
		s.sessions[b.SessionID] = sess
	}
	sess.bursts[b.Seq] = b
	if len(sess.bursts) == sess.total {
		delete(s.sessions, b.SessionID)
		s.stats.SessionsComplete++
		return sess, true
	}
	return sess, false
}

// processSession cracks (if needed), decodes and records one complete
// transmission — the scalar per-session path live traffic goes
// through.
func (s *Sniffer) processSession(sess *session) {
	kc, crackTime, ok := s.resolveSession(sess)
	if !ok {
		return
	}
	pb, ok := sess.payloadBursts()
	if !ok {
		return // lost a payload burst
	}
	tpdu := make([]byte, 0, len(pb)*16)
	for _, b := range pb {
		payload := b.Payload
		if b.Encrypted {
			payload = a51.EncryptBurst(kc, b.Frame, payload)
		}
		tpdu = append(tpdu, payload...)
	}
	s.record(sess, kc, crackTime, tpdu)
}

// resolveSession produces the session key for one complete
// transmission — replay cache, per-subscriber (IMSI, RAND) cache, or a
// fresh crack through the backend — updating the crack statistics. ok
// is false when the session is unusable: paging burst lost, A5/3
// announced, or recovery failed.
func (s *Sniffer) resolveSession(sess *session) (kc uint64, crackTime time.Duration, ok bool) {
	paging, ok := sess.bursts[0]
	if !ok {
		return 0, 0, false // lost the paging burst: no known plaintext, no crack
	}
	if paging.Cipher == telecom.CipherA53 {
		// The ciphering mode travels in the clear; A5/3 is beyond every
		// backend, so the rig abandons the session without searching.
		s.mu.Lock()
		s.stats.A53Abandoned++
		s.mu.Unlock()
		return 0, 0, false
	}
	if !paging.Encrypted {
		return 0, 0, true
	}

	subKey := subKcKey{imsi: paging.IMSI, rand: paging.RAND}
	subEligible := paging.IMSI != ""
	s.mu.Lock()
	cached, hit := s.kcCache[paging.SessionID]
	if hit {
		s.stats.CrackCacheHits++
	} else if subEligible {
		// Session unseen — but the network may have reused an
		// authentication context the rig already cracked.
		if k, ok := s.subKc[subKey]; ok {
			cached, hit = k, true
			s.stats.KcReuseHits++
		} else {
			s.stats.KcReuseMisses++
		}
	}
	s.mu.Unlock()
	if hit {
		return cached, 0, true
	}

	start := time.Now()
	ks, err := a51.DeriveKeystream(paging.Payload, telecom.PagingPlaintext(paging.SessionID))
	if err != nil {
		return 0, 0, false
	}
	s.mu.Lock()
	s.stats.CracksAttempted++
	s.mu.Unlock()
	kc, err = s.cfg.Cracker.Recover(context.Background(), ks, paging.Frame, s.net.KeySpace())
	if err != nil {
		return 0, 0, false
	}
	crackTime = time.Since(start)
	s.mu.Lock()
	s.stats.CracksSucceeded++
	if len(s.kcCache) >= kcCacheMax {
		for id := range s.kcCache {
			delete(s.kcCache, id)
			break
		}
	}
	s.kcCache[paging.SessionID] = kc
	if subEligible {
		if len(s.subKc) >= kcCacheMax {
			for k := range s.subKc {
				delete(s.subKc, k)
				break
			}
		}
		s.subKc[subKey] = kc
	}
	s.mu.Unlock()
	return kc, crackTime, true
}

// record decodes a session's reassembled TPDU and files the capture.
func (s *Sniffer) record(sess *session, kc uint64, crackTime time.Duration, tpdu []byte) {
	paging := sess.bursts[0]
	msg, err := gsmcodec.UnmarshalDeliver(tpdu)
	if err != nil {
		return
	}

	capt := Capture{
		ARFCN:      paging.ARFCN,
		CellID:     paging.CellID,
		SessionID:  paging.SessionID,
		Originator: msg.Originator,
		Text:       msg.Text,
		Timestamp:  msg.Timestamp,
		Encrypted:  paging.Encrypted,
		Kc:         kc,
		CrackTime:  crackTime,
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.MessagesDecoded++
	if s.cfg.Filter != nil && !s.cfg.Filter.Match(capt) {
		s.stats.FilteredOut++
		return
	}
	s.captures = append(s.captures, capt)
}

// Reset returns the rig to its just-built state — in-flight session
// buffers, captures, counters and both Kc caches are dropped; tuned
// receivers and the cracker backend are kept. Campaign sweeps reuse
// per-worker rigs across scenarios through it instead of rebuilding
// them, resetting between scenarios so no cracked key leaks from one
// radio environment into the next.
func (s *Sniffer) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sessions = make(map[uint32]*session)
	s.captures = nil
	s.stats = Stats{}
	s.kcCache = make(map[uint32]uint64)
	s.subKc = make(map[subKcKey]uint64)
}

// Captures returns a copy of recorded (filter-matching) messages.
func (s *Sniffer) Captures() []Capture {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Capture(nil), s.captures...)
}

// Stats returns a snapshot of run counters.
func (s *Sniffer) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// WaitForCode polls until a capture whose text matches filter appears,
// or ctx expires. It is the primitive the attack orchestrator uses:
// "trigger the reset, then wait for the code to fly by".
func (s *Sniffer) WaitForCode(ctx context.Context, f Filter) (Capture, error) {
	seen := 0
	for {
		s.mu.Lock()
		for ; seen < len(s.captures); seen++ {
			if f == nil || f.Match(s.captures[seen]) {
				c := s.captures[seen]
				s.mu.Unlock()
				return c, nil
			}
		}
		s.mu.Unlock()
		select {
		case <-ctx.Done():
			return Capture{}, ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
}
