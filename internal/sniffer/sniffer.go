// Package sniffer implements the paper's passive GSM interception rig
// (Fig 6): a farm of single-frequency receivers (the 16 Motorola C118
// phones running OsmocomBB), burst reassembly, A5/1 session-key
// recovery via the known-plaintext paging burst, SMS-DELIVER decoding
// and Wireshark-style display filtering (Fig 5).
//
// Coverage is physical: a receiver hears only the ARFCN it is tuned
// to, so interception probability scales with how many of the cell's
// channels the attacker can cover — reproduced by experiment E6.
//
// Batch ≡ scalar invariant: FeedBatch ingests a whole recorded trace
// at once and batches both payload decryption (64-lane a51 encryptor)
// and fresh key recovery (one a51.BatchCracker.RecoverBatch call per
// trace, deduplicated against the session and auth-context caches),
// yet produces exactly the captures, statistics and cache state of
// feeding the same bursts through Feed one at a time. Config's
// ScalarReplay knob forces the per-session crack path so equivalence
// tests and ablations can hold the batch engine against it.
package sniffer

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/actfort/actfort/internal/a51"
	"github.com/actfort/actfort/internal/gsmcodec"
	"github.com/actfort/actfort/internal/obs"
	"github.com/actfort/actfort/internal/slab"
	"github.com/actfort/actfort/internal/telecom"
)

// Capture is one fully decoded SMS, the unit Fig 5 displays.
type Capture struct {
	ARFCN      int
	CellID     string
	SessionID  uint32
	Originator string
	Text       string
	Timestamp  time.Time
	// Encrypted records whether the session was A5/1-protected.
	Encrypted bool
	// Kc is the recovered session key (zero for plaintext traffic).
	Kc uint64
	// CrackTime is how long key recovery took (zero for plaintext).
	CrackTime time.Duration
}

// WiresharkLine renders the capture like the paper's Fig 5 screenshot.
func (c Capture) WiresharkLine() string {
	enc := "A5/0"
	if c.Encrypted {
		enc = "A5/1"
	}
	return fmt.Sprintf("%s  ARFCN %d  %s  GSM SMS (%s)  %q",
		c.Timestamp.Format("2006-01-02 15:04:05"), c.ARFCN, c.Originator, enc, c.Text)
}

// Stats summarizes a sniffing run.
type Stats struct {
	BurstsSeen       int
	SessionsComplete int
	MessagesDecoded  int
	CracksAttempted  int
	CracksSucceeded  int
	CrackCacheHits   int
	// KcReuseHits counts sessions decrypted straight from the
	// per-subscriber (IMSI, RAND) cache: the network skipped
	// re-authentication, reused a session key the rig had already
	// cracked, and handed the traffic over for free. KcReuseMisses
	// counts eligible sessions (identity context on the air) whose
	// auth context had not been cracked yet. Campaign metrics consume
	// both to quantify the Kc-reuse weakness at population scale.
	KcReuseHits   int
	KcReuseMisses int
	// A53Abandoned counts complete sessions the rig gave up on because
	// the ciphering mode announced A5/3: the cipher upgrade defeats
	// every A5/1 backend, so no search effort is spent. Fortification
	// sweeps read this as the radio-hardening win.
	A53Abandoned int
	FilteredOut  int
}

// Add accumulates other into s — the merge used when per-shard rigs
// report into one campaign-wide counter set.
func (s *Stats) Add(other Stats) {
	s.BurstsSeen += other.BurstsSeen
	s.SessionsComplete += other.SessionsComplete
	s.MessagesDecoded += other.MessagesDecoded
	s.CracksAttempted += other.CracksAttempted
	s.CracksSucceeded += other.CracksSucceeded
	s.CrackCacheHits += other.CrackCacheHits
	s.KcReuseHits += other.KcReuseHits
	s.KcReuseMisses += other.KcReuseMisses
	s.A53Abandoned += other.A53Abandoned
	s.FilteredOut += other.FilteredOut
}

// Config parameterizes a Sniffer.
type Config struct {
	// MaxReceivers caps simultaneously tuned ARFCNs; the paper's rig
	// had 16 C118 handsets. Zero means DefaultMaxReceivers.
	MaxReceivers int
	// CrackWorkers is the parallelism of key recovery (0 = all cores).
	CrackWorkers int
	// Cracker is the key-recovery backend. Nil selects the bitsliced
	// search (a51.Bitsliced) over CrackWorkers goroutines; a
	// precomputed a51.Table turns per-session recovery into an
	// amortized table lookup.
	Cracker a51.Cracker
	// ScalarReplay forces FeedBatch to resolve session keys one at a
	// time through Cracker.Recover even when the backend implements
	// a51.BatchCracker — the pre-batch scalar chain-replay path, kept
	// for batch≡scalar equivalence tests and ablation benchmarks (the
	// campaign engine's Config.ScalarReplay sets it, like ScalarRadio
	// keeps the per-session radio encoder).
	ScalarReplay bool
	// Filter, when non-nil, restricts Captures to matching messages;
	// non-matching messages are still decoded and counted.
	Filter Filter
}

// DefaultMaxReceivers matches the paper's hardware.
const DefaultMaxReceivers = 16

// ErrTooManyReceivers reports a Tune beyond receiver capacity.
var ErrTooManyReceivers = errors.New("sniffer: not enough receivers for requested ARFCNs")

// Sniffer is the passive interception rig. Create with New, point
// receivers with Tune, then read Captures. Safe for concurrent use.
type Sniffer struct {
	net *telecom.Network
	cfg Config

	mu       sync.Mutex
	cancels  map[int]func()
	sessions map[uint32]*session
	captures []Capture
	stats    Stats
	// kcCache remembers recovered session keys by session ID, so
	// replayed bursts under an already-cracked key (recorded traces,
	// retransmissions) skip recovery entirely. Bounded at kcCacheMax
	// entries: live traffic never reuses session IDs, so only recent
	// sessions are worth remembering.
	kcCache map[uint32]uint64
	// subKc remembers recovered keys by authentication context, so a
	// network that skips re-authentication (telecom.Config.ReauthEvery)
	// hands over every follow-up session of a subscriber after one
	// crack. Keyed on (IMSI, RAND) — both visible on the air in real
	// GSM — and bounded like kcCache.
	subKc map[subKcKey]uint64
	// sessFree recycles completed session buffers (the map-per-session
	// allocation is a real GC cost when a campaign streams millions of
	// sessions through one rig). Invisible state: Reset keeps it.
	sessFree []*session
	// TPDU decode memo: campaign traffic reassembles the same OTP TPDU
	// for millions of sessions, so record caches the last decode keyed
	// by the raw bytes. Content-addressed, hence correctness-neutral;
	// Reset keeps it.
	lastTPDU []byte
	lastMsg  gsmcodec.Deliver
	lastErr  error
	haveTPDU bool
	// crackObs, when non-nil, additionally receives every batched-crack
	// duration the rig observes into the process-wide
	// sniffer_crack_batch_seconds series. Campaign runs park their
	// run-local crack histogram here for the duration of a rig
	// checkout, so concurrent scenarios each report only their own
	// crack timings.
	crackObs *obs.Histogram
}

// subKcKey identifies one subscriber authentication context.
type subKcKey struct {
	imsi string
	rand [16]byte
}

// kcCacheMax bounds the replay key cache; on overflow an arbitrary
// entry is evicted (sessions are short-lived, so any stale entry is
// equally disposable).
const kcCacheMax = 4096

// session buffers bursts until a transmission is complete.
type session struct {
	bursts map[int]telecom.RadioBurst
	total  int
}

// appendPayloadBursts appends the session's payload bursts (seq
// 1..total-1) in order onto dst; ok is false (and dst is returned
// unchanged) when one was lost — the shared framing walk of the scalar
// and batched processing paths.
func (sess *session) appendPayloadBursts(dst []telecom.RadioBurst) ([]telecom.RadioBurst, bool) {
	base := len(dst)
	for seq := 1; seq < sess.total; seq++ {
		b, ok := sess.bursts[seq]
		if !ok {
			return dst[:base], false
		}
		dst = append(dst, b)
	}
	return dst, true
}

// payloadBursts is appendPayloadBursts into a fresh slice.
func (sess *session) payloadBursts() ([]telecom.RadioBurst, bool) {
	return sess.appendPayloadBursts(make([]telecom.RadioBurst, 0, sess.total-1))
}

// New builds a sniffer against a network.
func New(net *telecom.Network, cfg Config) *Sniffer {
	if cfg.MaxReceivers <= 0 {
		cfg.MaxReceivers = DefaultMaxReceivers
	}
	if cfg.Cracker == nil {
		cfg.Cracker = a51.Bitsliced{Workers: cfg.CrackWorkers}
	}
	return &Sniffer{
		net:      net,
		cfg:      cfg,
		cancels:  make(map[int]func()),
		sessions: make(map[uint32]*session),
		kcCache:  make(map[uint32]uint64),
		subKc:    make(map[subKcKey]uint64),
	}
}

// Tune points receivers at the given ARFCNs (idempotent per channel).
// It fails with ErrTooManyReceivers when the rig is out of handsets.
func (s *Sniffer) Tune(arfcns ...int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Count each ARFCN once, however many times the call repeats it —
	// Tune(5, 5) needs one receiver, not two.
	fresh := 0
	seen := make(map[int]bool, len(arfcns))
	for _, a := range arfcns {
		if _, ok := s.cancels[a]; !ok && !seen[a] {
			seen[a] = true
			fresh++
		}
	}
	if len(s.cancels)+fresh > s.cfg.MaxReceivers {
		return fmt.Errorf("%w: tuned %d, requested %d more, capacity %d",
			ErrTooManyReceivers, len(s.cancels), fresh, s.cfg.MaxReceivers)
	}
	for _, a := range arfcns {
		if _, ok := s.cancels[a]; ok {
			continue
		}
		cancel := s.net.Subscribe(a, s.Feed)
		s.cancels[a] = cancel
	}
	return nil
}

// Tuned returns the currently tuned ARFCNs, sorted.
func (s *Sniffer) Tuned() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, 0, len(s.cancels))
	for a := range s.cancels {
		out = append(out, a)
	}
	sort.Ints(out)
	return out
}

// Stop releases all receivers.
func (s *Sniffer) Stop() {
	s.mu.Lock()
	cancels := make([]func(), 0, len(s.cancels))
	for _, c := range s.cancels {
		cancels = append(cancels, c)
	}
	s.cancels = make(map[int]func())
	s.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

// Feed processes one burst. It is the Subscribe callback, and is also
// exported for replaying recorded traffic (failure-injection tests
// feed lossy traces directly).
func (s *Sniffer) Feed(b telecom.RadioBurst) {
	s.mu.Lock()
	sess, complete := s.ingestLocked(b)
	s.mu.Unlock()

	if complete {
		s.processSession(sess)
		s.recycleSessions(sess)
	}
}

// feedScratch is the reusable memory of one FeedBatch call — completed
// sessions, the crack prefetch queue, decryption lanes, payload copies
// and the TPDU assembly buffer — recycled through a sync.Pool so a
// campaign shard's trace costs no per-session allocation storm.
type feedScratch struct {
	completed []*session
	// Crack prefetch state: crackOf[i] is the sample index queued for
	// completed[i] (-1 when resolution will not need a fresh crack),
	// and pendSess/pendSub dedupe repeats of one session ID or one
	// (IMSI, RAND) auth context within the batch.
	crackOf  []int32
	samples  []a51.Sample
	keys     []uint64
	errs     []error
	share    time.Duration
	pendSess map[uint32]int32
	pendSub  map[subKcKey]int32
	// Decrypt/record state.
	pend     []pendingCapture
	pb       []telecom.RadioBurst
	payloads [][]byte
	kcs      []uint64
	frames   []uint32
	lanes    [][]byte
	slab     slab.Slab[byte]
	tpdu     []byte
}

// pendingCapture is one resolved session awaiting batched decryption:
// its payload slices live in feedScratch.payloads[pstart:pstart+pcount].
type pendingCapture struct {
	sess           *session
	kc             uint64
	crackTime      time.Duration
	pstart, pcount int32
}

var feedScratchPool = sync.Pool{New: func() any {
	return &feedScratch{
		pendSess: make(map[uint32]int32),
		pendSub:  make(map[subKcKey]int32),
	}
}}

// grab carves an n-byte buffer from the scratch slab arena (every
// byte is overwritten by the caller; see internal/slab for the
// aliasing guarantees).
func (fs *feedScratch) grab(n int) []byte { return fs.slab.Grab(n) }

// reset drops every reference the scratch accumulated (so the pool
// retains capacity, not sessions or payloads) and empties it.
func (fs *feedScratch) reset() {
	clear(fs.completed)
	clear(fs.samples)
	clear(fs.pend)
	clear(fs.pb)
	clear(fs.payloads)
	clear(fs.lanes)
	clear(fs.pendSess)
	clear(fs.pendSub)
	fs.completed = fs.completed[:0]
	fs.crackOf = fs.crackOf[:0]
	fs.samples = fs.samples[:0]
	fs.keys, fs.errs, fs.share = nil, nil, 0
	fs.pend = fs.pend[:0]
	fs.pb = fs.pb[:0]
	fs.payloads = fs.payloads[:0]
	fs.kcs = fs.kcs[:0]
	fs.frames = fs.frames[:0]
	fs.lanes = fs.lanes[:0]
	fs.slab.Reset()
	fs.tpdu = fs.tpdu[:0]
}

// FeedBatch ingests a whole recorded trace at once — the campaign
// engine's path. Sessions complete exactly as they would under
// burst-by-burst Feed, but two batch engines replace the per-session
// scalar work: every fresh key recovery the batch needs is resolved in
// ONE a51.BatchCracker.RecoverBatch call (64-lane bitsliced chain
// replay across all sessions; see prefetchCracks), and the A5/1
// payload decryption of every completed session runs through the
// 64-lane bitsliced batch encryptor instead of one scalar cipher per
// burst. Captures, statistics and Kc-cache behavior are identical to
// feeding the same bursts through Feed in order.
//
// The input bursts are only read during the call: payloads the rig
// keeps are copied, so callers may recycle the trace memory (e.g. a
// telecom.BurstBuffer) once FeedBatch returns — provided the trace
// completed every session it started, since bursts of an incomplete
// session stay buffered by reference until its remainder arrives.
func (s *Sniffer) FeedBatch(bursts []telecom.RadioBurst) {
	fs := feedScratchPool.Get().(*feedScratch)
	defer func() {
		fs.reset()
		feedScratchPool.Put(fs)
	}()

	s.mu.Lock()
	for _, b := range bursts {
		if sess, complete := s.ingestLocked(b); complete {
			fs.completed = append(fs.completed, sess)
		}
	}
	s.mu.Unlock()

	s.prefetchCracks(fs)

	// Resolve every completed session in trace order — cache hits,
	// prefetched table lookups and scalar fallbacks take the exact
	// paths Feed takes — queueing the encrypted payload bursts of
	// resolvable sessions as decryption lanes. Lossy sessions cost no
	// batched cipher work.
	prefetched := len(fs.crackOf) == len(fs.completed)
	for ci, sess := range fs.completed {
		var pre *crackResult
		if prefetched && fs.crackOf[ci] >= 0 {
			k := fs.crackOf[ci]
			pre = &crackResult{kc: fs.keys[k], err: fs.errs[k], took: fs.share}
		}
		kc, crackTime, ok := s.resolveSessionPre(sess, pre)
		if !ok {
			continue
		}
		pbStart := len(fs.pb)
		fs.pb, ok = sess.appendPayloadBursts(fs.pb)
		if !ok {
			continue // lost a payload burst
		}
		pstart := int32(len(fs.payloads))
		for _, b := range fs.pb[pbStart:] {
			payload := b.Payload
			if b.Encrypted {
				cp := fs.grab(len(payload))
				copy(cp, payload)
				fs.kcs = append(fs.kcs, kc)
				fs.frames = append(fs.frames, b.Frame)
				fs.lanes = append(fs.lanes, cp)
				payload = cp
			}
			fs.payloads = append(fs.payloads, payload)
		}
		fs.pend = append(fs.pend, pendingCapture{
			sess: sess, kc: kc, crackTime: crackTime,
			pstart: pstart, pcount: int32(len(fs.payloads)) - pstart,
		})
	}
	metFeedLanes.Observe(float64(len(fs.lanes)))
	a51.EncryptBurstsBatch(fs.kcs, fs.frames, fs.lanes)
	for i := range fs.pend {
		p := &fs.pend[i]
		fs.tpdu = fs.tpdu[:0]
		for _, payload := range fs.payloads[p.pstart : p.pstart+p.pcount] {
			fs.tpdu = append(fs.tpdu, payload...)
		}
		s.record(p.sess, p.kc, p.crackTime, fs.tpdu)
	}
	s.recycleSessions(fs.completed...)
}

// prefetchCracks is the batched half of key recovery: one pass over
// the completed sessions decides, against the current cache state,
// which will need a fresh crack — deduplicating repeats of one session
// ID and of one (IMSI, RAND) auth context within the batch, since the
// first crack fills the cache the rest will hit — and resolves all of
// them in a single BatchCracker.RecoverBatch call. The results are
// only a memo: resolution still runs in trace order against the real
// caches (resolveSessionPre), so statistics, cache fills and returned
// keys stay byte-identical to the scalar path; a prefetch the
// sequential pass disagrees with (say, a cache entry evicted between
// passes, or a failed crack a later duplicate session must retry) is
// ignored or recomputed inline.
func (s *Sniffer) prefetchCracks(fs *feedScratch) {
	if s.cfg.ScalarReplay {
		return
	}
	bc, ok := s.cfg.Cracker.(a51.BatchCracker)
	if !ok {
		return
	}
	var plain [telecom.PagingPlaintextLen]byte
	s.mu.Lock()
	crackObs := s.crackObs
	for _, sess := range fs.completed {
		fs.crackOf = append(fs.crackOf, -1)
		paging, ok := sess.bursts[0]
		if !ok || paging.Cipher == telecom.CipherA53 || !paging.Encrypted {
			continue
		}
		if _, hit := s.kcCache[paging.SessionID]; hit {
			continue
		}
		if _, hit := fs.pendSess[paging.SessionID]; hit {
			continue
		}
		subKey := subKcKey{imsi: paging.IMSI, rand: paging.RAND}
		if paging.IMSI != "" {
			if _, hit := s.subKc[subKey]; hit {
				continue
			}
			if _, hit := fs.pendSub[subKey]; hit {
				continue
			}
		}
		if len(paging.Payload) != len(plain) {
			continue // DeriveKeystream would reject it; resolve scalar
		}
		telecom.FillPagingPlaintext(plain[:], paging.SessionID)
		ks := fs.grab(len(plain))
		for i := range plain {
			ks[i] = paging.Payload[i] ^ plain[i]
		}
		idx := int32(len(fs.samples))
		fs.samples = append(fs.samples, a51.Sample{Keystream: ks, Frame: paging.Frame})
		fs.crackOf[len(fs.crackOf)-1] = idx
		fs.pendSess[paging.SessionID] = idx
		if paging.IMSI != "" {
			fs.pendSub[subKey] = idx
		}
	}
	s.mu.Unlock()
	if len(fs.samples) == 0 {
		return
	}
	start := time.Now()
	fs.keys, fs.errs = a51.RecoverAll(context.Background(), bc, fs.samples, s.net.KeySpace())
	metCrackBatch.ObserveSince(start)
	if crackObs != nil {
		crackObs.ObserveSince(start)
	}
	// Per-capture CrackTime is the amortized share of the batch — the
	// honest per-message cost of an amortized engine.
	fs.share = time.Since(start) / time.Duration(len(fs.samples))
}

// recycleSessions clears completed session buffers and returns them to
// the freelist. Callers must be completely done with the sessions:
// they are out of s.sessions already (ingestLocked removed them on
// completion), so the freelist is the only remaining reference.
func (s *Sniffer) recycleSessions(sessions ...*session) {
	for _, sess := range sessions {
		clear(sess.bursts)
	}
	s.mu.Lock()
	s.sessFree = append(s.sessFree, sessions...)
	s.mu.Unlock()
}

// ingestLocked buffers one burst, returning the session and whether
// this burst completed it. Requires s.mu held.
func (s *Sniffer) ingestLocked(b telecom.RadioBurst) (*session, bool) {
	s.stats.BurstsSeen++
	sess, ok := s.sessions[b.SessionID]
	if !ok {
		if n := len(s.sessFree); n > 0 {
			sess = s.sessFree[n-1]
			s.sessFree = s.sessFree[:n-1]
			sess.total = b.Total
		} else {
			sess = &session{bursts: make(map[int]telecom.RadioBurst), total: b.Total}
		}
		s.sessions[b.SessionID] = sess
	}
	sess.bursts[b.Seq] = b
	if len(sess.bursts) == sess.total {
		delete(s.sessions, b.SessionID)
		s.stats.SessionsComplete++
		return sess, true
	}
	return sess, false
}

// processSession cracks (if needed), decodes and records one complete
// transmission — the scalar per-session path live traffic goes
// through.
func (s *Sniffer) processSession(sess *session) {
	kc, crackTime, ok := s.resolveSession(sess)
	if !ok {
		return
	}
	pb, ok := sess.payloadBursts()
	if !ok {
		return // lost a payload burst
	}
	tpdu := make([]byte, 0, len(pb)*16)
	for _, b := range pb {
		payload := b.Payload
		if b.Encrypted {
			payload = a51.EncryptBurst(kc, b.Frame, payload)
		}
		tpdu = append(tpdu, payload...)
	}
	s.record(sess, kc, crackTime, tpdu)
}

// crackResult carries a batch-prefetched key recovery into
// resolveSessionPre: the key (or error) RecoverBatch produced for this
// session's sample, and the amortized share of the batch wall time.
type crackResult struct {
	kc   uint64
	err  error
	took time.Duration
}

// resolveSession produces the session key for one complete
// transmission — replay cache, per-subscriber (IMSI, RAND) cache, or a
// fresh crack through the backend — updating the crack statistics. ok
// is false when the session is unusable: paging burst lost, A5/3
// announced, or recovery failed.
func (s *Sniffer) resolveSession(sess *session) (kc uint64, crackTime time.Duration, ok bool) {
	return s.resolveSessionPre(sess, nil)
}

// resolveSessionPre is resolveSession with an optional prefetched
// crack: when the caches miss and pre is non-nil, the batch's result
// stands in for the Cracker.Recover call (the sample was derived from
// the same paging burst, so the result is the same by determinism of
// the backend); everything else — cache consultation order, statistic
// increments, cache fills and eviction — is the scalar path, executed
// in the caller's session order.
func (s *Sniffer) resolveSessionPre(sess *session, pre *crackResult) (kc uint64, crackTime time.Duration, ok bool) {
	paging, ok := sess.bursts[0]
	if !ok {
		return 0, 0, false // lost the paging burst: no known plaintext, no crack
	}
	if paging.Cipher == telecom.CipherA53 {
		// The ciphering mode travels in the clear; A5/3 is beyond every
		// backend, so the rig abandons the session without searching.
		s.mu.Lock()
		s.stats.A53Abandoned++
		s.mu.Unlock()
		metA53Abandoned.Inc()
		return 0, 0, false
	}
	if !paging.Encrypted {
		return 0, 0, true
	}

	subKey := subKcKey{imsi: paging.IMSI, rand: paging.RAND}
	subEligible := paging.IMSI != ""
	s.mu.Lock()
	cached, hit := s.kcCache[paging.SessionID]
	if hit {
		s.stats.CrackCacheHits++
		metCrackCacheHits.Inc()
	} else if subEligible {
		// Session unseen — but the network may have reused an
		// authentication context the rig already cracked.
		if k, ok := s.subKc[subKey]; ok {
			cached, hit = k, true
			s.stats.KcReuseHits++
			metKcReuseHits.Inc()
		} else {
			s.stats.KcReuseMisses++
			metKcReuseMisses.Inc()
		}
	}
	s.mu.Unlock()
	if hit {
		return cached, 0, true
	}

	if pre != nil {
		// The batch already replayed this sample through the backend;
		// consume its result instead of re-walking the chains. The
		// derivation step is skipped too: prefetchCracks only queued a
		// sample whose known plaintext derived cleanly.
		s.mu.Lock()
		s.stats.CracksAttempted++
		s.mu.Unlock()
		metCracksAttempted.Inc()
		if pre.err != nil {
			return 0, 0, false
		}
		kc, crackTime = pre.kc, pre.took
	} else {
		start := time.Now()
		ks, err := a51.DeriveKeystream(paging.Payload, telecom.PagingPlaintext(paging.SessionID))
		if err != nil {
			return 0, 0, false
		}
		s.mu.Lock()
		s.stats.CracksAttempted++
		s.mu.Unlock()
		metCracksAttempted.Inc()
		kc, err = s.cfg.Cracker.Recover(context.Background(), ks, paging.Frame, s.net.KeySpace())
		if err != nil {
			return 0, 0, false
		}
		crackTime = time.Since(start)
	}
	metCracksSucceeded.Inc()
	s.mu.Lock()
	s.stats.CracksSucceeded++
	if len(s.kcCache) >= kcCacheMax {
		for id := range s.kcCache {
			delete(s.kcCache, id)
			break
		}
	}
	s.kcCache[paging.SessionID] = kc
	if subEligible {
		if len(s.subKc) >= kcCacheMax {
			for k := range s.subKc {
				delete(s.subKc, k)
				break
			}
		}
		s.subKc[subKey] = kc
	}
	s.mu.Unlock()
	return kc, crackTime, true
}

// record decodes a session's reassembled TPDU and files the capture.
// tpdu is only read during the call (the memo copies it), so callers
// may pass a recycled assembly buffer.
func (s *Sniffer) record(sess *session, kc uint64, crackTime time.Duration, tpdu []byte) {
	paging := sess.bursts[0]
	s.mu.Lock()
	hit := s.haveTPDU && bytes.Equal(tpdu, s.lastTPDU)
	msg, err := s.lastMsg, s.lastErr
	s.mu.Unlock()
	if !hit {
		// Decode outside the lock: live rigs with heterogeneous traffic
		// miss the memo on most messages and must not serialize decoding
		// behind the ingest mutex. Two concurrent misses both decode and
		// the last memo write wins — content-keyed, so still correct.
		msg, err = gsmcodec.UnmarshalDeliver(tpdu)
		s.mu.Lock()
		s.lastMsg, s.lastErr = msg, err
		s.lastTPDU = append(s.lastTPDU[:0], tpdu...)
		s.haveTPDU = true
		s.mu.Unlock()
	}
	if err != nil {
		return
	}

	capt := Capture{
		ARFCN:      paging.ARFCN,
		CellID:     paging.CellID,
		SessionID:  paging.SessionID,
		Originator: msg.Originator,
		Text:       msg.Text,
		Timestamp:  msg.Timestamp,
		Encrypted:  paging.Encrypted,
		Kc:         kc,
		CrackTime:  crackTime,
	}

	metDecoded.Inc()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.MessagesDecoded++
	if s.cfg.Filter != nil && !s.cfg.Filter.Match(capt) {
		s.stats.FilteredOut++
		return
	}
	s.captures = append(s.captures, capt)
}

// Reset returns the rig to its just-built state — in-flight session
// buffers, captures, counters and both Kc caches are dropped; tuned
// receivers and the cracker backend are kept. Campaign sweeps reuse
// per-worker rigs across scenarios through it instead of rebuilding
// them, resetting between scenarios so no cracked key leaks from one
// radio environment into the next.
func (s *Sniffer) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sessions = make(map[uint32]*session)
	s.captures = nil
	s.stats = Stats{}
	s.kcCache = make(map[uint32]uint64)
	s.subKc = make(map[subKcKey]uint64)
}

// SetCrackObserver installs (or, with nil, removes) an extra histogram
// that receives every batched-crack duration alongside the registry's
// sniffer_crack_batch_seconds series. The campaign engine points it at
// the checking-out run's local crack histogram and clears it on rig
// release, which is what keeps per-run crack timings correct when
// scenarios overlap on one process.
func (s *Sniffer) SetCrackObserver(h *obs.Histogram) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.crackObs = h
}

// Captures returns a copy of recorded (filter-matching) messages.
func (s *Sniffer) Captures() []Capture {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Capture(nil), s.captures...)
}

// Stats returns a snapshot of run counters.
func (s *Sniffer) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// WaitForCode polls until a capture whose text matches filter appears,
// or ctx expires. It is the primitive the attack orchestrator uses:
// "trigger the reset, then wait for the code to fly by".
func (s *Sniffer) WaitForCode(ctx context.Context, f Filter) (Capture, error) {
	seen := 0
	for {
		s.mu.Lock()
		for ; seen < len(s.captures); seen++ {
			if f == nil || f.Match(s.captures[seen]) {
				c := s.captures[seen]
				s.mu.Unlock()
				return c, nil
			}
		}
		s.mu.Unlock()
		select {
		case <-ctx.Done():
			return Capture{}, ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
}
