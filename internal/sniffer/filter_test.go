package sniffer

import (
	"strings"
	"testing"
)

func capFor(src, text string, arfcn int, enc bool) Capture {
	return Capture{Originator: src, Text: text, ARFCN: arfcn, Encrypted: enc}
}

func TestFilterBasics(t *testing.T) {
	cases := []struct {
		expr string
		c    Capture
		want bool
	}{
		{`sms.src == "Google"`, capFor("Google", "", 0, false), true},
		{`sms.src == "Google"`, capFor("Facebook", "", 0, false), false},
		{`sms.src != "Google"`, capFor("Facebook", "", 0, false), true},
		{`sms.text contains "code"`, capFor("", "your code is 1", 0, false), true},
		{`sms.text contains "code"`, capFor("", "hello", 0, false), false},
		{`sms.text matches "G-[0-9]{6}"`, capFor("", "G-845512 is your code", 0, false), true},
		{`sms.text matches "G-[0-9]{6}"`, capFor("", "G-12 is not", 0, false), false},
		{`arfcn == 512`, capFor("", "", 512, false), true},
		{`arfcn != 512`, capFor("", "", 513, false), true},
		{`sms.encrypted == true`, capFor("", "", 0, true), true},
		{`sms.encrypted != true`, capFor("", "", 0, false), true},
	}
	for _, tc := range cases {
		f, err := ParseFilter(tc.expr)
		if err != nil {
			t.Fatalf("parse %q: %v", tc.expr, err)
		}
		if got := f.Match(tc.c); got != tc.want {
			t.Errorf("%q.Match(%+v) = %v want %v", tc.expr, tc.c, got, tc.want)
		}
	}
}

func TestFilterBooleanComposition(t *testing.T) {
	f := MustFilter(`(sms.src == "Google" || sms.src == "Facebook") && sms.text contains "code" && !(arfcn == 999)`)
	if !f.Match(capFor("Google", "your code", 512, true)) {
		t.Error("expected match")
	}
	if f.Match(capFor("Google", "your code", 999, true)) {
		t.Error("negated arfcn matched")
	}
	if f.Match(capFor("Twitter", "your code", 512, true)) {
		t.Error("unlisted source matched")
	}
	if f.Match(capFor("Google", "hello", 512, true)) {
		t.Error("missing keyword matched")
	}
}

func TestFilterPrecedenceOrBindsLooser(t *testing.T) {
	// a || b && c parses as a || (b && c).
	f := MustFilter(`sms.src == "A" || sms.src == "B" && sms.text contains "x"`)
	if !f.Match(capFor("A", "none", 0, false)) {
		t.Error("left OR arm should match without the AND condition")
	}
	if f.Match(capFor("B", "none", 0, false)) {
		t.Error("right arm requires the AND condition")
	}
	if !f.Match(capFor("B", "has x", 0, false)) {
		t.Error("right arm with both conditions should match")
	}
}

func TestFilterStringRoundTrip(t *testing.T) {
	exprs := []string{
		`sms.src == "Google"`,
		`sms.text contains "code" && arfcn == 512`,
		`!(sms.encrypted == true) || sms.text matches "[0-9]{6}"`,
	}
	for _, e := range exprs {
		f := MustFilter(e)
		again, err := ParseFilter(f.String())
		if err != nil {
			t.Fatalf("re-parse of %q -> %q failed: %v", e, f.String(), err)
		}
		// Spot check equivalence on a few captures.
		probes := []Capture{
			capFor("Google", "code 123456", 512, true),
			capFor("Other", "hello", 999, false),
			capFor("Google", "123456", 512, false),
		}
		for _, c := range probes {
			if f.Match(c) != again.Match(c) {
				t.Errorf("round-trip of %q changed semantics on %+v", e, c)
			}
		}
	}
}

func TestFilterParseErrors(t *testing.T) {
	bad := []string{
		``,
		`sms.src`,
		`sms.src ==`,
		`sms.src == Google`,      // unquoted
		`sms.src = "G"`,          // single =
		`arfcn == "x"`,           // wrong value type
		`arfcn contains 5`,       // wrong op
		`sms.encrypted == "yes"`, // wrong value type
		`sms.encrypted contains true`,
		`unknownfield == "x"`,
		`sms.text matches "["`, // bad regexp
		`(sms.src == "G"`,      // unbalanced paren
		`sms.src == "G" &&`,
		`sms.src == "G" extra`,
		`sms.src == "unterminated`,
		`sms.src & "G"`,
		`sms.src | "G"`,
		`sms.text == "a" ~ "b"`,
	}
	for _, e := range bad {
		if _, err := ParseFilter(e); err == nil {
			t.Errorf("ParseFilter(%q) succeeded, want error", e)
		}
	}
}

func TestMustFilterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustFilter on bad input did not panic")
		}
	}()
	MustFilter(`bogus`)
}

func TestFilterStringsReadable(t *testing.T) {
	f := MustFilter(`sms.src == "Google" && (arfcn == 512 || sms.encrypted == false)`)
	s := f.String()
	for _, want := range []string{"sms.src", "Google", "512", "encrypted"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func BenchmarkFilterMatch(b *testing.B) {
	f := MustFilter(`(sms.src == "Google" || sms.src == "Facebook") && sms.text matches "[0-9]{6}"`)
	c := capFor("Google", "G-845512 is your verification code", 512, true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !f.Match(c) {
			b.Fatal("no match")
		}
	}
}
