package sniffer

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// The filter language mirrors how the paper used Wireshark display
// filters to pick SMS codes out of decoded GSM traffic ("Wireshark to
// filter the target SMS Codes with specific rules", §V.A.2).
//
// Grammar:
//
//	expr   := and ( "||" and )*
//	and    := unary ( "&&" unary )*
//	unary  := "!" unary | "(" expr ")" | cmp
//	cmp    := field op value
//	field  := "sms.src" | "sms.text" | "arfcn" | "sms.encrypted"
//	op     := "==" | "!=" | "contains" | "matches"
//	value  := double-quoted string | integer | "true" | "false"
//
// Examples:
//
//	sms.text contains "code"
//	sms.src == "Google" || sms.src == "Facebook"
//	arfcn == 512 && sms.text matches "G-[0-9]{6}"

// Filter is a compiled predicate over captures.
type Filter interface {
	// Match reports whether the capture satisfies the filter.
	Match(c Capture) bool
	// String renders the filter back to source form.
	String() string
}

// ParseFilter compiles a filter expression.
func ParseFilter(src string) (Filter, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	expr, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, fmt.Errorf("sniffer: unexpected trailing token %q", p.peek().text)
	}
	return expr, nil
}

// MustFilter is ParseFilter panicking on error, for constant filters.
func MustFilter(src string) Filter {
	f, err := ParseFilter(src)
	if err != nil {
		panic(err)
	}
	return f
}

// --- lexer ---

type tokKind int

const (
	tokField tokKind = iota + 1
	tokOp
	tokString
	tokInt
	tokBool
	tokAnd
	tokOr
	tokNot
	tokLParen
	tokRParen
)

type token struct {
	kind tokKind
	text string
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n':
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "("})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")"})
			i++
		case c == '!' && i+1 < len(src) && src[i+1] == '=':
			toks = append(toks, token{tokOp, "!="})
			i += 2
		case c == '!':
			toks = append(toks, token{tokNot, "!"})
			i++
		case c == '&':
			if i+1 >= len(src) || src[i+1] != '&' {
				return nil, fmt.Errorf("sniffer: lone '&' at offset %d", i)
			}
			toks = append(toks, token{tokAnd, "&&"})
			i += 2
		case c == '|':
			if i+1 >= len(src) || src[i+1] != '|' {
				return nil, fmt.Errorf("sniffer: lone '|' at offset %d", i)
			}
			toks = append(toks, token{tokOr, "||"})
			i += 2
		case c == '=':
			if i+1 >= len(src) || src[i+1] != '=' {
				return nil, fmt.Errorf("sniffer: lone '=' at offset %d (use ==)", i)
			}
			toks = append(toks, token{tokOp, "=="})
			i += 2
		case c == '"':
			j := i + 1
			for j < len(src) && src[j] != '"' {
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("sniffer: unterminated string at offset %d", i)
			}
			toks = append(toks, token{tokString, src[i+1 : j]})
			i = j + 1
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			toks = append(toks, token{tokInt, src[i:j]})
			i = j
		case isIdentChar(c):
			j := i
			for j < len(src) && isIdentChar(src[j]) {
				j++
			}
			word := src[i:j]
			switch word {
			case "contains", "matches":
				toks = append(toks, token{tokOp, word})
			case "true", "false":
				toks = append(toks, token{tokBool, word})
			case "sms.src", "sms.text", "arfcn", "sms.encrypted":
				toks = append(toks, token{tokField, word})
			default:
				return nil, fmt.Errorf("sniffer: unknown word %q", word)
			}
			i = j
		default:
			return nil, fmt.Errorf("sniffer: unexpected character %q at offset %d", c, i)
		}
	}
	return toks, nil
}

func isIdentChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '.' || c == '_'
}

// --- parser ---

type parser struct {
	toks []token
	pos  int
}

func (p *parser) eof() bool      { return p.pos >= len(p.toks) }
func (p *parser) peek() token    { return p.toks[p.pos] }
func (p *parser) advance() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) parseExpr() (Filter, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for !p.eof() && p.peek().kind == tokOr {
		p.advance()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &binExpr{op: "||", l: left, r: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Filter, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for !p.eof() && p.peek().kind == tokAnd {
		p.advance()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &binExpr{op: "&&", l: left, r: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Filter, error) {
	if p.eof() {
		return nil, fmt.Errorf("sniffer: unexpected end of filter")
	}
	switch p.peek().kind {
	case tokNot:
		p.advance()
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &notExpr{inner}, nil
	case tokLParen:
		p.advance()
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.eof() || p.peek().kind != tokRParen {
			return nil, fmt.Errorf("sniffer: missing closing parenthesis")
		}
		p.advance()
		return &parenExpr{inner}, nil
	case tokField:
		return p.parseCmp()
	default:
		return nil, fmt.Errorf("sniffer: unexpected token %q", p.peek().text)
	}
}

func (p *parser) parseCmp() (Filter, error) {
	field := p.advance().text
	if p.eof() || p.peek().kind != tokOp {
		return nil, fmt.Errorf("sniffer: expected operator after %q", field)
	}
	op := p.advance().text
	if p.eof() {
		return nil, fmt.Errorf("sniffer: expected value after %q %s", field, op)
	}
	val := p.advance()

	switch field {
	case "arfcn":
		if val.kind != tokInt {
			return nil, fmt.Errorf("sniffer: arfcn requires an integer value")
		}
		if op != "==" && op != "!=" {
			return nil, fmt.Errorf("sniffer: arfcn supports only == and !=")
		}
		n, err := strconv.Atoi(val.text)
		if err != nil {
			return nil, fmt.Errorf("sniffer: bad arfcn %q", val.text)
		}
		return &intCmp{field: field, op: op, val: n}, nil
	case "sms.encrypted":
		if val.kind != tokBool {
			return nil, fmt.Errorf("sniffer: sms.encrypted requires true or false")
		}
		if op != "==" && op != "!=" {
			return nil, fmt.Errorf("sniffer: sms.encrypted supports only == and !=")
		}
		return &boolCmp{field: field, op: op, val: val.text == "true"}, nil
	case "sms.src", "sms.text":
		if val.kind != tokString {
			return nil, fmt.Errorf("sniffer: %s requires a quoted string", field)
		}
		if op == "matches" {
			re, err := regexp.Compile(val.text)
			if err != nil {
				return nil, fmt.Errorf("sniffer: bad regexp %q: %v", val.text, err)
			}
			return &reCmp{field: field, re: re, src: val.text}, nil
		}
		if op != "==" && op != "!=" && op != "contains" {
			return nil, fmt.Errorf("sniffer: unsupported operator %q for %s", op, field)
		}
		return &strCmp{field: field, op: op, val: val.text}, nil
	default:
		return nil, fmt.Errorf("sniffer: unknown field %q", field)
	}
}

// --- AST nodes ---

type binExpr struct {
	op   string
	l, r Filter
}

func (e *binExpr) Match(c Capture) bool {
	if e.op == "&&" {
		return e.l.Match(c) && e.r.Match(c)
	}
	return e.l.Match(c) || e.r.Match(c)
}

func (e *binExpr) String() string {
	return e.l.String() + " " + e.op + " " + e.r.String()
}

type notExpr struct{ inner Filter }

func (e *notExpr) Match(c Capture) bool { return !e.inner.Match(c) }
func (e *notExpr) String() string       { return "!" + e.inner.String() }

type parenExpr struct{ inner Filter }

func (e *parenExpr) Match(c Capture) bool { return e.inner.Match(c) }
func (e *parenExpr) String() string       { return "(" + e.inner.String() + ")" }

type strCmp struct {
	field string
	op    string
	val   string
}

func (e *strCmp) fieldValue(c Capture) string {
	if e.field == "sms.src" {
		return c.Originator
	}
	return c.Text
}

func (e *strCmp) Match(c Capture) bool {
	v := e.fieldValue(c)
	switch e.op {
	case "==":
		return v == e.val
	case "!=":
		return v != e.val
	case "contains":
		return strings.Contains(v, e.val)
	}
	return false
}

func (e *strCmp) String() string {
	return fmt.Sprintf("%s %s %q", e.field, e.op, e.val)
}

type reCmp struct {
	field string
	re    *regexp.Regexp
	src   string
}

func (e *reCmp) Match(c Capture) bool {
	v := c.Text
	if e.field == "sms.src" {
		v = c.Originator
	}
	return e.re.MatchString(v)
}

func (e *reCmp) String() string {
	return fmt.Sprintf("%s matches %q", e.field, e.src)
}

type intCmp struct {
	field string
	op    string
	val   int
}

func (e *intCmp) Match(c Capture) bool {
	if e.op == "==" {
		return c.ARFCN == e.val
	}
	return c.ARFCN != e.val
}

func (e *intCmp) String() string {
	return fmt.Sprintf("%s %s %d", e.field, e.op, e.val)
}

type boolCmp struct {
	field string
	op    string
	val   bool
}

func (e *boolCmp) Match(c Capture) bool {
	if e.op == "==" {
		return c.Encrypted == e.val
	}
	return c.Encrypted != e.val
}

func (e *boolCmp) String() string {
	return fmt.Sprintf("%s %s %t", e.field, e.op, e.val)
}
