package sniffer

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/actfort/actfort/internal/a51"
	"github.com/actfort/actfort/internal/telecom"
)

// rig builds a network with one A5/1 cell on three ARFCNs and an
// attached GSM victim.
func rig(t *testing.T, cfg Config) (*telecom.Network, *telecom.Subscriber, *Sniffer) {
	t.Helper()
	n := telecom.NewNetwork(telecom.Config{
		KeySpace: a51.KeySpace{Base: 0xC118000000000000, Bits: 10},
		Seed:     11,
	})
	cell, err := n.AddCell(telecom.Cell{ID: "cell-1", ARFCNs: []int{512, 513, 514}, Cipher: telecom.CipherA51})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := n.Register("460000000000001", "+8613800000001")
	if err != nil {
		t.Fatal(err)
	}
	term, err := n.NewTerminal(sub, telecom.RATGSM)
	if err != nil {
		t.Fatal(err)
	}
	if err := term.Attach(cell); err != nil {
		t.Fatal(err)
	}
	s := New(n, cfg)
	t.Cleanup(s.Stop)
	return n, sub, s
}

func TestSniffEncryptedSMS(t *testing.T) {
	n, sub, s := rig(t, Config{})
	if err := s.Tune(512, 513, 514); err != nil {
		t.Fatal(err)
	}
	want := "G-845512 is your Google verification code."
	if _, err := n.SendSMS("Google", sub.MSISDN, want); err != nil {
		t.Fatal(err)
	}
	caps := s.Captures()
	if len(caps) != 1 {
		t.Fatalf("captures = %d want 1", len(caps))
	}
	c := caps[0]
	if c.Text != want || c.Originator != "Google" || !c.Encrypted {
		t.Errorf("capture = %+v", c)
	}
	if c.Kc == 0 {
		t.Error("no session key recovered")
	}
	if !n.KeySpace().Contains(c.Kc) {
		t.Error("recovered Kc outside network key space")
	}
	stats := s.Stats()
	if stats.CracksAttempted != 1 || stats.CracksSucceeded != 1 {
		t.Errorf("crack stats = %+v", stats)
	}
	line := c.WiresharkLine()
	if !strings.Contains(line, "Google") || !strings.Contains(line, "A5/1") {
		t.Errorf("WiresharkLine = %q", line)
	}
}

func TestPartialTuningMissesOtherChannels(t *testing.T) {
	n, sub, s := rig(t, Config{})
	if err := s.Tune(512); err != nil { // only 1 of 3 channels covered
		t.Fatal(err)
	}
	const msgs = 30
	for i := 0; i < msgs; i++ {
		if _, err := n.SendSMS("Svc", sub.MSISDN, "code 111111"); err != nil {
			t.Fatal(err)
		}
	}
	got := len(s.Captures())
	if got == 0 || got == msgs {
		t.Fatalf("1/3 coverage captured %d of %d; want strictly partial", got, msgs)
	}
	// Sessions hash round-robin over 3 ARFCNs: expect about a third.
	if got < msgs/6 || got > msgs*2/3 {
		t.Errorf("capture rate %d/%d implausible for 1/3 coverage", got, msgs)
	}
}

func TestReceiverCapacity(t *testing.T) {
	_, _, s := rig(t, Config{MaxReceivers: 2})
	if err := s.Tune(512, 513); err != nil {
		t.Fatal(err)
	}
	if err := s.Tune(514); !errors.Is(err, ErrTooManyReceivers) {
		t.Fatalf("over-capacity Tune err = %v", err)
	}
	// Re-tuning existing channels consumes no receivers.
	if err := s.Tune(512, 513); err != nil {
		t.Fatal(err)
	}
	if got := s.Tuned(); len(got) != 2 || got[0] != 512 || got[1] != 513 {
		t.Errorf("Tuned = %v", got)
	}
	s.Stop()
	if got := s.Tuned(); len(got) != 0 {
		t.Errorf("Tuned after Stop = %v", got)
	}
}

// TestFeedBatchMatchesFeed pins the batched-decrypt contract: handing
// a recorded trace to FeedBatch must produce the same captures and
// statistics as feeding each burst through Feed in order — including
// lossy sessions, A5/0 plaintext, A5/3 abandons and Kc-reuse cache
// hits.
func TestFeedBatchMatchesFeed(t *testing.T) {
	trace := func(t *testing.T) []telecom.RadioBurst {
		t.Helper()
		n, sub, s := rig(t, Config{})
		if err := s.Tune(512, 513, 514); err != nil {
			t.Fatal(err)
		}
		var all []telecom.RadioBurst
		done := n.Subscribe(512, func(b telecom.RadioBurst) { all = append(all, b) })
		defer done()
		done2 := n.Subscribe(513, func(b telecom.RadioBurst) { all = append(all, b) })
		defer done2()
		done3 := n.Subscribe(514, func(b telecom.RadioBurst) { all = append(all, b) })
		defer done3()
		for i := 0; i < 12; i++ {
			if _, err := n.SendSMS("Google", sub.MSISDN, "G-845512 is your code"); err != nil {
				t.Fatal(err)
			}
		}
		// Drop one payload burst so a lossy session rides along.
		lossy := append([]telecom.RadioBurst(nil), all...)
		return append(lossy[:4], lossy[5:]...)
	}

	bursts := trace(t)
	_, _, scalar := rig(t, Config{})
	for _, b := range bursts {
		scalar.Feed(b)
	}
	_, _, batched := rig(t, Config{})
	batched.FeedBatch(bursts)

	if a, b := scalar.Stats(), batched.Stats(); a != b {
		t.Errorf("stats differ:\nscalar %+v\nbatch  %+v", a, b)
	}
	sc, bc := scalar.Captures(), batched.Captures()
	if len(sc) != len(bc) {
		t.Fatalf("capture counts differ: scalar %d batch %d", len(sc), len(bc))
	}
	for i := range sc {
		a, b := sc[i], bc[i]
		a.CrackTime, b.CrackTime = 0, 0 // the only wall-clock field
		if a != b {
			t.Errorf("capture %d differs:\nscalar %+v\nbatch  %+v", i, a, b)
		}
	}
}

// TestFeedBatchMatchesFeedTableBackend pins the batched-crack contract
// of the tentpole: with a TMTO table (an a51.BatchCracker) behind the
// rig, FeedBatch prefetches every fresh key recovery of the trace in
// one bitsliced RecoverBatch call — deduplicating session-ID repeats
// and (IMSI, RAND) auth-context reuse within the batch — and must
// still produce the same captures and statistics as burst-by-burst
// Feed, and as FeedBatch with ScalarReplay forcing per-session scalar
// chain replay.
func TestFeedBatchMatchesFeedTableBackend(t *testing.T) {
	space := a51.KeySpace{Base: 0xC118000000000000, Bits: 10}
	table, err := a51.BuildTable(space, a51.TableConfig{Frames: telecom.PagingFrames(), ChainLen: 2})
	if err != nil {
		t.Fatal(err)
	}

	trace := func(t *testing.T, reauthEvery int) []telecom.RadioBurst {
		t.Helper()
		n := telecom.NewNetwork(telecom.Config{
			KeySpace:    space,
			Seed:        11,
			ReauthEvery: reauthEvery,
		})
		cell, err := n.AddCell(telecom.Cell{ID: "cell-1", ARFCNs: []int{512}, Cipher: telecom.CipherA51})
		if err != nil {
			t.Fatal(err)
		}
		sub, err := n.Register("460000000000001", "+8613800000001")
		if err != nil {
			t.Fatal(err)
		}
		term, err := n.NewTerminal(sub, telecom.RATGSM)
		if err != nil {
			t.Fatal(err)
		}
		if err := term.Attach(cell); err != nil {
			t.Fatal(err)
		}
		var all []telecom.RadioBurst
		done := n.Subscribe(512, func(b telecom.RadioBurst) { all = append(all, b) })
		defer done()
		for i := 0; i < 9; i++ {
			if _, err := n.SendSMS("Google", sub.MSISDN, "G-845512 is your code"); err != nil {
				t.Fatal(err)
			}
		}
		// Drop one payload burst so a lossy session rides along.
		return append(all[:4], all[5:]...)
	}

	// reauthEvery=3: consecutive sessions reuse (RAND, Kc), so the
	// batch's pendSub dedupe and the KcReuse counters are exercised.
	for _, reauthEvery := range []int{0, 3} {
		bursts := trace(t, reauthEvery)

		feed := New(telecom.NewNetwork(telecom.Config{KeySpace: space, Seed: 11}), Config{Cracker: table})
		for _, b := range bursts {
			feed.Feed(b)
		}
		batch := New(telecom.NewNetwork(telecom.Config{KeySpace: space, Seed: 11}), Config{Cracker: table})
		batch.FeedBatch(bursts)
		scalar := New(telecom.NewNetwork(telecom.Config{KeySpace: space, Seed: 11}), Config{Cracker: table, ScalarReplay: true})
		scalar.FeedBatch(bursts)

		for _, cmp := range []struct {
			name string
			s    *Sniffer
		}{{"batch-replay", batch}, {"scalar-replay", scalar}} {
			if a, b := feed.Stats(), cmp.s.Stats(); a != b {
				t.Errorf("reauth=%d %s stats differ:\nfeed  %+v\nother %+v", reauthEvery, cmp.name, a, b)
			}
			fc, oc := feed.Captures(), cmp.s.Captures()
			if len(fc) != len(oc) {
				t.Fatalf("reauth=%d %s capture counts differ: %d vs %d", reauthEvery, cmp.name, len(fc), len(oc))
			}
			for i := range fc {
				a, b := fc[i], oc[i]
				a.CrackTime, b.CrackTime = 0, 0 // the only wall-clock field
				if a != b {
					t.Errorf("reauth=%d %s capture %d differs:\nfeed  %+v\nother %+v", reauthEvery, cmp.name, i, a, b)
				}
			}
		}
	}
}

// TestTuneDuplicateARFCNsOneCall is the regression test for the
// capacity double-count: Tune(512, 512) needs one receiver, so it must
// succeed on a one-handset rig instead of spuriously reporting
// ErrTooManyReceivers.
func TestTuneDuplicateARFCNsOneCall(t *testing.T) {
	_, _, s := rig(t, Config{MaxReceivers: 1})
	if err := s.Tune(512, 512); err != nil {
		t.Fatalf("Tune(512, 512) on capacity 1 = %v", err)
	}
	if got := s.Tuned(); len(got) != 1 || got[0] != 512 {
		t.Fatalf("Tuned = %v, want [512]", got)
	}
	// Mixing an already-tuned channel with duplicates of a fresh one
	// must count exactly one new receiver.
	_, _, s2 := rig(t, Config{MaxReceivers: 2})
	if err := s2.Tune(512); err != nil {
		t.Fatal(err)
	}
	if err := s2.Tune(512, 513, 513); err != nil {
		t.Fatalf("Tune(512, 513, 513) on capacity 2 = %v", err)
	}
	if got := s2.Tuned(); len(got) != 2 {
		t.Fatalf("Tuned = %v, want two channels", got)
	}
	// And genuine over-capacity still fails loudly.
	if err := s2.Tune(514, 514); !errors.Is(err, ErrTooManyReceivers) {
		t.Fatalf("over-capacity Tune err = %v", err)
	}
}

func TestFilterRestrictsCaptures(t *testing.T) {
	n, sub, s := rig(t, Config{Filter: MustFilter(`sms.text contains "code"`)})
	if err := s.Tune(512, 513, 514); err != nil {
		t.Fatal(err)
	}
	if _, err := n.SendSMS("Google", sub.MSISDN, "your code is 123456"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.SendSMS("Mom", sub.MSISDN, "dinner at eight"); err != nil {
		t.Fatal(err)
	}
	caps := s.Captures()
	if len(caps) != 1 || !strings.Contains(caps[0].Text, "code") {
		t.Fatalf("filtered captures = %+v", caps)
	}
	stats := s.Stats()
	if stats.MessagesDecoded != 2 || stats.FilteredOut != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestPlaintextCellNeedsNoCrack(t *testing.T) {
	n := telecom.NewNetwork(telecom.Config{KeySpace: a51.KeySpace{Bits: 8}, Seed: 2})
	cell, _ := n.AddCell(telecom.Cell{ID: "open", ARFCNs: []int{100}, Cipher: telecom.CipherA50})
	sub, _ := n.Register("i", "+8613800000009")
	term, _ := n.NewTerminal(sub, telecom.RATGSM)
	if err := term.Attach(cell); err != nil {
		t.Fatal(err)
	}
	s := New(n, Config{})
	defer s.Stop()
	if err := s.Tune(100); err != nil {
		t.Fatal(err)
	}
	if _, err := n.SendSMS("Bank", sub.MSISDN, "pin 0000"); err != nil {
		t.Fatal(err)
	}
	caps := s.Captures()
	if len(caps) != 1 || caps[0].Encrypted || caps[0].Kc != 0 {
		t.Fatalf("captures = %+v", caps)
	}
	if s.Stats().CracksAttempted != 0 {
		t.Error("crack attempted on plaintext traffic")
	}
}

// Failure injection: losing any single burst of a session kills the
// capture, but other sessions are unaffected.
func TestBurstLossDropsSession(t *testing.T) {
	n, sub, _ := rig(t, Config{})
	// Record the raw bursts without tuning the sniffer.
	var bursts []telecom.RadioBurst
	for _, a := range []int{512, 513, 514} {
		cancel := n.Subscribe(a, func(b telecom.RadioBurst) { bursts = append(bursts, b) })
		defer cancel()
	}
	if _, err := n.SendSMS("Google", sub.MSISDN, "G-111222 is your code"); err != nil {
		t.Fatal(err)
	}
	for drop := 0; drop < len(bursts); drop++ {
		fresh := New(n, Config{})
		for i, b := range bursts {
			if i == drop {
				continue
			}
			fresh.Feed(b)
		}
		if got := len(fresh.Captures()); got != 0 {
			t.Errorf("dropping burst %d still yielded %d captures", drop, got)
		}
	}
	// Feeding all bursts works.
	full := New(n, Config{})
	for _, b := range bursts {
		full.Feed(b)
	}
	if got := len(full.Captures()); got != 1 {
		t.Errorf("full replay captures = %d want 1", got)
	}
}

func TestWaitForCode(t *testing.T) {
	n, sub, s := rig(t, Config{})
	if err := s.Tune(512, 513, 514); err != nil {
		t.Fatal(err)
	}
	done := make(chan Capture, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		c, err := s.WaitForCode(ctx, MustFilter(`sms.src == "PayPal"`))
		if err != nil {
			t.Error(err)
			return
		}
		done <- c
	}()
	time.Sleep(10 * time.Millisecond)
	if _, err := n.SendSMS("PayPal", sub.MSISDN, "PayPal: 998877"); err != nil {
		t.Fatal(err)
	}
	select {
	case c := <-done:
		if c.Originator != "PayPal" {
			t.Errorf("capture = %+v", c)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitForCode never returned")
	}
}

func TestWaitForCodeTimeout(t *testing.T) {
	_, _, s := rig(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := s.WaitForCode(ctx, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
}

func BenchmarkSniffAndCrack10Bit(b *testing.B) {
	n := telecom.NewNetwork(telecom.Config{
		KeySpace: a51.KeySpace{Base: 0xC118000000000000, Bits: 10},
		Seed:     11,
	})
	cell, _ := n.AddCell(telecom.Cell{ID: "c", ARFCNs: []int{512}, Cipher: telecom.CipherA51})
	sub, _ := n.Register("i", "+8613800000001")
	term, _ := n.NewTerminal(sub, telecom.RATGSM)
	if err := term.Attach(cell); err != nil {
		b.Fatal(err)
	}
	s := New(n, Config{})
	defer s.Stop()
	if err := s.Tune(512); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.SendSMS("Google", sub.MSISDN, "G-845512 is your code"); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if len(s.Captures()) != b.N {
		b.Fatalf("captured %d of %d", len(s.Captures()), b.N)
	}
}

// TestSniffWithTableBackend runs the full capture path with the
// Kraken-style TMTO backend: the network schedules paging bursts on
// CCCH frame classes and the table precomputed over PagingFrames()
// resolves every session by lookup.
func TestSniffWithTableBackend(t *testing.T) {
	space := a51.KeySpace{Base: 0xC118000000000000, Bits: 10}
	n := telecom.NewNetwork(telecom.Config{
		KeySpace: space,
		Seed:     11,
	})
	cell, err := n.AddCell(telecom.Cell{ID: "cell-1", ARFCNs: []int{512}, Cipher: telecom.CipherA51})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := n.Register("460000000000009", "+8613800000009")
	if err != nil {
		t.Fatal(err)
	}
	term, err := n.NewTerminal(sub, telecom.RATGSM)
	if err != nil {
		t.Fatal(err)
	}
	if err := term.Attach(cell); err != nil {
		t.Fatal(err)
	}
	table, err := a51.BuildTable(space, a51.TableConfig{Frames: telecom.PagingFrames()})
	if err != nil {
		t.Fatal(err)
	}
	s := New(n, Config{Cracker: table})
	t.Cleanup(s.Stop)
	if err := s.Tune(512); err != nil {
		t.Fatal(err)
	}
	const msgs = 5
	for i := 0; i < msgs; i++ {
		if _, err := n.SendSMS("Google", sub.MSISDN, "G-111111 is your code"); err != nil {
			t.Fatal(err)
		}
	}
	caps := s.Captures()
	if len(caps) != msgs {
		t.Fatalf("captures = %d want %d", len(caps), msgs)
	}
	for _, c := range caps {
		if c.Kc == 0 || !space.Contains(c.Kc) {
			t.Fatalf("bad recovered Kc %#x", c.Kc)
		}
	}
	if st := s.Stats(); st.CracksSucceeded != msgs {
		t.Fatalf("crack stats = %+v", st)
	}
}

// TestKcCacheSkipsRecrack replays a recorded session through Feed and
// expects the per-session key cache to answer instead of a second
// crack.
func TestKcCacheSkipsRecrack(t *testing.T) {
	n, sub, s := rig(t, Config{})
	// Record the session's bursts off the air alongside the sniffer.
	var recorded []telecom.RadioBurst
	for _, a := range []int{512, 513, 514} {
		cancel := n.Subscribe(a, func(b telecom.RadioBurst) {
			recorded = append(recorded, b)
		})
		defer cancel()
	}
	if err := s.Tune(512, 513, 514); err != nil {
		t.Fatal(err)
	}
	if _, err := n.SendSMS("Google", sub.MSISDN, "G-845512 is your code"); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.CracksAttempted != 1 || st.CrackCacheHits != 0 {
		t.Fatalf("stats after live capture = %+v", st)
	}
	// Replay the trace: same session ID, already-cracked key.
	for _, b := range recorded {
		s.Feed(b)
	}
	st := s.Stats()
	if st.CracksAttempted != 1 {
		t.Fatalf("replay re-cracked: %+v", st)
	}
	if st.CrackCacheHits != 1 {
		t.Fatalf("replay missed the Kc cache: %+v", st)
	}
	if caps := s.Captures(); len(caps) != 2 || caps[0].Kc != caps[1].Kc {
		t.Fatalf("replayed capture differs: %+v", caps)
	}
}

// TestKcReuseCache models the network-side weakness of skipped
// re-authentication: with telecom.Config.ReauthEvery = 3, each
// subscriber's Kc persists across three SMS sessions, and the
// sniffer's per-subscriber (IMSI, RAND) cache turns one crack into
// three decrypted sessions.
func TestKcReuseCache(t *testing.T) {
	n := telecom.NewNetwork(telecom.Config{
		KeySpace:    a51.KeySpace{Base: 0xC118000000000000, Bits: 10},
		Seed:        11,
		ReauthEvery: 3,
	})
	cell, err := n.AddCell(telecom.Cell{ID: "cell-1", ARFCNs: []int{512}, Cipher: telecom.CipherA51})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := n.Register("460000000000001", "+8613800000001")
	if err != nil {
		t.Fatal(err)
	}
	term, err := n.NewTerminal(sub, telecom.RATGSM)
	if err != nil {
		t.Fatal(err)
	}
	if err := term.Attach(cell); err != nil {
		t.Fatal(err)
	}
	s := New(n, Config{})
	t.Cleanup(s.Stop)
	if err := s.Tune(512); err != nil {
		t.Fatal(err)
	}

	const msgs = 6 // two auth epochs of three sessions each
	for i := 0; i < msgs; i++ {
		if _, err := n.SendSMS("Google", sub.MSISDN, "G-845512 is your code"); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.MessagesDecoded != msgs {
		t.Fatalf("decoded %d of %d", st.MessagesDecoded, msgs)
	}
	if st.CracksAttempted != 2 || st.CracksSucceeded != 2 {
		t.Fatalf("want one crack per auth epoch, got %+v", st)
	}
	if st.KcReuseHits != 4 || st.KcReuseMisses != 2 {
		t.Fatalf("reuse counters = hits %d misses %d, want 4/2", st.KcReuseHits, st.KcReuseMisses)
	}
	// Session cache is keyed by session ID, so fresh sessions never
	// touch it.
	if st.CrackCacheHits != 0 {
		t.Fatalf("session cache hit on live traffic: %+v", st)
	}
	caps := s.Captures()
	if len(caps) != msgs {
		t.Fatalf("captures = %d", len(caps))
	}
	if caps[0].Kc != caps[1].Kc || caps[0].Kc != caps[2].Kc {
		t.Fatal("first epoch sessions disagree on Kc")
	}
	if caps[3].Kc == caps[0].Kc {
		t.Fatal("re-authentication did not rotate Kc")
	}
}

// TestKcReuseCacheIneligible confirms bursts without identity context
// (IMSI empty, e.g. pre-refactor traces) never touch the subscriber
// cache.
func TestKcReuseCacheIneligible(t *testing.T) {
	n, sub, s := rig(t, Config{})
	var recorded []telecom.RadioBurst
	cancel := n.Subscribe(512, func(b telecom.RadioBurst) {
		b.IMSI = ""
		b.RAND = [16]byte{}
		recorded = append(recorded, b)
	})
	defer cancel()
	if _, err := n.SendSMS("Google", sub.MSISDN, "G-845512 is your code"); err != nil {
		t.Fatal(err)
	}
	// Feed the anonymized trace under a fresh session ID.
	for _, b := range recorded {
		if b.ARFCN != 512 {
			continue
		}
		b.SessionID += 1000
		// Re-deriving the paging keystream needs the matching session
		// payload; only structural counters matter here.
		s.Feed(b)
	}
	st := s.Stats()
	if st.KcReuseHits != 0 || st.KcReuseMisses != 0 {
		t.Fatalf("anonymized bursts touched the subscriber cache: %+v", st)
	}
}

// TestA53SessionsAbandoned checks the rig recognizes the announced
// A5/3 ciphering mode and abandons the session without burning search
// effort or recording a capture.
func TestA53SessionsAbandoned(t *testing.T) {
	n := telecom.NewNetwork(telecom.Config{
		KeySpace: a51.KeySpace{Base: 0xC118000000000000, Bits: 10},
		Seed:     11,
	})
	cell, err := n.AddCell(telecom.Cell{ID: "c53", ARFCNs: []int{512}, Cipher: telecom.CipherA53})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := n.Register("460000000000021", "+8613800000021")
	if err != nil {
		t.Fatal(err)
	}
	term, err := n.NewTerminal(sub, telecom.RATGSM)
	if err != nil {
		t.Fatal(err)
	}
	if err := term.Attach(cell); err != nil {
		t.Fatal(err)
	}
	s := New(n, Config{})
	t.Cleanup(s.Stop)
	if err := s.Tune(512); err != nil {
		t.Fatal(err)
	}
	if _, err := n.SendSMS("Google", sub.MSISDN, "G-845512 is your code"); err != nil {
		t.Fatal(err)
	}
	if caps := s.Captures(); len(caps) != 0 {
		t.Fatalf("A5/3 session captured: %+v", caps)
	}
	st := s.Stats()
	if st.A53Abandoned != 1 || st.CracksAttempted != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestReset checks the rig-reuse contract: Reset drops captures,
// counters and both Kc caches while keeping tuned receivers, so a
// reused rig behaves exactly like a fresh one.
func TestReset(t *testing.T) {
	n, sub, s := rig(t, Config{})
	if err := s.Tune(512, 513, 514); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := n.SendSMS("Google", sub.MSISDN, "G-845512 is your code"); err != nil {
			t.Fatal(err)
		}
	}
	if len(s.Captures()) == 0 {
		t.Fatal("no captures before Reset")
	}
	s.Reset()
	if len(s.Captures()) != 0 {
		t.Fatal("captures survived Reset")
	}
	if st := s.Stats(); st != (Stats{}) {
		t.Fatalf("stats survived Reset: %+v", st)
	}
	if got := s.Tuned(); len(got) != 3 {
		t.Fatalf("tuned receivers dropped by Reset: %v", got)
	}
	// The rig must work — and re-crack — after Reset.
	if _, err := n.SendSMS("Google", sub.MSISDN, "G-845512 is your code"); err != nil {
		t.Fatal(err)
	}
	caps := s.Captures()
	if len(caps) != 1 || caps[0].Kc == 0 {
		t.Fatalf("post-Reset capture = %+v", caps)
	}
	if st := s.Stats(); st.CracksAttempted == 0 {
		t.Fatalf("post-Reset session did not re-crack: %+v", st)
	}
}
