package sniffer

import "github.com/actfort/actfort/internal/obs"

// Rig telemetry on the process-wide obs registry. These mirror the
// per-rig Stats counters but aggregate across every rig in the process
// and update live — the campaign's final Summary still reports the
// authoritative per-run Stats totals, while these families answer "is
// the Kc cache working NOW" mid-run. Counter increments ride alongside
// the existing Stats updates (already under s.mu or per-batch), so the
// hot path pays one extra atomic add per counted event.
var (
	metKcReuseHits = obs.Default.NewCounter("sniffer_kc_reuse_hits_total",
		"Sessions decrypted from the per-subscriber (IMSI, RAND) key cache — the Kc-reuse weakness paying off.")
	metKcReuseMisses = obs.Default.NewCounter("sniffer_kc_reuse_misses_total",
		"Eligible sessions whose auth context had not been cracked yet.")
	metCrackCacheHits = obs.Default.NewCounter("sniffer_crack_cache_hits_total",
		"Sessions decrypted from the per-session replay key cache.")
	metCracksAttempted = obs.Default.NewCounter("sniffer_cracks_attempted_total",
		"Fresh A5/1 key recoveries attempted through the cracker backend.")
	metCracksSucceeded = obs.Default.NewCounter("sniffer_cracks_succeeded_total",
		"Fresh key recoveries that produced a session key.")
	metA53Abandoned = obs.Default.NewCounter("sniffer_a53_abandoned_total",
		"Complete sessions abandoned because the announced cipher was A5/3.")
	metDecoded = obs.Default.NewCounter("sniffer_messages_decoded_total",
		"SMS TPDUs successfully reassembled and decoded.")
	metFeedLanes = obs.Default.NewHistogram("sniffer_feed_lane_occupancy",
		"Decryption lanes (encrypted payload bursts) per FeedBatch call — how full the 64-lane batch cipher runs.",
		obs.ExpBuckets(1, 4, 8))
	metCrackBatch = obs.Default.NewHistogram("sniffer_crack_batch_seconds",
		"Wall time of each batched RecoverAll call FeedBatch prefetches its fresh cracks through.",
		obs.LatencyBuckets)
)
