package obs

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns the /metrics scrape handler for r.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// Scrape errors past the header are client disconnects; there is
		// nothing useful to do with them.
		_ = r.WritePrometheus(w)
	})
}

// NewMux builds the diagnostics mux: /metrics (Prometheus text),
// /debug/vars (expvar, including the registry bridge if published) and
// the full /debug/pprof tree. It is a plain ServeMux so callers can add
// their own routes before serving.
func (r *Registry) NewMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartServer listens on addr and serves the diagnostics mux until ctx
// is canceled, then shuts down. It returns the bound address (useful
// with ":0") and a stop function that blocks until the server has
// exited; the listen itself is synchronous so a bad addr fails fast
// instead of surfacing mid-run.
func (r *Registry) StartServer(ctx context.Context, addr string) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	srv := &http.Server{Handler: r.NewMux()}
	done := make(chan struct{})
	go func() {
		defer close(done)
		// ErrServerClosed is the normal shutdown path; a real serve error
		// has nowhere to go but the metrics endpoint dying, which the run
		// must survive.
		_ = srv.Serve(ln)
	}()
	stopped := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
		case <-stopped:
		}
		shCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(shCtx)
	}()
	stop := func() {
		close(stopped)
		<-done
	}
	return ln.Addr().String(), stop, nil
}
