package obs

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Handler returns the /metrics scrape handler for r.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// Scrape errors past the header are client disconnects; there is
		// nothing useful to do with them.
		_ = r.WritePrometheus(w)
	})
}

// NewMux builds the diagnostics mux: /metrics (Prometheus text),
// /debug/vars (expvar, including the registry bridge if published) and
// the full /debug/pprof tree. It is a plain ServeMux so callers can add
// their own routes before serving — cmd/campaignd multiplexes its /v1
// query API onto exactly this mux.
func (r *Registry) NewMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running HTTP server with an explicit shutdown handle.
// The old StartServer API returned only an anonymous stop func, so
// callers that needed to stop the listener from several paths (a test
// cleanup AND a signal handler) either leaked the listener or raced a
// double close; Close is idempotent and safe from any goroutine.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}

	// ShutdownTimeout bounds the graceful drain Close performs before
	// abandoning in-flight requests (0 = 2s, the diagnostics default).
	// A query server draining long-running scenario requests raises it
	// before Close.
	ShutdownTimeout time.Duration

	closeOnce sync.Once
	closeErr  error
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close gracefully shuts the server down: it stops accepting
// connections, waits up to ShutdownTimeout for in-flight requests,
// then forces the rest closed, and blocks until the serve loop has
// exited. Close is idempotent — every call after the first returns the
// first call's error without re-running shutdown.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		d := s.ShutdownTimeout
		if d <= 0 {
			d = 2 * time.Second
		}
		ctx, cancel := context.WithTimeout(context.Background(), d)
		defer cancel()
		err := s.srv.Shutdown(ctx)
		if err != nil {
			// Drain timeout: force-close whatever is still in flight so
			// the serve loop exits and the listener is really released.
			_ = s.srv.Close()
		}
		<-s.done
		s.closeErr = err
	})
	return s.closeErr
}

// Serve listens on addr and serves handler (nil = the registry's
// diagnostics mux) until Close is called or ctx is canceled. The
// listen itself is synchronous so a bad addr fails fast instead of
// surfacing mid-run; the returned Server exposes the bound address and
// the idempotent shutdown handle.
func (r *Registry) Serve(ctx context.Context, addr string, handler http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	if handler == nil {
		handler = r.NewMux()
	}
	s := &Server{
		ln:   ln,
		srv:  &http.Server{Handler: handler},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		// ErrServerClosed is the normal shutdown path; a real serve error
		// has nowhere to go but the diagnostics endpoint dying, which the
		// run must survive.
		_ = s.srv.Serve(ln)
	}()
	if ctx != nil && ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				_ = s.Close()
			case <-s.done:
			}
		}()
	}
	return s, nil
}

// StartServer listens on addr and serves the diagnostics mux until ctx
// is canceled, then shuts down. It returns the bound address (useful
// with ":0") and an idempotent stop function that blocks until the
// server has exited. New code should prefer Serve, whose *Server
// handle the stop function wraps.
func (r *Registry) StartServer(ctx context.Context, addr string) (string, func(), error) {
	s, err := r.Serve(ctx, addr, nil)
	if err != nil {
		return "", nil, err
	}
	return s.Addr(), func() { _ = s.Close() }, nil
}
