package obs

import (
	"context"
	"runtime/metrics"
	"time"
)

// runtimeSamples maps the runtime/metrics names we poll to the gauge
// families they feed. These three cover the questions a live campaign
// scrape actually asks: is the worker pool leaking goroutines, how big
// is the heap, and is GC stealing the victims/s budget.
var runtimeSamples = []struct {
	src  string
	name string
	help string
}{
	{"/sched/goroutines:goroutines", "go_goroutines", "Number of live goroutines."},
	{"/memory/classes/heap/objects:bytes", "go_heap_objects_bytes", "Bytes of heap memory occupied by live and dead objects."},
	{"/gc/pauses:seconds", "go_gc_pause_p99_seconds", "p99 stop-the-world GC pause, over the process lifetime."},
}

// StartRuntimePoller registers go_* gauges on r and updates them every
// interval until ctx is canceled, using the runtime/metrics sampler so
// scrapes need no separate exporter process. An interval <= 0 defaults
// to 5s. The first sample is taken synchronously so a scrape
// immediately after startup sees real values.
func (r *Registry) StartRuntimePoller(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	gauges := make([]*Gauge, len(runtimeSamples))
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, rs := range runtimeSamples {
		gauges[i] = r.NewGauge(rs.name, rs.help)
		samples[i].Name = rs.src
	}
	poll := func() {
		metrics.Read(samples)
		for i := range samples {
			switch samples[i].Value.Kind() {
			case metrics.KindUint64:
				gauges[i].Set(float64(samples[i].Value.Uint64()))
			case metrics.KindFloat64:
				gauges[i].Set(samples[i].Value.Float64())
			case metrics.KindFloat64Histogram:
				gauges[i].Set(histP99(samples[i].Value.Float64Histogram()))
			}
		}
	}
	poll()
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				poll()
			}
		}
	}()
}

// histP99 extracts the 99th percentile from a runtime/metrics
// histogram (bucket midpoint of the bucket holding the p99 rank).
func histP99(h *metrics.Float64Histogram) float64 {
	total := uint64(0)
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(float64(total) * 0.99)
	cum := uint64(0)
	for i, c := range h.Counts {
		cum += c
		if cum >= rank && c > 0 {
			lo, hi := h.Buckets[i], h.Buckets[i+1]
			if hi > lo && hi < 1e300 { // guard the +Inf top bucket
				return (lo + hi) / 2
			}
			return lo
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}
