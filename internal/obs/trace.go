package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// TraceEvent is one line of the JSONL shard-lifecycle trace. The
// schema is documented in docs/OBSERVABILITY.md; the jq validation in
// CI asserts these field names.
type TraceEvent struct {
	// TS is milliseconds since the trace writer was opened, taken from
	// the monotonic clock — events order correctly even across NTP
	// steps, and a resumed process restarts at zero (the trace is
	// per-process by design; stitch processes by file).
	TS float64 `json:"ts_ms"`
	// Event names the lifecycle transition: shard_start, shard_done,
	// shard_retry, shard_quarantine, journal_append, snapshot,
	// run_start, run_done.
	Event string `json:"event"`
	// Shard is the shard index, or -1 for run-level events.
	Shard int `json:"shard"`
	// Attempt is the 1-based attempt number for shard events, 0
	// otherwise.
	Attempt int `json:"attempt,omitempty"`
	// Detail carries event-specific context: the retry error, the
	// quarantine reason, journal/snapshot byte counts.
	Detail string `json:"detail,omitempty"`
	// Subscribers is the shard's (or run's) subscriber count, when the
	// event has one.
	Subscribers int64 `json:"subscribers,omitempty"`
}

// TraceWriter appends TraceEvents to a JSONL file. All methods are
// safe on a nil receiver — call sites emit unconditionally and tracing
// costs nothing when disabled. Emit is mutex-serialized; shard
// lifecycle events are per-shard (thousands per run, not millions), so
// the lock is never contended enough to matter.
type TraceWriter struct {
	mu    sync.Mutex
	w     *bufio.Writer
	f     *os.File
	start time.Time
}

// OpenTraceFile creates (truncating) the JSONL trace file at path.
func OpenTraceFile(path string) (*TraceWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: trace file: %w", err)
	}
	return &TraceWriter{w: bufio.NewWriter(f), f: f, start: time.Now()}, nil
}

// Emit appends one event, stamping TS from the monotonic clock. A nil
// writer ignores the call.
func (t *TraceWriter) Emit(ev TraceEvent) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ev.TS = float64(time.Since(t.start).Microseconds()) / 1e3
	// Marshal of a flat struct cannot fail; a write error surfaces at
	// Close, matching bufio semantics.
	b, _ := json.Marshal(ev)
	t.w.Write(b)
	t.w.WriteByte('\n')
}

// Flush forces buffered events to the file — called at snapshot
// boundaries so a crashed process leaves a trace consistent with its
// checkpoint. Nil-safe.
func (t *TraceWriter) Flush() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.w.Flush()
}

// Close flushes and closes the file. Nil-safe; returns the first
// buffered write error, if any.
func (t *TraceWriter) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ferr := t.w.Flush()
	cerr := t.f.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}
