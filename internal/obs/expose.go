package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): one # HELP / # TYPE header per
// family, then one line per series, with histogram families expanded
// into cumulative _bucket{le=...} lines plus _sum and _count. Families
// and series render in deterministic (name, label) order so diffs of
// consecutive scrapes are stable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind.typeName()); err != nil {
			return err
		}
		series := f.snapshotSeries()
		for _, s := range series {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSeries renders one series' sample line(s).
func writeSeries(w io.Writer, f *family, s *series) error {
	switch {
	case s.c != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, renderLabels(s.labels, ""), s.c.Value())
		return err
	case s.g != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(s.labels, ""), formatFloat(s.g.Value()))
		return err
	case s.gf != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(s.labels, ""), formatFloat(s.gf()))
		return err
	case s.h != nil:
		return writeHistogram(w, f.name, s)
	}
	return nil
}

// writeHistogram expands a histogram series into cumulative buckets.
// Per-bucket counts are read once into a local slice so the cumulative
// sums are internally consistent even while Observe runs concurrently
// (count/sum may still lag the buckets by in-flight observations —
// Prometheus tolerates that skew between scrapes).
func writeHistogram(w io.Writer, name string, s *series) error {
	h := s.h
	counts := make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += counts[i]
		le := renderLabels(s.labels, formatFloat(bound))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, le, cum); err != nil {
			return err
		}
	}
	cum += counts[len(counts)-1]
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(s.labels, "+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, renderLabels(s.labels, ""), formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, renderLabels(s.labels, ""), cum)
	return err
}

// renderLabels renders {a="x",b="y"} (empty string for no labels); a
// non-empty le slots the histogram bucket bound in as the last label.
func renderLabels(labels []Label, le string) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// formatFloat renders a float64 the way Prometheus expects: shortest
// round-trip representation, with +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// PublishExpvar mirrors the registry under one expvar.Var so
// /debug/vars includes a JSON view of every family — counters and
// gauges as numbers, histograms as {count, sum, p50, p90, p99}. The
// name must be unique process-wide (expvar panics on reuse).
func (r *Registry) PublishExpvar(name string) {
	expvar.Publish(name, expvar.Func(func() any {
		out := make(map[string]any)
		for _, f := range r.sortedFamilies() {
			for _, s := range f.snapshotSeries() {
				key := f.name + labelSuffix(s.labels)
				switch {
				case s.c != nil:
					out[key] = s.c.Value()
				case s.g != nil:
					out[key] = s.g.Value()
				case s.gf != nil:
					out[key] = s.gf()
				case s.h != nil:
					out[key] = map[string]any{
						"count": s.h.Count(),
						"sum":   s.h.Sum(),
						"p50":   nanToNil(s.h.Quantile(0.50)),
						"p90":   nanToNil(s.h.Quantile(0.90)),
						"p99":   nanToNil(s.h.Quantile(0.99)),
					}
				}
			}
		}
		return out
	}))
}

// labelSuffix renders {a=x,b=y} for expvar keys (no quoting — these
// are map keys, not exposition lines).
func labelSuffix(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	return "{" + labelKey(labels) + "}"
}

// nanToNil maps NaN to nil so the expvar JSON stays valid (JSON has no
// NaN literal).
func nanToNil(v float64) any {
	if math.IsNaN(v) {
		return nil
	}
	return v
}
