// Package obs is the campaign pipeline's telemetry substrate: a
// dependency-free, zero-alloc-on-hot-path metrics core (atomic
// Counter/Gauge, fixed-bucket Histogram with quantile snapshots, a
// process-wide Registry of labeled families), Prometheus text-format
// exposition with an expvar bridge and a pprof-enabled HTTP server, a
// JSONL shard-lifecycle trace writer, runtime-internals gauges and
// CPU/heap profile capture helpers.
//
// Design rules, in priority order:
//
//   - Hot paths pay atomics only. Handles (*Counter, *Gauge,
//     *Histogram) are resolved once — at package init or engine
//     construction — through the Registry; Inc/Add/Set/Observe touch
//     nothing but atomic words and never allocate. Registry lookups
//     never happen per event.
//   - Instrumentation must not change results. Nothing in this package
//     feeds back into campaign computation; the campaign Summary of an
//     instrumented run is byte-identical to an uninstrumented one (a
//     fixed-seed equality test in internal/campaign enforces it).
//   - No dependencies beyond the standard library, so every internal
//     package (a51, sniffer, checkpoint, campaign) can self-instrument
//     without import cycles.
//
// Naming follows Prometheus conventions: snake_case family names with
// unit suffixes (_total for counters, _seconds/_bytes for unit-carrying
// values); label values carry the variable dimension (for example
// campaign_phase_seconds{phase="encrypt"}). The full family catalog is
// documented in docs/OBSERVABILITY.md.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name=value pair attached to a metric series.
type Label struct {
	Name, Value string
}

// L is shorthand for building a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for Prometheus semantics; this is
// not enforced on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic float64 that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d via a CAS loop (rarely contended; gauges are typically
// Set from one owner).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution: observations land in the
// first bucket whose upper bound is >= the value, with an implicit
// +Inf overflow bucket. Observe is lock-free and allocation-free;
// snapshots (Count, Sum, Quantile) read the atomics without
// synchronization, so a snapshot taken during concurrent observation
// is approximately — not transactionally — consistent, which is what
// a scrape wants.
type Histogram struct {
	bounds  []float64      // sorted upper bounds, exclusive of +Inf
	counts  []atomic.Int64 // len(bounds)+1; last bucket is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, updated by CAS
}

// newHistogram validates and copies the bucket bounds.
func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// NewLocalHistogram builds a standalone histogram that belongs to no
// registry: it is never scraped and starts at zero, so a caller that
// wants per-run timings (several runs may overlap in one process) can
// observe into its own local set instead of diffing snapshots of the
// process-lifetime series — snapshot diffs silently mix concurrent
// runs together.
func NewLocalHistogram(bounds []float64) *Histogram { return newHistogram(bounds) }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket counts are small (≤ ~20) and the scan is
	// branch-predictable; a binary search saves nothing at this size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start — the latency
// shorthand used by every timing call site.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start).Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (q in [0, 1]) by linear
// interpolation within the bucket holding the target rank — the same
// estimator as PromQL's histogram_quantile. Values in the +Inf bucket
// clamp to the highest finite bound. Returns NaN when empty.
func (h *Histogram) Quantile(q float64) float64 {
	counts := make([]int64, len(h.counts))
	total := int64(0)
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	return bucketQuantile(h.bounds, counts, total, q)
}

// bucketQuantile is the shared estimator behind Histogram.Quantile and
// HistSnapshot.Quantile.
func bucketQuantile(bounds []float64, counts []int64, total int64, q float64) float64 {
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	cum := int64(0)
	for i := range counts {
		c := counts[i]
		if c == 0 {
			continue
		}
		if float64(cum)+float64(c) >= rank {
			if i >= len(bounds) { // +Inf bucket
				return bounds[len(bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = bounds[i-1]
			}
			hi := bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return bounds[len(bounds)-1]
}

// HistSnapshot is a point-in-time copy of a histogram's buckets.
// Snapshots subtract (Sub), which is how a caller scopes quantiles to
// one interval of a long-lived histogram — the campaign engine diffs
// phase histograms across a run to report per-run timing out of a
// process-lifetime registry.
type HistSnapshot struct {
	// Bounds aliases the histogram's (immutable) bucket bounds.
	Bounds []float64
	// Counts holds per-bucket observation counts (len(Bounds)+1; the
	// last is the +Inf bucket).
	Counts []int64
	// Count and Sum total the observations.
	Count int64
	Sum   float64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		s.Count += s.Counts[i]
	}
	return s
}

// Sub returns the snapshot of observations made after base — s minus
// base, bucket by bucket. Both must come from the same histogram.
func (s HistSnapshot) Sub(base HistSnapshot) HistSnapshot {
	out := HistSnapshot{
		Bounds: s.Bounds,
		Counts: make([]int64, len(s.Counts)),
		Count:  s.Count - base.Count,
		Sum:    s.Sum - base.Sum,
	}
	for i := range s.Counts {
		out.Counts[i] = s.Counts[i] - base.Counts[i]
	}
	return out
}

// Quantile estimates the q-quantile of the snapshot, like
// Histogram.Quantile.
func (s HistSnapshot) Quantile(q float64) float64 {
	return bucketQuantile(s.Bounds, s.Counts, s.Count, q)
}

// ExpBuckets returns n exponentially growing upper bounds starting at
// start and multiplying by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets spans 1µs to ~4s — the default for timing histograms
// (journal fsyncs, shard phases, snapshot folds all land inside it).
var LatencyBuckets = ExpBuckets(1e-6, 4, 12)

// metricKind discriminates family types for exposition.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// typeName renders the Prometheus TYPE line value.
func (k metricKind) typeName() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// series is one labeled member of a family.
type series struct {
	labels []Label // sorted by name
	c      *Counter
	g      *Gauge
	gf     func() float64
	h      *Histogram
}

// family groups all series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	bounds []float64 // histogram families share bucket layout

	mu     sync.Mutex
	series []*series
	byKey  map[string]*series
}

// Registry is a process-wide set of metric families. The zero value is
// not usable; call NewRegistry, or use the package Default.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// Default is the process-wide registry every package-level family
// registers into; cmd servers expose it, and tests that need isolation
// build their own with NewRegistry.
var Default = NewRegistry()

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// labelKey canonicalizes a sorted label list into a map key.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// sortLabels returns a name-sorted copy.
func sortLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// getFamily finds or creates the named family, panicking on a kind
// conflict — registering one name as two types is a programming error
// caught at init, not a runtime condition to handle.
func (r *Registry) getFamily(name, help string, kind metricKind, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %q registered as both %s and %s",
				name, f.kind.typeName(), kind.typeName()))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, bounds: bounds,
		byKey: make(map[string]*series)}
	r.fams[name] = f
	return f
}

// getSeries finds or creates the labeled series within f, building the
// metric with mk on first sight.
func (f *family) getSeries(labels []Label, mk func(*series)) *series {
	sorted := sortLabels(labels)
	key := labelKey(sorted)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.byKey[key]; ok {
		return s
	}
	s := &series{labels: sorted}
	mk(s)
	f.byKey[key] = s
	f.series = append(f.series, s)
	return s
}

// NewCounter returns the counter for name plus labels, registering the
// family on first use. Repeated calls with the same name and labels
// return the same *Counter, so packages may resolve handles
// independently and still share one series.
func (r *Registry) NewCounter(name, help string, labels ...Label) *Counter {
	f := r.getFamily(name, help, kindCounter, nil)
	s := f.getSeries(labels, func(s *series) { s.c = &Counter{} })
	return s.c
}

// NewGauge returns the gauge for name plus labels.
func (r *Registry) NewGauge(name, help string, labels ...Label) *Gauge {
	f := r.getFamily(name, help, kindGauge, nil)
	s := f.getSeries(labels, func(s *series) { s.g = &Gauge{} })
	return s.g
}

// NewGaugeFunc registers a gauge whose value is computed by fn at
// exposition time — for values that are cheaper to read on demand than
// to push (pool sizes, queue depths).
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64, labels ...Label) {
	f := r.getFamily(name, help, kindGaugeFunc, nil)
	f.getSeries(labels, func(s *series) { s.gf = fn })
}

// NewHistogram returns the histogram for name plus labels. The first
// registration of a family fixes its bucket bounds; later calls reuse
// them (per-series bucket layouts would break exposition).
func (r *Registry) NewHistogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	f := r.getFamily(name, help, kindHistogram, bounds)
	s := f.getSeries(labels, func(s *series) { s.h = newHistogram(f.bounds) })
	return s.h
}

// Value reads the current value of a counter, gauge or gauge func
// series — the API live-status renderers (cmd/campaign -progress) poll
// instead of holding typed handles. ok is false for unknown series and
// for histograms.
func (r *Registry) Value(name string, labels ...Label) (float64, bool) {
	r.mu.Lock()
	f, ok := r.fams[name]
	r.mu.Unlock()
	if !ok {
		return 0, false
	}
	key := labelKey(sortLabels(labels))
	f.mu.Lock()
	s, ok := f.byKey[key]
	f.mu.Unlock()
	if !ok {
		return 0, false
	}
	switch {
	case s.c != nil:
		return float64(s.c.Value()), true
	case s.g != nil:
		return s.g.Value(), true
	case s.gf != nil:
		return s.gf(), true
	}
	return 0, false
}

// sortedFamilies snapshots the family list in name order for
// deterministic exposition.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	out := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		out = append(out, f)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// snapshotSeries copies f's series list under its lock.
func (f *family) snapshotSeries() []*series {
	f.mu.Lock()
	out := append([]*series(nil), f.series...)
	f.mu.Unlock()
	return out
}
