package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

// Profiler manages optional CPU and heap profile capture for the CLI
// binaries. Start opens the files and begins CPU profiling; Stop
// flushes both profiles exactly once — the CLIs call it from a defer
// AND from the context-cancellation path, so idempotence matters more
// than error propagation on the second call.
type Profiler struct {
	cpuPath, memPath string
	cpuFile          *os.File
	once             sync.Once
	stopErr          error
}

// StartProfiler begins profile capture. Either path may be empty to
// skip that profile; with both empty it returns a Profiler whose Stop
// is a no-op, so call sites need no conditionals.
func StartProfiler(cpuPath, memPath string) (*Profiler, error) {
	p := &Profiler{cpuPath: cpuPath, memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
		p.cpuFile = f
	}
	return p, nil
}

// Stop ends CPU profiling and writes the heap profile. Safe to call
// multiple times and on a nil receiver; only the first call does work,
// and every call returns that first call's error.
func (p *Profiler) Stop() error {
	if p == nil {
		return nil
	}
	p.once.Do(func() {
		if p.cpuFile != nil {
			pprof.StopCPUProfile()
			if err := p.cpuFile.Close(); err != nil && p.stopErr == nil {
				p.stopErr = fmt.Errorf("obs: cpu profile: %w", err)
			}
		}
		if p.memPath != "" {
			f, err := os.Create(p.memPath)
			if err != nil {
				if p.stopErr == nil {
					p.stopErr = fmt.Errorf("obs: mem profile: %w", err)
				}
				return
			}
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil && p.stopErr == nil {
				p.stopErr = fmt.Errorf("obs: mem profile: %w", err)
			}
			if err := f.Close(); err != nil && p.stopErr == nil {
				p.stopErr = fmt.Errorf("obs: mem profile: %w", err)
			}
		}
	})
	return p.stopErr
}
