package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("jobs_total", "jobs", L("kind", "a"))
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same name+labels must return the same series.
	if c2 := r.NewCounter("jobs_total", "jobs", L("kind", "a")); c2 != c {
		t.Fatal("re-registration returned a different counter")
	}
	// Different labels are a different series.
	if c3 := r.NewCounter("jobs_total", "jobs", L("kind", "b")); c3 == c {
		t.Fatal("distinct labels returned the same counter")
	}

	g := r.NewGauge("depth", "queue depth")
	g.Set(3.5)
	g.Add(-1.25)
	if got := g.Value(); got != 2.25 {
		t.Fatalf("gauge = %v, want 2.25", got)
	}

	if v, ok := r.Value("jobs_total", L("kind", "a")); !ok || v != 5 {
		t.Fatalf("Value(jobs_total{kind=a}) = %v, %v", v, ok)
	}
	if _, ok := r.Value("nope"); ok {
		t.Fatal("Value on unknown family reported ok")
	}
}

func TestLabelOrderInsensitive(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("x_total", "", L("a", "1"), L("b", "2"))
	b := r.NewCounter("x_total", "", L("b", "2"), L("a", "1"))
	if a != b {
		t.Fatal("label order changed series identity")
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dual", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering dual as gauge did not panic")
		}
	}()
	r.NewGauge("dual", "")
}

// TestHistogramQuantileGolden pins the interpolation estimator against
// hand-computed values: 100 observations 1..100 into decade buckets.
func TestHistogramQuantileGolden(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat", "", []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	if got := h.Sum(); got != 5050 {
		t.Fatalf("sum = %v, want 5050", got)
	}
	// Each bucket holds exactly 10 observations, so the interpolated
	// q-quantile is exactly 100q.
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 50}, {0.90, 90}, {0.99, 99}, {0.10, 10}, {1.0, 100},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat", "", []float64{1, 2, 4})
	if got := h.Quantile(0.5); !math.IsNaN(got) {
		t.Fatalf("empty histogram quantile = %v, want NaN", got)
	}
	// A value beyond every bound lands in +Inf and clamps to the top
	// finite bound.
	h.Observe(100)
	if got := h.Quantile(0.5); got != 4 {
		t.Fatalf("overflow quantile = %v, want 4 (top bound clamp)", got)
	}
	// Single in-range observation interpolates within its bucket.
	h2 := r.NewHistogram("lat2", "", []float64{1, 2, 4})
	h2.Observe(1.5)
	got := h2.Quantile(0.5)
	if got < 1 || got > 2 {
		t.Fatalf("quantile %v outside observation's bucket [1,2]", got)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
	if n := len(LatencyBuckets); n != 12 {
		t.Fatalf("LatencyBuckets has %d bounds, want 12", n)
	}
}

// TestWritePrometheus checks the text exposition end to end: HELP/TYPE
// headers, label rendering, cumulative histogram buckets, and
// deterministic ordering.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("b_total", "b help", L("k", "v")).Add(7)
	r.NewGauge("a_gauge", "a help").Set(1.5)
	r.NewGaugeFunc("c_fn", "", func() float64 { return 9 })
	h := r.NewHistogram("d_hist", "d help", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `# HELP a_gauge a help
# TYPE a_gauge gauge
a_gauge 1.5
# HELP b_total b help
# TYPE b_total counter
b_total{k="v"} 7
# TYPE c_fn gauge
c_fn 9
# HELP d_hist d help
# TYPE d_hist histogram
d_hist_bucket{le="1"} 1
d_hist_bucket{le="10"} 2
d_hist_bucket{le="+Inf"} 3
d_hist_sum 55.5
d_hist_count 3
`
	if got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("e_total", "", L("path", `a\b"c`+"\n")).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `e_total{path="a\\b\"c\n"} 1`) {
		t.Errorf("label not escaped: %q", sb.String())
	}
}

// TestConcurrentScrape hammers the registry from writer goroutines
// while scraping in a loop — the package-level half of the race
// coverage (the campaign-level test drives a live engine).
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.NewCounter("w_total", "", L("w", fmt.Sprint(w)))
			h := r.NewHistogram("w_lat", "", LatencyBuckets, L("w", fmt.Sprint(w)))
			g := r.NewGauge("w_g", "", L("w", fmt.Sprint(w)))
			for i := 0; ctx.Err() == nil; i++ {
				c.Inc()
				h.Observe(float64(i%1000) * 1e-6)
				g.Set(float64(i))
			}
		}(w)
	}
	// Register new families concurrently with scrapes to exercise the
	// registry lock too, not just series atomics.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ctx.Err() == nil && i < 100; i++ {
			r.NewCounter(fmt.Sprintf("dyn_%d_total", i), "").Inc()
		}
	}()
	for i := 0; i < 50; i++ {
		if err := r.WritePrometheus(io.Discard); err != nil {
			t.Fatal(err)
		}
	}
	cancel()
	wg.Wait()
}

func TestHTTPServer(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("hits_total", "").Add(3)
	srv, err := r.Serve(context.Background(), "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := srv.Addr()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "hits_total 3") {
		t.Errorf("/metrics: code=%d body=%q", code, body)
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.HasPrefix(strings.TrimSpace(body), "{") {
		t.Errorf("/debug/vars: code=%d body=%q", code, body)
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/: code=%d", code)
	}
}

func TestRuntimePoller(t *testing.T) {
	r := NewRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r.StartRuntimePoller(ctx, time.Hour) // rely on the synchronous first poll
	v, ok := r.Value("go_goroutines")
	if !ok || v < 1 {
		t.Fatalf("go_goroutines = %v, %v — want >= 1", v, ok)
	}
	if v, ok := r.Value("go_heap_objects_bytes"); !ok || v <= 0 {
		t.Fatalf("go_heap_objects_bytes = %v, %v", v, ok)
	}
}

func TestProfiler(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	p, err := StartProfiler(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile is non-trivial.
	x := 0.0
	for i := 0; i < 1e6; i++ {
		x += math.Sqrt(float64(i))
	}
	_ = x
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil { // idempotent
		t.Fatalf("second Stop: %v", err)
	}
	for _, f := range []string{cpu, mem} {
		st, err := os.Stat(f)
		if err != nil || st.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", f, err)
		}
	}
	// Nil and empty profilers are no-ops.
	var nilP *Profiler
	if err := nilP.Stop(); err != nil {
		t.Fatal(err)
	}
	empty, err := StartProfiler("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := empty.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestTraceWriter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	tw, err := OpenTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tw.Emit(TraceEvent{Event: "run_start", Shard: -1, Subscribers: 10000})
	tw.Emit(TraceEvent{Event: "shard_start", Shard: 0, Attempt: 1})
	tw.Emit(TraceEvent{Event: "shard_retry", Shard: 0, Attempt: 1, Detail: "transient"})
	tw.Emit(TraceEvent{Event: "shard_done", Shard: 0, Attempt: 2, Subscribers: 512})
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var events []TraceEvent
	var lastTS float64 = -1
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var ev TraceEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		if ev.TS < lastTS {
			t.Fatalf("timestamps not monotonic: %v after %v", ev.TS, lastTS)
		}
		lastTS = ev.TS
		events = append(events, ev)
	}
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4", len(events))
	}
	if events[0].Event != "run_start" || events[0].Shard != -1 {
		t.Errorf("first event = %+v", events[0])
	}
	if events[2].Detail != "transient" {
		t.Errorf("retry detail = %q", events[2].Detail)
	}

	// Nil writer: every method is a no-op.
	var nilTW *TraceWriter
	nilTW.Emit(TraceEvent{Event: "x"})
	nilTW.Flush()
	if err := nilTW.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPublishExpvar(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("pe_total", "", L("k", "v")).Add(2)
	h := r.NewHistogram("pe_lat", "", []float64{1, 2})
	h.Observe(1.5)
	r.PublishExpvar("obs_test_registry")
	srv, err := r.Serve(context.Background(), "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var all map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&all); err != nil {
		t.Fatal(err)
	}
	var bridge map[string]any
	if err := json.Unmarshal(all["obs_test_registry"], &bridge); err != nil {
		t.Fatalf("bridge var: %v", err)
	}
	if v, ok := bridge["pe_total{k=v}"].(float64); !ok || v != 2 {
		t.Errorf("bridge counter = %v", bridge["pe_total{k=v}"])
	}
	hist, ok := bridge["pe_lat"].(map[string]any)
	if !ok || hist["count"].(float64) != 1 {
		t.Errorf("bridge histogram = %v", bridge["pe_lat"])
	}
}

// TestServerCloseReleasesListener is the lifecycle regression test:
// the old StartServer stop func could only be called once (a second
// call panicked on a closed channel), so tests with several cleanup
// paths leaked the listener instead. Close must be idempotent and must
// actually release the port.
func TestServerCloseReleasesListener(t *testing.T) {
	r := NewRegistry()
	srv, err := r.Serve(context.Background(), "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	if resp, err := http.Get("http://" + addr + "/metrics"); err != nil {
		t.Fatalf("GET before close: %v", err)
	} else {
		resp.Body.Close()
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// The port must be free again: rebinding the exact address succeeds
	// only if the first listener is really gone.
	srv2, err := r.Serve(context.Background(), addr, nil)
	if err != nil {
		t.Fatalf("rebind %s after Close: %v", addr, err)
	}
	defer srv2.Close()
	// And a canceled context must shut the server down without any
	// explicit Close.
	ctx, cancel := context.WithCancel(context.Background())
	srv3, err := r.Serve(ctx, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := http.Get("http://" + srv3.Addr() + "/metrics"); err != nil {
			break // listener gone
		}
		if time.Now().After(deadline) {
			t.Fatal("server still serving after context cancellation")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
