// Package services turns catalog specifications into live HTTP
// services: real login, password-reset and profile endpoints with
// per-path credential-factor verification, OTP delivery through the
// simulated telecom network (interceptable) or the mail substrate, SSO
// binding, session management and masked profile rendering. The chain
// reaction attack of §V runs against these servers end to end.
package services

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"

	"github.com/actfort/actfort/internal/ecosys"
	"github.com/actfort/actfort/internal/email"
	"github.com/actfort/actfort/internal/identity"
	"github.com/actfort/actfort/internal/smsotp"
	"github.com/actfort/actfort/internal/telecom"
)

// User is one provisioned account holder.
type User struct {
	Persona  identity.Persona
	Password string
	// DeviceSecret stands in for possession-bound factors (biometric
	// template / U2F key); it is never exposed on any profile page.
	DeviceSecret string
	// SecurityAnswer backs security-question paths.
	SecurityAnswer string
}

// Session is an authenticated session on one service presence.
type Session struct {
	Account ecosys.AccountID
	Phone   string
}

// PushVerifier validates a built-in-authentication push confirmation
// (set by the countermeasure package; nil rejects all pushes).
type PushVerifier func(service, phone, confirmation string) bool

// Config wires the platform to its substrates.
type Config struct {
	Catalog *ecosys.Catalog
	Net     *telecom.Network
	Mail    *email.Server
	// OTP is the code service; nil builds a default (seeded 1).
	OTP *smsotp.Service
	// Push validates FactorBuiltinPush factors.
	Push PushVerifier
}

// Platform hosts live service instances and the shared session store.
type Platform struct {
	cat  *ecosys.Catalog
	net  *telecom.Network
	mail *email.Server
	otp  *smsotp.Service
	push PushVerifier

	mu        sync.Mutex
	instances map[ecosys.AccountID]*Instance
	sessions  map[string]Session
}

// NewPlatform builds an empty platform (no instances launched yet).
func NewPlatform(cfg Config) (*Platform, error) {
	if cfg.Catalog == nil || cfg.Net == nil || cfg.Mail == nil {
		return nil, errors.New("services: catalog, network and mail server are required")
	}
	otp := cfg.OTP
	if otp == nil {
		otp = smsotp.New(smsotp.WithSeed(1))
	}
	return &Platform{
		cat:       cfg.Catalog,
		net:       cfg.Net,
		mail:      cfg.Mail,
		otp:       otp,
		push:      cfg.Push,
		instances: make(map[ecosys.AccountID]*Instance),
		sessions:  make(map[string]Session),
	}, nil
}

// Launch starts an HTTP server for the given presence. Launching the
// same account twice is an error.
func (p *Platform) Launch(id ecosys.AccountID) (*Instance, error) {
	pr, ok := p.cat.PresenceOf(id)
	if !ok {
		return nil, fmt.Errorf("services: unknown account %s", id)
	}
	svc, _ := p.cat.ByName(id.Service)
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.instances[id]; dup {
		return nil, fmt.Errorf("services: %s already launched", id)
	}
	inst := &Instance{
		platform: p,
		id:       id,
		domain:   svc.Domain,
		presence: pr,
		users:    make(map[string]*User),
	}
	inst.server = httptest.NewServer(inst.routes())
	p.instances[id] = inst
	return inst, nil
}

// LaunchAll launches every presence of the named services.
func (p *Platform) LaunchAll(names ...string) ([]*Instance, error) {
	var out []*Instance
	for _, name := range names {
		svc, ok := p.cat.ByName(name)
		if !ok {
			return nil, fmt.Errorf("services: unknown service %q", name)
		}
		for _, pr := range svc.Presences {
			inst, err := p.Launch(ecosys.AccountID{Service: name, Platform: pr.Platform})
			if err != nil {
				return nil, err
			}
			out = append(out, inst)
		}
	}
	return out, nil
}

// Instance returns a launched instance.
func (p *Platform) Instance(id ecosys.AccountID) (*Instance, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	inst, ok := p.instances[id]
	return inst, ok
}

// Close shuts every instance down.
func (p *Platform) Close() {
	p.mu.Lock()
	insts := make([]*Instance, 0, len(p.instances))
	for _, i := range p.instances {
		insts = append(insts, i)
	}
	p.instances = make(map[ecosys.AccountID]*Instance)
	p.mu.Unlock()
	for _, i := range insts {
		i.server.Close()
	}
}

// Provision registers the user on every launched instance (the victim
// owns an account everywhere, as the measurement assumes) and creates
// their mailbox if absent.
func (p *Platform) Provision(u User) error {
	if u.Persona.Phone == "" {
		return errors.New("services: user without phone")
	}
	if err := p.mail.CreateMailbox(u.Persona.Email); err != nil && !errors.Is(err, email.ErrDuplicate) {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, inst := range p.instances {
		inst.provision(u)
	}
	return nil
}

// newSession mints a session token for account id.
func (p *Platform) newSession(id ecosys.AccountID, phone string) string {
	var raw [16]byte
	if _, err := rand.Read(raw[:]); err != nil {
		panic("services: crypto/rand failed: " + err.Error())
	}
	token := hex.EncodeToString(raw[:])
	p.mu.Lock()
	p.sessions[token] = Session{Account: id, Phone: phone}
	p.mu.Unlock()
	return token
}

// session resolves a token.
func (p *Platform) session(token string) (Session, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.sessions[token]
	return s, ok
}

// SessionFor reports the session behind a token (exported for tests
// and the SSO verifier).
func (p *Platform) SessionFor(token string) (Session, bool) { return p.session(token) }

// Catalog returns the catalog the platform serves.
func (p *Platform) Catalog() *ecosys.Catalog { return p.cat }

// Mail exposes the mail substrate (instances in the email domain serve
// mailboxes from it).
func (p *Platform) Mail() *email.Server { return p.mail }

// OTP exposes the code service (tests inspect issuance state).
func (p *Platform) OTP() *smsotp.Service { return p.otp }
