package services

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"github.com/actfort/actfort/internal/a51"
	"github.com/actfort/actfort/internal/dataset"
	"github.com/actfort/actfort/internal/ecosys"
	"github.com/actfort/actfort/internal/email"
	"github.com/actfort/actfort/internal/identity"
	"github.com/actfort/actfort/internal/telecom"
)

// world is the test fixture: catalog, network, platform, one victim.
type world struct {
	platform *Platform
	net      *telecom.Network
	victim   User
	terminal *telecom.Terminal
}

func newWorld(t *testing.T) *world {
	t.Helper()
	cat := dataset.MustDefault()
	net := telecom.NewNetwork(telecom.Config{KeySpace: a51.KeySpace{Bits: 8}, Seed: 1})
	cell, err := net.AddCell(telecom.Cell{ID: "c1", ARFCNs: []int{512}, Cipher: telecom.CipherA51})
	if err != nil {
		t.Fatal(err)
	}
	persona := identity.NewGenerator(77).Persona(0)
	sub, err := net.Register("imsi-victim", persona.Phone)
	if err != nil {
		t.Fatal(err)
	}
	term, err := net.NewTerminal(sub, telecom.RATGSM)
	if err != nil {
		t.Fatal(err)
	}
	if err := term.Attach(cell); err != nil {
		t.Fatal(err)
	}
	mail := email.NewServer()
	p, err := NewPlatform(Config{Catalog: cat, Net: net, Mail: mail})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	victim := User{
		Persona:      persona,
		Password:     "victim-password-1",
		DeviceSecret: "device-secret-xyz",
	}
	return &world{platform: p, net: net, victim: victim, terminal: term}
}

func (w *world) launch(t *testing.T, names ...string) {
	t.Helper()
	if _, err := w.platform.LaunchAll(names...); err != nil {
		t.Fatal(err)
	}
	if err := w.platform.Provision(w.victim); err != nil {
		t.Fatal(err)
	}
}

func (w *world) inst(t *testing.T, service string, platform ecosys.Platform) *Instance {
	t.Helper()
	inst, ok := w.platform.Instance(ecosys.AccountID{Service: service, Platform: platform})
	if !ok {
		t.Fatalf("instance %s/%v not launched", service, platform)
	}
	return inst
}

// postJSON is a tiny HTTP helper returning status + decoded body.
func postJSON(t *testing.T, url string, in any, out any) int {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		_ = json.NewDecoder(resp.Body).Decode(out)
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url, token string, out any) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		_ = json.NewDecoder(resp.Body).Decode(out)
	}
	return resp.StatusCode
}

// lastCode extracts the OTP digits from the victim's latest SMS.
func lastCode(t *testing.T, term *telecom.Terminal) string {
	t.Helper()
	msg, ok := term.LastSMS()
	if !ok {
		t.Fatal("no SMS in victim inbox")
	}
	for i := 0; i+6 <= len(msg.Text); i++ {
		all := true
		for j := i; j < i+6; j++ {
			if msg.Text[j] < '0' || msg.Text[j] > '9' {
				all = false
				break
			}
		}
		if all {
			return msg.Text[i : i+6]
		}
	}
	t.Fatalf("no 6-digit code in %q", msg.Text)
	return ""
}

func TestSMSResetFlow(t *testing.T) {
	w := newWorld(t)
	w.launch(t, "gmail")
	inst := w.inst(t, "gmail", ecosys.PlatformWeb)

	// 1. Request the reset code; it travels the telecom network.
	var rc RequestCodeResp
	status := postJSON(t, inst.URL()+"/request-code",
		RequestCodeReq{Phone: w.victim.Persona.Phone, Path: "reset-sms"}, &rc)
	if status != http.StatusOK || len(rc.Sent) != 1 {
		t.Fatalf("request-code: %d %+v", status, rc)
	}
	code := lastCode(t, w.terminal)

	// 2. Authenticate with phone + code.
	var auth AuthResp
	status = postJSON(t, inst.URL()+"/authenticate", AuthReq{
		Phone: w.victim.Persona.Phone,
		Path:  "reset-sms",
		Factors: map[string]string{
			"cellphone-number": w.victim.Persona.Phone,
			"sms-code":         code,
		},
	}, &auth)
	if status != http.StatusOK || auth.Token == "" {
		t.Fatalf("authenticate: %d %+v", status, auth)
	}

	// 3. Profile page harvest.
	var prof ProfileResp
	if status := getJSON(t, inst.URL()+"/profile", auth.Token, &prof); status != http.StatusOK {
		t.Fatalf("profile: %d", status)
	}
	if prof.Fields["email-address"] != w.victim.Persona.Email {
		t.Errorf("profile fields = %+v", prof.Fields)
	}
}

func TestWrongAndMissingFactors(t *testing.T) {
	w := newWorld(t)
	w.launch(t, "gmail")
	inst := w.inst(t, "gmail", ecosys.PlatformWeb)

	// Missing SMS code.
	status := postJSON(t, inst.URL()+"/authenticate", AuthReq{
		Phone: w.victim.Persona.Phone, Path: "reset-sms",
		Factors: map[string]string{"cellphone-number": w.victim.Persona.Phone},
	}, nil)
	if status != http.StatusForbidden {
		t.Errorf("missing factor status = %d", status)
	}
	// Wrong code (none outstanding).
	status = postJSON(t, inst.URL()+"/authenticate", AuthReq{
		Phone: w.victim.Persona.Phone, Path: "reset-sms",
		Factors: map[string]string{
			"cellphone-number": w.victim.Persona.Phone,
			"sms-code":         "000000",
		},
	}, nil)
	if status != http.StatusForbidden {
		t.Errorf("wrong code status = %d", status)
	}
	// Unknown path and phone.
	if status := postJSON(t, inst.URL()+"/authenticate", AuthReq{Phone: w.victim.Persona.Phone, Path: "nope"}, nil); status != http.StatusNotFound {
		t.Errorf("unknown path status = %d", status)
	}
	if status := postJSON(t, inst.URL()+"/request-code", RequestCodeReq{Phone: "+860", Path: "reset-sms"}, nil); status != http.StatusNotFound {
		t.Errorf("unknown phone status = %d", status)
	}
	// Password sign-in with wrong password.
	status = postJSON(t, inst.URL()+"/authenticate", AuthReq{
		Phone: w.victim.Persona.Phone, Path: "signin-pw",
		Factors: map[string]string{"password": "guess"},
	}, nil)
	if status != http.StatusForbidden {
		t.Errorf("wrong password status = %d", status)
	}
}

func TestEmailCodeFlowAndMailbox(t *testing.T) {
	w := newWorld(t)
	w.launch(t, "gmail", "paypal")
	gmail := w.inst(t, "gmail", ecosys.PlatformWeb)
	paypal := w.inst(t, "paypal", ecosys.PlatformWeb)

	// PayPal reset wants SMS + email code; both get issued.
	var rc RequestCodeResp
	status := postJSON(t, paypal.URL()+"/request-code",
		RequestCodeReq{Phone: w.victim.Persona.Phone, Path: "reset-emc"}, &rc)
	if status != http.StatusOK || len(rc.Sent) != 2 {
		t.Fatalf("request-code: %d %+v", status, rc)
	}
	smsCode := lastCode(t, w.terminal)

	// The email code is in the victim's mailbox; take over gmail first
	// (SMS-only reset), then read the mailbox through the service.
	status = postJSON(t, gmail.URL()+"/request-code",
		RequestCodeReq{Phone: w.victim.Persona.Phone, Path: "reset-sms"}, nil)
	if status != http.StatusOK {
		t.Fatal("gmail request-code failed")
	}
	gmailCode := lastCode(t, w.terminal)
	var gmailAuth AuthResp
	status = postJSON(t, gmail.URL()+"/authenticate", AuthReq{
		Phone: w.victim.Persona.Phone, Path: "reset-sms",
		Factors: map[string]string{
			"cellphone-number": w.victim.Persona.Phone,
			"sms-code":         gmailCode,
		},
	}, &gmailAuth)
	if status != http.StatusOK {
		t.Fatal("gmail takeover failed")
	}
	var box MailboxResp
	if status := getJSON(t, gmail.URL()+"/mailbox", gmailAuth.Token, &box); status != http.StatusOK {
		t.Fatalf("mailbox: %d", status)
	}
	var emailCode string
	for i := len(box.Messages) - 1; i >= 0; i-- {
		if strings.Contains(box.Messages[i].Subject, "Paypal") ||
			strings.Contains(box.Messages[i].Subject, "paypal") {
			if c, ok := email.ExtractCode(box.Messages[i].Body); ok {
				emailCode = c
				break
			}
		}
	}
	if emailCode == "" {
		t.Fatalf("no paypal code in mailbox: %+v", box.Messages)
	}

	// Complete the PayPal reset with both codes.
	var auth AuthResp
	status = postJSON(t, paypal.URL()+"/authenticate", AuthReq{
		Phone: w.victim.Persona.Phone, Path: "reset-emc",
		Factors: map[string]string{
			"sms-code":   smsCode,
			"email-code": emailCode,
		},
	}, &auth)
	if status != http.StatusOK {
		t.Fatalf("paypal authenticate: %d", status)
	}
	// PayPal is fintech: the session can pay.
	var pay PayResp
	if status := postJSON(t, paypal.URL()+"/pay", map[string]int{"amount": 100}, nil); status != http.StatusUnauthorized {
		t.Errorf("pay without session = %d", status)
	}
	req, _ := http.NewRequest(http.MethodPost, paypal.URL()+"/pay", bytes.NewReader([]byte("{}")))
	req.Header.Set("Authorization", "Bearer "+auth.Token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pay: %d", resp.StatusCode)
	}
	_ = json.NewDecoder(resp.Body).Decode(&pay)
	if !strings.Contains(pay.Receipt, "paypal/web") {
		t.Errorf("receipt = %q", pay.Receipt)
	}
}

func TestMailboxOnlyOnEmailDomain(t *testing.T) {
	w := newWorld(t)
	w.launch(t, "ctrip")
	inst := w.inst(t, "ctrip", ecosys.PlatformWeb)
	if status := getJSON(t, inst.URL()+"/mailbox", "whatever", nil); status != http.StatusNotFound {
		t.Errorf("mailbox on travel service = %d", status)
	}
	if status := postJSON(t, inst.URL()+"/pay", map[string]int{}, nil); status != http.StatusNotFound {
		t.Errorf("pay on travel service = %d", status)
	}
}

func TestLinkedAccountSignIn(t *testing.T) {
	w := newWorld(t)
	w.launch(t, "gmail", "expedia")
	gmail := w.inst(t, "gmail", ecosys.PlatformWeb)
	expedia := w.inst(t, "expedia", ecosys.PlatformWeb)

	// Get a gmail session (legitimate password login).
	var gAuth AuthResp
	status := postJSON(t, gmail.URL()+"/authenticate", AuthReq{
		Phone: w.victim.Persona.Phone, Path: "signin-pw",
		Factors: map[string]string{"password": w.victim.Password},
	}, &gAuth)
	if status != http.StatusOK {
		t.Fatal("gmail password login failed")
	}
	// Expedia signs in with the bound gmail session.
	var eAuth AuthResp
	status = postJSON(t, expedia.URL()+"/authenticate", AuthReq{
		Phone: w.victim.Persona.Phone, Path: "signin-linked",
		Factors: map[string]string{"linked-account": gAuth.Token},
	}, &eAuth)
	if status != http.StatusOK || eAuth.Token == "" {
		t.Fatalf("linked sign-in: %d", status)
	}
	// A bogus token is rejected.
	status = postJSON(t, expedia.URL()+"/authenticate", AuthReq{
		Phone: w.victim.Persona.Phone, Path: "signin-linked",
		Factors: map[string]string{"linked-account": "bogus"},
	}, nil)
	if status != http.StatusForbidden {
		t.Errorf("bogus linked token = %d", status)
	}
}

func TestUnphishableFactors(t *testing.T) {
	w := newWorld(t)
	w.launch(t, "bank-secure")
	inst := w.inst(t, "bank-secure", ecosys.PlatformWeb)

	status := postJSON(t, inst.URL()+"/authenticate", AuthReq{
		Phone: w.victim.Persona.Phone, Path: "signin-u2f",
		Factors: map[string]string{"u2f-key": "stolen-guess"},
	}, nil)
	if status != http.StatusForbidden {
		t.Errorf("U2F guess accepted: %d", status)
	}
	var auth AuthResp
	status = postJSON(t, inst.URL()+"/authenticate", AuthReq{
		Phone: w.victim.Persona.Phone, Path: "signin-u2f",
		Factors: map[string]string{"u2f-key": w.victim.DeviceSecret},
	}, &auth)
	if status != http.StatusOK {
		t.Errorf("genuine device rejected: %d", status)
	}
}

func TestCustomerServicePathRejected(t *testing.T) {
	w := newWorld(t)
	w.launch(t, "alipay")
	inst := w.inst(t, "alipay", ecosys.PlatformWeb)
	// alipay web has a customer-service extra path; the simulation
	// always requires manual review.
	var meta MetaResp
	if status := getJSON(t, inst.URL()+"/meta", "", &meta); status != http.StatusOK {
		t.Fatal("meta failed")
	}
	var csPath string
	for _, p := range meta.Paths {
		if strings.HasPrefix(p, "extra-cs-") {
			csPath = p
			break
		}
	}
	if csPath == "" {
		t.Fatalf("no customer-service path on alipay web: %v", meta.Paths)
	}
	status := postJSON(t, inst.URL()+"/authenticate", AuthReq{
		Phone: w.victim.Persona.Phone, Path: csPath,
		Factors: map[string]string{"customer-service": "please", "sms-code": "123456"},
	}, nil)
	if status != http.StatusForbidden {
		t.Errorf("customer-service path accepted: %d", status)
	}
}

func TestRateLimitSurfaces(t *testing.T) {
	w := newWorld(t)
	w.launch(t, "gmail")
	inst := w.inst(t, "gmail", ecosys.PlatformWeb)
	var last int
	for i := 0; i < 8; i++ {
		last = postJSON(t, inst.URL()+"/request-code",
			RequestCodeReq{Phone: w.victim.Persona.Phone, Path: "reset-sms"}, nil)
	}
	if last != http.StatusTooManyRequests {
		t.Errorf("8th request-code = %d want 429", last)
	}
}

func TestLaunchValidation(t *testing.T) {
	w := newWorld(t)
	if _, err := w.platform.Launch(ecosys.AccountID{Service: "ghost", Platform: ecosys.PlatformWeb}); err == nil {
		t.Error("unknown service launched")
	}
	if _, err := w.platform.LaunchAll("gmail"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.platform.Launch(ecosys.AccountID{Service: "gmail", Platform: ecosys.PlatformWeb}); err == nil {
		t.Error("duplicate launch accepted")
	}
	if _, err := w.platform.LaunchAll("ghost"); err == nil {
		t.Error("unknown LaunchAll accepted")
	}
	if _, err := NewPlatform(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if err := w.platform.Provision(User{}); err == nil {
		t.Error("user without phone accepted")
	}
}

func TestProfileMasksApplied(t *testing.T) {
	w := newWorld(t)
	w.launch(t, "gome")
	inst := w.inst(t, "gome", ecosys.PlatformWeb)
	status := postJSON(t, inst.URL()+"/request-code",
		RequestCodeReq{Phone: w.victim.Persona.Phone, Path: "reset-sms"}, nil)
	if status != http.StatusOK {
		t.Fatal("request-code failed")
	}
	code := lastCode(t, w.terminal)
	var auth AuthResp
	status = postJSON(t, inst.URL()+"/authenticate", AuthReq{
		Phone: w.victim.Persona.Phone, Path: "reset-sms",
		Factors: map[string]string{
			"cellphone-number": w.victim.Persona.Phone,
			"sms-code":         code,
		},
	}, &auth)
	if status != http.StatusOK {
		t.Fatal("authenticate failed")
	}
	var prof ProfileResp
	if status := getJSON(t, inst.URL()+"/profile", auth.Token, &prof); status != http.StatusOK {
		t.Fatal("profile failed")
	}
	cid := prof.Fields["citizen-id"]
	if !strings.Contains(cid, "*") {
		t.Errorf("gome web citizen ID not masked: %q", cid)
	}
	if !strings.HasPrefix(cid, w.victim.Persona.CitizenID[:6]) {
		t.Errorf("gome web mask should reveal first 6: %q", cid)
	}
}

func TestOriginatorForNames(t *testing.T) {
	cases := map[string]string{
		"gmail":         "Gmail",
		"china-railway": "China",
		"":              "Service",
	}
	for in, want := range cases {
		if got := OriginatorFor(in); got != want {
			t.Errorf("OriginatorFor(%q) = %q want %q", in, got, want)
		}
	}
	if got := OriginatorFor("averyveryverylongname"); len(got) > 11 {
		t.Errorf("originator %q exceeds GSM limit", got)
	}
}

func BenchmarkAuthenticateFlow(b *testing.B) {
	cat := dataset.MustDefault()
	net := telecom.NewNetwork(telecom.Config{KeySpace: a51.KeySpace{Bits: 8}, Seed: 1})
	cell, _ := net.AddCell(telecom.Cell{ID: "c1", ARFCNs: []int{512}, Cipher: telecom.CipherA50})
	persona := identity.NewGenerator(77).Persona(0)
	sub, _ := net.Register("imsi-victim", persona.Phone)
	term, _ := net.NewTerminal(sub, telecom.RATGSM)
	if err := term.Attach(cell); err != nil {
		b.Fatal(err)
	}
	p, err := NewPlatform(Config{Catalog: cat, Net: net, Mail: email.NewServer()})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	if _, err := p.LaunchAll("gmail"); err != nil {
		b.Fatal(err)
	}
	victim := User{Persona: persona, Password: "pw"}
	if err := p.Provision(victim); err != nil {
		b.Fatal(err)
	}
	inst, _ := p.Instance(ecosys.AccountID{Service: "gmail", Platform: ecosys.PlatformWeb})
	body, _ := json.Marshal(AuthReq{
		Phone: persona.Phone, Path: "signin-pw",
		Factors: map[string]string{"password": "pw"},
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(inst.URL()+"/authenticate", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatal(fmt.Errorf("status %d", resp.StatusCode))
		}
		resp.Body.Close()
	}
}
