package services

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"

	"github.com/actfort/actfort/internal/collect"
	"github.com/actfort/actfort/internal/ecosys"
	"github.com/actfort/actfort/internal/email"
	"github.com/actfort/actfort/internal/smsotp"
)

// Instance is one live service presence: an HTTP server with the
// presence's authentication paths enforced.
type Instance struct {
	platform *Platform
	id       ecosys.AccountID
	domain   ecosys.Domain
	presence *ecosys.Presence
	server   *httptest.Server

	mu    sync.Mutex
	users map[string]*User // keyed by phone
}

// URL returns the instance's base URL.
func (in *Instance) URL() string { return in.server.URL }

// ID returns the account identity this instance serves.
func (in *Instance) ID() ecosys.AccountID { return in.id }

func (in *Instance) provision(u User) {
	in.mu.Lock()
	defer in.mu.Unlock()
	uc := u
	in.users[u.Persona.Phone] = &uc
}

func (in *Instance) user(phone string) (*User, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	u, ok := in.users[phone]
	return u, ok
}

func (in *Instance) path(id string) (ecosys.AuthPath, bool) {
	for _, p := range in.presence.Paths {
		if p.ID == id {
			return p, true
		}
	}
	return ecosys.AuthPath{}, false
}

// --- wire types ---

// RequestCodeReq asks the service to dispatch the OTPs a path needs.
type RequestCodeReq struct {
	Phone string `json:"phone"`
	Path  string `json:"path"`
}

// RequestCodeResp lists which factor codes were sent.
type RequestCodeResp struct {
	Sent []string `json:"sent"`
}

// AuthReq attempts a path with concrete factor values, keyed by the
// long factor names ("sms-code", "citizen-id", ...).
type AuthReq struct {
	Phone   string            `json:"phone"`
	Path    string            `json:"path"`
	Factors map[string]string `json:"factors"`
}

// AuthResp carries the session token on success.
type AuthResp struct {
	Token string `json:"token"`
}

// ProfileResp is the post-login profile page: field name -> displayed
// (possibly masked) value.
type ProfileResp struct {
	Service string            `json:"service"`
	Fields  map[string]string `json:"fields"`
}

// MailboxResp lists the mailbox of the session holder (email-domain
// instances only).
type MailboxResp struct {
	Messages []email.Message `json:"messages"`
}

// PayResp acknowledges a payment (fintech instances only).
type PayResp struct {
	Receipt string `json:"receipt"`
}

// MetaResp describes the instance's paths, for clients that discover
// flows dynamically (the attack executor does).
type MetaResp struct {
	Service  string   `json:"service"`
	Platform string   `json:"platform"`
	Paths    []string `json:"paths"`
}

type errResp struct {
	Error string `json:"error"`
}

// --- routing ---

func (in *Instance) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /request-code", in.handleRequestCode)
	mux.HandleFunc("POST /authenticate", in.handleAuthenticate)
	mux.HandleFunc("GET /profile", in.handleProfile)
	mux.HandleFunc("GET /mailbox", in.handleMailbox)
	mux.HandleFunc("POST /pay", in.handlePay)
	mux.HandleFunc("GET /meta", in.handleMeta)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errResp{Error: fmt.Sprintf(format, args...)})
}

// handleRequestCode triggers OTP delivery for every code factor of the
// requested path: SMS codes ride the (sniffable) telecom network,
// email codes go to the user's registered mailbox.
func (in *Instance) handleRequestCode(w http.ResponseWriter, r *http.Request) {
	var req RequestCodeReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	u, ok := in.user(req.Phone)
	if !ok {
		writeErr(w, http.StatusNotFound, "no account for phone")
		return
	}
	path, ok := in.path(req.Path)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown path %q", req.Path)
		return
	}
	var sent []string
	for _, f := range path.Factors {
		switch f {
		case ecosys.FactorSMSCode:
			sender := &smsotp.TelecomSender{
				Net:         in.platform.net,
				Originator:  OriginatorFor(in.id.Service),
				DisplayName: OriginatorFor(in.id.Service),
			}
			if err := in.platform.otp.Issue(in.otpScopeSMS(), u.Persona.Phone, sender); err != nil {
				writeErr(w, http.StatusTooManyRequests, "sms code: %v", err)
				return
			}
			sent = append(sent, f.String())
		case ecosys.FactorEmailCode, ecosys.FactorEmailLink:
			sender := &email.CodeSender{Server: in.platform.mail, DisplayName: OriginatorFor(in.id.Service)}
			if err := in.platform.otp.Issue(in.otpScopeEmail(), u.Persona.Email, sender); err != nil {
				writeErr(w, http.StatusTooManyRequests, "email code: %v", err)
				return
			}
			sent = append(sent, f.String())
		}
	}
	writeJSON(w, http.StatusOK, RequestCodeResp{Sent: sent})
}

// otpScopeSMS/Email namespace codes per instance and channel.
func (in *Instance) otpScopeSMS() string   { return in.id.String() + "|sms" }
func (in *Instance) otpScopeEmail() string { return in.id.String() + "|email" }

// OriginatorFor renders the SMS sender ID a service uses ("Google",
// "PayPal"): the capitalized first word of the service name. It is
// public knowledge an attacker uses to filter sniffed traffic.
func OriginatorFor(service string) string {
	if service == "" {
		return "Service"
	}
	base := service
	if i := strings.IndexByte(base, '-'); i > 0 {
		base = base[:i]
	}
	if len(base) > 11 { // GSM alphanumeric sender IDs cap at 11 chars
		base = base[:11]
	}
	return strings.ToUpper(base[:1]) + base[1:]
}

// handleAuthenticate verifies every factor of the chosen path and
// mints a session. Sign-in and password-reset paths both yield account
// control (after a reset the attacker owns the new password);
// payment-reset paths yield a payment-scoped session.
func (in *Instance) handleAuthenticate(w http.ResponseWriter, r *http.Request) {
	var req AuthReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	u, ok := in.user(req.Phone)
	if !ok {
		writeErr(w, http.StatusNotFound, "no account for phone")
		return
	}
	path, ok := in.path(req.Path)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown path %q", req.Path)
		return
	}
	for _, f := range path.Factors {
		val, given := req.Factors[f.String()]
		if !given {
			writeErr(w, http.StatusForbidden, "missing factor %s", f)
			return
		}
		if err := in.verifyFactor(u, f, val); err != nil {
			writeErr(w, http.StatusForbidden, "factor %s: %v", f, err)
			return
		}
	}
	token := in.platform.newSession(in.id, u.Persona.Phone)
	writeJSON(w, http.StatusOK, AuthResp{Token: token})
}

// verifyFactor checks one submitted factor value.
func (in *Instance) verifyFactor(u *User, f ecosys.FactorKind, val string) error {
	switch f {
	case ecosys.FactorPassword:
		if val != u.Password {
			return errors.New("wrong password")
		}
	case ecosys.FactorSMSCode:
		return in.platform.otp.Verify(in.otpScopeSMS(), u.Persona.Phone, val)
	case ecosys.FactorEmailCode, ecosys.FactorEmailLink:
		return in.platform.otp.Verify(in.otpScopeEmail(), u.Persona.Email, val)
	case ecosys.FactorCellphone:
		if val != u.Persona.Phone {
			return errors.New("wrong phone number")
		}
	case ecosys.FactorEmailAddress:
		if val != u.Persona.Email {
			return errors.New("wrong email address")
		}
	case ecosys.FactorRealName:
		if val != u.Persona.RealName {
			return errors.New("wrong name")
		}
	case ecosys.FactorCitizenID:
		if val != u.Persona.CitizenID {
			return errors.New("wrong citizen ID")
		}
	case ecosys.FactorBankcard:
		if val != u.Persona.Bankcard {
			return errors.New("wrong bankcard")
		}
	case ecosys.FactorAddress:
		if val != u.Persona.Address {
			return errors.New("wrong address")
		}
	case ecosys.FactorUserID:
		if val != u.Persona.UserID {
			return errors.New("wrong user ID")
		}
	case ecosys.FactorStudentID:
		if val != u.Persona.StudentID {
			return errors.New("wrong student ID")
		}
	case ecosys.FactorDeviceType:
		if val != u.Persona.DeviceType {
			return errors.New("wrong device type")
		}
	case ecosys.FactorAcquaintance:
		for _, a := range u.Persona.Acquaintances {
			if a == val {
				return nil
			}
		}
		return errors.New("not an acquaintance")
	case ecosys.FactorSecurityQuestion:
		if val != u.SecurityAnswer {
			return errors.New("wrong answer")
		}
	case ecosys.FactorBiometric, ecosys.FactorU2F:
		// Possession-bound: only the genuine device secret passes.
		if val != u.DeviceSecret {
			return errors.New("device attestation failed")
		}
	case ecosys.FactorLinkedAccount:
		sess, ok := in.platform.session(val)
		if !ok {
			return errors.New("invalid linked session")
		}
		for _, b := range in.presence.BoundTo {
			if sess.Account.Service == b && sess.Phone == u.Persona.Phone {
				return nil
			}
		}
		return errors.New("session not from a bound account")
	case ecosys.FactorCustomerService:
		// Human-assisted resets need social engineering beyond this
		// simulation (§V.B Case III notes it merely "increases the
		// attacker's chance").
		return errors.New("manual review required")
	case ecosys.FactorBuiltinPush:
		if in.platform.push != nil && in.platform.push(in.id.Service, u.Persona.Phone, val) {
			return nil
		}
		return errors.New("push confirmation rejected")
	default:
		return fmt.Errorf("unsupported factor %v", f)
	}
	return nil
}

// handleProfile renders the post-login profile page with the
// presence's masks applied — the attacker's harvest.
func (in *Instance) handleProfile(w http.ResponseWriter, r *http.Request) {
	u, ok := in.authorize(r)
	if !ok {
		writeErr(w, http.StatusUnauthorized, "no session")
		return
	}
	values := collect.Harvest(in.presence, u.Persona)
	fields := make(map[string]string, len(values))
	for f, v := range values {
		fields[f.String()] = v
	}
	writeJSON(w, http.StatusOK, ProfileResp{Service: in.id.Service, Fields: fields})
}

// handleMailbox serves the session holder's inbox on email-domain
// instances: a compromised mailbox leaks every other service's email
// codes (the "gateway" insight).
func (in *Instance) handleMailbox(w http.ResponseWriter, r *http.Request) {
	if in.domain != ecosys.DomainEmail {
		writeErr(w, http.StatusNotFound, "not an email service")
		return
	}
	u, ok := in.authorize(r)
	if !ok {
		writeErr(w, http.StatusUnauthorized, "no session")
		return
	}
	msgs, err := in.platform.mail.Inbox(u.Persona.Email)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "mailbox: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, MailboxResp{Messages: msgs})
}

// handlePay demonstrates a transaction on fintech instances (Cases I
// and III end with a payment).
func (in *Instance) handlePay(w http.ResponseWriter, r *http.Request) {
	if in.domain != ecosys.DomainFintech {
		writeErr(w, http.StatusNotFound, "not a fintech service")
		return
	}
	u, ok := in.authorize(r)
	if !ok {
		writeErr(w, http.StatusUnauthorized, "no session")
		return
	}
	writeJSON(w, http.StatusOK, PayResp{
		Receipt: fmt.Sprintf("paid-by-%s-via-%s", u.Persona.UserID, in.id.String()),
	})
}

func (in *Instance) handleMeta(w http.ResponseWriter, _ *http.Request) {
	meta := MetaResp{Service: in.id.Service, Platform: in.id.Platform.String()}
	for _, p := range in.presence.Paths {
		meta.Paths = append(meta.Paths, p.ID)
	}
	writeJSON(w, http.StatusOK, meta)
}

// authorize resolves the bearer token to this instance's user.
func (in *Instance) authorize(r *http.Request) (*User, bool) {
	token := strings.TrimPrefix(r.Header.Get("Authorization"), "Bearer ")
	if token == "" {
		return nil, false
	}
	sess, ok := in.platform.session(token)
	if !ok || sess.Account != in.id {
		return nil, false
	}
	return in.user(sess.Phone)
}
