package strategy

import (
	"errors"
	"fmt"
	"strings"

	"github.com/actfort/actfort/internal/ecosys"
	"github.com/actfort/actfort/internal/tdg"
)

// PlanStep is one compromise in an attack plan: take over Account via
// PathID after the Parents (earlier in the plan) have fallen. Fringe
// roots have no parents — they fall to phone + SMS code alone.
type PlanStep struct {
	Account ecosys.AccountID
	PathID  string
	Parents []ecosys.AccountID
}

// Plan is an ordered Chain Reaction Attack: executing the steps in
// sequence compromises Target. It is the "account chain" §III.E's
// backward search returns.
type Plan struct {
	Target ecosys.AccountID
	Steps  []PlanStep
}

// Depth returns the number of compromise layers (fringe roots are
// layer 1).
func (p *Plan) Depth() int {
	depth := make(map[ecosys.AccountID]int, len(p.Steps))
	maxD := 0
	for _, s := range p.Steps {
		d := 1
		for _, parent := range s.Parents {
			if pd, ok := depth[parent]; ok && pd+1 > d {
				d = pd + 1
			}
		}
		depth[s.Account] = d
		if d > maxD {
			maxD = d
		}
	}
	return maxD
}

// String renders the plan as "a/web -> b/web -> target/web".
func (p *Plan) String() string {
	names := make([]string, 0, len(p.Steps))
	for _, s := range p.Steps {
		names = append(names, s.Account.String())
	}
	return strings.Join(names, " -> ")
}

// Common errors.
var (
	// ErrNoPlan reports that no chain reaches the target: every route
	// dead-ends in unphishable factors or exceeds the depth bound.
	ErrNoPlan = errors.New("strategy: no attack plan reaches the target")
	// ErrUnknownTarget reports a target not present in the graph.
	ErrUnknownTarget = errors.New("strategy: target not in graph")
)

// searchBudget caps option expansions per FindPlan call so that
// pathological graphs terminate promptly.
const searchBudget = 200_000

// FindPlan returns a minimal-step attack plan compromising target,
// searching backward through full-capacity parents and merged couple
// groups, bounded by maxDepth layers (0 means the default of 5).
func FindPlan(g *tdg.Graph, target ecosys.AccountID, maxDepth int) (*Plan, error) {
	if maxDepth <= 0 {
		maxDepth = 5
	}
	if _, ok := g.Node(target); !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownTarget, target)
	}

	s := &searcher{g: g, maxDepth: maxDepth, budget: searchBudget}
	steps, ok := s.solve(target, make(map[ecosys.AccountID]bool), maxDepth)
	if !ok {
		return nil, fmt.Errorf("%w: %s (depth <= %d)", ErrNoPlan, target, maxDepth)
	}
	return &Plan{Target: target, Steps: steps}, nil
}

type searcher struct {
	g        *tdg.Graph
	maxDepth int
	budget   int
	// optionsByNode caches per-target provider options; without it the
	// DFS rescans every strong edge at each expansion, which is
	// quadratic on dense graphs.
	optionsByNode map[ecosys.AccountID][]option
}

// option is one way to satisfy a node: a set of providers for a path.
type option struct {
	pathID  string
	parents []ecosys.AccountID
}

// options enumerates single full-capacity parents first (cheapest),
// then couple groups. The full index is built once per search.
func (s *searcher) options(id ecosys.AccountID) []option {
	if s.optionsByNode == nil {
		s.optionsByNode = make(map[ecosys.AccountID][]option)
		seen := make(map[string]bool)
		for _, e := range s.g.StrongEdges() {
			key := e.To.String() + "|" + e.From.String() + "|" + e.PathID
			if seen[key] {
				continue
			}
			seen[key] = true
			s.optionsByNode[e.To] = append(s.optionsByNode[e.To],
				option{pathID: e.PathID, parents: []ecosys.AccountID{e.From}})
		}
		for _, c := range s.g.Couples(ecosys.AccountID{}) {
			s.optionsByNode[c.Target] = append(s.optionsByNode[c.Target],
				option{pathID: c.PathID, parents: append([]ecosys.AccountID(nil), c.Members...)})
		}
	}
	return s.optionsByNode[id]
}

// fringePath returns the path ID a fringe node falls by.
func (s *searcher) fringePath(id ecosys.AccountID) string {
	node, _ := s.g.Node(id)
	ap := s.g.Profile()
	for _, p := range node.Paths {
		if p.Purpose != ecosys.PurposeSignIn && p.Purpose != ecosys.PurposeReset {
			continue
		}
		if ap.CanSatisfy(p) {
			return p.ID
		}
	}
	return ""
}

// solve returns a step list whose execution compromises id. stack
// guards against cycles along the current route.
func (s *searcher) solve(id ecosys.AccountID, stack map[ecosys.AccountID]bool, depthLeft int) ([]PlanStep, bool) {
	if s.budget <= 0 || depthLeft <= 0 || stack[id] {
		return nil, false
	}
	s.budget--

	if s.g.IsFringe(id) {
		return []PlanStep{{Account: id, PathID: s.fringePath(id)}}, true
	}

	stack[id] = true
	defer delete(stack, id)

	var best []PlanStep
	for _, opt := range s.options(id) {
		merged := make([]PlanStep, 0, 4)
		have := make(map[ecosys.AccountID]bool)
		ok := true
		for _, parent := range opt.parents {
			if have[parent] {
				continue
			}
			sub, solved := s.solve(parent, stack, depthLeft-1)
			if !solved {
				ok = false
				break
			}
			for _, step := range sub {
				if !have[step.Account] {
					have[step.Account] = true
					merged = append(merged, step)
				}
			}
		}
		if !ok {
			continue
		}
		merged = append(merged, PlanStep{Account: id, PathID: opt.pathID, Parents: opt.parents})
		if best == nil || len(merged) < len(best) {
			best = merged
		}
	}
	return best, best != nil
}

// FindPlans enumerates up to limit distinct plans for target, shortest
// first, by iteratively excluding the first-hop option of each found
// plan. It is a diversity heuristic, not an exhaustive enumeration.
func FindPlans(g *tdg.Graph, target ecosys.AccountID, maxDepth, limit int) ([]*Plan, error) {
	first, err := FindPlan(g, target, maxDepth)
	if err != nil {
		return nil, err
	}
	plans := []*Plan{first}
	if limit <= 1 {
		return plans, nil
	}
	seen := map[string]bool{first.String(): true}
	// Re-run the search with each immediate parent suppressed by
	// removing it from the plan's last step options via a filtered
	// graph view. The graph is immutable, so emulate by rejecting
	// plans that repeat a seen signature.
	for attempt := 0; attempt < 8*limit && len(plans) < limit; attempt++ {
		s := &searcher{g: g, maxDepth: maxDepth, budget: searchBudget}
		if maxDepth <= 0 {
			s.maxDepth = 5
		}
		steps, ok := s.solveExcluding(target, make(map[ecosys.AccountID]bool), s.maxDepth, plans[len(plans)-1].Steps[len(plans[len(plans)-1].Steps)-1].Parents, attempt)
		if !ok {
			break
		}
		p := &Plan{Target: target, Steps: steps}
		if seen[p.String()] {
			break
		}
		seen[p.String()] = true
		plans = append(plans, p)
	}
	return plans, nil
}

// solveExcluding is solve with the target's first `skip+1` options
// rotated away, to force plan diversity.
func (s *searcher) solveExcluding(id ecosys.AccountID, stack map[ecosys.AccountID]bool, depthLeft int, _ []ecosys.AccountID, skip int) ([]PlanStep, bool) {
	opts := s.options(id)
	if len(opts) <= 1 {
		return nil, false
	}
	rot := (skip + 1) % len(opts)
	opts = append(opts[rot:], opts[:rot]...)

	if s.g.IsFringe(id) {
		return []PlanStep{{Account: id, PathID: s.fringePath(id)}}, true
	}
	stack[id] = true
	defer delete(stack, id)
	for _, opt := range opts {
		merged := make([]PlanStep, 0, 4)
		have := make(map[ecosys.AccountID]bool)
		ok := true
		for _, parent := range opt.parents {
			if have[parent] {
				continue
			}
			sub, solved := s.solve(parent, stack, depthLeft-1)
			if !solved {
				ok = false
				break
			}
			for _, step := range sub {
				if !have[step.Account] {
					have[step.Account] = true
					merged = append(merged, step)
				}
			}
		}
		if !ok {
			continue
		}
		merged = append(merged, PlanStep{Account: id, PathID: opt.pathID, Parents: opt.parents})
		return merged, true
	}
	return nil, false
}
