package strategy

import (
	"math"

	"github.com/actfort/actfort/internal/ecosys"
	"github.com/actfort/actfort/internal/tdg"
)

// Unreachable is the depth of an account no chain compromises.
const Unreachable = math.MaxInt32

// DepthStats reproduces the paper's §IV.B.1 dependency percentages
// with the paper's own overlapping semantics: one service can have
// multiple reset combinations, so it may count in several categories
// at once ("the overall percentage can not be summed up to 100%").
type DepthStats struct {
	Total int
	// Direct: some path falls to the attacker profile alone (depth 1).
	Direct int
	// OneMiddle: some path needs exactly one layer of middle accounts
	// (depth 2).
	OneMiddle int
	// TwoLayerFull: some depth-3 path where a single full-capacity
	// parent covers it.
	TwoLayerFull int
	// TwoLayerCouple: some depth-3 path needing jointly contributing
	// half-capacity parents.
	TwoLayerCouple int
	// Uncompromisable: no chain of any depth reaches the account.
	Uncompromisable int
}

// Pct converts a count to a percentage of Total.
func (s DepthStats) Pct(n int) float64 {
	if s.Total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(s.Total)
}

// needKey indexes supplier lists by (target account, missing factor).
type needKey struct {
	id ecosys.AccountID
	f  ecosys.FactorKind
}

// depthAnalysis carries the converged state shared by AccountDepths
// and PathLayers.
type depthAnalysis struct {
	g         *tdg.Graph
	apFactors ecosys.FactorSet
	suppliers map[needKey][]ecosys.AccountID
	depth     map[ecosys.AccountID]int
}

func newDepthAnalysis(g *tdg.Graph) *depthAnalysis {
	ap := g.Profile()
	a := &depthAnalysis{
		g:         g,
		apFactors: ap.Factors(),
		suppliers: make(map[needKey][]ecosys.AccountID),
		depth:     make(map[ecosys.AccountID]int, g.Len()),
	}
	for _, id := range g.Nodes() {
		a.depth[id] = Unreachable
		node, _ := g.Node(id)
		for _, p := range takeoverOf(node) {
			for _, f := range p.Factors {
				if a.apFactors.Has(f) {
					continue
				}
				k := needKey{id, f}
				if _, done := a.suppliers[k]; !done {
					a.suppliers[k] = g.Suppliers(id, f)
				}
			}
		}
	}
	a.converge()
	return a
}

// converge runs the monotone fixpoint: a path's depth is 1 + the max
// over its missing factors of the min depth of any supplier; an
// account's depth is the min over its takeover paths. Depths only
// decrease from Unreachable, so the iteration terminates in at most
// |nodes| sweeps.
func (a *depthAnalysis) converge() {
	for changed := true; changed; {
		changed = false
		for _, id := range a.g.Nodes() {
			node, _ := a.g.Node(id)
			best := a.depth[id]
			for _, p := range takeoverOf(node) {
				if d := a.pathDepth(id, p); d < best {
					best = d
				}
			}
			if best < a.depth[id] {
				a.depth[id] = best
				changed = true
			}
		}
	}
}

// pathDepth evaluates one path under the current estimates.
func (a *depthAnalysis) pathDepth(id ecosys.AccountID, p ecosys.AuthPath) int {
	worst := 0
	for _, f := range p.Factors {
		if a.apFactors.Has(f) {
			continue
		}
		bestProv := Unreachable
		for _, prov := range a.suppliers[needKey{id, f}] {
			if d := a.depth[prov]; d < bestProv {
				bestProv = d
			}
		}
		if bestProv == Unreachable {
			return Unreachable
		}
		if bestProv > worst {
			worst = bestProv
		}
	}
	return worst + 1
}

func takeoverOf(node *tdg.Node) []ecosys.AuthPath {
	var out []ecosys.AuthPath
	for _, p := range node.Paths {
		if p.Purpose == ecosys.PurposeSignIn || p.Purpose == ecosys.PurposeReset {
			out = append(out, p)
		}
	}
	return out
}

// AccountDepths computes, for every account, the minimal number of
// compromise layers needed to take it over (1 = attacker profile
// alone, Unreachable = never).
func AccountDepths(g *tdg.Graph) map[ecosys.AccountID]int {
	a := newDepthAnalysis(g)
	out := make(map[ecosys.AccountID]int, len(a.depth))
	for id, d := range a.depth {
		out[id] = d
	}
	return out
}

// PathLayers computes the overlapping dependency statistics of
// §IV.B.1 over a graph.
func PathLayers(g *tdg.Graph) DepthStats {
	a := newDepthAnalysis(g)
	st := DepthStats{Total: g.Len()}
	for _, id := range g.Nodes() {
		node, _ := g.Node(id)
		var direct, oneMiddle, twoFull, twoCouple bool
		for _, p := range takeoverOf(node) {
			switch a.pathDepth(id, p) {
			case 1:
				direct = true
			case 2:
				oneMiddle = true
			case 3:
				if g.HasStrongFor(id, p.ID) {
					twoFull = true
				} else {
					twoCouple = true
				}
			}
		}
		if direct {
			st.Direct++
		}
		if oneMiddle {
			st.OneMiddle++
		}
		if twoFull {
			st.TwoLayerFull++
		}
		if twoCouple {
			st.TwoLayerCouple++
		}
		if a.depth[id] == Unreachable {
			st.Uncompromisable++
		}
	}
	return st
}
