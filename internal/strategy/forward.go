// Package strategy implements ActFort's Strategy Output stage
// (§III.E): the forward closure that answers "given what the attacker
// holds, which accounts fall?" (Online Account Attacked Set → Initial
// Attack Database → Potential Account Victims) and the backward search
// that answers "how do I reach this specific target from cellphone +
// SMS code?" (full-capacity parents and merged couple nodes, walked
// down to fringe roots).
package strategy

import (
	"fmt"
	"sort"

	"github.com/actfort/actfort/internal/ecosys"
	"github.com/actfort/actfort/internal/tdg"
)

// Compromise describes how one account fell during a forward closure.
type Compromise struct {
	// Round is the closure iteration (1 = directly with the attacker
	// profile / initial set).
	Round int
	// PathID is the authentication path used.
	PathID string
	// UsedCouple reports that no single previously compromised
	// account covered the path alone — the step needed jointly
	// contributed factors (half-capacity parents).
	UsedCouple bool
}

// ForwardResult is the outcome of a closure run.
type ForwardResult struct {
	// Compromised maps every fallen account to how it fell. Accounts
	// in the initial set are recorded with Round 0.
	Compromised map[ecosys.AccountID]Compromise
	// Rounds lists accounts newly fallen per iteration (1-based;
	// Rounds[0] is round 1).
	Rounds [][]ecosys.AccountID
	// Survivors are accounts that never fell.
	Survivors []ecosys.AccountID
	// FinalInfo is the Initial Attack Database at fixpoint: every
	// personal-information field the attacker has harvested.
	FinalInfo ecosys.InfoSet
}

// VictimCount returns the number of fallen accounts, excluding the
// initial set.
func (r *ForwardResult) VictimCount() int {
	n := 0
	for _, c := range r.Compromised {
		if c.Round > 0 {
			n++
		}
	}
	return n
}

// ForwardClosure runs the PAV computation: starting from the graph's
// attacker profile plus an optional initially compromised set (OAAS),
// repeatedly takes over every account whose factors are now covered,
// harvesting its exposed information into the IAD, until fixpoint.
func ForwardClosure(g *tdg.Graph, initial []ecosys.AccountID) (*ForwardResult, error) {
	res := &ForwardResult{
		Compromised: make(map[ecosys.AccountID]Compromise),
		FinalInfo:   make(ecosys.InfoSet),
	}
	ap := g.Profile()
	for f := range ap.KnownInfo {
		res.FinalInfo.Add(f)
	}

	controlled := make(map[string]bool) // service names under control
	for _, id := range initial {
		node, ok := g.Node(id)
		if !ok {
			return nil, fmt.Errorf("strategy: initial account %s not in graph", id)
		}
		res.Compromised[id] = Compromise{Round: 0}
		controlled[id.Service] = true
		for f := range node.Exposes {
			res.FinalInfo.Add(f)
		}
	}

	for round := 1; ; round++ {
		available := ap.Capabilities.Union(res.FinalInfo.Factors())
		var fell []ecosys.AccountID
		newInfo := make(ecosys.InfoSet)
		for _, id := range g.Nodes() {
			if _, done := res.Compromised[id]; done {
				continue
			}
			node, _ := g.Node(id)
			pathID, usedCouple, ok := satisfiablePath(node, ap.Capabilities, available, controlled)
			if !ok {
				continue
			}
			res.Compromised[id] = Compromise{Round: round, PathID: pathID, UsedCouple: usedCouple}
			fell = append(fell, id)
			for f := range node.Exposes {
				newInfo.Add(f)
			}
		}
		if len(fell) == 0 {
			break
		}
		res.Rounds = append(res.Rounds, fell)
		for _, id := range fell {
			controlled[id.Service] = true
		}
		for f := range newInfo {
			res.FinalInfo.Add(f)
		}
	}

	for _, id := range g.Nodes() {
		if _, done := res.Compromised[id]; !done {
			res.Survivors = append(res.Survivors, id)
		}
	}
	return res, nil
}

// satisfiablePath finds the first takeover path of node coverable by
// the available factors and controlled services. usedCouple reports
// whether more than one harvested (non-capability) factor was needed —
// the measurement-granularity stand-in for the paper's half-capacity-
// parent notion.
func satisfiablePath(node *tdg.Node, capabilities, available ecosys.FactorSet, controlled map[string]bool) (pathID string, usedCouple bool, ok bool) {
	for _, p := range node.Paths {
		if p.Purpose != ecosys.PurposeSignIn && p.Purpose != ecosys.PurposeReset {
			continue
		}
		covered := true
		extra := 0
		for _, f := range p.Factors {
			switch {
			case available.Has(f):
				if !capabilities.Has(f) {
					extra++
				}
			case f == ecosys.FactorLinkedAccount:
				bound := false
				for _, b := range node.BoundTo {
					if controlled[b] {
						bound = true
						break
					}
				}
				if !bound {
					covered = false
				} else {
					extra++
				}
			case f == ecosys.FactorEmailCode || f == ecosys.FactorEmailLink:
				if node.EmailProvider == "" || !controlled[node.EmailProvider] {
					covered = false
				} else {
					extra++
				}
			default:
				covered = false
			}
			if !covered {
				break
			}
		}
		if covered {
			return p.ID, extra > 1, true
		}
	}
	return "", false, false
}

// LayerStats aggregates a ForwardResult into the paper's §IV.B.1
// dependency categories. Percentages overlap by construction (the
// paper: "the overall percentage can not be summed up to 100").
type LayerStats struct {
	Total int
	// Direct is |round 1|: compromised with phone + SMS code alone.
	Direct int
	// OneMiddle is |round 2|: one layer of middle accounts.
	OneMiddle int
	// TwoLayerFull is |round >= 3| without couple use.
	TwoLayerFull int
	// WithCouples counts accounts whose fall needed jointly
	// contributed factors at any depth.
	WithCouples int
	// Uncompromised never fell.
	Uncompromised int
}

// Pct returns 100*n/total, 0 for an empty graph.
func (s LayerStats) Pct(n int) float64 {
	if s.Total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(s.Total)
}

// Layers computes LayerStats from a closure that started with an empty
// initial set.
func Layers(res *ForwardResult, total int) LayerStats {
	st := LayerStats{Total: total}
	for _, c := range res.Compromised {
		switch {
		case c.Round == 1:
			st.Direct++
		case c.Round == 2:
			st.OneMiddle++
		case c.Round >= 3 && !c.UsedCouple:
			st.TwoLayerFull++
		}
		if c.UsedCouple {
			st.WithCouples++
		}
	}
	st.Uncompromised = len(res.Survivors)
	return st
}

// SortedVictims lists compromised accounts ordered by round then name,
// for stable reporting.
func (r *ForwardResult) SortedVictims() []ecosys.AccountID {
	out := make([]ecosys.AccountID, 0, len(r.Compromised))
	for id := range r.Compromised {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		ci, cj := r.Compromised[out[i]], r.Compromised[out[j]]
		if ci.Round != cj.Round {
			return ci.Round < cj.Round
		}
		return out[i].String() < out[j].String()
	})
	return out
}
