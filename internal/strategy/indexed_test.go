package strategy

import (
	"reflect"
	"testing"

	"github.com/actfort/actfort/internal/dataset"
	"github.com/actfort/actfort/internal/ecosys"
	"github.com/actfort/actfort/internal/tdg"
)

// equalResults asserts two closure results agree completely.
func equalResults(t *testing.T, a, b *ForwardResult) {
	t.Helper()
	if len(a.Compromised) != len(b.Compromised) {
		t.Fatalf("compromised counts differ: %d vs %d", len(a.Compromised), len(b.Compromised))
	}
	for id, ca := range a.Compromised {
		cb, ok := b.Compromised[id]
		if !ok {
			t.Fatalf("%s compromised by rescan only", id)
		}
		if ca.Round != cb.Round {
			t.Errorf("%s: round %d vs %d", id, ca.Round, cb.Round)
		}
		if ca.UsedCouple != cb.UsedCouple {
			t.Errorf("%s: usedCouple %v vs %v", id, ca.UsedCouple, cb.UsedCouple)
		}
	}
	if !reflect.DeepEqual(sortedIDs(a.Survivors), sortedIDs(b.Survivors)) {
		t.Errorf("survivors differ: %v vs %v", a.Survivors, b.Survivors)
	}
	if a.FinalInfo.Len() != b.FinalInfo.Len() {
		t.Errorf("final info sizes differ: %d vs %d", a.FinalInfo.Len(), b.FinalInfo.Len())
	}
}

func sortedIDs(in []ecosys.AccountID) []string {
	out := make([]string, 0, len(in))
	for _, id := range in {
		out = append(out, id.String())
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

func TestIndexedClosureMatchesRescanOnFixture(t *testing.T) {
	g := fixtureGraph(t)
	a, err := ForwardClosure(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ForwardClosureIndexed(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	equalResults(t, a, b)
}

func TestIndexedClosureMatchesWithInitialSet(t *testing.T) {
	g := fixtureGraph(t)
	initial := []ecosys.AccountID{aid("paypal", ecosys.PlatformWeb)}
	a, err := ForwardClosure(g, initial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ForwardClosureIndexed(g, initial)
	if err != nil {
		t.Fatal(err)
	}
	equalResults(t, a, b)
	if _, err := ForwardClosureIndexed(g, []ecosys.AccountID{aid("nope", ecosys.PlatformWeb)}); err == nil {
		t.Error("unknown initial account accepted")
	}
}

func TestIndexedClosureMatchesOnLayeredGraph(t *testing.T) {
	g := benchGraph(t)
	a, err := ForwardClosure(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ForwardClosureIndexed(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	equalResults(t, a, b)
}

func TestIndexedClosureMatchesOnCalibratedCatalog(t *testing.T) {
	cat := dataset.MustDefault()
	for _, platforms := range [][]ecosys.Platform{
		{ecosys.PlatformWeb}, {ecosys.PlatformMobile}, nil,
	} {
		g, err := tdg.Build(tdg.NodesFromCatalog(cat, platforms...), ecosys.BaselineAttacker())
		if err != nil {
			t.Fatal(err)
		}
		a, err := ForwardClosure(g, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ForwardClosureIndexed(g, nil)
		if err != nil {
			t.Fatal(err)
		}
		equalResults(t, a, b)
	}
}

func TestIndexedClosureCycleSafe(t *testing.T) {
	web := ecosys.PlatformWeb
	nodes := []tdg.Node{
		{
			ID:      aid("a", web),
			Paths:   []ecosys.AuthPath{{ID: "r", Purpose: ecosys.PurposeReset, Factors: []ecosys.FactorKind{ecosys.FactorSMSCode, ecosys.FactorRealName}}},
			Exposes: ecosys.NewInfoSet(ecosys.InfoCitizenID),
		},
		{
			ID:      aid("b", web),
			Paths:   []ecosys.AuthPath{{ID: "r", Purpose: ecosys.PurposeReset, Factors: []ecosys.FactorKind{ecosys.FactorSMSCode, ecosys.FactorCitizenID}}},
			Exposes: ecosys.NewInfoSet(ecosys.InfoRealName),
		},
	}
	g, err := tdg.Build(nodes, ecosys.BaselineAttacker())
	if err != nil {
		t.Fatal(err)
	}
	res, err := ForwardClosureIndexed(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.VictimCount() != 0 || len(res.Survivors) != 2 {
		t.Errorf("cyclic indexed closure: %d victims, %d survivors", res.VictimCount(), len(res.Survivors))
	}
}

func BenchmarkClosureRescan(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ForwardClosure(g, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClosureIndexed(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ForwardClosureIndexed(g, nil); err != nil {
			b.Fatal(err)
		}
	}
}
