package strategy

import (
	"fmt"

	"github.com/actfort/actfort/internal/ecosys"
	"github.com/actfort/actfort/internal/tdg"
)

// ForwardClosureIndexed computes the same fixpoint as ForwardClosure
// with a factor-indexed frontier: instead of rescanning every account
// each round, it re-examines only accounts whose unmet factors just
// became available. Results are identical (property-tested); DESIGN.md
// §5 lists the pair as an ablation — BenchmarkClosureRescan vs
// BenchmarkClosureIndexed compares them.
func ForwardClosureIndexed(g *tdg.Graph, initial []ecosys.AccountID) (*ForwardResult, error) {
	res := &ForwardResult{
		Compromised: make(map[ecosys.AccountID]Compromise),
		FinalInfo:   make(ecosys.InfoSet),
	}
	ap := g.Profile()
	for f := range ap.KnownInfo {
		res.FinalInfo.Add(f)
	}

	controlled := make(map[string]bool)
	for _, id := range initial {
		node, ok := g.Node(id)
		if !ok {
			return nil, fmt.Errorf("strategy: initial account %s not in graph", id)
		}
		res.Compromised[id] = Compromise{Round: 0}
		controlled[id.Service] = true
		for f := range node.Exposes {
			res.FinalInfo.Add(f)
		}
	}

	// Index: factor -> accounts with a takeover path needing it;
	// service name -> accounts bound to it or hosted by it.
	byFactor := make(map[ecosys.FactorKind][]ecosys.AccountID)
	byService := make(map[string][]ecosys.AccountID)
	for _, id := range g.Nodes() {
		node, _ := g.Node(id)
		seenF := make(map[ecosys.FactorKind]bool)
		seenS := make(map[string]bool)
		for _, p := range takeoverOf(node) {
			for _, f := range p.Factors {
				switch f {
				case ecosys.FactorLinkedAccount:
					for _, b := range node.BoundTo {
						if !seenS[b] {
							seenS[b] = true
							byService[b] = append(byService[b], id)
						}
					}
				case ecosys.FactorEmailCode, ecosys.FactorEmailLink:
					if node.EmailProvider != "" && !seenS[node.EmailProvider] {
						seenS[node.EmailProvider] = true
						byService[node.EmailProvider] = append(byService[node.EmailProvider], id)
					}
				default:
					if !seenF[f] {
						seenF[f] = true
						byFactor[f] = append(byFactor[f], id)
					}
				}
			}
		}
	}

	// Work list: start from everything (round 1 examines all), then
	// only woken accounts.
	inQueue := make(map[ecosys.AccountID]bool, g.Len())
	queue := make([]ecosys.AccountID, 0, g.Len())
	enqueue := func(id ecosys.AccountID) {
		if _, done := res.Compromised[id]; done {
			return
		}
		if !inQueue[id] {
			inQueue[id] = true
			queue = append(queue, id)
		}
	}
	for _, id := range g.Nodes() {
		enqueue(id)
	}

	round := 0
	for len(queue) > 0 {
		round++
		current := queue
		queue = nil
		inQueue = make(map[ecosys.AccountID]bool)

		available := ap.Capabilities.Union(res.FinalInfo.Factors())
		var fell []ecosys.AccountID
		newInfo := make(ecosys.InfoSet)
		for _, id := range current {
			if _, done := res.Compromised[id]; done {
				continue
			}
			node, _ := g.Node(id)
			pathID, usedCouple, ok := satisfiablePath(node, ap.Capabilities, available, controlled)
			if !ok {
				continue
			}
			res.Compromised[id] = Compromise{Round: round, PathID: pathID, UsedCouple: usedCouple}
			fell = append(fell, id)
			for f := range node.Exposes {
				newInfo.Add(f)
			}
		}
		if len(fell) == 0 {
			break
		}
		res.Rounds = append(res.Rounds, fell)

		// Wake dependents of the newly available capabilities.
		for _, id := range fell {
			controlled[id.Service] = true
			for _, dep := range byService[id.Service] {
				enqueue(dep)
			}
		}
		for f := range newInfo {
			if res.FinalInfo.Has(f) {
				continue
			}
			res.FinalInfo.Add(f)
			if k, ok := f.Factor(); ok {
				for _, dep := range byFactor[k] {
					enqueue(dep)
				}
			}
		}
	}

	for _, id := range g.Nodes() {
		if _, done := res.Compromised[id]; !done {
			res.Survivors = append(res.Survivors, id)
		}
	}
	return res, nil
}
