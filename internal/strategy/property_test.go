package strategy

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/actfort/actfort/internal/ecosys"
	"github.com/actfort/actfort/internal/tdg"
)

// randomGraph generates a small random ecosystem: each account gets
// 1–3 takeover paths drawn from realistic factor combinations and a
// random exposure set. It exercises the analysis invariants far from
// the calibrated catalog's shape.
func randomGraph(seed int64, size int) (*tdg.Graph, error) {
	r := rand.New(rand.NewSource(seed))
	if size < 2 {
		size = 2
	}
	factorPool := []ecosys.FactorKind{
		ecosys.FactorSMSCode, ecosys.FactorCellphone, ecosys.FactorPassword,
		ecosys.FactorRealName, ecosys.FactorCitizenID, ecosys.FactorBankcard,
		ecosys.FactorAddress, ecosys.FactorUserID, ecosys.FactorBiometric,
		ecosys.FactorEmailCode,
	}
	fieldPool := []ecosys.InfoField{
		ecosys.InfoRealName, ecosys.InfoCitizenID, ecosys.InfoBankcard,
		ecosys.InfoAddress, ecosys.InfoUserID, ecosys.InfoEmailAddress,
		ecosys.InfoOrderHistory,
	}
	nodes := make([]tdg.Node, 0, size)
	for i := 0; i < size; i++ {
		n := tdg.Node{
			ID:      ecosys.AccountID{Service: fmt.Sprintf("r%03d", i), Platform: ecosys.PlatformWeb},
			Exposes: make(ecosys.InfoSet),
		}
		nPaths := 1 + r.Intn(3)
		for p := 0; p < nPaths; p++ {
			nf := 1 + r.Intn(3)
			factors := make([]ecosys.FactorKind, 0, nf)
			for f := 0; f < nf; f++ {
				factors = append(factors, factorPool[r.Intn(len(factorPool))])
			}
			purpose := ecosys.PurposeSignIn
			if r.Intn(2) == 0 {
				purpose = ecosys.PurposeReset
			}
			n.Paths = append(n.Paths, ecosys.AuthPath{
				ID: fmt.Sprintf("p%d", p), Purpose: purpose, Factors: factors,
			})
		}
		nExpose := r.Intn(4)
		for e := 0; e < nExpose; e++ {
			n.Exposes.Add(fieldPool[r.Intn(len(fieldPool))])
		}
		// Occasional email binding to an earlier node's service.
		if i > 0 && r.Intn(5) == 0 {
			n.EmailProvider = fmt.Sprintf("r%03d", r.Intn(i))
		}
		nodes = append(nodes, n)
	}
	// Couple size 3 matches the widest random path (3 factors), so the
	// backward search sees every provider combination the closure can
	// exploit. With the default pair-only enumeration the closure is
	// strictly more complete (see TestTripleCouples in tdg) and the
	// agreement property below would not hold.
	return tdg.Build(nodes, ecosys.BaselineAttacker(), tdg.WithMaxCoupleSize(3))
}

// Property: the closure compromises exactly the accounts the backward
// search can plan for, on arbitrary random ecosystems.
func TestPropertyClosurePlanAgreement(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		g, err := randomGraph(seed, int(sz%16)+2)
		if err != nil {
			return false
		}
		res, err := ForwardClosure(g, nil)
		if err != nil {
			return false
		}
		for _, id := range g.Nodes() {
			// Depth bound generous enough for any chain in the graph.
			_, planErr := FindPlan(g, id, g.Len()+1)
			_, fell := res.Compromised[id]
			if fell != (planErr == nil) {
				t.Logf("seed=%d sz=%d node=%s fell=%v planErr=%v", seed, sz, id, fell, planErr)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: indexed and rescan closures agree on random ecosystems.
func TestPropertyIndexedClosureEquivalence(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		g, err := randomGraph(seed, int(sz%32)+2)
		if err != nil {
			return false
		}
		a, err := ForwardClosure(g, nil)
		if err != nil {
			return false
		}
		b, err := ForwardClosureIndexed(g, nil)
		if err != nil {
			return false
		}
		if len(a.Compromised) != len(b.Compromised) || len(a.Survivors) != len(b.Survivors) {
			return false
		}
		for id, ca := range a.Compromised {
			if cb, ok := b.Compromised[id]; !ok || cb.Round != ca.Round {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: AccountDepths equals the closure round for every
// compromised account and Unreachable for every survivor.
func TestPropertyDepthsMatchClosureRounds(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		g, err := randomGraph(seed, int(sz%16)+2)
		if err != nil {
			return false
		}
		res, err := ForwardClosure(g, nil)
		if err != nil {
			return false
		}
		depths := AccountDepths(g)
		for _, id := range g.Nodes() {
			c, fell := res.Compromised[id]
			if fell && depths[id] != c.Round {
				return false
			}
			if !fell && depths[id] != Unreachable {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: fringe nodes are exactly the depth-1 accounts.
func TestPropertyFringeIsDepthOne(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		g, err := randomGraph(seed, int(sz%32)+2)
		if err != nil {
			return false
		}
		depths := AccountDepths(g)
		for _, id := range g.Nodes() {
			if g.IsFringe(id) != (depths[id] == 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: plans are well-formed — every parent precedes its child
// and the last step is the target.
func TestPropertyPlansWellFormed(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		g, err := randomGraph(seed, int(sz%16)+2)
		if err != nil {
			return false
		}
		for _, id := range g.Nodes() {
			plan, err := FindPlan(g, id, 5)
			if err != nil {
				continue
			}
			if plan.Steps[len(plan.Steps)-1].Account != id {
				return false
			}
			pos := make(map[ecosys.AccountID]int)
			for i, s := range plan.Steps {
				if _, dup := pos[s.Account]; dup {
					return false // an account compromised twice
				}
				pos[s.Account] = i
				for _, parent := range s.Parents {
					pi, ok := pos[parent]
					if !ok || pi >= i {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: growing the attacker profile never shrinks the victim set
// (closure monotonicity in AP).
func TestPropertyClosureMonotoneInProfile(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		size := int(sz%24) + 2
		r := rand.New(rand.NewSource(seed))
		_ = r
		g, err := randomGraph(seed, size)
		if err != nil {
			return false
		}
		base, err := ForwardClosure(g, nil)
		if err != nil {
			return false
		}
		// Rebuild the same nodes with a richer profile.
		var nodes []tdg.Node
		for _, id := range g.Nodes() {
			n, _ := g.Node(id)
			nodes = append(nodes, *n)
		}
		richer := ecosys.BaselineAttacker()
		richer.KnownInfo.Add(ecosys.InfoCitizenID)
		g2, err := tdg.Build(nodes, richer)
		if err != nil {
			return false
		}
		more, err := ForwardClosure(g2, nil)
		if err != nil {
			return false
		}
		if more.VictimCount() < base.VictimCount() {
			return false
		}
		for id := range base.Compromised {
			if _, still := more.Compromised[id]; !still {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
