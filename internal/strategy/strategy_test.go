package strategy

import (
	"errors"
	"strings"
	"testing"

	"github.com/actfort/actfort/internal/ecosys"
	"github.com/actfort/actfort/internal/tdg"
)

func aid(s string, p ecosys.Platform) ecosys.AccountID {
	return ecosys.AccountID{Service: s, Platform: p}
}

// fixture: gmail and ctrip are fringe; paypal needs gmail; alipay
// needs ctrip; bank needs {Name+CID+BN} = couple {ctrip, shop};
// fortress is U2F-only; vault needs paypal's exposure (depth 3).
func fixtureGraph(t *testing.T) *tdg.Graph {
	t.Helper()
	web := ecosys.PlatformWeb
	nodes := []tdg.Node{
		{
			ID: aid("gmail", web), Domain: ecosys.DomainEmail,
			Paths: []ecosys.AuthPath{
				{ID: "reset-1", Purpose: ecosys.PurposeReset, Factors: []ecosys.FactorKind{ecosys.FactorCellphone, ecosys.FactorSMSCode}},
			},
			Exposes: ecosys.NewInfoSet(ecosys.InfoEmailAddress, ecosys.InfoAcquaintance),
		},
		{
			ID: aid("ctrip", web), Domain: ecosys.DomainTravel,
			Paths: []ecosys.AuthPath{
				{ID: "signin-1", Purpose: ecosys.PurposeSignIn, Factors: []ecosys.FactorKind{ecosys.FactorCellphone, ecosys.FactorSMSCode}},
			},
			Exposes: ecosys.NewInfoSet(ecosys.InfoCitizenID, ecosys.InfoRealName),
		},
		{
			ID: aid("shop", web), Domain: ecosys.DomainECommerce,
			Paths: []ecosys.AuthPath{
				{ID: "signin-1", Purpose: ecosys.PurposeSignIn, Factors: []ecosys.FactorKind{ecosys.FactorSMSCode}},
			},
			Exposes: ecosys.NewInfoSet(ecosys.InfoBankcard),
		},
		{
			ID: aid("paypal", web), Domain: ecosys.DomainFintech,
			Paths: []ecosys.AuthPath{
				{ID: "reset-1", Purpose: ecosys.PurposeReset, Factors: []ecosys.FactorKind{ecosys.FactorSMSCode, ecosys.FactorEmailCode}},
			},
			Exposes:       ecosys.NewInfoSet(ecosys.InfoAddress, ecosys.InfoUserID),
			EmailProvider: "gmail",
		},
		{
			ID: aid("alipay", web), Domain: ecosys.DomainFintech,
			Paths: []ecosys.AuthPath{
				{ID: "reset-1", Purpose: ecosys.PurposeReset, Factors: []ecosys.FactorKind{ecosys.FactorSMSCode, ecosys.FactorCitizenID}},
			},
			Exposes: ecosys.NewInfoSet(ecosys.InfoBankcard, ecosys.InfoRealName),
		},
		{
			ID: aid("bank", web), Domain: ecosys.DomainFintech,
			Paths: []ecosys.AuthPath{
				{ID: "reset-1", Purpose: ecosys.PurposeReset, Factors: []ecosys.FactorKind{ecosys.FactorRealName, ecosys.FactorCitizenID, ecosys.FactorBankcard}},
			},
		},
		{
			ID: aid("vault", web), Domain: ecosys.DomainCloud,
			Paths: []ecosys.AuthPath{
				{ID: "reset-1", Purpose: ecosys.PurposeReset, Factors: []ecosys.FactorKind{ecosys.FactorSMSCode, ecosys.FactorUserID}},
			},
		},
		{
			ID: aid("fortress", web), Domain: ecosys.DomainFintech,
			Paths: []ecosys.AuthPath{
				{ID: "signin-1", Purpose: ecosys.PurposeSignIn, Factors: []ecosys.FactorKind{ecosys.FactorU2F}},
			},
		},
	}
	g, err := tdg.Build(nodes, ecosys.BaselineAttacker())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestForwardClosureFromScratch(t *testing.T) {
	g := fixtureGraph(t)
	res, err := ForwardClosure(g, nil)
	if err != nil {
		t.Fatal(err)
	}

	wantRound := map[string]int{
		"gmail/web": 1, "ctrip/web": 1, "shop/web": 1,
		"paypal/web": 2, "alipay/web": 2, "bank/web": 2,
		"vault/web": 3, // needs paypal's exposed user ID
	}
	for name, round := range wantRound {
		var found *Compromise
		for id, c := range res.Compromised {
			if id.String() == name {
				cc := c
				found = &cc
			}
		}
		if found == nil {
			t.Errorf("%s never compromised", name)
			continue
		}
		if found.Round != round {
			t.Errorf("%s fell in round %d want %d", name, found.Round, round)
		}
	}
	if len(res.Survivors) != 1 || res.Survivors[0].Service != "fortress" {
		t.Errorf("survivors = %v want [fortress/web]", res.Survivors)
	}
	if res.VictimCount() != 7 {
		t.Errorf("VictimCount = %d want 7", res.VictimCount())
	}
	if len(res.Rounds) != 3 {
		t.Errorf("rounds = %d want 3", len(res.Rounds))
	}
	// bank needed Name+CID+BN from two sources: couple flagged.
	for id, c := range res.Compromised {
		if id.Service == "bank" && !c.UsedCouple {
			t.Error("bank compromise should be flagged UsedCouple")
		}
		if id.Service == "alipay" && c.UsedCouple {
			t.Error("alipay needed only citizen ID; not a couple")
		}
	}
	// IAD accumulated the bankcard exposure.
	if !res.FinalInfo.Has(ecosys.InfoBankcard) {
		t.Error("final IAD missing bankcard info")
	}
}

func TestForwardClosureWithInitialSet(t *testing.T) {
	g := fixtureGraph(t)
	// Handing the attacker a compromised paypal up front short-cuts
	// vault to round 1.
	res, err := ForwardClosure(g, []ecosys.AccountID{aid("paypal", ecosys.PlatformWeb)})
	if err != nil {
		t.Fatal(err)
	}
	if c := res.Compromised[aid("paypal", ecosys.PlatformWeb)]; c.Round != 0 {
		t.Errorf("initial account round = %d want 0", c.Round)
	}
	if c := res.Compromised[aid("vault", ecosys.PlatformWeb)]; c.Round != 1 {
		t.Errorf("vault round = %d want 1", c.Round)
	}
	if _, err := ForwardClosure(g, []ecosys.AccountID{aid("nope", ecosys.PlatformWeb)}); err == nil {
		t.Error("unknown initial account accepted")
	}
}

func TestLayersAggregation(t *testing.T) {
	g := fixtureGraph(t)
	res, err := ForwardClosure(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := Layers(res, g.Len())
	if st.Direct != 3 {
		t.Errorf("Direct = %d want 3", st.Direct)
	}
	if st.OneMiddle != 3 {
		t.Errorf("OneMiddle = %d want 3", st.OneMiddle)
	}
	if st.TwoLayerFull != 1 {
		t.Errorf("TwoLayerFull = %d want 1", st.TwoLayerFull)
	}
	if st.WithCouples != 1 {
		t.Errorf("WithCouples = %d want 1", st.WithCouples)
	}
	if st.Uncompromised != 1 {
		t.Errorf("Uncompromised = %d want 1", st.Uncompromised)
	}
	if got := st.Pct(st.Direct); got < 37.4 || got > 37.6 {
		t.Errorf("Direct pct = %.2f want 37.5", got)
	}
	if (LayerStats{}).Pct(3) != 0 {
		t.Error("Pct on empty stats should be 0")
	}
}

func TestSortedVictimsStable(t *testing.T) {
	g := fixtureGraph(t)
	res, err := ForwardClosure(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	v := res.SortedVictims()
	for i := 1; i < len(v); i++ {
		ri, rj := res.Compromised[v[i-1]].Round, res.Compromised[v[i]].Round
		if ri > rj {
			t.Fatalf("victims not ordered by round: %v", v)
		}
		if ri == rj && v[i-1].String() > v[i].String() {
			t.Fatalf("victims not ordered by name within round: %v", v)
		}
	}
}

func TestFindPlanDirect(t *testing.T) {
	g := fixtureGraph(t)
	plan, err := FindPlan(g, aid("gmail", ecosys.PlatformWeb), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 1 || plan.Steps[0].PathID != "reset-1" || len(plan.Steps[0].Parents) != 0 {
		t.Errorf("plan = %+v", plan)
	}
	if plan.Depth() != 1 {
		t.Errorf("Depth = %d want 1", plan.Depth())
	}
}

func TestFindPlanTwoHop(t *testing.T) {
	g := fixtureGraph(t)
	plan, err := FindPlan(g, aid("paypal", ecosys.PlatformWeb), 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.String() != "gmail/web -> paypal/web" {
		t.Errorf("plan = %s", plan)
	}
	if plan.Depth() != 2 {
		t.Errorf("Depth = %d want 2", plan.Depth())
	}
}

func TestFindPlanCouple(t *testing.T) {
	g := fixtureGraph(t)
	plan, err := FindPlan(g, aid("bank", ecosys.PlatformWeb), 0)
	if err != nil {
		t.Fatal(err)
	}
	last := plan.Steps[len(plan.Steps)-1]
	if last.Account.Service != "bank" || len(last.Parents) < 2 {
		t.Errorf("bank step = %+v", last)
	}
	// All parents must appear earlier in the plan.
	position := make(map[ecosys.AccountID]int)
	for i, s := range plan.Steps {
		position[s.Account] = i
	}
	for i, s := range plan.Steps {
		for _, parent := range s.Parents {
			pi, ok := position[parent]
			if !ok || pi >= i {
				t.Errorf("step %d (%s) depends on %s which is not earlier", i, s.Account, parent)
			}
		}
	}
}

func TestFindPlanUnreachable(t *testing.T) {
	g := fixtureGraph(t)
	if _, err := FindPlan(g, aid("fortress", ecosys.PlatformWeb), 0); !errors.Is(err, ErrNoPlan) {
		t.Errorf("fortress err = %v want ErrNoPlan", err)
	}
	if _, err := FindPlan(g, aid("ghost", ecosys.PlatformWeb), 0); !errors.Is(err, ErrUnknownTarget) {
		t.Errorf("unknown target err = %v", err)
	}
}

func TestFindPlanDepthBound(t *testing.T) {
	g := fixtureGraph(t)
	// vault requires paypal (depth 3); a depth bound of 2 must fail.
	if _, err := FindPlan(g, aid("vault", ecosys.PlatformWeb), 2); !errors.Is(err, ErrNoPlan) {
		t.Errorf("depth-bounded err = %v want ErrNoPlan", err)
	}
	plan, err := FindPlan(g, aid("vault", ecosys.PlatformWeb), 3)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Depth() != 3 {
		t.Errorf("vault Depth = %d want 3", plan.Depth())
	}
	if !strings.Contains(plan.String(), "gmail/web") || !strings.Contains(plan.String(), "paypal/web") {
		t.Errorf("vault plan = %s", plan)
	}
}

func TestPlanAgreesWithForwardClosure(t *testing.T) {
	// Consistency: every account the closure compromises has a plan,
	// and every survivor has none.
	g := fixtureGraph(t)
	res, err := ForwardClosure(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range g.Nodes() {
		_, planErr := FindPlan(g, id, 0)
		_, fell := res.Compromised[id]
		if fell && planErr != nil {
			t.Errorf("%s compromised by closure but FindPlan failed: %v", id, planErr)
		}
		if !fell && planErr == nil {
			t.Errorf("%s survived closure but FindPlan succeeded", id)
		}
	}
}

func TestCycleTermination(t *testing.T) {
	// a and b expose each other's missing factor but neither is
	// fringe: the search must terminate with ErrNoPlan.
	web := ecosys.PlatformWeb
	nodes := []tdg.Node{
		{
			ID:      aid("a", web),
			Paths:   []ecosys.AuthPath{{ID: "r", Purpose: ecosys.PurposeReset, Factors: []ecosys.FactorKind{ecosys.FactorSMSCode, ecosys.FactorRealName}}},
			Exposes: ecosys.NewInfoSet(ecosys.InfoCitizenID),
		},
		{
			ID:      aid("b", web),
			Paths:   []ecosys.AuthPath{{ID: "r", Purpose: ecosys.PurposeReset, Factors: []ecosys.FactorKind{ecosys.FactorSMSCode, ecosys.FactorCitizenID}}},
			Exposes: ecosys.NewInfoSet(ecosys.InfoRealName),
		},
	}
	g, err := tdg.Build(nodes, ecosys.BaselineAttacker())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FindPlan(g, aid("a", web), 0); !errors.Is(err, ErrNoPlan) {
		t.Errorf("cyclic graph err = %v want ErrNoPlan", err)
	}
	// And the closure agrees: nothing falls.
	res, err := ForwardClosure(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.VictimCount() != 0 {
		t.Errorf("cyclic closure compromised %d accounts", res.VictimCount())
	}
}

func TestFindPlansDiversity(t *testing.T) {
	g := fixtureGraph(t)
	plans, err := FindPlans(g, aid("bank", ecosys.PlatformWeb), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) == 0 {
		t.Fatal("no plans")
	}
	seen := make(map[string]bool)
	for _, p := range plans {
		if seen[p.String()] {
			t.Errorf("duplicate plan %s", p)
		}
		seen[p.String()] = true
		if p.Target.Service != "bank" {
			t.Errorf("plan target = %v", p.Target)
		}
	}
}

func BenchmarkForwardClosure(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ForwardClosure(g, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFindPlan(b *testing.B) {
	g := benchGraph(b)
	target := aid("svc-090", ecosys.PlatformWeb)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FindPlan(g, target, 0); err != nil && !errors.Is(err, ErrNoPlan) {
			b.Fatal(err)
		}
	}
}

// benchGraph builds a 100-node synthetic layered graph.
func benchGraph(tb testing.TB) *tdg.Graph {
	tb.Helper()
	web := ecosys.PlatformWeb
	var nodes []tdg.Node
	for i := 0; i < 100; i++ {
		name := "svc-0" + string(rune('0'+i/10%10)) + string(rune('0'+i%10))
		n := tdg.Node{ID: aid(name, web)}
		switch i % 4 {
		case 0: // fringe exposing identity info
			n.Paths = []ecosys.AuthPath{{ID: "r", Purpose: ecosys.PurposeReset,
				Factors: []ecosys.FactorKind{ecosys.FactorCellphone, ecosys.FactorSMSCode}}}
			n.Exposes = ecosys.NewInfoSet(ecosys.InfoRealName, ecosys.InfoCitizenID)
		case 1:
			n.Paths = []ecosys.AuthPath{{ID: "r", Purpose: ecosys.PurposeReset,
				Factors: []ecosys.FactorKind{ecosys.FactorSMSCode, ecosys.FactorCitizenID}}}
			n.Exposes = ecosys.NewInfoSet(ecosys.InfoBankcard)
		case 2:
			n.Paths = []ecosys.AuthPath{{ID: "r", Purpose: ecosys.PurposeReset,
				Factors: []ecosys.FactorKind{ecosys.FactorRealName, ecosys.FactorBankcard}}}
			n.Exposes = ecosys.NewInfoSet(ecosys.InfoAddress)
		default:
			n.Paths = []ecosys.AuthPath{{ID: "s", Purpose: ecosys.PurposeSignIn,
				Factors: []ecosys.FactorKind{ecosys.FactorU2F}}}
		}
		nodes = append(nodes, n)
	}
	g, err := tdg.Build(nodes, ecosys.BaselineAttacker())
	if err != nil {
		tb.Fatal(err)
	}
	return g
}
