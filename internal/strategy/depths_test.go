package strategy

import (
	"testing"

	"github.com/actfort/actfort/internal/ecosys"
	"github.com/actfort/actfort/internal/tdg"
)

func TestAccountDepths(t *testing.T) {
	g := fixtureGraph(t)
	depths := AccountDepths(g)
	want := map[string]int{
		"gmail/web": 1, "ctrip/web": 1, "shop/web": 1,
		"paypal/web": 2, "alipay/web": 2, "bank/web": 2,
		"vault/web":    3,
		"fortress/web": Unreachable,
	}
	for _, id := range g.Nodes() {
		if got := depths[id]; got != want[id.String()] {
			t.Errorf("depth(%s) = %d want %d", id, got, want[id.String()])
		}
	}
}

func TestAccountDepthsAgreeWithClosureRounds(t *testing.T) {
	g := fixtureGraph(t)
	depths := AccountDepths(g)
	res, err := ForwardClosure(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range g.Nodes() {
		c, fell := res.Compromised[id]
		if fell && depths[id] != c.Round {
			t.Errorf("%s: depth %d vs closure round %d", id, depths[id], c.Round)
		}
		if !fell && depths[id] != Unreachable {
			t.Errorf("%s survived closure but depth = %d", id, depths[id])
		}
	}
}

func TestPathLayersBasic(t *testing.T) {
	g := fixtureGraph(t)
	st := PathLayers(g)
	if st.Total != 8 {
		t.Fatalf("Total = %d", st.Total)
	}
	if st.Direct != 3 {
		t.Errorf("Direct = %d want 3", st.Direct)
	}
	if st.OneMiddle != 3 { // paypal, alipay, and bank's depth-2 couple
		t.Errorf("OneMiddle = %d want 3", st.OneMiddle)
	}
	if st.Uncompromisable != 1 {
		t.Errorf("Uncompromisable = %d want 1", st.Uncompromisable)
	}
	if got := st.Pct(st.Direct); got < 37.4 || got > 37.6 {
		t.Errorf("Pct = %.2f", got)
	}
	if (DepthStats{}).Pct(1) != 0 {
		t.Error("empty Pct should be 0")
	}
}

// Overlapping semantics: an account that is both directly
// compromisable AND has an info-path must count in both categories.
func TestPathLayersOverlap(t *testing.T) {
	web := ecosys.PlatformWeb
	nodes := []tdg.Node{
		{
			ID: aid("multi", web),
			Paths: []ecosys.AuthPath{
				{ID: "r1", Purpose: ecosys.PurposeReset, Factors: []ecosys.FactorKind{ecosys.FactorCellphone, ecosys.FactorSMSCode}},
				{ID: "r2", Purpose: ecosys.PurposeReset, Factors: []ecosys.FactorKind{ecosys.FactorSMSCode, ecosys.FactorCitizenID}},
			},
		},
		{
			ID:      aid("leaky", web),
			Paths:   []ecosys.AuthPath{{ID: "s", Purpose: ecosys.PurposeSignIn, Factors: []ecosys.FactorKind{ecosys.FactorSMSCode}}},
			Exposes: ecosys.NewInfoSet(ecosys.InfoCitizenID),
		},
	}
	g, err := tdg.Build(nodes, ecosys.BaselineAttacker())
	if err != nil {
		t.Fatal(err)
	}
	st := PathLayers(g)
	if st.Direct != 2 {
		t.Errorf("Direct = %d want 2", st.Direct)
	}
	if st.OneMiddle != 1 {
		t.Errorf("OneMiddle = %d want 1 (multi counts in both)", st.OneMiddle)
	}
}

// Depth-3 classification: full-capacity route vs couple route.
func TestPathLayersDepth3Classification(t *testing.T) {
	web := ecosys.PlatformWeb
	nodes := []tdg.Node{
		// Layer 1: fringe exposing citizen ID.
		{
			ID:      aid("l1", web),
			Paths:   []ecosys.AuthPath{{ID: "s", Purpose: ecosys.PurposeSignIn, Factors: []ecosys.FactorKind{ecosys.FactorSMSCode}}},
			Exposes: ecosys.NewInfoSet(ecosys.InfoCitizenID, ecosys.InfoRealName),
		},
		// Layer 2: needs CID; exposes bankcard.
		{
			ID:      aid("l2", web),
			Paths:   []ecosys.AuthPath{{ID: "r", Purpose: ecosys.PurposeReset, Factors: []ecosys.FactorKind{ecosys.FactorSMSCode, ecosys.FactorCitizenID}}},
			Exposes: ecosys.NewInfoSet(ecosys.InfoBankcard),
		},
		// Layer 3 full: needs BN only (l2 alone covers it).
		{
			ID:    aid("l3full", web),
			Paths: []ecosys.AuthPath{{ID: "r", Purpose: ecosys.PurposeReset, Factors: []ecosys.FactorKind{ecosys.FactorSMSCode, ecosys.FactorBankcard}}},
		},
		// Layer 3 couple: needs Name+BN (l1 gives Name, l2 gives BN).
		{
			ID:    aid("l3couple", web),
			Paths: []ecosys.AuthPath{{ID: "r", Purpose: ecosys.PurposeReset, Factors: []ecosys.FactorKind{ecosys.FactorRealName, ecosys.FactorBankcard}}},
		},
	}
	g, err := tdg.Build(nodes, ecosys.BaselineAttacker())
	if err != nil {
		t.Fatal(err)
	}
	depths := AccountDepths(g)
	if depths[aid("l3full", web)] != 3 || depths[aid("l3couple", web)] != 3 {
		t.Fatalf("depths = %v", depths)
	}
	st := PathLayers(g)
	if st.TwoLayerFull != 1 {
		t.Errorf("TwoLayerFull = %d want 1", st.TwoLayerFull)
	}
	if st.TwoLayerCouple != 1 {
		t.Errorf("TwoLayerCouple = %d want 1", st.TwoLayerCouple)
	}
}

func TestAccountDepthsCycleSafe(t *testing.T) {
	web := ecosys.PlatformWeb
	nodes := []tdg.Node{
		{
			ID:      aid("a", web),
			Paths:   []ecosys.AuthPath{{ID: "r", Purpose: ecosys.PurposeReset, Factors: []ecosys.FactorKind{ecosys.FactorSMSCode, ecosys.FactorRealName}}},
			Exposes: ecosys.NewInfoSet(ecosys.InfoCitizenID),
		},
		{
			ID:      aid("b", web),
			Paths:   []ecosys.AuthPath{{ID: "r", Purpose: ecosys.PurposeReset, Factors: []ecosys.FactorKind{ecosys.FactorSMSCode, ecosys.FactorCitizenID}}},
			Exposes: ecosys.NewInfoSet(ecosys.InfoRealName),
		},
	}
	g, err := tdg.Build(nodes, ecosys.BaselineAttacker())
	if err != nil {
		t.Fatal(err)
	}
	depths := AccountDepths(g)
	if depths[aid("a", web)] != Unreachable || depths[aid("b", web)] != Unreachable {
		t.Errorf("cyclic depths = %v, want both Unreachable", depths)
	}
}

func BenchmarkPathLayers(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = PathLayers(g)
	}
}
