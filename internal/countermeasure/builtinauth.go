// Package countermeasure implements §VII.A: the sensitive-information
// protection principles (unified masking, hardened email providers)
// and the Fig 8 built-in authentication service — an OS-level push
// channel that replaces GSM SMS delivery with an authenticated,
// encrypted flow the radio attacker never sees — plus the before/after
// evaluation that re-runs the ActFort measurement on the fortified
// ecosystem.
//
// Fortifications are exposed as a named Policy registry over catalog
// rewrites, with one invariant campaign sweeps depend on: Apply never
// mutates its input catalog (every rewriter works on a deep clone), so
// N scenarios sharing one population can each compile their own
// fortified attack plan while before/after comparisons stay valid.
package countermeasure

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
)

// The Fig 8 message flow:
//
//	① Register        — device provisions a key with the OS auth server
//	② Login Request   — a service asks the server to authenticate a user
//	③ Authorize       — the server pushes an encrypted prompt to the device
//	④ Authenticate    — the user approves on the device
//	⑤ Verification    — the server hands the service a one-time signal
//
// Nothing here touches the telecom package: the channel is modeled as
// the mutually authenticated, encrypted session ("Encrypted Code via
// Https") that the paper proposes.

// Errors of the push protocol.
var (
	ErrUnknownDevice   = errors.New("countermeasure: phone has no registered device")
	ErrUnknownRequest  = errors.New("countermeasure: unknown or expired auth request")
	ErrNotAuthorized   = errors.New("countermeasure: request not authorized by the device")
	ErrBadSignal       = errors.New("countermeasure: verification signal invalid or consumed")
	ErrTampered        = errors.New("countermeasure: push payload failed authentication")
	ErrAlreadyRegister = errors.New("countermeasure: phone already registered")
)

// PushPayload is the decrypted prompt shown on the user's device.
type PushPayload struct {
	Service   string `json:"service"`
	RequestID string `json:"request_id"`
}

// encryptedPush is what travels the wire: AES-256-CTR ciphertext with
// an encrypt-then-MAC HMAC-SHA256 tag.
type encryptedPush struct {
	nonce [16]byte
	ct    []byte
	tag   [32]byte
}

// AuthServer is the OS provider's authentication server.
type AuthServer struct {
	mu      sync.Mutex
	devices map[string]*Device // by phone
	pending map[string]*pendingAuth
	signals map[string]signalRecord
}

type pendingAuth struct {
	service    string
	phone      string
	authorized bool
}

type signalRecord struct {
	service string
	phone   string
	used    bool
}

// NewAuthServer builds an empty server.
func NewAuthServer() *AuthServer {
	return &AuthServer{
		devices: make(map[string]*Device),
		pending: make(map[string]*pendingAuth),
		signals: make(map[string]signalRecord),
	}
}

// Device is the user's handset running the built-in authenticator.
type Device struct {
	phone string
	key   [32]byte

	mu    sync.Mutex
	inbox []encryptedPush
}

// Register provisions a device for a phone number (step ①). The key
// exchange happens over the secure provisioning channel, not SMS.
func (s *AuthServer) Register(phone string) (*Device, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.devices[phone]; dup {
		return nil, fmt.Errorf("%w: %s", ErrAlreadyRegister, phone)
	}
	d := &Device{phone: phone}
	if _, err := rand.Read(d.key[:]); err != nil {
		return nil, err
	}
	s.devices[phone] = d
	return d, nil
}

// LoginRequest starts an authentication for (service, phone): the
// server pushes an encrypted prompt to the registered device (steps
// ②③) and returns the request ID the service will later query.
func (s *AuthServer) LoginRequest(service, phone string) (string, error) {
	s.mu.Lock()
	dev, ok := s.devices[phone]
	if !ok {
		s.mu.Unlock()
		return "", fmt.Errorf("%w: %s", ErrUnknownDevice, phone)
	}
	id, err := randomToken()
	if err != nil {
		s.mu.Unlock()
		return "", err
	}
	s.pending[id] = &pendingAuth{service: service, phone: phone}
	s.mu.Unlock()

	payload, err := json.Marshal(PushPayload{Service: service, RequestID: id})
	if err != nil {
		return "", err
	}
	push, err := seal(dev.key, payload)
	if err != nil {
		return "", err
	}
	dev.mu.Lock()
	dev.inbox = append(dev.inbox, push)
	dev.mu.Unlock()
	return id, nil
}

// Prompts decrypts and authenticates the device's pending pushes
// (step ④'s display). Tampered payloads are reported, not shown.
func (d *Device) Prompts() ([]PushPayload, error) {
	d.mu.Lock()
	pushes := append([]encryptedPush(nil), d.inbox...)
	d.mu.Unlock()
	out := make([]PushPayload, 0, len(pushes))
	for _, p := range pushes {
		plain, err := open(d.key, p)
		if err != nil {
			return nil, err
		}
		var pp PushPayload
		if err := json.Unmarshal(plain, &pp); err != nil {
			return nil, err
		}
		out = append(out, pp)
	}
	return out, nil
}

// Authorize approves a request on the device (step ④).
func (d *Device) Authorize(s *AuthServer, requestID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pending[requestID]
	if !ok || p.phone != d.phone {
		return ErrUnknownRequest
	}
	p.authorized = true
	return nil
}

// Signal exchanges an authorized request for a one-time verification
// signal the service accepts (step ⑤).
func (s *AuthServer) Signal(requestID string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pending[requestID]
	if !ok {
		return "", ErrUnknownRequest
	}
	if !p.authorized {
		return "", ErrNotAuthorized
	}
	delete(s.pending, requestID)
	token, err := randomToken()
	if err != nil {
		return "", err
	}
	s.signals[token] = signalRecord{service: p.service, phone: p.phone}
	return token, nil
}

// VerifySignal consumes a verification signal; it is valid exactly
// once and only for the (service, phone) pair it was minted for. This
// is the services.PushVerifier the hardened platform plugs in.
func (s *AuthServer) VerifySignal(service, phone, token string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.signals[token]
	if !ok || rec.used || rec.service != service || rec.phone != phone {
		return false
	}
	rec.used = true
	s.signals[token] = rec
	return true
}

// --- authenticated encryption (encrypt-then-MAC) ---

func seal(key [32]byte, plaintext []byte) (encryptedPush, error) {
	var p encryptedPush
	if _, err := rand.Read(p.nonce[:]); err != nil {
		return p, err
	}
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return p, err
	}
	p.ct = make([]byte, len(plaintext))
	cipher.NewCTR(block, p.nonce[:]).XORKeyStream(p.ct, plaintext)
	mac := hmac.New(sha256.New, key[:])
	mac.Write(p.nonce[:])
	mac.Write(p.ct)
	copy(p.tag[:], mac.Sum(nil))
	return p, nil
}

func open(key [32]byte, p encryptedPush) ([]byte, error) {
	mac := hmac.New(sha256.New, key[:])
	mac.Write(p.nonce[:])
	mac.Write(p.ct)
	if !hmac.Equal(mac.Sum(nil), p.tag[:]) {
		return nil, ErrTampered
	}
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(p.ct))
	cipher.NewCTR(block, p.nonce[:]).XORKeyStream(out, p.ct)
	return out, nil
}

func randomToken() (string, error) {
	var raw [16]byte
	if _, err := rand.Read(raw[:]); err != nil {
		return "", err
	}
	return hex.EncodeToString(raw[:]), nil
}
