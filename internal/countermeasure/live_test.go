package countermeasure

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/actfort/actfort/internal/a51"
	"github.com/actfort/actfort/internal/attack"
	"github.com/actfort/actfort/internal/dataset"
	"github.com/actfort/actfort/internal/ecosys"
	"github.com/actfort/actfort/internal/email"
	"github.com/actfort/actfort/internal/identity"
	"github.com/actfort/actfort/internal/services"
	"github.com/actfort/actfort/internal/sniffer"
	"github.com/actfort/actfort/internal/strategy"
	"github.com/actfort/actfort/internal/telecom"
)

// The live E13 experiment: launch a FORTIFIED gmail on the service
// platform with the built-in auth server wired in. The paper's Case II
// first step (reset gmail with phone + intercepted SMS) must fail —
// there is no SMS to intercept — while the legitimate user's push
// flow succeeds.
func TestLiveHardenedServiceResistsChainAttack(t *testing.T) {
	baseline, err := dataset.Default()
	if err != nil {
		t.Fatal(err)
	}
	fortified, err := AdoptBuiltinAuth(baseline, "gmail")
	if err != nil {
		t.Fatal(err)
	}

	// Telecom world with an attached victim.
	net := telecom.NewNetwork(telecom.Config{KeySpace: a51.KeySpace{Bits: 8}, Seed: 3})
	cell, err := net.AddCell(telecom.Cell{ID: "c", ARFCNs: []int{512}, Cipher: telecom.CipherA51})
	if err != nil {
		t.Fatal(err)
	}
	persona := identity.NewGenerator(5).Persona(0)
	sub, err := net.Register("imsi-v", persona.Phone)
	if err != nil {
		t.Fatal(err)
	}
	term, err := net.NewTerminal(sub, telecom.RATGSM)
	if err != nil {
		t.Fatal(err)
	}
	if err := term.Attach(cell); err != nil {
		t.Fatal(err)
	}

	// OS auth server + the victim's registered device.
	authServer := NewAuthServer()
	device, err := authServer.Register(persona.Phone)
	if err != nil {
		t.Fatal(err)
	}

	platform, err := services.NewPlatform(services.Config{
		Catalog: fortified,
		Net:     net,
		Mail:    email.NewServer(),
		Push:    authServer.VerifySignal,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer platform.Close()
	if _, err := platform.LaunchAll("gmail"); err != nil {
		t.Fatal(err)
	}
	victim := services.User{Persona: persona, Password: "pw"}
	if err := platform.Provision(victim); err != nil {
		t.Fatal(err)
	}

	// Attacker rig: sniffer tuned, dossier with the phone number.
	rig := sniffer.New(net, sniffer.Config{})
	defer rig.Stop()
	if err := rig.Tune(512); err != nil {
		t.Fatal(err)
	}
	exec := &attack.Executor{
		Platform:  platform,
		Intercept: &attack.SnifferInterceptor{Sniffer: rig},
		Know:      attack.NewKnowledge(persona.Phone),
	}

	// The old winning move: reset gmail via reset-sms. On the
	// fortified catalog that path now demands the built-in push.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err = exec.Execute(ctx, &strategy.Plan{
		Target: ecosys.AccountID{Service: "gmail", Platform: ecosys.PlatformWeb},
		Steps: []strategy.PlanStep{{
			Account: ecosys.AccountID{Service: "gmail", Platform: ecosys.PlatformWeb},
			PathID:  "reset-sms",
		}},
	})
	if err == nil {
		t.Fatal("chain attack succeeded against the fortified service")
	}
	if !errors.Is(err, attack.ErrMissingFactor) {
		t.Fatalf("err = %v; want ErrMissingFactor (push unsourceable)", err)
	}
	// Nothing OTP-like crossed the air interface.
	if st := rig.Stats(); st.MessagesDecoded != 0 {
		t.Errorf("sniffer decoded %d messages; push must bypass GSM", st.MessagesDecoded)
	}

	// The legitimate user: run the Fig 8 flow and authenticate.
	inst, _ := platform.Instance(ecosys.AccountID{Service: "gmail", Platform: ecosys.PlatformWeb})
	reqID, err := authServer.LoginRequest("gmail", persona.Phone)
	if err != nil {
		t.Fatal(err)
	}
	if err := device.Authorize(authServer, reqID); err != nil {
		t.Fatal(err)
	}
	signal, err := authServer.Signal(reqID)
	if err != nil {
		t.Fatal(err)
	}
	status, token := authenticate(t, inst.URL(), persona.Phone, "reset-sms", map[string]string{
		"cellphone-number": persona.Phone,
		"builtin-push":     signal,
	})
	if status != http.StatusOK || token == "" {
		t.Fatalf("legitimate push login failed: %d", status)
	}
	// The signal is one-time: replaying the same authentication fails.
	status, _ = authenticate(t, inst.URL(), persona.Phone, "reset-sms", map[string]string{
		"cellphone-number": persona.Phone,
		"builtin-push":     signal,
	})
	if status != http.StatusForbidden {
		t.Errorf("signal replay returned %d, want 403", status)
	}
}

// authenticate is a minimal HTTP helper for the hardened-platform test.
func authenticate(t *testing.T, baseURL, phone, path string, factors map[string]string) (int, string) {
	t.Helper()
	body := `{"phone":"` + phone + `","path":"` + path + `","factors":{`
	first := true
	for k, v := range factors {
		if !first {
			body += ","
		}
		first = false
		body += `"` + k + `":"` + v + `"`
	}
	body += "}}"
	resp, err := http.Post(baseURL+"/authenticate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Token string `json:"token"`
	}
	if resp.StatusCode == http.StatusOK {
		buf := make([]byte, 512)
		n, _ := resp.Body.Read(buf)
		s := string(buf[:n])
		if i := strings.Index(s, `"token":"`); i >= 0 {
			rest := s[i+len(`"token":"`):]
			if j := strings.IndexByte(rest, '"'); j > 0 {
				out.Token = rest[:j]
			}
		}
	}
	return resp.StatusCode, out.Token
}
