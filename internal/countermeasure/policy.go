package countermeasure

import (
	"fmt"

	"github.com/actfort/actfort/internal/ecosys"
	"github.com/actfort/actfort/internal/mask"
)

// The three §VII.A policies. Each rewriter returns a NEW catalog; the
// input is never mutated, so before/after comparisons stay valid.

// cloneSpecs deep-copies every service specification (the shared
// ecosys implementation; kept as a local name so every rewriter below
// reads uniformly).
func cloneSpecs(cat *ecosys.Catalog) []*ecosys.ServiceSpec {
	return cat.CloneSpecs()
}

// ApplyUnifiedMasking rewrites every citizen-ID and bankcard exposure
// to the unified standard ("Cover unified digits on SSN and bankcard
// numbers"): all services show the same window, so the combining
// attack recovers nothing beyond a single view.
func ApplyUnifiedMasking(cat *ecosys.Catalog, std mask.UnifiedStandard) (*ecosys.Catalog, error) {
	specs := cloneSpecs(cat)
	for _, svc := range specs {
		for i := range svc.Presences {
			pr := &svc.Presences[i]
			for j := range pr.Exposes {
				if spec, governed := std.SpecFor(pr.Exposes[j].Field); governed {
					pr.Exposes[j].Mask = spec
				}
			}
		}
	}
	return ecosys.NewCatalog(specs)
}

// HardenEmailProviders upgrades every email-domain presence ("Make
// email service accounts more secure"): SMS-only takeover paths gain a
// built-in-push confirmation, so a phone number plus an intercepted
// code no longer resets the mailbox that gates the rest of the
// ecosystem.
func HardenEmailProviders(cat *ecosys.Catalog) (*ecosys.Catalog, error) {
	specs := cloneSpecs(cat)
	for _, svc := range specs {
		if svc.Domain != ecosys.DomainEmail {
			continue
		}
		for i := range svc.Presences {
			pr := &svc.Presences[i]
			for j := range pr.Paths {
				p := &pr.Paths[j]
				if p.Purpose != ecosys.PurposeSignIn && p.Purpose != ecosys.PurposeReset {
					continue
				}
				if p.SMSOnly() {
					p.Factors = append(p.Factors, ecosys.FactorBuiltinPush)
				}
			}
		}
	}
	return ecosys.NewCatalog(specs)
}

// AdoptBuiltinAuth replaces SMS codes with the built-in push factor on
// the named services (every service when names is empty) — the Fig 8
// migration: authentication prompts stop traversing GSM entirely.
func AdoptBuiltinAuth(cat *ecosys.Catalog, names ...string) (*ecosys.Catalog, error) {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		if _, ok := cat.ByName(n); !ok {
			return nil, fmt.Errorf("countermeasure: unknown service %q", n)
		}
		want[n] = true
	}
	specs := cloneSpecs(cat)
	for _, svc := range specs {
		if len(want) > 0 && !want[svc.Name] {
			continue
		}
		for i := range svc.Presences {
			pr := &svc.Presences[i]
			for j := range pr.Paths {
				p := &pr.Paths[j]
				for k := range p.Factors {
					if p.Factors[k] == ecosys.FactorSMSCode {
						p.Factors[k] = ecosys.FactorBuiltinPush
					}
				}
			}
		}
	}
	return ecosys.NewCatalog(specs)
}

// FortifyAll applies the full §VII.A program: unified masking,
// hardened email providers, and built-in authentication everywhere.
func FortifyAll(cat *ecosys.Catalog) (*ecosys.Catalog, error) {
	step1, err := ApplyUnifiedMasking(cat, mask.DefaultUnifiedStandard())
	if err != nil {
		return nil, err
	}
	step2, err := HardenEmailProviders(step1)
	if err != nil {
		return nil, err
	}
	return AdoptBuiltinAuth(step2)
}
