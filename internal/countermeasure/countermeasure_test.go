package countermeasure

import (
	"errors"
	"testing"

	"github.com/actfort/actfort/internal/dataset"
	"github.com/actfort/actfort/internal/ecosys"
	"github.com/actfort/actfort/internal/mask"
)

// --- built-in authentication protocol (Fig 8) ---

func TestPushFlowEndToEnd(t *testing.T) {
	s := NewAuthServer()
	dev, err := s.Register("+8613800000001")
	if err != nil {
		t.Fatal(err)
	}
	reqID, err := s.LoginRequest("alipay", "+8613800000001")
	if err != nil {
		t.Fatal(err)
	}
	prompts, err := dev.Prompts()
	if err != nil {
		t.Fatal(err)
	}
	if len(prompts) != 1 || prompts[0].Service != "alipay" || prompts[0].RequestID != reqID {
		t.Fatalf("prompts = %+v", prompts)
	}
	if err := dev.Authorize(s, reqID); err != nil {
		t.Fatal(err)
	}
	sig, err := s.Signal(reqID)
	if err != nil {
		t.Fatal(err)
	}
	if !s.VerifySignal("alipay", "+8613800000001", sig) {
		t.Fatal("valid signal rejected")
	}
	// One-time: replay fails.
	if s.VerifySignal("alipay", "+8613800000001", sig) {
		t.Fatal("signal replay accepted")
	}
}

func TestSignalScoping(t *testing.T) {
	s := NewAuthServer()
	dev, _ := s.Register("+861")
	reqID, _ := s.LoginRequest("gmail", "+861")
	if err := dev.Authorize(s, reqID); err != nil {
		t.Fatal(err)
	}
	sig, _ := s.Signal(reqID)
	if s.VerifySignal("paypal", "+861", sig) {
		t.Error("signal accepted for wrong service")
	}
	if s.VerifySignal("gmail", "+862", sig) {
		t.Error("signal accepted for wrong phone")
	}
	if !s.VerifySignal("gmail", "+861", sig) {
		t.Error("correctly scoped signal rejected")
	}
}

func TestUnauthorizedSignalRejected(t *testing.T) {
	s := NewAuthServer()
	if _, err := s.Register("+861"); err != nil {
		t.Fatal(err)
	}
	reqID, _ := s.LoginRequest("gmail", "+861")
	if _, err := s.Signal(reqID); !errors.Is(err, ErrNotAuthorized) {
		t.Errorf("unauthorized signal err = %v", err)
	}
	if _, err := s.Signal("bogus"); !errors.Is(err, ErrUnknownRequest) {
		t.Errorf("bogus request err = %v", err)
	}
}

func TestDeviceBindingEnforced(t *testing.T) {
	s := NewAuthServer()
	devA, _ := s.Register("+861")
	if _, err := s.Register("+861"); !errors.Is(err, ErrAlreadyRegister) {
		t.Errorf("duplicate registration err = %v", err)
	}
	devB, _ := s.Register("+862")
	reqID, _ := s.LoginRequest("gmail", "+861")
	// The wrong device cannot authorize someone else's request.
	if err := devB.Authorize(s, reqID); !errors.Is(err, ErrUnknownRequest) {
		t.Errorf("foreign authorize err = %v", err)
	}
	if err := devA.Authorize(s, reqID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoginRequest("gmail", "+86999"); !errors.Is(err, ErrUnknownDevice) {
		t.Errorf("unknown device err = %v", err)
	}
}

func TestPushTamperDetected(t *testing.T) {
	s := NewAuthServer()
	dev, _ := s.Register("+861")
	if _, err := s.LoginRequest("gmail", "+861"); err != nil {
		t.Fatal(err)
	}
	dev.mu.Lock()
	dev.inbox[0].ct[0] ^= 0xFF // attacker flips ciphertext bits
	dev.mu.Unlock()
	if _, err := dev.Prompts(); !errors.Is(err, ErrTampered) {
		t.Errorf("tampered push err = %v", err)
	}
}

// --- policy rewriters ---

func TestApplyUnifiedMasking(t *testing.T) {
	cat := dataset.MustDefault()
	std := mask.DefaultUnifiedStandard()
	fortified, err := ApplyUnifiedMasking(cat, std)
	if err != nil {
		t.Fatal(err)
	}
	for _, svc := range fortified.Services() {
		for _, pr := range svc.Presences {
			for _, e := range pr.Exposes {
				if spec, governed := std.SpecFor(e.Field); governed && e.Mask != spec {
					t.Fatalf("%s/%v exposes %v with non-standard mask %+v",
						svc.Name, pr.Platform, e.Field, e.Mask)
				}
			}
		}
	}
	// The original catalog is untouched (gome still asymmetric).
	gome, _ := cat.ByName("gome")
	gw, _ := gome.Presence(ecosys.PlatformWeb)
	gm, _ := gome.Presence(ecosys.PlatformMobile)
	ew, _ := gw.Exposure(ecosys.InfoCitizenID)
	em, _ := gm.Exposure(ecosys.InfoCitizenID)
	if ew.Mask == em.Mask {
		t.Error("rewriter mutated the input catalog")
	}
}

func TestUnifiedMaskingBlocksCombining(t *testing.T) {
	cat := dataset.MustDefault()
	fortified, err := ApplyUnifiedMasking(cat, mask.DefaultUnifiedStandard())
	if err != nil {
		t.Fatal(err)
	}
	// Before: gome's two views jointly reveal all 18 digits. After:
	// both views show the same 2 characters.
	secret := "330106198811230417"
	views := func(c *ecosys.Catalog) []string {
		gome, _ := c.ByName("gome")
		var out []string
		for _, pl := range ecosys.AllPlatforms() {
			pr, _ := gome.Presence(pl)
			e, _ := pr.Exposure(ecosys.InfoCitizenID)
			out = append(out, mask.Apply(secret, e.Mask))
		}
		return out
	}
	if _, ok := mask.Complete(views(cat)...); !ok {
		t.Error("baseline gome views should combine to the full ID")
	}
	if merged, ok := mask.Complete(views(fortified)...); ok {
		t.Errorf("unified views still combined to %q", merged)
	}
}

func TestHardenEmailProviders(t *testing.T) {
	cat := dataset.MustDefault()
	fortified, err := HardenEmailProviders(cat)
	if err != nil {
		t.Fatal(err)
	}
	for _, svc := range fortified.Services() {
		if svc.Domain != ecosys.DomainEmail {
			continue
		}
		for _, pr := range svc.Presences {
			if pr.HasSMSOnlyPath() {
				t.Errorf("%s/%v still has an SMS-only path after hardening", svc.Name, pr.Platform)
			}
		}
	}
	// Non-email services untouched.
	ctrip, _ := fortified.ByName("ctrip")
	pr, _ := ctrip.Presence(ecosys.PlatformWeb)
	if !pr.HasSMSOnlyPath() {
		t.Error("email hardening leaked into other domains")
	}
}

func TestAdoptBuiltinAuth(t *testing.T) {
	cat := dataset.MustDefault()
	fortified, err := AdoptBuiltinAuth(cat, "gmail")
	if err != nil {
		t.Fatal(err)
	}
	gmail, _ := fortified.ByName("gmail")
	for _, pr := range gmail.Presences {
		for _, p := range pr.Paths {
			if p.Requires(ecosys.FactorSMSCode) {
				t.Errorf("gmail/%v path %s still uses SMS", pr.Platform, p.ID)
			}
		}
	}
	// Unlisted services keep SMS.
	ctrip, _ := fortified.ByName("ctrip")
	pr, _ := ctrip.Presence(ecosys.PlatformWeb)
	if !pr.HasSMSOnlyPath() {
		t.Error("selective adoption rewrote unlisted service")
	}
	if _, err := AdoptBuiltinAuth(cat, "no-such-service"); err == nil {
		t.Error("unknown service accepted")
	}
}

// --- the E13 evaluation ---

func TestEvaluateFortification(t *testing.T) {
	cat := dataset.MustDefault()
	out, err := Evaluate(cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.WebBefore.Direct != 139 {
		t.Errorf("baseline web direct = %d", out.WebBefore.Direct)
	}
	// Full adoption removes every SMS-only path: nothing is directly
	// compromisable by the phone+SMS attacker.
	if out.WebAfter.Direct != 0 {
		t.Errorf("fortified web direct = %d want 0", out.WebAfter.Direct)
	}
	if out.MobileAfter.Direct != 0 {
		t.Errorf("fortified mobile direct = %d want 0", out.MobileAfter.Direct)
	}
	// The chain reaction collapses: victims drop from ~all to zero
	// (no fringe nodes means no initial foothold).
	if out.VictimsBefore < out.Total*9/10 {
		t.Errorf("baseline victims = %d/%d; expected >90%%", out.VictimsBefore, out.Total)
	}
	if out.VictimsAfter != 0 {
		t.Errorf("fortified victims = %d want 0", out.VictimsAfter)
	}
}
