package countermeasure

import (
	"github.com/actfort/actfort/internal/ecosys"
	"github.com/actfort/actfort/internal/strategy"
	"github.com/actfort/actfort/internal/tdg"
)

// Outcome compares the ecosystem before and after fortification: the
// experiment behind E13.
type Outcome struct {
	// Depth stats per platform, before and after FortifyAll.
	WebBefore, WebAfter       strategy.DepthStats
	MobileBefore, MobileAfter strategy.DepthStats
	// VictimsBefore/After count accounts falling to the full forward
	// closure over both platforms.
	VictimsBefore, VictimsAfter int
	// Total is the combined account count.
	Total int
}

// Evaluate runs the paper's measurement on cat and on FortifyAll(cat)
// under the baseline phone+SMS attacker.
func Evaluate(cat *ecosys.Catalog) (*Outcome, error) {
	fortified, err := FortifyAll(cat)
	if err != nil {
		return nil, err
	}
	out := &Outcome{}

	layers := func(c *ecosys.Catalog, platform ecosys.Platform) (strategy.DepthStats, error) {
		g, err := tdg.Build(tdg.NodesFromCatalog(c, platform), ecosys.BaselineAttacker())
		if err != nil {
			return strategy.DepthStats{}, err
		}
		return strategy.PathLayers(g), nil
	}
	if out.WebBefore, err = layers(cat, ecosys.PlatformWeb); err != nil {
		return nil, err
	}
	if out.WebAfter, err = layers(fortified, ecosys.PlatformWeb); err != nil {
		return nil, err
	}
	if out.MobileBefore, err = layers(cat, ecosys.PlatformMobile); err != nil {
		return nil, err
	}
	if out.MobileAfter, err = layers(fortified, ecosys.PlatformMobile); err != nil {
		return nil, err
	}

	closureVictims := func(c *ecosys.Catalog) (int, int, error) {
		g, err := tdg.Build(tdg.NodesFromCatalog(c), ecosys.BaselineAttacker())
		if err != nil {
			return 0, 0, err
		}
		res, err := strategy.ForwardClosure(g, nil)
		if err != nil {
			return 0, 0, err
		}
		return res.VictimCount(), g.Len(), nil
	}
	before, total, err := closureVictims(cat)
	if err != nil {
		return nil, err
	}
	after, _, err := closureVictims(fortified)
	if err != nil {
		return nil, err
	}
	out.VictimsBefore, out.VictimsAfter, out.Total = before, after, total
	return out, nil
}
