package countermeasure

import (
	"fmt"
	"sort"

	"github.com/actfort/actfort/internal/ecosys"
	"github.com/actfort/actfort/internal/mask"
)

// Policy is a named catalog transform: the declarative form of one
// fortification program. Campaign scenarios reference policies by name
// so a sweep definition ("baseline" vs "fortify-all") is plain data,
// and Apply produces the fortified catalog the attack plan compiles
// against. Apply never mutates its input.
type Policy struct {
	// Name is the registry key scenarios reference.
	Name string
	// Description is a one-line summary for CLI listings.
	Description string
	// Apply rewrites a catalog under the policy.
	Apply func(*ecosys.Catalog) (*ecosys.Catalog, error)
}

// policies is the built-in registry, keyed by name.
var policies = map[string]Policy{
	"none": {
		Name:        "none",
		Description: "identity transform: the unfortified baseline catalog",
		Apply:       func(cat *ecosys.Catalog) (*ecosys.Catalog, error) { return cat, nil },
	},
	"unified-masking": {
		Name:        "unified-masking",
		Description: "mask citizen-ID and bankcard digits to one unified standard (§VII.A.1)",
		Apply: func(cat *ecosys.Catalog) (*ecosys.Catalog, error) {
			return ApplyUnifiedMasking(cat, mask.DefaultUnifiedStandard())
		},
	},
	"harden-email": {
		Name:        "harden-email",
		Description: "add built-in push confirmation to SMS-only email takeover paths (§VII.A.2)",
		Apply:       HardenEmailProviders,
	},
	"builtin-auth": {
		Name:        "builtin-auth",
		Description: "replace SMS codes with the built-in push factor everywhere (Fig 8)",
		Apply: func(cat *ecosys.Catalog) (*ecosys.Catalog, error) {
			return AdoptBuiltinAuth(cat)
		},
	},
	"fortify-all": {
		Name:        "fortify-all",
		Description: "the full §VII.A program: unified masking + hardened email + built-in auth",
		Apply:       FortifyAll,
	},
}

// PolicyByName resolves a policy. The empty name is the baseline
// ("none"); unknown names error with the known set listed.
func PolicyByName(name string) (Policy, error) {
	if name == "" {
		name = "none"
	}
	p, ok := policies[name]
	if !ok {
		names := make([]string, 0, len(policies))
		for n := range policies {
			names = append(names, n)
		}
		sort.Strings(names)
		return Policy{}, fmt.Errorf("countermeasure: unknown policy %q (have %v)", name, names)
	}
	return p, nil
}

// Policies lists the registry in stable (name) order.
func Policies() []Policy {
	out := make([]Policy, 0, len(policies))
	for _, p := range policies {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
