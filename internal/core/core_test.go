package core

import (
	"errors"
	"testing"

	"github.com/actfort/actfort/internal/ecosys"
)

func testCatalog(t *testing.T) *ecosys.Catalog {
	t.Helper()
	sc, pn := ecosys.FactorSMSCode, ecosys.FactorCellphone
	specs := []*ecosys.ServiceSpec{
		{
			Name: "gmail", Domain: ecosys.DomainEmail,
			Presences: []ecosys.Presence{{
				Platform: ecosys.PlatformWeb,
				Paths: []ecosys.AuthPath{
					{ID: "reset-1", Purpose: ecosys.PurposeReset, Factors: []ecosys.FactorKind{pn, sc}},
				},
				Exposes: []ecosys.Exposure{{Field: ecosys.InfoEmailAddress}},
			}},
		},
		{
			Name: "ctrip", Domain: ecosys.DomainTravel,
			Presences: []ecosys.Presence{{
				Platform: ecosys.PlatformWeb,
				Paths: []ecosys.AuthPath{
					{ID: "signin-1", Purpose: ecosys.PurposeSignIn, Factors: []ecosys.FactorKind{pn, sc}},
				},
				Exposes: []ecosys.Exposure{{Field: ecosys.InfoCitizenID}, {Field: ecosys.InfoRealName}},
			}},
		},
		{
			Name: "paypal", Domain: ecosys.DomainFintech,
			Presences: []ecosys.Presence{{
				Platform: ecosys.PlatformWeb,
				Paths: []ecosys.AuthPath{
					{ID: "reset-1", Purpose: ecosys.PurposeReset, Factors: []ecosys.FactorKind{sc, ecosys.FactorEmailCode}},
				},
				EmailProvider: "gmail",
			}},
		},
		{
			Name: "alipay", Domain: ecosys.DomainFintech,
			Presences: []ecosys.Presence{{
				Platform: ecosys.PlatformMobile,
				Paths: []ecosys.AuthPath{
					{ID: "reset-1", Purpose: ecosys.PurposeReset, Factors: []ecosys.FactorKind{sc, ecosys.FactorCitizenID}},
				},
				Exposes: []ecosys.Exposure{{Field: ecosys.InfoBankcard, Mask: ecosys.MaskSpec{Masked: true, VisibleSuffix: 4}}},
			}},
		},
		{
			Name: "fortress", Domain: ecosys.DomainFintech,
			Presences: []ecosys.Presence{{
				Platform: ecosys.PlatformWeb,
				Paths: []ecosys.AuthPath{
					{ID: "signin-1", Purpose: ecosys.PurposeSignIn, Factors: []ecosys.FactorKind{ecosys.FactorU2F}},
				},
			}},
		},
	}
	return ecosys.MustCatalog(specs)
}

func newEngine(t *testing.T) *ActFort {
	t.Helper()
	a, err := New(testCatalog(t), ecosys.BaselineAttacker())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewRejectsBadCatalog(t *testing.T) {
	bad := ecosys.MustCatalog([]*ecosys.ServiceSpec{{
		Name: "x", Domain: ecosys.DomainNews,
		Presences: []ecosys.Presence{{Platform: ecosys.PlatformWeb}}, // no paths
	}})
	if _, err := New(bad, ecosys.BaselineAttacker()); !errors.Is(err, ErrInvalidCatalog) {
		t.Fatalf("err = %v want ErrInvalidCatalog", err)
	}
	if _, err := New(nil, ecosys.BaselineAttacker()); err == nil {
		t.Fatal("nil catalog accepted")
	}
}

func TestGraphCaching(t *testing.T) {
	a := newEngine(t)
	g1, err := a.Graph(ecosys.PlatformWeb)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := a.Graph(ecosys.PlatformWeb)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Error("platform graph not cached")
	}
	gAll, err := a.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if gAll == g1 {
		t.Error("combined graph must differ from web-only graph")
	}
	if gAll.Len() != 5 || g1.Len() != 4 {
		t.Errorf("graph sizes: all=%d web=%d", gAll.Len(), g1.Len())
	}
}

func TestAttackPlanAcrossPlatforms(t *testing.T) {
	a := newEngine(t)
	// alipay/mobile needs citizen ID, exposed by ctrip/web: the plan
	// must cross platforms.
	plan, err := a.AttackPlan(ecosys.AccountID{Service: "alipay", Platform: ecosys.PlatformMobile}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.String() != "ctrip/web -> alipay/mobile" {
		t.Errorf("plan = %s", plan)
	}
	plans, err := a.AttackPlans(ecosys.AccountID{Service: "paypal", Platform: ecosys.PlatformWeb}, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) == 0 || plans[0].String() != "gmail/web -> paypal/web" {
		t.Errorf("plans = %v", plans)
	}
}

func TestVictims(t *testing.T) {
	a := newEngine(t)
	res, err := a.Victims(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Everything except the U2F fortress falls.
	if res.VictimCount() != 4 {
		t.Errorf("victims = %d want 4", res.VictimCount())
	}
	if len(res.Survivors) != 1 || res.Survivors[0].Service != "fortress" {
		t.Errorf("survivors = %v", res.Survivors)
	}
}

func TestMeasure(t *testing.T) {
	a := newEngine(t)
	m, err := a.Measure()
	if err != nil {
		t.Fatal(err)
	}
	if m.Services != 5 {
		t.Errorf("Services = %d", m.Services)
	}
	if m.Web.Accounts != 4 || m.Mobile.Accounts != 1 {
		t.Errorf("platform accounts: web=%d mobile=%d", m.Web.Accounts, m.Mobile.Accounts)
	}
	if m.WebExposure.FieldCounts[ecosys.InfoCitizenID] != 1 {
		t.Errorf("web citizen-ID exposure = %d", m.WebExposure.FieldCounts[ecosys.InfoCitizenID])
	}
	if m.WebLayers.Direct != 2 { // gmail + ctrip
		t.Errorf("web direct = %d want 2", m.WebLayers.Direct)
	}
	if m.WebLayers.Uncompromised != 1 { // fortress
		t.Errorf("web uncompromised = %d want 1", m.WebLayers.Uncompromised)
	}
	// Mobile alone: alipay needs citizen ID with no mobile source.
	if m.MobileLayers.Uncompromised != 1 {
		t.Errorf("mobile uncompromised = %d want 1", m.MobileLayers.Uncompromised)
	}
	// Domain breakdown covers all 4 domains present.
	if len(m.Domains) != 3 {
		t.Errorf("domains = %+v", m.Domains)
	}
	for _, d := range m.Domains {
		if d.Domain == ecosys.DomainFintech {
			if d.Accounts != 3 || d.Fringe != 0 {
				t.Errorf("fintech stats = %+v", d)
			}
			if d.Compromisable != 2 { // paypal + alipay fall, fortress survives
				t.Errorf("fintech compromisable = %d want 2", d.Compromisable)
			}
		}
	}
	if a.TotalPaths() != 5 {
		t.Errorf("TotalPaths = %d", a.TotalPaths())
	}
}

func TestProfileCopied(t *testing.T) {
	a := newEngine(t)
	p := a.Profile()
	p.Capabilities.Add(ecosys.FactorU2F)
	if a.Profile().Capabilities.Has(ecosys.FactorU2F) {
		t.Error("Profile leaked internal attacker profile")
	}
}
