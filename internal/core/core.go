// Package core is ActFort itself: the systematic framework of §III
// that wires the four pipeline stages of Fig 2 — Authentication
// Process (authproc), Personal Information Collection (collect),
// Transformation Dependency Graph Generation (tdg) and Strategy Output
// (strategy) — behind one facade. Feed it a service catalog and an
// attacker profile; query it for ecosystem measurements, attack plans
// against specific targets, and forward-closure victim sets.
package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/actfort/actfort/internal/authproc"
	"github.com/actfort/actfort/internal/collect"
	"github.com/actfort/actfort/internal/ecosys"
	"github.com/actfort/actfort/internal/strategy"
	"github.com/actfort/actfort/internal/tdg"
)

// ActFort is the analysis engine. Construct with New; all methods are
// safe for concurrent use.
type ActFort struct {
	cat *ecosys.Catalog
	ap  ecosys.AttackerProfile

	mu     sync.Mutex
	graphs map[string]*tdg.Graph
}

// ErrInvalidCatalog wraps specification-hygiene failures found at
// construction.
var ErrInvalidCatalog = errors.New("core: catalog failed validation")

// New validates the catalog and returns an engine bound to the given
// attacker profile (use ecosys.BaselineAttacker for the paper's
// phone + SMS interception model).
func New(cat *ecosys.Catalog, ap ecosys.AttackerProfile) (*ActFort, error) {
	if cat == nil {
		return nil, errors.New("core: nil catalog")
	}
	if errs := authproc.ValidateCatalog(cat); len(errs) > 0 {
		msgs := make([]string, 0, len(errs))
		for _, e := range errs {
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("%w:\n%s", ErrInvalidCatalog, strings.Join(msgs, "\n"))
	}
	return &ActFort{
		cat:    cat,
		ap:     ap.Clone(),
		graphs: make(map[string]*tdg.Graph),
	}, nil
}

// Catalog returns the analyzed catalog.
func (a *ActFort) Catalog() *ecosys.Catalog { return a.cat }

// Profile returns a copy of the attacker profile.
func (a *ActFort) Profile() ecosys.AttackerProfile { return a.ap.Clone() }

// Graph returns the Transformation Dependency Graph over the given
// platforms (both when none given), building and caching it on first
// use.
func (a *ActFort) Graph(platforms ...ecosys.Platform) (*tdg.Graph, error) {
	key := graphKey(platforms)
	a.mu.Lock()
	defer a.mu.Unlock()
	if g, ok := a.graphs[key]; ok {
		return g, nil
	}
	g, err := tdg.Build(tdg.NodesFromCatalog(a.cat, platforms...), a.ap)
	if err != nil {
		return nil, err
	}
	a.graphs[key] = g
	return g, nil
}

func graphKey(platforms []ecosys.Platform) string {
	if len(platforms) == 0 {
		return "all"
	}
	names := make([]string, 0, len(platforms))
	for _, p := range platforms {
		names = append(names, p.String())
	}
	sort.Strings(names)
	return strings.Join(names, "+")
}

// AttackPlan runs the backward search of §III.E scenario 2: a minimal
// Chain Reaction Attack plan reaching target, over the target
// platform's graph combined with web (middle accounts may live on
// either platform).
func (a *ActFort) AttackPlan(target ecosys.AccountID, maxDepth int) (*strategy.Plan, error) {
	g, err := a.Graph()
	if err != nil {
		return nil, err
	}
	return strategy.FindPlan(g, target, maxDepth)
}

// AttackPlans enumerates up to limit distinct plans for target.
func (a *ActFort) AttackPlans(target ecosys.AccountID, maxDepth, limit int) ([]*strategy.Plan, error) {
	g, err := a.Graph()
	if err != nil {
		return nil, err
	}
	return strategy.FindPlans(g, target, maxDepth, limit)
}

// Victims runs the forward closure of §III.E scenario 1: given
// initially compromised accounts (may be empty — pure phone+SMS
// attacker), every account that ultimately falls.
func (a *ActFort) Victims(initial []ecosys.AccountID, platforms ...ecosys.Platform) (*strategy.ForwardResult, error) {
	g, err := a.Graph(platforms...)
	if err != nil {
		return nil, err
	}
	return strategy.ForwardClosure(g, initial)
}

// DomainStats is the per-domain vulnerability breakdown behind the
// "different domains have different levels of authentication" insight.
type DomainStats struct {
	Domain   ecosys.Domain
	Accounts int
	// Fringe counts accounts compromisable with phone + SMS alone.
	Fringe int
	// Compromisable counts accounts falling in the full closure.
	Compromisable int
}

// Measurement is the complete ecosystem analysis: everything the
// paper's §IV reports, computed from the catalog.
type Measurement struct {
	Services int
	// Auth stats per platform (Fig 3 and path classes).
	Web    authproc.Stats
	Mobile authproc.Stats
	// Exposure stats per platform (Table I).
	WebExposure    collect.ExposureStats
	MobileExposure collect.ExposureStats
	// Dependency-depth stats per platform (§IV.B.1 percentages).
	WebLayers    strategy.LayerStats
	MobileLayers strategy.LayerStats
	// Domains is the per-domain breakdown over both platforms, sorted
	// by domain.
	Domains []DomainStats
}

// Measure runs the full pipeline and aggregates every §IV statistic.
func (a *ActFort) Measure() (*Measurement, error) {
	m := &Measurement{
		Services:       a.cat.Len(),
		Web:            authproc.Measure(a.cat, ecosys.PlatformWeb),
		Mobile:         authproc.Measure(a.cat, ecosys.PlatformMobile),
		WebExposure:    collect.Measure(a.cat, ecosys.PlatformWeb),
		MobileExposure: collect.Measure(a.cat, ecosys.PlatformMobile),
	}
	for _, platform := range ecosys.AllPlatforms() {
		g, err := a.Graph(platform)
		if err != nil {
			return nil, err
		}
		res, err := strategy.ForwardClosure(g, nil)
		if err != nil {
			return nil, err
		}
		st := strategy.Layers(res, g.Len())
		if platform == ecosys.PlatformWeb {
			m.WebLayers = st
		} else {
			m.MobileLayers = st
		}
	}

	// Per-domain breakdown over the combined graph.
	g, err := a.Graph()
	if err != nil {
		return nil, err
	}
	res, err := strategy.ForwardClosure(g, nil)
	if err != nil {
		return nil, err
	}
	byDomain := make(map[ecosys.Domain]*DomainStats)
	for _, id := range g.Nodes() {
		node, _ := g.Node(id)
		ds, ok := byDomain[node.Domain]
		if !ok {
			ds = &DomainStats{Domain: node.Domain}
			byDomain[node.Domain] = ds
		}
		ds.Accounts++
		if g.IsFringe(id) {
			ds.Fringe++
		}
		if _, fell := res.Compromised[id]; fell {
			ds.Compromisable++
		}
	}
	for _, d := range ecosys.AllDomains() {
		if ds, ok := byDomain[d]; ok {
			m.Domains = append(m.Domains, *ds)
		}
	}
	return m, nil
}

// TotalPaths reports the catalog's path count (the paper's "405
// authentication paths in total").
func (a *ActFort) TotalPaths() int { return a.cat.TotalPaths() }
