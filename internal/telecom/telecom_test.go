package telecom

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/actfort/actfort/internal/a51"
	"github.com/actfort/actfort/internal/gsmcodec"
)

// testNet builds a network with one legit GSM/A5-1 cell and one
// subscriber attached via a GSM terminal.
func testNet(t *testing.T) (*Network, *Cell, *Subscriber, *Terminal) {
	t.Helper()
	n := NewNetwork(Config{KeySpace: a51.KeySpace{Base: 0xC118000000000000, Bits: 12}, Seed: 7})
	cell, err := n.AddCell(Cell{ID: "cell-1", ARFCNs: []int{512, 513}, Cipher: CipherA51})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := n.Register("460001234567890", "+8613800000042")
	if err != nil {
		t.Fatal(err)
	}
	term, err := n.NewTerminal(sub, RATGSM)
	if err != nil {
		t.Fatal(err)
	}
	if err := term.Attach(cell); err != nil {
		t.Fatal(err)
	}
	return n, cell, sub, term
}

func TestRegistrationErrors(t *testing.T) {
	n := NewNetwork(DefaultConfig())
	if _, err := n.Register("", "+86138"); err == nil {
		t.Error("empty IMSI accepted")
	}
	if _, err := n.Register("1", ""); err == nil {
		t.Error("empty MSISDN accepted")
	}
	if _, err := n.Register("1", "+86138"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Register("1", "+86139"); !errors.Is(err, ErrDuplicateSub) {
		t.Errorf("duplicate IMSI err = %v", err)
	}
	if _, err := n.Register("2", "+86138"); !errors.Is(err, ErrDuplicateSub) {
		t.Errorf("duplicate MSISDN err = %v", err)
	}
}

func TestAddCellErrors(t *testing.T) {
	n := NewNetwork(DefaultConfig())
	if _, err := n.AddCell(Cell{ID: "", ARFCNs: []int{1}}); err == nil {
		t.Error("empty cell ID accepted")
	}
	if _, err := n.AddCell(Cell{ID: "c", ARFCNs: nil}); err == nil {
		t.Error("cell without ARFCNs accepted")
	}
	if _, err := n.AddCell(Cell{ID: "c", ARFCNs: []int{1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddCell(Cell{ID: "c", ARFCNs: []int{2}}); !errors.Is(err, ErrDuplicateCell) {
		t.Errorf("duplicate cell err = %v", err)
	}
	if _, ok := n.Cell("c"); !ok {
		t.Error("Cell lookup missed")
	}
}

func TestSendSMSDeliversToInbox(t *testing.T) {
	n, _, sub, term := testNet(t)
	transport, err := n.SendSMS("Google", sub.MSISDN, "G-845512 is your verification code.")
	if err != nil {
		t.Fatal(err)
	}
	if transport != "gsm:A5/1" {
		t.Errorf("transport = %q want gsm:A5/1", transport)
	}
	got, ok := term.LastSMS()
	if !ok {
		t.Fatal("inbox empty")
	}
	if got.Originator != "Google" || got.Text != "G-845512 is your verification code." {
		t.Errorf("delivered %+v", got)
	}
}

func TestSendSMSEmitsEncryptedBursts(t *testing.T) {
	n, cell, sub, _ := testNet(t)
	var mu sync.Mutex
	var bursts []RadioBurst
	for _, arfcn := range cell.ARFCNs {
		cancel := n.Subscribe(arfcn, func(b RadioBurst) {
			mu.Lock()
			bursts = append(bursts, b)
			mu.Unlock()
		})
		defer cancel()
	}
	text := "Your PayPal code is 339201"
	if _, err := n.SendSMS("PayPal", sub.MSISDN, text); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(bursts) < 2 {
		t.Fatalf("got %d bursts, want paging + payload", len(bursts))
	}
	for i, b := range bursts {
		if !b.Encrypted {
			t.Errorf("burst %d not encrypted on A5/1 cell", i)
		}
		if b.Seq != i {
			t.Errorf("burst %d has Seq %d", i, b.Seq)
		}
		if b.Total != len(bursts) {
			t.Errorf("burst %d Total=%d want %d", i, b.Total, len(bursts))
		}
	}
	// Burst 0 ciphertext must differ from the known paging plaintext.
	known := PagingPlaintext(bursts[0].SessionID)
	same := true
	for i := range known {
		if bursts[0].Payload[i] != known[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("paging burst was not encrypted")
	}
}

// End-to-end crack: derive keystream from the paging burst, recover
// Kc, decrypt the payload bursts, reassemble the TPDU. This is the
// core of what the sniffer package automates.
func TestBurstsCrackableViaKnownPlaintext(t *testing.T) {
	n, cell, sub, _ := testNet(t)
	var mu sync.Mutex
	var bursts []RadioBurst
	for _, arfcn := range cell.ARFCNs {
		cancel := n.Subscribe(arfcn, func(b RadioBurst) {
			mu.Lock()
			bursts = append(bursts, b)
			mu.Unlock()
		})
		defer cancel()
	}
	text := "Facebook code: 770123"
	if _, err := n.SendSMS("Facebook", sub.MSISDN, text); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	paging := bursts[0]
	ks, err := a51.DeriveKeystream(paging.Payload, PagingPlaintext(paging.SessionID))
	if err != nil {
		t.Fatal(err)
	}
	kc, err := a51.RecoverKey(ks, paging.Frame, n.KeySpace())
	if err != nil {
		t.Fatal(err)
	}
	var tpdu []byte
	for _, b := range bursts[1:] {
		tpdu = append(tpdu, a51.EncryptBurst(kc, b.Frame, b.Payload)...)
	}
	msg, err := gsmcodec.UnmarshalDeliver(tpdu)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Text != text || msg.Originator != "Facebook" {
		t.Errorf("cracked message %+v", msg)
	}
}

func TestA50CellSendsPlaintext(t *testing.T) {
	n := NewNetwork(Config{KeySpace: a51.KeySpace{Bits: 8}, Seed: 1})
	cell, err := n.AddCell(Cell{ID: "open", ARFCNs: []int{100}, Cipher: CipherA50})
	if err != nil {
		t.Fatal(err)
	}
	sub, _ := n.Register("i1", "+8613900000001")
	term, _ := n.NewTerminal(sub, RATGSM)
	if err := term.Attach(cell); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var bursts []RadioBurst
	cancel := n.Subscribe(100, func(b RadioBurst) {
		mu.Lock()
		bursts = append(bursts, b)
		mu.Unlock()
	})
	defer cancel()
	if tr, err := n.SendSMS("Bank", sub.MSISDN, "code 1111"); err != nil || tr != "gsm:A5/0" {
		t.Fatalf("SendSMS = %q, %v", tr, err)
	}
	mu.Lock()
	defer mu.Unlock()
	var tpdu []byte
	for _, b := range bursts[1:] {
		if b.Encrypted {
			t.Fatal("A5/0 burst marked encrypted")
		}
		tpdu = append(tpdu, b.Payload...)
	}
	msg, err := gsmcodec.UnmarshalDeliver(tpdu)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Text != "code 1111" {
		t.Errorf("plaintext decode got %q", msg.Text)
	}
}

func TestLTEBypassesRadioBusUntilJammed(t *testing.T) {
	n := NewNetwork(Config{KeySpace: a51.KeySpace{Bits: 8}, Seed: 3})
	cell, err := n.AddCell(Cell{ID: "lte-1", ARFCNs: []int{700}, Cipher: CipherA51, LTE: true})
	if err != nil {
		t.Fatal(err)
	}
	sub, _ := n.Register("i2", "+8613900000002")
	term, _ := n.NewTerminal(sub, RATLTE)
	if err := term.Attach(cell); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	count := 0
	cancel := n.Subscribe(700, func(RadioBurst) { mu.Lock(); count++; mu.Unlock() })
	defer cancel()

	if tr, err := n.SendSMS("Svc", sub.MSISDN, "over lte"); err != nil || tr != "lte" {
		t.Fatalf("SendSMS = %q, %v", tr, err)
	}
	mu.Lock()
	if count != 0 {
		t.Errorf("LTE delivery leaked %d bursts to GSM bus", count)
	}
	mu.Unlock()
	if term.RAT() != RATLTE {
		t.Errorf("RAT = %v want LTE", term.RAT())
	}

	// Jam the LTE plane: delivery must fall back to sniffable GSM.
	if err := n.SetLTEJammed(cell.ID, true); err != nil {
		t.Fatal(err)
	}
	if term.RAT() != RATGSM {
		t.Errorf("RAT after jamming = %v want GSM", term.RAT())
	}
	if tr, err := n.SendSMS("Svc", sub.MSISDN, "downgraded"); err != nil || tr != "gsm:A5/1" {
		t.Fatalf("SendSMS after jam = %q, %v", tr, err)
	}
	mu.Lock()
	if count == 0 {
		t.Error("no bursts on GSM bus after downgrade")
	}
	mu.Unlock()

	if err := n.SetLTEJammed("nope", true); !errors.Is(err, ErrUnknownCell) {
		t.Errorf("jamming unknown cell err = %v", err)
	}
	if got := len(term.Inbox()); got != 2 {
		t.Errorf("inbox size = %d want 2", got)
	}
}

func TestSendSMSErrors(t *testing.T) {
	n, _, _, _ := testNet(t)
	if _, err := n.SendSMS("x", "+860000", "hi"); !errors.Is(err, ErrNoSubscriber) {
		t.Errorf("unknown subscriber err = %v", err)
	}
	sub2, _ := n.Register("999", "+8613800000099")
	if _, err := n.SendSMS("x", sub2.MSISDN, "hi"); !errors.Is(err, ErrNoCoverage) {
		t.Errorf("no coverage err = %v", err)
	}
}

func TestLocationUpdateAuth(t *testing.T) {
	n, cell, sub, _ := testNet(t)
	term2, err := n.NewTerminal(sub, RATGSM)
	if err != nil {
		t.Fatal(err)
	}
	if err := term2.AttachTo(cell); err != nil {
		t.Fatal(err)
	}
	// Wrong SRES must fail.
	if _, err := n.BeginLocationUpdate(sub.IMSI); err != nil {
		t.Fatal(err)
	}
	if err := n.CompleteLocationUpdate(sub.IMSI, [4]byte{1, 2, 3, 4}, term2); !errors.Is(err, ErrAuthFailed) {
		t.Errorf("bad SRES err = %v", err)
	}
	// No outstanding challenge after the failure consumed it.
	if err := n.CompleteLocationUpdate(sub.IMSI, [4]byte{}, term2); !errors.Is(err, ErrNoChallenge) {
		t.Errorf("no challenge err = %v", err)
	}
	if _, err := n.BeginLocationUpdate("bogus"); !errors.Is(err, ErrNoSubscriber) {
		t.Errorf("unknown IMSI err = %v", err)
	}
}

// The MitM-enabling property: a terminal that does NOT own the SIM can
// become the serving terminal by relaying the auth challenge to the
// real SIM (GSM never authenticates the network or binds the response
// to a device).
func TestAuthRelayHijacksServing(t *testing.T) {
	n, cell, sub, victim := testNet(t)
	if n.ServingTerminal(sub.IMSI) != victim {
		t.Fatal("victim should serve initially")
	}
	fvt, err := n.NewCloneTerminal(sub.IMSI) // attacker's fake victim terminal
	if err != nil {
		t.Fatal(err)
	}
	if err := fvt.AttachTo(cell); err != nil {
		t.Fatal(err)
	}
	// The clone holds no SIM secret: answering by itself must fail.
	rnd, err := n.BeginLocationUpdate(sub.IMSI)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.CompleteLocationUpdate(sub.IMSI, fvt.RespondAuth(rnd), fvt); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("clone answered its own challenge: err = %v", err)
	}
	// Relaying the challenge to the real SIM wins.
	rnd, err = n.BeginLocationUpdate(sub.IMSI)
	if err != nil {
		t.Fatal(err)
	}
	answer := victim.RespondAuth(rnd) // relayed through the fake BTS
	if err := n.CompleteLocationUpdate(sub.IMSI, answer, fvt); err != nil {
		t.Fatal(err)
	}
	if n.ServingTerminal(sub.IMSI) != fvt {
		t.Fatal("hijack did not switch the serving terminal")
	}
	// The victim no longer receives SMS: the attack is covert.
	if _, err := n.SendSMS("Bank", sub.MSISDN, "code 2222"); err != nil {
		t.Fatal(err)
	}
	if len(victim.Inbox()) != 0 {
		t.Error("victim received SMS after hijack")
	}
	if got, ok := fvt.LastSMS(); !ok || got.Text != "code 2222" {
		t.Errorf("attacker inbox %+v, %v", got, ok)
	}
}

func TestCallRevealsCallerID(t *testing.T) {
	n, cell, sub, _ := testNet(t)
	attacker, _ := n.Register("777", "+8613800000777")
	attTerm, _ := n.NewTerminal(attacker, RATGSM)
	if err := attTerm.Attach(cell); err != nil {
		t.Fatal(err)
	}
	victimTerm := n.ServingTerminal(sub.IMSI)
	if err := victimTerm.PlaceCall(attacker.MSISDN); err != nil {
		t.Fatal(err)
	}
	calls := attTerm.Calls()
	if len(calls) != 1 || calls[0].FromMSISDN != sub.MSISDN {
		t.Fatalf("caller ID not revealed: %+v", calls)
	}
	detached, _ := n.NewTerminal(sub, RATGSM)
	if err := detached.PlaceCall(attacker.MSISDN); !errors.Is(err, ErrDetached) {
		t.Errorf("detached call err = %v", err)
	}
}

func TestTerminalValidation(t *testing.T) {
	n, _, sub, _ := testNet(t)
	if _, err := n.NewTerminal(nil, RATGSM); err == nil {
		t.Error("nil subscriber accepted")
	}
	if _, err := n.NewTerminal(sub, RAT(0)); err == nil {
		t.Error("invalid RAT accepted")
	}
	foreign := &Subscriber{IMSI: "not-registered", MSISDN: "+860"}
	if _, err := n.NewTerminal(foreign, RATGSM); !errors.Is(err, ErrNoSubscriber) {
		t.Errorf("foreign subscriber err = %v", err)
	}
}

func TestReselectionPicksStrongestCell(t *testing.T) {
	n, cell, _, term := testNet(t)
	// Baseline: the only cell wins.
	got, err := term.Reselect()
	if err != nil || got.ID != cell.ID {
		t.Fatalf("Reselect = %v, %v", got, err)
	}
	// A louder rogue cell captures the terminal.
	rogue, err := n.AddCell(Cell{ID: "evil", ARFCNs: []int{900}, Cipher: CipherA50, Rogue: true, Power: 99})
	if err != nil {
		t.Fatal(err)
	}
	got, err = term.Reselect()
	if err != nil || got.ID != rogue.ID {
		t.Fatalf("Reselect with rogue = %v, %v", got, err)
	}
	// An even louder legitimate cell takes it back.
	stronger, err := n.AddCell(Cell{ID: "macro", ARFCNs: []int{901}, Cipher: CipherA51, Power: 200})
	if err != nil {
		t.Fatal(err)
	}
	got, err = term.Reselect()
	if err != nil || got.ID != stronger.ID {
		t.Fatalf("Reselect with macro = %v, %v", got, err)
	}
	// Deterministic tie-break by ID.
	if _, err := n.AddCell(Cell{ID: "aaa", ARFCNs: []int{902}, Power: 200}); err != nil {
		t.Fatal(err)
	}
	got, err = term.Reselect()
	if err != nil || got.ID != "aaa" {
		t.Fatalf("tie-break Reselect = %v, %v", got, err)
	}
}

func TestStrongestCellEmptyNetwork(t *testing.T) {
	n := NewNetwork(DefaultConfig())
	if _, ok := n.StrongestCell(); ok {
		t.Error("empty network returned a cell")
	}
	sub, _ := n.Register("i", "+86138")
	term, _ := n.NewTerminal(sub, RATGSM)
	if _, err := term.Reselect(); err == nil {
		t.Error("reselection with no cells succeeded")
	}
}

func TestSubscribeCancel(t *testing.T) {
	n, _, sub, _ := testNet(t)
	var mu sync.Mutex
	count := 0
	cancel := n.Subscribe(512, func(RadioBurst) { mu.Lock(); count++; mu.Unlock() })
	cancel()
	if _, err := n.SendSMS("x", sub.MSISDN, "hello"); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if count != 0 {
		t.Errorf("cancelled listener received %d bursts", count)
	}
}

func TestDeliveryStats(t *testing.T) {
	n, _, sub, _ := testNet(t)
	for i := 0; i < 3; i++ {
		if _, err := n.SendSMS("x", sub.MSISDN, "m"); err != nil {
			t.Fatal(err)
		}
	}
	stats := n.DeliveryStats()
	if stats["gsm:A5/1"] != 3 {
		t.Errorf("stats = %v", stats)
	}
}

func TestConcurrentSendSMS(t *testing.T) {
	n, cell, _, _ := testNet(t)
	const workers = 8
	terms := make([]*Terminal, workers)
	for i := 0; i < workers; i++ {
		sub, err := n.Register(fmt.Sprintf("imsi-%d", i), fmt.Sprintf("+86138%08d", i))
		if err != nil {
			t.Fatal(err)
		}
		terms[i], _ = n.NewTerminal(sub, RATGSM)
		if err := terms[i].Attach(cell); err != nil {
			t.Fatal(err)
		}
	}
	cancel := n.Subscribe(512, func(RadioBurst) {})
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if _, err := n.SendSMS("Svc", terms[i].MSISDN(), "msg"); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, term := range terms {
		if got := len(term.Inbox()); got != 20 {
			t.Errorf("terminal %d inbox = %d want 20", i, got)
		}
	}
}

func TestStringers(t *testing.T) {
	if CipherA50.String() != "A5/0" || CipherA51.String() != "A5/1" {
		t.Error("cipher strings")
	}
	if CipherMode(0).String() != "cipher(?)" {
		t.Error("unknown cipher string")
	}
	if RATGSM.String() != "gsm" || RATLTE.String() != "lte" || RAT(0).String() != "rat(?)" {
		t.Error("rat strings")
	}
}

func BenchmarkSendSMSA51(b *testing.B) {
	n := NewNetwork(Config{KeySpace: a51.KeySpace{Bits: 12}, Seed: 1})
	cell, _ := n.AddCell(Cell{ID: "c", ARFCNs: []int{512}, Cipher: CipherA51})
	sub, _ := n.Register("i", "+8613800000001")
	term, _ := n.NewTerminal(sub, RATGSM)
	if err := term.Attach(cell); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.SendSMS("Svc", sub.MSISDN, "Your code is 845512"); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBurstAuthContext checks that emitted bursts carry the identity
// context (IMSI, RAND) of the session — the clear-text metadata real
// GSM exposes during paging and authentication.
func TestBurstAuthContext(t *testing.T) {
	n, _, sub, _ := testNet(t)
	var bursts []RadioBurst
	var mu sync.Mutex
	for _, a := range []int{512, 513} {
		cancel := n.Subscribe(a, func(b RadioBurst) {
			mu.Lock()
			bursts = append(bursts, b)
			mu.Unlock()
		})
		defer cancel()
	}
	if _, err := n.SendSMS("Svc", sub.MSISDN, "code 111111"); err != nil {
		t.Fatal(err)
	}
	if len(bursts) == 0 {
		t.Fatal("no bursts emitted")
	}
	for _, b := range bursts {
		if b.IMSI != sub.IMSI {
			t.Fatalf("burst IMSI = %q want %q", b.IMSI, sub.IMSI)
		}
		if b.RAND == ([16]byte{}) {
			t.Fatal("burst RAND empty on encrypted session")
		}
	}
}

// TestReauthEveryReusesContext pins the skipped-re-authentication
// model: RAND (and hence Kc) rotates only every ReauthEvery-th SMS
// session per subscriber.
func TestReauthEveryReusesContext(t *testing.T) {
	n := NewNetwork(Config{
		KeySpace:    a51.KeySpace{Base: 0xC118000000000000, Bits: 12},
		Seed:        7,
		ReauthEvery: 2,
	})
	cell, err := n.AddCell(Cell{ID: "c", ARFCNs: []int{512}, Cipher: CipherA51})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := n.Register("460001234567890", "+8613800000042")
	if err != nil {
		t.Fatal(err)
	}
	term, err := n.NewTerminal(sub, RATGSM)
	if err != nil {
		t.Fatal(err)
	}
	if err := term.Attach(cell); err != nil {
		t.Fatal(err)
	}
	var rands [][16]byte
	var mu sync.Mutex
	cancel := n.Subscribe(512, func(b RadioBurst) {
		if b.Seq == 0 {
			mu.Lock()
			rands = append(rands, b.RAND)
			mu.Unlock()
		}
	})
	defer cancel()
	for i := 0; i < 4; i++ {
		if _, err := n.SendSMS("Svc", sub.MSISDN, "code 111111"); err != nil {
			t.Fatal(err)
		}
	}
	if len(rands) != 4 {
		t.Fatalf("paging bursts = %d", len(rands))
	}
	if rands[0] != rands[1] || rands[2] != rands[3] {
		t.Fatal("sessions within an epoch must share RAND")
	}
	if rands[0] == rands[2] {
		t.Fatal("epochs must rotate RAND")
	}
}

// TestEncodeSMSBursts checks the standalone encoder produces the
// session structure the sniffer expects: paging burst first, frames
// wrapped, payload decryptable back to the TPDU.
func TestEncodeSMSBursts(t *testing.T) {
	deliver := gsmcodec.Deliver{Originator: "Svc", Text: "code 845512"}
	const kc = 0xC118000000000042
	bursts, err := EncodeSMSBursts(SMSSession{
		ARFCN: 512, CellID: "c", SessionID: 9, StartFrame: 49,
		Cipher: CipherA51, Kc: kc, IMSI: "460001234567890",
		Deliver: deliver,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(bursts) < 2 {
		t.Fatalf("bursts = %d", len(bursts))
	}
	if bursts[0].Seq != 0 || bursts[0].Total != len(bursts) {
		t.Fatalf("paging burst = %+v", bursts[0])
	}
	for i, b := range bursts {
		if want := Count22(49 + uint32(i)); b.Frame != want {
			t.Fatalf("burst %d frame = %d want COUNT %d", i, b.Frame, want)
		}
	}
	// Decrypt payload bursts and reassemble the TPDU.
	var tpdu []byte
	for _, b := range bursts[1:] {
		tpdu = append(tpdu, a51.EncryptBurst(kc, b.Frame, b.Payload)...)
	}
	msg, err := gsmcodec.UnmarshalDeliver(tpdu)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Text != deliver.Text || msg.Originator != deliver.Originator {
		t.Fatalf("round trip = %+v", msg)
	}
}
