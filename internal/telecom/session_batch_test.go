package telecom

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/actfort/actfort/internal/gsmcodec"
)

// TestEncodeSMSBurstsBatchMatchesScalar is the batch≡scalar property
// the campaign engine's gather-then-encrypt restructure rests on:
// EncodeSMSBurstsBatch must emit byte-identical bursts to per-session
// EncodeSMSBursts across cipher modes (unset, A5/0, A5/1, A5/3),
// session lengths (one-chunk OTPs up to multi-burst texts) and ragged
// batch sizes straddling the 64-lane block boundary.
func TestEncodeSMSBurstsBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	modes := []CipherMode{0, CipherA50, CipherA51, CipherA53}
	for _, n := range []int{1, 5, 64, 71, 200} {
		sessions := make([]SMSSession, n)
		frame := uint32(0)
		for i := range sessions {
			text := strings.Repeat("Code 845512 ", 1+rng.Intn(8))
			start := NextPagingStart(frame)
			var rnd [16]byte
			rng.Read(rnd[:])
			sessions[i] = SMSSession{
				ARFCN:      512 + rng.Intn(4),
				CellID:     "batch-cell",
				SessionID:  uint32(i),
				StartFrame: start,
				Cipher:     modes[rng.Intn(len(modes))],
				Kc:         rng.Uint64(),
				IMSI:       fmt.Sprintf("46000%05d", i),
				RAND:       rnd,
				Deliver: gsmcodec.Deliver{
					Originator: "ActFort",
					Timestamp:  time.Date(2021, 4, 19, 12, 0, 0, 0, time.UTC),
					Text:       text,
				},
			}
			frame = start + 12 // sessions may overlap frames; the encoders must not care
		}
		got, err := EncodeSMSBurstsBatch(sessions)
		if err != nil {
			t.Fatalf("n=%d: batch encode: %v", n, err)
		}
		if len(got) != n {
			t.Fatalf("n=%d: batch returned %d session slices", n, len(got))
		}
		for i := range sessions {
			want, err := EncodeSMSBursts(sessions[i])
			if err != nil {
				t.Fatalf("n=%d session %d: scalar encode: %v", n, i, err)
			}
			if !reflect.DeepEqual(got[i], want) {
				t.Fatalf("n=%d session %d (cipher %v): batch and scalar bursts differ:\nbatch  %+v\nscalar %+v",
					n, i, sessions[i].Cipher, got[i], want)
			}
		}
	}
}

// TestEncodeSMSBurstsBatchError pins the loud failure mode: one
// unencodable TPDU fails the whole batch, naming the session.
func TestEncodeSMSBurstsBatchError(t *testing.T) {
	sessions := []SMSSession{
		{Deliver: gsmcodec.Deliver{Originator: "ok", Text: "fine"}},
		{Deliver: gsmcodec.Deliver{Originator: "ok", Text: "☃ not in GSM 03.38"}},
	}
	if _, err := EncodeSMSBurstsBatch(sessions); err == nil {
		t.Fatal("unencodable session accepted")
	} else if !strings.Contains(err.Error(), "session 1") {
		t.Fatalf("error does not name the failing session: %v", err)
	}
}

// TestSessionBurstCount pins the schedule arithmetic batch callers use
// in place of per-session marshaling.
func TestSessionBurstCount(t *testing.T) {
	for _, tc := range []struct{ rawLen, want int }{
		{0, 1}, {1, 2}, {14, 2}, {15, 3}, {28, 3}, {29, 4},
	} {
		if got := SessionBurstCount(tc.rawLen); got != tc.want {
			t.Errorf("SessionBurstCount(%d) = %d, want %d", tc.rawLen, got, tc.want)
		}
	}
	// And it must agree with what the encoder actually emits.
	s := SMSSession{Deliver: gsmcodec.Deliver{Originator: "ActFort", Text: "Code 845512"}}
	raw, err := s.Deliver.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	bursts, err := EncodeSMSBursts(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := SessionBurstCount(len(raw)); got != len(bursts) {
		t.Errorf("SessionBurstCount(%d) = %d, encoder emitted %d bursts", len(raw), got, len(bursts))
	}
}

// A53 keystream must not depend on unrelated sessions in the batch:
// check an A5/3 session alone and inside a mixed batch agree. (The
// bitsliced lanes only carry A5/1 work; this guards the bookkeeping.)
func TestEncodeSMSBurstsBatchA53Isolation(t *testing.T) {
	mk := func(id uint32) SMSSession {
		return SMSSession{
			SessionID: id, Cipher: CipherA53, Kc: 0xC118000000000042,
			Deliver: gsmcodec.Deliver{Originator: "ActFort", Text: "Code 845512"},
		}
	}
	alone, err := EncodeSMSBurstsBatch([]SMSSession{mk(7)})
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := EncodeSMSBurstsBatch([]SMSSession{
		{SessionID: 1, Cipher: CipherA51, Kc: 1, Deliver: gsmcodec.Deliver{Originator: "x", Text: "y"}},
		mk(7),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(alone[0], mixed[1]) {
		t.Fatal("A5/3 session bursts differ between lone and mixed batches")
	}
}
