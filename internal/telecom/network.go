// Package telecom simulates the cellular substrate the paper's attacks
// run against: subscribers with SIM secrets, cells with ARFCN channel
// sets and per-cell cipher policy, GSM SMS delivery as A5/1-encrypted
// radio bursts, an LTE plane that a jammer can force down to GSM
// (the downgrade step of the active MitM attack, Fig 7/10), GSM-style
// one-way authentication for location updates, and caller-ID calls.
//
// The radio is modeled as a publish/subscribe bus keyed by ARFCN:
// anything transmitted on a channel is visible to every subscribed
// receiver — exactly the property the passive sniffer exploits.
//
// Substitution note (see DESIGN.md): session keys are drawn from a
// reduced a51.KeySpace so the sniffer's exhaustive search stands in
// for the real rainbow-table crack; the GSM one-way authentication
// (no network authentication to the phone) is modeled faithfully
// because it is the flaw the fake base station exploits.
//
// Batch ≡ scalar invariant: the three burst encoders — per-session
// EncodeSMSBursts, batched EncodeSMSBurstsBatch, and the pooled flat
// EncodeSMSBurstsInto — produce byte-identical bursts for the same
// sessions. The batch forms only change where cipher arithmetic runs
// (64-lane a51 passes across sessions) and where memory comes from
// (a recycled BurstBuffer slab); layout, COUNT schedule and payloads
// are the scalar encoder's, and property tests pin the equality.
package telecom

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"github.com/actfort/actfort/internal/a51"
	"github.com/actfort/actfort/internal/gsmcodec"
)

// Common errors.
var (
	ErrNoSubscriber  = errors.New("telecom: unknown subscriber")
	ErrNoCoverage    = errors.New("telecom: subscriber has no serving terminal")
	ErrUnknownCell   = errors.New("telecom: unknown cell")
	ErrAuthFailed    = errors.New("telecom: authentication failed (bad SRES)")
	ErrNoChallenge   = errors.New("telecom: no outstanding auth challenge")
	ErrDuplicateCell = errors.New("telecom: duplicate cell ID")
	ErrDuplicateSub  = errors.New("telecom: duplicate subscriber")
)

// CipherMode is the cell's over-the-air encryption policy.
type CipherMode int

const (
	// CipherA50 is no encryption — the paper notes many GSM networks
	// run without data encryption.
	CipherA50 CipherMode = iota + 1
	// CipherA51 encrypts bursts with A5/1.
	CipherA51
	// CipherA53 encrypts bursts with A5/3 (KASUMI) — the ciphering
	// upgrade fortification scenarios deploy; the rig's A5/1 crackers
	// cannot recover its session keys.
	CipherA53
)

// String names the mode.
func (m CipherMode) String() string {
	switch m {
	case CipherA50:
		return "A5/0"
	case CipherA51:
		return "A5/1"
	case CipherA53:
		return "A5/3"
	}
	return "cipher(?)"
}

// Encrypts reports whether the mode ciphers the air interface at all.
func (m CipherMode) Encrypts() bool { return m == CipherA51 || m == CipherA53 }

// Subscriber is a SIM identity in the operator's HLR.
type Subscriber struct {
	IMSI   string
	MSISDN string // the public phone number, e.g. "+8613800000042"
	// ki is the SIM secret; it never leaves the package.
	ki [16]byte
}

// Cell is one base station's coverage area. Cells are immutable after
// AddCell; mutable radio conditions (LTE jamming) live in the Network.
type Cell struct {
	ID     string
	ARFCNs []int
	Cipher CipherMode
	// LTE reports whether the cell offers an LTE plane; SMS to
	// LTE-attached terminals bypasses the GSM radio bus entirely.
	LTE bool
	// Rogue marks an attacker-operated fake base station. The
	// legitimate core network never routes traffic through it.
	Rogue bool
	// Power is the broadcast strength phones use for reselection
	// (higher wins; zero reads as a default of 10). Fake base stations
	// win victims by overpowering the legitimate cell.
	Power int
}

// effectivePower applies the default.
func (c *Cell) effectivePower() int {
	if c.Power == 0 {
		return 10
	}
	return c.Power
}

// RadioBurst is one unit of air traffic on an ARFCN. A multi-burst SMS
// transmission shares a SessionID; burst 0 is always the paging burst
// whose plaintext is predictable (the known-plaintext foothold).
type RadioBurst struct {
	ARFCN     int
	CellID    string
	Frame     uint32
	SessionID uint32
	Seq       int
	Total     int
	Encrypted bool
	// Cipher is the mode the burst was transmitted under. Real GSM
	// announces it in the clear (Ciphering Mode Command), so a passive
	// sniffer knows whether a session is crackable A5/1 or opaque A5/3
	// before spending any search effort.
	Cipher  CipherMode
	Payload []byte
	// IMSI and RAND identify the authentication context the session
	// was ciphered under. Real GSM exposes both in the clear (paging
	// identities, the authentication-request RAND), so a passive
	// sniffer may key caches on them; they are metadata, not payload.
	IMSI string
	RAND [16]byte
}

// BurstListener receives a copy of every burst on a subscribed ARFCN.
// Listeners must not block; heavy work should be handed off.
type BurstListener func(RadioBurst)

// CallEvent is an incoming circuit-switched call, carrying the caller
// ID the MitM uses to reveal the victim's MSISDN.
type CallEvent struct {
	FromMSISDN string
	ToMSISDN   string
}

// Config parameterizes a Network.
type Config struct {
	// KeySpace constrains session keys so the sniffer's exhaustive
	// crack terminates; see the package comment.
	KeySpace a51.KeySpace
	// Cipher frames follow the GSM COUNT structure (Count22): each
	// burst is keyed by its 51×26-multiframe position, and sessions
	// are scheduled so the paging burst lands on a CCCH paging block.
	// A table backend precomputed over PagingFrames() therefore covers
	// every known-plaintext burst the network ever emits.
	// ReauthEvery models operators that skip the authentication
	// procedure on session setup: a fresh RAND challenge (and hence a
	// fresh Kc) is run only every ReauthEvery-th GSM SMS session per
	// subscriber; sessions in between reuse the previous (RAND, Kc).
	// 0 or 1 re-authenticates every session. Kc reuse is a documented
	// real-world weakness — an attacker who cracked one session key
	// reads every following session until the next re-authentication —
	// and the sniffer's per-subscriber (IMSI, RAND) cache exploits it.
	ReauthEvery int
	// Seed drives all nondeterminism (RAND challenges, code session
	// IDs) for reproducible experiments.
	Seed int64
}

// DefaultConfig uses a 16-bit key space, crackable in well under a
// second on one core.
func DefaultConfig() Config {
	return Config{
		KeySpace: a51.KeySpace{Base: 0xC118000000000000, Bits: 16},
		Seed:     1,
	}
}

// Network is the operator core: HLR, cells, SMS routing and the radio
// bus. All methods are safe for concurrent use.
type Network struct {
	cfg Config

	mu          sync.Mutex
	subscribers map[string]*Subscriber // by IMSI
	byMSISDN    map[string]*Subscriber
	cells       map[string]*Cell
	serving     map[string]*Terminal // IMSI -> terminal receiving traffic
	challenges  map[string][16]byte  // IMSI -> outstanding RAND
	auth        map[string]*authCtx  // IMSI -> current SMS cipher context
	jammed      map[string]bool      // cell ID -> LTE plane jammed
	listeners   map[int]map[int]BurstListener
	nextLid     int
	frame       uint32
	nextSession uint32
	rng         *rand.Rand

	// delivered counts successful SMS deliveries, keyed by transport,
	// for the stealthiness experiments.
	delivered map[string]int
}

// NewNetwork builds an empty network.
func NewNetwork(cfg Config) *Network {
	if cfg.KeySpace.Bits <= 0 {
		cfg.KeySpace = DefaultConfig().KeySpace
	}
	return &Network{
		cfg:         cfg,
		subscribers: make(map[string]*Subscriber),
		byMSISDN:    make(map[string]*Subscriber),
		cells:       make(map[string]*Cell),
		serving:     make(map[string]*Terminal),
		challenges:  make(map[string][16]byte),
		auth:        make(map[string]*authCtx),
		jammed:      make(map[string]bool),
		listeners:   make(map[int]map[int]BurstListener),
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		delivered:   make(map[string]int),
	}
}

// KeySpace exposes the configured session-key space (the sniffer needs
// it; in reality this corresponds to "A5/1 is breakable at all").
func (n *Network) KeySpace() a51.KeySpace { return n.cfg.KeySpace }

// AddCell registers a cell.
func (n *Network) AddCell(c Cell) (*Cell, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if c.ID == "" {
		return nil, fmt.Errorf("telecom: cell with empty ID")
	}
	if _, dup := n.cells[c.ID]; dup {
		return nil, fmt.Errorf("%w: %s", ErrDuplicateCell, c.ID)
	}
	if len(c.ARFCNs) == 0 {
		return nil, fmt.Errorf("telecom: cell %s has no ARFCNs", c.ID)
	}
	cell := c // copy
	n.cells[c.ID] = &cell
	return &cell, nil
}

// Cell looks up a cell by ID.
func (n *Network) Cell(id string) (*Cell, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	c, ok := n.cells[id]
	return c, ok
}

// StrongestCell returns the highest-power cell on the air — what an
// idle phone camps on after reselection. Ties break by cell ID, so
// reselection is deterministic. Rogue cells participate: broadcasting
// louder than the legitimate network is exactly the IMSI-catcher
// trick.
func (n *Network) StrongestCell() (*Cell, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	var best *Cell
	for _, c := range n.cells {
		switch {
		case best == nil,
			c.effectivePower() > best.effectivePower(),
			c.effectivePower() == best.effectivePower() && c.ID < best.ID:
			best = c
		}
	}
	return best, best != nil
}

// SetLTEJammed toggles the jammer (Fig 7's "4G Jammer") over a cell's
// LTE plane; jammed cells force their terminals down to GSM.
func (n *Network) SetLTEJammed(cellID string, jammed bool) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.cells[cellID]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownCell, cellID)
	}
	n.jammed[cellID] = jammed
	return nil
}

// IsLTEJammed reports the jammer state over a cell.
func (n *Network) IsLTEJammed(cellID string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.jammed[cellID]
}

// jammedLocked requires n.mu held.
func (n *Network) jammedLocked(cellID string) bool { return n.jammed[cellID] }

// Register creates a subscriber. The SIM secret Ki is derived from the
// network seed and IMSI, so experiments are reproducible.
func (n *Network) Register(imsi, msisdn string) (*Subscriber, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if imsi == "" || msisdn == "" {
		return nil, fmt.Errorf("telecom: empty IMSI or MSISDN")
	}
	if _, dup := n.subscribers[imsi]; dup {
		return nil, fmt.Errorf("%w: IMSI %s", ErrDuplicateSub, imsi)
	}
	if _, dup := n.byMSISDN[msisdn]; dup {
		return nil, fmt.Errorf("%w: MSISDN %s", ErrDuplicateSub, msisdn)
	}
	sub := &Subscriber{IMSI: imsi, MSISDN: msisdn, ki: kiFor(n.cfg.Seed, imsi)}
	n.subscribers[imsi] = sub
	n.byMSISDN[msisdn] = sub
	return sub, nil
}

// SubscriberByMSISDN resolves a phone number.
func (n *Network) SubscriberByMSISDN(msisdn string) (*Subscriber, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	s, ok := n.byMSISDN[msisdn]
	return s, ok
}

// Subscribe attaches a burst listener to an ARFCN, returning a cancel
// function. This is the receiver primitive sniffers build on.
func (n *Network) Subscribe(arfcn int, fn BurstListener) (cancel func()) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.listeners[arfcn] == nil {
		n.listeners[arfcn] = make(map[int]BurstListener)
	}
	id := n.nextLid
	n.nextLid++
	n.listeners[arfcn][id] = fn
	return func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		delete(n.listeners[arfcn], id)
	}
}

// emit delivers a burst to listeners. Callers must NOT hold n.mu.
func (n *Network) emit(b RadioBurst) {
	n.mu.Lock()
	fns := make([]BurstListener, 0, len(n.listeners[b.ARFCN]))
	for _, fn := range n.listeners[b.ARFCN] {
		fns = append(fns, fn)
	}
	n.mu.Unlock()
	for _, fn := range fns {
		// Copy payload per listener: receivers own their bytes.
		cp := b
		cp.Payload = append([]byte(nil), b.Payload...)
		fn(cp)
	}
}

// PagingPlaintext is the predictable system-message content of burst 0
// of every SMS transmission. Its structure is public (it models GSM
// paging/system information messages), which is what makes the
// known-plaintext attack possible.
func PagingPlaintext(sessionID uint32) []byte {
	buf := make([]byte, PagingPlaintextLen)
	FillPagingPlaintext(buf, sessionID)
	return buf
}

// PagingPlaintextLen is the byte length of every paging burst payload.
const PagingPlaintextLen = burstChunk

// FillPagingPlaintext writes PagingPlaintext(sessionID) into a
// PagingPlaintextLen-sized buffer, overwriting every byte — the
// allocation-free form pooled encoders and the batch sniffer use on
// recycled slab memory (the 10 header bytes plus the 4-byte session ID
// cover the length exactly).
func FillPagingPlaintext(buf []byte, sessionID uint32) {
	copy(buf, "PAGINGREQ1")
	binary.BigEndian.PutUint32(buf[10:], sessionID)
}

// burstChunk is the payload bytes carried per burst: 14 bytes = 112
// bits fits the 114-bit A5/1 burst keystream.
const burstChunk = 14

// kiFor derives a subscriber's SIM secret from the network seed, so
// experiments are reproducible and synthesized traffic (SessionKey)
// agrees with registered subscribers. The preimage bytes are exactly
// the former fmt.Sprintf("ki|%d|%s", seed, imsi) — campaign synthesis
// runs this per auth epoch, so it is assembled without fmt's
// allocations.
func kiFor(seed int64, imsi string) [16]byte {
	buf := make([]byte, 0, 64)
	buf = append(buf, "ki|"...)
	buf = strconv.AppendInt(buf, seed, 10)
	buf = append(buf, '|')
	buf = append(buf, imsi...)
	h := sha256.Sum256(buf)
	var ki [16]byte
	copy(ki[:], h[:16])
	return ki
}

// authCtx is the cipher context of a subscriber's GSM SMS sessions:
// the outstanding RAND, the derived Kc, and how many sessions have
// run under it (for Config.ReauthEvery).
type authCtx struct {
	rand [16]byte
	kc   uint64
	uses int
}

// smsAuthLocked returns the cipher context for the next SMS session,
// re-running the authentication procedure (fresh RAND, fresh Kc) when
// the reuse budget is exhausted. Requires n.mu held.
func (n *Network) smsAuthLocked(sub *Subscriber) *authCtx {
	ac := n.auth[sub.IMSI]
	if ac == nil || n.cfg.ReauthEvery <= 1 || ac.uses >= n.cfg.ReauthEvery {
		var rnd [16]byte
		n.rng.Read(rnd[:])
		ac = &authCtx{rand: rnd, kc: deriveKc(sub.ki, rnd, n.cfg.KeySpace)}
		n.auth[sub.IMSI] = ac
	}
	ac.uses++
	return ac
}

// deriveKc computes the session key from the SIM secret and the RAND
// challenge, confined to the configured key space (COMP128 stand-in).
func deriveKc(ki [16]byte, rnd [16]byte, space a51.KeySpace) uint64 {
	h := sha256.New()
	h.Write(ki[:])
	h.Write(rnd[:])
	sum := h.Sum(nil)
	return space.Key(binary.BigEndian.Uint64(sum[:8]))
}

// sres computes the authentication response (SRES) for a challenge.
func sres(ki [16]byte, rnd [16]byte) [4]byte {
	h := sha256.New()
	h.Write([]byte("sres"))
	h.Write(ki[:])
	h.Write(rnd[:])
	sum := h.Sum(nil)
	var out [4]byte
	copy(out[:], sum[:4])
	return out
}

// SendSMS routes a short message to the subscriber owning toMSISDN via
// that subscriber's serving terminal. Over GSM the TPDU is chunked
// into A5-protected bursts on one of the serving cell's ARFCNs; over
// (unjammed) LTE nothing touches the GSM radio bus.
//
// The returned transport is "lte", "gsm:A5/0" or "gsm:A5/1".
func (n *Network) SendSMS(fromOriginator, toMSISDN, text string) (transport string, err error) {
	n.mu.Lock()
	sub, ok := n.byMSISDN[toMSISDN]
	if !ok {
		n.mu.Unlock()
		return "", fmt.Errorf("%w: %s", ErrNoSubscriber, toMSISDN)
	}
	term := n.serving[sub.IMSI]
	if term == nil {
		n.mu.Unlock()
		return "", fmt.Errorf("%w: %s", ErrNoCoverage, toMSISDN)
	}
	cell, nativeRAT := term.snapshot() // lock order: n.mu -> term.mu
	if cell == nil {
		n.mu.Unlock()
		return "", fmt.Errorf("%w: %s (terminal detached)", ErrNoCoverage, toMSISDN)
	}

	tpdu := gsmcodec.Deliver{
		Originator: fromOriginator,
		Timestamp:  time.Date(2021, 4, 19, 12, 0, 0, 0, time.UTC).Add(time.Duration(n.frame) * time.Second),
		Text:       text,
	}
	// LTE path: encrypted data plane, invisible to the GSM bus. The
	// TPDU is still validated so an unencodable message errors on
	// every transport.
	if nativeRAT == RATLTE && cell.LTE && !n.jammedLocked(cell.ID) {
		if _, err := tpdu.Marshal(); err != nil {
			n.mu.Unlock()
			return "", fmt.Errorf("telecom: encode SMS: %w", err)
		}
		n.delivered["lte"]++
		n.mu.Unlock()
		term.receiveSMS(tpdu)
		return "lte", nil
	}

	// GSM path: authenticate (or reuse the cipher context), chunk,
	// encrypt per frame, emit on the air. The session is scheduled on
	// the next CCCH paging block so its known-plaintext burst lands on
	// a predictable frame class (see count.go).
	ac := n.smsAuthLocked(sub)
	sessionID := n.nextSession
	n.nextSession++
	start := NextPagingStart(n.frame)
	bursts, err := EncodeSMSBursts(SMSSession{
		ARFCN:      cell.ARFCNs[int(sessionID)%len(cell.ARFCNs)],
		CellID:     cell.ID,
		SessionID:  sessionID,
		StartFrame: start,
		Cipher:     cell.Cipher,
		Kc:         ac.kc,
		IMSI:       sub.IMSI,
		RAND:       ac.rand,
		Deliver:    tpdu,
	})
	if err != nil {
		n.mu.Unlock()
		return "", err
	}
	n.frame = start + uint32(len(bursts))
	mode := cell.Cipher
	n.delivered["gsm:"+mode.String()]++
	n.mu.Unlock()

	for _, b := range bursts {
		n.emit(b)
	}
	// The serving terminal holds Kc legitimately and receives the
	// decrypted message.
	term.receiveSMS(tpdu)
	return "gsm:" + mode.String(), nil
}

// CallFromIMSI places a circuit-switched call on behalf of the
// subscriber owning fromIMSI; the network resolves the caller ID from
// the HLR, so even a terminal that does not know "its" MSISDN exposes
// it to the callee.
func (n *Network) CallFromIMSI(fromIMSI, toMSISDN string) error {
	n.mu.Lock()
	sub, ok := n.subscribers[fromIMSI]
	n.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: IMSI %s", ErrNoSubscriber, fromIMSI)
	}
	return n.Call(sub.MSISDN, toMSISDN)
}

// Call places a circuit-switched call, delivering a CallEvent with
// caller ID to the callee's serving terminal.
func (n *Network) Call(fromMSISDN, toMSISDN string) error {
	n.mu.Lock()
	sub, ok := n.byMSISDN[toMSISDN]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoSubscriber, toMSISDN)
	}
	term := n.serving[sub.IMSI]
	n.mu.Unlock()
	if term == nil {
		return fmt.Errorf("%w: %s", ErrNoCoverage, toMSISDN)
	}
	term.receiveCall(CallEvent{FromMSISDN: fromMSISDN, ToMSISDN: toMSISDN})
	return nil
}

// DeliveryStats returns a copy of per-transport delivery counters.
func (n *Network) DeliveryStats() map[string]int {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[string]int, len(n.delivered))
	for k, v := range n.delivered {
		out[k] = v
	}
	return out
}

// ServingTerminal reports which terminal currently receives the
// subscriber's traffic (nil if none).
func (n *Network) ServingTerminal(imsi string) *Terminal {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.serving[imsi]
}

// --- GSM location-update authentication (one-way, as deployed) ---

// BeginLocationUpdate starts a location update for imsi and returns
// the RAND challenge. GSM authenticates only the phone to the network;
// the network never proves itself — the flaw fake base stations
// exploit (Fig 10).
func (n *Network) BeginLocationUpdate(imsi string) ([16]byte, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.subscribers[imsi]; !ok {
		return [16]byte{}, fmt.Errorf("%w: %s", ErrNoSubscriber, imsi)
	}
	var rnd [16]byte
	n.rng.Read(rnd[:])
	n.challenges[imsi] = rnd
	return rnd, nil
}

// CompleteLocationUpdate verifies the SRES response and, on success,
// makes term the subscriber's serving terminal. The terminal needs no
// knowledge of Ki — exactly why a fake victim terminal relaying the
// real SIM's answer wins.
func (n *Network) CompleteLocationUpdate(imsi string, answer [4]byte, term *Terminal) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	sub, ok := n.subscribers[imsi]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSubscriber, imsi)
	}
	rnd, ok := n.challenges[imsi]
	if !ok {
		return ErrNoChallenge
	}
	delete(n.challenges, imsi)
	if sres(sub.ki, rnd) != answer {
		return ErrAuthFailed
	}
	if term == nil || term.cell == nil {
		return fmt.Errorf("telecom: cannot serve a detached terminal")
	}
	n.serving[imsi] = term
	return nil
}
