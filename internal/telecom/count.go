package telecom

import (
	"crypto/sha256"
	"encoding/binary"

	"github.com/actfort/actfort/internal/a51"
)

// The 51×26 COUNT schedule is defined next to the cipher it keys (see
// internal/a51/frames.go); the telecom substrate re-exports it so
// radio callers never import the cipher package directly.
const (
	// Multi26 is the traffic-channel multiframe length.
	Multi26 = a51.Multi26
	// Multi51 is the control-channel multiframe length.
	Multi51 = a51.Multi51
	// HyperPeriod is the reduced hyperframe (lcm(51, 26) frames).
	HyperPeriod = a51.HyperPeriod
)

// Count22 maps an absolute downlink frame number to the 22-bit COUNT
// value bursts are ciphered under (T1 pinned to the reduced
// hyperframe; see a51.Count22).
func Count22(fn uint32) uint32 { return a51.Count22(fn) }

// NextPagingStart returns the first frame at or after fn that begins a
// CCCH paging block — where the network schedules every SMS session's
// predictable paging burst.
func NextPagingStart(fn uint32) uint32 { return a51.NextPagingStart(fn) }

// PagingFrames enumerates every COUNT value a paging burst can be
// ciphered under — the frame classes a table backend precomputes.
func PagingFrames() []uint32 { return a51.PagingFrames() }

// CellMix describes the cipher composition of an operator's cells: the
// fraction running unencrypted (A5/0) and the fraction upgraded to
// A5/3; the remainder run A5/1. Campaign scenarios draw each victim's
// serving-cell cipher from it — the radio-environment half of a
// fortification sweep.
type CellMix struct {
	// A50 is the share of cells with no over-the-air encryption.
	A50 float64
	// A53 is the share of cells upgraded to A5/3, which the rig's A5/1
	// crackers cannot break.
	A53 float64
}

// Mode maps a uniform draw u in [0, 1) to the cipher of the drawn
// cell.
func (m CellMix) Mode(u float64) CipherMode {
	switch {
	case u < m.A50:
		return CipherA50
	case u < m.A50+m.A53:
		return CipherA53
	default:
		return CipherA51
	}
}

// EncryptBurstA53 XORs payload with an A5/3 (KASUMI) keystream
// stand-in derived via SHA-256. The construction is not KASUMI — it is
// a stand-in the same way deriveKc stands in for COMP128 — but it has
// the one property the fortification scenarios need: no backend in
// internal/a51 recovers its key, so A5/3 traffic is opaque to the rig.
// XOR symmetry makes it its own inverse.
func EncryptBurstA53(kc uint64, frame uint32, payload []byte) []byte {
	out := make([]byte, len(payload))
	copy(out, payload)
	xorBurstA53(kc, frame, out)
	return out
}

// xorBurstA53 is EncryptBurstA53 in place: the pooled batch encoder
// ciphers A5/3 payloads inside its recycled slab instead of paying a
// fresh allocation per burst.
func xorBurstA53(kc uint64, frame uint32, payload []byte) {
	var seed [12]byte
	binary.BigEndian.PutUint64(seed[:8], kc)
	binary.BigEndian.PutUint32(seed[8:], frame)
	var block [32]byte
	for off := 0; off < len(payload); off += len(block) {
		h := sha256.New()
		h.Write([]byte("a53"))
		h.Write(seed[:])
		var ctr [4]byte
		binary.BigEndian.PutUint32(ctr[:], uint32(off))
		h.Write(ctr[:])
		h.Sum(block[:0])
		for i := 0; i < len(block) && off+i < len(payload); i++ {
			payload[off+i] ^= block[i]
		}
	}
}
