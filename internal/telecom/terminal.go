package telecom

import (
	"errors"
	"fmt"
	"sync"

	"github.com/actfort/actfort/internal/gsmcodec"
)

// RAT is the radio access technology a terminal is using.
type RAT int

const (
	// RATGSM is 2G.
	RATGSM RAT = iota + 1
	// RATLTE is 4G; SMS over LTE bypasses the sniffable GSM bus
	// unless the cell's LTE plane is jammed.
	RATLTE
)

// String names the RAT.
func (r RAT) String() string {
	switch r {
	case RATGSM:
		return "gsm"
	case RATLTE:
		return "lte"
	}
	return "rat(?)"
}

// ErrDetached reports an operation requiring cell attachment.
var ErrDetached = errors.New("telecom: terminal not attached to a cell")

// Terminal is a handset holding one SIM. A subscriber's traffic goes
// to whichever terminal most recently won a location update — normally
// their own phone, but the MitM substitutes the attacker's fake victim
// terminal.
type Terminal struct {
	net *Network
	sub *Subscriber

	mu    sync.Mutex
	cell  *Cell
	rat   RAT
	inbox []gsmcodec.Deliver
	calls []CallEvent
}

// NewTerminal binds a SIM to a handset. It starts detached.
func (n *Network) NewTerminal(sub *Subscriber, rat RAT) (*Terminal, error) {
	if sub == nil {
		return nil, fmt.Errorf("telecom: nil subscriber")
	}
	n.mu.Lock()
	if _, ok := n.subscribers[sub.IMSI]; !ok {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNoSubscriber, sub.IMSI)
	}
	n.mu.Unlock()
	if rat != RATGSM && rat != RATLTE {
		return nil, fmt.Errorf("telecom: invalid RAT %d", rat)
	}
	return &Terminal{net: n, sub: sub, rat: rat}, nil
}

// NewCloneTerminal builds a handset that claims an IMSI without
// holding its SIM secret: the attacker's "fake victim terminal" (FVT
// in Fig 10). Its RespondAuth produces garbage — to win a location
// update it must relay the challenge to the real SIM, which is exactly
// the MitM's auth-relay step. Its MSISDN() is empty; caller ID is
// attached by the network from the HLR, which is how the attack
// reveals the victim's number.
func (n *Network) NewCloneTerminal(imsi string) (*Terminal, error) {
	n.mu.Lock()
	_, ok := n.subscribers[imsi]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSubscriber, imsi)
	}
	// Zero ki: the clone cannot answer challenges itself.
	return &Terminal{net: n, sub: &Subscriber{IMSI: imsi}, rat: RATGSM}, nil
}

// IMSI returns the SIM identity. Real phones disclose the IMSI to any
// base station that asks (identity request) — the IMSI-catcher step.
func (t *Terminal) IMSI() string { return t.sub.IMSI }

// MSISDN returns the phone number.
func (t *Terminal) MSISDN() string { return t.sub.MSISDN }

// RAT returns the radio technology currently in effect, accounting
// for LTE jamming on the attached cell (a jammed LTE cell forces GSM).
func (t *Terminal) RAT() RAT {
	cell, native := t.snapshot()
	if native == RATLTE && cell != nil && (!cell.LTE || t.net.IsLTEJammed(cell.ID)) {
		return RATGSM
	}
	return native
}

// snapshot returns the attached cell and the native RAT under the
// terminal lock. Safe to call with the network lock held (lock order
// is always Network.mu before Terminal.mu).
func (t *Terminal) snapshot() (*Cell, RAT) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cell, t.rat
}

// Cell returns the attached cell (nil when detached).
func (t *Terminal) Cell() *Cell {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cell
}

// AttachTo camps the terminal on a cell. Real phones pick the
// strongest broadcast — including a rogue cell overpowering the
// legitimate one; the caller decides which cell "wins".
func (t *Terminal) AttachTo(cell *Cell) error {
	if cell == nil {
		return ErrUnknownCell
	}
	t.mu.Lock()
	t.cell = cell
	t.mu.Unlock()
	return nil
}

// Detach drops cell attachment.
func (t *Terminal) Detach() {
	t.mu.Lock()
	t.cell = nil
	t.mu.Unlock()
}

// Reselect camps the terminal on the strongest broadcasting cell, the
// way an idle phone behaves. A rogue cell that overpowers the
// legitimate one captures the terminal — the MitM's victim-capture
// step uses exactly this.
func (t *Terminal) Reselect() (*Cell, error) {
	cell, ok := t.net.StrongestCell()
	if !ok {
		return nil, ErrUnknownCell
	}
	if err := t.AttachTo(cell); err != nil {
		return nil, err
	}
	return cell, nil
}

// Attach performs the full legitimate attach: camp on the cell, then
// run the location-update authentication so the network serves this
// terminal.
func (t *Terminal) Attach(cell *Cell) error {
	if err := t.AttachTo(cell); err != nil {
		return err
	}
	rnd, err := t.net.BeginLocationUpdate(t.sub.IMSI)
	if err != nil {
		return err
	}
	return t.net.CompleteLocationUpdate(t.sub.IMSI, t.RespondAuth(rnd), t)
}

// RespondAuth lets the SIM answer an authentication challenge. Any
// base station the phone is camped on can trigger this — GSM has no
// network authentication, so a rogue cell can relay challenges (the
// MitM's auth-relay step).
func (t *Terminal) RespondAuth(rnd [16]byte) [4]byte {
	return sres(t.sub.ki, rnd)
}

// PlaceCall calls a number. The caller ID the callee sees is resolved
// by the network from the HLR using this terminal's IMSI — which is
// why the MitM's fake victim terminal can reveal the victim's MSISDN
// to the attacker without knowing it (Fig 10 "Call & Reveal MSISDN").
func (t *Terminal) PlaceCall(toMSISDN string) error {
	t.mu.Lock()
	attached := t.cell != nil
	t.mu.Unlock()
	if !attached {
		return ErrDetached
	}
	return t.net.CallFromIMSI(t.sub.IMSI, toMSISDN)
}

// receiveSMS appends to the inbox (called by the network core).
func (t *Terminal) receiveSMS(d gsmcodec.Deliver) {
	t.mu.Lock()
	t.inbox = append(t.inbox, d)
	t.mu.Unlock()
}

// receiveCall records an incoming call.
func (t *Terminal) receiveCall(e CallEvent) {
	t.mu.Lock()
	t.calls = append(t.calls, e)
	t.mu.Unlock()
}

// Inbox returns a copy of received messages, oldest first.
func (t *Terminal) Inbox() []gsmcodec.Deliver {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]gsmcodec.Deliver(nil), t.inbox...)
}

// Calls returns a copy of received call events.
func (t *Terminal) Calls() []CallEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]CallEvent(nil), t.calls...)
}

// LastSMS returns the most recent message, if any.
func (t *Terminal) LastSMS() (gsmcodec.Deliver, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.inbox) == 0 {
		return gsmcodec.Deliver{}, false
	}
	return t.inbox[len(t.inbox)-1], true
}
