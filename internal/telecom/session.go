package telecom

import (
	"fmt"

	"github.com/actfort/actfort/internal/a51"
	"github.com/actfort/actfort/internal/gsmcodec"
)

// SMSSession describes one SMS transmission on the GSM air interface:
// the radio coordinates (channel, cell, session and frame numbers),
// the cipher context, and the TPDU to carry. Network.SendSMS encodes
// its live traffic through it, and the population-scale campaign
// engine (internal/campaign) synthesizes air traffic for millions of
// subscribers without driving a full Network — both produce
// bit-identical bursts for the same parameters.
type SMSSession struct {
	ARFCN     int
	CellID    string
	SessionID uint32
	// StartFrame is the absolute frame number of the paging burst;
	// every following burst increments it. Each emitted burst carries
	// the 22-bit COUNT value (Count22) of its frame — the 51×26
	// multiframe schedule, not a flat counter. Callers wanting the
	// paging burst on a predictable frame class (table-backend
	// coverage) align StartFrame with NextPagingStart.
	StartFrame uint32
	// Cipher selects the over-the-air protection: CipherA50 (or zero)
	// transmits plaintext, CipherA51 encrypts under Kc with A5/1,
	// CipherA53 with the uncrackable A5/3 stand-in.
	Cipher CipherMode
	Kc     uint64
	// IMSI and RAND identify the authentication context the session
	// runs under. Both are visible on the air in real GSM — paging
	// identities and the RAND of the authentication request travel in
	// the clear — which is what lets a passive sniffer key a
	// per-subscriber Kc cache on them.
	IMSI string
	RAND [16]byte
	// Deliver is the SMS payload.
	Deliver gsmcodec.Deliver
}

// EncodeSMSBursts chunks the session's TPDU into radio bursts: burst 0
// is the predictable paging burst (the known-plaintext foothold), the
// rest carry burstChunk-byte payload slices, each encrypted under its
// own COUNT frame value when the session is ciphered.
func EncodeSMSBursts(s SMSSession) ([]RadioBurst, error) {
	raw, err := s.Deliver.Marshal()
	if err != nil {
		return nil, fmt.Errorf("telecom: encode SMS: %w", err)
	}
	chunks := [][]byte{PagingPlaintext(s.SessionID)}
	for off := 0; off < len(raw); off += burstChunk {
		end := off + burstChunk
		if end > len(raw) {
			end = len(raw)
		}
		chunks = append(chunks, raw[off:end])
	}
	cipher := s.Cipher
	if cipher == 0 {
		cipher = CipherA50
	}
	bursts := make([]RadioBurst, 0, len(chunks))
	for seq, chunk := range chunks {
		frame := Count22(s.StartFrame + uint32(seq))
		payload := append([]byte(nil), chunk...)
		switch cipher {
		case CipherA51:
			payload = a51.EncryptBurst(s.Kc, frame, payload)
		case CipherA53:
			payload = EncryptBurstA53(s.Kc, frame, payload)
		}
		bursts = append(bursts, RadioBurst{
			ARFCN:     s.ARFCN,
			CellID:    s.CellID,
			Frame:     frame,
			SessionID: s.SessionID,
			Seq:       seq,
			Total:     len(chunks),
			Encrypted: cipher.Encrypts(),
			Cipher:    cipher,
			Payload:   payload,
			IMSI:      s.IMSI,
			RAND:      s.RAND,
		})
	}
	return bursts, nil
}

// SessionKey computes the Kc a network created with the given seed
// would derive for subscriber imsi under challenge rnd, confined to
// space. It mirrors Register's Ki derivation plus the COMP128
// stand-in, so synthesized traffic (campaign radio batches) and live
// Network traffic agree on keys without registering millions of
// subscribers in one HLR.
func SessionKey(seed int64, imsi string, rnd [16]byte, space a51.KeySpace) uint64 {
	return deriveKc(kiFor(seed, imsi), rnd, space)
}
