package telecom

import (
	"fmt"

	"github.com/actfort/actfort/internal/a51"
	"github.com/actfort/actfort/internal/gsmcodec"
)

// SMSSession describes one SMS transmission on the GSM air interface:
// the radio coordinates (channel, cell, session and frame numbers),
// the cipher context, and the TPDU to carry. Network.SendSMS encodes
// its live traffic through it, and the population-scale campaign
// engine (internal/campaign) synthesizes air traffic for millions of
// subscribers without driving a full Network — both produce
// bit-identical bursts for the same parameters.
type SMSSession struct {
	ARFCN     int
	CellID    string
	SessionID uint32
	// StartFrame is the cipher frame number of the paging burst;
	// every following burst increments it. FrameWrap, when positive,
	// wraps each emitted frame number modulo FrameWrap (see
	// Config.FrameWrap).
	StartFrame uint32
	FrameWrap  int
	// Encrypted selects A5/1 protection under Kc.
	Encrypted bool
	Kc        uint64
	// IMSI and RAND identify the authentication context the session
	// runs under. Both are visible on the air in real GSM — paging
	// identities and the RAND of the authentication request travel in
	// the clear — which is what lets a passive sniffer key a
	// per-subscriber Kc cache on them.
	IMSI string
	RAND [16]byte
	// Deliver is the SMS payload.
	Deliver gsmcodec.Deliver
}

// EncodeSMSBursts chunks the session's TPDU into radio bursts: burst 0
// is the predictable paging burst (the known-plaintext foothold), the
// rest carry burstChunk-byte payload slices, each encrypted under its
// own frame number when the session is A5/1-protected.
func EncodeSMSBursts(s SMSSession) ([]RadioBurst, error) {
	raw, err := s.Deliver.Marshal()
	if err != nil {
		return nil, fmt.Errorf("telecom: encode SMS: %w", err)
	}
	chunks := [][]byte{PagingPlaintext(s.SessionID)}
	for off := 0; off < len(raw); off += burstChunk {
		end := off + burstChunk
		if end > len(raw) {
			end = len(raw)
		}
		chunks = append(chunks, raw[off:end])
	}
	bursts := make([]RadioBurst, 0, len(chunks))
	for seq, chunk := range chunks {
		frame := s.StartFrame + uint32(seq)
		if s.FrameWrap > 0 {
			frame %= uint32(s.FrameWrap)
		}
		payload := append([]byte(nil), chunk...)
		if s.Encrypted {
			payload = a51.EncryptBurst(s.Kc, frame, payload)
		}
		bursts = append(bursts, RadioBurst{
			ARFCN:     s.ARFCN,
			CellID:    s.CellID,
			Frame:     frame,
			SessionID: s.SessionID,
			Seq:       seq,
			Total:     len(chunks),
			Encrypted: s.Encrypted,
			Payload:   payload,
			IMSI:      s.IMSI,
			RAND:      s.RAND,
		})
	}
	return bursts, nil
}

// SessionKey computes the Kc a network created with the given seed
// would derive for subscriber imsi under challenge rnd, confined to
// space. It mirrors Register's Ki derivation plus the COMP128
// stand-in, so synthesized traffic (campaign radio batches) and live
// Network traffic agree on keys without registering millions of
// subscribers in one HLR.
func SessionKey(seed int64, imsi string, rnd [16]byte, space a51.KeySpace) uint64 {
	return deriveKc(kiFor(seed, imsi), rnd, space)
}
