package telecom

import (
	"fmt"

	"github.com/actfort/actfort/internal/a51"
	"github.com/actfort/actfort/internal/gsmcodec"
)

// SMSSession describes one SMS transmission on the GSM air interface:
// the radio coordinates (channel, cell, session and frame numbers),
// the cipher context, and the TPDU to carry. Network.SendSMS encodes
// its live traffic through it, and the population-scale campaign
// engine (internal/campaign) synthesizes air traffic for millions of
// subscribers without driving a full Network — both produce
// bit-identical bursts for the same parameters.
type SMSSession struct {
	ARFCN     int
	CellID    string
	SessionID uint32
	// StartFrame is the absolute frame number of the paging burst;
	// every following burst increments it. Each emitted burst carries
	// the 22-bit COUNT value (Count22) of its frame — the 51×26
	// multiframe schedule, not a flat counter. Callers wanting the
	// paging burst on a predictable frame class (table-backend
	// coverage) align StartFrame with NextPagingStart.
	StartFrame uint32
	// Cipher selects the over-the-air protection: CipherA50 (or zero)
	// transmits plaintext, CipherA51 encrypts under Kc with A5/1,
	// CipherA53 with the uncrackable A5/3 stand-in.
	Cipher CipherMode
	Kc     uint64
	// IMSI and RAND identify the authentication context the session
	// runs under. Both are visible on the air in real GSM — paging
	// identities and the RAND of the authentication request travel in
	// the clear — which is what lets a passive sniffer key a
	// per-subscriber Kc cache on them.
	IMSI string
	RAND [16]byte
	// Deliver is the SMS payload.
	Deliver gsmcodec.Deliver
}

// SessionBurstCount returns how many radio bursts EncodeSMSBursts
// emits for a TPDU of rawLen marshaled bytes: the paging burst plus the
// payload chunks. Batch callers (the campaign engine) use it to lay out
// the COUNT schedule of millions of sessions from one shared TPDU
// without marshaling each session.
func SessionBurstCount(rawLen int) int {
	return 1 + (rawLen+burstChunk-1)/burstChunk
}

// appendSessionBursts lays out a session's bursts — plaintext payloads
// and final COUNT frame values, everything but the cipher pass — onto
// dst, shared by the scalar and batch encoders. raw is the session's
// marshaled TPDU (hoisted to the caller so batch encoders can marshal
// a shared TPDU once). grab supplies each payload buffer; every byte
// of a grabbed buffer is overwritten, so pooled callers may hand out
// recycled slab memory.
func appendSessionBursts(dst []RadioBurst, s *SMSSession, raw []byte, grab func(n int) []byte) ([]RadioBurst, CipherMode) {
	total := SessionBurstCount(len(raw))
	cipher := s.Cipher
	if cipher == 0 {
		cipher = CipherA50
	}
	for seq := 0; seq < total; seq++ {
		var payload []byte
		if seq == 0 {
			payload = grab(burstChunk)
			FillPagingPlaintext(payload, s.SessionID)
		} else {
			off := (seq - 1) * burstChunk
			end := off + burstChunk
			if end > len(raw) {
				end = len(raw)
			}
			payload = grab(end - off)
			copy(payload, raw[off:end])
		}
		dst = append(dst, RadioBurst{
			ARFCN:     s.ARFCN,
			CellID:    s.CellID,
			Frame:     Count22(s.StartFrame + uint32(seq)),
			SessionID: s.SessionID,
			Seq:       seq,
			Total:     total,
			Encrypted: cipher.Encrypts(),
			Cipher:    cipher,
			Payload:   payload,
			IMSI:      s.IMSI,
			RAND:      s.RAND,
		})
	}
	return dst, cipher
}

// plainBursts is appendSessionBursts with per-burst heap payloads — the
// layout step of the non-pooled encoders.
func plainBursts(s *SMSSession, raw []byte) ([]RadioBurst, CipherMode) {
	dst := make([]RadioBurst, 0, SessionBurstCount(len(raw)))
	return appendSessionBursts(dst, s, raw, func(n int) []byte { return make([]byte, n) })
}

// EncodeSMSBursts chunks the session's TPDU into radio bursts: burst 0
// is the predictable paging burst (the known-plaintext foothold), the
// rest carry burstChunk-byte payload slices, each encrypted under its
// own COUNT frame value when the session is ciphered.
func EncodeSMSBursts(s SMSSession) ([]RadioBurst, error) {
	raw, err := s.Deliver.Marshal()
	if err != nil {
		return nil, fmt.Errorf("telecom: encode SMS: %w", err)
	}
	bursts, cipher := plainBursts(&s, raw)
	for i := range bursts {
		switch cipher {
		case CipherA51:
			bursts[i].Payload = a51.EncryptBurst(s.Kc, bursts[i].Frame, bursts[i].Payload)
		case CipherA53:
			bursts[i].Payload = EncryptBurstA53(s.Kc, bursts[i].Frame, bursts[i].Payload)
		}
	}
	return bursts, nil
}

// EncodeSMSBurstsBatch encodes many sessions in one call, batching
// every A5/1 burst across sessions into 64-lane bitsliced encryptor
// passes (a51.EncryptBurstsBatch): the (Kc, COUNT) pairs of up to
// a51.BatchLanes bursts are transposed into lane-sliced registers, the
// shared boolean clock runs once, and the keystream transposes back.
// The output is byte-identical to calling EncodeSMSBursts on each
// session in order — only the cipher arithmetic is batched. A5/0
// bursts travel as plaintext and A5/3 bursts go through the scalar
// KASUMI stand-in, so mixed-cipher batches are fine. An unencodable
// TPDU fails the whole batch; callers synthesizing traffic at scale
// validate their (shared) TPDU once up front.
func EncodeSMSBurstsBatch(sessions []SMSSession) ([][]RadioBurst, error) {
	out := make([][]RadioBurst, len(sessions))
	var (
		kcs      []uint64
		frames   []uint32
		payloads [][]byte
		// Campaign batches carry one shared TPDU across millions of
		// sessions; marshal it once per distinct Deliver value instead
		// of once per session.
		lastDeliver gsmcodec.Deliver
		lastRaw     []byte
		haveRaw     bool
	)
	for si := range sessions {
		if !haveRaw || sessions[si].Deliver != lastDeliver {
			raw, err := sessions[si].Deliver.Marshal()
			if err != nil {
				return nil, fmt.Errorf("telecom: batch session %d: %w", si, err)
			}
			lastDeliver, lastRaw, haveRaw = sessions[si].Deliver, raw, true
		}
		bursts, cipher := plainBursts(&sessions[si], lastRaw)
		switch cipher {
		case CipherA51:
			for i := range bursts {
				kcs = append(kcs, sessions[si].Kc)
				frames = append(frames, bursts[i].Frame)
				payloads = append(payloads, bursts[i].Payload)
			}
		case CipherA53:
			for i := range bursts {
				bursts[i].Payload = EncryptBurstA53(sessions[si].Kc, bursts[i].Frame, bursts[i].Payload)
			}
		}
		out[si] = bursts
	}
	// One bitsliced pass per 64 gathered bursts, XORing the keystream
	// into the burst payloads in place.
	a51.EncryptBurstsBatch(kcs, frames, payloads)
	return out, nil
}

// SessionKey computes the Kc a network created with the given seed
// would derive for subscriber imsi under challenge rnd, confined to
// space. It mirrors Register's Ki derivation plus the COMP128
// stand-in, so synthesized traffic (campaign radio batches) and live
// Network traffic agree on keys without registering millions of
// subscribers in one HLR.
func SessionKey(seed int64, imsi string, rnd [16]byte, space a51.KeySpace) uint64 {
	return deriveKc(kiFor(seed, imsi), rnd, space)
}
