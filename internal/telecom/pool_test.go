package telecom

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/actfort/actfort/internal/gsmcodec"
)

// poolTestSessions builds n sessions across cipher modes, TPDU lengths
// and (optionally) distinct Delivers, the same shape the batch≡scalar
// test uses.
func poolTestSessions(rng *rand.Rand, n int, sharedTPDU bool) []SMSSession {
	modes := []CipherMode{0, CipherA50, CipherA51, CipherA53}
	sessions := make([]SMSSession, n)
	frame := uint32(0)
	for i := range sessions {
		text := "Code 845512"
		if !sharedTPDU {
			text = strings.Repeat("Code 845512 ", 1+rng.Intn(8))
		}
		start := NextPagingStart(frame)
		var rnd [16]byte
		rng.Read(rnd[:])
		sessions[i] = SMSSession{
			ARFCN:      512 + rng.Intn(4),
			CellID:     "pool-cell",
			SessionID:  uint32(i),
			StartFrame: start,
			Cipher:     modes[rng.Intn(len(modes))],
			Kc:         rng.Uint64(),
			IMSI:       fmt.Sprintf("46000%05d", i),
			RAND:       rnd,
			Deliver: gsmcodec.Deliver{
				Originator: "ActFort",
				Timestamp:  time.Date(2021, 4, 19, 12, 0, 0, 0, time.UTC),
				Text:       text,
			},
		}
		frame = start + 12
	}
	return sessions
}

// TestEncodeSMSBurstsIntoMatchesScalar pins the pooled flat encoder at
// the layer that owns the contract: for every session, the bursts
// EncodeSMSBurstsInto appends to the flat trace must be byte-identical
// to per-session EncodeSMSBursts — across cipher modes, shared and
// distinct TPDUs, and ragged batch sizes straddling the 64-lane block
// boundary.
func TestEncodeSMSBurstsIntoMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	buf := AcquireBurstBuffer()
	defer buf.Release()
	for _, shared := range []bool{true, false} {
		for _, n := range []int{1, 5, 64, 71, 200} {
			sessions := poolTestSessions(rng, n, shared)
			flat, err := EncodeSMSBurstsInto(sessions, buf)
			if err != nil {
				t.Fatalf("shared=%v n=%d: pooled encode: %v", shared, n, err)
			}
			off := 0
			for i := range sessions {
				want, err := EncodeSMSBursts(sessions[i])
				if err != nil {
					t.Fatalf("shared=%v n=%d session %d: scalar encode: %v", shared, n, i, err)
				}
				if off+len(want) > len(flat) {
					t.Fatalf("shared=%v n=%d: flat trace too short at session %d", shared, n, i)
				}
				got := flat[off : off+len(want)]
				if !reflect.DeepEqual([]RadioBurst(got), want) {
					t.Fatalf("shared=%v n=%d session %d (cipher %v): pooled and scalar bursts differ:\npooled %+v\nscalar %+v",
						shared, n, i, sessions[i].Cipher, got, want)
				}
				off += len(want)
			}
			if off != len(flat) {
				t.Fatalf("shared=%v n=%d: flat trace has %d trailing bursts", shared, n, len(flat)-off)
			}
		}
	}
}

// TestBurstBufferReuseInvalidatesPreviousCall pins the aliasing
// contract: each EncodeSMSBurstsInto call may recycle the previous
// call's memory, and the new call's bursts must be correct even though
// the buffer was filled with different traffic before — the
// shard-over-shard reuse pattern of campaign workers.
func TestBurstBufferReuseInvalidatesPreviousCall(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	buf := AcquireBurstBuffer()
	defer buf.Release()
	// Warm the buffer with a large batch, then encode a different,
	// smaller batch into the same buffer and check against scalar.
	if _, err := EncodeSMSBurstsInto(poolTestSessions(rng, 150, false), buf); err != nil {
		t.Fatal(err)
	}
	sessions := poolTestSessions(rng, 40, true)
	flat, err := EncodeSMSBurstsInto(sessions, buf)
	if err != nil {
		t.Fatal(err)
	}
	off := 0
	for i := range sessions {
		want, err := EncodeSMSBursts(sessions[i])
		if err != nil {
			t.Fatal(err)
		}
		got := flat[off : off+len(want)]
		if !reflect.DeepEqual([]RadioBurst(got), want) {
			t.Fatalf("session %d differs after buffer reuse:\npooled %+v\nscalar %+v", i, got, want)
		}
		off += len(want)
	}
}

// TestEncodeSMSBurstsIntoError pins the loud failure mode, matching
// EncodeSMSBurstsBatch: one unencodable TPDU fails the whole batch,
// naming the session.
func TestEncodeSMSBurstsIntoError(t *testing.T) {
	buf := AcquireBurstBuffer()
	defer buf.Release()
	sessions := []SMSSession{
		{Deliver: gsmcodec.Deliver{Originator: "ok", Text: "fine"}},
		{Deliver: gsmcodec.Deliver{Originator: "ok", Text: "☃ not in GSM 03.38"}},
	}
	if _, err := EncodeSMSBurstsInto(sessions, buf); err == nil {
		t.Fatal("unencodable session accepted")
	} else if !strings.Contains(err.Error(), "session 1") {
		t.Fatalf("error does not name the failing session: %v", err)
	}
}
