package telecom

// This file is the pooled batch-encoding path: campaign-scale callers
// encode whole shards of sessions per call, and the per-burst payload
// copies plus per-session descriptor slices were the largest GC
// population of a million-subscriber run. A BurstBuffer owns that
// memory and recycles it call over call (and, through a sync.Pool,
// worker over worker), so the steady-state encode allocates nothing
// but the occasional slab growth.

import (
	"fmt"
	"sync"

	"github.com/actfort/actfort/internal/a51"
	"github.com/actfort/actfort/internal/gsmcodec"
	"github.com/actfort/actfort/internal/slab"
)

// BurstBuffer recycles the descriptor and payload memory of batch
// burst encoding. Acquire one with AcquireBurstBuffer, pass it to
// EncodeSMSBurstsInto as many times as useful (each call reuses the
// memory of the previous one), and Release it when done.
//
// Lifetime contract: the bursts returned by EncodeSMSBurstsInto alias
// the buffer's memory. They stay valid until the next
// EncodeSMSBurstsInto call on the same buffer (or Release), so the
// consumer — e.g. sniffer.FeedBatch, which copies what it keeps — must
// be done with them before the buffer is reused.
type BurstBuffer struct {
	bursts []RadioBurst
	slab   slab.Slab[byte]
	// marshal memoization and A5/1 lane-gather scratch.
	tpdu   []byte
	kcs    []uint64
	frames []uint32
	lanes  [][]byte
}

var burstBufferPool = sync.Pool{New: func() any { return new(BurstBuffer) }}

// AcquireBurstBuffer hands out a pooled buffer.
func AcquireBurstBuffer() *BurstBuffer { return burstBufferPool.Get().(*BurstBuffer) }

// Release returns the buffer to the pool. The caller must be done with
// every burst slice the buffer's encode calls returned.
func (b *BurstBuffer) Release() {
	b.reset()
	burstBufferPool.Put(b)
}

func (b *BurstBuffer) reset() {
	// Drop the descriptor references (IMSI/cell strings, payload slice
	// headers) before truncating, so a pooled buffer retains capacity,
	// not the last shard's traffic.
	clear(b.bursts)
	clear(b.lanes)
	b.bursts = b.bursts[:0]
	b.slab.Reset()
	b.tpdu = b.tpdu[:0]
	b.kcs = b.kcs[:0]
	b.frames = b.frames[:0]
	b.lanes = b.lanes[:0]
}

// grab carves an n-byte payload buffer from the slab arena (see
// internal/slab for the aliasing guarantees). Callers overwrite every
// byte of the carve — payloads are full copies — so stale slab
// contents never leak into bursts.
func (b *BurstBuffer) grab(n int) []byte { return b.slab.Grab(n) }

// EncodeSMSBurstsInto encodes many sessions like EncodeSMSBurstsBatch —
// shared-TPDU marshal memoization, every A5/1 burst across sessions
// batched into 64-lane bitsliced encryptor passes, byte-identical
// output — but returns one flat burst trace in session order, with all
// descriptor and payload memory carved from buf. It is the
// zero-allocation (steady state) path the campaign engine feeds whole
// shards through before handing the trace to sniffer.FeedBatch.
//
// The returned slice aliases buf (see BurstBuffer); each call
// invalidates the previous call's bursts.
func EncodeSMSBurstsInto(sessions []SMSSession, buf *BurstBuffer) ([]RadioBurst, error) {
	buf.reset()
	var (
		lastDeliver gsmcodec.Deliver
		haveRaw     bool
	)
	for si := range sessions {
		if !haveRaw || sessions[si].Deliver != lastDeliver {
			raw, err := sessions[si].Deliver.Marshal()
			if err != nil {
				return nil, fmt.Errorf("telecom: batch session %d: %w", si, err)
			}
			// Keep the marshaled TPDU in the buffer so the memo byte
			// storage is recycled along with everything else.
			buf.tpdu = append(buf.tpdu[:0], raw...)
			lastDeliver, haveRaw = sessions[si].Deliver, true
		}
		start := len(buf.bursts)
		var cipher CipherMode
		buf.bursts, cipher = appendSessionBursts(buf.bursts, &sessions[si], buf.tpdu, buf.grab)
		switch cipher {
		case CipherA51:
			for i := start; i < len(buf.bursts); i++ {
				buf.kcs = append(buf.kcs, sessions[si].Kc)
				buf.frames = append(buf.frames, buf.bursts[i].Frame)
				buf.lanes = append(buf.lanes, buf.bursts[i].Payload)
			}
		case CipherA53:
			for i := start; i < len(buf.bursts); i++ {
				// In place inside the slab carve — no per-burst allocation.
				xorBurstA53(sessions[si].Kc, buf.bursts[i].Frame, buf.bursts[i].Payload)
			}
		}
	}
	// One bitsliced pass per 64 gathered bursts, XORing the keystream
	// into the burst payloads in place — as in EncodeSMSBurstsBatch.
	a51.EncryptBurstsBatch(buf.kcs, buf.frames, buf.lanes)
	return buf.bursts, nil
}
