package telecom

import (
	"testing"

	"github.com/actfort/actfort/internal/a51"
)

// TestCount22Structure pins the 51×26 COUNT mapping: T3 in bits 10..5,
// T2 in bits 4..0, periodic with the reduced hyperframe.
func TestCount22Structure(t *testing.T) {
	for _, fn := range []uint32{0, 1, 25, 26, 50, 51, 52, 1325, 1326, 99999} {
		c := Count22(fn)
		if t3 := c >> 5; t3 != fn%Multi51 {
			t.Errorf("Count22(%d) T3 = %d want %d", fn, t3, fn%Multi51)
		}
		if t2 := c & 31; t2 != fn%Multi26 {
			t.Errorf("Count22(%d) T2 = %d want %d", fn, t2, fn%Multi26)
		}
		if c != Count22(fn+HyperPeriod) {
			t.Errorf("Count22 not periodic at %d", fn)
		}
	}
	// CRT: within one hyperframe every frame gets a distinct COUNT.
	seen := make(map[uint32]uint32, HyperPeriod)
	for fn := uint32(0); fn < HyperPeriod; fn++ {
		c := Count22(fn)
		if prev, dup := seen[c]; dup {
			t.Fatalf("frames %d and %d share COUNT %d", prev, fn, c)
		}
		seen[c] = fn
	}
}

// TestPagingSchedule checks the CCCH alignment helpers: NextPagingStart
// lands on a paging block, and PagingFrames covers exactly the COUNT
// values paging bursts can be ciphered under.
func TestPagingSchedule(t *testing.T) {
	frames := PagingFrames()
	if len(frames) != 9*Multi26 {
		t.Fatalf("paging frame classes = %d want %d", len(frames), 9*Multi26)
	}
	covered := make(map[uint32]bool, len(frames))
	for _, f := range frames {
		covered[f] = true
	}
	for fn := uint32(0); fn < 3*HyperPeriod; fn += 7 {
		start := NextPagingStart(fn)
		if start < fn {
			t.Fatalf("NextPagingStart(%d) = %d went backwards", fn, start)
		}
		if !a51.IsPagingStart(start) {
			t.Fatalf("NextPagingStart(%d) = %d is not a paging block", fn, start)
		}
		if !covered[Count22(start)] {
			t.Fatalf("paging COUNT %d (frame %d) outside PagingFrames", Count22(start), start)
		}
	}
}

// TestEncryptBurstA53 checks XOR symmetry and that the keystream
// differs from A5/1's (the upgrade actually changes the cipher).
func TestEncryptBurstA53(t *testing.T) {
	payload := []byte("PAGINGREQ1-known-plaintext")
	const kc, frame = 0xC118000000000042, 38
	ct := EncryptBurstA53(kc, frame, payload)
	if string(ct) == string(payload) {
		t.Fatal("A5/3 stand-in did not encrypt")
	}
	back := EncryptBurstA53(kc, frame, ct)
	if string(back) != string(payload) {
		t.Fatalf("round trip = %q", back)
	}
	if string(EncryptBurstA53(kc, frame+1, payload)) == string(ct) {
		t.Fatal("A5/3 keystream ignores the frame number")
	}
}

// TestCellMixMode pins the draw mapping.
func TestCellMixMode(t *testing.T) {
	mix := CellMix{A50: 0.2, A53: 0.3}
	for _, tc := range []struct {
		u    float64
		want CipherMode
	}{
		{0.0, CipherA50}, {0.19, CipherA50},
		{0.2, CipherA53}, {0.49, CipherA53},
		{0.5, CipherA51}, {0.99, CipherA51},
	} {
		if got := mix.Mode(tc.u); got != tc.want {
			t.Errorf("Mode(%g) = %v want %v", tc.u, got, tc.want)
		}
	}
}

// TestSendSMSPagingAlignment checks the live network schedules every
// session's paging burst on a CCCH block, so table backends cover it.
func TestSendSMSPagingAlignment(t *testing.T) {
	n := NewNetwork(Config{Seed: 3})
	cell, err := n.AddCell(Cell{ID: "c", ARFCNs: []int{512}, Cipher: CipherA51})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := n.Register("460000000000031", "+8613800000031")
	if err != nil {
		t.Fatal(err)
	}
	term, err := n.NewTerminal(sub, RATGSM)
	if err != nil {
		t.Fatal(err)
	}
	if err := term.Attach(cell); err != nil {
		t.Fatal(err)
	}
	covered := make(map[uint32]bool)
	for _, f := range PagingFrames() {
		covered[f] = true
	}
	var pagingFrames []uint32
	cancel := n.Subscribe(512, func(b RadioBurst) {
		if b.Seq == 0 {
			pagingFrames = append(pagingFrames, b.Frame)
		}
	})
	defer cancel()
	for i := 0; i < 8; i++ {
		if _, err := n.SendSMS("Svc", sub.MSISDN, "code 845512"); err != nil {
			t.Fatal(err)
		}
	}
	if len(pagingFrames) != 8 {
		t.Fatalf("paging bursts = %d", len(pagingFrames))
	}
	for i, f := range pagingFrames {
		if !covered[f] {
			t.Errorf("session %d paging COUNT %d outside the paging frame classes", i, f)
		}
	}
}

// TestSendSMSA53Cell checks A5/3 cells deliver to the terminal but
// mark bursts with the upgraded cipher.
func TestSendSMSA53Cell(t *testing.T) {
	n := NewNetwork(Config{Seed: 5})
	cell, err := n.AddCell(Cell{ID: "c", ARFCNs: []int{512}, Cipher: CipherA53})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := n.Register("460000000000032", "+8613800000032")
	if err != nil {
		t.Fatal(err)
	}
	term, err := n.NewTerminal(sub, RATGSM)
	if err != nil {
		t.Fatal(err)
	}
	if err := term.Attach(cell); err != nil {
		t.Fatal(err)
	}
	var bursts []RadioBurst
	cancel := n.Subscribe(512, func(b RadioBurst) { bursts = append(bursts, b) })
	defer cancel()
	transport, err := n.SendSMS("Svc", sub.MSISDN, "code 845512")
	if err != nil {
		t.Fatal(err)
	}
	if transport != "gsm:A5/3" {
		t.Fatalf("transport = %q", transport)
	}
	if msg, ok := term.LastSMS(); !ok || msg.Text != "code 845512" {
		t.Fatalf("terminal delivery = %v %v", msg, ok)
	}
	if len(bursts) == 0 {
		t.Fatal("no bursts on the air")
	}
	for _, b := range bursts {
		if b.Cipher != CipherA53 || !b.Encrypted {
			t.Fatalf("burst cipher = %v encrypted = %v", b.Cipher, b.Encrypted)
		}
	}
}
