package report

import (
	"strings"
	"testing"

	"github.com/actfort/actfort/internal/authproc"
	"github.com/actfort/actfort/internal/collect"
	"github.com/actfort/actfort/internal/core"
	"github.com/actfort/actfort/internal/dataset"
	"github.com/actfort/actfort/internal/ecosys"
	"github.com/actfort/actfort/internal/strategy"
)

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:   "demo",
		Headers: []string{"a", "bbbb"},
	}
	tbl.AddRow("xxxxx", "y")
	tbl.AddRow("z", "w")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "demo" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "a    ") {
		t.Errorf("header not padded: %q", lines[1])
	}
	if !strings.Contains(lines[2], "-----") {
		t.Errorf("separator missing: %q", lines[2])
	}
	if len(lines) != 5 {
		t.Errorf("lines = %d want 5", len(lines))
	}
}

func TestPctAndBar(t *testing.T) {
	if Pct(54.0107) != "54.01%" {
		t.Errorf("Pct = %q", Pct(54.0107))
	}
	if got := Bar(50); !strings.HasPrefix(got, "[###############") {
		t.Errorf("Bar(50) = %q", got)
	}
	if Bar(-5) != "["+strings.Repeat(".", 30)+"]" {
		t.Errorf("Bar(-5) = %q", Bar(-5))
	}
	if Bar(200) != "["+strings.Repeat("#", 30)+"]" {
		t.Errorf("Bar(200) = %q", Bar(200))
	}
}

func TestPaperRenderersOnCalibratedData(t *testing.T) {
	cat := dataset.MustDefault()
	web := collect.Measure(cat, ecosys.PlatformWeb)
	mob := collect.Measure(cat, ecosys.PlatformMobile)
	t1 := Table1(web, mob).String()
	// The calibrated catalog must reprint the paper's exact numbers.
	for _, want := range []string{"54.01%", "87.50%", "11.76%", "75.00%", "59.36%"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table1 missing %q:\n%s", want, t1)
		}
	}

	aw := authproc.Measure(cat, ecosys.PlatformWeb)
	am := authproc.Measure(cat, ecosys.PlatformMobile)
	f3 := Fig3(aw, am)
	for _, want := range []string{"auth paths", "208", "197", "sms-code", "SMS-only"} {
		if !strings.Contains(f3, want) {
			t.Errorf("Fig3 missing %q", want)
		}
	}

	engine, err := core.New(cat, ecosys.BaselineAttacker())
	if err != nil {
		t.Fatal(err)
	}
	gw, err := engine.Graph(ecosys.PlatformWeb)
	if err != nil {
		t.Fatal(err)
	}
	gm, err := engine.Graph(ecosys.PlatformMobile)
	if err != nil {
		t.Fatal(err)
	}
	layers := Layers(strategy.PathLayers(gw), strategy.PathLayers(gm)).String()
	for _, want := range []string{"74.13%", "75.56%", "direct", "couples"} {
		if !strings.Contains(layers, want) {
			t.Errorf("Layers missing %q:\n%s", want, layers)
		}
	}

	m, err := engine.Measure()
	if err != nil {
		t.Fatal(err)
	}
	dom := Domains(m.Domains).String()
	if !strings.Contains(dom, "fintech") || !strings.Contains(dom, "email") {
		t.Errorf("Domains table incomplete:\n%s", dom)
	}
}
