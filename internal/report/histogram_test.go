package report

import (
	"strings"
	"testing"
)

func TestHistogram(t *testing.T) {
	out := Histogram("depths", []HistRow{
		{Label: "depth 1", Count: 30},
		{Label: "depth 2", Count: 15},
		{Label: "depth 3", Count: 0},
	}).String()
	if !strings.Contains(out, "depths") {
		t.Errorf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title, header, separator, 3 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// The largest bucket gets a full bar; shares sum over the total.
	if !strings.Contains(lines[3], strings.Repeat("#", 30)) {
		t.Errorf("max bucket bar not full: %q", lines[3])
	}
	if !strings.Contains(lines[3], "66.67%") || !strings.Contains(lines[4], "33.33%") {
		t.Errorf("shares wrong:\n%s", out)
	}
	if !strings.Contains(lines[5], "0.00%") {
		t.Errorf("empty bucket share wrong: %q", lines[5])
	}
}

func TestHistogramEmpty(t *testing.T) {
	out := Histogram("none", nil).String()
	if !strings.Contains(out, "none") {
		t.Errorf("missing title:\n%s", out)
	}
}
