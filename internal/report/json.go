package report

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSON renders a summary value (campaign.Summary, campaign.SweepSummary,
// or any other exported-field struct) as indented JSON with a trailing
// newline. encoding/json emits struct fields in declaration order, so
// the output is byte-stable for equal inputs — benchmarks and CI diff
// runs mechanically instead of scraping the rendered tables.
func JSON(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("report: encode JSON: %w", err)
	}
	return append(b, '\n'), nil
}

// WriteJSON encodes v with JSON and writes it to w.
func WriteJSON(w io.Writer, v any) error {
	b, err := JSON(v)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}
