// Package report renders the measurement results as the paper
// presents them: ASCII tables (Table I), proportion charts (Fig 3),
// dependency-layer summaries (§IV.B.1) and DOT graphs (Fig 4, Fig 11).
// Binaries under cmd/ and EXPERIMENTS.md are generated through these
// renderers so recorded outputs stay consistent.
package report

import (
	"io"
	"strconv"
	"strings"

	"github.com/actfort/actfort/internal/authproc"
	"github.com/actfort/actfort/internal/collect"
	"github.com/actfort/actfort/internal/core"
	"github.com/actfort/actfort/internal/ecosys"
	"github.com/actfort/actfort/internal/strategy"
)

// Table is a simple column-aligned ASCII table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title + "\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders to a string.
func (t *Table) String() string {
	var sb strings.Builder
	_, _ = t.WriteTo(&sb)
	return sb.String()
}

// Pct formats a percentage with two decimals, as the paper prints.
func Pct(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) + "%" }

// Bar renders a proportion bar of width 30 for quick terminal charts.
func Bar(pct float64) string {
	if pct < 0 {
		pct = 0
	}
	if pct > 100 {
		pct = 100
	}
	filled := int(pct * 30 / 100)
	return "[" + strings.Repeat("#", filled) + strings.Repeat(".", 30-filled) + "]"
}

// Table1 renders the paper's Table I (post-login exposure).
func Table1(web, mobile collect.ExposureStats) *Table {
	t := &Table{
		Title:   "Table I — private information obtained from online accounts after log-in",
		Headers: []string{"Credential Factors", "Web Account. /%", "Mobile Account. /%"},
	}
	rows := []ecosys.InfoField{
		ecosys.InfoRealName, ecosys.InfoCitizenID, ecosys.InfoCellphone,
		ecosys.InfoEmailAddress, ecosys.InfoAddress, ecosys.InfoUserID,
		ecosys.InfoBindingAccount, ecosys.InfoAcquaintance, ecosys.InfoDeviceType,
	}
	for _, f := range rows {
		t.AddRow(f.String(), Pct(web.Pct(f)), Pct(mobile.Pct(f)))
	}
	return t
}

// Fig3 renders the authentication-process measurement: SMS-only
// account shares per purpose, factor usage and path classes.
func Fig3(web, mobile authproc.Stats) string {
	var b strings.Builder
	b.WriteString("Fig 3 — authentication process measurement\n\n")

	t := &Table{Headers: []string{"metric", "web", "mobile"}}
	t.AddRow("accounts", strconv.Itoa(web.Accounts), strconv.Itoa(mobile.Accounts))
	t.AddRow("auth paths", strconv.Itoa(web.Paths), strconv.Itoa(mobile.Paths))
	t.AddRow("SMS-only sign-in accounts",
		Pct(web.PctAccounts(web.SMSOnlySignIn)), Pct(mobile.PctAccounts(mobile.SMSOnlySignIn)))
	t.AddRow("SMS-only reset accounts",
		Pct(web.PctAccounts(web.SMSOnlyReset)), Pct(mobile.PctAccounts(mobile.SMSOnlyReset)))
	t.AddRow("accounts using SMS anywhere",
		Pct(web.PctAccounts(web.UsesSMSAnywhere)), Pct(mobile.PctAccounts(mobile.UsesSMSAnywhere)))
	for _, c := range []ecosys.PathClass{ecosys.ClassGeneral, ecosys.ClassInfo, ecosys.ClassUnique} {
		t.AddRow(c.String()+" paths",
			Pct(web.PctPaths(web.ClassCounts[c])), Pct(mobile.PctPaths(mobile.ClassCounts[c])))
	}
	b.WriteString(t.String())

	b.WriteString("\nfactor usage (share of paths containing the factor):\n")
	ft := &Table{Headers: []string{"factor", "web", "mobile"}}
	for _, f := range ecosys.AllFactorKinds() {
		wu, mu := web.FactorUsage[f], mobile.FactorUsage[f]
		if wu == 0 && mu == 0 {
			continue
		}
		ft.AddRow(f.String(), Pct(web.PctPaths(wu)), Pct(mobile.PctPaths(mu)))
	}
	b.WriteString(ft.String())
	return b.String()
}

// Layers renders the §IV.B.1 dependency-depth percentages next to the
// paper's published values.
func Layers(web, mobile strategy.DepthStats) *Table {
	t := &Table{
		Title:   "Dependency relationship depth (overlapping, as in §IV.B.1)",
		Headers: []string{"category", "web", "web (paper)", "mobile", "mobile (paper)"},
	}
	t.AddRow("direct (phone+SMS)", Pct(web.Pct(web.Direct)), "74.13%", Pct(mobile.Pct(mobile.Direct)), "75.56%")
	t.AddRow("one middle layer", Pct(web.Pct(web.OneMiddle)), "9.83%", Pct(mobile.Pct(mobile.OneMiddle)), "26.47%")
	t.AddRow("two layers (full capacity)", Pct(web.Pct(web.TwoLayerFull)), "5.20%", Pct(mobile.Pct(mobile.TwoLayerFull)), "20.59%")
	t.AddRow("two layers (with couples)", Pct(web.Pct(web.TwoLayerCouple)), "2.89%", Pct(mobile.Pct(mobile.TwoLayerCouple)), "8.82%")
	t.AddRow("not compromisable", Pct(web.Pct(web.Uncompromisable)), "4.44%", Pct(mobile.Pct(mobile.Uncompromisable)), "2.22%")
	return t
}

// Domains renders the per-domain breakdown (insight 3).
func Domains(stats []core.DomainStats) *Table {
	t := &Table{
		Title:   "Per-domain vulnerability (both platforms)",
		Headers: []string{"domain", "accounts", "fringe", "compromisable", "share"},
	}
	for _, d := range stats {
		share := 0.0
		if d.Accounts > 0 {
			share = 100 * float64(d.Compromisable) / float64(d.Accounts)
		}
		t.AddRow(d.Domain.String(), strconv.Itoa(d.Accounts),
			strconv.Itoa(d.Fringe), strconv.Itoa(d.Compromisable), Pct(share))
	}
	return t
}
