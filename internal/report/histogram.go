package report

import "strconv"

// HistRow is one bucket of a Histogram.
type HistRow struct {
	Label string
	Count int64
}

// Histogram renders labeled counts with bars scaled to the largest
// bucket — the renderer behind the campaign engine's compromise-depth
// and harvest distributions.
func Histogram(title string, rows []HistRow) *Table {
	max := int64(0)
	total := int64(0)
	for _, r := range rows {
		if r.Count > max {
			max = r.Count
		}
		total += r.Count
	}
	t := &Table{Title: title, Headers: []string{"bucket", "count", "", "share"}}
	for _, r := range rows {
		barPct := 0.0
		if max > 0 {
			barPct = 100 * float64(r.Count) / float64(max)
		}
		share := 0.0
		if total > 0 {
			share = 100 * float64(r.Count) / float64(total)
		}
		t.AddRow(r.Label, strconv.FormatInt(r.Count, 10), Bar(barPct), Pct(share))
	}
	return t
}
